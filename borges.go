// Package borges is the public API of Borges (Better ORGanizations
// Entities mappingS), a framework for improving AS-to-Organization
// mappings, reproducing:
//
//	Selmo, Carisimo, Bustamante, Alvarez-Hamelin.
//	"Learning AS-to-Organization Mappings with Borges", IMC 2025.
//
// Borges combines organization identifiers from WHOIS (CAIDA AS2Org)
// and PeeringDB with two learning-based signals: LLM-driven extraction
// of sibling ASNs from the unstructured PeeringDB notes/aka fields, and
// web-based inference over the websites networks self-report — redirect
// chains resolved to final URLs, domain similarity, and shared favicons
// classified by an LLM. Sibling sets from all features are consolidated
// transitively into one AS-to-Organization mapping, and mapping quality
// is quantified with the paper's Organization Factor (θ).
//
// # Quick start
//
//	ds, _ := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: 0.05})
//	res, _ := borges.Run(context.Background(), borges.Inputs{
//		WHOIS:     ds.WHOIS,
//		PDB:       ds.PDB,
//		Transport: ds.Web,
//		Provider:  borges.NewSimulatedLLM(),
//	}, borges.Options{})
//	theta, _ := borges.Theta(res.Mapping)
//
// Real CAIDA AS2Org and PeeringDB snapshots parse with ParseWHOIS and
// ParsePeeringDB and drop into Inputs unchanged; pointing Provider at an
// OpenAI-compatible endpoint (NewOpenAIProvider) and Transport at the
// real internet (nil, which selects http.DefaultTransport) runs the
// paper's original configuration.
package borges

import (
	"context"
	"io"
	"net/http"

	"github.com/nu-aqualab/borges/internal/admission"
	"github.com/nu-aqualab/borges/internal/apnic"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/cache"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/eval"
	"github.com/nu-aqualab/borges/internal/fleet"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/llm/openai"
	"github.com/nu-aqualab/borges/internal/mapdiff"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/serve"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// Core identifier and result types.
type (
	// ASN is a 32-bit Autonomous System Number.
	ASN = asnum.ASN
	// Mapping is a consolidated AS-to-Organization mapping.
	Mapping = cluster.Mapping
	// Cluster is one organization in a Mapping.
	Cluster = cluster.Cluster
	// SiblingSet is one inferred group of sibling ASNs with provenance.
	SiblingSet = cluster.SiblingSet
	// Feature identifies the inference feature that produced a sibling
	// set (OID_W, OID_P, N&A, R&R, F).
	Feature = cluster.Feature

	// Features toggles the Borges pipeline features.
	Features = core.Features
	// Inputs are the pipeline's data sources and backends.
	Inputs = core.Inputs
	// Options tune the pipeline, including ConsolidateWorkers — the
	// parallelism of the sharded sibling-set consolidation, whose
	// output is byte-identical at any worker count.
	Options = core.Options
	// Result is a pipeline run's output: the mapping plus retained
	// artifacts and corpus statistics.
	Result = core.Result

	// RunReport is a run's machine-readable fault accounting: per-source
	// status, quarantined items, retries spent, breaker trips.
	RunReport = core.RunReport
	// SourceReport summarizes one inference chain's health within a
	// RunReport.
	SourceReport = core.SourceReport
	// QuarantinedItem is one unit of work a run dropped after a
	// transient fault exhausted its retry budget.
	QuarantinedItem = core.QuarantinedItem
)

// ParseASN parses "AS3356", "asn 3356", or bare digits.
func ParseASN(s string) (ASN, error) { return asnum.Parse(s) }

// Data sources.
type (
	// WHOISSnapshot is a CAIDA AS2Org snapshot (the OID_W source).
	WHOISSnapshot = whois.Snapshot
	// WHOISOrg is one WHOIS organization record.
	WHOISOrg = whois.Org
	// WHOISASRecord links an ASN to its WHOIS organization.
	WHOISASRecord = whois.ASRecord
	// PDBSnapshot is a PeeringDB snapshot (the OID_P, notes/aka, and
	// website source).
	PDBSnapshot = peeringdb.Snapshot
	// PDBOrg is a PeeringDB organization object.
	PDBOrg = peeringdb.Org
	// PDBNet is a PeeringDB network object.
	PDBNet = peeringdb.Net
	// APNICTable holds per-AS user-population estimates.
	APNICTable = apnic.Table
	// APNICRecord is one (ASN, country) population estimate.
	APNICRecord = apnic.Record
	// ASRanking is a CAIDA AS-Rank snapshot.
	ASRanking = asrank.Ranking
	// WebUniverse is a deterministic simulated web (an
	// http.RoundTripper) for offline runs and tests.
	WebUniverse = websim.Universe
)

// NewWHOISSnapshot returns an empty WHOIS snapshot for a date
// ("YYYYMMDD").
func NewWHOISSnapshot(date string) *WHOISSnapshot { return whois.NewSnapshot(date) }

// ParseWHOIS reads a CAIDA AS2Org JSON-lines stream.
func ParseWHOIS(r io.Reader, date string) (*WHOISSnapshot, error) { return whois.Parse(r, date) }

// WriteWHOIS serializes a WHOIS snapshot in CAIDA AS2Org form.
func WriteWHOIS(w io.Writer, s *WHOISSnapshot) error { return whois.Write(w, s) }

// NewPDBSnapshot returns an empty PeeringDB snapshot for a date.
func NewPDBSnapshot(date string) *PDBSnapshot { return peeringdb.NewSnapshot(date) }

// ParsePeeringDB reads a PeeringDB API dump.
func ParsePeeringDB(r io.Reader, date string) (*PDBSnapshot, error) { return peeringdb.Parse(r, date) }

// WritePeeringDB serializes a PeeringDB snapshot as an API dump.
func WritePeeringDB(w io.Writer, s *PDBSnapshot) error { return peeringdb.Write(w, s) }

// ParseAPNIC reads the per-AS population CSV.
func ParseAPNIC(r io.Reader, date string) (*APNICTable, error) { return apnic.Parse(r, date) }

// WriteAPNIC serializes a population table as CSV.
func WriteAPNIC(w io.Writer, t *APNICTable) error { return apnic.Write(w, t) }

// ParseASRank reads an AS-Rank CSV.
func ParseASRank(r io.Reader, date string) (*ASRanking, error) { return asrank.Parse(r, date) }

// WriteASRank serializes an AS-Rank snapshot as CSV.
func WriteASRank(w io.Writer, r *ASRanking) error { return asrank.Write(w, r) }

// NewWebUniverse returns an empty simulated web.
func NewWebUniverse() *WebUniverse { return websim.New() }

// WriteWebUniverse serializes a simulated web as a JSON-lines manifest.
func WriteWebUniverse(w io.Writer, u *WebUniverse) error { return websim.WriteManifest(w, u) }

// ReadWebUniverse reconstructs a simulated web from a manifest.
func ReadWebUniverse(r io.Reader) (*WebUniverse, error) { return websim.ReadManifest(r) }

// LLM providers.
type (
	// LLMProvider generates chat completions for the learning-based
	// stages.
	LLMProvider = llm.Provider
	// LLMRequest is a chat-completion request.
	LLMRequest = llm.Request
	// LLMMessage is one chat turn (optionally with image attachments).
	LLMMessage = llm.Message
	// LLMResponse is a chat completion.
	LLMResponse = llm.Response
	// SimulatedLLM is the deterministic offline model.
	SimulatedLLM = simllm.Model
	// OpenAIProvider is a complete OpenAI-compatible HTTP client.
	OpenAIProvider = openai.Client
)

// Chat roles for LLMMessage.
const (
	RoleSystem    = llm.RoleSystem
	RoleUser      = llm.RoleUser
	RoleAssistant = llm.RoleAssistant
)

// NewSimulatedLLM returns the deterministic simulated model used for
// offline reproduction (same-input ⇒ same-output, like the paper's
// temperature-0 GPT-4o-mini configuration).
func NewSimulatedLLM() *SimulatedLLM { return simllm.NewModel() }

// LLMProfile parameterises a simulated model's capabilities — the
// alternative-model exploration the paper's conclusion proposes.
type LLMProfile = simllm.Profile

// Built-in simulated-model profiles.
var (
	// ProfileGPT4oMini is the paper's configuration.
	ProfileGPT4oMini = simllm.ProfileGPT4oMini
	// ProfileLlama models a mid-size open-weights model (English-only
	// cues, framework icons but no brand logos).
	ProfileLlama = simllm.ProfileLlama
	// ProfileSmall models a small distilled model (English-only, no
	// visual knowledge).
	ProfileSmall = simllm.ProfileSmall
)

// NewSimulatedLLMWithProfile returns a simulated model with the given
// capability profile.
func NewSimulatedLLMWithProfile(p LLMProfile) *SimulatedLLM {
	return simllm.NewModelWithProfile(p)
}

// NewOpenAIProvider returns a chat-completions client for an
// OpenAI-compatible endpoint. An empty baseURL selects the public
// OpenAI API.
func NewOpenAIProvider(baseURL, apiKey string, httpClient *http.Client) LLMProvider {
	return &llm.Retrying{Inner: &openai.Client{
		BaseURL: baseURL, APIKey: apiKey, HTTPClient: httpClient,
	}}
}

// NewCachingProvider memoizes a provider's completions: identical
// requests return the stored response without touching the backend.
// Temperature-0 determinism (the paper's configuration) makes this
// loss-free; incremental re-runs over updated snapshots only pay for
// records whose text changed.
func NewCachingProvider(inner LLMProvider) *llm.Caching { return llm.NewCaching(inner) }

// NewRateLimitedProvider paces a provider below a requests-per-second
// budget with the given burst capacity, for batch runs against live
// APIs with per-minute quotas.
func NewRateLimitedProvider(inner LLMProvider, rps float64, burst int) LLMProvider {
	return &llm.RateLimited{Inner: inner, RPS: rps, Burst: burst}
}

// Content-addressed pipeline cache types.
type (
	// Cache is a content-addressed store memoizing LLM completions and
	// crawl outcomes across runs. Pass one via Options.Cache; a single
	// Cache may be shared by concurrent runs (an ablation grid, a
	// borgesd reload loop) and deduplicates identical in-flight work.
	Cache = cache.Cache
	// CacheOptions configure a Cache (memory bound, optional disk
	// directory whose contents survive process restarts).
	CacheOptions = cache.Options
	// CacheStats are a Cache's hit/miss/dedup counters.
	CacheStats = cache.Stats
)

// NewCache opens a content-addressed cache. With a zero CacheOptions
// it is memory-only; set Dir to persist entries across processes.
// Close flushes the disk tier; callers owning a disk-backed Cache
// should defer it.
func NewCache(opts CacheOptions) (*Cache, error) { return cache.New(opts) }

// Run executes the Borges pipeline.
func Run(ctx context.Context, in Inputs, opts Options) (*Result, error) {
	return core.Run(ctx, in, opts)
}

// AllFeatures returns the full Borges feature configuration.
func AllFeatures() Features { return core.AllFeatures() }

// Baselines.

// AS2Org builds the classic WHOIS-only mapping of Cai et al.
func AS2Org(w *WHOISSnapshot) *Mapping { return baseline.AS2Org(w) }

// AS2OrgPlus builds the as2org+ mapping (Arturi et al.) in the paper's
// fully automated benchmark configuration (OID_W + OID_P).
func AS2OrgPlus(w *WHOISSnapshot, p *PDBSnapshot) *Mapping {
	return baseline.AS2OrgPlus(w, p, baseline.Config{})
}

// WriteMapping serializes a mapping as JSON lines (one organization per
// line with members, name, and feature provenance).
func WriteMapping(w io.Writer, m *Mapping) error { return cluster.WriteJSONL(w, m) }

// ReadMapping parses a mapping written with WriteMapping.
func ReadMapping(r io.Reader) (*Mapping, error) { return cluster.ReadJSONL(r) }

// Theta computes the normalised Organization Factor of a mapping
// (§5.4; 0 = every organization manages one network, → 1 = one
// organization manages everything).
func Theta(m *Mapping) (float64, error) { return orgfactor.Theta(m) }

// Serving layer.
type (
	// Snapshot is an immutable, pre-indexed view of a Mapping (ASN
	// lookup, name search, θ, size histogram, pre-rendered lookup
	// response bytes) safe for lock-free concurrent reads. Construction
	// fans out across GOMAXPROCS workers and is deterministic at any
	// worker count.
	Snapshot = serve.Snapshot
	// SnapshotStats are a snapshot's precomputed corpus statistics.
	SnapshotStats = serve.Stats
	// SnapshotSource produces replacement mappings for hot reloads.
	SnapshotSource = serve.Source
	// SnapshotHealthSource produces replacement mappings together with
	// the producing run's health, so degradation travels with the
	// snapshot through hot reloads.
	SnapshotHealthSource = serve.HealthSource
	// PreparedSnapshotSource delivers ready-made snapshots — decoded
	// binary artifacts or pre-built indexes — skipping the in-server
	// rebuild on reload.
	PreparedSnapshotSource = serve.PreparedSource
	// MappingDeltaSource supplies mapping deltas for incremental
	// (mode=delta) reloads.
	MappingDeltaSource = serve.DeltaSource
	// SnapshotHealth describes the provenance quality of a snapshot's
	// mapping ("ok" vs "degraded"), surfaced by /healthz, /v1/stats,
	// and /metrics.
	SnapshotHealth = serve.Health
	// ServeOptions tune a lookup server (reload source, per-request
	// timeout, structured logging, overload protection, and
	// BuildWorkers — the parallelism of each reloaded snapshot's
	// index/pre-render build).
	ServeOptions = serve.Options
	// LookupServer serves a Snapshot over HTTP with atomic hot reload.
	LookupServer = serve.Server
	// AdmissionConfig tunes a lookup server's overload protection:
	// an adaptive (AIMD-on-latency) concurrency limit with a bounded
	// wait queue, per-client token-bucket rate limiting behind an LRU,
	// priority shedding (health/metrics/admin never shed, point
	// lookups shed last, search sheds first), and search brownout.
	// Set ServeOptions.Admission to enable; sheds answer 429/503 with
	// Retry-After and are observable as borgesd_admission_* metrics.
	AdmissionConfig = admission.Config
	// AdmissionStats is a point-in-time view of the admission layer:
	// in-flight count, adaptive limit, queue depth, sheds by class,
	// rate-limit refusals, bucket evictions, brownouts.
	AdmissionStats = admission.Stats
	// WatchEvent is one /v1/watch stream event: a snapshot swap
	// described by its sequence number, the new snapshot's identity
	// (load mode, content hash, org/ASN counts), and the MappingDelta
	// edit script that produced it.
	WatchEvent = serve.WatchEvent
)

// Snapshot health status values.
const (
	SnapshotHealthOK       = serve.HealthOK
	SnapshotHealthDegraded = serve.HealthDegraded
)

// NewSnapshot indexes a mapping for serving; source labels its origin
// in /v1/stats and /metrics. Nil or empty mappings are rejected.
func NewSnapshot(m *Mapping, source string) (*Snapshot, error) {
	return serve.NewSnapshot(m, source)
}

// NewSnapshotWithHealth is NewSnapshot carrying the producing run's
// health, for pipeline-backed daemons.
func NewSnapshotWithHealth(m *Mapping, source string, h SnapshotHealth) (*Snapshot, error) {
	return serve.NewSnapshotWithHealth(m, source, h)
}

// HealthFromReport folds a pipeline RunReport into a serving health: a
// clean run maps to SnapshotHealthOK, a degraded one to
// SnapshotHealthDegraded with the quarantine count and the degraded
// sources named. A nil report (e.g. a mapping loaded from a file) is
// healthy — absence of provenance is not evidence of faults.
func HealthFromReport(rep *RunReport) SnapshotHealth {
	if rep == nil || !rep.Degraded() {
		return SnapshotHealth{Status: SnapshotHealthOK}
	}
	detail := ""
	for _, s := range rep.Sources {
		if s.Status == core.StatusDegraded || s.Status == core.StatusFailed {
			if detail != "" {
				detail += ", "
			}
			detail += s.Name + " " + s.Status
		}
	}
	return SnapshotHealth{
		Status:      SnapshotHealthDegraded,
		Quarantined: len(rep.Quarantined),
		Detail:      detail,
	}
}

// NewLookupServer returns an HTTP server over an initial snapshot. Use
// its Handler with any http mux/listener, or call Serve for the
// one-call daemon path.
func NewLookupServer(snap *Snapshot, opts ServeOptions) (*LookupServer, error) {
	return serve.NewServer(snap, opts)
}

// MappingFileSource reloads mappings from a JSONL file written with
// WriteMapping (borges -format jsonl).
func MappingFileSource(path string) SnapshotSource { return serve.FileSource(path) }

// SnapshotFileSource reloads snapshots from a file of either format:
// a snapbin binary artifact (detected by magic, loaded in
// milliseconds) or a JSONL mapping (parsed and indexed from scratch).
func SnapshotFileSource(path string) PreparedSnapshotSource { return serve.SnapshotFileSource(path) }

// SnapshotFileSourceMapped is SnapshotFileSource with binary artifacts
// loaded through a read-only memory mapping (borgesd -mmap): bodies
// serve off the page cache and the heap holds only the index-sized
// sections. Platforms or filesystems that cannot map fall back to the
// buffered load.
func SnapshotFileSourceMapped(path string) PreparedSnapshotSource {
	return serve.SnapshotFileSourceMapped(path)
}

// MappingDeltaFileSource reloads mapping deltas from a JSONL delta
// file written with WriteMappingDelta (borges-diff -delta).
func MappingDeltaFileSource(path string) MappingDeltaSource { return serve.DeltaFileSource(path) }

// WriteSnapshot encodes a snapshot as a versioned binary artifact
// (magic "BORGSNAP") and returns its content hash: a SHA-256 over the
// snapshot's logical content, identical across machines, build times,
// and full-vs-delta construction paths.
func WriteSnapshot(w io.Writer, s *Snapshot) (string, error) { return serve.WriteSnapshot(w, s) }

// WriteSnapshotFile atomically persists a snapshot as a binary
// artifact (temp file, fsync, rename) and returns its content hash.
func WriteSnapshotFile(path string, s *Snapshot) (string, error) {
	return serve.WriteSnapshotFile(path, s)
}

// LoadSnapshot decodes a binary snapshot artifact into a serving
// snapshot — a few large reads plus verification, no JSONL parse, no
// union-find replay, no re-rendering.
func LoadSnapshot(r io.Reader) (*Snapshot, error) { return serve.LoadSnapshot(r) }

// LoadSnapshotFile decodes the binary snapshot artifact at path.
func LoadSnapshotFile(path string) (*Snapshot, error) { return serve.LoadSnapshotFile(path) }

// LoadSnapshotFileMapped decodes the binary snapshot artifact at path
// through a read-only memory mapping. The content hash is verified
// exactly as in LoadSnapshotFile, but pre-rendered response bodies
// alias the mapping, so cold-start heap growth is O(index), not
// O(file). The server unmaps only after the snapshot is swapped out
// and every in-flight request that pinned it has finished.
func LoadSnapshotFileMapped(path string) (*Snapshot, error) {
	return serve.LoadSnapshotFileMapped(path)
}

// Storage integrity layer: generation ring, canary-gated swaps, and
// background scrubbing.
type (
	// GenerationRing keeps the last N verified snapshot artifacts on
	// disk so every swap is reversible (POST /admin/rollback, automatic
	// rollback after a failed health probe). Nothing in the ring serves
	// without a full decode re-verifying its content hash.
	GenerationRing = serve.GenerationRing
	// SnapshotGeneration describes one verified artifact in the ring,
	// as surfaced by /v1/stats lineage.
	SnapshotGeneration = serve.Generation
	// CanaryConfig tunes the pre-swap canary: a deterministic sample of
	// lookups and searches replayed against every candidate snapshot
	// before it can serve. The zero value is on with defaults; set
	// Disable to promote unchecked.
	CanaryConfig = serve.CanaryConfig
	// ScrubTarget is one store the background scrubber sweeps.
	ScrubTarget = serve.ScrubTarget
	// ScrubResult is one target's outcome for a single scrub pass.
	ScrubResult = serve.ScrubResult
	// ScrubSummary aggregates a full scrub cycle: totals, the health
	// probe outcome, and any automatic rollback it triggered.
	ScrubSummary = serve.ScrubSummary
)

// Storage integrity sentinel errors.
var (
	// ErrCanaryRejected: a candidate snapshot failed the pre-swap
	// canary and was refused (HTTP 422 on /admin/reload).
	ErrCanaryRejected = serve.ErrCanaryRejected
	// ErrNoVerifiedGeneration: a rollback found no on-disk generation
	// other than the serving one that decodes and verifies.
	ErrNoVerifiedGeneration = serve.ErrNoVerifiedGeneration
)

// NewGenerationRing opens (creating if needed) a generation ring
// directory and adopts every artifact in it that still decodes and
// verifies; corrupt files are quarantined immediately. Set the result
// as ServeOptions.Generations.
func NewGenerationRing(dir string, keep int, logf func(format string, args ...any)) (*GenerationRing, error) {
	return serve.NewGenerationRing(dir, keep, nil, logf)
}

// Serve listens on addr and serves the snapshot's JSON lookup API
// (/v1/as/{asn}, /v1/org/{id}, /v1/search, /v1/bulk, /v1/watch,
// /v1/stats, /admin/reload, /healthz, /metrics) until ctx is
// cancelled, then drains in-flight requests — ending /v1/watch
// streams cleanly first — and shuts down gracefully.
func Serve(ctx context.Context, addr string, snap *Snapshot, opts ServeOptions) error {
	return serve.Serve(ctx, addr, snap, opts)
}

// Fleet distribution layer: one distributor publishing versioned
// binary snapshot artifacts, many verifying replicas following it.
type (
	// FleetDistributor wraps a LookupServer with the /fleet/* surface:
	// a versioned snapshot manifest, ranged artifact and delta
	// downloads, and a consistency endpoint fed by replica heartbeats.
	// Every snapshot swap republishes automatically.
	FleetDistributor = fleet.Distributor
	// FleetDistributorOptions tune a FleetDistributor.
	FleetDistributorOptions = fleet.DistributorOptions
	// FleetReplica is a follower: a local lookup server whose
	// snapshots are fetched from a distributor, content-hash-verified
	// before they can serve, persisted locally as a last-good artifact
	// for crash recovery, and swapped in atomically.
	FleetReplica = fleet.Replica
	// FleetReplicaOptions tune a FleetReplica.
	FleetReplicaOptions = fleet.ReplicaOptions
	// FleetManifest describes a distributor's current publish:
	// sequence, content hash, size, artifact URL, optional delta.
	FleetManifest = fleet.Manifest
	// FleetHeartbeat is one replica's served-version report.
	FleetHeartbeat = fleet.Heartbeat
	// FleetStatus is the distributor's fleet consistency view: the
	// current publish plus each live replica's version and divergence.
	FleetStatus = fleet.Status
)

// NewFleetDistributor builds a lookup server wired for distribution
// and publishes snap as sequence 1. Serve it with its Serve or
// ServeListener methods; its Handler mounts /fleet/* in front of the
// lookup API.
func NewFleetDistributor(snap *Snapshot, serveOpts ServeOptions, opts FleetDistributorOptions) (*FleetDistributor, error) {
	return fleet.NewDistributor(snap, serveOpts, opts)
}

// NewFleetReplica joins a distributor: cold-start from the local
// last-good artifact when present (milliseconds, no network), a
// blocking verified fetch otherwise. Call Run to start the follower
// loop and Serve to expose the lookup API.
func NewFleetReplica(ctx context.Context, opts FleetReplicaOptions) (*FleetReplica, error) {
	return fleet.NewReplica(ctx, opts)
}

// ParseFleetManifest decodes and validates a /fleet/manifest body;
// malformed input yields a typed error, never a panic.
func ParseFleetManifest(data []byte) (*FleetManifest, error) { return fleet.ParseManifest(data) }

// ParseFleetHeartbeat decodes and validates a replica heartbeat body.
func ParseFleetHeartbeat(data []byte) (*FleetHeartbeat, error) { return fleet.ParseHeartbeat(data) }

// Synthetic corpus generation.
type (
	// DatasetConfig parameterises synthetic corpus generation.
	DatasetConfig = synth.Config
	// Dataset is a complete generated corpus with ground truth.
	Dataset = synth.Dataset
)

// GenerateDataset builds a seeded, deterministic synthetic corpus
// calibrated to the paper's July 2024 snapshot statistics. Scale 1.0 is
// paper scale; ~0.05 generates fast test corpora.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return synth.Generate(cfg) }

// Corpus scale bounds, re-exported so CLIs can validate a -scale flag
// with a clear message before committing to a multi-minute run.
// Scales outside this range are rejected by the generator itself (the
// ceiling keeps the synthetic ASN allocator far from the 32-bit ASN
// wrap); MaxDatasetScale targets roughly 120 million synthetic ASNs.
const (
	MinDatasetScale = synth.MinScale
	MaxDatasetScale = synth.MaxScale
)

// GenerateDatasetStream is the constant-memory form of GenerateDataset:
// the corpus is produced in deterministic chunks of roughly chunkUnits
// generator units each, and yield consumes and discards each chunk, so
// peak memory tracks the chunk size rather than the corpus size.
// Concatenating the chunks reproduces GenerateDataset's output exactly
// for the same config. chunkUnits <= 0 yields one final chunk; a
// non-nil yield error aborts generation and is returned.
func GenerateDatasetStream(cfg DatasetConfig, chunkUnits int, yield func(*Dataset) error) error {
	return synth.GenerateStream(cfg, chunkUnits, yield)
}

// CorpusStats summarizes a streamed corpus write.
type CorpusStats = synth.CorpusStats

// WriteDatasetStream generates the corpus for cfg and writes the five
// standard corpus files (as2org.jsonl, peeringdb.json, apnic.csv,
// asrank.csv, web.jsonl) into dir in constant memory: each chunk is
// appended to the outputs as it is produced. The files parse to the
// same snapshots GenerateDataset plus the buffered writers produce.
func WriteDatasetStream(dir string, cfg DatasetConfig, chunkUnits int) (CorpusStats, error) {
	return synth.WriteCorpusStream(dir, cfg, chunkUnits)
}

// Longitudinal analysis.
type (
	// MappingDiff summarises how organizations changed between two
	// mappings: merges, splits, reshuffles, arrivals, departures.
	MappingDiff = mapdiff.Report
	// MappingChange describes one organization's transition.
	MappingChange = mapdiff.Change
	// ChangeKind classifies a MappingChange.
	ChangeKind = mapdiff.ChangeKind
)

// Change kinds.
const (
	ChangeStable    = mapdiff.Stable
	ChangeMerge     = mapdiff.Merge
	ChangeSplit     = mapdiff.Split
	ChangeReshuffle = mapdiff.Reshuffle
	ChangeAppeared  = mapdiff.Appeared
	ChangeDeparted  = mapdiff.Departed
)

// CompareMappings analyses the transition from an older mapping to a
// newer one — across snapshots (the Figure 1 merger timelines) or
// across methods over one snapshot (Borges vs AS2Org).
func CompareMappings(older, newer *Mapping) *MappingDiff {
	return mapdiff.Compare(older, newer)
}

// MappingDelta is the machine-applicable edit script between two
// mappings: organizations to remove and organizations to add. Where a
// MappingDiff narrates a transition for humans, a MappingDelta drives
// incremental snapshot reloads (Snapshot.ApplyDelta,
// /admin/reload?mode=delta).
type MappingDelta = mapdiff.Delta

// ComputeMappingDelta returns the edit script transforming old into
// new; identity covers members, name, and feature provenance.
func ComputeMappingDelta(old, new *Mapping) *MappingDelta {
	return mapdiff.ComputeDelta(old, new)
}

// WriteMappingDelta serializes a delta as JSON lines (removals first:
// {"op":"del",...} then {"op":"add",...}).
func WriteMappingDelta(w io.Writer, d *MappingDelta) error { return mapdiff.WriteDelta(w, d) }

// ReadMappingDelta parses a delta written with WriteMappingDelta.
func ReadMappingDelta(r io.Reader) (*MappingDelta, error) { return mapdiff.ReadDelta(r) }

// Evaluation harness.
type (
	// Evaluation bundles a corpus with pipeline and baseline runs and
	// regenerates every table and figure of the paper.
	Evaluation = eval.Data
	// ResultTable is one rendered experiment result.
	ResultTable = eval.Table
)

// PrepareEvaluation runs the pipeline and both baselines over a corpus
// once; the individual experiments (Table3 … Figure9, or All) are then
// cheap to regenerate.
func PrepareEvaluation(ctx context.Context, ds *Dataset, provider LLMProvider) (*Evaluation, error) {
	return eval.Prepare(ctx, ds, provider)
}
