// Benchmarks regenerating every table and figure of the paper plus the
// ablations called out in DESIGN.md. Experiment benches reuse one
// prepared evaluation (crawl + LLM stages run once); pipeline benches
// run the full system per iteration at a reduced scale.
//
//	go test -bench=. -benchmem
package borges_test

import (
	"context"
	"sync"
	"testing"

	borges "github.com/nu-aqualab/borges"
)

const (
	benchScale    = 0.1  // experiment-bench corpus scale
	pipelineScale = 0.05 // per-iteration full-pipeline scale
)

var (
	benchOnce sync.Once
	benchDS   *borges.Dataset
	benchEval *borges.Evaluation
)

func benchData(b *testing.B) (*borges.Dataset, *borges.Evaluation) {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		ev, err := borges.PrepareEvaluation(context.Background(), ds, borges.NewSimulatedLLM())
		if err != nil {
			b.Fatal(err)
		}
		benchDS, benchEval = ds, ev
	})
	if benchDS == nil {
		b.Fatal("benchmark corpus failed to initialise")
	}
	return benchDS, benchEval
}

// ---- one bench per paper table / figure ----

func BenchmarkTable3(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Table3(); len(t.Rows) == 0 {
			b.Fatal("empty table3")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Table4(); len(t.Rows) == 0 {
			b.Fatal("empty table4")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Table5(); len(t.Rows) == 0 {
			b.Fatal("empty table5")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Table7(); len(t.Rows) == 0 {
			b.Fatal("empty table7")
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Table8(); len(t.Rows) == 0 {
			b.Fatal("empty table8")
		}
	}
}

func BenchmarkTable9(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Table9(); len(t.Rows) == 0 {
			b.Fatal("empty table9")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Figure7(); len(t.Rows) == 0 {
			b.Fatal("empty figure7")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Figure8(); len(t.Rows) == 0 {
			b.Fatal("empty figure8")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	_, ev := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := ev.Figure9(); len(t.Rows) == 0 {
			b.Fatal("empty figure9")
		}
	}
}

// ---- end-to-end and substrate benches ----

func BenchmarkGenerateDataset(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: pipelineScale}); err != nil {
			b.Fatal(err)
		}
	}
}

func runPipeline(b *testing.B, opts borges.Options) *borges.Result {
	b.Helper()
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: pipelineScale})
	if err != nil {
		b.Fatal(err)
	}
	var res *borges.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = borges.Run(context.Background(), borges.Inputs{
			WHOIS:     ds.WHOIS,
			PDB:       ds.PDB,
			Transport: ds.Web,
			Provider:  borges.NewSimulatedLLM(),
		}, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkPipelineFull(b *testing.B) { runPipeline(b, borges.Options{}) }

func BenchmarkPipelineKeysOnly(b *testing.B) {
	f := borges.Features{OIDP: true}
	runPipeline(b, borges.Options{Features: &f})
}

func BenchmarkBaselineAS2Org(b *testing.B) {
	ds, _ := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := borges.AS2Org(ds.WHOIS); m.NumOrgs() == 0 {
			b.Fatal("empty mapping")
		}
	}
}

func BenchmarkTheta(b *testing.B) {
	ds, _ := benchData(b)
	m := borges.AS2Org(ds.WHOIS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := borges.Theta(m); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benches (design choices called out in DESIGN.md) ----

// BenchmarkNERInputFilter measures the LLM-call volume with the numeric
// dropout filter on (the default): only numeric records reach the model.
func BenchmarkNERInputFilter(b *testing.B) {
	benchNERFilter(b, false)
}

// BenchmarkNERNoInputFilter disables the dropout filter: every record
// with text reaches the model, multiplying call volume ~6×.
func BenchmarkNERNoInputFilter(b *testing.B) {
	benchNERFilter(b, true)
}

func benchNERFilter(b *testing.B, disable bool) {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: pipelineScale})
	if err != nil {
		b.Fatal(err)
	}
	f := borges.Features{NotesAka: true}
	var calls int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := borges.NewSimulatedLLM()
		_, err := borges.Run(context.Background(), borges.Inputs{
			WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: model,
		}, borges.Options{Features: &f, DisableInputFilter: disable})
		if err != nil {
			b.Fatal(err)
		}
		calls = model.IECalls()
	}
	b.ReportMetric(float64(calls), "llm-calls/op")
}

// BenchmarkClassifierStep2 vs BenchmarkClassifierStep1Only measure the
// favicon decision tree with and without the LLM reclassification step
// (the paper recovers 38 of 43 step-1 false negatives in step 2).
func BenchmarkClassifierStep2(b *testing.B)     { benchClassifier(b, false) }
func BenchmarkClassifierStep1Only(b *testing.B) { benchClassifier(b, true) }

func benchClassifier(b *testing.B, disableStep2 bool) {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: pipelineScale})
	if err != nil {
		b.Fatal(err)
	}
	f := borges.Features{Favicons: true}
	var companies int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := borges.Run(context.Background(), borges.Inputs{
			WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: borges.NewSimulatedLLM(),
		}, borges.Options{Features: &f, DisableClassifierStep2: disableStep2})
		if err != nil {
			b.Fatal(err)
		}
		companies = res.Stats.CompanyGroups
	}
	b.ReportMetric(float64(companies), "company-groups/op")
}
