// Hypergiants: reproduce the paper's Figure 9 scenario — how completely
// each mapping method captures the organizational footprint of the 16
// largest content platforms, including the Edgecast/Limelight
// consolidation that only web-based inference can see.
package main

import (
	"context"
	"fmt"
	"log"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)

	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := borges.PrepareEvaluation(context.Background(), ds, borges.NewSimulatedLLM())
	if err != nil {
		log.Fatal(err)
	}

	fig9 := ev.Figure9()
	fmt.Println(fig9.Render())

	// Drill into the flagship case: Edgecast's organization before and
	// after the Limelight consolidation through www.edg.io.
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		log.Fatal(err)
	}
	edgecast, _ := borges.ParseASN("AS15133")
	before := borges.AS2Org(ds.WHOIS).ClusterOf(edgecast)
	after := res.Mapping.ClusterOf(edgecast)
	fmt.Printf("Edgecast under AS2Org: %d networks\n", before.Size())
	fmt.Printf("Edgecast under Borges: %d networks (+%d via the edg.io redirect)\n",
		after.Size(), after.Size()-before.Size())
}
