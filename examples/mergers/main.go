// Mergers: a hand-built reconstruction of the paper's Figure 1 — the
// Level3 merger/demerger timeline — showing how Borges tracks
// organizational change across snapshots while the static WHOIS view
// (AS2Org) stays frozen.
//
// The scenario builds one WHOIS snapshot (registries rarely reflect
// acquisitions) and a per-year PeeringDB snapshot + web universe:
//
//	2010  Level3, Global Crossing, CenturyLink, Qwest all independent
//	2011  Level3 acquires Global Crossing (globalcrossing.com → level3.com)
//	2017  CenturyLink acquires Level3 (one PeeringDB organization)
//	2020  rebrand to Lumen (all brand sites redirect to lumen.com)
//	2022  LATAM spin-off to Cirion (AS-3549's site leaves the redirect web)
package main

import (
	"context"
	"fmt"
	"log"

	borges "github.com/nu-aqualab/borges"
)

// The cast. WHOIS keeps them fragmented for the whole timeline, exactly
// like the real registries do.
var (
	level3   = mustASN("AS3356")
	glbx     = mustASN("AS3549")
	ctl      = mustASN("AS209")
	qwest    = mustASN("AS3909")
	latamASN = mustASN("AS26617")
)

func mustASN(s string) borges.ASN {
	a, err := borges.ParseASN(s)
	if err != nil {
		panic(err)
	}
	return a
}

func buildWHOIS() *borges.WHOISSnapshot {
	w := borges.NewWHOISSnapshot("static")
	add := func(oid, name string, asns ...borges.ASN) {
		w.AddOrg(borges.WHOISOrg{ID: oid, Name: name, Country: "US", Source: "ARIN"})
		for _, a := range asns {
			w.AddAS(borges.WHOISASRecord{ASN: a, OrgID: oid, Name: name, Source: "ARIN"})
		}
	}
	add("LVLT-ARIN", "Level 3 Communications", level3)
	add("GBLX-ARIN", "Global Crossing", glbx)
	add("CL-ARIN", "CenturyLink", ctl)
	add("QWEST-ARIN", "Qwest", qwest)
	add("LATAM-ARIN", "Level 3 LATAM", latamASN)
	return w
}

// year describes one snapshot of the evolving web + PeeringDB state.
type year struct {
	label string
	pdb   func() *borges.PDBSnapshot
	web   func() *borges.WebUniverse
}

func net(id, orgID int, a borges.ASN, name, site string) borges.PDBNet {
	return borges.PDBNet{ID: id, OrgID: orgID, ASN: a, Name: name, Website: site}
}

func timeline() []year {
	return []year{
		{
			label: "2010: four independent operators",
			pdb: func() *borges.PDBSnapshot {
				p := borges.NewPDBSnapshot("2010")
				p.AddOrg(borges.PDBOrg{ID: 1, Name: "Level 3"})
				p.AddOrg(borges.PDBOrg{ID: 2, Name: "Global Crossing"})
				p.AddOrg(borges.PDBOrg{ID: 3, Name: "CenturyLink"})
				p.AddOrg(borges.PDBOrg{ID: 4, Name: "Qwest"})
				p.AddNet(net(1, 1, level3, "Level 3", "https://www.level3.com"))
				p.AddNet(net(2, 2, glbx, "Global Crossing", "https://www.globalcrossing.com"))
				p.AddNet(net(3, 3, ctl, "CenturyLink", "https://www.centurylink.com"))
				p.AddNet(net(4, 4, qwest, "Qwest", "https://www.qwest.com"))
				p.AddNet(net(5, 1, latamASN, "Level 3 LATAM", "https://www.level3.com/latam"))
				return p
			},
			web: func() *borges.WebUniverse {
				u := borges.NewWebUniverse()
				u.AddSite("www.level3.com", "level3")
				u.AddSite("www.globalcrossing.com", "glbx")
				u.AddSite("www.centurylink.com", "ctl")
				u.AddSite("www.qwest.com", "qwest")
				return u
			},
		},
		{
			label: "2011: Level3 acquires Global Crossing",
			pdb: func() *borges.PDBSnapshot {
				p := borges.NewPDBSnapshot("2011")
				p.AddOrg(borges.PDBOrg{ID: 1, Name: "Level 3"})
				p.AddOrg(borges.PDBOrg{ID: 2, Name: "Global Crossing"})
				p.AddOrg(borges.PDBOrg{ID: 3, Name: "CenturyLink"})
				p.AddOrg(borges.PDBOrg{ID: 4, Name: "Qwest"})
				p.AddNet(net(1, 1, level3, "Level 3", "https://www.level3.com"))
				// Stale record: still points at the acquired brand.
				p.AddNet(net(2, 2, glbx, "Global Crossing", "https://www.globalcrossing.com"))
				p.AddNet(net(3, 3, ctl, "CenturyLink", "https://www.centurylink.com"))
				p.AddNet(net(4, 4, qwest, "Qwest", "https://www.qwest.com"))
				p.AddNet(net(5, 1, latamASN, "Level 3 LATAM", "https://www.level3.com/latam"))
				return p
			},
			web: func() *borges.WebUniverse {
				u := borges.NewWebUniverse()
				u.AddSite("www.level3.com", "level3")
				u.RedirectHost("www.globalcrossing.com", "https://www.level3.com/")
				u.AddSite("www.centurylink.com", "ctl")
				// Qwest is being consolidated into CenturyLink too.
				u.RedirectHost("www.qwest.com", "https://www.centurylink.com/")
				return u
			},
		},
		{
			label: "2017: CenturyLink acquires Level3 (one PeeringDB org)",
			pdb: func() *borges.PDBSnapshot {
				p := borges.NewPDBSnapshot("2017")
				p.AddOrg(borges.PDBOrg{ID: 3, Name: "CenturyLink"})
				p.AddNet(net(1, 3, level3, "Level 3", "https://www.level3.com"))
				p.AddNet(net(2, 3, glbx, "Global Crossing", "https://www.globalcrossing.com"))
				p.AddNet(net(3, 3, ctl, "CenturyLink", "https://www.centurylink.com"))
				p.AddNet(net(4, 3, qwest, "Qwest", "https://www.qwest.com"))
				p.AddNet(net(5, 3, latamASN, "Level 3 LATAM", "https://www.level3.com/latam"))
				return p
			},
			web: func() *borges.WebUniverse {
				u := borges.NewWebUniverse()
				u.AddSite("www.centurylink.com", "ctl")
				u.RedirectHost("www.level3.com", "https://www.centurylink.com/")
				u.RedirectHost("www.globalcrossing.com", "https://www.level3.com/")
				u.RedirectHost("www.qwest.com", "https://www.centurylink.com/")
				return u
			},
		},
		{
			label: "2022: Lumen rebrand + LATAM spin-off to Cirion",
			pdb: func() *borges.PDBSnapshot {
				p := borges.NewPDBSnapshot("2022")
				p.AddOrg(borges.PDBOrg{ID: 3, Name: "Lumen"})
				p.AddOrg(borges.PDBOrg{ID: 9, Name: "Cirion"})
				p.AddNet(net(1, 3, level3, "Lumen AS3356", "https://www.level3.com"))
				p.AddNet(net(2, 3, glbx, "Lumen AS3549", "https://www.globalcrossing.com"))
				p.AddNet(net(3, 3, ctl, "Lumen AS209", "https://www.centurylink.com"))
				p.AddNet(net(4, 3, qwest, "Lumen AS3909", "https://www.qwest.com"))
				// Demerger: Cirion leaves the Lumen redirect web.
				p.AddNet(net(5, 9, latamASN, "Cirion", "https://www.ciriontechnologies.com"))
				return p
			},
			web: func() *borges.WebUniverse {
				u := borges.NewWebUniverse()
				u.AddSite("www.lumen.com", "lumen")
				for _, h := range []string{"www.level3.com", "www.globalcrossing.com",
					"www.centurylink.com", "www.qwest.com"} {
					u.RedirectHost(h, "https://www.lumen.com/")
				}
				u.AddSite("www.ciriontechnologies.com", "cirion")
				return u
			},
		},
	}
}

func main() {
	log.SetFlags(0)
	w := buildWHOIS()

	base := borges.AS2Org(w)
	fmt.Printf("AS2Org (static WHOIS view): %d organizations — it never sees a merger\n\n", base.NumOrgs())

	var prev *borges.Mapping
	for _, y := range timeline() {
		res, err := borges.Run(context.Background(), borges.Inputs{
			WHOIS:     w,
			PDB:       y.pdb(),
			Transport: y.web(),
			Provider:  borges.NewSimulatedLLM(),
		}, borges.Options{})
		if err != nil {
			log.Fatal(err)
		}
		c := res.Mapping.ClusterOf(level3)
		fmt.Printf("%s\n", y.label)
		fmt.Printf("  organizations: %d;  Level3's cluster: %v\n", res.Mapping.NumOrgs(), c.ASNs)
		together := func(a, b borges.ASN) string {
			if res.Mapping.ClusterOf(a) == res.Mapping.ClusterOf(b) {
				return "same org"
			}
			return "separate"
		}
		fmt.Printf("  Level3/GlobalCrossing: %-9s  Level3/CenturyLink: %-9s  Level3/LATAM: %s\n",
			together(level3, glbx), together(level3, ctl), together(level3, latamASN))
		// Longitudinal view: what changed since the previous snapshot?
		if prev != nil {
			diff := borges.CompareMappings(prev, res.Mapping)
			fmt.Printf("  vs previous snapshot: %s\n", diff.Summary())
			for _, m := range diff.MergesOf() {
				fmt.Printf("    merge → %s unites %d organizations\n", m.Name, len(m.Sources))
			}
		}
		fmt.Println()
		prev = res.Mapping
	}
}
