// Quickstart: generate a small synthetic corpus, run the full Borges
// pipeline against the simulated web and simulated LLM, and inspect the
// resulting AS-to-Organization mapping.
package main

import (
	"context"
	"fmt"
	"log"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)

	// A seeded corpus: WHOIS + PeeringDB snapshots, a simulated web,
	// APNIC populations, and AS-Rank. Scale 0.05 keeps this fast;
	// scale 1.0 reproduces the paper's snapshot sizes.
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 42, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d ASNs in %d WHOIS orgs, %d PeeringDB nets\n",
		ds.WHOIS.NumASNs(), ds.WHOIS.NumOrgs(), ds.PDB.NumNets())

	// Run the pipeline: organization keys + LLM notes/aka extraction +
	// web-based inference (redirects, favicons).
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,                   // swap for nil to crawl the real web
		Provider:  borges.NewSimulatedLLM(), // swap for NewOpenAIProvider(...)
	}, borges.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Compare against the baselines with the Organization Factor.
	baseTheta, _ := borges.Theta(borges.AS2Org(ds.WHOIS))
	plusTheta, _ := borges.Theta(borges.AS2OrgPlus(ds.WHOIS, ds.PDB))
	ourTheta, _ := borges.Theta(res.Mapping)
	fmt.Printf("Organization Factor: AS2Org %.4f → as2org+ %.4f → Borges %.4f\n",
		baseTheta, plusTheta, ourTheta)

	// Query the mapping: who are Lumen's siblings?
	lumen, _ := borges.ParseASN("AS3356")
	if c := res.Mapping.ClusterOf(lumen); c != nil {
		fmt.Printf("%s (%s) manages %d networks: %v…\n",
			c.Name, lumen, c.Size(), c.ASNs[:min(5, len(c.ASNs))])
	}

	// The Edgecast / Limelight merger is discovered through the web
	// module — both sites redirect to edg.io.
	edgecast, _ := borges.ParseASN("AS15133")
	limelight, _ := borges.ParseASN("AS22822")
	fmt.Printf("Edgecast and Limelight under one organization: %v\n",
		res.Mapping.ClusterOf(edgecast) == res.Mapping.ClusterOf(limelight))

	// Print the five largest organizations.
	fmt.Println("\nlargest organizations:")
	for i, c := range res.Mapping.Clusters {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-40s %4d networks\n", c.Name, c.Size())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
