// Snapshots: the on-disk workflow — write a corpus to disk in the real
// formats (CAIDA AS2Org JSON-lines, PeeringDB API dump, APNIC CSV,
// AS-Rank CSV), parse it back the way a consumer of real snapshots
// would, run the pipeline, and persist the resulting mapping as JSON
// lines for downstream tools.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "borges-snapshots-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Produce a corpus and write it in the real on-disk formats.
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		return path
	}
	whoisPath := write("as2org.jsonl", func(f *os.File) error { return borges.WriteWHOIS(f, ds.WHOIS) })
	pdbPath := write("peeringdb.json", func(f *os.File) error { return borges.WritePeeringDB(f, ds.PDB) })
	apnicPath := write("apnic.csv", func(f *os.File) error { return borges.WriteAPNIC(f, ds.APNIC) })

	// 2. Parse them back — exactly what a consumer of real CAIDA /
	// PeeringDB snapshots does.
	wf, err := os.Open(whoisPath)
	if err != nil {
		log.Fatal(err)
	}
	defer wf.Close()
	whois, err := borges.ParseWHOIS(wf, "20240701")
	if err != nil {
		log.Fatal(err)
	}
	pf, err := os.Open(pdbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer pf.Close()
	pdb, err := borges.ParsePeeringDB(pf, "20240724")
	if err != nil {
		log.Fatal(err)
	}
	af, err := os.Open(apnicPath)
	if err != nil {
		log.Fatal(err)
	}
	defer af.Close()
	apnic, err := borges.ParseAPNIC(af, "20240701")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed: %d WHOIS ASNs, %d PeeringDB nets, %d APNIC records\n",
		whois.NumASNs(), pdb.NumNets(), apnic.Len())

	// 3. Run the pipeline over the parsed snapshots. The web universe
	// regenerates deterministically from the same seed; against real
	// snapshots Transport would be nil (live crawling).
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     whois,
		PDB:       pdb,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		log.Fatal(err)
	}
	theta, _ := borges.Theta(res.Mapping)
	fmt.Printf("mapped %d networks into %d organizations (θ = %.4f)\n",
		res.Mapping.NumASNs(), res.Mapping.NumOrgs(), theta)

	// 4. Persist and reload the mapping.
	mapPath := write("mapping.jsonl", func(f *os.File) error {
		return borges.WriteMapping(f, res.Mapping)
	})
	mf, err := os.Open(mapPath)
	if err != nil {
		log.Fatal(err)
	}
	defer mf.Close()
	reloaded, err := borges.ReadMapping(mf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded mapping: %d organizations (round-trip intact: %v)\n",
		reloaded.NumOrgs(), reloaded.NumOrgs() == res.Mapping.NumOrgs())

	// 5. Longitudinal view against the registry-only baseline.
	diff := borges.CompareMappings(borges.AS2Org(whois), res.Mapping)
	fmt.Printf("vs AS2Org: %s\n", diff.Summary())
}
