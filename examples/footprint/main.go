// Footprint: reproduce the paper's §6.2 analysis — how Borges expands
// the recognised country-level footprint of international conglomerates
// (Table 9), with a drill-down into Digicel, the paper's flagship case
// (4 → 25 countries).
package main

import (
	"context"
	"fmt"
	"log"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)

	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := borges.PrepareEvaluation(context.Background(), ds, borges.NewSimulatedLLM())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(ev.Table9().Render())
	fmt.Println(ev.Table8().Render())

	// Digicel drill-down: the union of per-country user estimates over
	// the consolidated organization.
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		log.Fatal(err)
	}
	digicel, _ := borges.ParseASN("AS23520")
	cluster := res.Mapping.ClusterOf(digicel)
	if cluster == nil {
		log.Fatal("Digicel missing from the mapping")
	}
	countries := ds.APNIC.CountriesOfSet(cluster.ASNs)
	fmt.Printf("Digicel consolidated: %d networks, %d countries, %d users\n",
		cluster.Size(), len(countries), ds.APNIC.UsersOfSet(cluster.ASNs))
	fmt.Printf("countries: %v\n", countries)
}
