// Command borges-gen generates a calibrated synthetic corpus — WHOIS
// (CAIDA AS2Org form), PeeringDB (API-dump form), APNIC populations, and
// AS-Rank — and writes it to disk together with the simulated web
// universe (web.jsonl), so a corpus on disk is complete and
// self-contained.
//
// Usage:
//
//	borges-gen -seed 1 -scale 1.0 -out ./corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borges-gen: ")

	seed := flag.Int64("seed", 1, "generator seed (determines the whole corpus)")
	scale := flag.Float64("scale", 1.0, "corpus scale; 1.0 reproduces the paper's snapshot sizes")
	out := flag.String("out", "corpus", "output directory")
	stream := flag.Bool("stream", false, "generate in constant memory: chunks are appended to the output files as they are produced instead of materializing the whole corpus first (use for -scale values targeting millions of ASNs)")
	chunkUnits := flag.Int("chunk-units", 2048, "generator units per streamed chunk with -stream; smaller chunks lower peak memory")
	flag.Parse()

	// Bound -scale before generating anything: the generator rejects
	// out-of-range values too, but the message here names the flag and
	// fires before any files are created.
	if *scale < borges.MinDatasetScale || *scale > borges.MaxDatasetScale {
		log.Fatalf("-scale %g out of range [%g, %g] (the ceiling targets ~120M synthetic ASNs, safely below the 32-bit ASN space)",
			*scale, borges.MinDatasetScale, borges.MaxDatasetScale)
	}

	if *stream {
		stats, err := borges.WriteDatasetStream(*out, borges.DatasetConfig{Seed: *seed, Scale: *scale}, *chunkUnits)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range []string{"as2org.jsonl", "peeringdb.json", "apnic.csv", "asrank.csv", "web.jsonl"} {
			fmt.Println("wrote", filepath.Join(*out, name))
		}
		fmt.Printf("corpus: %d WHOIS ASNs in %d orgs, %d PeeringDB nets in %d orgs, %d APNIC records, %d ranked ASNs (%d streamed chunks)\n",
			stats.WHOISASNs, stats.WHOISOrgs, stats.PDBNets, stats.PDBOrgs,
			stats.APNICRecords, stats.RankedASNs, stats.Chunks)
		fmt.Printf("web universe: %d simulated sites (web.jsonl; also regenerable with -seed %d -scale %g)\n",
			stats.Sites, *seed, *scale)
		return
	}

	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("write %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("close %s: %v", path, err)
		}
		fmt.Println("wrote", path)
	}
	write("as2org.jsonl", func(f *os.File) error { return borges.WriteWHOIS(f, ds.WHOIS) })
	write("peeringdb.json", func(f *os.File) error { return borges.WritePeeringDB(f, ds.PDB) })
	write("apnic.csv", func(f *os.File) error { return borges.WriteAPNIC(f, ds.APNIC) })
	write("asrank.csv", func(f *os.File) error { return borges.WriteASRank(f, ds.ASRank) })
	write("web.jsonl", func(f *os.File) error { return borges.WriteWebUniverse(f, ds.Web) })

	fmt.Printf("corpus: %d WHOIS ASNs in %d orgs, %d PeeringDB nets in %d orgs, %d APNIC records, %d ranked ASNs\n",
		ds.WHOIS.NumASNs(), ds.WHOIS.NumOrgs(),
		ds.PDB.NumNets(), ds.PDB.NumOrgs(),
		ds.APNIC.Len(), ds.ASRank.Len())
	fmt.Printf("web universe: %d simulated sites (web.jsonl; also regenerable with -seed %d -scale %g)\n",
		ds.Web.NumSites(), *seed, *scale)
}
