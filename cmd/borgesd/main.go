// Command borgesd serves a consolidated AS-to-Organization mapping over
// HTTP: point lookups, organization search, corpus statistics (θ), and
// operational metrics, with hot snapshot reload.
//
// Serve a mapping produced by cmd/borges:
//
//	borges -format jsonl -o mapping.jsonl
//	borgesd -addr :8080 -mapping mapping.jsonl
//
// or a binary snapshot artifact (borges -format binary, or a previous
// borgesd -snapshot-out), which cold-starts in milliseconds because
// nothing is re-parsed, re-tokenized, or re-rendered:
//
//	borgesd -addr :8080 -snapshot-in snapshot.bin
//
// or self-bootstrap from the calibrated synthetic corpus (generate →
// run pipeline in-process → serve):
//
//	borgesd -addr :8080 -seed 1 -scale 0.05
//
// -snapshot-out writes the snapshot as a binary artifact (atomically:
// temp file, fsync, rename) at boot and again after every successful
// reload, so a restart always cold-starts from the latest data.
// -delta-in names a mapping delta (borges-diff -delta); POST
// /admin/reload?mode=delta patches the serving snapshot in place of a
// full rebuild, validating the delta against the serving base first.
//
// A fleet distributes one build to many serving processes. The
// distributor publishes every snapshot swap as a versioned binary
// artifact, and replicas follow it — fetching resumably, verifying the
// content hash before anything serves, persisting a last-good artifact
// for crash recovery, and heartbeating their served version back:
//
//	borgesd -addr :8080 -fleet -snapshot-in snapshot.bin
//	borgesd -addr :8081 -join http://127.0.0.1:8080 -last-good r1.snapbin
//
// GET /fleet/status on the distributor reports which version each
// replica serves and flags divergence.
//
// Endpoints:
//
//	GET  /v1/as/{asn}     organization, siblings, contributing features
//	GET  /v1/org/{id}     one organization by cluster ID
//	GET  /v1/search?name= case-insensitive organization-name search
//	POST /v1/bulk         NDJSON stream of lookups (one ASN or {"asn":N}
//	                      per line in, one result per line out), served
//	                      from one pinned snapshot; -bulk-max-lines and
//	                      -max-body-bytes bound a request
//	GET  /v1/watch        SSE stream of cluster-membership changes (the
//	                      mapdiff edit script of each reload); ?since=
//	                      resumes after a disconnect
//	GET  /v1/stats        θ, org/ASN counts, size histogram
//	POST /admin/reload    re-read -mapping (or re-run the pipeline)
//	POST /admin/rollback  swap back to the newest verified generation
//	                      (with -keep-generations)
//	GET  /healthz         liveness + snapshot age + degraded/ok run health
//	GET  /metrics         Prometheus text format
//	GET  /debug/pprof/*   runtime profiles (only with -pprof)
//
// POST /admin/reload swaps the snapshot atomically: in-flight requests
// finish on the old view, new requests see the new one, and a reload
// that fails to parse or validate leaves the old snapshot serving. The
// daemon exits cleanly on SIGINT/SIGTERM, draining in-flight requests.
//
// Under overload the daemon degrades instead of collapsing: an
// adaptive concurrency limiter (-max-inflight, -target-latency) sheds
// excess load with 503 + Retry-After, per-client token buckets
// (-rate, -burst) refuse abusive clients with 429, /v1/search sheds
// first and browns out (capped, cheaper results) under pressure
// (-shed-search-first), and /healthz, /metrics, and /admin/* are never
// shed. See the borgesd_admission_* series on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgesd: ")

	addr := flag.String("addr", ":8080", "listen address")
	mapping := flag.String("mapping", "", "mapping JSONL file (from borges -format jsonl); reload re-reads it")
	snapshotIn := flag.String("snapshot-in", "", "snapshot file to serve: a binary artifact (borges -format binary, borgesd -snapshot-out) or mapping JSONL, sniffed by magic; reload re-reads it")
	snapshotOut := flag.String("snapshot-out", "", "write the initial snapshot as a binary artifact to this path, then keep serving")
	mmapIn := flag.Bool("mmap", false, "memory-map binary -snapshot-in artifacts instead of buffering them: bodies serve off the page cache and cold-start heap stays O(index), not O(file); falls back to buffered loads where mapping is unavailable")
	deltaIn := flag.String("delta-in", "", "mapping delta JSONL (borges-diff -delta); POST /admin/reload?mode=delta applies it to the serving snapshot")
	seed := flag.Int64("seed", 1, "synthetic corpus seed (when -mapping is unset)")
	scale := flag.Float64("scale", 0.05, "synthetic corpus scale (when -mapping is unset)")
	timeout := flag.Duration("timeout", 0, "per-request timeout (0 = default 10s)")
	pprof := flag.Bool("pprof", false, "expose /debug/pprof/* profiling handlers")
	quiet := flag.Bool("q", false, "suppress structured request logging")
	maxRetries := flag.Int("max-retries", 2, "retries per transient pipeline fault (0 = fail on first error)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures before a host/model circuit opens (0 = no breakers)")
	failFast := flag.Bool("fail-fast", false, "abort pipeline runs on the first error instead of quarantining and serving a degraded mapping")
	maxInflight := flag.Int("max-inflight", 256, "adaptive concurrency ceiling for lookup endpoints (0 disables admission control)")
	rate := flag.Float64("rate", 50, "per-client sustained requests/sec, keyed by X-Api-Key or client IP (0 disables per-client rate limiting)")
	burst := flag.Int("burst", 100, "per-client burst capacity for -rate")
	targetLatency := flag.Duration("target-latency", 150*time.Millisecond, "latency target steering the adaptive concurrency limit")
	shedSearchFirst := flag.Bool("shed-search-first", true, "shed /v1/search before point lookups under overload (search also browns out under pressure)")
	buildWorkers := flag.Int("build-workers", 0, "workers indexing and pre-rendering each reloaded snapshot (0 = GOMAXPROCS); lower to reduce CPU contention with serving traffic during reloads")
	bulkMaxLines := flag.Int("bulk-max-lines", 0, "max input lines per /v1/bulk request (0 = default 1048576)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "max request body bytes on body-reading endpoints (0 = default 64 MiB)")
	watchBuffer := flag.Int("watch-buffer", 0, "per-subscriber /v1/watch event queue depth; a subscriber this many reloads behind is evicted (0 = default 64)")
	keepGenerations := flag.Int("keep-generations", 0, "keep the last N verified snapshot generations on disk for rollback (0 disables the generation ring)")
	generationsDir := flag.String("generations-dir", "borgesd-generations", "directory holding the generation ring (with -keep-generations)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background integrity-scrub period: re-verify generations, -snapshot-out, and replica last-good artifacts, quarantining corruption; a failed post-scrub health probe auto-rolls back (0 disables)")
	noCanary := flag.Bool("no-canary", false, "skip the canary check that replays sampled lookups against every candidate snapshot before it swaps in")
	canarySamples := flag.Int("canary-samples", 0, "lookups the canary replays per candidate snapshot (0 = default 64)")
	canaryThetaTol := flag.Float64("canary-theta-tol", 0, "reject a candidate whose θ differs from the serving snapshot's by more than this (0 disables the θ gate)")
	fleetMode := flag.Bool("fleet", false, "distributor mode: publish versioned snapshot artifacts on /fleet/* for replicas to follow")
	join := flag.String("join", "", "replica mode: follow the distributor at this base URL (e.g. http://host:8080); snapshots come from it, not from -mapping/-snapshot-in")
	replicaID := flag.String("replica-id", "", "replica identity in heartbeats and /fleet/status (default hostname-pid)")
	lastGood := flag.String("last-good", "borgesd-lastgood.snapbin", "replica last-good artifact path: every verified snapshot is persisted here and cold starts load it before touching the network")
	heartbeatInterval := flag.Duration("heartbeat-interval", 5*time.Second, "replica served-version report period")
	pollInterval := flag.Duration("poll-interval", 5*time.Second, "replica manifest poll fallback period (the watch stream and heartbeats usually notify faster)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := borges.ServeOptions{
		RequestTimeout: *timeout,
		EnablePprof:    *pprof,
		BuildWorkers:   *buildWorkers,
		BulkMaxLines:   *bulkMaxLines,
		MaxBodyBytes:   *maxBodyBytes,
		WatchBuffer:    *watchBuffer,
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	if *maxInflight > 0 {
		opts.Admission = &borges.AdmissionConfig{
			MaxInflight:     *maxInflight,
			TargetLatency:   *targetLatency,
			Rate:            *rate,
			Burst:           *burst,
			ShedSearchFirst: *shedSearchFirst,
		}
	}

	if *deltaIn != "" {
		opts.DeltaSource = borges.MappingDeltaFileSource(*deltaIn)
	}

	// Snapshot persistence after every successful swap is handled by
	// the serving layer: best-effort (a failed write is logged and
	// counted as borgesd_snapshot_persist_errors_total, never fails the
	// swap), atomic, and scrubbed for at-rest corruption.
	opts.SnapshotOut = *snapshotOut
	opts.Canary = borges.CanaryConfig{
		Disable:        *noCanary,
		Samples:        *canarySamples,
		ThetaTolerance: *canaryThetaTol,
	}
	opts.ScrubInterval = *scrubInterval

	var ring *borges.GenerationRing
	if *keepGenerations > 0 {
		var err error
		ring, err = borges.NewGenerationRing(*generationsDir, *keepGenerations, opts.Logf)
		if err != nil {
			log.Fatal(err)
		}
		opts.Generations = ring
		log.Printf("generation ring at %s keeps %d verified snapshots (%d recovered)",
			*generationsDir, *keepGenerations, ring.Len())
	}

	if *join != "" {
		if *mapping != "" || *snapshotIn != "" || *fleetMode {
			log.Fatal("-join is mutually exclusive with -mapping, -snapshot-in, and -fleet")
		}
		id := *replicaID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		rep, err := borges.NewFleetReplica(ctx, borges.FleetReplicaOptions{
			ID:                id,
			Distributor:       *join,
			LastGood:          *lastGood,
			Addr:              *addr,
			PollInterval:      *pollInterval,
			HeartbeatInterval: *heartbeatInterval,
			Serve:             opts,
			Logf:              opts.Logf,
		})
		if err != nil {
			log.Fatal(err)
		}
		snap := rep.Server().Snapshot()
		if ring != nil {
			if _, err := ring.Record(snap, time.Now()); err != nil {
				log.Printf("generation ring: %v", err)
			}
		}
		st := snap.Stats()
		log.Printf("replica %s serving %d organizations / %d networks (hash %.12s) on %s, following %s",
			id, st.Orgs, st.ASNs, snap.ContentHash(), *addr, *join)
		go func() {
			if err := rep.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("follower loop: %v", err)
			}
		}()
		if err := rep.Serve(ctx, *addr); err != nil {
			log.Fatal(err)
		}
		log.Printf("shut down cleanly")
		return
	}

	var (
		snap  *borges.Snapshot
		label string
	)
	if *snapshotIn != "" {
		if *mapping != "" {
			log.Fatal("-snapshot-in and -mapping are mutually exclusive")
		}
		source := borges.SnapshotFileSource(*snapshotIn)
		if *mmapIn {
			source = borges.SnapshotFileSourceMapped(*snapshotIn)
		}
		label = *snapshotIn
		opts.Prepared = source
		log.Printf("loading snapshot from %s", label)
		var err error
		if snap, err = source(ctx); err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot loaded (mode %s, hash %.12s)", snap.LoadMode(), snap.ContentHash())
	} else if *mapping != "" {
		source := borges.MappingFileSource(*mapping)
		label = *mapping
		opts.Source = source
		log.Printf("loading mapping from %s", label)
		m, err := source(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if snap, err = borges.NewSnapshot(m, label); err != nil {
			log.Fatal(err)
		}
	} else {
		// One cache outlives the source closure so every /admin/reload
		// replays memoized LLM completions and crawl outcomes instead of
		// re-running them — including healing reloads after a degraded
		// run, which re-fetch only the quarantined items.
		store, err := borges.NewCache(borges.CacheOptions{})
		if err != nil {
			log.Fatal(err)
		}
		source := pipelineSource(*seed, *scale, store, borges.Options{
			MaxRetries:       *maxRetries,
			BreakerThreshold: *breakerThreshold,
			FailFast:         *failFast,
		})
		label = "synthetic pipeline"
		opts.HealthSource = source
		log.Printf("loading mapping from %s", label)
		m, health, err := source(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if health.Status != borges.SnapshotHealthOK {
			log.Printf("pipeline degraded: %d quarantined (%s)", health.Quarantined, health.Detail)
		}
		if snap, err = borges.NewSnapshotWithHealth(m, label, health); err != nil {
			log.Fatal(err)
		}
	}

	if *snapshotOut != "" {
		// Boot-time persistence failing is a warning, not a reason to
		// refuse service: the snapshot is in memory and serving, the
		// persist-error metric reflects the miss, and the scrubber (or
		// the next successful swap) rewrites the artifact.
		if hash, err := borges.WriteSnapshotFile(*snapshotOut, snap); err != nil {
			log.Printf("snapshot-out: %v (continuing without boot persistence)", err)
		} else {
			log.Printf("wrote binary snapshot %s (hash %.12s)", *snapshotOut, hash)
		}
	}
	if ring != nil {
		// The boot snapshot becomes generation one, so the very first
		// reload is already reversible.
		if _, err := ring.Record(snap, time.Now()); err != nil {
			log.Printf("generation ring: %v", err)
		}
	}

	st := snap.Stats()
	log.Printf("serving %d organizations / %d networks (θ = %.4f) on %s",
		st.Orgs, st.ASNs, st.Theta, *addr)

	if *fleetMode {
		dist, err := borges.NewFleetDistributor(snap, opts, borges.FleetDistributorOptions{
			Logf: opts.Logf,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("distributing snapshots on %s/fleet/* (hash %.12s)", *addr, dist.Manifest().ContentHash)
		if err := dist.Serve(ctx, *addr); err != nil {
			log.Fatal(err)
		}
		log.Printf("shut down cleanly")
		return
	}

	if err := borges.Serve(ctx, *addr, snap, opts); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// pipelineSource builds a health-aware Source that regenerates the
// seeded synthetic corpus and runs the full Borges pipeline in-process —
// the -seed/-scale self-bootstrap mode, also exercised on every
// /admin/reload. The cache is shared across reloads, so only the first
// run pays for LLM completions and crawls, and the run's fault report
// travels with the snapshot into /healthz, /v1/stats, and /metrics.
func pipelineSource(seed int64, scale float64, store *borges.Cache, base borges.Options) borges.SnapshotHealthSource {
	return func(ctx context.Context) (*borges.Mapping, borges.SnapshotHealth, error) {
		opts := base
		opts.Cache = store
		ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: seed, Scale: scale})
		if err != nil {
			return nil, borges.SnapshotHealth{}, err
		}
		res, err := borges.Run(ctx, borges.Inputs{
			WHOIS:     ds.WHOIS,
			PDB:       ds.PDB,
			Transport: ds.Web,
			Provider:  borges.NewSimulatedLLM(),
		}, opts)
		if err != nil {
			return nil, borges.SnapshotHealth{}, err
		}
		return res.Mapping, borges.HealthFromReport(res.Report), nil
	}
}
