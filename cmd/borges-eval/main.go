// Command borges-eval regenerates every table and figure of the paper's
// evaluation (§5, §6) over the calibrated synthetic corpus: the
// per-feature contribution counts (Table 3), the LLM-stage validations
// (Tables 4 and 5), the Organization Factor grid (Table 6), the
// population and footprint analyses (Tables 7–9), and the series behind
// Figures 7–9.
//
// Usage:
//
//	borges-eval                      # all experiments, paper scale
//	borges-eval -exp table6          # one experiment
//	borges-eval -scale 0.1 -format csv -out results/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borges-eval: ")

	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 = paper scale)")
	exp := flag.String("exp", "all", "experiment id (table3..table9, figure7..figure9, ablation-*, accuracy, 'all', or 'ablations')")
	format := flag.String("format", "text", "output format: text, csv, or markdown")
	out := flag.String("out", "", "write one file per experiment into this directory instead of stdout")
	flag.Parse()

	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := borges.PrepareEvaluation(context.Background(), ds, borges.NewSimulatedLLM())
	if err != nil {
		log.Fatal(err)
	}

	var tables []*borges.ResultTable
	switch {
	case *exp == "all":
		tables, err = ev.All()
	case *exp == "ablations":
		tables, err = ev.Ablations(context.Background())
	default:
		var t *borges.ResultTable
		t, err = ev.ByID(*exp)
		tables = []*borges.ResultTable{t}
	}
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range tables {
		var body, ext string
		switch *format {
		case "csv":
			body, ext = t.CSV(), "csv"
		case "markdown", "md":
			body, ext = t.Markdown(), "md"
		default:
			body, ext = t.Render(), "txt"
		}
		if *out == "" {
			fmt.Println(body)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, t.ID+"."+ext)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
