// Command benchguard compares two benchmark JSON artifacts (the
// BENCH_*.json files the bench suites emit) and fails when a selected
// cell's ns/op regresses beyond a threshold against the committed
// baseline. CI runs it after the bench smoke step so a cold-start or
// lookup regression fails the build instead of landing silently.
//
// Usage:
//
//	benchguard -baseline internal/serve/BENCH_baseline.json \
//	           -current internal/serve/BENCH_serve.json \
//	           -match 'ColdStart|Lookup' -max-regress 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
)

type benchFile struct {
	Benchmarks []benchRecord `json:"benchmarks"`
}

type benchRecord struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
}

func load(path string) (map[string]benchRecord, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]benchRecord, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		m[r.Name] = r
	}
	return m, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	baselinePath := flag.String("baseline", "", "committed baseline BENCH json")
	currentPath := flag.String("current", "", "freshly produced BENCH json")
	match := flag.String("match", ".", "regexp selecting benchmark names to compare")
	maxRegress := flag.Float64("max-regress", 20, "maximum allowed ns/op regression, percent")
	flag.Parse()

	if *baselinePath == "" || *currentPath == "" {
		log.Fatal("-baseline and -current are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		log.Fatalf("-match: %v", err)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		log.Fatal(err)
	}

	compared, failed := 0, 0
	for name, base := range baseline {
		if !re.MatchString(name) || base.NsPerOp <= 0 {
			continue
		}
		cur, ok := current[name]
		if !ok {
			// A cell missing from the fresh run means the benchmark was
			// renamed or dropped; that must be a deliberate baseline
			// update, not a silent pass.
			fmt.Printf("MISSING  %-55s baseline %.0f ns/op, absent from current\n", name, base.NsPerOp)
			failed++
			continue
		}
		compared++
		delta := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		status := "ok"
		if delta > *maxRegress {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-8s %-55s %12.0f -> %12.0f ns/op (%+.1f%%)\n", status, name, base.NsPerOp, cur.NsPerOp, delta)
	}
	if compared == 0 && failed == 0 {
		log.Fatalf("no baseline cells matched %q — guard is vacuous", *match)
	}
	if failed > 0 {
		log.Fatalf("%d of %d compared cells regressed beyond %.0f%% (or went missing)", failed, compared, *maxRegress)
	}
	fmt.Printf("benchguard: %d cells within %.0f%% of baseline\n", compared, *maxRegress)
}
