// Command borges runs the full AS-to-Organization mapping pipeline and
// emits the resulting mapping.
//
// By default it generates the calibrated synthetic corpus and runs
// against the simulated web and simulated LLM:
//
//	borges -seed 1 -scale 0.1 -o mapping.csv
//	borges -format jsonl -o mapping.jsonl
//	borges -format binary -o snapshot.bin   # borgesd -snapshot-in loads it instantly
//
// With -as2org/-peeringdb it consumes on-disk snapshots (CAIDA AS2Org
// JSON-lines and a PeeringDB API dump); those runs need -live to crawl
// the real web through http.DefaultTransport, and -openai-base /
// -openai-key (or OPENAI_API_KEY) select a real model — together they
// reproduce the paper's original configuration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borges: ")

	seed := flag.Int64("seed", 1, "synthetic corpus seed")
	scale := flag.Float64("scale", 0.1, "synthetic corpus scale (1.0 = paper scale)")
	as2orgPath := flag.String("as2org", "", "CAIDA AS2Org JSON-lines snapshot (disables -synth)")
	pdbPath := flag.String("peeringdb", "", "PeeringDB API dump (required with -as2org)")
	webPath := flag.String("web", "", "simulated-web manifest (web.jsonl from borges-gen) for on-disk corpora")
	live := flag.Bool("live", false, "crawl the real web instead of the simulated universe")
	openaiBase := flag.String("openai-base", "", "OpenAI-compatible endpoint (default: simulated LLM)")
	openaiKey := flag.String("openai-key", os.Getenv("OPENAI_API_KEY"), "API key for -openai-base")
	features := flag.String("features", "all", "comma-separated features: oidp,na,rr,f (or 'all')")
	out := flag.String("o", "-", "output file for the mapping ('-' = stdout)")
	format := flag.String("format", "csv", "mapping output format: csv, jsonl, or binary (a serving snapshot artifact for borgesd -snapshot-in)")
	cacheDir := flag.String("cache-dir", "", "persist the LLM/crawl cache in this directory (reused across runs)")
	noCache := flag.Bool("no-cache", false, "disable the in-process LLM/crawl cache")
	verbose := flag.Bool("v", false, "log pipeline stage progress to stderr")
	maxRetries := flag.Int("max-retries", 2, "retries per transient fault before quarantining the item (0 = no retries)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures before a host/model circuit opens (0 = no breakers)")
	failFast := flag.Bool("fail-fast", false, "abort the run on the first error instead of quarantining and degrading")
	reportPath := flag.String("report", "", "write the run's fault report (JSON) to this file ('-' = stderr)")
	consolidateWorkers := flag.Int("consolidate-workers", 0, "workers for the sharded sibling-set consolidation (0 = GOMAXPROCS); output is identical at any count")
	spillDir := flag.String("spill-dir", "", "spool sibling sets to shard files under this directory during consolidation, bounding peak memory at mega-scale corpora; output is identical to the in-memory build")
	flag.Parse()

	// Bound -scale up front with a readable message: the generator
	// rejects out-of-range scales too, but only after flag typos have
	// already cost a process start, and the bound here names the flag.
	if *as2orgPath == "" && (*scale < borges.MinDatasetScale || *scale > borges.MaxDatasetScale) {
		log.Fatalf("-scale %g out of range [%g, %g] (the ceiling targets ~120M synthetic ASNs, safely below the 32-bit ASN space)",
			*scale, borges.MinDatasetScale, borges.MaxDatasetScale)
	}

	if *noCache && *cacheDir != "" {
		log.Fatal("-no-cache and -cache-dir are mutually exclusive")
	}

	// Reject a bad -format before the pipeline runs: a multi-minute
	// crawl+extract batch must not complete only to fail at write time.
	switch *format {
	case "csv", "jsonl", "binary":
	default:
		log.Fatalf("unknown format %q (valid: csv, jsonl, binary)", *format)
	}

	in := borges.Inputs{}
	if *as2orgPath != "" {
		w, err := parseFile(*as2orgPath, func(r io.Reader) (*borges.WHOISSnapshot, error) {
			return borges.ParseWHOIS(r, "snapshot")
		})
		if err != nil {
			log.Fatal(err)
		}
		in.WHOIS = w
		if *pdbPath != "" {
			p, err := parseFile(*pdbPath, func(r io.Reader) (*borges.PDBSnapshot, error) {
				return borges.ParsePeeringDB(r, "snapshot")
			})
			if err != nil {
				log.Fatal(err)
			}
			in.PDB = p
		}
		switch {
		case *webPath != "":
			u, err := parseFile(*webPath, borges.ReadWebUniverse)
			if err != nil {
				log.Fatal(err)
			}
			in.Transport = u
		case !*live:
			log.Fatal("on-disk snapshots need -web <manifest> or -live")
		}
	} else {
		ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: *seed, Scale: *scale})
		if err != nil {
			log.Fatal(err)
		}
		in.WHOIS = ds.WHOIS
		in.PDB = ds.PDB
		in.Transport = ds.Web
	}
	if *live {
		in.Transport = http.DefaultTransport
	}
	if *openaiBase != "" {
		in.Provider = borges.NewOpenAIProvider(*openaiBase, *openaiKey, nil)
	} else {
		in.Provider = borges.NewSimulatedLLM()
	}

	feats, err := parseFeatures(*features)
	if err != nil {
		log.Fatal(err)
	}
	opts := borges.Options{
		Features:           &feats,
		MaxRetries:         *maxRetries,
		BreakerThreshold:   *breakerThreshold,
		FailFast:           *failFast,
		ConsolidateWorkers: *consolidateWorkers,
		SpillDir:           *spillDir,
	}
	if !*noCache {
		store, err := borges.NewCache(borges.CacheOptions{Dir: *cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		opts.Cache = store
	}
	if *verbose {
		opts.Progress = func(f string, args ...any) {
			fmt.Fprintf(os.Stderr, "borges: "+f+"\n", args...)
		}
	}
	res, err := borges.Run(context.Background(), in, opts)
	if err != nil {
		log.Fatal(err)
	}

	if *format == "binary" {
		// The binary artifact is a fully-indexed serving snapshot, so
		// the pre-render cost is paid once here and never again at any
		// borgesd cold start.
		snap, err := borges.NewSnapshot(res.Mapping, "pipeline")
		if err != nil {
			log.Fatal(err)
		}
		var hash string
		if *out == "-" {
			hash, err = borges.WriteSnapshot(os.Stdout, snap)
		} else {
			hash, err = borges.WriteSnapshotFile(*out, snap)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot content hash %s\n", hash)
	} else {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if *format == "jsonl" {
			if err := borges.WriteMapping(w, res.Mapping); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Fprintln(w, "org_id,org_name,asns")
			for _, c := range res.Mapping.Clusters {
				asns := make([]string, len(c.ASNs))
				for i, a := range c.ASNs {
					asns[i] = a.String()
				}
				fmt.Fprintf(w, "%d,%s,%s\n", c.ID, csvEscape(c.Name), strings.Join(asns, " "))
			}
		}
	}

	if *reportPath != "" {
		if err := writeReport(*reportPath, res.Report); err != nil {
			log.Fatal(err)
		}
	}
	if res.Report.Degraded() {
		fmt.Fprintf(os.Stderr, "run degraded: %d items quarantined (rerun with a warm cache to heal)\n",
			len(res.Report.Quarantined))
	}

	theta, err := borges.Theta(res.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapped %d networks into %d organizations (θ = %.4f)\n",
		res.Mapping.NumASNs(), res.Mapping.NumOrgs(), theta)
}

// writeReport emits the machine-readable RunReport so operators can
// diff degraded runs or alert on quarantine counts without scraping
// logs.
func writeReport(path string, rep *borges.RunReport) error {
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parseFile[T any](path string, parse func(io.Reader) (T, error)) (T, error) {
	f, err := os.Open(path)
	if err != nil {
		var zero T
		return zero, err
	}
	defer f.Close()
	return parse(f)
}

func parseFeatures(s string) (borges.Features, error) {
	if s == "all" || s == "" {
		return borges.AllFeatures(), nil
	}
	var f borges.Features
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "oidp", "oid_p":
			f.OIDP = true
		case "na", "n&a", "notes", "notesaka":
			f.NotesAka = true
		case "rr", "r&r":
			f.RR = true
		case "f", "favicons", "favicon":
			f.Favicons = true
		case "":
		default:
			return f, fmt.Errorf("unknown feature %q (valid: oidp, na, rr, f, all)", part)
		}
	}
	return f, nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
