// Command borges-diff compares two mapping files (JSON lines, as
// written by `borges -format jsonl` or borges.WriteMapping) and reports
// how organizations changed: merges, splits, reshuffles, arrivals, and
// departures — the longitudinal view of §7 applied to successive
// snapshots, or to two methods over one snapshot.
//
// Usage:
//
//	borges-diff old.jsonl new.jsonl
//	borges-diff -merges 10 old.jsonl new.jsonl   # show the 10 largest merges
//	borges-diff -delta delta.jsonl old.jsonl new.jsonl
//
// -delta additionally writes the machine-applicable edit script
// (removals and additions, JSON lines) that borgesd applies with
// POST /admin/reload?mode=delta to patch a serving snapshot from old
// to new without a full rebuild.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	borges "github.com/nu-aqualab/borges"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borges-diff: ")
	merges := flag.Int("merges", 5, "how many of the largest merges to detail")
	deltaOut := flag.String("delta", "", "write the machine-applicable edit script (for borgesd /admin/reload?mode=delta) to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: borges-diff [-merges N] [-delta out.jsonl] old.jsonl new.jsonl")
	}

	older := loadMapping(flag.Arg(0))
	newer := loadMapping(flag.Arg(1))
	fmt.Printf("old: %d organizations over %d networks\n", older.NumOrgs(), older.NumASNs())
	fmt.Printf("new: %d organizations over %d networks\n", newer.NumOrgs(), newer.NumASNs())

	diff := borges.CompareMappings(older, newer)
	fmt.Println(diff.Summary())

	if *deltaOut != "" {
		d := borges.ComputeMappingDelta(older, newer)
		f, err := os.Create(*deltaOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := borges.WriteMappingDelta(f, d); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("delta: %s → %s\n", d.Summary(), *deltaOut)
	}

	top := diff.MergesOf()
	if len(top) > *merges {
		top = top[:*merges]
	}
	for i, m := range top {
		name := m.Name
		if name == "" {
			name = m.Members[0].String()
		}
		fmt.Printf("merge %d: %s — %d organizations united (%d networks)\n",
			i+1, name, len(m.Sources), len(m.Members))
		for _, src := range m.Sources {
			srcName := src.Name
			if srcName == "" {
				srcName = src.Members[0].String()
			}
			fmt.Printf("    ← %s (%d networks)\n", srcName, len(src.Members))
		}
	}
}

func loadMapping(path string) *borges.Mapping {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := borges.ReadMapping(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}
