package borges_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"

	borges "github.com/nu-aqualab/borges"
	"github.com/nu-aqualab/borges/client"
)

// ExampleClient enriches ASNs through the Go client package: Lookup
// calls are transparently coalesced into /v1/bulk frames, and Bulk
// ships a whole slice in one streaming round-trip, preserving input
// order with per-line errors.
func ExampleClient() {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 7, Scale: 0.02})
	if err != nil {
		panic(err)
	}
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		panic(err)
	}
	snap, err := borges.NewSnapshot(res.Mapping, "pipeline")
	if err != nil {
		panic(err)
	}
	srv, err := borges.NewLookupServer(snap, borges.ServeOptions{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	ctx := context.Background()

	// Point lookups ride shared bulk frames behind the scenes; the
	// Edgecast/Limelight consolidation (Figure 9) resolves to one
	// organization.
	edgecast, err := c.Lookup(ctx, 15133)
	if err != nil {
		panic(err)
	}
	limelight, err := c.Lookup(ctx, 22822)
	if err != nil {
		panic(err)
	}
	fmt.Println("same organization:", edgecast.ID == limelight.ID)

	// Bulk resolves a slice in one request; results keep input order
	// and carry per-line errors instead of failing the whole batch.
	results, err := c.Bulk(ctx, []uint32{15133, 4200000000})
	if err != nil {
		panic(err)
	}
	fmt.Println("mapped:", results[0].Err() == nil)
	fmt.Println("unmapped:", errors.Is(results[1].Err(), client.ErrUnmapped))
	// Output:
	// same organization: true
	// mapped: true
	// unmapped: true
}
