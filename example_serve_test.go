package borges_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	borges "github.com/nu-aqualab/borges"
)

// ExampleServe runs the full serving workflow in-process: generate a
// synthetic corpus, consolidate it with the pipeline, index the mapping
// into a Snapshot, and query the lookup API over HTTP.
func ExampleServe() {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 7, Scale: 0.02})
	if err != nil {
		panic(err)
	}
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		panic(err)
	}

	snap, err := borges.NewSnapshot(res.Mapping, "pipeline")
	if err != nil {
		panic(err)
	}
	srv, err := borges.NewLookupServer(snap, borges.ServeOptions{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The Edgecast/Limelight consolidation (Figure 9) is queryable:
	// both ASNs resolve to the same organization.
	var as struct {
		Org struct {
			Org  int `json:"org"`
			Size int `json:"size"`
		} `json:"org"`
		Siblings []uint32 `json:"siblings"`
	}
	mustGet(ts.URL+"/v1/as/AS15133", &as)
	edgecastOrg := as.Org.Org
	sibling := false
	for _, s := range as.Siblings {
		if s == 22822 {
			sibling = true
		}
	}
	fmt.Println("AS22822 sibling of AS15133:", sibling)

	mustGet(ts.URL+"/v1/as/22822", &as)
	fmt.Println("same organization:", as.Org.Org == edgecastOrg)

	var stats struct {
		Orgs  int     `json:"orgs"`
		ASNs  int     `json:"asns"`
		Theta float64 `json:"theta"`
	}
	mustGet(ts.URL+"/v1/stats", &stats)
	fmt.Printf("corpus: %d orgs, %d networks, θ = %.4f\n", stats.Orgs, stats.ASNs, stats.Theta)
	// Output:
	// AS22822 sibling of AS15133: true
	// same organization: true
	// corpus: 1694 orgs, 2349 networks, θ = 0.4686
}

func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("GET %s: status %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
