package eval

import (
	"context"
	"fmt"

	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/metrics"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/simllm"
)

// ModelComparison reruns the learning-based stages under different
// model capability profiles — the exploration the paper's conclusion
// proposes ("future, more complex LLM models, and alternative models …
// such as Meta's Llama and DeepSeek's R1"). Weaker profiles lose
// multilingual cue coverage and visual brand knowledge, and the table
// shows how extraction accuracy, classifier yield, and the final θ
// degrade.
func (d *Data) ModelComparison(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "model-comparison",
		Title:   "Borges under different LLM capability profiles (extension)",
		Columns: []string{"Model", "IE accuracy", "IE recall", "Company groups", "θ"},
		Notes: []string{
			"sim-llama-8b loses the multilingual affiliation cues; sim-small-3b additionally loses all visual logo knowledge",
			"weaker profiles INFLATE θ: they misread non-English connectivity listings as sibling claims, and θ rewards the wrong merges — the §5.4 caveat that θ needs an accuracy check",
		},
	}
	for _, profile := range []simllm.Profile{
		simllm.ProfileGPT4oMini,
		simllm.ProfileLlama,
		simllm.ProfileSmall,
	} {
		row, err := d.modelRow(ctx, profile)
		if err != nil {
			return nil, fmt.Errorf("eval: model comparison (%s): %w", profile.Name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (d *Data) modelRow(ctx context.Context, profile simllm.Profile) ([]string, error) {
	var provider llm.Provider = simllm.NewModelWithProfile(profile)
	res, err := core.Run(ctx, core.Inputs{
		WHOIS: d.DS.WHOIS, PDB: d.DS.PDB, Transport: d.DS.Web, Provider: provider,
	}, core.Options{LLMConcurrency: 16})
	if err != nil {
		return nil, err
	}
	// Record-level IE confusion against ground truth over all numeric
	// records (not the Table 4 subsample, to expose the full effect).
	var c metrics.Confusion
	for _, x := range res.Artifacts.Extractions {
		if x.Skipped {
			continue
		}
		truth := d.DS.Truth.NERSiblings[x.Record.ASN]
		truthPos := len(truth) > 0
		predPos := len(x.Siblings) > 0
		switch {
		case truthPos && predPos && sameASNs(truth, x.Siblings):
			c.TP++
		case truthPos:
			c.FN++
		case predPos:
			c.FP++
		default:
			c.TN++
		}
	}
	theta, err := orgfactor.Theta(res.Mapping)
	if err != nil {
		return nil, err
	}
	return []string{
		profile.Name,
		ftoa(c.Accuracy()),
		ftoa(c.Recall()),
		itoa(res.Stats.CompanyGroups),
		ftoa(theta),
	}, nil
}
