package eval

import (
	"context"
	"testing"

	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
)

// TestAllExperimentsFullScale regenerates every table and figure at
// paper scale and prints them; the companion assertions live in
// eval_test.go at a faster scale.
func TestAllExperimentsFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := synth.Generate(synth.Config{Seed: 1, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Prepare(context.Background(), ds, simllm.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	tables, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		t.Logf("\n%s", tab.Render())
	}
}
