package eval

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
)

// prepared builds one evaluation at a moderate scale shared by the
// assertion tests.
var prepared *Data

func preparedData(t *testing.T) *Data {
	t.Helper()
	if prepared == nil {
		ds, err := synth.Generate(synth.Config{Seed: 1, Scale: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Prepare(context.Background(), ds, simllm.NewModel())
		if err != nil {
			t.Fatal(err)
		}
		prepared = d
	}
	return prepared
}

func cell(t *testing.T, tab *Table, rowPrefix string, col int) string {
	t.Helper()
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			return row[col]
		}
	}
	t.Fatalf("%s: no row starting with %q", tab.ID, rowPrefix)
	return ""
}

func cellFloat(t *testing.T, tab *Table, rowPrefix string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, tab, rowPrefix, col), "%"), 64)
	if err != nil {
		t.Fatalf("%s: parse %q: %v", tab.ID, cell(t, tab, rowPrefix, col), err)
	}
	return v
}

func TestTable3Shape(t *testing.T) {
	d := preparedData(t)
	tab := d.Table3()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// OID_W is the largest source; favicons the smallest.
	oidw := cellFloat(t, tab, "OID_W", 1)
	fav := cellFloat(t, tab, "Favicons", 1)
	rr := cellFloat(t, tab, "R&R", 1)
	oidp := cellFloat(t, tab, "OID_P", 1)
	if !(oidw > oidp && oidp > rr && rr > fav) {
		t.Errorf("source size ordering broken: OID_W=%v OID_P=%v R&R=%v F=%v", oidw, oidp, rr, fav)
	}
	// R&R covers most of the web-bearing networks.
	if rr < 0.5*oidp {
		t.Errorf("R&R coverage too small: %v of %v", rr, oidp)
	}
}

func TestTable4MatchesPaperRates(t *testing.T) {
	d := preparedData(t)
	tab := d.Table4()
	acc := cellFloat(t, tab, "Accuracy", 1)
	prec := cellFloat(t, tab, "Precision", 1)
	rec := cellFloat(t, tab, "Recall", 1)
	if math.Abs(acc-0.947) > 0.03 {
		t.Errorf("IE accuracy = %v, paper 0.947", acc)
	}
	if math.Abs(prec-0.974) > 0.03 {
		t.Errorf("IE precision = %v, paper 0.974", prec)
	}
	if math.Abs(rec-0.94) > 0.03 {
		t.Errorf("IE recall = %v, paper 0.94", rec)
	}
}

func TestTable5MatchesPaperRates(t *testing.T) {
	d := preparedData(t)
	tab := d.Table5()
	// Column 3 is "All".
	acc := cellFloat(t, tab, "Accuracy", 3)
	prec := cellFloat(t, tab, "Precision", 3)
	rec := cellFloat(t, tab, "Recall", 3)
	if math.Abs(acc-0.986) > 0.02 {
		t.Errorf("classifier accuracy = %v, paper 0.986", acc)
	}
	if math.Abs(prec-0.997) > 0.02 {
		t.Errorf("classifier precision = %v, paper 0.997", prec)
	}
	if math.Abs(rec-0.984) > 0.03 {
		t.Errorf("classifier recall = %v, paper 0.984", rec)
	}
	// Step 1 recall is markedly lower (strict criteria, paper 0.8665);
	// step 2 recovers most of its misses.
	s1rec := cellFloat(t, tab, "Recall", 1)
	if s1rec >= rec {
		t.Errorf("step-1 recall %v should be below overall %v", s1rec, rec)
	}
}

func TestTable6Ordering(t *testing.T) {
	d := preparedData(t)
	tab, err := d.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 18 { // baseline + as2org+ (×2 configs) + 15 combos
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	base := cellFloat(t, tab, "AS2Org (baseline)", 1)
	plus := cellFloat(t, tab, "as2org+", 1)
	full := cellFloat(t, tab, "Borges OID_P + N&A + R&R + F", 1)
	if !(full > plus && plus > base) {
		t.Errorf("θ ordering: base=%v plus=%v full=%v", base, plus, full)
	}
	// The paper's relative improvements: as2org+ ≈ +3.7%, Borges ≈ +7%.
	plusGain := plus/base - 1
	fullGain := full/base - 1
	if plusGain < 0.02 || plusGain > 0.06 {
		t.Errorf("as2org+ gain = %.3f, paper ≈ 0.037", plusGain)
	}
	if fullGain < 0.05 || fullGain > 0.09 {
		t.Errorf("Borges gain = %.3f, paper ≈ 0.070", fullGain)
	}
	// Every Borges combination is bounded by the full configuration
	// (the uncurated regex row is excluded: its θ is inflated by wrong
	// merges, which is exactly the point of including it).
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[0], "Borges ") {
			continue
		}
		v, _ := strconv.ParseFloat(row[1], 64)
		if v < base-1e-9 || v > full+1e-9 {
			t.Errorf("combo %s θ=%v outside [base, full]", row[0], v)
		}
	}
	// The regex configuration merges blindly, so its θ exceeds the
	// curated as2org+ — θ alone cannot rank methods.
	regex := cellFloat(t, tab, "as2org+ (regex", 1)
	if regex <= plus {
		t.Errorf("regex θ (%v) should exceed curated as2org+ (%v)", regex, plus)
	}
}

func TestTable7Shape(t *testing.T) {
	d := preparedData(t)
	tab := d.Table7()
	changed := cellFloat(t, tab, "Changed", 1)
	unchanged := cellFloat(t, tab, "Unchanged", 1)
	if changed <= 0 || unchanged <= 0 {
		t.Fatalf("counts: changed=%v unchanged=%v", changed, unchanged)
	}
	// Changed orgs are far fewer but far larger than unchanged ones.
	if changed > unchanged/10 {
		t.Errorf("changed (%v) should be a small fraction of unchanged (%v)", changed, unchanged)
	}
	chPrior := cellFloat(t, tab, "Changed", 2)
	chAfter := cellFloat(t, tab, "Changed", 3)
	unch := cellFloat(t, tab, "Unchanged", 2)
	if chAfter <= chPrior {
		t.Error("changed orgs must gain users under Borges")
	}
	if chPrior < 5*unch {
		t.Errorf("changed orgs should be much larger on average: %v vs %v", chPrior, unch)
	}
}

func TestTable8TopEntries(t *testing.T) {
	d := preparedData(t)
	tab := d.Table8()
	if len(tab.Rows) != 20 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	names := make([]string, 0, 20)
	for _, r := range tab.Rows {
		names = append(names, r[0])
	}
	joined := strings.Join(names, "|")
	for _, want := range []string{"Deutsche Telekom", "Telkom Indonesia", "Charter", "TIGO", "Claro"} {
		if !strings.Contains(joined, want) {
			t.Errorf("top-20 missing %q: %v", want, names)
		}
	}
	// Differences are sorted descending.
	prev := math.Inf(1)
	for _, r := range tab.Rows {
		diff, _ := strconv.ParseFloat(r[3], 64)
		if diff > prev {
			t.Fatal("rows not sorted by difference")
		}
		prev = diff
	}
	// The flagship number: Deutsche Telekom ≈ +21.6M users.
	dt := cellFloat(t, tab, "Deutsche Telekom", 3)
	if math.Abs(dt-21641065) > 1e6 {
		t.Errorf("DT marginal growth = %v, paper 21,641,065", dt)
	}
}

func TestTable9TopEntries(t *testing.T) {
	d := preparedData(t)
	tab := d.Table9()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table9")
	}
	if got := tab.Rows[0][0]; got != "Digicel" {
		t.Errorf("top footprint growth = %q, paper: Digicel", got)
	}
	if diff := cellFloat(t, tab, "Digicel", 3); diff != 21 {
		t.Errorf("Digicel growth = %v, paper 21 (4→25)", diff)
	}
}

func TestFigure7Monotone(t *testing.T) {
	d := preparedData(t)
	tab := d.Figure7()
	var prevIdent, prevCurve float64
	for _, r := range tab.Rows {
		ident, _ := strconv.ParseFloat(r[1], 64)
		curve, _ := strconv.ParseFloat(r[2], 64)
		if ident < prevIdent || curve < prevCurve {
			t.Fatal("curves must be nondecreasing")
		}
		if curve+1e-9 < ident {
			t.Fatal("AS2Org curve must dominate the identity curve")
		}
		prevIdent, prevCurve = ident, curve
	}
}

func TestFigure8Slopes(t *testing.T) {
	d := preparedData(t)
	tab := d.Figure8()
	var top100, top1000, top10000 float64
	for _, n := range tab.Notes {
		var v float64
		if _, err := parseNote(n, "top-100 ", &v); err == nil {
			top100 = v
		}
		if _, err := parseNote(n, "top-1000 ", &v); err == nil {
			top1000 = v
		}
		if _, err := parseNote(n, "top-10000 ", &v); err == nil {
			top10000 = v
		}
	}
	// Paper: ≈5 for the top 100, ≈1 through the top 1,000, tapering.
	if top100 < 2.5 || top100 > 9 {
		t.Errorf("top-100 slope = %v, paper ≈ 5", top100)
	}
	if top1000 < 0.4 || top1000 > 3 || top1000 >= top100 {
		t.Errorf("top-1000 slope = %v, paper ≈ 1", top1000)
	}
	if top10000 >= top1000 {
		t.Errorf("slope must taper in the tail: %v vs %v", top10000, top1000)
	}
}

func parseNote(note, prefix string, out *float64) (bool, error) {
	i := strings.Index(note, prefix)
	if i < 0 {
		return false, strconv.ErrSyntax
	}
	rest := note[i+len(prefix):]
	j := strings.Index(rest, "fit slope: ")
	if j < 0 {
		return false, strconv.ErrSyntax
	}
	rest = rest[j+len("fit slope: "):]
	k := strings.Index(rest, " ")
	if k < 0 {
		k = len(rest)
	}
	v, err := strconv.ParseFloat(rest[:k], 64)
	if err != nil {
		return false, err
	}
	*out = v
	return true, nil
}

func TestFigure9Gains(t *testing.T) {
	d := preparedData(t)
	tab := d.Figure9()
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want the 16 hypergiants", len(tab.Rows))
	}
	gain := func(name string) float64 {
		return cellFloat(t, tab, name, 4) - cellFloat(t, tab, name, 2)
	}
	if g := gain("EdgeCast"); g != 9 {
		t.Errorf("EdgeCast gain = %v, paper 9", g)
	}
	if g := gain("Google"); g != 3 {
		t.Errorf("Google gain = %v, paper 3", g)
	}
	if g := gain("Microsoft"); g != 1 {
		t.Errorf("Microsoft gain = %v, paper 1", g)
	}
	if g := gain("Amazon"); g != 1 {
		t.Errorf("Amazon gain = %v, paper 1", g)
	}
	if g := gain("Akamai"); g != 0 {
		t.Errorf("Akamai gain = %v, paper 0", g)
	}
}

func TestFitSlope(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := FitSlope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Errorf("slope = %v, want 2", got)
	}
	if got := FitSlope([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("degenerate slope = %v", got)
	}
	if got := FitSlope([]float64{3, 3}, []float64{1, 5}); got != 0 {
		t.Errorf("vertical slope = %v", got)
	}
}

func TestComboEnumeration(t *testing.T) {
	combos := Combos()
	if len(combos) != 15 {
		t.Fatalf("combos = %d, want 15", len(combos))
	}
	seen := map[string]bool{}
	for _, f := range combos {
		if seen[f.Label()] {
			t.Errorf("duplicate combo %s", f.Label())
		}
		seen[f.Label()] = true
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("one", "1")
	out := tab.Render()
	for _, want := range []string{"x — demo", "one", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\none,1\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"},
		Notes: []string{"a note"}}
	tab.AddRow("pipe|cell", "1")
	md := tab.Markdown()
	for _, want := range []string{"### x — demo", "| a | b |", `pipe\|cell`, "> a note"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}
