package eval

import (
	"context"
	"fmt"
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/synth"
)

// Data bundles everything the experiments need: the corpus with its
// ground truth, the Borges pipeline result, and both baselines.
type Data struct {
	DS     *synth.Dataset
	Borges *core.Result
	AS2Org *cluster.Mapping
	Plus   *cluster.Mapping
}

// Prepare runs the Borges pipeline and both baselines over a corpus.
// The expensive stages (crawl, LLM extraction, classification) run once;
// the Table 6 feature grid is rebuilt from the retained artifacts.
func Prepare(ctx context.Context, ds *synth.Dataset, provider llm.Provider) (*Data, error) {
	res, err := core.Run(ctx, core.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  provider,
	}, core.Options{LLMConcurrency: 16})
	if err != nil {
		return nil, fmt.Errorf("eval: pipeline: %w", err)
	}
	return &Data{
		DS:     ds,
		Borges: res,
		AS2Org: baseline.AS2Org(ds.WHOIS),
		Plus:   baseline.AS2OrgPlus(ds.WHOIS, ds.PDB, baseline.Config{}),
	}, nil
}

// ComboMapping consolidates the WHOIS universe plus the selected
// feature's sibling sets from an existing run's artifacts — the cheap
// way to produce every Table 6 configuration without re-crawling or
// re-prompting.
func (d *Data) ComboMapping(f core.Features) *cluster.Mapping {
	b := cluster.NewBuilder()
	b.AddUniverse(d.DS.WHOIS.ASNs()...)
	b.AddAll(d.Borges.Artifacts.OIDWSets)
	if f.OIDP {
		b.AddAll(d.Borges.Artifacts.OIDPSets)
	}
	if f.NotesAka {
		b.AddAll(d.Borges.Artifacts.NASets)
	}
	if f.RR {
		b.AddAll(d.Borges.Artifacts.RRSets)
	}
	if f.Favicons {
		b.AddAll(d.Borges.Artifacts.FaviconSets)
	}
	return b.Build(nil)
}

// orgView summarises one consolidated organization against the AS2Org
// prior: its member networks, total users, the largest prior group's
// users ("the increase over the largest prior group", §6.1), and the
// country footprints of both views.
type orgView struct {
	cluster *cluster.Cluster
	name    string

	totalUsers int64
	priorUsers int64 // users of the constituent WHOIS org with most users

	countries      []string // union over all members
	priorCountries []string // countries of the user-richest WHOIS org
}

func (v *orgView) marginal() int64 { return v.totalUsers - v.priorUsers }

// orgViews computes the per-organization population analysis for a
// mapping (usually the Borges mapping).
func (d *Data) orgViews(m *cluster.Mapping) []*orgView {
	out := make([]*orgView, 0, m.NumOrgs())
	for i := range m.Clusters {
		c := &m.Clusters[i]
		v := &orgView{cluster: c, name: c.Name}
		// Group members by WHOIS org.
		byOrg := make(map[string][]asnum.ASN)
		for _, a := range c.ASNs {
			rec := d.DS.WHOIS.AS(a)
			if rec == nil {
				continue
			}
			byOrg[rec.OrgID] = append(byOrg[rec.OrgID], a)
		}
		var best string
		var bestUsers int64 = -1
		for oid, members := range byOrg {
			u := d.DS.APNIC.UsersOfSet(members)
			if u > bestUsers || (u == bestUsers && oid < best) {
				best, bestUsers = oid, u
			}
		}
		v.totalUsers = d.DS.APNIC.UsersOfSet(c.ASNs)
		if bestUsers > 0 {
			v.priorUsers = bestUsers
			v.priorCountries = d.DS.APNIC.CountriesOfSet(byOrg[best])
		}
		v.countries = d.DS.APNIC.CountriesOfSet(c.ASNs)
		if v.name == "" && best != "" {
			if org := d.DS.WHOIS.Org(best); org != nil {
				v.name = org.Name
			}
		}
		// Prefer the user-richest constituent's name: it is the
		// "main" organization the paper's tables are keyed by.
		if best != "" {
			if org := d.DS.WHOIS.Org(best); org != nil && org.Name != "" {
				v.name = org.Name
			}
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].marginal() > out[j].marginal() })
	return out
}
