package eval

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestAblationInputFilter(t *testing.T) {
	d := preparedData(t)
	tab, err := d.AblationInputFilter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	withCalls := cellFloat(t, tab, "with input filter", 1)
	withoutCalls := cellFloat(t, tab, "without input filter", 1)
	if withoutCalls <= withCalls {
		t.Errorf("filter should cut LLM calls: %v vs %v", withCalls, withoutCalls)
	}
	// The filter is lossless: sibling records all contain digits.
	withRecs := cellFloat(t, tab, "with input filter", 2)
	withoutRecs := cellFloat(t, tab, "without input filter", 2)
	if withRecs != withoutRecs {
		t.Errorf("filter lost extractions: %v vs %v", withRecs, withoutRecs)
	}
}

func TestAblationOutputFilter(t *testing.T) {
	d := preparedData(t)
	tab, err := d.AblationOutputFilter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := cellFloat(t, tab, "with output filter", 2); got != 0 {
		t.Errorf("filter must drop every hallucination, kept %v", got)
	}
	if got := cellFloat(t, tab, "without output filter", 2); got == 0 {
		t.Error("disabled filter should let hallucinations through")
	}
	// Genuine extractions survive the filter.
	if got := cellFloat(t, tab, "with output filter", 1); got == 0 {
		t.Error("filter should keep genuine extractions")
	}
}

func TestAblationBlocklist(t *testing.T) {
	d := preparedData(t)
	tab, err := d.AblationBlocklist(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	withOrgs := cellFloat(t, tab, "with blocklists", 1)
	withoutOrgs := cellFloat(t, tab, "without blocklists", 1)
	if withoutOrgs >= withOrgs {
		t.Errorf("disabling blocklists should fuse orgs: %v vs %v", withoutOrgs, withOrgs)
	}
	withRR := cellFloat(t, tab, "with blocklists", 2)
	withoutRR := cellFloat(t, tab, "without blocklists", 2)
	if withoutRR <= withRR {
		t.Errorf("platform networks should enter R&R without the blocklist: %v vs %v",
			withoutRR, withRR)
	}
	// The wrong merges also inflate θ.
	withTheta := cellFloat(t, tab, "with blocklists", 3)
	withoutTheta := cellFloat(t, tab, "without blocklists", 3)
	if withoutTheta <= withTheta {
		t.Errorf("θ should inflate without blocklists: %v vs %v", withoutTheta, withTheta)
	}
}

func TestAblationClassifierStep2(t *testing.T) {
	d := preparedData(t)
	tab, err := d.AblationClassifierStep2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	full := cellFloat(t, tab, "full tree", 1)
	step1 := cellFloat(t, tab, "step 1 only", 1)
	if full <= step1 {
		t.Errorf("step 2 should recover company groups: %v vs %v", full, step1)
	}
}

func TestAblationRegexExtraction(t *testing.T) {
	d := preparedData(t)
	tab := d.AblationRegexExtraction()
	get := func(method string, col int) float64 {
		for _, r := range tab.Rows {
			if strings.HasPrefix(r[0], method) {
				v, _ := strconv.ParseFloat(r[col], 64)
				return v
			}
		}
		t.Fatalf("row %q missing", method)
		return 0
	}
	llmPrec := get("LLM", 5)
	rxPrec := get("regex", 5)
	if llmPrec <= rxPrec {
		t.Errorf("LLM precision (%v) should beat regex (%v)", llmPrec, rxPrec)
	}
	// The regex path drowns in false positives on noise records.
	llmFP := get("LLM", 3)
	rxFP := get("regex", 3)
	if rxFP <= llmFP {
		t.Errorf("regex should produce more FPs: %v vs %v", rxFP, llmFP)
	}
}

func TestGroundTruthAccuracy(t *testing.T) {
	d := preparedData(t)
	tab := d.GroundTruthAccuracy()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(method string, col int) float64 { return cellFloat(t, tab, method, col) }
	// Borges recovers more true pairs than both baselines at
	// comparable precision.
	if get("Borges", 3) <= get("AS2Org", 3) || get("Borges", 3) <= get("as2org+", 3) {
		t.Errorf("recall ordering broken: borges=%v plus=%v base=%v",
			get("Borges", 3), get("as2org+", 3), get("AS2Org", 3))
	}
	for _, method := range []string{"AS2Org", "as2org+", "Borges"} {
		if p := get(method, 2); p < 0.95 {
			t.Errorf("%s pair precision = %v, want ≥ 0.95", method, p)
		}
	}
}

func TestAblationsRunner(t *testing.T) {
	d := preparedData(t)
	tabs, err := d.Ablations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 9 {
		t.Fatalf("ablations = %d, want 9", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("ablation %s rendered empty", tab.ID)
		}
		if _, err := d.ByID(tab.ID); err != nil {
			t.Errorf("ByID(%s): %v", tab.ID, err)
		}
	}
}

func TestMethodDiff(t *testing.T) {
	d := preparedData(t)
	tab := d.MethodDiff()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Borges only merges: no splits from either baseline.
	for _, r := range tab.Rows {
		if strings.HasSuffix(r[0], "→ Borges") && r[3] != "0" {
			t.Errorf("%s reports splits: %s", r[0], r[3])
		}
	}
	// Upgrading from AS2Org must merge at least the named stories.
	if m := cellFloat(t, tab, "AS2Org → Borges", 2); m < 10 {
		t.Errorf("AS2Org → Borges merges = %v, want many", m)
	}
}

func TestMismatchExperiment(t *testing.T) {
	d := preparedData(t)
	tab := d.Mismatch()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	base := cellFloat(t, tab, "AS2Org", 1)
	plus := cellFloat(t, tab, "as2org+", 1)
	ours := cellFloat(t, tab, "Borges", 1)
	total := cellFloat(t, tab, "Borges", 2)
	if base != 0 {
		t.Errorf("AS2Org resolves %v split candidates, want 0", base)
	}
	if !(ours >= plus && plus > 0) {
		t.Errorf("resolution ordering: base=%v plus=%v borges=%v", base, plus, ours)
	}
	if ours != total {
		t.Errorf("Borges should resolve all %v split candidates, got %v", total, ours)
	}
}

func TestInjectSibling(t *testing.T) {
	out := injectSibling(`{"siblings":[],"reason":"none"}`)
	if !strings.Contains(out, "AS65000001") {
		t.Errorf("empty list injection failed: %q", out)
	}
	out = injectSibling(`{"siblings":["AS1"],"reason":"x"}`)
	if !strings.Contains(out, `"AS65000001","AS1"`) {
		t.Errorf("populated list injection failed: %q", out)
	}
	if got := injectSibling("no json"); got != "no json" {
		t.Errorf("pass-through failed: %q", got)
	}
}

func TestModelComparison(t *testing.T) {
	d := preparedData(t)
	tab, err := d.ModelComparison(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(model string, col int) float64 { return cellFloat(t, tab, model, col) }
	// The flagship profile dominates on IE recall and accuracy: the
	// monolingual profiles miss non-English sibling claims AND
	// misread non-English connectivity listings as siblings.
	if get("sim-gpt-4o-mini", 2) <= get("sim-llama-8b", 2) {
		t.Errorf("multilingual model should have higher IE recall: %v vs %v",
			get("sim-gpt-4o-mini", 2), get("sim-llama-8b", 2))
	}
	if get("sim-gpt-4o-mini", 1) <= get("sim-llama-8b", 1) {
		t.Errorf("multilingual model should have higher IE accuracy: %v vs %v",
			get("sim-gpt-4o-mini", 1), get("sim-llama-8b", 1))
	}
	// Weaker models do NOT lower θ — their false merges inflate it
	// (the paper's caveat that θ cannot rank methods without an
	// accuracy check, §5.4).
	if get("sim-llama-8b", 4) <= get("sim-gpt-4o-mini", 4) {
		t.Errorf("monolingual over-extraction should inflate θ: %v vs %v",
			get("sim-llama-8b", 4), get("sim-gpt-4o-mini", 4))
	}
	// Company-group yield never exceeds the flagship profile.
	if get("sim-llama-8b", 3) > get("sim-gpt-4o-mini", 3) {
		t.Errorf("weaker model should not find more company groups: %v vs %v",
			get("sim-llama-8b", 3), get("sim-gpt-4o-mini", 3))
	}
}
