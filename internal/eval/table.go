// Package eval regenerates every table and figure of the paper's
// evaluation (§5, §6) from a corpus and a set of pipeline runs: the
// feature-contribution counts (Table 3), the LLM-stage validations
// (Tables 4 and 5), the Organization Factor grid (Table 6), the
// population and footprint analyses (Tables 7–9), and the series behind
// Figures 7–9.
package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("table3" … "figure9").
	ID string
	// Title describes the artifact.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes carry commentary (paper reference values, caveats).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(cell))
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (no embedded quotes are
// produced by the experiments).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// itoa / ftoa shorthands for cell rendering.
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64(v int64) string    { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }

// Markdown renders the table as a GitHub-flavoured Markdown table with
// the notes as a trailing list — the format EXPERIMENTS.md uses.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}
