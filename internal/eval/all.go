package eval

import (
	"context"
	"fmt"
)

// All regenerates every table and figure in paper order.
func (d *Data) All() ([]*Table, error) {
	t6, err := d.Table6()
	if err != nil {
		return nil, fmt.Errorf("eval: table6: %w", err)
	}
	return []*Table{
		d.Table3(),
		d.Table4(),
		d.Table5(),
		t6,
		d.Table7(),
		d.Table8(),
		d.Table9(),
		d.Figure7(),
		d.Figure8(),
		d.Figure9(),
	}, nil
}

// Ablations runs every design-choice ablation plus the ground-truth
// accuracy extension.
func (d *Data) Ablations(ctx context.Context) ([]*Table, error) {
	inputFilter, err := d.AblationInputFilter(ctx)
	if err != nil {
		return nil, err
	}
	outputFilter, err := d.AblationOutputFilter(ctx)
	if err != nil {
		return nil, err
	}
	blocklist, err := d.AblationBlocklist(ctx)
	if err != nil {
		return nil, err
	}
	step2, err := d.AblationClassifierStep2(ctx)
	if err != nil {
		return nil, err
	}
	out := []*Table{
		inputFilter,
		outputFilter,
		blocklist,
		step2,
		d.AblationRegexExtraction(),
		d.GroundTruthAccuracy(),
		d.MethodDiff(),
		d.Mismatch(),
	}
	modelComp, err := d.ModelComparison(ctx)
	if err != nil {
		return nil, err
	}
	return append(out, modelComp), nil
}

// ByID returns one experiment by identifier, or an error listing the
// valid identifiers.
func (d *Data) ByID(id string) (*Table, error) {
	ctx := context.Background()
	switch id {
	case "ablation-input-filter":
		return d.AblationInputFilter(ctx)
	case "ablation-output-filter":
		return d.AblationOutputFilter(ctx)
	case "ablation-blocklist":
		return d.AblationBlocklist(ctx)
	case "ablation-classifier-step2":
		return d.AblationClassifierStep2(ctx)
	case "ablation-regex-extraction":
		return d.AblationRegexExtraction(), nil
	case "accuracy":
		return d.GroundTruthAccuracy(), nil
	case "method-diff":
		return d.MethodDiff(), nil
	case "model-comparison":
		return d.ModelComparison(ctx)
	case "mismatch":
		return d.Mismatch(), nil
	}
	switch id {
	case "table3":
		return d.Table3(), nil
	case "table4":
		return d.Table4(), nil
	case "table5":
		return d.Table5(), nil
	case "table6":
		return d.Table6()
	case "table7":
		return d.Table7(), nil
	case "table8":
		return d.Table8(), nil
	case "table9":
		return d.Table9(), nil
	case "figure7":
		return d.Figure7(), nil
	case "figure8":
		return d.Figure8(), nil
	case "figure9":
		return d.Figure9(), nil
	default:
		return nil, fmt.Errorf("eval: unknown experiment %q (valid: table3..table9, figure7..figure9, ablation-input-filter, ablation-output-filter, ablation-blocklist, ablation-classifier-step2, ablation-regex-extraction, accuracy)", id)
	}
}
