package eval

import (
	"fmt"

	"github.com/nu-aqualab/borges/internal/mapdiff"
)

// MethodDiff compares the Borges mapping against each baseline with the
// longitudinal diff engine, summarising how many organizations each
// upgrade merges, reshuffles, or leaves untouched — an extension view
// the paper's §7 motivates (tracking organizational change) applied
// across methods over one snapshot.
func (d *Data) MethodDiff() *Table {
	t := &Table{
		ID:      "method-diff",
		Title:   "Organization transitions from each baseline to Borges (extension)",
		Columns: []string{"Transition", "Stable", "Merges", "Splits", "Reshuffles", "Moved ASNs"},
		Notes: []string{
			"Borges only adds sibling edges, so baseline → Borges transitions contain no splits",
		},
	}
	for _, e := range []struct {
		name string
		rep  *mapdiff.Report
	}{
		{"AS2Org → Borges", mapdiff.Compare(d.AS2Org, d.Borges.Mapping)},
		{"as2org+ → Borges", mapdiff.Compare(d.Plus, d.Borges.Mapping)},
		{"AS2Org → as2org+", mapdiff.Compare(d.AS2Org, d.Plus)},
	} {
		t.AddRow(e.name, itoa(e.rep.Stable), itoa(e.rep.Merges),
			itoa(e.rep.Splits), itoa(e.rep.Reshuffles), itoa(e.rep.MovedASNs))
	}
	// Headline consolidations.
	rep := mapdiff.Compare(d.AS2Org, d.Borges.Mapping)
	merges := rep.MergesOf()
	for i, m := range merges {
		if i >= 3 {
			break
		}
		t.Notes = append(t.Notes, fmt.Sprintf("largest merge %d: %s unites %d organizations (%d networks)",
			i+1, m.Name, len(m.Sources), len(m.Members)))
	}
	return t
}
