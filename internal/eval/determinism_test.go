package eval

import (
	"context"
	"testing"

	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
)

// TestEvaluationFullyDeterministic runs the entire generate → pipeline →
// evaluate path twice and demands byte-identical rendered output for
// every experiment. This is the repository's reproducibility contract:
// concurrency in the crawler, the NER batch, and the classifier must
// never leak scheduling order into results.
func TestEvaluationFullyDeterministic(t *testing.T) {
	render := func() map[string]string {
		ds, err := synth.Generate(synth.Config{Seed: 77, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Prepare(context.Background(), ds, simllm.NewModel())
		if err != nil {
			t.Fatal(err)
		}
		tables, err := d.All()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(tables))
		for _, tab := range tables {
			out[tab.ID] = tab.Render()
		}
		return out
	}
	a := render()
	b := render()
	if len(a) != len(b) {
		t.Fatalf("experiment counts differ: %d vs %d", len(a), len(b))
	}
	for id, ra := range a {
		if rb, ok := b[id]; !ok {
			t.Errorf("%s missing from second run", id)
		} else if ra != rb {
			t.Errorf("%s is nondeterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", id, ra, rb)
		}
	}
}
