package eval

import (
	"context"
	"fmt"

	"github.com/nu-aqualab/borges/internal/cluster"

	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/metrics"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// numeric input filter before the LLM, the anti-hallucination output
// filter, the Appendix D blocklists, the favicon tree's LLM step, and
// the regex extraction Borges replaces. Each reruns the affected
// pipeline slice with the choice toggled and reports the delta.

// AblationInputFilter measures the LLM-call volume and extraction
// outcome with and without the numeric dropout filter (§4.2).
func (d *Data) AblationInputFilter(ctx context.Context) (*Table, error) {
	run := func(disable bool) (int64, int, error) {
		model := simllm.NewModel()
		f := core.Features{NotesAka: true}
		res, err := core.Run(ctx, core.Inputs{
			WHOIS: d.DS.WHOIS, PDB: d.DS.PDB, Transport: d.DS.Web, Provider: model,
		}, core.Options{Features: &f, DisableInputFilter: disable, LLMConcurrency: 16})
		if err != nil {
			return 0, 0, err
		}
		return model.IECalls(), res.Stats.RecordsWithSibs, nil
	}
	onCalls, onRecs, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("eval: input-filter ablation: %w", err)
	}
	offCalls, offRecs, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("eval: input-filter ablation: %w", err)
	}
	t := &Table{
		ID:      "ablation-input-filter",
		Title:   "Numeric dropout filter before the LLM (§4.2)",
		Columns: []string{"Configuration", "LLM calls", "Records with siblings"},
		Notes: []string{
			"entries without digits cannot carry ASNs; filtering them multiplies throughput without losing extractions",
		},
	}
	t.AddRow("with input filter", i64(onCalls), itoa(onRecs))
	t.AddRow("without input filter", i64(offCalls), itoa(offRecs))
	return t, nil
}

// AblationOutputFilter shows the effect of the anti-hallucination
// output filter: extractions whose digits never appear in the source
// text are dropped. A hallucinating provider decorates the honest model
// to exercise the path.
func (d *Data) AblationOutputFilter(ctx context.Context) (*Table, error) {
	run := func(disable bool) (kept, hallucinated int, err error) {
		f := core.Features{NotesAka: true}
		res, err := core.Run(ctx, core.Inputs{
			WHOIS: d.DS.WHOIS, PDB: d.DS.PDB, Transport: d.DS.Web,
			Provider: &hallucinating{inner: simllm.NewModel()},
		}, core.Options{Features: &f, DisableOutputFilter: disable, LLMConcurrency: 16})
		if err != nil {
			return 0, 0, err
		}
		for _, x := range res.Artifacts.Extractions {
			for _, s := range x.Siblings {
				if s == hallucinatedASN {
					hallucinated++
				} else {
					kept++
				}
			}
		}
		return kept, hallucinated, nil
	}
	onKept, onHall, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("eval: output-filter ablation: %w", err)
	}
	offKept, offHall, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("eval: output-filter ablation: %w", err)
	}
	t := &Table{
		ID:      "ablation-output-filter",
		Title:   "Anti-hallucination output filter (§4.2)",
		Columns: []string{"Configuration", "Genuine ASNs kept", "Hallucinated ASNs kept"},
		Notes: []string{
			"a hallucinating provider injects AS65000001 into every reply; the filter must drop every instance",
		},
	}
	t.AddRow("with output filter", itoa(onKept), itoa(onHall))
	t.AddRow("without output filter", itoa(offKept), itoa(offHall))
	return t, nil
}

// hallucinatedASN is injected by the hallucinating decorator; it never
// occurs in corpus text.
const hallucinatedASN = 65000001

// hallucinating decorates a provider, appending a fabricated sibling to
// every IE reply — the failure mode the output filter guards against.
type hallucinating struct {
	inner llm.Provider
}

func (h *hallucinating) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	resp, err := h.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	resp.Content = injectSibling(resp.Content)
	return resp, nil
}

// injectSibling rewrites {"siblings": [...]} to include the fabricated
// ASN, handling both empty and populated lists.
func injectSibling(content string) string {
	const emptyMarker = `"siblings":[]`
	const openMarker = `"siblings":["`
	fake := fmt.Sprintf(`"AS%d"`, hallucinatedASN)
	if i := indexOf(content, emptyMarker); i >= 0 {
		return content[:i] + `"siblings":[` + fake + `]` + content[i+len(emptyMarker):]
	}
	if i := indexOf(content, openMarker); i >= 0 {
		return content[:i] + `"siblings":[` + fake + `,"` + content[i+len(openMarker):]
	}
	return content
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// AblationBlocklist shows what the Appendix D blocklists prevent: with
// them disabled, networks pointing at mainstream platforms collapse
// into spurious mega-organizations.
func (d *Data) AblationBlocklist(ctx context.Context) (*Table, error) {
	run := func(disable bool) (orgs, rrASNs int, theta float64, err error) {
		opts := core.Options{LLMConcurrency: 16}
		if disable {
			// Empty blocklists instead of the Appendix D defaults.
			opts.FinalURLBlocklist = urlmatch.NewBlocklist(nil, nil)
			opts.SubdomainBlocklist = urlmatch.NewBlocklist(nil, nil)
		}
		res, err := core.Run(ctx, core.Inputs{
			WHOIS: d.DS.WHOIS, PDB: d.DS.PDB, Transport: d.DS.Web,
			Provider: simllm.NewModel(),
		}, opts)
		if err != nil {
			return 0, 0, 0, err
		}
		rrASNs = core.FeatureMapping(res.Artifacts.RRSets).NumASNs()
		theta, err = orgfactor.Theta(res.Mapping)
		return res.Mapping.NumOrgs(), rrASNs, theta, err
	}
	onOrgs, onRR, onTheta, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("eval: blocklist ablation: %w", err)
	}
	offOrgs, offRR, offTheta, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("eval: blocklist ablation: %w", err)
	}
	t := &Table{
		ID:      "ablation-blocklist",
		Title:   "Appendix D blocklists over platform URLs",
		Columns: []string{"Configuration", "Organizations", "R&R-mapped networks", "θ"},
		Notes: []string{
			"without the blocklists, unrelated networks pointing at facebook.com/github.com fuse into one organization, inflating θ with wrong merges",
		},
	}
	t.AddRow("with blocklists", itoa(onOrgs), itoa(onRR), ftoa(onTheta))
	t.AddRow("without blocklists", itoa(offOrgs), itoa(offRR), ftoa(offTheta))
	return t, nil
}

// AblationClassifierStep2 compares the favicon decision tree with and
// without the LLM reclassification step (Fig. 6; the paper recovers 38
// of 43 step-1 false negatives in step 2).
func (d *Data) AblationClassifierStep2(ctx context.Context) (*Table, error) {
	run := func(disable bool) (companies, asns int, err error) {
		f := core.Features{Favicons: true}
		res, err := core.Run(ctx, core.Inputs{
			WHOIS: d.DS.WHOIS, PDB: d.DS.PDB, Transport: d.DS.Web,
			Provider: simllm.NewModel(),
		}, core.Options{Features: &f, DisableClassifierStep2: disable, LLMConcurrency: 16})
		if err != nil {
			return 0, 0, err
		}
		m := core.FeatureMapping(res.Artifacts.FaviconSets)
		return res.Stats.CompanyGroups, m.NumASNs(), nil
	}
	onC, onA, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("eval: step2 ablation: %w", err)
	}
	offC, offA, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("eval: step2 ablation: %w", err)
	}
	t := &Table{
		ID:      "ablation-classifier-step2",
		Title:   "Favicon decision tree with and without LLM reclassification",
		Columns: []string{"Configuration", "Company groups", "Networks mapped"},
		Notes: []string{
			"step 2 recovers the brand groups whose domains differ across regions (the Claro case)",
		},
	}
	t.AddRow("full tree (steps 1+2)", itoa(onC), itoa(onA))
	t.AddRow("step 1 only", itoa(offC), itoa(offA))
	return t, nil
}

// AblationRegexExtraction contrasts the LLM-based extraction with the
// as2org+ regular-expression extraction run in the same fully automated
// setting — the comparison motivating Borges (§2.1): the regex matches
// phone numbers, years, and addresses as ASNs.
func (d *Data) AblationRegexExtraction() *Table {
	var regexConf, llmConf metrics.Confusion
	for _, x := range d.Borges.Artifacts.Extractions {
		truth := d.DS.Truth.NERSiblings[x.Record.ASN]
		kind := d.DS.Truth.NERKind[x.Record.ASN]
		if kind == synth.RecordNoText || kind == synth.RecordNonNumeric {
			continue
		}
		truthPos := len(truth) > 0

		llmPred := len(x.Siblings) > 0
		llmCorrect := llmPred && sameASNs(truth, x.Siblings)
		switch {
		case truthPos && llmCorrect:
			llmConf.TP++
		case truthPos:
			llmConf.FN++
		case llmPred:
			llmConf.FP++
		default:
			llmConf.TN++
		}

		rx := baseline.RegexSiblings(x.Record.Notes)
		rx = append(rx, baseline.RegexSiblings(x.Record.Aka)...)
		rxPred := len(rx) > 0
		rxCorrect := rxPred && sameASNs(truth, rx)
		switch {
		case truthPos && rxCorrect:
			regexConf.TP++
		case truthPos:
			regexConf.FN++
		case rxPred:
			regexConf.FP++
		default:
			regexConf.TN++
		}
	}
	t := &Table{
		ID:      "ablation-regex-extraction",
		Title:   "LLM extraction vs as2org+ regex extraction on numeric records",
		Columns: []string{"Method", "TP", "TN", "FP", "FN", "Precision", "Recall", "Accuracy"},
		Notes: []string{
			"the regex path has no semantic context: phone numbers, years, and upstream listings all match (§2.1)",
		},
	}
	t.AddRow("LLM (Borges)", itoa(llmConf.TP), itoa(llmConf.TN), itoa(llmConf.FP), itoa(llmConf.FN),
		ftoa(llmConf.Precision()), ftoa(llmConf.Recall()), ftoa(llmConf.Accuracy()))
	t.AddRow("regex (as2org+)", itoa(regexConf.TP), itoa(regexConf.TN), itoa(regexConf.FP), itoa(regexConf.FN),
		ftoa(regexConf.Precision()), ftoa(regexConf.Recall()), ftoa(regexConf.Accuracy()))
	return t
}

// GroundTruthAccuracy scores each method's merges against the synthetic
// ground truth. The paper notes no real-world ground truth exists
// (§5.4); the synthetic corpus provides one, making this an extension
// experiment: pair precision (merged pairs truly co-owned) and pair
// recall (truly co-owned pairs merged).
func (d *Data) GroundTruthAccuracy() *Table {
	t := &Table{
		ID:      "accuracy",
		Title:   "Merge accuracy against synthetic ground truth (extension)",
		Columns: []string{"Method", "Merged pairs", "Pair precision", "Pair recall"},
		Notes: []string{
			"precision: fraction of merged (anchor, member) pairs truly under one owner; recall: fraction of true co-ownership pairs recovered",
		},
	}
	// Count true co-ownership pairs using anchor-pair counting (an
	// organization of k networks contributes k−1 anchor pairs), which
	// keeps both sides of the ratio linear in corpus size.
	truePairs := 0
	for _, org := range d.DS.Truth.Orgs() {
		if len(org.ASNs) >= 2 {
			truePairs += len(org.ASNs) - 1
		}
	}
	for _, e := range []struct {
		name string
		m    *cluster.Mapping
	}{
		{"AS2Org", d.AS2Org},
		{"as2org+", d.Plus},
		{"Borges", d.Borges.Mapping},
	} {
		var agree, disagree int
		for i := range e.m.Clusters {
			c := e.m.Clusters[i].ASNs
			if len(c) < 2 {
				continue
			}
			anchor := c[0]
			for _, a := range c[1:] {
				if d.DS.Truth.SameOrg(anchor, a) {
					agree++
				} else {
					disagree++
				}
			}
		}
		prec, rec := 0.0, 0.0
		if agree+disagree > 0 {
			prec = float64(agree) / float64(agree+disagree)
		}
		if truePairs > 0 {
			rec = float64(agree) / float64(truePairs)
		}
		t.AddRow(e.name, itoa(agree+disagree), ftoa(prec), ftoa(rec))
	}
	return t
}
