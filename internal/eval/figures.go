package eval

import (
	"fmt"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/synth"
)

// Figure7 produces the cumulative organization-size curves that
// illustrate the Organization Factor: the identity baseline ("every
// organization manages a single network") against AS2Org (paper
// Figure 7).
func (d *Data) Figure7() *Table {
	const points = 41
	n := d.AS2Org.NumASNs()
	as2org := orgfactor.Curve(d.AS2Org.Sizes(), n, points)
	identity := orgfactor.IdentityCurve(n, points)
	t := &Table{
		ID:      "figure7",
		Title:   "Cumulative networks per organization (identity vs AS2Org)",
		Columns: []string{"org index", "identity", "AS2Org"},
		Notes: []string{
			"θ is the normalised area between the AS2Org curve and the identity line",
		},
	}
	for i := range as2org {
		ident := int64(0)
		if i < len(identity) {
			ident = identity[i].Cumulative
		}
		t.AddRow(itoa(as2org[i].Org), i64(ident), i64(as2org[i].Cumulative))
	}
	return t
}

// FitSlope computes the least-squares slope of y against x.
func FitSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Figure8 reports the cumulative marginal network growth of
// organizations sorted by AS-Rank, with linear fits over the top 100,
// 1,000, and 10,000 networks (paper Figure 8: top-100 slope ≈ 5,
// top-1,000 ≈ 1, tapering in the tail).
func (d *Data) Figure8() *Table {
	entries := d.DS.ASRank.Entries()
	sizeOf := func(m *cluster.Mapping, a int) int {
		c := m.ClusterOf(entries[a].ASN)
		if c == nil {
			return 1
		}
		return c.Size()
	}
	xs := make([]float64, 0, len(entries))
	cum := make([]float64, 0, len(entries))
	var running float64
	for i := range entries {
		gain := sizeOf(d.Borges.Mapping, i) - sizeOf(d.AS2Org, i)
		if gain < 0 {
			gain = 0
		}
		running += float64(gain)
		xs = append(xs, float64(entries[i].Rank))
		cum = append(cum, running)
	}
	t := &Table{
		ID:      "figure8",
		Title:   "Cumulative marginal network growth by AS-Rank",
		Columns: []string{"rank", "cumulative marginal growth"},
	}
	bounds := []int{100, 1000, 10000}
	scale := d.DS.Config.Scale
	for _, b := range bounds {
		lim := int(float64(b)*scale + 0.5)
		if lim < 2 {
			lim = 2
		}
		if lim > len(xs) {
			lim = len(xs)
		}
		slope := FitSlope(xs[:lim], cum[:lim])
		t.Notes = append(t.Notes, fmt.Sprintf("top-%d fit slope: %.2f ASNs/org (scaled window %d)", b, slope, lim))
	}
	t.Notes = append(t.Notes, "paper: top-100 gain ≈ 5 ASNs on average, slope ≈ 1 through the top 1,000, tapering in the tail")
	// Downsample the series for presentation.
	step := len(xs)/40 + 1
	for i := 0; i < len(xs); i += step {
		t.AddRow(itoa(int(xs[i])), fmt.Sprintf("%.0f", cum[i]))
	}
	if len(xs) > 0 && (len(xs)-1)%step != 0 {
		t.AddRow(itoa(int(xs[len(xs)-1])), fmt.Sprintf("%.0f", cum[len(cum)-1]))
	}
	return t
}

// Figure9 compares the organization size of each hypergiant under
// AS2Org, as2org+, and Borges (paper Figure 9: Edgecast +9 via the
// Limelight consolidation; Google +3; Microsoft and Amazon +1).
func (d *Data) Figure9() *Table {
	t := &Table{
		ID:      "figure9",
		Title:   "Hypergiant organization sizes across methods",
		Columns: []string{"Hypergiant", "ASN", "AS2Org", "as2org+", "Borges"},
		Notes: []string{
			"paper: Edgecast gains 9 networks (Limelight merger); Google +3; Microsoft +1; Amazon +1",
		},
	}
	size := func(m *cluster.Mapping, a asnum.ASN) int {
		c := m.ClusterOf(a)
		if c == nil {
			return 0
		}
		return c.Size()
	}
	for _, hg := range synth.Hypergiants() {
		a := hg.ASN
		t.AddRow(hg.Name, a.String(),
			itoa(size(d.AS2Org, a)), itoa(size(d.Plus, a)), itoa(size(d.Borges.Mapping, a)))
	}
	return t
}
