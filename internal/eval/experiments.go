package eval

import (
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/classify"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/metrics"
	"github.com/nu-aqualab/borges/internal/ner"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/synth"
)

// Table3 reports the number of ASes and organizations obtained from
// each Borges feature in isolation (paper Table 3).
func (d *Data) Table3() *Table {
	t := &Table{
		ID:      "table3",
		Title:   "ASes and Organizations obtained from each feature",
		Columns: []string{"Source", "Number of ASes", "Number of Orgs"},
		Notes: []string{
			"paper: OID_P 30,955/27,712 · OID_W 117,431/95,300 · notes&aka 1,436/847 · R&R 22,523/20,065 · Favicons 1,297/319",
		},
	}
	rows := []struct {
		name string
		m    interface {
			NumASNs() int
			NumOrgs() int
		}
	}{
		{"OID_P", core.FeatureMapping(d.Borges.Artifacts.OIDPSets)},
		{"OID_W", core.FeatureMapping(d.Borges.Artifacts.OIDWSets)},
		{"notes and aka", core.FeatureMapping(d.Borges.Artifacts.NASets)},
		{"R&R", core.FeatureMapping(d.Borges.Artifacts.RRSets)},
		{"Favicons", core.FeatureMapping(d.Borges.Artifacts.FaviconSets)},
	}
	for _, r := range rows {
		t.AddRow(r.name, itoa(r.m.NumASNs()), itoa(r.m.NumOrgs()))
	}
	return t
}

// Table4 validates the information-extraction stage on a labelled
// sample mirroring the paper's 320 manually inspected records
// (187 TP + 116 TN + 12 FN + 5 FP at full scale).
func (d *Data) Table4() *Table {
	scale := d.DS.Config.Scale
	quota := func(v int) int {
		n := int(float64(v)*scale + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	// Index extractions by record ASN.
	extractions := make(map[uint32]ner.Extraction)
	for _, x := range d.Borges.Artifacts.Extractions {
		extractions[uint32(x.Record.ASN)] = x
	}

	// Build the evaluation sample: every hard case plus deterministic
	// (ASN-ordered) regular sibling and noise records.
	var sibling, noise, hardFN, hardFP []uint32
	for _, n := range d.DS.PDB.Nets() {
		kind, ok := d.DS.Truth.NERKind[n.ASN]
		if !ok {
			continue
		}
		a := uint32(n.ASN)
		switch kind {
		case synth.RecordSiblingText:
			sibling = append(sibling, a)
		case synth.RecordNoiseText:
			noise = append(noise, a)
		case synth.RecordHardFN:
			hardFN = append(hardFN, a)
		case synth.RecordHardFP:
			hardFP = append(hardFP, a)
		}
	}
	sample := append([]uint32(nil), hardFN...)
	sample = append(sample, hardFP...)
	if n := quota(187); n < len(sibling) {
		sibling = sibling[:n]
	}
	if n := quota(116); n < len(noise) {
		noise = noise[:n]
	}
	sample = append(sample, sibling...)
	sample = append(sample, noise...)

	var c metrics.Confusion
	for _, a := range sample {
		x := extractions[a]
		truth := d.DS.Truth.NERSiblings[asnum.ASN(a)]
		truthPos := len(truth) > 0
		predPos := len(x.Siblings) > 0
		switch {
		case truthPos && predPos && sameASNs(truth, x.Siblings):
			c.TP++
		case truthPos:
			c.FN++
		case predPos:
			c.FP++
		default:
			c.TN++
		}
	}
	t := &Table{
		ID:      "table4",
		Title:   "LLM-based Information Extraction validation (notes and aka)",
		Columns: []string{"Metric", "Value"},
		Notes: []string{
			"paper: TP 187 · TN 116 · FN 12 · FP 5 · recall 0.94 · precision 0.974 · accuracy 0.947",
		},
	}
	t.AddRow("True Positives (TP)", itoa(c.TP))
	t.AddRow("True Negatives (TN)", itoa(c.TN))
	t.AddRow("False Negatives (FN)", itoa(c.FN))
	t.AddRow("False Positives (FP)", itoa(c.FP))
	t.AddRow("Recall", ftoa(c.Recall()))
	t.AddRow("Precision", ftoa(c.Precision()))
	t.AddRow("Accuracy", ftoa(c.Accuracy()))
	return t
}

// Table5 validates the favicon classifier per decision-tree step and as
// a whole (paper Table 5).
func (d *Data) Table5() *Table {
	var s1, s2, all metrics.Confusion
	for _, o := range d.Borges.Artifacts.ClassifyOutcomes {
		if o.Decision == classify.DecisionDiscarded {
			continue
		}
		kind, known := d.DS.Truth.IconKindOf(o.Group.Hash)
		if !known {
			continue
		}
		truthCompany := kind == synth.IconCompany
		step1Company := o.Step == 1 && o.Decision == classify.DecisionCompany
		s1.Observe(truthCompany, step1Company)
		if !step1Company {
			// Step 2 reclassifies the step-1 negatives; true negatives
			// stay attributed to step 1, as in the paper's accounting.
			step2Company := o.Step == 2 && o.Decision == classify.DecisionCompany
			if step2Company {
				s2.Observe(truthCompany, true)
			} else if truthCompany {
				s2.FN++
			}
		}
		all.Observe(truthCompany, o.Decision == classify.DecisionCompany)
	}
	t := &Table{
		ID:      "table5",
		Title:   "LLM-based classifier validation per step and overall",
		Columns: []string{"Metric", "Step 1", "Step 2", "All"},
		Notes: []string{
			"paper All: TP 317 · TN 116 · FP 1 · FN 5 · precision 0.997 · recall 0.984 · accuracy 0.986",
		},
	}
	t.AddRow("True Positives (TP)", itoa(s1.TP), itoa(s2.TP), itoa(all.TP))
	t.AddRow("True Negatives (TN)", itoa(s1.TN), itoa(s2.TN), itoa(all.TN))
	t.AddRow("False Positives (FP)", itoa(s1.FP), itoa(s2.FP), itoa(all.FP))
	t.AddRow("False Negatives (FN)", itoa(s1.FN), itoa(s2.FN), itoa(all.FN))
	t.AddRow("Precision", ftoa(s1.Precision()), ftoa(s2.Precision()), ftoa(all.Precision()))
	t.AddRow("Recall", ftoa(s1.Recall()), ftoa(s2.Recall()), ftoa(all.Recall()))
	t.AddRow("Accuracy", ftoa(s1.Accuracy()), ftoa(s2.Accuracy()), ftoa(all.Accuracy()))
	return t
}

// Combos enumerates the Table 6 feature grid in presentation order.
func Combos() []core.Features {
	var out []core.Features
	for bits := 1; bits < 16; bits++ {
		out = append(out, core.Features{
			OIDP:     bits&1 != 0,
			NotesAka: bits&2 != 0,
			RR:       bits&4 != 0,
			Favicons: bits&8 != 0,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return featureCount(out[i]) < featureCount(out[j])
	})
	return out
}

func featureCount(f core.Features) int {
	n := 0
	for _, b := range []bool{f.OIDP, f.NotesAka, f.RR, f.Favicons} {
		if b {
			n++
		}
	}
	return n
}

// Table6 reports the Organization Factor for the baselines and every
// feature combination of Borges (paper Table 6).
func (d *Data) Table6() (*Table, error) {
	t := &Table{
		ID:      "table6",
		Title:   "Organization Factor (θ) across feature combinations",
		Columns: []string{"Configuration", "θ", "Δ vs AS2Org"},
		Notes: []string{
			"paper: AS2Org 0.3343 · as2org+ 0.3467 (+3.7%) · Borges (all features) 0.3576 (+7.0%)",
		},
	}
	base, err := orgfactor.Theta(d.AS2Org)
	if err != nil {
		return nil, err
	}
	t.AddRow("AS2Org (baseline)", ftoa(base), "—")
	plus, err := orgfactor.Theta(d.Plus)
	if err != nil {
		return nil, err
	}
	t.AddRow("as2org+", ftoa(plus), pct(plus/base-1))
	// The original regex-extraction configuration, fully automated: its
	// higher θ is bought with false merges — the paper's caveat that θ
	// "does not distinguish between correct and incorrect mappings".
	regex := baseline.AS2OrgPlus(d.DS.WHOIS, d.DS.PDB, baseline.Config{UseRegexExtraction: true})
	regexTheta, err := orgfactor.Theta(regex)
	if err != nil {
		return nil, err
	}
	t.AddRow("as2org+ (regex, no curation)", ftoa(regexTheta), pct(regexTheta/base-1))
	t.Notes = append(t.Notes,
		"the regex row shows θ alone cannot rank methods: its merges include phone numbers and years read as ASNs")
	for _, f := range Combos() {
		m := d.ComboMapping(f)
		theta, err := orgfactor.Theta(m)
		if err != nil {
			return nil, err
		}
		t.AddRow("Borges "+f.Label(), ftoa(theta), pct(theta/base-1))
	}
	return t, nil
}

// Table7 compares mean organization populations between AS2Org and
// Borges for changed and unchanged organizations (paper Table 7).
func (d *Data) Table7() *Table {
	views := d.orgViews(d.Borges.Mapping)
	var changed, unchanged int
	var changedPrior, changedTotal, unchangedUsers int64
	for _, v := range views {
		if v.totalUsers <= 0 {
			continue
		}
		if v.marginal() > 0 {
			changed++
			changedPrior += v.priorUsers
			changedTotal += v.totalUsers
		} else {
			unchanged++
			unchangedUsers += v.totalUsers
		}
	}
	t := &Table{
		ID:      "table7",
		Title:   "Mean AS population of organizations with and without changes",
		Columns: []string{"", "# Organizations", "E(AS2Org)", "E(Borges)"},
		Notes: []string{
			"paper: changed 352 orgs, 3,013,751 → 3,561,258 · unchanged 25,105 orgs at 117,805",
		},
	}
	mean := func(total int64, n int) int64 {
		if n == 0 {
			return 0
		}
		return total / int64(n)
	}
	t.AddRow("Changed", itoa(changed), i64(mean(changedPrior, changed)), i64(mean(changedTotal, changed)))
	t.AddRow("Unchanged", itoa(unchanged), i64(mean(unchangedUsers, unchanged)), i64(mean(unchangedUsers, unchanged)))
	return t
}

// Table8 lists the top-20 organizations by marginal user-population
// growth (paper Table 8).
func (d *Data) Table8() *Table {
	views := d.orgViews(d.Borges.Mapping)
	t := &Table{
		ID:      "table8",
		Title:   "Top 20 marginal AS population growths",
		Columns: []string{"Company", "AS2Org", "Borges", "Difference"},
		Notes: []string{
			"paper top entries: Deutsche Telekom +21.6M · Telkom Indonesia +20.5M · Charter +17.8M · Virgin +14.4M · TIGO +12.9M",
		},
	}
	n := 0
	for _, v := range views {
		if v.marginal() <= 0 {
			continue
		}
		t.AddRow(v.name, i64(v.priorUsers), i64(v.totalUsers), i64(v.marginal()))
		if n++; n >= 20 {
			break
		}
	}
	return t
}

// Table9 lists the top-20 organizations by country-footprint growth
// (paper Table 9).
func (d *Data) Table9() *Table {
	views := d.orgViews(d.Borges.Mapping)
	type row struct {
		name         string
		prior, total int
	}
	var rows []row
	var growthOrgs, growthSum int
	for _, v := range views {
		diff := len(v.countries) - len(v.priorCountries)
		if diff <= 0 || v.totalUsers <= 0 {
			continue
		}
		growthOrgs++
		growthSum += diff
		rows = append(rows, row{v.name, len(v.priorCountries), len(v.countries)})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].total-rows[i].prior > rows[j].total-rows[j].prior
	})
	t := &Table{
		ID:      "table9",
		Title:   "Top 20 country-level footprint growths",
		Columns: []string{"Company", "AS2Org", "Borges", "Difference"},
		Notes: []string{
			"paper: Digicel 4→25 · Zscaler 16→28 · Deutsche Telekom 3→14 · NTT 2→11; 101 growing orgs, mean +2.37 countries",
		},
	}
	if growthOrgs > 0 {
		t.Notes = append(t.Notes, "measured: "+itoa(growthOrgs)+" growing orgs, mean +"+
			ftoa(float64(growthSum)/float64(growthOrgs))+" countries")
	}
	for i, r := range rows {
		if i >= 20 {
			break
		}
		t.AddRow(r.name, itoa(r.prior), itoa(r.total), itoa(r.total-r.prior))
	}
	return t
}

// sameASNs reports whether two sibling lists contain the same ASNs.
func sameASNs(a, b []asnum.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	as := asnum.Dedup(append([]asnum.ASN(nil), a...))
	bs := asnum.Dedup(append([]asnum.ASN(nil), b...))
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
