package eval

import (
	"github.com/nu-aqualab/borges/internal/mismatch"
)

// Mismatch runs the Chen et al.-style WHOIS-vs-PeeringDB discrepancy
// flagging (related work, §2.1) over the corpus and reports how far
// each mapping method resolves the split candidates — the
// reclassification the flags call for.
func (d *Data) Mismatch() *Table {
	flags := mismatch.Flags(d.DS.WHOIS, d.DS.PDB)
	var splits, diverged int
	for _, c := range flags {
		if c.Kind == mismatch.KindSplit {
			splits++
		} else {
			diverged++
		}
	}
	t := &Table{
		ID:      "mismatch",
		Title:   "WHOIS vs PeeringDB discrepancy flags and their resolution (extension)",
		Columns: []string{"Method", "Split candidates resolved", "Of total"},
		Notes: []string{
			"flags: " + itoa(splits) + " PeeringDB organizations span several WHOIS organizations; " +
				itoa(diverged) + " networks have organization names with no shared keyword",
			"a split candidate counts as resolved when the method maps all of its networks into one organization",
		},
	}
	type entry struct {
		name string
		res  int
		tot  int
	}
	var entries []entry
	r, tot := mismatch.ResolvedBy(flags, d.AS2Org)
	entries = append(entries, entry{"AS2Org", r, tot})
	r, tot = mismatch.ResolvedBy(flags, d.Plus)
	entries = append(entries, entry{"as2org+", r, tot})
	r, tot = mismatch.ResolvedBy(flags, d.Borges.Mapping)
	entries = append(entries, entry{"Borges", r, tot})
	for _, e := range entries {
		t.AddRow(e.name, itoa(e.res), itoa(e.tot))
	}
	return t
}
