package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/resilience"
)

// llmKinds are the fault varieties the provider wrapper can draw —
// body-level HTTP faults have no LLM analogue, so requested HTTP-only
// kinds are filtered out rather than crashing a shared Config.
var llmKinds = []Kind{KindTimeout, KindRateLimit, KindServerError}

// Provider is a fault-injecting llm.Provider. Requests are keyed by
// model plus a digest of the prompt (mirroring how the LLM cache and
// breakers identify work), so the same logical completion meets the
// same fate on every attempt and in every run with the same seed.
type Provider struct {
	// Inner serves attempts the injector lets through.
	Inner llm.Provider
	// Config shapes the injection.
	Config Config

	ledger ledger
}

// NewProvider wraps inner with fault injection under cfg.
func NewProvider(inner llm.Provider, cfg Config) *Provider {
	return &Provider{Inner: inner, Config: cfg}
}

func (p *Provider) kinds() []Kind {
	if len(p.Config.Kinds) == 0 {
		return llmKinds
	}
	var out []Kind
	for _, k := range p.Config.Kinds {
		for _, ok := range llmKinds {
			if k == ok {
				out = append(out, k)
			}
		}
	}
	return out
}

// requestKey digests a request into the injector's per-key identity.
func requestKey(req llm.Request) string {
	h := fnv.New64a()
	io.WriteString(h, req.Model)
	for _, m := range req.Messages {
		io.WriteString(h, "\x00")
		io.WriteString(h, string(m.Role))
		io.WriteString(h, "\x1f")
		io.WriteString(h, m.Content)
		for _, img := range m.Images {
			h.Write(img)
		}
	}
	return fmt.Sprintf("llm:%s:%016x", req.Model, h.Sum64())
}

// Complete implements llm.Provider.
func (p *Provider) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	key := requestKey(req)
	inject, kind := p.ledger.visit(key, p.Config.fateOf(key, p.kinds()))
	if !inject {
		return p.Inner.Complete(ctx, req)
	}
	switch kind {
	case KindTimeout:
		return llm.Response{}, &timeoutError{msg: fmt.Sprintf("faultinject: %s: i/o timeout", key)}
	case KindServerError:
		return llm.Response{}, fmt.Errorf("faultinject: %s: status 503: %w", key, llm.ErrServer)
	default: // KindRateLimit
		return llm.Response{}, &resilience.RetryAfterError{
			Err:   fmt.Errorf("faultinject: %s: status 429: %w", key, llm.ErrRateLimited),
			After: p.Config.retryAfter(),
		}
	}
}

// Stats returns the provider's per-key ledger summary.
func (p *Provider) Stats() Stats { return p.ledger.stats() }
