// Package faultinject is a deterministic chaos harness: seeded
// fault-injecting wrappers around http.RoundTripper and llm.Provider
// that simulate the failure modes a real crawl meets — timeouts, 429s
// with Retry-After, 5xx storms, connection resets, slow-loris bodies,
// and torn payloads.
//
// Determinism is the whole point. Each request is reduced to a key
// (host+path for HTTP, model+prompt digest for LLM) and the key's fate
// is a pure function of the configured seed: an unlucky key is either
// *transient* (fails exactly its first attempt, then heals) or
// *persistent* (fails every attempt). Because fate depends only on
// (seed, key, attempt-ordinal) and never on timing, a chaos run's
// outcome is identical regardless of goroutine interleaving — which is
// what lets the chaos tests assert exact quarantine counts under
// -race. The harness also keeps per-key books, so a test can ask
// exactly which keys could never have succeeded (ExhaustedKeys) and
// compare that set against the pipeline's RunReport.
package faultinject

import (
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is a fault variety.
type Kind int

// Fault kinds.
const (
	// KindTimeout fails the operation with a net.Error whose Timeout()
	// is true.
	KindTimeout Kind = iota
	// KindRateLimit answers HTTP 429 with a Retry-After header (HTTP)
	// or llm.ErrRateLimited carrying a typed Retry-After hint (LLM).
	KindRateLimit
	// KindServerError answers HTTP 503 (HTTP) or llm.ErrServer (LLM).
	KindServerError
	// KindReset fails the operation with ECONNRESET mid-connection.
	KindReset
	// KindSlowLoris serves a 200 whose body dribbles a few bytes and
	// then stalls until the reader's context dies, the body is closed,
	// or the configured stall elapses (HTTP only).
	KindSlowLoris
	// KindTornBody serves a 200 whose body ends in io.ErrUnexpectedEOF
	// partway through the payload (HTTP only) — the torn-favicon case.
	KindTornBody
	// KindTruncateBody passes the request through to the real backend
	// and cuts the response body short mid-stream (io.ErrUnexpectedEOF
	// after roughly half the declared length) — a dropped connection
	// during a large artifact download. Opt-in only: never drawn unless
	// listed in Config.Kinds, because the default kind set's draws are
	// order- and length-sensitive and existing fixed-seed suites assert
	// exact outcomes against it.
	KindTruncateBody
	// KindFlipByte passes the request through and flips one
	// deterministically chosen byte of the real response body — an
	// in-flight corruption that only end-to-end content verification
	// catches (the length and status look healthy). Opt-in only, like
	// KindTruncateBody.
	KindFlipByte
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTimeout:
		return "timeout"
	case KindRateLimit:
		return "rate-limit"
	case KindServerError:
		return "server-error"
	case KindReset:
		return "reset"
	case KindSlowLoris:
		return "slow-loris"
	case KindTornBody:
		return "torn-body"
	case KindTruncateBody:
		return "truncate-body"
	case KindFlipByte:
		return "flip-byte"
	default:
		return "unknown"
	}
}

// Config shapes an injector. The zero value injects nothing.
type Config struct {
	// Seed determines every key's fate. Two injectors with the same
	// seed and config agree on which keys fail and how.
	Seed int64
	// Rate is the fraction of keys that are faulted, in [0, 1].
	Rate float64
	// PersistentRate is the fraction of *faulted* keys that fail every
	// attempt rather than only their first, in [0, 1]. Persistent keys
	// are the ones no retry policy can save; they are what a RunReport
	// must quarantine.
	PersistentRate float64
	// Kinds restricts which fault varieties are drawn. Empty means all
	// kinds valid for the wrapper (the LLM wrapper never draws
	// HTTP-only kinds).
	Kinds []Kind
	// SkipFaviconPaths exempts requests whose URL path mentions a
	// favicon, so a cell can fault page fetches while leaving icons
	// intact (or vice versa via Kinds).
	SkipFaviconPaths bool
	// RetryAfter is the hint attached to rate-limit faults (default 1s;
	// the HTTP header rounds to whole seconds).
	RetryAfter time.Duration
	// Stall bounds how long a slow-loris body blocks before giving up
	// with a timeout error (default 100ms) — the harness must always
	// terminate even when nothing cancels the read.
	Stall time.Duration
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

func (c Config) stall() time.Duration {
	if c.Stall <= 0 {
		return 100 * time.Millisecond
	}
	return c.Stall
}

// fate is a key's predetermined behaviour.
type fate struct {
	faulted    bool
	persistent bool
	kind       Kind
}

// fateOf derives a key's fate from the seed alone. The derivation
// hashes (seed, key) once and then whitens the hash twice more so the
// fault decision, the persistence decision, and the kind choice are
// independent.
func (c Config) fateOf(key string, kinds []Kind) fate {
	if c.Rate <= 0 || len(kinds) == 0 {
		return fate{}
	}
	h := fnv.New64a()
	io.WriteString(h, strconv.FormatInt(c.Seed, 10))
	io.WriteString(h, "\x00")
	io.WriteString(h, key)
	sum := h.Sum64()
	if fraction(sum) >= c.Rate {
		return fate{}
	}
	sum = whiten(sum)
	persistent := fraction(sum) < c.PersistentRate
	sum = whiten(sum)
	return fate{faulted: true, persistent: persistent, kind: kinds[sum%uint64(len(kinds))]}
}

// fraction maps a hash to [0, 1).
func fraction(sum uint64) float64 {
	return float64(sum%1_000_000) / 1_000_000
}

// whiten is one splitmix64 mixing step — cheap, well-distributed
// rehashing for deriving independent decisions from one hash.
func whiten(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func isFaviconPath(path string) bool {
	return strings.Contains(strings.ToLower(path), "favicon")
}

// keyState is the per-key ledger.
type keyState struct {
	fate     fate
	attempts int
	injected int
}

// ledger tracks every key an injector has seen.
type ledger struct {
	mu   sync.Mutex
	keys map[string]*keyState
}

// visit records an attempt on key and reports whether this attempt is
// faulted and with which kind.
func (l *ledger) visit(key string, f fate) (inject bool, kind Kind) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.keys == nil {
		l.keys = make(map[string]*keyState)
	}
	st, ok := l.keys[key]
	if !ok {
		st = &keyState{fate: f}
		l.keys[key] = st
	}
	st.attempts++
	if !st.fate.faulted {
		return false, 0
	}
	if !st.fate.persistent && st.attempts > 1 {
		return false, 0
	}
	st.injected++
	return true, st.fate.kind
}

// Stats is an injector's ledger summary.
type Stats struct {
	// Keys counts distinct keys seen.
	Keys int
	// Requests counts attempts across all keys.
	Requests int
	// Injected counts attempts that were faulted.
	Injected int
	// ExhaustedKeys lists persistent faulted keys that were attempted —
	// the keys no retry policy could have saved, sorted.
	ExhaustedKeys []string
	// HealedKeys lists transient faulted keys that were attempted more
	// than once (the retry got through), sorted.
	HealedKeys []string
}

func (l *ledger) stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{Keys: len(l.keys)}
	for key, st := range l.keys {
		s.Requests += st.attempts
		s.Injected += st.injected
		if !st.fate.faulted {
			continue
		}
		if st.fate.persistent {
			s.ExhaustedKeys = append(s.ExhaustedKeys, key)
		} else if st.attempts > 1 {
			s.HealedKeys = append(s.HealedKeys, key)
		}
	}
	sort.Strings(s.ExhaustedKeys)
	sort.Strings(s.HealedKeys)
	return s
}

// timeoutError is a synthetic net.Error with Timeout() == true.
type timeoutError struct{ msg string }

func (e *timeoutError) Error() string   { return e.msg }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }
