package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/nu-aqualab/borges/internal/vfs"
)

// TestFaultFSDeterministic: two fault filesystems with the same seed
// and config, over different absolute roots, agree on every
// root-relative path's fate — the property that makes t.TempDir()
// chaos runs reproduce bit-for-bit.
func TestFaultFSDeterministic(t *testing.T) {
	cfg := FSConfig{Seed: 42, Rate: 0.5, PersistentRate: 0.5}
	a := NewFS(vfs.OS, "/rootA", cfg)
	b := NewFS(vfs.OS, "/some/other/rootB", cfg)
	diff := 0
	faulted := 0
	for i := 0; i < 200; i++ {
		key := filepath.Join("gen", "artifact-"+string(rune('a'+i%26))+"-"+string(rune('0'+i/26))+".snapbin")
		fa := a.fateOf(a.Key(filepath.Join("/rootA", key)))
		fb := b.fateOf(b.Key(filepath.Join("/some/other/rootB", key)))
		if fa != fb {
			diff++
		}
		if fa.faulted {
			faulted++
		}
	}
	if diff != 0 {
		t.Fatalf("%d fates differ across roots", diff)
	}
	if faulted == 0 || faulted == 200 {
		t.Fatalf("faulted = %d/200, want a nontrivial fraction at Rate=0.5", faulted)
	}
}

// TestFaultFSShortWrite: a forced short write tears WriteFile —
// the prefix lands, the call errors — and the per-handle Write path
// fails the same way.
func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, dir, FSConfig{
		Force: map[string]FSKind{"artifact.bin": FSKindShortWrite},
	})
	path := filepath.Join(dir, "artifact.bin")
	payload := []byte("0123456789abcdef")

	err := ffs.WriteFile(path, payload, 0o644)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("WriteFile error = %v, want ErrShortWrite", err)
	}
	got, _ := os.ReadFile(path)
	if len(got) != len(payload)/2 {
		t.Fatalf("torn write left %d bytes, want %d", len(got), len(payload)/2)
	}

	f, err := ffs.OpenFile(filepath.Join(dir, "artifact.bin"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	n, err := f.Write(payload)
	if !errors.Is(err, io.ErrShortWrite) || n != len(payload)/2 {
		t.Fatalf("Write = %d, %v; want %d, ErrShortWrite", n, err, len(payload)/2)
	}
	f.Close()

	st := ffs.Stats()
	if len(st.WriteFaultPaths) != 1 || st.WriteFaultPaths[0] != "artifact.bin" {
		t.Fatalf("WriteFaultPaths = %v", st.WriteFaultPaths)
	}
}

// TestFaultFSSyncError: writes land but Sync fails — the lying
// write-back cache.
func TestFaultFSSyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, dir, FSConfig{
		Force: map[string]FSKind{"last-good.snapbin": FSKindSyncError},
	})
	f, err := ffs.OpenFile(filepath.Join(dir, "last-good.snapbin"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatalf("Write should pass through under sync fault: %v", err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("Sync should fail")
	}
	f.Close()
}

// TestFaultFSTransientSyncError: with ForceTransient, only the first
// write-side attempt faults — the retry heals, like the transport
// harness's transient keys.
func TestFaultFSTransientSyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, dir, FSConfig{
		Force:          map[string]FSKind{"x": FSKindSyncError},
		ForceTransient: true,
	})
	path := filepath.Join(dir, "x")
	f, _ := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err := f.Sync(); err == nil {
		t.Fatal("first Sync should fail")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync should heal: %v", err)
	}
	f.Close()
}

// TestFaultFSFlipByte: ReadFile serves exactly one inverted byte at a
// stable position, and the file on disk is untouched.
func TestFaultFSFlipByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gen-000001.snapbin")
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFS(vfs.OS, dir, FSConfig{
		Seed:  7,
		Force: map[string]FSKind{"gen-000001.snapbin": FSKindFlipByte},
	})
	got1, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	got2, _ := ffs.ReadFile(path)
	if string(got1) != string(got2) {
		t.Fatal("flip position must be stable across reads")
	}
	diffs := 0
	for i := range payload {
		if got1[i] != payload[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("flipped %d bytes, want exactly 1", diffs)
	}
	onDisk, _ := os.ReadFile(path)
	if string(onDisk) != string(payload) {
		t.Fatal("fault FS must not touch the file at rest")
	}
	st := ffs.Stats()
	if len(st.CorruptReadPaths) != 1 || st.CorruptReadPaths[0] != "gen-000001.snapbin" {
		t.Fatalf("CorruptReadPaths = %v", st.CorruptReadPaths)
	}
}

// TestFaultFSTruncateRead: whole-file and handle reads both observe a
// half-length file.
func TestFaultFSTruncateRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	payload := make([]byte, 100)
	os.WriteFile(path, payload, 0o644)
	ffs := NewFS(vfs.OS, dir, FSConfig{
		Force: map[string]FSKind{"t.bin": FSKindTruncateRead},
	})
	got, err := ffs.ReadFile(path)
	if err != nil || len(got) != 50 {
		t.Fatalf("ReadFile = %d bytes, %v; want 50", len(got), err)
	}
	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	all, err := io.ReadAll(f)
	if err != nil || len(all) != 50 {
		t.Fatalf("streamed read = %d bytes, %v; want 50", len(all), err)
	}
	if _, err := f.ReadAt(make([]byte, 10), 60); err != io.EOF {
		t.Fatalf("ReadAt past truncated view = %v, want EOF", err)
	}
}

// TestFaultFSPathContains: the substring filter exempts unrelated
// paths from seeded chaos.
func TestFaultFSPathContains(t *testing.T) {
	ffs := NewFS(vfs.OS, "/r", FSConfig{Seed: 1, Rate: 1, PathContains: ".snapbin"})
	if f := ffs.fateOf("cache/cache.log"); f.faulted {
		t.Fatal("cache.log should be exempt")
	}
	if f := ffs.fateOf("gen/g1.snapbin"); !f.faulted {
		t.Fatal("snapbin path should be faulted at Rate=1")
	}
}

// TestFaultFSTempInheritsDestinationFate: the atomic-write temp file
// (CreateTemp "x.tmp-*") draws the destination's fate, so Force and
// seeded draws can target logical artifacts.
func TestFaultFSTempInheritsDestinationFate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, dir, FSConfig{
		Force: map[string]FSKind{"snap.bin": FSKindShortWrite},
	})
	f, err := ffs.CreateTemp(dir, "snap.bin.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(make([]byte, 64)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("temp write error = %v, want ErrShortWrite", err)
	}
	f.Close()
}
