package faultinject

import (
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"github.com/nu-aqualab/borges/internal/vfs"
)

// FSKind is a disk fault variety. The set mirrors how durable storage
// actually decays: writes tear or lose their fsync, reads come back
// flipped or short.
type FSKind int

const (
	// FSKindShortWrite accepts roughly half of a Write and then fails
	// with ErrShortWrite — a torn write. The bytes that landed stay in
	// the file, exactly like a crash mid-write.
	FSKindShortWrite FSKind = iota
	// FSKindSyncError fails File.Sync — the write-back cache lied and
	// the kernel noticed at fsync time (the classic "disk full /
	// EIO at fsync" failure).
	FSKindSyncError
	// FSKindFlipByte serves reads with one deterministically chosen
	// byte inverted — at-rest bit rot that only content verification
	// catches (size and structure look healthy).
	FSKindFlipByte
	// FSKindTruncateRead serves reads as if the file ended at roughly
	// half its real size — a torn artifact observed at read time.
	FSKindTruncateRead
)

// String implements fmt.Stringer.
func (k FSKind) String() string {
	switch k {
	case FSKindShortWrite:
		return "short-write"
	case FSKindSyncError:
		return "sync-error"
	case FSKindFlipByte:
		return "flip-byte"
	case FSKindTruncateRead:
		return "truncate-read"
	default:
		return "unknown"
	}
}

var allFSKinds = []FSKind{FSKindShortWrite, FSKindSyncError, FSKindFlipByte, FSKindTruncateRead}

// FSConfig shapes a fault filesystem. The zero value injects nothing.
type FSConfig struct {
	// Seed determines every path's fate. Two fault filesystems with the
	// same seed, root, and config agree on which paths fail and how.
	Seed int64
	// Rate is the fraction of paths that are faulted, in [0, 1].
	Rate float64
	// PersistentRate is the fraction of *faulted* paths whose
	// write-side faults (short write, sync error) fire on every
	// attempt rather than only the first, in [0, 1]. Read-side faults
	// (flip, truncate) model at-rest damage and are always persistent.
	PersistentRate float64
	// Kinds restricts which fault varieties are drawn. Empty means all.
	Kinds []FSKind
	// PathContains, when non-empty, exempts any path whose root-relative
	// form does not contain the substring — chaos aimed at one artifact
	// family (".snapbin", "cache.log") without collateral damage.
	PathContains string
	// Force pins explicit fates by root-relative (slash-separated) path,
	// overriding the seeded draw. Forced faults follow PersistentRate
	// semantics only if ForceTransient is set; by default they are
	// persistent. Tests use Force for surgical, readable setups and the
	// seeded draw for storms.
	Force map[string]FSKind
	// ForceTransient makes forced write-side faults transient (first
	// attempt only) instead of persistent.
	ForceTransient bool
}

// FaultFS wraps an inner vfs.FS and injects deterministic disk faults.
// A path's fate is a pure function of (seed, path-relative-to-root):
// t.TempDir() roots vary per run, but relative artifact names do not,
// so fixed-seed suites reproduce bit-for-bit. The ledger counts every
// injection per path, giving chaos tests exact-count assertions under
// -race.
type FaultFS struct {
	inner vfs.FS
	root  string
	cfg   FSConfig
	kinds []FSKind

	mu    sync.Mutex
	paths map[string]*fsPathState
}

type fsPathState struct {
	fate      fsFate
	attempts  int // write-side attempts (Write/Sync on opened handles)
	reads     int
	writes    int
	injected  int
	readFault bool // a read-side fault fired at least once
}

type fsFate struct {
	faulted    bool
	persistent bool
	kind       FSKind
}

// NewFS wraps inner with deterministic fault injection. Paths are
// keyed relative to root; paths outside root use their cleaned
// absolute form (still deterministic, but run-dependent — keep chaos
// inside root).
func NewFS(inner vfs.FS, root string, cfg FSConfig) *FaultFS {
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = allFSKinds
	}
	return &FaultFS{
		inner: vfs.Or(inner),
		root:  filepath.Clean(root),
		cfg:   cfg,
		kinds: kinds,
		paths: make(map[string]*fsPathState),
	}
}

// Key returns the ledger key for path: its slash-separated form
// relative to the configured root.
func (f *FaultFS) Key(path string) string {
	rel, err := filepath.Rel(f.root, filepath.Clean(path))
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filepath.Clean(path))
	}
	return filepath.ToSlash(rel)
}

func (f *FaultFS) fateOf(key string) fsFate {
	if forced, ok := f.cfg.Force[key]; ok {
		return fsFate{faulted: true, persistent: !f.cfg.ForceTransient, kind: forced}
	}
	if f.cfg.Rate <= 0 {
		return fsFate{}
	}
	if f.cfg.PathContains != "" && !strings.Contains(key, f.cfg.PathContains) {
		return fsFate{}
	}
	h := fnv.New64a()
	io.WriteString(h, strconv.FormatInt(f.cfg.Seed, 10))
	io.WriteString(h, "\x00fs\x00")
	io.WriteString(h, key)
	sum := h.Sum64()
	if fraction(sum) >= f.cfg.Rate {
		return fsFate{}
	}
	sum = whiten(sum)
	persistent := fraction(sum) < f.cfg.PersistentRate
	sum = whiten(sum)
	return fsFate{faulted: true, persistent: persistent, kind: f.kinds[sum%uint64(len(f.kinds))]}
}

// state returns (creating if needed) the ledger entry for key.
func (f *FaultFS) state(key string) *fsPathState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.paths[key]
	if !ok {
		st = &fsPathState{fate: f.fateOf(key)}
		f.paths[key] = st
	}
	return st
}

// writeFaultFor reports whether the next write-side attempt on key is
// faulted, advancing the attempt ordinal. Transient fates fault only
// the first attempt.
func (f *FaultFS) writeFaultFor(key string) (bool, FSKind) {
	st := f.state(key)
	f.mu.Lock()
	defer f.mu.Unlock()
	st.attempts++
	fate := st.fate
	if !fate.faulted || (fate.kind != FSKindShortWrite && fate.kind != FSKindSyncError) {
		return false, 0
	}
	if !fate.persistent && st.attempts > 1 {
		return false, 0
	}
	st.injected++
	return true, fate.kind
}

// readFaultFor reports the read-side fault (if any) on key. Read
// faults model at-rest damage, so they are unconditional for the
// path's lifetime; the ledger records that corruption was observed.
func (f *FaultFS) readFaultFor(key string) (bool, FSKind) {
	st := f.state(key)
	f.mu.Lock()
	defer f.mu.Unlock()
	fate := st.fate
	if !fate.faulted || (fate.kind != FSKindFlipByte && fate.kind != FSKindTruncateRead) {
		return false, 0
	}
	st.injected++
	st.readFault = true
	return true, fate.kind
}

// flipPos derives the deterministic byte position to invert for key in
// a payload of size n.
func (f *FaultFS) flipPos(key string, n int) int {
	if n <= 0 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, strconv.FormatInt(f.cfg.Seed, 10))
	io.WriteString(h, "\x00flip\x00")
	io.WriteString(h, key)
	return int(whiten(h.Sum64()) % uint64(n))
}

// FSStats is a fault filesystem's ledger summary.
type FSStats struct {
	// Paths counts distinct paths seen.
	Paths int
	// Injected counts faulted operations across all paths.
	Injected int
	// CorruptReadPaths lists paths whose reads were served corrupted
	// (flipped or truncated) at least once, sorted.
	CorruptReadPaths []string
	// WriteFaultPaths lists paths that suffered at least one short
	// write or sync error, sorted.
	WriteFaultPaths []string
}

// Stats summarizes the ledger.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FSStats{Paths: len(f.paths)}
	for key, st := range f.paths {
		s.Injected += st.injected
		if st.readFault {
			s.CorruptReadPaths = append(s.CorruptReadPaths, key)
		}
		if st.injected > 0 && (st.fate.kind == FSKindShortWrite || st.fate.kind == FSKindSyncError) {
			s.WriteFaultPaths = append(s.WriteFaultPaths, key)
		}
	}
	sortStrings(s.CorruptReadPaths)
	sortStrings(s.WriteFaultPaths)
	return s
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- vfs.FS implementation ---

func (f *FaultFS) Open(name string) (vfs.File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(inner, name), nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f.wrap(inner, name), nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	// Temp files inherit the fate of the *destination*, not the random
	// temp name: the atomic-write idiom (CreateTemp "x.tmp-*" → rename
	// to "x") must draw one stable fate per logical artifact or fixed
	// seeds could not target it.
	base := pattern
	if i := strings.Index(base, ".tmp-"); i >= 0 {
		base = base[:i]
	} else {
		base = strings.TrimRight(base, "*-")
	}
	return &faultFile{File: inner, fs: f, key: f.Key(filepath.Join(dir, base))}, nil
}

func (f *FaultFS) wrap(inner vfs.File, name string) vfs.File {
	return &faultFile{File: inner, fs: f, key: f.Key(name)}
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return f.corruptRead(f.Key(name), data), nil
}

// corruptRead applies the path's read-side fault to a whole-file
// payload.
func (f *FaultFS) corruptRead(key string, data []byte) []byte {
	inject, kind := f.readFaultFor(key)
	if !inject || len(data) == 0 {
		return data
	}
	switch kind {
	case FSKindFlipByte:
		out := make([]byte, len(data))
		copy(out, data)
		out[f.flipPos(key, len(out))] ^= 0xff
		return out
	case FSKindTruncateRead:
		return data[:len(data)/2]
	}
	return data
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	key := f.Key(name)
	if inject, kind := f.writeFaultFor(key); inject {
		switch kind {
		case FSKindShortWrite:
			// Land the torn prefix, then fail — like the kernel did.
			_ = f.inner.WriteFile(name, data[:len(data)/2], perm)
			return fmt.Errorf("faultinject: %s: %w", key, io.ErrShortWrite)
		case FSKindSyncError:
			return fmt.Errorf("faultinject: %s: sync error: %w", key, fs.ErrInvalid)
		}
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	return f.inner.Stat(name)
}
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) SyncDir(path string) error                  { return f.inner.SyncDir(path) }

// faultFile wraps an open handle. Write-side faults fire per attempt
// (Write or Sync); read-side faults corrupt the view of the underlying
// bytes without touching the file.
type faultFile struct {
	vfs.File
	fs  *FaultFS
	key string

	mu  sync.Mutex
	pos int64 // streaming-read offset for the corrupted view
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if inject, kind := ff.fs.writeFaultFor(ff.key); inject {
		switch kind {
		case FSKindShortWrite:
			n, _ := ff.File.Write(p[:len(p)/2])
			return n, fmt.Errorf("faultinject: %s: %w", ff.key, io.ErrShortWrite)
		case FSKindSyncError:
			// Sync faults let the write through; the error waits for
			// Sync. Fall through to the real write.
		}
	}
	return ff.File.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if inject, kind := ff.fs.writeFaultFor(ff.key); inject && kind == FSKindShortWrite {
		n, _ := ff.File.WriteAt(p[:len(p)/2], off)
		return n, fmt.Errorf("faultinject: %s: %w", ff.key, io.ErrShortWrite)
	}
	return ff.File.WriteAt(p, off)
}

func (ff *faultFile) Sync() error {
	if inject, kind := ff.fs.writeFaultFor(ff.key); inject && kind == FSKindSyncError {
		return fmt.Errorf("faultinject: %s: sync error: %w", ff.key, fs.ErrInvalid)
	}
	return ff.File.Sync()
}

// corruptView returns the faulted length of the file and whether a
// flip applies, consulting the real size once per call.
func (ff *faultFile) corruptView() (kind FSKind, limit int64, ok bool) {
	inject, k := ff.fs.readFaultFor(ff.key)
	if !inject {
		return 0, 0, false
	}
	st, err := ff.File.Stat()
	if err != nil {
		return 0, 0, false
	}
	size := st.Size()
	if k == FSKindTruncateRead {
		return k, size / 2, true
	}
	return k, size, true
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	kind, limit, ok := ff.corruptView()
	if !ok {
		return ff.File.ReadAt(p, off)
	}
	if off >= limit {
		return 0, io.EOF
	}
	if int64(len(p)) > limit-off {
		p = p[:limit-off]
	}
	n, err := ff.File.ReadAt(p, off)
	if kind == FSKindFlipByte && n > 0 {
		pos := int64(ff.fs.flipPos(ff.key, int(limit)))
		if pos >= off && pos < off+int64(n) {
			p[pos-off] ^= 0xff
		}
	}
	if err == nil && int64(n)+off == limit && kind == FSKindTruncateRead {
		err = io.EOF
	}
	return n, err
}

func (ff *faultFile) Read(p []byte) (int, error) {
	_, _, corrupt := ff.corruptView()
	if !corrupt {
		return ff.File.Read(p)
	}
	ff.mu.Lock()
	pos := ff.pos
	ff.mu.Unlock()
	n, err := ff.ReadAt(p, pos)
	ff.mu.Lock()
	ff.pos += int64(n)
	ff.mu.Unlock()
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := ff.File.Seek(offset, whence)
	ff.mu.Lock()
	ff.pos = pos
	ff.mu.Unlock()
	return pos, err
}
