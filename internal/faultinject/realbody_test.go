package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// TestRealBodyFaultKinds covers the opt-in corruption kinds used by
// the fleet chaos suite: KindTruncateBody tears a real response
// mid-transfer, KindFlipByte delivers the full length with exactly one
// byte inverted. Both are transient by default — the second attempt on
// the same key passes through clean.
func TestRealBodyFaultKinds(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		w.Write(payload)
	}))
	defer ts.Close()

	t.Run("truncate", func(t *testing.T) {
		c := &http.Client{Transport: NewTransport(http.DefaultTransport, Config{
			Seed: 3, Rate: 1, Kinds: []Kind{KindTruncateBody},
		})}
		resp, err := c.Get(ts.URL + "/artifact")
		if err != nil {
			t.Fatalf("faulted GET: %v", err)
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Fatalf("read error = %v, want ErrUnexpectedEOF", rerr)
		}
		if len(data) == 0 || len(data) >= len(payload) {
			t.Fatalf("truncated body is %d bytes of %d, want a proper prefix", len(data), len(payload))
		}
		if !bytes.Equal(data, payload[:len(data)]) {
			t.Fatal("truncated body is not a prefix of the real payload")
		}

		resp, err = c.Get(ts.URL + "/artifact")
		if err != nil {
			t.Fatalf("second GET: %v", err)
		}
		data, rerr = io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || !bytes.Equal(data, payload) {
			t.Fatalf("second attempt not clean: err=%v len=%d", rerr, len(data))
		}
	})

	t.Run("flip", func(t *testing.T) {
		c := &http.Client{Transport: NewTransport(http.DefaultTransport, Config{
			Seed: 5, Rate: 1, Kinds: []Kind{KindFlipByte},
		})}
		resp, err := c.Get(ts.URL + "/artifact")
		if err != nil {
			t.Fatalf("faulted GET: %v", err)
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Fatalf("flip read error: %v", rerr)
		}
		if len(data) != len(payload) {
			t.Fatalf("flipped body is %d bytes, want full %d", len(data), len(payload))
		}
		diff := 0
		for i := range data {
			if data[i] != payload[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("flipped body differs in %d bytes, want exactly 1", diff)
		}

		resp, err = c.Get(ts.URL + "/artifact")
		if err != nil {
			t.Fatalf("second GET: %v", err)
		}
		data, rerr = io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || !bytes.Equal(data, payload) {
			t.Fatalf("second attempt not clean: err=%v", rerr)
		}
	})
}

// TestRealBodyKindsAreOptIn pins the default HTTP kind set: the
// body-corruption kinds must never be drawn unless explicitly listed,
// because growing the default set would silently reshuffle which kind
// every fixed-seed chaos key draws.
func TestRealBodyKindsAreOptIn(t *testing.T) {
	for _, k := range httpKinds {
		if k == KindTruncateBody || k == KindFlipByte {
			t.Fatalf("default HTTP kind set includes opt-in kind %v", k)
		}
	}
}
