package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// httpKinds are the fault varieties the transport draws by default.
// KindTruncateBody and KindFlipByte are deliberately absent: kind
// selection is sum % len(kinds), so growing this list would reshuffle
// which kind every fixed-seed suite's keys draw. The corruption kinds
// are opt-in via Config.Kinds.
var httpKinds = []Kind{
	KindTimeout, KindRateLimit, KindServerError,
	KindReset, KindSlowLoris, KindTornBody,
}

// Transport is a fault-injecting http.RoundTripper. Requests are keyed
// by host+path; a key's fate is fixed by the seed (see package doc).
// Un-faulted attempts pass through to Inner untouched.
type Transport struct {
	// Inner serves attempts the injector lets through.
	Inner http.RoundTripper
	// Config shapes the injection.
	Config Config

	ledger ledger
}

// NewTransport wraps inner with fault injection under cfg.
func NewTransport(inner http.RoundTripper, cfg Config) *Transport {
	return &Transport{Inner: inner, Config: cfg}
}

func (t *Transport) kinds() []Kind {
	if len(t.Config.Kinds) > 0 {
		return t.Config.Kinds
	}
	return httpKinds
}

// Key reduces a request URL to the injector's per-key identity.
func Key(host, path string) string { return host + path }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := Key(req.URL.Host, req.URL.Path)
	if t.Config.SkipFaviconPaths && isFaviconPath(req.URL.Path) {
		return t.Inner.RoundTrip(req)
	}
	inject, kind := t.ledger.visit(key, t.Config.fateOf(key, t.kinds()))
	if !inject {
		return t.Inner.RoundTrip(req)
	}
	switch kind {
	case KindTimeout:
		return nil, &timeoutError{msg: fmt.Sprintf("faultinject: %s: i/o timeout", key)}
	case KindReset:
		return nil, fmt.Errorf("faultinject: read %s: %w", key, syscall.ECONNRESET)
	case KindRateLimit:
		resp := t.respond(req, http.StatusTooManyRequests, "rate limited")
		secs := int(t.Config.retryAfter().Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		resp.Header.Set("Retry-After", strconv.Itoa(secs))
		return resp, nil
	case KindServerError:
		return t.respond(req, http.StatusServiceUnavailable, "injected server error"), nil
	case KindSlowLoris:
		resp := t.respond(req, http.StatusOK, "")
		resp.Body = &slowBody{
			prefix: []byte("<html><head><title>slow"),
			ctx:    req.Context(),
			stall:  t.Config.stall(),
			done:   make(chan struct{}),
			key:    key,
		}
		return resp, nil
	case KindTornBody:
		resp := t.respond(req, http.StatusOK, "")
		resp.Body = &tornBody{prefix: []byte("<html><body>torn")}
		resp.ContentLength = int64(len("<html><body>torn")) * 4
		return resp, nil
	case KindTruncateBody, KindFlipByte:
		// These kinds corrupt the *real* response rather than fabricate
		// one: the request reaches Inner, and the damage happens to the
		// bytes in flight — the case only end-to-end verification (a
		// content hash over the received artifact) can catch.
		resp, err := t.Inner.RoundTrip(req)
		if err != nil || resp.Body == nil {
			return resp, err
		}
		if kind == KindTruncateBody {
			keep := resp.ContentLength / 2
			if keep <= 0 {
				keep = 512
			}
			resp.Body = &truncatedRealBody{inner: resp.Body, remaining: keep, key: key}
		} else {
			var off int64
			if resp.ContentLength > 1 {
				// Deterministic flip position: derived from (seed, key)
				// alone so reruns corrupt the same byte.
				h := fnv.New64a()
				io.WriteString(h, strconv.FormatInt(t.Config.Seed, 10))
				io.WriteString(h, "\x00flip\x00")
				io.WriteString(h, key)
				off = int64(whiten(h.Sum64()) % uint64(resp.ContentLength))
			}
			resp.Body = &flippedRealBody{inner: resp.Body, offset: off}
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("faultinject: %s: unknown fault kind %d", key, kind)
	}
}

// respond builds a minimal well-formed response.
func (t *Transport) respond(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/html; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Stats returns the transport's per-key ledger summary.
func (t *Transport) Stats() Stats { return t.ledger.stats() }

// slowBody yields a short prefix, then stalls. The stall ends when the
// request context dies, Close is called, or the configured bound
// elapses — whichever comes first — and then reads fail with a timeout
// error. The bounded stall guarantees chaos runs terminate even when
// nothing cancels the read; the context path is what the crawler's
// ctx-aware body reader is tested against.
type slowBody struct {
	prefix []byte
	ctx    context.Context
	stall  time.Duration
	key    string

	mu        sync.Mutex
	sent      bool
	done      chan struct{}
	closeOnce sync.Once
}

func (b *slowBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	sent := b.sent
	b.sent = true
	b.mu.Unlock()
	if !sent {
		n := copy(p, b.prefix)
		return n, nil
	}
	t := time.NewTimer(b.stall)
	defer t.Stop()
	select {
	case <-b.ctx.Done():
		return 0, b.ctx.Err()
	case <-b.done:
		return 0, fmt.Errorf("faultinject: %s: body closed during stall: %w", b.key, syscall.ECONNRESET)
	case <-t.C:
		return 0, &timeoutError{msg: fmt.Sprintf("faultinject: %s: slow-loris stall: i/o timeout", b.key)}
	}
}

func (b *slowBody) Close() error {
	b.closeOnce.Do(func() { close(b.done) })
	return nil
}

// tornBody yields a partial payload then fails with
// io.ErrUnexpectedEOF — truncated mid-transfer, the torn-favicon case.
type tornBody struct {
	prefix []byte
	sent   bool
	mu     sync.Mutex
}

func (b *tornBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.sent {
		b.sent = true
		return copy(p, b.prefix), nil
	}
	return 0, io.ErrUnexpectedEOF
}

func (b *tornBody) Close() error { return nil }

// truncatedRealBody forwards the real response body up to `remaining`
// bytes, then fails with io.ErrUnexpectedEOF — the connection died
// partway through a download the declared Content-Length promised more
// of. A ranged retry can resume past the delivered prefix.
type truncatedRealBody struct {
	inner     io.ReadCloser
	remaining int64
	key       string
}

func (b *truncatedRealBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faultinject: %s: truncated mid-transfer: %w", b.key, io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// Inner ended before the cut point: deliver its EOF untouched.
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = fmt.Errorf("faultinject: %s: truncated mid-transfer: %w", b.key, io.ErrUnexpectedEOF)
	}
	return n, err
}

func (b *truncatedRealBody) Close() error { return b.inner.Close() }

// flippedRealBody forwards the real response body with exactly one
// byte inverted at a predetermined offset. Length, status, and headers
// all stay plausible; only content verification notices.
type flippedRealBody struct {
	inner  io.ReadCloser
	offset int64
	pos    int64
}

func (b *flippedRealBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	if n > 0 && b.pos <= b.offset && b.offset < b.pos+int64(n) {
		p[b.offset-b.pos] ^= 0xFF
	}
	b.pos += int64(n)
	return n, err
}

func (b *flippedRealBody) Close() error { return b.inner.Close() }
