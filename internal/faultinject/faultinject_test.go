package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/resilience"
)

type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func okInner() (http.RoundTripper, *int) {
	calls := new(int)
	return rtFunc(func(req *http.Request) (*http.Response, error) {
		*calls++
		return &http.Response{
			Status: "200 OK", StatusCode: 200, Proto: "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/html"}},
			Body:    io.NopCloser(strings.NewReader("<html>ok</html>")),
			Request: req,
		}, nil
	}), calls
}

func get(t *testing.T, tr http.RoundTripper, rawurl string) (*http.Response, error) {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Fatal(err)
	}
	req := (&http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}).WithContext(context.Background())
	return tr.RoundTrip(req)
}

func TestFatesAreDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{Seed: 7, Rate: 0.5, PersistentRate: 0.5}
	a, b := NewTransport(nil, cfg), NewTransport(nil, cfg)
	differ := false
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("host%d.example/", i)
		fa := a.Config.fateOf(key, httpKinds)
		fb := b.Config.fateOf(key, httpKinds)
		if fa != fb {
			t.Fatalf("fate for %s diverged: %+v vs %+v", key, fa, fb)
		}
		if fa.faulted {
			differ = true
		}
	}
	if !differ {
		t.Fatal("rate 0.5 over 200 keys faulted nothing — fate derivation is broken")
	}
}

func TestTransientKeyFailsOnceThenHeals(t *testing.T) {
	// Find a transient-faulted key under this seed, then attempt it twice.
	cfg := Config{Seed: 3, Rate: 0.9, PersistentRate: 0, Kinds: []Kind{KindReset}}
	var key string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("t%d.example/", i)
		if f := cfg.fateOf(k, httpKinds); f.faulted && !f.persistent {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no transient key found at rate 0.9")
	}
	inner, calls := okInner()
	tr := NewTransport(inner, cfg)
	if _, err := get(t, tr, "http://"+key); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("first attempt = %v, want ECONNRESET", err)
	}
	resp, err := get(t, tr, "http://"+key)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("second attempt = %v/%v, want clean 200", resp, err)
	}
	resp.Body.Close()
	if *calls != 1 {
		t.Errorf("inner calls = %d, want 1 (only the healed attempt)", *calls)
	}
	st := tr.Stats()
	if st.Injected != 1 || len(st.HealedKeys) != 1 || len(st.ExhaustedKeys) != 0 {
		t.Errorf("stats = %+v, want 1 injection, 1 healed key, 0 exhausted", st)
	}
}

func TestPersistentKeyAlwaysFailsAndIsExhausted(t *testing.T) {
	cfg := Config{Seed: 3, Rate: 0.9, PersistentRate: 1, Kinds: []Kind{KindServerError}}
	var key string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("p%d.example/", i)
		if cfg.fateOf(k, httpKinds).faulted {
			key = k
			break
		}
	}
	inner, calls := okInner()
	tr := NewTransport(inner, cfg)
	for i := 0; i < 3; i++ {
		resp, err := get(t, tr, "http://"+key)
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d = %v/%v, want 503", i, resp, err)
		}
		resp.Body.Close()
	}
	if *calls != 0 {
		t.Errorf("inner calls = %d, want 0", *calls)
	}
	st := tr.Stats()
	if len(st.ExhaustedKeys) != 1 || st.ExhaustedKeys[0] != key {
		t.Errorf("ExhaustedKeys = %v, want [%s]", st.ExhaustedKeys, key)
	}
	if st.Injected != 3 {
		t.Errorf("Injected = %d, want 3", st.Injected)
	}
}

func TestEveryHTTPFaultKindClassifiesTransient(t *testing.T) {
	for _, kind := range httpKinds {
		cfg := Config{Seed: 11, Rate: 1, PersistentRate: 1, Kinds: []Kind{kind}, Stall: 5 * time.Millisecond}
		inner, _ := okInner()
		tr := NewTransport(inner, cfg)
		resp, err := get(t, tr, "http://faulty.example/page")
		switch kind {
		case KindTimeout, KindReset:
			if err == nil {
				t.Fatalf("%v: expected transport error", kind)
			}
			if !resilience.IsTransient(err) {
				t.Errorf("%v error %v must be transient", kind, err)
			}
			if kind == KindTimeout {
				var ne net.Error
				if !errors.As(err, &ne) || !ne.Timeout() {
					t.Errorf("%v error %v must be a net.Error timeout", kind, err)
				}
			}
		case KindRateLimit:
			if err != nil || resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("%v = %v/%v, want 429", kind, resp, err)
			}
			if resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()) <= 0 {
				t.Errorf("%v: missing Retry-After header", kind)
			}
			resp.Body.Close()
		case KindServerError:
			if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("%v = %v/%v, want 503", kind, resp, err)
			}
			resp.Body.Close()
		case KindSlowLoris:
			if err != nil || resp.StatusCode != 200 {
				t.Fatalf("%v = %v/%v, want 200 with stalling body", kind, resp, err)
			}
			_, rerr := io.ReadAll(resp.Body)
			if !resilience.IsTransient(rerr) {
				t.Errorf("%v read error %v must be transient", kind, rerr)
			}
			resp.Body.Close()
		case KindTornBody:
			if err != nil || resp.StatusCode != 200 {
				t.Fatalf("%v = %v/%v, want 200 with torn body", kind, resp, err)
			}
			_, rerr := io.ReadAll(resp.Body)
			if !errors.Is(rerr, io.ErrUnexpectedEOF) {
				t.Errorf("%v read error = %v, want ErrUnexpectedEOF", kind, rerr)
			}
			resp.Body.Close()
		}
	}
}

func TestSlowLorisUnblocksOnContextCancel(t *testing.T) {
	cfg := Config{Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []Kind{KindSlowLoris}, Stall: time.Minute}
	inner, _ := okInner()
	tr := NewTransport(inner, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	u, _ := url.Parse("http://slow.example/")
	req := (&http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}).WithContext(ctx)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, context.Canceled) {
		t.Errorf("read error = %v, want context.Canceled", rerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("read blocked %v past cancellation", elapsed)
	}
}

func TestSkipFaviconPathsExemptsIcons(t *testing.T) {
	cfg := Config{Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []Kind{KindReset}, SkipFaviconPaths: true}
	inner, calls := okInner()
	tr := NewTransport(inner, cfg)
	if resp, err := get(t, tr, "http://a.example/favicon.ico"); err != nil {
		t.Fatalf("favicon fetch = %v, want pass-through", err)
	} else {
		resp.Body.Close()
	}
	if _, err := get(t, tr, "http://a.example/"); err == nil {
		t.Fatal("page fetch should be faulted at rate 1")
	}
	if *calls != 1 {
		t.Errorf("inner calls = %d, want 1 (the favicon)", *calls)
	}
}

type stubProvider struct{ calls int }

func (p *stubProvider) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	p.calls++
	return llm.Response{Content: "ok", Model: req.Model}, nil
}

func TestProviderFaultsCarryTypedHints(t *testing.T) {
	req := llm.Request{Model: "sim", Messages: []llm.Message{{Role: llm.RoleUser, Content: "classify AS1"}}}

	rl := NewProvider(&stubProvider{}, Config{Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []Kind{KindRateLimit}, RetryAfter: 3 * time.Second})
	_, err := rl.Complete(context.Background(), req)
	if !errors.Is(err, llm.ErrRateLimited) {
		t.Fatalf("rate-limit fault = %v, want ErrRateLimited", err)
	}
	if d, ok := resilience.RetryAfterOf(err); !ok || d != 3*time.Second {
		t.Errorf("hint = %v/%v, want 3s", d, ok)
	}

	srv := NewProvider(&stubProvider{}, Config{Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []Kind{KindServerError}})
	if _, err := srv.Complete(context.Background(), req); !errors.Is(err, llm.ErrServer) {
		t.Errorf("server fault = %v, want ErrServer", err)
	}

	// HTTP-only kinds requested on an LLM injector degrade to no-ops
	// rather than crashing.
	torn := NewProvider(&stubProvider{}, Config{Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []Kind{KindTornBody}})
	if _, err := torn.Complete(context.Background(), req); err != nil {
		t.Errorf("HTTP-only kind on LLM injector = %v, want pass-through", err)
	}
}

func TestProviderTransientKeyHeals(t *testing.T) {
	cfg := Config{Seed: 5, Rate: 1, PersistentRate: 0, Kinds: []Kind{KindServerError}}
	stub := &stubProvider{}
	p := NewProvider(stub, cfg)
	req := llm.Request{Model: "sim", Messages: []llm.Message{{Role: llm.RoleUser, Content: "extract"}}}
	if _, err := p.Complete(context.Background(), req); !errors.Is(err, llm.ErrServer) {
		t.Fatalf("first attempt = %v, want ErrServer", err)
	}
	resp, err := p.Complete(context.Background(), req)
	if err != nil || resp.Content != "ok" {
		t.Fatalf("second attempt = %v/%v, want healed", resp, err)
	}
	if stub.calls != 1 {
		t.Errorf("inner calls = %d, want 1", stub.calls)
	}
	// A different prompt is a different key with its own first-attempt fault.
	other := llm.Request{Model: "sim", Messages: []llm.Message{{Role: llm.RoleUser, Content: "other"}}}
	if _, err := p.Complete(context.Background(), other); !errors.Is(err, llm.ErrServer) {
		t.Errorf("new key first attempt = %v, want ErrServer", err)
	}
}
