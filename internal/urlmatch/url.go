// Package urlmatch provides the URL and domain analysis used by Borges's
// web-based inference (§4.3): canonicalization of reported and final
// URLs, extraction of registrable domains and brand labels ("the same
// subdomain", e.g. www.orange.es and www.orange.pl share "orange"), the
// manually curated blocklists of Appendix D, and the final-URL matching
// module that groups networks whose websites lead — directly or through
// refreshes and redirects — to the same destination.
package urlmatch

import (
	"fmt"
	"net"
	"net/url"
	"strings"
)

// Canonicalize normalizes a reported or final website URL so that
// equality comparison is meaningful:
//
//   - a missing scheme defaults to https
//   - scheme and host are lowercased
//   - default ports (:80 for http, :443 for https) are stripped
//   - the fragment is dropped
//   - an empty path becomes "/" and trailing slashes are collapsed
//
// Query strings are preserved: some operators report distinct
// language-selection queries on a shared host.
func Canonicalize(raw string) (string, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return "", fmt.Errorf("urlmatch: empty URL")
	}
	if !strings.Contains(s, "://") {
		s = "https://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("urlmatch: parse %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("urlmatch: unsupported scheme %q in %q", u.Scheme, raw)
	}
	host := strings.ToLower(u.Hostname())
	if !validHostname(host) {
		return "", fmt.Errorf("urlmatch: invalid host %q in %q", host, raw)
	}
	if strings.Contains(host, ":") {
		// IPv6 literals travel bracketed in the authority.
		host = "[" + host + "]"
	}
	port := u.Port()
	if (u.Scheme == "http" && port == "80") || (u.Scheme == "https" && port == "443") {
		port = ""
	}
	if port != "" {
		host = host + ":" + port
	}
	u.Host = host
	u.Fragment = ""
	u.User = nil
	// Normalize on the decoded path; String() re-encodes it canonically
	// (clearing RawPath drops any non-canonical original escaping).
	path := u.Path
	if path == "" {
		path = "/"
	}
	for strings.HasSuffix(path, "//") {
		path = path[:len(path)-1]
	}
	if path != "/" {
		path = strings.TrimSuffix(path, "/")
	}
	u.RawPath = ""
	u.Path = path
	return u.String(), nil
}

// validHostname accepts DNS-style names (letters, digits, dots, dashes,
// underscores; at least one alphanumeric) and IPv6 literals.
func validHostname(host string) bool {
	if host == "" {
		return false
	}
	if strings.Contains(host, ":") {
		return net.ParseIP(host) != nil
	}
	hasAlnum := false
	for _, r := range host {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			hasAlnum = true
		case r == '.' || r == '-' || r == '_':
		default:
			return false
		}
	}
	return hasAlnum
}

// Host extracts the lowercased hostname from a URL (with or without
// scheme), or "" if unparsable.
func Host(raw string) string {
	s := strings.TrimSpace(raw)
	if s == "" {
		return ""
	}
	if !strings.Contains(s, "://") {
		s = "https://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// multiLabelSuffixes is an embedded subset of the Public Suffix List
// covering the multi-label public suffixes that occur in PeeringDB
// website fields. Single-label TLDs (com, net, de, …) are handled
// implicitly. The set errs on the side of common ccTLD second-level
// registries.
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true, "net.uk": true,
	"com.br": true, "net.br": true, "org.br": true, "gov.br": true,
	"com.ar": true, "net.ar": true, "org.ar": true, "gob.ar": true,
	"com.mx": true, "net.mx": true, "org.mx": true, "gob.mx": true,
	"com.do": true, "net.do": true, "com.pe": true, "net.pe": true,
	"com.co": true, "net.co": true, "com.ec": true, "com.ve": true,
	"com.gt": true, "com.sv": true, "com.ni": true, "com.pa": true,
	"com.py": true, "com.uy": true, "com.bo": true, "com.cu": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.nz": true, "net.nz": true, "org.nz": true,
	"co.jp": true, "ne.jp": true, "or.jp": true, "ad.jp": true,
	"co.kr": true, "or.kr": true, "ne.kr": true,
	"com.cn": true, "net.cn": true, "org.cn": true,
	"com.hk": true, "net.hk": true, "com.tw": true, "net.tw": true,
	"com.sg": true, "net.sg": true, "com.my": true, "net.my": true,
	"co.id": true, "net.id": true, "or.id": true, "go.id": true, "ac.id": true,
	"com.ph": true, "net.ph": true, "com.vn": true, "net.vn": true,
	"co.th": true, "in.th": true, "co.in": true, "net.in": true, "org.in": true,
	"com.bd": true, "net.bd": true, "com.pk": true, "net.pk": true,
	"com.np": true, "com.lk": true, "com.kh": true,
	"co.za": true, "net.za": true, "org.za": true, "web.za": true,
	"com.ng": true, "com.gh": true, "co.ke": true, "or.ke": true,
	"co.tz": true, "co.ug": true, "com.eg": true, "com.ma": true,
	"com.tn": true, "com.dz": true, "com.ly": true, "com.sd": true,
	"com.tr": true, "net.tr": true, "com.sa": true, "net.sa": true,
	"com.ae": true, "com.qa": true, "com.kw": true, "com.bh": true,
	"com.om": true, "com.jo": true, "com.lb": true, "com.iq": true,
	"com.il": true, "co.il": true, "net.il": true,
	"com.ua": true, "net.ua": true, "in.ua": true,
	"com.ru": true, "net.ru": true, "com.by": true, "com.kz": true,
	"com.pl": true, "net.pl": true, "com.pt": true, "com.gr": true,
	"com.ro": true, "com.cy": true, "com.mt": true,
	"com.fj": true, "com.pg": true, "com.sb": true, "com.vu": true,
	"com.jm": true, "com.tt": true, "com.bb": true, "com.gy": true,
	"com.bz": true, "com.ht": true, "com.ag": true, "com.lc": true,
	"com.vc": true, "com.gd": true, "com.dm": true, "com.kn": true,
	"com.bs": true, "com.ky": true, "com.bm": true, "com.aw": true,
	"com.cw": true, "com.sr": true, "com.pr": true,
	"riau.go.id": true,
}

// RegistrableDomain returns the eTLD+1 of host: the public suffix plus
// one label ("www.orange.es" → "orange.es", "a.b.example.co.uk" →
// "example.co.uk"). IP addresses and single-label hosts are returned
// unchanged. Ports must already be stripped.
func RegistrableDomain(host string) string {
	h := strings.ToLower(strings.Trim(host, "."))
	if h == "" {
		return ""
	}
	labels := strings.Split(h, ".")
	// Collapse empty labels ("a..b" → ["a","b"]) so malformed hosts
	// still canonicalise to a fixed point.
	clean := labels[:0]
	for _, l := range labels {
		if l != "" {
			clean = append(clean, l)
		}
	}
	labels = clean
	if len(labels) == 0 {
		return ""
	}
	if len(labels) < 2 {
		return labels[0]
	}
	// Try the longest multi-label suffix first (max 3 labels).
	for take := 3; take >= 2; take-- {
		if len(labels) > take {
			suffix := strings.Join(labels[len(labels)-take:], ".")
			if multiLabelSuffixes[suffix] {
				return strings.Join(labels[len(labels)-take-1:], ".")
			}
		}
	}
	// Default: single-label TLD.
	return strings.Join(labels[len(labels)-2:], ".")
}

// BrandLabel returns the brand-carrying label of a host: the leftmost
// label of its registrable domain ("www.orange.es" → "orange",
// "www.claropr.com" → "claropr"). This is the paper's "subdomain" notion
// in §4.3.3 (e.g. www.orange.es and www.orange.pl share "orange").
func BrandLabel(host string) string {
	rd := RegistrableDomain(host)
	if rd == "" {
		return ""
	}
	if i := strings.IndexByte(rd, '.'); i > 0 {
		return rd[:i]
	}
	return rd
}

// BrandLabelOfURL is BrandLabel applied to a URL's host.
func BrandLabelOfURL(raw string) string { return BrandLabel(Host(raw)) }

// SharedPrefixLen returns the length of the common prefix of two strings;
// used to score domain-name similarity between brand labels (e.g.
// "clarochile" vs "claropr" share "claro").
func SharedPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
