package urlmatch

import (
	"sort"
	"strings"
)

// Blocklist filters websites that do not point to a company's own web
// presence but to mainstream communication platforms (Facebook, LinkedIn,
// GitHub, Discord, …) or shared infrastructure. Grouping networks by such
// URLs would link unrelated companies, so Borges removes them before
// sibling inference (§4.3.2, Appendix D).
type Blocklist struct {
	labels  map[string]bool // blocked brand labels
	domains map[string]bool // blocked registrable domains
}

// NewBlocklist builds a blocklist from blocked brand labels and blocked
// registrable domains. Entries are lowercased.
func NewBlocklist(labels, domains []string) *Blocklist {
	b := &Blocklist{labels: make(map[string]bool), domains: make(map[string]bool)}
	for _, l := range labels {
		b.labels[strings.ToLower(l)] = true
	}
	for _, d := range domains {
		b.domains[strings.ToLower(d)] = true
	}
	return b
}

// BlockedURL reports whether the URL's host is blocked, either by brand
// label or by registrable domain. "bgp.tools"-style entries (containing a
// dot) are matched against the registrable domain.
func (b *Blocklist) BlockedURL(raw string) bool {
	return b.BlockedHost(Host(raw))
}

// BlockedHost reports whether the host is blocked.
func (b *Blocklist) BlockedHost(host string) bool {
	if host == "" {
		return true // unparsable hosts are never grouping evidence
	}
	if b.domains[RegistrableDomain(host)] {
		return true
	}
	return b.labels[BrandLabel(host)]
}

// Labels returns the blocked brand labels, sorted.
func (b *Blocklist) Labels() []string { return sortedKeys(b.labels) }

// Domains returns the blocked registrable domains, sorted.
func (b *Blocklist) Domains() []string { return sortedKeys(b.domains) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DefaultSubdomainBlocklist returns the manually curated list of
// Appendix D.1: brand labels removed from consideration when inferring
// siblings across networks reporting the same subdomain.
func DefaultSubdomainBlocklist() *Blocklist {
	return NewBlocklist(
		[]string{
			"myspace", "github", "he", "facebook", "instagram",
			"linkedin", "oracle", "discord", "peeringdb",
		},
		[]string{"bgp.tools"},
	)
}

// DefaultFinalURLBlocklist returns the manually curated list of
// Appendix D.2: registrable domains excluded from sibling inference when
// used along with favicons and final-URL matching.
func DefaultFinalURLBlocklist() *Blocklist {
	return NewBlocklist(nil, []string{
		"example.com", "github.com", "linkedin.com", "facebook.com", "discord.com",
	})
}
