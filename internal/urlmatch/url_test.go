package urlmatch

import (
	"testing"
)

func TestCanonicalize(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{"https://www.Lumen.com", "https://www.lumen.com/", false},
		{"www.lumen.com", "https://www.lumen.com/", false},
		{"http://WWW.EXAMPLE.com:80/a/", "http://www.example.com/a", false},
		{"https://x.com:443/b//", "https://x.com/b", false},
		{"https://x.com:8443/", "https://x.com:8443/", false},
		{"https://x.com/path#frag", "https://x.com/path", false},
		{"https://x.com/?lang=es", "https://x.com/?lang=es", false},
		{"https://user:pw@x.com/", "https://x.com/", false},
		{"", "", true},
		{"   ", "", true},
		{"ftp://x.com", "", true},
		{"https://", "", true},
		{"http://[::bad", "", true},
	}
	for _, c := range cases {
		got, err := Canonicalize(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Canonicalize(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Canonicalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	urls := []string{
		"HTTPS://WWW.Orange.ES/residential/",
		"t.ht.hr",
		"http://www.telekom.sk:80",
		"https://bapenda.riau.go.id/x//",
	}
	for _, u := range urls {
		once, err := Canonicalize(u)
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", u, err)
		}
		twice, err := Canonicalize(once)
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", once, err)
		}
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", u, once, twice)
		}
	}
}

func TestHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"https://www.Claro.com.do/personas/", "www.claro.com.do"},
		{"www.clarochile.cl", "www.clarochile.cl"},
		{"", ""},
		{"http://[::bad", ""},
	}
	for _, c := range cases {
		if got := Host(c.in); got != c.want {
			t.Errorf("Host(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.orange.es", "orange.es"},
		{"orange.es", "orange.es"},
		{"a.b.example.co.uk", "example.co.uk"},
		{"www.claro.com.do", "claro.com.do"},
		{"bapenda.riau.go.id", "bapenda.riau.go.id"},
		{"sub.bapenda.riau.go.id", "bapenda.riau.go.id"},
		{"www.t.ht.hr", "ht.hr"},
		{"localhost", "localhost"},
		{"", ""},
		{".trailing.dots.", "dots.trailing" /* placeholder, fixed below */},
	}
	// Fix the trailing-dots expectation: trimming dots leaves
	// "trailing.dots" whose registrable domain is itself.
	cases[len(cases)-1].want = "trailing.dots"
	for _, c := range cases {
		if got := RegistrableDomain(c.in); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBrandLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.orange.es", "orange"},
		{"www.orange.pl", "orange"},
		{"www.clarochile.cl", "clarochile"},
		{"www.claropr.com", "claropr"},
		{"www.claro.com.pe", "claro"},
		{"bgp.tools", "bgp"},
		{"", ""},
	}
	for _, c := range cases {
		if got := BrandLabel(c.in); got != c.want {
			t.Errorf("BrandLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := BrandLabelOfURL("https://www.orange.es/home"); got != "orange" {
		t.Errorf("BrandLabelOfURL = %q", got)
	}
}

func TestSharedPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"clarochile", "claropr", 5},
		{"same", "same", 4},
		{"", "x", 0},
		{"ab", "ba", 0},
	}
	for _, c := range cases {
		if got := SharedPrefixLen(c.a, c.b); got != c.want {
			t.Errorf("SharedPrefixLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
