package urlmatch

import (
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// FinalURL is a crawl outcome for one network: the URL the network's
// reported website ultimately leads to after refreshes and redirects.
type FinalURL struct {
	ASN asnum.ASN
	// URL is the canonical final URL (see Canonicalize).
	URL string
}

// Matcher implements the Final URL Matching Module (§4.3.2): it groups
// networks whose PeeringDB websites resolve — directly or indirectly — to
// the same final URL, after removing blocklisted destinations.
type Matcher struct {
	blocklist *Blocklist
}

// NewMatcher returns a Matcher using the given blocklist; nil selects
// the Appendix D.2 default.
func NewMatcher(b *Blocklist) *Matcher {
	if b == nil {
		b = DefaultFinalURLBlocklist()
	}
	return &Matcher{blocklist: b}
}

// Groups partitions the crawl outcomes by canonical final URL, dropping
// blocklisted and uncanonicalizable URLs. The result maps final URL →
// sorted member ASNs and includes singleton groups (a network whose
// website resolved uniquely still receives an AS-to-organization
// mapping; Table 3 counts 22,523 networks into 20,065 organizations).
func (m *Matcher) Groups(finals []FinalURL) map[string][]asnum.ASN {
	groups := make(map[string][]asnum.ASN)
	for _, f := range finals {
		canon, err := Canonicalize(f.URL)
		if err != nil {
			continue
		}
		if m.blocklist.BlockedURL(canon) {
			continue
		}
		groups[canon] = append(groups[canon], f.ASN)
	}
	for u := range groups {
		groups[u] = asnum.Dedup(groups[u])
	}
	return groups
}

// SiblingSets converts crawl outcomes into R&R sibling sets, one per
// final URL, in deterministic (URL-sorted) order.
func (m *Matcher) SiblingSets(finals []FinalURL) []cluster.SiblingSet {
	groups := m.Groups(finals)
	urls := make([]string, 0, len(groups))
	for u := range groups {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	out := make([]cluster.SiblingSet, 0, len(urls))
	for _, u := range urls {
		out = append(out, cluster.SiblingSet{
			ASNs:     groups[u],
			Source:   cluster.FeatureRR,
			Evidence: u,
		})
	}
	return out
}
