package urlmatch

import "testing"

// FuzzCanonicalize: accepted URLs must be stable fixed points, and the
// function must never panic.
func FuzzCanonicalize(f *testing.F) {
	f.Add("https://www.example.com/")
	f.Add("HTTP://X.COM:80//a//b/#f")
	f.Add("www.claro.com.do/personas/")
	f.Add("ftp://nope")
	f.Add("http://[::1]:8080/x?q=1")
	f.Add("://")
	f.Add("https://user:pass@h/p")
	f.Fuzz(func(t *testing.T, raw string) {
		once, err := Canonicalize(raw)
		if err != nil {
			return
		}
		twice, err := Canonicalize(once)
		if err != nil {
			t.Fatalf("canonical form rejected: %q → %q: %v", raw, once, err)
		}
		if once != twice {
			t.Fatalf("not idempotent: %q → %q → %q", raw, once, twice)
		}
	})
}

// FuzzRegistrableDomain: the result is always a suffix and a fixed point.
func FuzzRegistrableDomain(f *testing.F) {
	f.Add("www.orange.es")
	f.Add("a.b.c.co.uk")
	f.Add("..")
	f.Add("localhost")
	f.Add("x.riau.go.id")
	f.Fuzz(func(t *testing.T, host string) {
		rd := RegistrableDomain(host)
		if rd == "" {
			return
		}
		if RegistrableDomain(rd) != rd {
			t.Fatalf("not a fixed point: %q → %q → %q", host, rd, RegistrableDomain(rd))
		}
		if BrandLabel(host) == "" {
			t.Fatalf("non-empty registrable domain %q but empty brand label for %q", rd, host)
		}
	})
}
