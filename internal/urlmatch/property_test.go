package urlmatch

import (
	"strings"
	"testing"
	"testing/quick"
)

// hostFromSeed builds a plausible hostname from fuzz bytes so the
// property tests explore realistic inputs instead of rejecting noise.
func hostFromSeed(labels []uint8) string {
	words := []string{"www", "net", "claro", "orange", "isp", "telecom",
		"cdn", "mail", "portal", "fibra"}
	tlds := []string{"com", "net", "org", "com.br", "co.uk", "de", "es", "io", "cl", "go.id"}
	if len(labels) == 0 {
		return "example.com"
	}
	parts := make([]string, 0, 3)
	for i := 0; i < len(labels)%3+1; i++ {
		parts = append(parts, words[int(labels[i%len(labels)])%len(words)])
	}
	return strings.Join(parts, ".") + "." + tlds[int(labels[0])%len(tlds)]
}

// Canonicalize is idempotent on every URL it accepts.
func TestCanonicalizeIdempotentProperty(t *testing.T) {
	f := func(labels []uint8, path uint8, q bool) bool {
		raw := "https://" + hostFromSeed(labels) + "/p" + strings.Repeat("/x", int(path%4))
		if q {
			raw += "?lang=es"
		}
		once, err := Canonicalize(raw)
		if err != nil {
			return true // rejection is allowed, instability is not
		}
		twice, err := Canonicalize(once)
		return err == nil && once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Scheme-default and case normalisation never change identity: the
// same host spelled differently canonicalises identically.
func TestCanonicalizeCaseInsensitiveProperty(t *testing.T) {
	f := func(labels []uint8) bool {
		host := hostFromSeed(labels)
		a, err1 := Canonicalize("https://" + host + "/")
		b, err2 := Canonicalize("HTTPS://" + strings.ToUpper(host))
		return (err1 != nil && err2 != nil) || (err1 == nil && err2 == nil && a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// RegistrableDomain is always a suffix of the host and itself a fixed
// point of RegistrableDomain.
func TestRegistrableDomainProperties(t *testing.T) {
	f := func(labels []uint8) bool {
		host := hostFromSeed(labels)
		rd := RegistrableDomain(host)
		if rd == "" {
			return host == ""
		}
		if !strings.HasSuffix(host, rd) {
			return false
		}
		return RegistrableDomain(rd) == rd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// BrandLabel is always the first label of the registrable domain, and
// stripping arbitrary subdomains never changes it.
func TestBrandLabelStableUnderSubdomains(t *testing.T) {
	f := func(labels []uint8, sub uint8) bool {
		host := hostFromSeed(labels)
		base := BrandLabel(host)
		withSub := "x" + string(rune('a'+sub%26)) + "." + host
		return BrandLabel(withSub) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// SharedPrefixLen is symmetric, bounded by both lengths, and the
// prefixes really match.
func TestSharedPrefixLenProperties(t *testing.T) {
	f := func(a, b string) bool {
		n := SharedPrefixLen(a, b)
		if n != SharedPrefixLen(b, a) {
			return false
		}
		if n > len(a) || n > len(b) {
			return false
		}
		if a[:n] != b[:n] {
			return false
		}
		// Maximality: the next byte differs (or a string ended).
		if n < len(a) && n < len(b) && a[n] == b[n] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
