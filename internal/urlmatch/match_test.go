package urlmatch

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

func TestBlocklistDefaults(t *testing.T) {
	sub := DefaultSubdomainBlocklist()
	blockedHosts := []string{
		"www.facebook.com", "github.com", "he.net", "www.linkedin.com",
		"bgp.tools", "discord.gg" /* brand label "discord" */, "www.peeringdb.com",
	}
	for _, h := range blockedHosts {
		if !sub.BlockedHost(h) {
			t.Errorf("subdomain blocklist should block %q", h)
		}
	}
	allowed := []string{"www.lumen.com", "edg.io", "www.orange.es", "hetzner.de"}
	for _, h := range allowed {
		if sub.BlockedHost(h) {
			t.Errorf("subdomain blocklist should allow %q", h)
		}
	}

	fin := DefaultFinalURLBlocklist()
	if !fin.BlockedURL("https://github.com/someorg") {
		t.Error("final-URL blocklist should block github.com")
	}
	if !fin.BlockedURL("https://www.example.com/") {
		t.Error("final-URL blocklist should block example.com subdomains")
	}
	if fin.BlockedURL("https://github.io/x") {
		t.Error("github.io is not github.com")
	}
	if !fin.BlockedHost("") {
		t.Error("empty host must be blocked (never grouping evidence)")
	}
	if len(fin.Domains()) != 5 {
		t.Errorf("Domains() = %v", fin.Domains())
	}
	if got := sub.Labels(); len(got) != 9 {
		t.Errorf("Labels() = %v", got)
	}
}

func TestMatcherGroups(t *testing.T) {
	m := NewMatcher(nil)
	finals := []FinalURL{
		// The Edgio merger: Limelight and Edgecast both land on edg.io.
		{ASN: 22822, URL: "https://www.edg.io/"},
		{ASN: 15133, URL: "https://www.edg.io"},
		// A unique destination.
		{ASN: 3356, URL: "https://www.lumen.com/"},
		// Blocklisted platform pages must vanish.
		{ASN: 64500, URL: "https://www.facebook.com/someisp"},
		{ASN: 64501, URL: "https://www.facebook.com/someisp"},
		// Unparsable URL dropped.
		{ASN: 64502, URL: "http://[::bad"},
		// Duplicate ASN in same group deduped.
		{ASN: 22822, URL: "https://www.edg.io/"},
	}
	groups := m.Groups(finals)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
	edgio := groups["https://www.edg.io/"]
	if len(edgio) != 2 || edgio[0] != 15133 || edgio[1] != 22822 {
		t.Errorf("edg.io group = %v", edgio)
	}
	if got := groups["https://www.lumen.com/"]; len(got) != 1 || got[0] != 3356 {
		t.Errorf("lumen group = %v", got)
	}
}

func TestMatcherSiblingSets(t *testing.T) {
	m := NewMatcher(nil)
	finals := []FinalURL{
		{ASN: 1, URL: "https://b.example.org"},
		{ASN: 2, URL: "https://a.example.org"},
		{ASN: 3, URL: "https://a.example.org"},
	}
	sets := m.SiblingSets(finals)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2", len(sets))
	}
	// Deterministic URL order: a.example.org before b.example.org.
	if sets[0].Evidence != "https://a.example.org/" || len(sets[0].ASNs) != 2 {
		t.Errorf("first set = %+v", sets[0])
	}
	for _, s := range sets {
		if s.Source != cluster.FeatureRR {
			t.Errorf("source = %v, want R&R", s.Source)
		}
	}
}

func TestMatcherCustomBlocklist(t *testing.T) {
	m := NewMatcher(NewBlocklist(nil, []string{"evil.test"}))
	finals := []FinalURL{
		{ASN: asnum.ASN(1), URL: "https://sub.evil.test/x"},
		{ASN: asnum.ASN(2), URL: "https://good.test/"},
	}
	groups := m.Groups(finals)
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if _, ok := groups["https://good.test/"]; !ok {
		t.Errorf("good.test missing: %v", groups)
	}
}
