// Package asnum provides the core identifier types shared across Borges:
// Autonomous System Numbers (ASNs) and organization identifiers from the
// WHOIS (OID_W) and PeeringDB (OID_P) namespaces.
//
// ASNs are 32-bit unsigned integers per RFC 6793. The package accepts the
// common textual spellings found in operator-maintained data ("AS3356",
// "as 3356", "ASN3356", bare "3356") and normalizes them.
package asnum

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ASN is a 32-bit Autonomous System Number (RFC 6793).
type ASN uint32

// MaxASN is the largest assignable 32-bit ASN.
const MaxASN ASN = 0xFFFFFFFF

// String renders the ASN in the canonical "AS<number>" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// Uint returns the numeric value.
func (a ASN) Uint() uint32 { return uint32(a) }

// IsReserved reports whether the ASN falls in a range reserved by IANA
// (0, 23456 AS_TRANS, private-use 64512–65534, 65535, documentation
// 64496–64511 and 65536–65551, and private-use 4200000000–4294967294,
// plus the last 32-bit value). Reserved ASNs are never valid siblings.
func (a ASN) IsReserved() bool {
	n := uint32(a)
	switch {
	case n == 0:
		return true
	case n == 23456: // AS_TRANS
		return true
	case n >= 64496 && n <= 64511: // documentation
		return true
	case n >= 64512 && n <= 65534: // private use
		return true
	case n == 65535:
		return true
	case n >= 65536 && n <= 65551: // documentation
		return true
	case n >= 4200000000: // private use + reserved tail
		return true
	}
	return false
}

// Parse parses an ASN from text. It accepts "AS3356", "ASN3356", "as3356",
// "AS 3356", bare digits, and the RFC 5396 asdot notation for four-byte
// ASNs ("AS1.10" = 65546). It rejects values that do not fit in 32 bits.
func Parse(s string) (ASN, error) {
	t := strings.TrimSpace(s)
	upper := strings.ToUpper(t)
	switch {
	case strings.HasPrefix(upper, "ASN"):
		t = strings.TrimSpace(t[3:])
	case strings.HasPrefix(upper, "AS"):
		t = strings.TrimSpace(t[2:])
	}
	if t == "" {
		return 0, fmt.Errorf("asnum: empty ASN in %q", s)
	}
	if hi, lo, ok := strings.Cut(t, "."); ok {
		h, err := strconv.ParseUint(hi, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("asnum: invalid asdot high part in %q: %w", s, err)
		}
		l, err := strconv.ParseUint(lo, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("asnum: invalid asdot low part in %q: %w", s, err)
		}
		return ASN(h<<16 | l), nil
	}
	n, err := strconv.ParseUint(t, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("asnum: invalid ASN %q: %w", s, err)
	}
	return ASN(n), nil
}

// AsDot renders the ASN in RFC 5396 asdot notation: plain decimal below
// 65536, "high.low" above.
func (a ASN) AsDot() string {
	n := uint32(a)
	if n < 1<<16 {
		return strconv.FormatUint(uint64(n), 10)
	}
	return strconv.FormatUint(uint64(n>>16), 10) + "." + strconv.FormatUint(uint64(n&0xFFFF), 10)
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(s string) ASN {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Sort sorts a slice of ASNs in ascending numeric order.
func Sort(asns []ASN) {
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
}

// Dedup returns asns sorted with duplicates removed. The input slice is
// reused as backing storage.
func Dedup(asns []ASN) []ASN {
	if len(asns) < 2 {
		return asns
	}
	Sort(asns)
	out := asns[:1]
	for _, a := range asns[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// OrgIDKind distinguishes the namespace an organization identifier
// belongs to. WHOIS identifiers (OID_W) come from RIR allocation records
// as aggregated by CAIDA AS2Org; PeeringDB identifiers (OID_P) come from
// the operator-maintained PeeringDB organization objects.
type OrgIDKind uint8

const (
	// OrgIDWhois marks an identifier from WHOIS/AS2Org (OID_W).
	OrgIDWhois OrgIDKind = iota
	// OrgIDPeeringDB marks an identifier from PeeringDB (OID_P).
	OrgIDPeeringDB
)

// String implements fmt.Stringer.
func (k OrgIDKind) String() string {
	switch k {
	case OrgIDWhois:
		return "OID_W"
	case OrgIDPeeringDB:
		return "OID_P"
	default:
		return fmt.Sprintf("OrgIDKind(%d)", uint8(k))
	}
}

// OrgID is a namespaced organization identifier.
type OrgID struct {
	Kind OrgIDKind
	ID   string
}

// String renders the identifier with its namespace prefix, e.g.
// "OID_W:LVLT-ARIN" or "OID_P:907".
func (o OrgID) String() string { return o.Kind.String() + ":" + o.ID }

// WhoisOrg constructs a WHOIS-namespace org ID.
func WhoisOrg(id string) OrgID { return OrgID{Kind: OrgIDWhois, ID: id} }

// PDBOrg constructs a PeeringDB-namespace org ID from the numeric
// PeeringDB organization primary key.
func PDBOrg(id int) OrgID {
	return OrgID{Kind: OrgIDPeeringDB, ID: strconv.Itoa(id)}
}
