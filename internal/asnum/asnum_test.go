package asnum

import (
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    ASN
		wantErr bool
	}{
		{"AS3356", 3356, false},
		{"as3356", 3356, false},
		{"ASN3356", 3356, false},
		{"asn 3356", 3356, false},
		{"AS 3356", 3356, false},
		{"3356", 3356, false},
		{" 3356 ", 3356, false},
		{"AS4294967295", 4294967295, false},
		{"AS4294967296", 0, true}, // overflows 32 bits
		{"", 0, true},
		{"AS", 0, true},
		{"ASX", 0, true},
		{"AS-3356", 0, true},
		{"AS3356x", 0, true},
		{"3,356", 0, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Parse(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := ASN(3356).String(); got != "AS3356" {
		t.Errorf("String() = %q, want AS3356", got)
	}
	if got := ASN(0).String(); got != "AS0" {
		t.Errorf("String() = %q, want AS0", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		a := ASN(n)
		back, err := Parse(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsReserved(t *testing.T) {
	reserved := []ASN{0, 23456, 64496, 64511, 64512, 65000, 65534, 65535,
		65536, 65551, 4200000000, 4294967294, 4294967295}
	for _, a := range reserved {
		if !a.IsReserved() {
			t.Errorf("%v should be reserved", a)
		}
	}
	public := []ASN{1, 174, 3356, 15169, 23455, 23457, 64495, 65552, 394000, 4199999999}
	for _, a := range public {
		if a.IsReserved() {
			t.Errorf("%v should not be reserved", a)
		}
	}
}

func TestDedup(t *testing.T) {
	got := Dedup([]ASN{5, 3, 5, 1, 3, 3})
	want := []ASN{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Dedup = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dedup = %v, want %v", got, want)
		}
	}
	if out := Dedup(nil); len(out) != 0 {
		t.Errorf("Dedup(nil) = %v", out)
	}
	if out := Dedup([]ASN{7}); len(out) != 1 || out[0] != 7 {
		t.Errorf("Dedup([7]) = %v", out)
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(in []uint32) bool {
		asns := make([]ASN, len(in))
		seen := map[ASN]bool{}
		for i, n := range in {
			asns[i] = ASN(n)
			seen[ASN(n)] = true
		}
		out := Dedup(asns)
		if len(out) != len(seen) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		for _, a := range out {
			if !seen[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrgID(t *testing.T) {
	w := WhoisOrg("LVLT-ARIN")
	if w.String() != "OID_W:LVLT-ARIN" {
		t.Errorf("WhoisOrg.String() = %q", w.String())
	}
	p := PDBOrg(907)
	if p.String() != "OID_P:907" {
		t.Errorf("PDBOrg.String() = %q", p.String())
	}
	if w.Kind == p.Kind {
		t.Error("kinds should differ")
	}
	if k := OrgIDKind(9).String(); k != "OrgIDKind(9)" {
		t.Errorf("unknown kind String() = %q", k)
	}
}

func TestAsDot(t *testing.T) {
	cases := []struct {
		asn  ASN
		want string
	}{
		{3356, "3356"},
		{65535, "65535"},
		{65536, "1.0"},
		{65546, "1.10"},
		{4294967295, "65535.65535"},
	}
	for _, c := range cases {
		if got := c.asn.AsDot(); got != c.want {
			t.Errorf("AsDot(%d) = %q, want %q", uint32(c.asn), got, c.want)
		}
	}
}

func TestParseAsDot(t *testing.T) {
	cases := []struct {
		in      string
		want    ASN
		wantErr bool
	}{
		{"AS1.10", 65546, false},
		{"1.0", 65536, false},
		{"as65535.65535", 4294967295, false},
		{"AS1.65536", 0, true}, // low part overflows 16 bits
		{"AS65536.1", 0, true}, // high part overflows 16 bits
		{"AS1.", 0, true},
		{"AS.5", 0, true},
		{"AS1.2.3", 0, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAsDotRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		a := ASN(n)
		back, err := Parse("AS" + a.AsDot())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
