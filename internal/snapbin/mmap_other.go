//go:build !linux && !darwin

package snapbin

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errors.New("snapbin: mmap unsupported on this platform")
}
