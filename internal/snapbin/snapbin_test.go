package snapbin

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// testImage hand-builds a small, internally consistent image: two
// clusters in canonical order with a matching packed index, token
// index, and pre-rendered bodies. statOrgs/statASNs are preset so a
// decoded image DeepEquals this one.
func testImage() *Image {
	clusters := []cluster.Cluster{
		{ID: 0, Name: "Lumen", ASNs: []asnum.ASN{209, 3356, 3549}},
		{ID: 1, Name: "Tiny Net", ASNs: []asnum.ASN{65000}},
	}
	clusters[0].Features[cluster.FeatureOIDW] = true
	clusters[0].Features[cluster.FeatureRR] = true
	clusters[1].Features[cluster.FeatureFavicon] = true
	img := &Image{
		Source:       "test.jsonl",
		LoadedAt:     time.Unix(0, 1723000000000000000),
		HealthStatus: "ok",
		Quarantined:  2,
		HealthDetail: "whois degraded",
		Theta:        0.25,
		MultiASOrgs:  1,
		LargestOrg:   3,
		Histogram:    []Bucket{{Lo: 1, Hi: 1, Orgs: 1}, {Lo: 2, Hi: 2, Orgs: 0}, {Lo: 3, Hi: 4, Orgs: 1}},
		Clusters:     clusters,
		Keys:         []asnum.ASN{209, 3356, 3549, 65000},
		Vals:         []int32{0, 0, 0, 1},
		LowerNames:   []string{"lumen", "tiny net"},
		Tokens:       []string{"lumen", "net", "tiny"},
		Postings:     [][]int32{{0}, {1}, {1}},
		OrgBodies:    [][]byte{[]byte("{\"org\":0}\n"), []byte("{\"org\":1}\n")},
		ASTails:      [][]byte{[]byte(",\"org\":{}}\n"), []byte(",\"org\":{}}\n")},
		statOrgs:     2,
		statASNs:     4,
	}
	return img
}

func encode(t *testing.T, img *Image) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	hash, err := Encode(&buf, img)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), hash
}

func TestRoundTrip(t *testing.T) {
	img := testImage()
	data, hash := encode(t, img)
	got, gotHash, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash {
		t.Fatalf("Decode hash %s, Encode returned %s", gotHash, hash)
	}
	if want := HashImage(img); want != hash {
		t.Fatalf("HashImage %s disagrees with Encode %s", want, hash)
	}
	if !reflect.DeepEqual(got, img) {
		t.Fatalf("round trip drift:\n got %+v\nwant %+v", got, img)
	}
}

func TestHashExcludesProvenance(t *testing.T) {
	a := testImage()
	b := testImage()
	b.Source = "elsewhere.bin"
	b.LoadedAt = time.Unix(0, 9000000000)
	if HashImage(a) != HashImage(b) {
		t.Fatal("content hash depends on provenance (source/loadedAt)")
	}
	_, hashA := encode(t, a)
	_, hashB := encode(t, b)
	if hashA != hashB {
		t.Fatal("encoded hashes differ across provenance-only changes")
	}
	c := testImage()
	c.Clusters[0].Name = "Lumen Technologies"
	if HashImage(c) == HashImage(a) {
		t.Fatal("content change did not change the hash")
	}
}

func TestTypedErrors(t *testing.T) {
	valid, _ := encode(t, testImage())
	mut := func(f func(d []byte) []byte) []byte {
		d := append([]byte(nil), valid...)
		return f(d)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:10], ErrTruncated},
		{"bad magic", mut(func(d []byte) []byte { d[0] = 'X'; return d }), ErrBadMagic},
		{"future version", mut(func(d []byte) []byte { d[8] = 99; return d }), ErrVersion},
		{"torn tail", valid[:len(valid)-7], ErrTruncated},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xAB), ErrCorrupt},
		{"flipped hash byte", mut(func(d []byte) []byte { d[24] ^= 0xFF; return d }), ErrHashMismatch},
		{"flipped payload byte", mut(func(d []byte) []byte { d[len(d)-2] ^= 0xFF; return d }), ErrHashMismatch},
		{"wrong section id", mut(func(d []byte) []byte { d[headerSize] = 42; return d }), ErrCorrupt},
		{"shifted section offset", mut(func(d []byte) []byte { d[headerSize+4]++; return d }), ErrCorrupt},
		{"bad section count", mut(func(d []byte) []byte { d[12] = 2; return d }), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestEveryTruncationRejected decodes every strict prefix of a valid
// artifact: all must fail with a typed error, none may panic.
func TestEveryTruncationRejected(t *testing.T) {
	valid, _ := encode(t, testImage())
	for i := 0; i < len(valid); i++ {
		_, _, err := Decode(valid[:i])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", i, len(valid))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrHashMismatch) {
			t.Fatalf("prefix %d: untyped error %v", i, err)
		}
	}
}

// TestCountValidation flips an in-payload count field sky-high and
// re-signs the artifact so the hash check passes: the decoder must
// still refuse via the count-vs-remaining check, without ever
// attempting the 2 GiB allocation the count implies.
func TestCountValidation(t *testing.T) {
	data, _ := encode(t, testImage())
	entry := func(i, field int) int {
		return int(binary.LittleEndian.Uint64(data[headerSize+i*sectionEntrySize+field:]))
	}
	// The index section is table entry 3; its payload starts with the
	// key count. Claim 2^31-1 keys in a handful of bytes.
	off := entry(3, 4)
	binary.LittleEndian.PutUint32(data[off:], 1<<31-1)
	// Re-sign: the content hash covers sections 2..7, which sit
	// contiguously from the stats section (table entry 1) to EOF.
	sum := sha256.Sum256(data[entry(1, 4):])
	copy(data[24:56], sum[:])
	_, _, err := Decode(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge count: %v, want %v", err, ErrCorrupt)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	img := testImage()
	hash, err := WriteFile(path, img)
	if err != nil {
		t.Fatal(err)
	}
	got, gotHash, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash || !reflect.DeepEqual(got, img) {
		t.Fatal("ReadFile drift after WriteFile")
	}
	if !SniffFile(path) {
		t.Fatal("SniffFile misses a snapbin artifact")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestCrashedHalfWriteRejected simulates a writer that died without
// the atomic rename discipline: a half-written file under the
// published name must fail the size/hash check on load.
func TestCrashedHalfWriteRejected(t *testing.T) {
	valid, _ := encode(t, testImage())
	path := filepath.Join(t.TempDir(), "torn.bin")
	if err := os.WriteFile(path, valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFile(path)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn artifact: %v, want %v", err, ErrTruncated)
	}
}
