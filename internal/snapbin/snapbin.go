// Package snapbin defines the versioned binary snapshot format for
// serving artifacts: a single self-describing file holding everything
// internal/serve pre-computes at snapshot-build time — the packed
// ASN→cluster index, cluster membership and interned names, the
// token index with sorted posting lists, the pre-rendered /v1/org
// bodies and /v1/as tails, and the θ/size-histogram statistics —
// so a daemon cold-starts by decoding large flat sections instead of
// re-parsing JSONL, replaying a union-find, re-tokenizing every name,
// and re-encoding every response body.
//
// # File layout
//
// All integers are little-endian.
//
//	fixed header (64 bytes):
//	  [ 0: 8]  magic "BORGSNAP"
//	  [ 8:12]  format version (uint32, currently 1)
//	  [12:16]  section count (uint32)
//	  [16:24]  total file size (uint64) — cheap truncation check
//	  [24:56]  SHA-256 content hash (see below)
//	  [56:64]  reserved, zero
//	section table: count × 20 bytes {id uint32, offset uint64, length uint64}
//	section payloads, contiguous, in table order
//
// Sections must appear with strictly ascending IDs, contiguous
// payloads (each offset is the previous end), and the last payload
// ending exactly at the file size. Version 1 requires exactly the
// sections declared below.
//
// # Content hash
//
// The hash covers the payload bytes of every section except
// provenance, in table order. Provenance (source label, build time)
// is operational metadata: two encodings of the same logical snapshot
// — built on different machines, at different times, from a full
// build or a delta patch — produce the same content hash, which is
// what lets a replica fleet check cross-replica consistency and lets
// the delta-reload guard assert byte-level equivalence with a
// from-scratch build. The hash also rejects torn or corrupted
// artifacts: a crashed half-written file fails the size or hash check
// before anything is served.
//
// Decoding never trusts a length field before validating it against
// the bytes actually present, so truncated or adversarial inputs
// return typed errors instead of panicking or over-allocating.
package snapbin

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// Magic identifies a snapbin artifact; it is the first 8 bytes of
// every file and what SniffFile keys on.
const Magic = "BORGSNAP"

// Version is the format version this package writes and accepts.
const Version = 1

// Section IDs, in file order.
const (
	secProvenance = 1 // source label, build time (unhashed)
	secStats      = 2 // θ, histogram, health
	secClusters   = 3 // membership, names, lowercase names, features
	secIndex      = 4 // packed ASN→cluster index
	secTokens     = 5 // sorted tokens + posting lists
	secOrgBodies  = 6 // pre-rendered /v1/org responses
	secASTails    = 7 // pre-rendered /v1/as tails
)

var sectionIDs = []uint32{
	secProvenance, secStats, secClusters, secIndex, secTokens, secOrgBodies, secASTails,
}

const (
	headerSize       = 64
	sectionEntrySize = 20
)

// Typed decode failures. Every decode error wraps exactly one of
// these, so callers (and the fuzz harness) can distinguish a torn
// file from a corrupted one from a format mismatch.
var (
	// ErrBadMagic: the file does not start with Magic.
	ErrBadMagic = errors.New("snapbin: not a snapshot artifact (bad magic)")
	// ErrVersion: the artifact declares a format version this build
	// does not speak.
	ErrVersion = errors.New("snapbin: unsupported format version")
	// ErrTruncated: the file is shorter than its header claims — the
	// signature of a crashed half-written artifact.
	ErrTruncated = errors.New("snapbin: truncated artifact")
	// ErrCorrupt: structural damage — a malformed section table, a
	// length field pointing outside its section, an out-of-range ID.
	ErrCorrupt = errors.New("snapbin: corrupt artifact")
	// ErrHashMismatch: the content hash does not cover the payload
	// bytes present; the artifact was altered or torn mid-section.
	ErrHashMismatch = errors.New("snapbin: content hash mismatch")
)

// Bucket mirrors one bar of the serving layer's organization-size
// histogram.
type Bucket struct {
	Lo, Hi, Orgs int
}

// Image is the portable, fully-decoded form of a serving snapshot —
// every field internal/serve needs to reconstruct its Snapshot
// without re-tokenizing or re-rendering. snapbin deliberately does
// not import the serve package; serve converts in both directions.
type Image struct {
	// Provenance (excluded from the content hash).
	Source   string
	LoadedAt time.Time

	// Health, as recorded by the producing run.
	HealthStatus string
	Quarantined  int
	HealthDetail string

	// Statistics.
	Theta       float64
	MultiASOrgs int
	LargestOrg  int
	Histogram   []Bucket

	// Mapping: clusters in canonical order plus the packed index.
	Clusters []cluster.Cluster
	Keys     []asnum.ASN
	Vals     []int32

	// Search index: LowerNames[i] is the lowercase display name of
	// cluster i; Tokens is sorted ascending with Postings parallel.
	LowerNames []string
	Tokens     []string
	Postings   [][]int32

	// Pre-rendered response bytes per cluster.
	OrgBodies [][]byte
	ASTails   [][]byte

	// statOrgs/statASNs are the counts the stats section declared,
	// held for the cross-section consistency check after decode.
	statOrgs, statASNs int
}

// countingWriter tracks how many bytes a section writer produced.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

// sectionWriter serializes one section's payload.
type sectionWriter func(w *countingWriter, img *Image) error

var sectionWriters = map[uint32]sectionWriter{
	secProvenance: writeProvenance,
	secStats:      writeStats,
	secClusters:   writeClusters,
	secIndex:      writeIndex,
	secTokens:     writeTokens,
	secOrgBodies:  func(w *countingWriter, img *Image) error { return writeBlobs(w, img.OrgBodies) },
	secASTails:    func(w *countingWriter, img *Image) error { return writeBlobs(w, img.ASTails) },
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putString(w io.Writer, s string) error {
	if err := putU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeProvenance(w *countingWriter, img *Image) error {
	if err := putString(w, img.Source); err != nil {
		return err
	}
	return putU64(w, uint64(img.LoadedAt.UnixNano()))
}

func writeStats(w *countingWriter, img *Image) error {
	if err := putU64(w, math.Float64bits(img.Theta)); err != nil {
		return err
	}
	for _, v := range []uint32{
		uint32(len(img.Clusters)), uint32(len(img.Keys)),
		uint32(img.MultiASOrgs), uint32(img.LargestOrg),
	} {
		if err := putU32(w, v); err != nil {
			return err
		}
	}
	if err := putString(w, img.HealthStatus); err != nil {
		return err
	}
	if err := putU32(w, uint32(img.Quarantined)); err != nil {
		return err
	}
	if err := putString(w, img.HealthDetail); err != nil {
		return err
	}
	if err := putU32(w, uint32(len(img.Histogram))); err != nil {
		return err
	}
	for _, b := range img.Histogram {
		for _, v := range []uint32{uint32(b.Lo), uint32(b.Hi), uint32(b.Orgs)} {
			if err := putU32(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeClusters lays membership out columnar — counts, features,
// name lengths, name bytes, lowercase variants, then one flat ASN
// pool — so the decoder's inner loops run over homogeneous runs.
func writeClusters(w *countingWriter, img *Image) error {
	if err := putU32(w, uint32(len(img.Clusters))); err != nil {
		return err
	}
	for i := range img.Clusters {
		if err := putU32(w, uint32(len(img.Clusters[i].ASNs))); err != nil {
			return err
		}
	}
	feats := make([]byte, len(img.Clusters))
	for i := range img.Clusters {
		var b byte
		for f := 0; f < cluster.NumFeatures; f++ {
			if img.Clusters[i].Features[f] {
				b |= 1 << f
			}
		}
		feats[i] = b
	}
	if _, err := w.Write(feats); err != nil {
		return err
	}
	for i := range img.Clusters {
		if err := putString(w, img.Clusters[i].Name); err != nil {
			return err
		}
	}
	for _, s := range img.LowerNames {
		if err := putString(w, s); err != nil {
			return err
		}
	}
	for i := range img.Clusters {
		for _, a := range img.Clusters[i].ASNs {
			if err := putU32(w, uint32(a)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeIndex(w *countingWriter, img *Image) error {
	if err := putU32(w, uint32(len(img.Keys))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(img.Keys))
	for i, a := range img.Keys {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(a))
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i, v := range img.Vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	_, err := w.Write(buf[:4*len(img.Vals)])
	return err
}

func writeTokens(w *countingWriter, img *Image) error {
	if err := putU32(w, uint32(len(img.Tokens))); err != nil {
		return err
	}
	for _, tok := range img.Tokens {
		if err := putString(w, tok); err != nil {
			return err
		}
	}
	for _, ids := range img.Postings {
		if err := putU32(w, uint32(len(ids))); err != nil {
			return err
		}
		for _, id := range ids {
			if err := putU32(w, uint32(id)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeBlobs(w *countingWriter, blobs [][]byte) error {
	if err := putU32(w, uint32(len(blobs))); err != nil {
		return err
	}
	for _, b := range blobs {
		if err := putU32(w, uint32(len(b))); err != nil {
			return err
		}
	}
	for _, b := range blobs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// sectionLengths serializes every section to a counting sink to learn
// payload sizes without materializing a second copy of the data.
func sectionLengths(img *Image) ([]uint64, error) {
	out := make([]uint64, len(sectionIDs))
	for i, id := range sectionIDs {
		cw := &countingWriter{w: io.Discard}
		if err := sectionWriters[id](cw, img); err != nil {
			return nil, err
		}
		out[i] = cw.n
	}
	return out, nil
}

// HashImage computes the content hash of an image: the hash the
// encoded artifact would carry. Provenance is excluded by
// construction, so the hash is a pure function of the snapshot's
// logical content.
func HashImage(img *Image) string {
	h := sha256.New()
	for _, id := range sectionIDs {
		if id == secProvenance {
			continue
		}
		// Writers only fail when the sink fails; a hash never does.
		_ = sectionWriters[id](&countingWriter{w: h}, img)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Encode writes the artifact to w and returns its content hash. The
// write is buffered and sequential: header, section table, then each
// payload streamed once.
func Encode(w io.Writer, img *Image) (string, error) {
	lengths, err := sectionLengths(img)
	if err != nil {
		return "", err
	}
	tableSize := uint64(sectionEntrySize * len(sectionIDs))
	offset := uint64(headerSize) + tableSize
	total := offset
	for _, n := range lengths {
		total += n
	}

	header := make([]byte, headerSize, headerSize+tableSize)
	copy(header, Magic)
	binary.LittleEndian.PutUint32(header[8:], Version)
	binary.LittleEndian.PutUint32(header[12:], uint32(len(sectionIDs)))
	binary.LittleEndian.PutUint64(header[16:], total)
	for i, id := range sectionIDs {
		var entry [sectionEntrySize]byte
		binary.LittleEndian.PutUint32(entry[0:], id)
		binary.LittleEndian.PutUint64(entry[4:], offset)
		binary.LittleEndian.PutUint64(entry[12:], lengths[i])
		header = append(header, entry[:]...)
		offset += lengths[i]
	}

	digest := sha256.New()
	bw := bufio.NewWriterSize(w, 1<<20)
	// The header is assembled before payloads stream, so the hash
	// must be known first: run the hashed sections through the digest
	// now, then stream everything.
	for i, id := range sectionIDs {
		if id == secProvenance {
			continue
		}
		cw := &countingWriter{w: digest}
		_ = sectionWriters[id](cw, img)
		if cw.n != lengths[i] {
			return "", fmt.Errorf("snapbin: section %d length drifted between passes", id)
		}
	}
	sum := digest.Sum(nil)
	copy(header[24:56], sum)
	if _, err := bw.Write(header); err != nil {
		return "", err
	}
	for _, id := range sectionIDs {
		if err := sectionWriters[id](&countingWriter{w: bw}, img); err != nil {
			return "", err
		}
	}
	if err := bw.Flush(); err != nil {
		return "", err
	}
	return hex.EncodeToString(sum), nil
}

// WriteFile atomically persists the artifact at path: the bytes land
// in a temporary file in the same directory, are fsynced, and only
// then renamed over the destination — a crash mid-write leaves either
// the previous artifact or a stray temp file, never a torn artifact
// under the published name. The directory entry is fsynced after the
// rename so the publish itself survives power loss.
func WriteFile(path string, img *Image) (string, error) {
	return WriteFileFS(vfs.OS, path, img)
}

// WriteFileFS is WriteFile against an explicit filesystem — the seam
// the disk-chaos suites use to tear writes and fail fsyncs
// deterministically. A faulted write never promotes: the rename only
// happens after Encode, Sync, and Close all succeeded.
func WriteFileFS(fsys vfs.FS, path string, img *Image) (string, error) {
	fsys = vfs.Or(fsys)
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			fsys.Remove(tmp)
		}
	}()
	// The temp file is seekable, so the single-pass section writer
	// applies: payloads stream once and the header is patched in place,
	// instead of Encode's serialize-thrice dance.
	hash, err := EncodeToFile(f, img)
	if err != nil {
		return "", err
	}
	if err := f.Sync(); err != nil {
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return "", err
	}
	tmp = "" // renamed; nothing to clean up
	_ = fsys.SyncDir(dir)
	return hash, nil
}

// reader is a bounds-checked cursor over one section's payload. Every
// length it returns has already been proven to fit in the remaining
// bytes, so callers can allocate without an OOM risk from adversarial
// counts.
type reader struct {
	buf []byte
	pos int
	sec uint32
}

func (r *reader) fail(format string, args ...any) error {
	return fmt.Errorf("%w: section %d: %s", ErrCorrupt, r.sec, fmt.Sprintf(format, args...))
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, r.fail("truncated uint32 at offset %d", r.pos)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, r.fail("truncated uint64 at offset %d", r.pos)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

// count reads an element count and validates count*elemSize against
// the remaining payload before the caller allocates.
func (r *reader) count(elemSize int) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || elemSize > 0 && n > r.remaining()/elemSize {
		return 0, r.fail("count %d exceeds %d remaining bytes", n, r.remaining())
	}
	return n, nil
}

// bytes returns the next n raw bytes as a subslice (no copy).
func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, r.fail("%d bytes requested, %d remaining", n, r.remaining())
	}
	b := r.buf[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) done() error {
	if r.pos != len(r.buf) {
		return r.fail("%d trailing bytes", r.remaining())
	}
	return nil
}

// sectionSpan is one validated section-table entry.
type sectionSpan struct {
	id          uint32
	off, length uint64
}

// parseHeader validates the fixed 64-byte header and returns the
// declared section count, total size, and expected content hash.
func parseHeader(head []byte) (count uint32, size uint64, wantSum []byte, err error) {
	if string(head[:8]) != Magic {
		return 0, 0, nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(head[8:]); v != Version {
		return 0, 0, nil, fmt.Errorf("%w: file declares version %d, this build speaks %d", ErrVersion, v, Version)
	}
	count = binary.LittleEndian.Uint32(head[12:])
	size = binary.LittleEndian.Uint64(head[16:])
	if int(count) != len(sectionIDs) {
		return 0, 0, nil, fmt.Errorf("%w: %d sections declared, version %d has %d", ErrCorrupt, count, Version, len(sectionIDs))
	}
	return count, size, head[24:56:56], nil
}

// parseTable validates the section table against the contiguous-layout
// invariants: canonical IDs in order, each offset the previous end, and
// the last payload ending exactly at the declared size.
func parseTable(table []byte, count uint32, size uint64) ([]sectionSpan, error) {
	spans := make([]sectionSpan, count)
	next := uint64(headerSize) + uint64(sectionEntrySize)*uint64(count)
	for i := range spans {
		entry := table[sectionEntrySize*i:]
		id := binary.LittleEndian.Uint32(entry[0:])
		off := binary.LittleEndian.Uint64(entry[4:])
		length := binary.LittleEndian.Uint64(entry[12:])
		if id != sectionIDs[i] {
			return nil, fmt.Errorf("%w: section %d has id %d, want %d", ErrCorrupt, i, id, sectionIDs[i])
		}
		if off != next || length > size-off {
			return nil, fmt.Errorf("%w: section %d spans [%d,%d+%d) outside contiguous layout", ErrCorrupt, id, off, off, length)
		}
		spans[i] = sectionSpan{id: id, off: off, length: length}
		next = off + length
	}
	if next != size {
		return nil, fmt.Errorf("%w: sections end at %d, file size is %d", ErrCorrupt, next, size)
	}
	return spans, nil
}

// decodeSections runs every section decoder over its span of data and
// cross-checks the result. The content hash must already have been
// verified by the caller.
func decodeSections(spans []sectionSpan, data []byte) (*Image, error) {
	img := &Image{}
	for _, sp := range spans {
		r := &reader{buf: data[sp.off : sp.off+sp.length : sp.off+sp.length], sec: sp.id}
		var err error
		switch sp.id {
		case secProvenance:
			err = readProvenance(r, img)
		case secStats:
			err = readStats(r, img)
		case secClusters:
			err = readClusters(r, img)
		case secIndex:
			err = readIndex(r, img)
		case secTokens:
			err = readTokens(r, img)
		case secOrgBodies:
			img.OrgBodies, err = readBlobs(r)
		case secASTails:
			img.ASTails, err = readBlobs(r)
		}
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
	}
	if err := crossCheck(img); err != nil {
		return nil, err
	}
	return img, nil
}

// Decode parses an artifact held fully in memory and returns the
// image plus its verified content hash. Pre-rendered bodies are
// returned as zero-copy subslices of data, so the caller keeps data
// alive for the image's lifetime — exactly the behaviour a loaded
// snapshot wants, one backing array instead of a million small ones.
// When data is a memory-mapped file, the bodies serve straight off the
// page cache and decoding allocates only the index-sized sections.
func Decode(data []byte) (*Image, string, error) {
	if len(data) < headerSize {
		return nil, "", fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	count, size, wantSum, err := parseHeader(data[:headerSize])
	if err != nil {
		return nil, "", err
	}
	if size > uint64(len(data)) {
		return nil, "", fmt.Errorf("%w: header declares %d bytes, file has %d", ErrTruncated, size, len(data))
	}
	if size < uint64(len(data)) {
		return nil, "", fmt.Errorf("%w: %d bytes beyond the declared size %d", ErrCorrupt, uint64(len(data))-size, size)
	}
	tableEnd := uint64(headerSize) + uint64(sectionEntrySize)*uint64(count)
	if tableEnd > size {
		return nil, "", fmt.Errorf("%w: section table overruns file", ErrTruncated)
	}
	spans, err := parseTable(data[headerSize:tableEnd], count, size)
	if err != nil {
		return nil, "", err
	}

	digest := sha256.New()
	for _, sp := range spans {
		if sp.id != secProvenance {
			digest.Write(data[sp.off : sp.off+sp.length])
		}
	}
	sum := digest.Sum(nil)
	if string(sum) != string(wantSum) {
		return nil, "", ErrHashMismatch
	}

	img, err := decodeSections(spans, data)
	if err != nil {
		return nil, "", err
	}
	return img, hex.EncodeToString(sum), nil
}

func readProvenance(r *reader, img *Image) error {
	var err error
	if img.Source, err = r.str(); err != nil {
		return err
	}
	ns, err := r.u64()
	if err != nil {
		return err
	}
	img.LoadedAt = time.Unix(0, int64(ns))
	return nil
}

func readStats(r *reader, img *Image) error {
	bits, err := r.u64()
	if err != nil {
		return err
	}
	img.Theta = math.Float64frombits(bits)
	orgs, err := r.u32()
	if err != nil {
		return err
	}
	asns, err := r.u32()
	if err != nil {
		return err
	}
	// The counts are cross-checked against the cluster and index
	// sections once every section has decoded.
	img.statOrgs, img.statASNs = int(orgs), int(asns)
	multi, err := r.u32()
	if err != nil {
		return err
	}
	largest, err := r.u32()
	if err != nil {
		return err
	}
	img.MultiASOrgs, img.LargestOrg = int(multi), int(largest)
	if img.HealthStatus, err = r.str(); err != nil {
		return err
	}
	q, err := r.u32()
	if err != nil {
		return err
	}
	img.Quarantined = int(q)
	if img.HealthDetail, err = r.str(); err != nil {
		return err
	}
	nb, err := r.count(12)
	if err != nil {
		return err
	}
	img.Histogram = make([]Bucket, nb)
	for i := range img.Histogram {
		lo, err := r.u32()
		if err != nil {
			return err
		}
		hi, err := r.u32()
		if err != nil {
			return err
		}
		orgs, err := r.u32()
		if err != nil {
			return err
		}
		img.Histogram[i] = Bucket{Lo: int(lo), Hi: int(hi), Orgs: int(orgs)}
	}
	return nil
}

func readClusters(r *reader, img *Image) error {
	n, err := r.count(4)
	if err != nil {
		return err
	}
	counts := make([]uint32, n)
	total := 0
	for i := range counts {
		c, err := r.u32()
		if err != nil {
			return err
		}
		counts[i] = c
		total += int(c)
	}
	featBytes, err := r.bytes(n)
	if err != nil {
		return err
	}
	img.Clusters = make([]cluster.Cluster, n)
	for i := range img.Clusters {
		img.Clusters[i].ID = i
		for f := 0; f < cluster.NumFeatures; f++ {
			img.Clusters[i].Features[f] = featBytes[i]&(1<<f) != 0
		}
	}
	for i := range img.Clusters {
		if img.Clusters[i].Name, err = r.str(); err != nil {
			return err
		}
	}
	img.LowerNames = make([]string, n)
	for i := range img.LowerNames {
		if img.LowerNames[i], err = r.str(); err != nil {
			return err
		}
	}
	if total > r.remaining()/4 {
		return r.fail("ASN pool needs %d entries, %d bytes remain", total, r.remaining())
	}
	pool := make([]asnum.ASN, total)
	raw, err := r.bytes(4 * total)
	if err != nil {
		return err
	}
	for i := range pool {
		pool[i] = asnum.ASN(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	off := 0
	for i := range img.Clusters {
		c := int(counts[i])
		img.Clusters[i].ASNs = pool[off : off+c : off+c]
		off += c
	}
	return nil
}

func readIndex(r *reader, img *Image) error {
	n, err := r.count(8)
	if err != nil {
		return err
	}
	raw, err := r.bytes(8 * n)
	if err != nil {
		return err
	}
	img.Keys = make([]asnum.ASN, n)
	img.Vals = make([]int32, n)
	for i := 0; i < n; i++ {
		img.Keys[i] = asnum.ASN(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	vals := raw[4*n:]
	for i := 0; i < n; i++ {
		img.Vals[i] = int32(binary.LittleEndian.Uint32(vals[4*i:]))
	}
	return nil
}

func readTokens(r *reader, img *Image) error {
	n, err := r.count(5) // each token: length prefix + ≥0 bytes + posting count
	if err != nil {
		return err
	}
	img.Tokens = make([]string, n)
	for i := range img.Tokens {
		if img.Tokens[i], err = r.str(); err != nil {
			return err
		}
		if i > 0 && img.Tokens[i-1] >= img.Tokens[i] {
			return r.fail("tokens not strictly ascending at %d", i)
		}
	}
	img.Postings = make([][]int32, n)
	for i := range img.Postings {
		c, err := r.count(4)
		if err != nil {
			return err
		}
		raw, err := r.bytes(4 * c)
		if err != nil {
			return err
		}
		ids := make([]int32, c)
		for j := range ids {
			ids[j] = int32(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		img.Postings[i] = ids
	}
	return nil
}

func readBlobs(r *reader) ([][]byte, error) {
	n, err := r.count(4)
	if err != nil {
		return nil, err
	}
	lens := make([]uint32, n)
	var total uint64
	for i := range lens {
		l, err := r.u32()
		if err != nil {
			return nil, err
		}
		lens[i] = l
		total += uint64(l)
	}
	if total > uint64(r.remaining()) {
		return nil, r.fail("blobs need %d bytes, %d remain", total, r.remaining())
	}
	out := make([][]byte, n)
	for i, l := range lens {
		b, err := r.bytes(int(l))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// crossCheck validates the relationships between sections that no
// single section decoder can see: declared counts agree, per-cluster
// arrays are parallel, and every posting or index val names a real
// cluster. Membership-level verification (index ↔ cluster ASNs) is
// cluster.Restore's job; this keeps slice indexing in the serving
// layer provably in-bounds.
func crossCheck(img *Image) error {
	n := len(img.Clusters)
	if img.statOrgs != n {
		return fmt.Errorf("%w: stats declare %d orgs, clusters section has %d", ErrCorrupt, img.statOrgs, n)
	}
	if img.statASNs != len(img.Keys) {
		return fmt.Errorf("%w: stats declare %d networks, index has %d", ErrCorrupt, img.statASNs, len(img.Keys))
	}
	if len(img.Vals) != len(img.Keys) {
		return fmt.Errorf("%w: %d index keys but %d vals", ErrCorrupt, len(img.Keys), len(img.Vals))
	}
	if len(img.LowerNames) != n || len(img.OrgBodies) != n || len(img.ASTails) != n {
		return fmt.Errorf("%w: per-cluster arrays disagree: %d clusters, %d names, %d bodies, %d tails",
			ErrCorrupt, n, len(img.LowerNames), len(img.OrgBodies), len(img.ASTails))
	}
	for i, v := range img.Vals {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("%w: index val %d out of range at %d", ErrCorrupt, v, i)
		}
	}
	for ti, ids := range img.Postings {
		for j, id := range ids {
			if id < 0 || int(id) >= n {
				return fmt.Errorf("%w: token %q posting %d out of range", ErrCorrupt, img.Tokens[ti], id)
			}
			if j > 0 && ids[j-1] >= id {
				return fmt.Errorf("%w: token %q postings not strictly ascending", ErrCorrupt, img.Tokens[ti])
			}
		}
	}
	return nil
}

// ReadFile loads and decodes an artifact. The file is read once into
// memory; the returned image's byte slices alias that buffer.
func ReadFile(path string) (*Image, string, error) {
	return ReadFileFS(vfs.OS, path)
}

// ReadFileFS is ReadFile against an explicit filesystem, so scrubbers
// and chaos tests observe exactly the bytes that filesystem serves.
// The verify pass is folded into the read: each section is hashed as
// its bytes arrive (while they are cache-hot) instead of re-walking
// the full buffer after the read, so the file is traversed once.
func ReadFileFS(fsys vfs.FS, path string) (*Image, string, error) {
	f, err := vfs.Or(fsys).Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return readFrom(f)
}

// readFrom streams one artifact off an open file: header, table, then
// each section payload read and digested in turn, followed by a single
// decode pass over the assembled buffer.
func readFrom(f vfs.File) (*Image, string, error) {
	var head [headerSize]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, "", fmt.Errorf("%w: file shorter than the %d-byte header", ErrTruncated, headerSize)
		}
		return nil, "", err
	}
	count, size, wantSum, err := parseHeader(head[:])
	if err != nil {
		return nil, "", err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, "", err
	}
	// Validate the declared size against the real file before trusting
	// it for an allocation: an adversarial header cannot make us
	// allocate more than the bytes actually present.
	actual := uint64(st.Size())
	if size > actual {
		return nil, "", fmt.Errorf("%w: header declares %d bytes, file has %d", ErrTruncated, size, actual)
	}
	if size < actual {
		return nil, "", fmt.Errorf("%w: %d bytes beyond the declared size %d", ErrCorrupt, actual-size, size)
	}
	tableEnd := uint64(headerSize) + uint64(sectionEntrySize)*uint64(count)
	if tableEnd > size {
		return nil, "", fmt.Errorf("%w: section table overruns file", ErrTruncated)
	}
	data := make([]byte, size)
	copy(data, head[:])
	if _, err := io.ReadFull(f, data[headerSize:tableEnd]); err != nil {
		return nil, "", fmt.Errorf("%w: section table: %v", ErrTruncated, err)
	}
	spans, err := parseTable(data[headerSize:tableEnd], count, size)
	if err != nil {
		return nil, "", err
	}
	digest := sha256.New()
	for _, sp := range spans {
		payload := data[sp.off : sp.off+sp.length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, "", fmt.Errorf("%w: section %d: %v", ErrTruncated, sp.id, err)
		}
		if sp.id != secProvenance {
			digest.Write(payload)
		}
	}
	sum := digest.Sum(nil)
	if string(sum) != string(wantSum) {
		return nil, "", ErrHashMismatch
	}
	img, err := decodeSections(spans, data)
	if err != nil {
		return nil, "", err
	}
	return img, hex.EncodeToString(sum), nil
}

// ReadFileMapped loads an artifact through a read-only memory mapping:
// the decode is the same verified path as ReadFile, but the
// pre-rendered bodies alias the mapping, so the heap holds only the
// index-sized sections and the kernel pages body bytes in on demand.
// The returned release function unmaps the file and MUST NOT be called
// while any byte slice of the image is still reachable; it is nil
// whenever the image is heap-backed instead (platforms without mmap,
// zero-length or unmappable files), in which case no cleanup is owed.
func ReadFileMapped(path string) (*Image, string, func(), error) {
	if !mmapSupported {
		img, hash, err := ReadFile(path)
		return img, hash, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, "", nil, err
	}
	if st.Size() < headerSize || int64(int(st.Size())) != st.Size() {
		img, hash, err := ReadFile(path)
		return img, hash, nil, err
	}
	data, unmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		// Filesystems that cannot map (or ran out of map areas) still
		// serve the buffered path.
		img, hash, err := ReadFile(path)
		return img, hash, nil, err
	}
	img, hash, err := Decode(data)
	if err != nil {
		_ = unmap()
		return nil, "", nil, err
	}
	return img, hash, func() { _ = unmap() }, nil
}

// SniffFile reports whether path starts with the snapbin magic — the
// cheap test a source uses to prefer the binary load path over a
// JSONL rebuild.
func SniffFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return string(head[:]) == Magic
}
