// Streaming artifact writer: sections are produced one at a time into
// a seekable file, hashed as they stream, and the header is patched in
// place at the end. Unlike Encode — which serializes every section
// twice (once to size the table, once through the digest) before the
// output pass — the Writer serializes each byte exactly once, and a
// producer can emit a section incrementally without materializing the
// full Image first.
package snapbin

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"

	"github.com/nu-aqualab/borges/internal/vfs"
)

// Writer streams one snapbin artifact section-at-a-time to a seekable
// file. Usage: NewWriter, then for each canonical section ID in order
// call Section and write the payload to the returned sink, then
// Finish. The caller owns Sync/Close of the underlying file.
type Writer struct {
	f       vfs.File
	bw      *bufio.Writer
	digest  hash.Hash
	lengths []uint64
	next    int  // index into sectionIDs of the section being written
	open    bool // a Section call is active
	err     error
}

// NewWriter starts an artifact at the file's current position (which
// must be 0: the header patch at Finish seeks to the file start). A
// placeholder header and section table are written immediately so the
// first payload byte lands at its final offset.
func NewWriter(f vfs.File) *Writer {
	w := &Writer{
		f:       f,
		bw:      bufio.NewWriterSize(f, 1<<20),
		digest:  sha256.New(),
		lengths: make([]uint64, len(sectionIDs)),
	}
	blank := make([]byte, headerSize+sectionEntrySize*len(sectionIDs))
	if _, err := w.bw.Write(blank); err != nil {
		w.err = err
	}
	return w
}

// Section begins the next section's payload and returns the sink to
// write it to. IDs must arrive in canonical order (sectionIDs); the
// previous section is sealed by the call.
func (w *Writer) Section(id uint32) (io.Writer, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.open {
		w.next++
	}
	if w.next >= len(sectionIDs) || sectionIDs[w.next] != id {
		w.err = fmt.Errorf("snapbin: section %d out of order (want %v at position %d)", id, sectionIDs[min(w.next, len(sectionIDs)-1)], w.next)
		return nil, w.err
	}
	w.open = true
	return sectionSink{w}, nil
}

// sectionSink routes payload bytes to the buffered file and, for
// hashed sections, the running digest.
type sectionSink struct{ w *Writer }

func (s sectionSink) Write(p []byte) (int, error) {
	w := s.w
	if w.err != nil {
		return 0, w.err
	}
	if _, err := w.bw.Write(p); err != nil {
		w.err = err
		return 0, err
	}
	if sectionIDs[w.next] != secProvenance {
		w.digest.Write(p)
	}
	w.lengths[w.next] += uint64(len(p))
	return len(p), nil
}

// Finish seals the last section, flushes the payload bytes, and
// patches the real header and section table over the placeholder. It
// returns the content hash. The file is left positioned at its start;
// the caller still owns Sync and Close.
func (w *Writer) Finish() (string, error) {
	if w.err != nil {
		return "", w.err
	}
	if !w.open || w.next != len(sectionIDs)-1 {
		w.err = fmt.Errorf("snapbin: Finish after %d of %d sections", w.next, len(sectionIDs))
		return "", w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return "", err
	}
	tableSize := uint64(sectionEntrySize * len(sectionIDs))
	offset := uint64(headerSize) + tableSize
	total := offset
	for _, n := range w.lengths {
		total += n
	}
	header := make([]byte, headerSize, headerSize+tableSize)
	copy(header, Magic)
	binary.LittleEndian.PutUint32(header[8:], Version)
	binary.LittleEndian.PutUint32(header[12:], uint32(len(sectionIDs)))
	binary.LittleEndian.PutUint64(header[16:], total)
	sum := w.digest.Sum(nil)
	copy(header[24:56], sum)
	for i, id := range sectionIDs {
		var entry [sectionEntrySize]byte
		binary.LittleEndian.PutUint32(entry[0:], id)
		binary.LittleEndian.PutUint64(entry[4:], offset)
		binary.LittleEndian.PutUint64(entry[12:], w.lengths[i])
		header = append(header, entry[:]...)
		offset += w.lengths[i]
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.err = err
		return "", err
	}
	if _, err := w.f.Write(header); err != nil {
		w.err = err
		return "", err
	}
	w.err = fmt.Errorf("snapbin: writer already finished")
	return hex.EncodeToString(sum), nil
}

// EncodeToFile streams an image into a seekable file through the
// section Writer: one serialization pass total, versus Encode's three
// (sizing, digest, output).
func EncodeToFile(f vfs.File, img *Image) (string, error) {
	w := NewWriter(f)
	for _, id := range sectionIDs {
		sec, err := w.Section(id)
		if err != nil {
			return "", err
		}
		if err := sectionWriters[id](&countingWriter{w: sec}, img); err != nil {
			return "", err
		}
	}
	return w.Finish()
}
