//go:build linux || darwin

package snapbin

import (
	"os"
	"syscall"
)

// mmapSupported gates ReadFileMapped's zero-copy path; on platforms
// without it the same interface falls back to a buffered read.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and returns the mapping plus
// its unmap function. The mapping outlives f: closing the file does not
// invalidate it, and neither does renaming or unlinking the path (the
// inode stays alive until munmap), which is what lets the generation
// ring scrub or prune an artifact a serving snapshot still maps.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
