package snapbin

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestEncodeToFileByteIdentical: the single-pass streaming writer must
// produce exactly the bytes (and hash) of the three-pass Encode, so
// artifacts are interchangeable regardless of which path wrote them.
func TestEncodeToFileByteIdentical(t *testing.T) {
	img := testImage()
	want, wantHash := encode(t, img)

	path := filepath.Join(t.TempDir(), "stream.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := EncodeToFile(f, img)
	if err != nil {
		t.Fatalf("EncodeToFile: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hash != wantHash {
		t.Fatalf("EncodeToFile hash %s, Encode %s", hash, wantHash)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("EncodeToFile bytes diverge from Encode: %d vs %d bytes", len(got), len(want))
	}
}

// TestWriterSectionOrder: out-of-order or double Finish misuse fails
// loudly instead of writing a structurally broken artifact.
func TestWriterSectionOrder(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "bad.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f)
	if _, err := w.Section(secStats); err == nil {
		t.Fatal("Section accepted a skipped provenance section")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("Finish succeeded with missing sections")
	}
}

// TestReadFileMapped: the mapped load decodes to the same image and
// hash as the buffered one; bodies alias the mapping until release.
func TestReadFileMapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	img := testImage()
	wantHash, err := WriteFile(path, img)
	if err != nil {
		t.Fatal(err)
	}
	got, hash, release, err := ReadFileMapped(path)
	if err != nil {
		t.Fatalf("ReadFileMapped: %v", err)
	}
	if hash != wantHash {
		t.Fatalf("mapped hash %s, want %s", hash, wantHash)
	}
	if !reflect.DeepEqual(got, img) {
		t.Fatal("mapped image drifts from the written one")
	}
	if mmapSupported {
		if release == nil {
			t.Fatal("mapped load returned no release function")
		}
		// The mapping must survive the path disappearing: the ring
		// prunes artifacts that a serving snapshot may still map.
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		if string(got.OrgBodies[0]) != "{\"org\":0}\n" {
			t.Fatal("mapped body unreadable after unlink")
		}
		release()
	} else if release != nil {
		t.Fatal("fallback load returned a release function")
	}
}

// TestReadFileMappedRejectsCorrupt: the mapped path verifies exactly
// like the buffered one — a flipped payload byte fails the hash check
// and the mapping is released.
func TestReadFileMappedRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	if _, err := WriteFile(path, testImage()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFileMapped(path); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("corrupt mapped artifact: %v, want %v", err, ErrHashMismatch)
	}
}
