// Package core orchestrates the full Borges pipeline (§3, Figure 2):
// organization keys from WHOIS and PeeringDB, LLM-based sibling
// extraction from notes/aka, web crawling with refresh-and-redirect
// resolution, final-URL matching, and favicon classification — then
// consolidates every feature's sibling sets into one AS-to-Organization
// mapping by transitive merging.
//
// Every feature can be toggled independently, which is how the Table 6
// ablation grid (all combinations of OID_P, N&A, R&R, and F on top of
// the WHOIS universe) is produced.
package core

import (
	"context"
	"fmt"
	"net/http"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/classify"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/crawler"
	"github.com/nu-aqualab/borges/internal/favicon"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/ner"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/urlmatch"
	"github.com/nu-aqualab/borges/internal/whois"
)

// Features selects which Borges inference features run. OID_W (the
// WHOIS universe and its organization keys) is always present: it is
// the compulsory substrate every configuration of Table 6 builds on.
type Features struct {
	OIDP     bool
	NotesAka bool
	RR       bool
	Favicons bool
}

// AllFeatures returns the full Borges configuration.
func AllFeatures() Features {
	return Features{OIDP: true, NotesAka: true, RR: true, Favicons: true}
}

// Label renders the feature set in the paper's Table 6 shorthand, e.g.
// "OID_P + N&A + R&R + F".
func (f Features) Label() string {
	out := ""
	add := func(s string) {
		if out != "" {
			out += " + "
		}
		out += s
	}
	if f.OIDP {
		add("OID_P")
	}
	if f.NotesAka {
		add("N&A")
	}
	if f.RR {
		add("R&R")
	}
	if f.Favicons {
		add("F")
	}
	if out == "" {
		return "AS2Org"
	}
	return out
}

// Inputs are the data sources and backends a pipeline run consumes.
type Inputs struct {
	// WHOIS is the AS2Org snapshot (required).
	WHOIS *whois.Snapshot
	// PDB is the PeeringDB snapshot (required when any PDB-derived
	// feature is enabled).
	PDB *peeringdb.Snapshot
	// Transport serves web requests; http.DefaultTransport when nil.
	// Simulations inject a websim.Universe.
	Transport http.RoundTripper
	// Provider generates LLM completions for the N&A and favicon
	// stages.
	Provider llm.Provider
}

// Options tune the pipeline.
type Options struct {
	// Features defaults to AllFeatures when zero; use Ablation to get
	// an explicit empty set.
	Features *Features
	// Crawler overrides crawl options; Transport is always taken from
	// Inputs.
	Crawler crawler.Options
	// LLMConcurrency bounds parallel model calls (default 8).
	LLMConcurrency int
	// DisableInputFilter / DisableOutputFilter are the NER ablations.
	DisableInputFilter  bool
	DisableOutputFilter bool
	// DisableClassifierStep2 stops the favicon tree after the
	// same-brand-label rule.
	DisableClassifierStep2 bool
	// FinalURLBlocklist overrides the Appendix D.2 default.
	FinalURLBlocklist *urlmatch.Blocklist
	// SubdomainBlocklist overrides the Appendix D.1 default.
	SubdomainBlocklist *urlmatch.Blocklist
	// Progress, when non-nil, receives a line per pipeline stage —
	// what an unattended multi-hour crawl+extract batch logs.
	Progress func(format string, args ...any)
}

// progress emits a stage line when a sink is configured.
func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Artifacts are the intermediate products of a run, retained for
// evaluation and auditing.
type Artifacts struct {
	Extractions      []ner.Extraction
	CrawlResults     []crawler.Result
	FaviconIndex     *favicon.Index
	ClassifyOutcomes []classify.Outcome

	OIDWSets    []cluster.SiblingSet
	OIDPSets    []cluster.SiblingSet
	NASets      []cluster.SiblingSet
	RRSets      []cluster.SiblingSet
	FaviconSets []cluster.SiblingSet
}

// Stats are the §5.2 corpus statistics of a run.
type Stats struct {
	WHOISASNs int
	WHOISOrgs int
	PDBNets   int
	PDBOrgs   int

	NetsWithText    int
	NumericEntries  int
	NumericInAka    int
	NumericInNotes  int
	ExtractedASNs   int
	RecordsWithSibs int

	NetsWithWebsite int
	UniqueURLs      int
	ReachableURLs   int
	UniqueFinalURLs int
	FaviconStats    favicon.Stats
	CompanyGroups   int
	FrameworkGroups int
	UnknownGroups   int
	DiscardedGroups int
	Step1Companies  int
	Step2Companies  int
}

// Result is the output of a pipeline run.
type Result struct {
	// Mapping is the consolidated AS-to-Organization mapping over the
	// full WHOIS universe.
	Mapping   *cluster.Mapping
	Artifacts Artifacts
	Stats     Stats
}

// Run executes the pipeline.
func Run(ctx context.Context, in Inputs, opts Options) (*Result, error) {
	if in.WHOIS == nil {
		return nil, fmt.Errorf("core: WHOIS snapshot is required")
	}
	feats := AllFeatures()
	if opts.Features != nil {
		feats = *opts.Features
	}
	needPDB := feats.OIDP || feats.NotesAka || feats.RR || feats.Favicons
	if needPDB && in.PDB == nil {
		return nil, fmt.Errorf("core: PeeringDB snapshot is required for features %s", feats.Label())
	}
	if (feats.NotesAka || feats.Favicons) && in.Provider == nil {
		return nil, fmt.Errorf("core: LLM provider is required for features %s", feats.Label())
	}

	res := &Result{}
	res.Stats.WHOISASNs = in.WHOIS.NumASNs()
	res.Stats.WHOISOrgs = in.WHOIS.NumOrgs()
	if in.PDB != nil {
		res.Stats.PDBNets = in.PDB.NumNets()
		res.Stats.PDBOrgs = in.PDB.NumOrgs()
	}

	opts.progress("universe: %d WHOIS ASNs in %d organizations", res.Stats.WHOISASNs, res.Stats.WHOISOrgs)
	b := cluster.NewBuilder()
	b.AddUniverse(in.WHOIS.ASNs()...)
	res.Artifacts.OIDWSets = in.WHOIS.SiblingSets()
	b.AddAll(res.Artifacts.OIDWSets)

	if feats.OIDP {
		res.Artifacts.OIDPSets = in.PDB.SiblingSets()
		b.AddAll(res.Artifacts.OIDPSets)
		opts.progress("org keys: %d PeeringDB organizations joined", len(res.Artifacts.OIDPSets))
	}

	if feats.NotesAka {
		if err := runNER(ctx, in, opts, res, b); err != nil {
			return nil, err
		}
	}

	if feats.RR || feats.Favicons {
		if err := runWeb(ctx, in, opts, feats, res, b); err != nil {
			return nil, err
		}
	}

	res.Mapping = b.Build(namer(in))
	opts.progress("consolidated: %d networks in %d organizations",
		res.Mapping.NumASNs(), res.Mapping.NumOrgs())
	return res, nil
}

// namer prefers WHOIS organization names and falls back to PeeringDB.
func namer(in Inputs) cluster.Namer {
	return func(members []asnum.ASN) string {
		for _, a := range members {
			if org := in.WHOIS.OrgOf(a); org != nil && org.Name != "" {
				return org.Name
			}
		}
		if in.PDB != nil {
			for _, a := range members {
				if org := in.PDB.OrgOf(a); org != nil && org.Name != "" {
					return org.Name
				}
			}
		}
		return ""
	}
}

func runNER(ctx context.Context, in Inputs, opts Options, res *Result, b *cluster.Builder) error {
	records := ner.RecordsFromPDB(in.PDB)
	res.Stats.NetsWithText = len(records)
	for _, r := range records {
		numeric := false
		if hasDigit(r.Aka) {
			res.Stats.NumericInAka++
			numeric = true
		}
		if hasDigit(r.Notes) {
			res.Stats.NumericInNotes++
			numeric = true
		}
		if numeric {
			res.Stats.NumericEntries++
		}
	}
	ex := &ner.Extractor{
		Provider:            in.Provider,
		Concurrency:         opts.LLMConcurrency,
		DisableInputFilter:  opts.DisableInputFilter,
		DisableOutputFilter: opts.DisableOutputFilter,
	}
	res.Artifacts.Extractions = ex.ExtractAll(ctx, records)
	if err := ctx.Err(); err != nil {
		return err
	}
	seen := make(map[asnum.ASN]bool)
	for _, x := range res.Artifacts.Extractions {
		if len(x.Siblings) > 0 {
			res.Stats.RecordsWithSibs++
			for _, a := range x.Siblings {
				if !seen[a] {
					seen[a] = true
					res.Stats.ExtractedASNs++
				}
			}
		}
	}
	res.Artifacts.NASets = ner.SiblingSets(res.Artifacts.Extractions)
	b.AddAll(res.Artifacts.NASets)
	opts.progress("notes/aka: %d of %d numeric records yielded %d sibling ASNs",
		res.Stats.RecordsWithSibs, res.Stats.NumericEntries, res.Stats.ExtractedASNs)
	return nil
}

func runWeb(ctx context.Context, in Inputs, opts Options, feats Features, res *Result, b *cluster.Builder) error {
	copts := opts.Crawler
	copts.Transport = in.Transport
	copts.SkipFavicons = !feats.Favicons
	cr := crawler.New(copts)

	nets := in.PDB.NetsWithWebsite()
	res.Stats.NetsWithWebsite = len(nets)
	tasks := make([]crawler.Task, 0, len(nets))
	uniqueReported := make(map[string]bool)
	for _, n := range nets {
		tasks = append(tasks, crawler.Task{ASN: n.ASN, URL: n.Website})
		if canon, err := urlmatch.Canonicalize(n.Website); err == nil {
			uniqueReported[canon] = true
		}
	}
	res.Stats.UniqueURLs = len(uniqueReported)

	opts.progress("crawl: resolving %d reported websites (%d unique URLs)",
		len(tasks), res.Stats.UniqueURLs)
	res.Artifacts.CrawlResults = cr.CrawlAll(ctx, tasks)
	if err := ctx.Err(); err != nil {
		return err
	}
	uniqueFinal := make(map[string]bool)
	for _, r := range res.Artifacts.CrawlResults {
		if r.OK {
			res.Stats.ReachableURLs++
			uniqueFinal[r.FinalURL] = true
		}
	}
	res.Stats.UniqueFinalURLs = len(uniqueFinal)

	opts.progress("crawl: %d reachable, %d unique final URLs",
		res.Stats.ReachableURLs, res.Stats.UniqueFinalURLs)
	if feats.RR {
		m := urlmatch.NewMatcher(opts.FinalURLBlocklist)
		res.Artifacts.RRSets = m.SiblingSets(crawler.FinalURLs(res.Artifacts.CrawlResults))
		b.AddAll(res.Artifacts.RRSets)
		opts.progress("R&R: %d final-URL groups", len(res.Artifacts.RRSets))
	}

	if feats.Favicons {
		idx := favicon.NewIndex()
		for _, r := range res.Artifacts.CrawlResults {
			if r.OK {
				idx.Add(r.FinalURL, r.FaviconHash, r.Task.ASN)
			}
		}
		res.Artifacts.FaviconIndex = idx
		res.Stats.FaviconStats = idx.Stats()

		cls := &classify.Classifier{
			Provider:     in.Provider,
			Blocklist:    opts.SubdomainBlocklist,
			IconSource:   cr.IconBytes,
			DisableStep2: opts.DisableClassifierStep2,
			Concurrency:  opts.LLMConcurrency,
		}
		res.Artifacts.ClassifyOutcomes = cls.ClassifyAll(ctx, idx.SharedGroups())
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, o := range res.Artifacts.ClassifyOutcomes {
			switch o.Decision {
			case classify.DecisionCompany:
				res.Stats.CompanyGroups++
				if o.Step == 1 {
					res.Stats.Step1Companies++
				} else {
					res.Stats.Step2Companies++
				}
			case classify.DecisionFramework:
				res.Stats.FrameworkGroups++
			case classify.DecisionUnknown:
				res.Stats.UnknownGroups++
			case classify.DecisionDiscarded:
				res.Stats.DiscardedGroups++
			}
		}
		res.Artifacts.FaviconSets = classify.SiblingSets(res.Artifacts.ClassifyOutcomes)
		b.AddAll(res.Artifacts.FaviconSets)
		opts.progress("favicons: %d shared groups → %d companies (%d step 1, %d step 2), %d frameworks",
			len(res.Artifacts.ClassifyOutcomes), res.Stats.CompanyGroups,
			res.Stats.Step1Companies, res.Stats.Step2Companies, res.Stats.FrameworkGroups)
	}
	return nil
}

func hasDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// FeatureMapping consolidates a single feature's sibling sets in
// isolation, covering only the networks those sets mention. This is the
// Table 3 per-feature view ("Number of ASes / Number of Orgs" per
// source).
func FeatureMapping(sets []cluster.SiblingSet) *cluster.Mapping {
	b := cluster.NewBuilder()
	b.AddAll(sets)
	return b.Build(nil)
}
