// Package core orchestrates the full Borges pipeline (§3, Figure 2):
// organization keys from WHOIS and PeeringDB, LLM-based sibling
// extraction from notes/aka, web crawling with refresh-and-redirect
// resolution, final-URL matching, and favicon classification — then
// consolidates every feature's sibling sets into one AS-to-Organization
// mapping by transitive merging.
//
// Every feature can be toggled independently, which is how the Table 6
// ablation grid (all combinations of OID_P, N&A, R&R, and F on top of
// the WHOIS universe) is produced.
package core

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cache"
	"github.com/nu-aqualab/borges/internal/classify"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/crawler"
	"github.com/nu-aqualab/borges/internal/favicon"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/ner"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/resilience"
	"github.com/nu-aqualab/borges/internal/urlmatch"
	"github.com/nu-aqualab/borges/internal/whois"
)

// Features selects which Borges inference features run. OID_W (the
// WHOIS universe and its organization keys) is always present: it is
// the compulsory substrate every configuration of Table 6 builds on.
type Features struct {
	OIDP     bool
	NotesAka bool
	RR       bool
	Favicons bool
}

// AllFeatures returns the full Borges configuration.
func AllFeatures() Features {
	return Features{OIDP: true, NotesAka: true, RR: true, Favicons: true}
}

// Label renders the feature set in the paper's Table 6 shorthand, e.g.
// "OID_P + N&A + R&R + F".
func (f Features) Label() string {
	out := ""
	add := func(s string) {
		if out != "" {
			out += " + "
		}
		out += s
	}
	if f.OIDP {
		add("OID_P")
	}
	if f.NotesAka {
		add("N&A")
	}
	if f.RR {
		add("R&R")
	}
	if f.Favicons {
		add("F")
	}
	if out == "" {
		return "AS2Org"
	}
	return out
}

// Inputs are the data sources and backends a pipeline run consumes.
type Inputs struct {
	// WHOIS is the AS2Org snapshot (required).
	WHOIS *whois.Snapshot
	// PDB is the PeeringDB snapshot (required when any PDB-derived
	// feature is enabled).
	PDB *peeringdb.Snapshot
	// Transport serves web requests; http.DefaultTransport when nil.
	// Simulations inject a websim.Universe.
	Transport http.RoundTripper
	// Provider generates LLM completions for the N&A and favicon
	// stages.
	Provider llm.Provider
}

// Options tune the pipeline.
type Options struct {
	// Features defaults to AllFeatures when zero; use Ablation to get
	// an explicit empty set.
	Features *Features
	// Crawler overrides crawl options; Transport is always taken from
	// Inputs.
	Crawler crawler.Options
	// LLMConcurrency bounds parallel model calls (default 8).
	LLMConcurrency int
	// DisableInputFilter / DisableOutputFilter are the NER ablations.
	DisableInputFilter  bool
	DisableOutputFilter bool
	// DisableClassifierStep2 stops the favicon tree after the
	// same-brand-label rule.
	DisableClassifierStep2 bool
	// FinalURLBlocklist overrides the Appendix D.2 default.
	FinalURLBlocklist *urlmatch.Blocklist
	// SubdomainBlocklist overrides the Appendix D.1 default.
	SubdomainBlocklist *urlmatch.Blocklist
	// Progress, when non-nil, receives a line per pipeline stage —
	// what an unattended multi-hour crawl+extract batch logs. The NER
	// and web stages run concurrently, but their lines are emitted in
	// the canonical stage order (universe, org keys, notes/aka, crawl,
	// R&R, favicons, consolidated) so logs stay deterministic.
	Progress func(format string, args ...any)
	// Cache, when non-nil, memoizes the run's expensive work: LLM
	// completions (NER extraction and favicon classification, keyed by
	// full prompt + model) and crawl outcomes (keyed by canonical URL +
	// crawl options). A cache shared across runs — ablation grids,
	// snapshot re-runs, borgesd reloads — answers repeated work without
	// touching the backend or the network; a cache with a disk tier
	// survives process restarts.
	Cache *cache.Cache

	// MaxRetries bounds additional attempts per backend call — crawl
	// fetches, favicon fetches, and LLM completions — after a transient
	// fault (timeouts, resets, 429/5xx, torn bodies). 0 disables
	// retries: every fault surfaces after a single attempt and is
	// quarantined in the RunReport instead of being retried.
	MaxRetries int
	// RetryBaseDelay is the first retry's backoff (default 250ms);
	// later retries double it, with jitter, up to RetryMaxDelay.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps both computed backoff and server Retry-After
	// hints (default 30s).
	RetryMaxDelay time.Duration
	// RetryBudget bounds total retries across the whole run, shared by
	// the crawl and LLM chains (0 = unbounded). When the budget is
	// spent, remaining faults quarantine immediately.
	RetryBudget int
	// RetrySeed seeds backoff jitter so retry schedules — and
	// therefore chaos tests — are reproducible.
	RetrySeed int64
	// BreakerThreshold, when > 0, enables circuit breakers: that many
	// consecutive transient failures against one host ("crawl:<host>")
	// or model ("llm:<model>") open its circuit, shedding further
	// calls until a cooldown probe succeeds, so one melting backend
	// cannot absorb the run's retry budget.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// admitting a probe (default 30s).
	BreakerCooldown time.Duration
	// FailFast restores abort-on-first-stage-error: a stage failure
	// cancels the sibling stage and fails the run. The default is
	// graceful degradation — the NER and web chains fail
	// independently, per-item failures are quarantined in the
	// RunReport, and consolidation proceeds with whatever survived.
	FailFast bool
	// ConsolidateWorkers caps the workers used by the sharded sibling-
	// set consolidation (0 = GOMAXPROCS). The sharded build is
	// byte-identical to the sequential one at any worker count; lowering
	// this only trades consolidation latency for less CPU contention.
	ConsolidateWorkers int
	// SpillDir, when non-empty, spools every sibling set to shard
	// files under a run-private subdirectory of this directory instead
	// of holding them in memory until consolidation, bounding peak RSS
	// by the shard size rather than the set count. The resulting
	// mapping is byte-identical to the in-memory build; the
	// subdirectory is removed when the run finishes.
	SpillDir string
}

// retryPolicy builds the run's shared retry policy, or nil when
// retries are disabled. Both chains draw on one budget; each gets its
// own Policy value because the classification of "retryable" differs
// (the LLM chain also retries the ErrRateLimited/ErrServer sentinels).
func (o Options) retryPolicy(budget *resilience.Budget, retryable func(error) bool) *resilience.Policy {
	if o.MaxRetries <= 0 {
		return nil
	}
	return &resilience.Policy{
		MaxAttempts: o.MaxRetries + 1,
		BaseDelay:   o.RetryBaseDelay,
		MaxDelay:    o.RetryMaxDelay,
		Seed:        o.RetrySeed,
		Budget:      budget,
		Retryable:   retryable,
	}
}

// breakerSet builds the run's shared breaker registry, or nil when
// breaking is disabled. One registry serves both chains; the key
// namespaces ("crawl:", "llm:") keep their circuits independent.
func (o Options) breakerSet() *resilience.BreakerSet {
	if o.BreakerThreshold <= 0 {
		return nil
	}
	return &resilience.BreakerSet{Threshold: o.BreakerThreshold, Cooldown: o.BreakerCooldown}
}

// progress emits a stage line when a sink is configured.
func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Artifacts are the intermediate products of a run, retained for
// evaluation and auditing.
type Artifacts struct {
	Extractions      []ner.Extraction
	CrawlResults     []crawler.Result
	FaviconIndex     *favicon.Index
	ClassifyOutcomes []classify.Outcome

	OIDWSets    []cluster.SiblingSet
	OIDPSets    []cluster.SiblingSet
	NASets      []cluster.SiblingSet
	RRSets      []cluster.SiblingSet
	FaviconSets []cluster.SiblingSet
}

// Stats are the §5.2 corpus statistics of a run.
type Stats struct {
	WHOISASNs int
	WHOISOrgs int
	PDBNets   int
	PDBOrgs   int

	NetsWithText    int
	NumericEntries  int
	NumericInAka    int
	NumericInNotes  int
	ExtractedASNs   int
	RecordsWithSibs int

	NetsWithWebsite int
	UniqueURLs      int
	// BadURLs counts reported websites whose URL failed
	// canonicalization and therefore never became a crawl task.
	BadURLs         int
	ReachableURLs   int
	UniqueFinalURLs int
	FaviconStats    favicon.Stats
	CompanyGroups   int
	FrameworkGroups int
	UnknownGroups   int
	DiscardedGroups int
	Step1Companies  int
	Step2Companies  int
}

// merge folds a stage's privately accumulated counters into s. Stages
// run concurrently but each populates its own Stats value; merging
// happens on the orchestrating goroutine after the join, so no counter
// is ever written from two goroutines.
func (s *Stats) merge(o Stats) {
	s.NetsWithText += o.NetsWithText
	s.NumericEntries += o.NumericEntries
	s.NumericInAka += o.NumericInAka
	s.NumericInNotes += o.NumericInNotes
	s.ExtractedASNs += o.ExtractedASNs
	s.RecordsWithSibs += o.RecordsWithSibs

	s.NetsWithWebsite += o.NetsWithWebsite
	s.UniqueURLs += o.UniqueURLs
	s.BadURLs += o.BadURLs
	s.ReachableURLs += o.ReachableURLs
	s.UniqueFinalURLs += o.UniqueFinalURLs
	s.FaviconStats.FinalURLs += o.FaviconStats.FinalURLs
	s.FaviconStats.UniqueFavicons += o.FaviconStats.UniqueFavicons
	s.FaviconStats.SharedFavicons += o.FaviconStats.SharedFavicons
	s.FaviconStats.URLsInSharedGroups += o.FaviconStats.URLsInSharedGroups
	s.FaviconStats.SharedSameBrand += o.FaviconStats.SharedSameBrand
	s.CompanyGroups += o.CompanyGroups
	s.FrameworkGroups += o.FrameworkGroups
	s.UnknownGroups += o.UnknownGroups
	s.DiscardedGroups += o.DiscardedGroups
	s.Step1Companies += o.Step1Companies
	s.Step2Companies += o.Step2Companies
}

// Result is the output of a pipeline run.
type Result struct {
	// Mapping is the consolidated AS-to-Organization mapping over the
	// full WHOIS universe.
	Mapping   *cluster.Mapping
	Artifacts Artifacts
	Stats     Stats
	// Report is the machine-readable fault accounting for the run:
	// per-source status, quarantined items, retries spent, breaker
	// trips. Always non-nil on success.
	Report *RunReport
}

// stageLog buffers one concurrent stage's progress lines so they can
// be replayed in canonical stage order after the join, keeping
// Progress output deterministic while the stages themselves overlap.
type stageLog struct {
	lines []string
}

func (l *stageLog) printf(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *stageLog) flush(opts Options) {
	for _, line := range l.lines {
		opts.progress("%s", line)
	}
}

// Run executes the pipeline.
func Run(ctx context.Context, in Inputs, opts Options) (*Result, error) {
	if in.WHOIS == nil {
		return nil, fmt.Errorf("core: WHOIS snapshot is required")
	}
	feats := AllFeatures()
	if opts.Features != nil {
		feats = *opts.Features
	}
	needPDB := feats.OIDP || feats.NotesAka || feats.RR || feats.Favicons
	if needPDB && in.PDB == nil {
		return nil, fmt.Errorf("core: PeeringDB snapshot is required for features %s", feats.Label())
	}
	if (feats.NotesAka || feats.Favicons) && in.Provider == nil {
		return nil, fmt.Errorf("core: LLM provider is required for features %s", feats.Label())
	}

	res := &Result{}
	res.Stats.WHOISASNs = in.WHOIS.NumASNs()
	res.Stats.WHOISOrgs = in.WHOIS.NumOrgs()
	if in.PDB != nil {
		res.Stats.PDBNets = in.PDB.NumNets()
		res.Stats.PDBOrgs = in.PDB.NumOrgs()
	}

	opts.progress("universe: %d WHOIS ASNs in %d organizations", res.Stats.WHOISASNs, res.Stats.WHOISOrgs)
	b := cluster.NewBuilder()
	if opts.SpillDir != "" {
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("core: spill dir: %w", err)
		}
		dir, err := os.MkdirTemp(opts.SpillDir, "borges-spill-*")
		if err != nil {
			return nil, fmt.Errorf("core: spill dir: %w", err)
		}
		defer os.RemoveAll(dir)
		if err := b.SpillToDisk(nil, dir, 0); err != nil {
			return nil, err
		}
		opts.progress("consolidation spilling sibling sets under %s", dir)
	}
	b.AddUniverse(in.WHOIS.ASNs()...)
	res.Artifacts.OIDWSets = in.WHOIS.SiblingSets()
	b.AddAll(res.Artifacts.OIDWSets)

	if feats.OIDP {
		res.Artifacts.OIDPSets = in.PDB.SiblingSets()
		b.AddAll(res.Artifacts.OIDPSets)
		opts.progress("org keys: %d PeeringDB organizations joined", len(res.Artifacts.OIDPSets))
	}

	// Fault-tolerance plumbing: one retry budget and one breaker
	// registry serve both chains. The crawler takes them via its
	// options (keyed "crawl:<host>"); the provider is wrapped in
	// llm.Resilient (keyed "llm:<model>") *inside* the cache layer, so
	// cache hits never touch a breaker and retried successes are
	// memoized like any other.
	var budget *resilience.Budget
	if opts.RetryBudget > 0 {
		budget = resilience.NewBudget(opts.RetryBudget)
	}
	breakers := opts.breakerSet()
	if opts.Crawler.Retry == nil {
		opts.Crawler.Retry = opts.retryPolicy(budget, nil)
	}
	if opts.Crawler.Breakers == nil {
		opts.Crawler.Breakers = breakers
	}
	provider := in.Provider
	var llmExec *resilience.Executor
	if llmPolicy := opts.retryPolicy(budget, llm.Retryable); provider != nil && (llmPolicy != nil || breakers != nil) {
		llmExec = &resilience.Executor{Policy: llmPolicy, Breakers: breakers}
		provider = &llm.Resilient{Inner: provider, Exec: llmExec}
	}
	if opts.Cache != nil && provider != nil {
		provider = &cache.Provider{Inner: provider, Cache: opts.Cache}
	}

	// The NER stage (LLM extraction over notes/aka) and the web stage
	// (crawl → R&R → favicons) are independent until consolidation, so
	// they overlap: each accumulates its own Stats and progress lines
	// and hands its sibling sets back here. The Builder is touched only
	// from this goroutine, in the fixed feature order, so cluster IDs
	// stay deterministic. By default the stages are isolated failure
	// domains — one chain's failure leaves the other running and is
	// quarantined in the report; FailFast restores cancel-on-first-
	// error for callers that prefer an abort to a partial mapping.
	var (
		nerOut         nerOutput
		webOut         webOutput
		nerErr, webErr error
		nerLog, webLog stageLog
	)
	if opts.FailFast {
		g, gctx := startGroup(ctx)
		if feats.NotesAka {
			g.Go(func() error {
				nerOut, nerErr = runNER(gctx, in, opts, provider, &nerLog)
				return nerErr
			})
		}
		if feats.RR || feats.Favicons {
			g.Go(func() error {
				webOut, webErr = runWeb(gctx, in, opts, feats, provider, &webLog)
				return webErr
			})
		}
		if err := g.Wait(); err != nil {
			return nil, err
		}
	} else {
		var wg sync.WaitGroup
		if feats.NotesAka {
			wg.Add(1)
			go func() {
				defer wg.Done()
				nerOut, nerErr = runNER(ctx, in, opts, provider, &nerLog)
			}()
		}
		if feats.RR || feats.Favicons {
			wg.Add(1)
			go func() {
				defer wg.Done()
				webOut, webErr = runWeb(ctx, in, opts, feats, provider, &webLog)
			}()
		}
		wg.Wait()
		// Cancellation of the run's own context is fatal either way; a
		// stage's private failure is not — it lands in the report and
		// consolidation proceeds with the surviving chains.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	res.Stats.merge(nerOut.stats)
	res.Stats.merge(webOut.stats)
	nerLog.flush(opts)
	webLog.flush(opts)

	res.Artifacts.Extractions = nerOut.extractions
	res.Artifacts.NASets = nerOut.sets
	b.AddAll(res.Artifacts.NASets)

	res.Artifacts.CrawlResults = webOut.crawls
	res.Artifacts.RRSets = webOut.rrSets
	res.Artifacts.FaviconIndex = webOut.faviconIndex
	res.Artifacts.ClassifyOutcomes = webOut.outcomes
	res.Artifacts.FaviconSets = webOut.faviconSets
	b.AddAll(res.Artifacts.RRSets)
	b.AddAll(res.Artifacts.FaviconSets)

	// Checked build: in spill mode a sticky shard I/O error surfaces
	// here instead of silently producing a partial mapping.
	m, err := b.BuildShardedChecked(namer(in), opts.ConsolidateWorkers)
	if err != nil {
		return nil, err
	}
	res.Mapping = m
	res.Report = buildReport(feats, nerOut, webOut, nerErr, webErr, opts.Crawler.Breakers, llmExec)
	opts.progress("consolidated: %d networks in %d organizations",
		res.Mapping.NumASNs(), res.Mapping.NumOrgs())
	return res, nil
}

// namer prefers WHOIS organization names and falls back to PeeringDB.
func namer(in Inputs) cluster.Namer {
	return func(members []asnum.ASN) string {
		for _, a := range members {
			if org := in.WHOIS.OrgOf(a); org != nil && org.Name != "" {
				return org.Name
			}
		}
		if in.PDB != nil {
			for _, a := range members {
				if org := in.PDB.OrgOf(a); org != nil && org.Name != "" {
					return org.Name
				}
			}
		}
		return ""
	}
}

// nerOutput is everything the notes/aka stage produces.
type nerOutput struct {
	extractions []ner.Extraction
	sets        []cluster.SiblingSet
	stats       Stats
}

func runNER(ctx context.Context, in Inputs, opts Options, provider llm.Provider, log *stageLog) (nerOutput, error) {
	var out nerOutput
	records := ner.RecordsFromPDB(in.PDB)
	out.stats.NetsWithText = len(records)
	for _, r := range records {
		numeric := false
		if hasDigit(r.Aka) {
			out.stats.NumericInAka++
			numeric = true
		}
		if hasDigit(r.Notes) {
			out.stats.NumericInNotes++
			numeric = true
		}
		if numeric {
			out.stats.NumericEntries++
		}
	}
	ex := &ner.Extractor{
		Provider:            provider,
		Concurrency:         opts.LLMConcurrency,
		DisableInputFilter:  opts.DisableInputFilter,
		DisableOutputFilter: opts.DisableOutputFilter,
	}
	out.extractions = ex.ExtractAll(ctx, records)
	if err := ctx.Err(); err != nil {
		return out, err
	}
	seen := make(map[asnum.ASN]bool)
	for _, x := range out.extractions {
		if len(x.Siblings) > 0 {
			out.stats.RecordsWithSibs++
			for _, a := range x.Siblings {
				if !seen[a] {
					seen[a] = true
					out.stats.ExtractedASNs++
				}
			}
		}
	}
	out.sets = ner.SiblingSets(out.extractions)
	log.printf("notes/aka: %d of %d numeric records yielded %d sibling ASNs",
		out.stats.RecordsWithSibs, out.stats.NumericEntries, out.stats.ExtractedASNs)
	return out, nil
}

// webOutput is everything the crawl → R&R → favicon stage produces.
type webOutput struct {
	crawls       []crawler.Result
	rrSets       []cluster.SiblingSet
	faviconIndex *favicon.Index
	outcomes     []classify.Outcome
	faviconSets  []cluster.SiblingSet
	stats        Stats
	exec         resilience.ExecStats
}

func runWeb(ctx context.Context, in Inputs, opts Options, feats Features, provider llm.Provider, log *stageLog) (webOutput, error) {
	var out webOutput
	copts := opts.Crawler
	copts.Transport = in.Transport
	copts.SkipFavicons = !feats.Favicons
	copts.Cache = opts.Cache
	cr := crawler.New(copts)

	// One pass builds the task list and the unique-URL count together;
	// websites that fail canonicalization never become tasks (the
	// crawler could only fail them again) and are surfaced in BadURLs
	// instead of being silently dropped from the unique count.
	nets := in.PDB.NetsWithWebsite()
	out.stats.NetsWithWebsite = len(nets)
	tasks := make([]crawler.Task, 0, len(nets))
	uniqueReported := make(map[string]bool, len(nets))
	for _, n := range nets {
		canon, err := urlmatch.Canonicalize(n.Website)
		if err != nil {
			out.stats.BadURLs++
			continue
		}
		tasks = append(tasks, crawler.Task{ASN: n.ASN, URL: n.Website})
		uniqueReported[canon] = true
	}
	out.stats.UniqueURLs = len(uniqueReported)

	log.printf("crawl: resolving %d reported websites (%d unique URLs, %d malformed)",
		len(tasks), out.stats.UniqueURLs, out.stats.BadURLs)
	out.crawls = cr.CrawlAll(ctx, tasks)
	if err := ctx.Err(); err != nil {
		return out, err
	}
	uniqueFinal := make(map[string]bool)
	for _, r := range out.crawls {
		if r.OK {
			out.stats.ReachableURLs++
			uniqueFinal[r.FinalURL] = true
		}
	}
	out.stats.UniqueFinalURLs = len(uniqueFinal)

	log.printf("crawl: %d reachable, %d unique final URLs",
		out.stats.ReachableURLs, out.stats.UniqueFinalURLs)
	if feats.RR {
		m := urlmatch.NewMatcher(opts.FinalURLBlocklist)
		out.rrSets = m.SiblingSets(crawler.FinalURLs(out.crawls))
		log.printf("R&R: %d final-URL groups", len(out.rrSets))
	}

	if feats.Favicons {
		idx := favicon.NewIndex()
		for _, r := range out.crawls {
			if r.OK {
				idx.Add(r.FinalURL, r.FaviconHash, r.Task.ASN)
			}
		}
		out.faviconIndex = idx
		out.stats.FaviconStats = idx.Stats()

		cls := &classify.Classifier{
			Provider:     provider,
			Blocklist:    opts.SubdomainBlocklist,
			IconSource:   cr.IconBytes,
			DisableStep2: opts.DisableClassifierStep2,
			Concurrency:  opts.LLMConcurrency,
		}
		out.outcomes = cls.ClassifyAll(ctx, idx.SharedGroups())
		if err := ctx.Err(); err != nil {
			return out, err
		}
		for _, o := range out.outcomes {
			switch o.Decision {
			case classify.DecisionCompany:
				out.stats.CompanyGroups++
				if o.Step == 1 {
					out.stats.Step1Companies++
				} else {
					out.stats.Step2Companies++
				}
			case classify.DecisionFramework:
				out.stats.FrameworkGroups++
			case classify.DecisionUnknown:
				out.stats.UnknownGroups++
			case classify.DecisionDiscarded:
				out.stats.DiscardedGroups++
			}
		}
		out.faviconSets = classify.SiblingSets(out.outcomes)
		log.printf("favicons: %d shared groups → %d companies (%d step 1, %d step 2), %d frameworks",
			len(out.outcomes), out.stats.CompanyGroups,
			out.stats.Step1Companies, out.stats.Step2Companies, out.stats.FrameworkGroups)
	}
	out.exec = cr.ExecStats()
	return out, nil
}

func hasDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// FeatureMapping consolidates a single feature's sibling sets in
// isolation, covering only the networks those sets mention. This is the
// Table 3 per-feature view ("Number of ASes / Number of Orgs" per
// source).
func FeatureMapping(sets []cluster.SiblingSet) *cluster.Mapping {
	b := cluster.NewBuilder()
	b.AddAll(sets)
	return b.BuildSharded(nil, 0)
}
