package core_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
)

// flaky fails every nth request with a retryable error before
// delegating — a rate-limited live API seen from a batch job.
type flaky struct {
	inner    llm.Provider
	n        int64
	counter  atomic.Int64
	failures atomic.Int64
}

func (f *flaky) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if f.counter.Add(1)%f.n == 0 {
		f.failures.Add(1)
		return llm.Response{}, fmt.Errorf("synthetic 429: %w", llm.ErrRateLimited)
	}
	return f.inner.Complete(ctx, req)
}

// TestPipelineSurvivesFlakyProviderWithRetry runs the full pipeline
// through a provider that rate-limits every 5th call, wrapped in the
// retry decorator: the run must complete with the same result as a
// clean run.
func TestPipelineSurvivesFlakyProviderWithRetry(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 21, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := core.Run(context.Background(), core.Inputs{
		WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: simllm.NewModel(),
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	f := &flaky{inner: simllm.NewModel(), n: 5}
	retried := &llm.Retrying{Inner: f, BaseDelay: time.Microsecond}
	flakyRes, err := core.Run(context.Background(), core.Inputs{
		WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: retried,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.failures.Load() == 0 {
		t.Fatal("the flaky provider never failed; test is vacuous")
	}
	if flakyRes.Mapping.NumOrgs() != clean.Mapping.NumOrgs() ||
		flakyRes.Mapping.NumASNs() != clean.Mapping.NumASNs() {
		t.Errorf("flaky run diverged: %d/%d vs %d/%d orgs/ASNs",
			flakyRes.Mapping.NumOrgs(), flakyRes.Mapping.NumASNs(),
			clean.Mapping.NumOrgs(), clean.Mapping.NumASNs())
	}
}

// TestPipelineDegradesWithoutRetry shows the contrast: the same flaky
// provider without retries loses extractions (per-record errors), but
// the run still completes — per-record failures never abort a batch.
func TestPipelineDegradesWithoutRetry(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 21, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	f := &flaky{inner: simllm.NewModel(), n: 3}
	res, err := core.Run(context.Background(), core.Inputs{
		WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: f,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var recordErrs int
	for _, x := range res.Artifacts.Extractions {
		if x.Err != nil {
			recordErrs++
		}
	}
	if recordErrs == 0 {
		t.Error("expected per-record errors to surface in the artifacts")
	}
}

// TestIncrementalRerunWithCache demonstrates the temperature-0 caching
// story: a second pipeline run over the same snapshot through a caching
// provider touches the backend zero times.
func TestIncrementalRerunWithCache(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 22, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	backend := simllm.NewModel()
	cached := llm.NewCaching(backend)
	in := core.Inputs{WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: cached}

	if _, err := core.Run(context.Background(), in, core.Options{}); err != nil {
		t.Fatal(err)
	}
	firstCalls := backend.IECalls() + backend.ClassifierCalls()
	if firstCalls == 0 {
		t.Fatal("first run made no backend calls")
	}

	res2, err := core.Run(context.Background(), in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	secondCalls := backend.IECalls() + backend.ClassifierCalls() - firstCalls
	if secondCalls != 0 {
		t.Errorf("second run hit the backend %d times, want 0 (all cached)", secondCalls)
	}
	hits, _, _ := cached.Stats()
	if hits == 0 {
		t.Error("cache reported no hits")
	}

	// An updated snapshot re-prompts only the changed record.
	net := ds.PDB.NetsWithText()[0]
	changed := *net
	changed.Notes = changed.Notes + " Also operating AS64499 under the same organization."
	ds.PDB.AddNet(changed)
	if _, err := core.Run(context.Background(), in, core.Options{}); err != nil {
		t.Fatal(err)
	}
	thirdCalls := backend.IECalls() + backend.ClassifierCalls() - firstCalls
	if thirdCalls != 1 {
		t.Errorf("incremental run hit the backend %d times, want exactly 1", thirdCalls)
	}
	_ = res2
}
