package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/resilience"
	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// Source names used in RunReport entries, in canonical stage order.
const (
	SourceNotesAka = "notes_aka"
	SourceCrawl    = "crawl"
	SourceRR       = "rr"
	SourceFavicons = "favicons"
)

// Status values for sources and for the run as a whole.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusFailed   = "failed"
	StatusDisabled = "disabled"
)

// QuarantinedItem is one unit of work the pipeline gave up on after a
// transient fault exhausted its retry budget (or was never retried).
// Quarantined items are exactly the work a later run over the same
// cache will redo: durable failures (404s, unresolvable hosts) are
// cached and excluded.
type QuarantinedItem struct {
	// Source is the chain that dropped the item (SourceCrawl, ...).
	Source string `json:"source"`
	// Key identifies the item: the canonical URL for crawls, "AS<n>"
	// for notes/aka records, "favicon:<hash>" for classifier groups.
	Key string `json:"key"`
	// Err is the final error after retries were exhausted.
	Err string `json:"err"`
}

// SourceReport summarizes one inference chain's health.
type SourceReport struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	// Items counts units processed (records, crawl tasks, groups).
	Items int `json:"items"`
	// Errors counts per-item failures of any kind, including durable
	// ones that are correctly cached and will not be redone.
	Errors int `json:"errors"`
	// Quarantined counts the transient subset of Errors, deduplicated
	// by key.
	Quarantined int `json:"quarantined"`
	// Err is set when the whole stage failed (FailFast aborts never
	// reach a report; this records graceful-mode stage errors).
	Err string `json:"err,omitempty"`
}

// RunReport is the machine-readable fault accounting for one pipeline
// run: which chains degraded, what was quarantined, and what the
// resilience layer spent getting there. borgesd surfaces it through
// /v1/stats and folds its Status into /healthz.
type RunReport struct {
	// Status is StatusOK when every enabled chain completed cleanly,
	// StatusDegraded when any chain quarantined items or failed.
	Status  string         `json:"status"`
	Sources []SourceReport `json:"sources"`
	// Quarantined lists the dropped items, sorted by source then key,
	// so two runs that drop the same work produce identical reports.
	Quarantined []QuarantinedItem `json:"quarantined,omitempty"`
	// Attempts/Retries/Denials aggregate the crawl and LLM executors.
	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	Denials  int64 `json:"denials"`
	// BreakerTrips counts circuit openings across both chains;
	// OpenBreakers lists circuits still open at the end of the run.
	BreakerTrips int64    `json:"breaker_trips"`
	OpenBreakers []string `json:"open_breakers,omitempty"`
}

// Degraded reports whether the run lost any work.
func (r *RunReport) Degraded() bool { return r != nil && r.Status != StatusOK }

// QuarantinedBy returns the quarantined items of one source.
func (r *RunReport) QuarantinedBy(source string) []QuarantinedItem {
	var out []QuarantinedItem
	for _, q := range r.Quarantined {
		if q.Source == source {
			out = append(out, q)
		}
	}
	return out
}

// Quarantinable reports whether err is the kind of per-item failure
// the pipeline quarantines: a transient fault (timeout, reset, 429,
// 5xx, torn body, exhausted retries, open breaker) or a rate-limit /
// server-side LLM sentinel. Durable failures — 404s, unresolvable
// hosts, malformed responses — are the backend answering, not failing,
// and stay out of quarantine (and inside the cache).
func Quarantinable(err error) bool {
	if err == nil {
		return false
	}
	return resilience.IsTransient(err) ||
		errors.Is(err, llm.ErrRateLimited) ||
		errors.Is(err, llm.ErrServer) ||
		errors.Is(err, context.DeadlineExceeded)
}

// buildReport assembles the run's fault accounting from the stage
// outputs. It runs after the join, on the orchestrating goroutine.
func buildReport(feats Features, nerOut nerOutput, webOut webOutput, nerErr, webErr error, crawlBS *resilience.BreakerSet, llmExec *resilience.Executor) *RunReport {
	rep := &RunReport{Status: StatusOK}
	var quarantined []QuarantinedItem
	source := func(name string, enabled bool, stageErr error, items, errs int, q []QuarantinedItem) {
		sr := SourceReport{Name: name, Items: items, Errors: errs, Quarantined: len(q)}
		switch {
		case !enabled:
			sr.Status = StatusDisabled
		case stageErr != nil:
			sr.Status = StatusFailed
			sr.Err = stageErr.Error()
		case len(q) > 0:
			sr.Status = StatusDegraded
		default:
			sr.Status = StatusOK
		}
		rep.Sources = append(rep.Sources, sr)
		quarantined = append(quarantined, q...)
	}

	var nerQ []QuarantinedItem
	nerErrs := 0
	for _, x := range nerOut.extractions {
		if x.Err == nil {
			continue
		}
		nerErrs++
		if Quarantinable(x.Err) {
			nerQ = append(nerQ, QuarantinedItem{
				Source: SourceNotesAka,
				Key:    fmt.Sprintf("AS%d", x.Record.ASN),
				Err:    x.Err.Error(),
			})
		}
	}
	source(SourceNotesAka, feats.NotesAka, nerErr, len(nerOut.extractions), nerErrs, nerQ)

	// Crawl items are deduplicated by canonical URL: several reported
	// websites collapse onto one cached outcome, and the quarantine
	// list must count the work to redo, not the tasks that share it.
	crawlErrs := 0
	seen := make(map[string]bool)
	var crawlQ []QuarantinedItem
	for _, r := range webOut.crawls {
		if r.Err == nil {
			continue
		}
		crawlErrs++
		if !Quarantinable(r.Err) {
			continue
		}
		key := r.Task.URL
		if canon, err := urlmatch.Canonicalize(r.Task.URL); err == nil {
			key = canon
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		crawlQ = append(crawlQ, QuarantinedItem{Source: SourceCrawl, Key: key, Err: r.Err.Error()})
	}
	webEnabled := feats.RR || feats.Favicons
	source(SourceCrawl, webEnabled, webErr, len(webOut.crawls), crawlErrs, crawlQ)

	// R&R is a pure computation over crawl outcomes with no failure
	// modes of its own; it is listed so the report enumerates every
	// chain the mapping was built from.
	source(SourceRR, feats.RR, nil, len(webOut.rrSets), 0, nil)

	favErrs := 0
	var favQ []QuarantinedItem
	for _, o := range webOut.outcomes {
		if o.Err == nil {
			continue
		}
		favErrs++
		if Quarantinable(o.Err) {
			favQ = append(favQ, QuarantinedItem{
				Source: SourceFavicons,
				Key:    "favicon:" + o.Group.Hash,
				Err:    o.Err.Error(),
			})
		}
	}
	source(SourceFavicons, feats.Favicons, nil, len(webOut.outcomes), favErrs, favQ)

	sort.Slice(quarantined, func(i, j int) bool {
		if quarantined[i].Source != quarantined[j].Source {
			return quarantined[i].Source < quarantined[j].Source
		}
		return quarantined[i].Key < quarantined[j].Key
	})
	rep.Quarantined = quarantined

	rep.Attempts = webOut.exec.Attempts
	rep.Retries = webOut.exec.Retries
	rep.Denials = webOut.exec.Denials
	var llmBS *resilience.BreakerSet
	if llmExec != nil {
		s := llmExec.Stats()
		rep.Attempts += s.Attempts
		rep.Retries += s.Retries
		rep.Denials += s.Denials
		llmBS = llmExec.Breakers
	}
	// The two chains normally share one breaker registry; count each
	// distinct registry once.
	var open []string
	if crawlBS != nil {
		rep.BreakerTrips += crawlBS.Trips()
		open = append(open, crawlBS.Open()...)
	}
	if llmBS != nil && llmBS != crawlBS {
		rep.BreakerTrips += llmBS.Trips()
		open = append(open, llmBS.Open()...)
	}
	sort.Strings(open)
	rep.OpenBreakers = open

	for _, s := range rep.Sources {
		if s.Status == StatusDegraded || s.Status == StatusFailed {
			rep.Status = StatusDegraded
		}
	}
	return rep
}
