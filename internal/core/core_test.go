package core_test

import (
	"context"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
)

func testInputs(t *testing.T, scale float64) (*synth.Dataset, core.Inputs) {
	t.Helper()
	ds, err := synth.Generate(synth.Config{Seed: 11, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	return ds, core.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  simllm.NewModel(),
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := core.Run(ctx, core.Inputs{}, core.Options{}); err == nil {
		t.Error("missing WHOIS should fail")
	}
	ds, in := testInputs(t, 0.01)
	_ = ds
	in.PDB = nil
	if _, err := core.Run(ctx, in, core.Options{}); err == nil {
		t.Error("missing PDB with PDB features should fail")
	}
	_, in = testInputs(t, 0.01)
	in.Provider = nil
	if _, err := core.Run(ctx, in, core.Options{}); err == nil {
		t.Error("missing provider with LLM features should fail")
	}
	// Keys-only configurations run without a provider.
	f := core.Features{OIDP: true}
	if _, err := core.Run(ctx, in, core.Options{Features: &f}); err != nil {
		t.Errorf("OID_P-only run should not need a provider: %v", err)
	}
	// A pure-WHOIS configuration runs without PDB too.
	f0 := core.Features{}
	_, in = testInputs(t, 0.01)
	in.PDB, in.Provider = nil, nil
	if _, err := core.Run(ctx, in, core.Options{Features: &f0}); err != nil {
		t.Errorf("WHOIS-only run failed: %v", err)
	}
}

func TestRunCoversUniverse(t *testing.T) {
	ds, in := testInputs(t, 0.02)
	res, err := core.Run(context.Background(), in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.NumASNs() < ds.WHOIS.NumASNs() {
		t.Errorf("mapping misses universe networks: %d < %d",
			res.Mapping.NumASNs(), ds.WHOIS.NumASNs())
	}
	// Every WHOIS ASN resolves to a cluster.
	for _, a := range ds.WHOIS.ASNs()[:200] {
		if res.Mapping.ClusterOf(a) == nil {
			t.Fatalf("universe ASN %v unmapped", a)
		}
	}
}

func TestMappingNeverSplitsWHOISOrgs(t *testing.T) {
	ds, in := testInputs(t, 0.02)
	res, err := core.Run(context.Background(), in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Borges only merges: two ASNs sharing an OID_W always share a
	// Borges cluster.
	for _, id := range ds.WHOIS.OrgIDs()[:300] {
		members := ds.WHOIS.Members(id)
		if len(members) < 2 {
			continue
		}
		first := res.Mapping.ClusterOf(members[0])
		for _, a := range members[1:] {
			if res.Mapping.ClusterOf(a) != first {
				t.Fatalf("WHOIS org %s split across clusters", id)
			}
		}
	}
}

func TestFeatureMonotonicity(t *testing.T) {
	// Adding features can only merge further: θ is monotone in the
	// feature set, and cluster count is antitone.
	ds, in := testInputs(t, 0.02)
	ctx := context.Background()
	prevOrgs := -1
	var prevTheta float64
	configs := []core.Features{
		{},
		{OIDP: true},
		{OIDP: true, NotesAka: true},
		{OIDP: true, NotesAka: true, RR: true},
		{OIDP: true, NotesAka: true, RR: true, Favicons: true},
	}
	for _, f := range configs {
		f := f
		res, err := core.Run(ctx, in, core.Options{Features: &f})
		if err != nil {
			t.Fatal(err)
		}
		theta, err := orgfactor.Theta(res.Mapping)
		if err != nil {
			t.Fatal(err)
		}
		if prevOrgs >= 0 {
			if res.Mapping.NumOrgs() > prevOrgs {
				t.Errorf("feature set %s increased org count: %d > %d",
					f.Label(), res.Mapping.NumOrgs(), prevOrgs)
			}
			if theta+1e-12 < prevTheta {
				t.Errorf("feature set %s decreased θ: %v < %v", f.Label(), theta, prevTheta)
			}
		}
		prevOrgs, prevTheta = res.Mapping.NumOrgs(), theta
	}
	_ = ds
}

func TestRunBeatsBaselines(t *testing.T) {
	ds, in := testInputs(t, 0.02)
	res, err := core.Run(context.Background(), in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ours, _ := orgfactor.Theta(res.Mapping)
	base, _ := orgfactor.Theta(baseline.AS2Org(ds.WHOIS))
	plus, _ := orgfactor.Theta(baseline.AS2OrgPlus(ds.WHOIS, ds.PDB, baseline.Config{}))
	if !(ours > plus && plus > base) {
		t.Errorf("θ ordering: borges=%v plus=%v base=%v", ours, plus, base)
	}
}

func TestGroundTruthAccuracy(t *testing.T) {
	// Borges merges should overwhelmingly agree with ground truth:
	// pairs it unites should really be under one owner.
	ds, in := testInputs(t, 0.02)
	res, err := core.Run(context.Background(), in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var agree, disagree int
	for i := range res.Mapping.Clusters {
		c := &res.Mapping.Clusters[i]
		if c.Size() < 2 {
			continue
		}
		anchor := c.ASNs[0]
		for _, a := range c.ASNs[1:] {
			if ds.Truth.SameOrg(anchor, a) {
				agree++
			} else {
				disagree++
			}
		}
	}
	if agree == 0 {
		t.Fatal("no multi-network clusters formed")
	}
	precision := float64(agree) / float64(agree+disagree)
	// The deliberate error sources (hard FPs, the white-label favicon
	// group) keep this below 1.0, but it must stay high.
	if precision < 0.97 {
		t.Errorf("merge precision = %.4f, want ≥ 0.97 (agree=%d disagree=%d)",
			precision, agree, disagree)
	}
}

func TestFlagshipMergers(t *testing.T) {
	ds, in := testInputs(t, 0.02)
	res, err := core.Run(context.Background(), in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	// Edgecast ↔ Limelight via the edg.io redirect (R&R).
	if m.ClusterOf(15133) != m.ClusterOf(22822) {
		t.Error("Edgecast and Limelight not merged")
	}
	// Each named conglomerate consolidates beyond its main WHOIS org.
	for _, key := range []string{"deutsche-telekom", "digicel", "claro"} {
		org := ds.Truth.Org("cong:" + key)
		main := org.ASNs[0]
		base := baseline.AS2Org(ds.WHOIS).ClusterOf(main).Size()
		got := m.ClusterOf(main).Size()
		if got <= base {
			t.Errorf("%s: Borges size %d not above AS2Org size %d", key, got, base)
		}
	}
	// The DE-CIX family stays apart: its favicon group is the designed
	// classifier false negative and no other signal links it.
	decix := ds.Truth.Org("special:decix")
	if len(decix.ASNs) >= 2 && m.ClusterOf(decix.ASNs[0]) == m.ClusterOf(decix.ASNs[1]) {
		t.Error("DE-CIX family should remain unmerged (designed FN)")
	}
}

func TestAblationOptionsChangeOutcomes(t *testing.T) {
	_, in := testInputs(t, 0.02)
	ctx := context.Background()
	f := core.Features{NotesAka: true}

	model := simllm.NewModel()
	in.Provider = model
	if _, err := core.Run(ctx, in, core.Options{Features: &f}); err != nil {
		t.Fatal(err)
	}
	withFilter := model.IECalls()

	model2 := simllm.NewModel()
	in.Provider = model2
	if _, err := core.Run(ctx, in, core.Options{Features: &f, DisableInputFilter: true}); err != nil {
		t.Fatal(err)
	}
	if model2.IECalls() <= withFilter {
		t.Errorf("disabling the input filter should raise LLM calls: %d vs %d",
			model2.IECalls(), withFilter)
	}
}

func TestFeatureLabel(t *testing.T) {
	cases := []struct {
		f    core.Features
		want string
	}{
		{core.Features{}, "AS2Org"},
		{core.Features{OIDP: true}, "OID_P"},
		{core.AllFeatures(), "OID_P + N&A + R&R + F"},
		{core.Features{RR: true, Favicons: true}, "R&R + F"},
	}
	for _, c := range cases {
		if got := c.f.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestFeatureMapping(t *testing.T) {
	sets := []cluster.SiblingSet{
		{ASNs: []asnum.ASN{1, 2}, Source: cluster.FeatureRR},
		{ASNs: []asnum.ASN{3}, Source: cluster.FeatureRR},
	}
	m := core.FeatureMapping(sets)
	if m.NumASNs() != 3 || m.NumOrgs() != 2 {
		t.Errorf("FeatureMapping: %d ASNs / %d orgs", m.NumASNs(), m.NumOrgs())
	}
}

func TestRunCancelled(t *testing.T) {
	_, in := testInputs(t, 0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.Run(ctx, in, core.Options{}); err == nil {
		t.Error("cancelled context should abort the run")
	}
}
