package core_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cache"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
	"github.com/nu-aqualab/borges/internal/urlmatch"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// chaosOpts are pipeline options for fault cells: retries on, tiny
// delays so injected Retry-After hints (whole seconds on the wire) are
// capped instead of actually slept.
func chaosOpts(f core.Features) core.Options {
	return core.Options{
		Features:       &f,
		MaxRetries:     2,
		RetryBaseDelay: time.Microsecond,
		RetryMaxDelay:  5 * time.Microsecond,
		RetrySeed:      7,
	}
}

// flatUniverse builds n single-page sites with matching WHOIS and
// PeeringDB records. Single-hop resolution makes the injector's
// per-key ledger map 1:1 onto crawl tasks, which is what lets the
// chaos cells assert *exact* quarantine accounting.
func flatUniverse(n int) (*whois.Snapshot, *peeringdb.Snapshot, *websim.Universe) {
	w := whois.NewSnapshot("20240701")
	p := peeringdb.NewSnapshot("20240724")
	u := websim.New()
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("site%02d.test", i)
		u.AddSite(host, "")
		orgID := fmt.Sprintf("ORG-%02d", i)
		a := asnum.ASN(1000 + i)
		w.AddOrg(whois.Org{ID: orgID, Name: fmt.Sprintf("Org %02d", i)})
		w.AddAS(whois.ASRecord{ASN: a, OrgID: orgID})
		p.AddOrg(peeringdb.Org{ID: i + 1, Name: fmt.Sprintf("Org %02d", i)})
		p.AddNet(peeringdb.Net{ID: i + 1, OrgID: i + 1, ASN: a, Website: "https://" + host + "/"})
	}
	return w, p, u
}

// TestChaosQuarantineCountsExact is the acceptance cell: a run with
// ~30% injected transport faults must terminate, and its RunReport
// must quarantine exactly the keys whose faults were persistent (the
// ones that exhausted the retry budget) — no more, no fewer.
func TestChaosQuarantineCountsExact(t *testing.T) {
	w, p, u := flatUniverse(24)
	tr := faultinject.NewTransport(u, faultinject.Config{
		Seed:             3,
		Rate:             0.3,
		PersistentRate:   0.5,
		SkipFaviconPaths: true,
		Stall:            time.Millisecond,
	})
	res, err := core.Run(context.Background(), core.Inputs{
		WHOIS: w, PDB: p, Transport: tr,
	}, chaosOpts(core.Features{RR: true}))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if len(st.ExhaustedKeys) == 0 || len(st.HealedKeys) == 0 {
		t.Fatalf("vacuous cell: exhausted=%v healed=%v (pick another seed)",
			st.ExhaustedKeys, st.HealedKeys)
	}

	want := make(map[string]bool)
	for _, key := range st.ExhaustedKeys {
		canon, err := urlmatch.Canonicalize("https://" + strings.TrimSuffix(key, "/") + "/")
		if err != nil {
			t.Fatal(err)
		}
		want[canon] = true
	}
	got := make(map[string]bool)
	for _, q := range res.Report.QuarantinedBy(core.SourceCrawl) {
		got[q.Key] = true
	}
	if len(got) != len(want) {
		t.Errorf("quarantined %d keys, want exactly %d (got %v, want %v)",
			len(got), len(want), got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("exhausted key %s missing from quarantine", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("quarantined %s, but its faults never exhausted the retry budget", k)
		}
	}

	if !res.Report.Degraded() || res.Report.Status != core.StatusDegraded {
		t.Errorf("report status = %q, want degraded", res.Report.Status)
	}
	if res.Report.Retries == 0 {
		t.Error("report records zero retries; the healed keys retried")
	}
	var crawlSrc core.SourceReport
	for _, s := range res.Report.Sources {
		if s.Name == core.SourceCrawl {
			crawlSrc = s
		}
	}
	if crawlSrc.Status != core.StatusDegraded || crawlSrc.Quarantined != len(want) {
		t.Errorf("crawl source = %+v, want degraded with %d quarantined", crawlSrc, len(want))
	}
	// Degradation never shrinks the universe: every WHOIS ASN stays
	// mapped, quarantined or not.
	if res.Mapping.NumASNs() != w.NumASNs() {
		t.Errorf("mapping covers %d ASNs, want %d", res.Mapping.NumASNs(), w.NumASNs())
	}
}

// recordingTransport remembers every request key it forwards.
type recordingTransport struct {
	inner http.RoundTripper
	mu    sync.Mutex
	keys  []string
}

func (r *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r.mu.Lock()
	r.keys = append(r.keys, faultinject.Key(req.URL.Host, req.URL.Path))
	r.mu.Unlock()
	return r.inner.RoundTrip(req)
}

func (r *recordingTransport) seen() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.keys...)
}

// TestChaosCacheHealsByteIdentical proves the degraded run does not
// poison the content-addressed cache: a healthy re-run over the same
// cache restores the fault-free mapping byte for byte, re-crawling
// only the keys the degraded run quarantined — previously-succeeded
// URLs are served from cache with zero round-trips.
func TestChaosCacheHealsByteIdentical(t *testing.T) {
	w, p, u := flatUniverse(16)
	in := core.Inputs{WHOIS: w, PDB: p, Transport: u}
	feats := core.Features{RR: true}

	clean, err := core.Run(context.Background(), in, core.Options{Features: &feats})
	if err != nil {
		t.Fatal(err)
	}
	var cleanBytes bytes.Buffer
	if err := cluster.WriteJSONL(&cleanBytes, clean.Mapping); err != nil {
		t.Fatal(err)
	}

	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	faulty := faultinject.NewTransport(u, faultinject.Config{
		Seed:             11,
		Rate:             0.4,
		PersistentRate:   0.6,
		SkipFaviconPaths: true,
		Stall:            time.Millisecond,
	})
	opts := chaosOpts(feats)
	opts.Cache = store
	degraded, err := core.Run(context.Background(), core.Inputs{WHOIS: w, PDB: p, Transport: faulty}, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := faulty.Stats()
	if !degraded.Report.Degraded() || len(st.ExhaustedKeys) == 0 {
		t.Fatalf("vacuous cell: report=%v exhausted=%v", degraded.Report.Status, st.ExhaustedKeys)
	}

	// Healthy re-run over the same cache: only quarantined keys may
	// touch the network again.
	rec := &recordingTransport{inner: u}
	opts2 := core.Options{Features: &feats, Cache: store}
	healed, err := core.Run(context.Background(), core.Inputs{WHOIS: w, PDB: p, Transport: rec}, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Report.Status != core.StatusOK {
		t.Errorf("healed run status = %q, want ok (quarantined: %v)",
			healed.Report.Status, healed.Report.Quarantined)
	}
	var healedBytes bytes.Buffer
	if err := cluster.WriteJSONL(&healedBytes, healed.Mapping); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healedBytes.Bytes(), cleanBytes.Bytes()) {
		t.Errorf("healed mapping differs from fault-free mapping:\nhealed: %s\nclean:  %s",
			healedBytes.String(), cleanBytes.String())
	}
	exhausted := make(map[string]bool)
	for _, k := range st.ExhaustedKeys {
		exhausted[k] = true
	}
	seen := rec.seen()
	if len(seen) == 0 {
		t.Error("healed run made no requests; it had quarantined keys to redo")
	}
	for _, k := range seen {
		if !exhausted[k] {
			t.Errorf("healed run re-crawled %s, which the degraded run already resolved", k)
		}
	}

	// A further warm run touches nothing: the heal repaired the cache.
	rec2 := &recordingTransport{inner: u}
	if _, err := core.Run(context.Background(), core.Inputs{WHOIS: w, PDB: p, Transport: rec2},
		core.Options{Features: &feats, Cache: store}); err != nil {
		t.Fatal(err)
	}
	if n := len(rec2.seen()); n != 0 {
		t.Errorf("fully healed cache still issued %d requests, want 0", n)
	}
}

// TestChaosLLMQuarantineExact injects faults into the LLM provider:
// notes/aka extractions whose prompts persistently fault are
// quarantined — exactly those, counted per exhausted prompt key.
func TestChaosLLMQuarantineExact(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 21, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	prov := faultinject.NewProvider(simllm.NewModel(), faultinject.Config{
		Seed:           5,
		Rate:           0.3,
		PersistentRate: 0.5,
		RetryAfter:     time.Millisecond,
	})
	res, err := core.Run(context.Background(), core.Inputs{
		WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: prov,
	}, chaosOpts(core.Features{OIDP: true, NotesAka: true}))
	if err != nil {
		t.Fatal(err)
	}
	st := prov.Stats()
	if len(st.ExhaustedKeys) == 0 || len(st.HealedKeys) == 0 {
		t.Fatalf("vacuous cell: exhausted=%v healed=%v", st.ExhaustedKeys, st.HealedKeys)
	}
	q := res.Report.QuarantinedBy(core.SourceNotesAka)
	if len(q) != len(st.ExhaustedKeys) {
		t.Errorf("quarantined %d records, want exactly %d (one per exhausted prompt): %v",
			len(q), len(st.ExhaustedKeys), q)
	}
	if !res.Report.Degraded() {
		t.Error("report not degraded despite exhausted prompts")
	}
	if res.Mapping.NumASNs() != ds.WHOIS.NumASNs() {
		t.Errorf("mapping covers %d ASNs, want %d", res.Mapping.NumASNs(), ds.WHOIS.NumASNs())
	}
}

// meltdown fails every request to one host with a timeout; everything
// else passes through.
type meltdown struct {
	inner http.RoundTripper
	host  string
}

func (m *meltdown) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host == m.host {
		return nil, &net.DNSError{Err: "injected meltdown", Name: m.host, IsTimeout: true}
	}
	return m.inner.RoundTrip(req)
}

// TestChaosBreakerIsolatesMeltingHost: with breakers enabled, a host
// that times out on every attempt trips its circuit; the trip and the
// still-open breaker surface in the report, and healthy hosts resolve
// untouched.
func TestChaosBreakerIsolatesMeltingHost(t *testing.T) {
	w, p, u := flatUniverse(6)
	melt := &meltdown{inner: u, host: "site03.test"}
	opts := chaosOpts(core.Features{RR: true})
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = time.Hour
	res, err := core.Run(context.Background(), core.Inputs{WHOIS: w, PDB: p, Transport: melt}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.BreakerTrips == 0 {
		t.Error("melting host never tripped its breaker")
	}
	found := false
	for _, k := range res.Report.OpenBreakers {
		if k == "crawl:site03.test" {
			found = true
		}
	}
	if !found {
		t.Errorf("open breakers = %v, want crawl:site03.test", res.Report.OpenBreakers)
	}
	q := res.Report.QuarantinedBy(core.SourceCrawl)
	if len(q) != 1 || !strings.Contains(q[0].Key, "site03.test") {
		t.Errorf("quarantine = %v, want exactly the melting host", q)
	}
	if res.Mapping.NumASNs() != w.NumASNs() {
		t.Errorf("mapping covers %d ASNs, want %d", res.Mapping.NumASNs(), w.NumASNs())
	}
}

// TestChaosDegradedMappingRefinesClean is the no-invented-merges
// property: whatever a degraded full-feature run loses, every merge it
// *does* make must also exist in the fault-free mapping. Degradation
// may split organizations, never conflate them.
func TestChaosDegradedMappingRefinesClean(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 21, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := core.Run(context.Background(), core.Inputs{
		WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: ds.Web, Provider: simllm.NewModel(),
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	tr := faultinject.NewTransport(ds.Web, faultinject.Config{
		Seed:           9,
		Rate:           0.3,
		PersistentRate: 0.5,
		Stall:          time.Millisecond,
	})
	prov := faultinject.NewProvider(simllm.NewModel(), faultinject.Config{
		Seed:           9,
		Rate:           0.2,
		PersistentRate: 0.5,
		RetryAfter:     time.Millisecond,
	})
	degraded, err := core.Run(context.Background(), core.Inputs{
		WHOIS: ds.WHOIS, PDB: ds.PDB, Transport: tr, Provider: prov,
	}, chaosOpts(core.AllFeatures()))
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Mapping.NumASNs() != clean.Mapping.NumASNs() {
		t.Errorf("degraded run lost networks: %d vs %d", degraded.Mapping.NumASNs(), clean.Mapping.NumASNs())
	}
	for i := range degraded.Mapping.Clusters {
		c := &degraded.Mapping.Clusters[i]
		first := clean.Mapping.ClusterOf(c.ASNs[0])
		for _, a := range c.ASNs[1:] {
			if got := clean.Mapping.ClusterOf(a); got != first {
				t.Fatalf("degraded run merged AS%v and AS%v; the clean run keeps them apart", c.ASNs[0], a)
			}
		}
	}
}
