package core

import (
	"context"
	"sync"
)

// group is a minimal errgroup: goroutines run under a shared derived
// context that is cancelled when any of them returns an error, and
// Wait returns the first error. It exists because the pipeline's NER
// and web stages are independent until consolidation and should
// overlap, while a failure in either must stop the other's LLM fan-out
// and crawl promptly.
type group struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	once   sync.Once
	err    error
}

// startGroup returns a group and the derived context its goroutines
// must run under.
func startGroup(ctx context.Context) (*group, context.Context) {
	gctx, cancel := context.WithCancel(ctx)
	return &group{cancel: cancel}, gctx
}

// Go runs fn in a goroutine; the first non-nil error cancels the
// group's context.
func (g *group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until every goroutine finishes, releases the group's
// context, and returns the first error.
func (g *group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}
