package core_test

import (
	"context"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/synth"
)

// TestSmokeFullPipeline runs Borges end-to-end on the full-scale
// synthetic corpus and logs the headline numbers against the paper's.
func TestSmokeFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := synth.Generate(synth.Config{Seed: 1, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := core.Run(context.Background(), core.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  simllm.NewModel(),
	}, core.Options{LLMConcurrency: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("pipeline:", time.Since(t0))
	t.Logf("stats: %+v", res.Stats)

	borges, err := orgfactor.Theta(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	as2org := baseline.AS2Org(ds.WHOIS)
	t2, _ := orgfactor.Theta(as2org)
	plus := baseline.AS2OrgPlus(ds.WHOIS, ds.PDB, baseline.Config{})
	t3, _ := orgfactor.Theta(plus)
	t.Logf("theta AS2Org=%.4f (paper 0.3343)  as2org+=%.4f (0.3467)  Borges=%.4f (0.3576)", t2, t3, borges)
	t.Logf("orgs: AS2Org=%d as2org+=%d Borges=%d", as2org.NumOrgs(), plus.NumOrgs(), res.Mapping.NumOrgs())

	// Per-feature Table 3 view.
	for name, sets := range map[string]int{
		"OID_P":    len(res.Artifacts.OIDPSets),
		"N&A":      len(res.Artifacts.NASets),
		"R&R":      len(res.Artifacts.RRSets),
		"Favicons": len(res.Artifacts.FaviconSets),
	} {
		t.Logf("feature %s: %d sets", name, sets)
	}
	naMap := core.FeatureMapping(res.Artifacts.NASets)
	t.Logf("N&A feature: %d ASNs / %d orgs (paper 1,436/847)", naMap.NumASNs(), naMap.NumOrgs())
	rrMap := core.FeatureMapping(res.Artifacts.RRSets)
	t.Logf("R&R feature: %d ASNs / %d orgs (paper 22,523/20,065)", rrMap.NumASNs(), rrMap.NumOrgs())
	fMap := core.FeatureMapping(res.Artifacts.FaviconSets)
	t.Logf("F feature: %d ASNs / %d orgs (paper 1,297/319)", fMap.NumASNs(), fMap.NumOrgs())
	t.Logf("favicon stats: %+v (paper: 14,516 unique, 440 shared, 1,260 URLs, 281 same-brand)", res.Stats.FaviconStats)
}
