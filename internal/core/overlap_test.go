package core_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/nu-aqualab/borges/internal/cache"
	"github.com/nu-aqualab/borges/internal/core"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// TestProgressOrderDeterministic runs the overlapped pipeline and
// requires the buffered progress lines to appear in the canonical
// stage order even though the NER and web stages raced.
func TestProgressOrderDeterministic(t *testing.T) {
	_, in := testInputs(t, 0.02)
	var lines []string
	opts := core.Options{Progress: func(f string, args ...any) {
		lines = append(lines, fmt.Sprintf(f, args...))
	}}
	if _, err := core.Run(context.Background(), in, opts); err != nil {
		t.Fatal(err)
	}
	var stages []string
	for _, l := range lines {
		stages = append(stages, strings.SplitN(l, ":", 2)[0])
	}
	want := []string{"universe", "org keys", "notes/aka", "crawl", "crawl", "R&R", "favicons", "consolidated"}
	if len(stages) != len(want) {
		t.Fatalf("progress stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("progress stage %d = %q, want %q (all: %v)", i, stages[i], want[i], stages)
		}
	}
}

// TestParallelStagesUnderRace runs several full-feature pipelines
// concurrently so the race detector sweeps the overlapped NER+web
// stages, the shared cache, and the singleflight paths together.
func TestParallelStagesUnderRace(t *testing.T) {
	_, in := testInputs(t, 0.01)
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := core.Run(context.Background(), in, core.Options{Cache: store})
			if err != nil {
				t.Error(err)
				return
			}
			if res.Mapping.NumASNs() == 0 {
				t.Error("empty mapping")
			}
		}()
	}
	wg.Wait()
}

// TestWarmCacheRunMakesNoBackendCalls is the tentpole acceptance
// check at the core layer: a second full-feature run over one cache
// must issue zero LLM calls and zero transport round-trips, and its
// mapping must match the cold run's.
func TestWarmCacheRunMakesNoBackendCalls(t *testing.T) {
	ds, in := testInputs(t, 0.02)
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.Run(context.Background(), in, core.Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}

	ds.Web.ResetRequests()
	warmModel := simllm.NewModel()
	in.Provider = warmModel
	warm, err := core.Run(context.Background(), in, core.Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if calls := warmModel.IECalls() + warmModel.ClassifierCalls(); calls != 0 {
		t.Errorf("warm run made %d LLM calls, want 0", calls)
	}
	if reqs := ds.Web.Requests(); reqs != 0 {
		t.Errorf("warm run made %d transport round-trips, want 0", reqs)
	}
	if warm.Mapping.NumOrgs() != cold.Mapping.NumOrgs() || warm.Mapping.NumASNs() != cold.Mapping.NumASNs() {
		t.Errorf("warm mapping %d orgs/%d ASNs differs from cold %d/%d",
			warm.Mapping.NumOrgs(), warm.Mapping.NumASNs(),
			cold.Mapping.NumOrgs(), cold.Mapping.NumASNs())
	}
	if warm.Stats != cold.Stats {
		t.Errorf("warm stats %+v differ from cold %+v", warm.Stats, cold.Stats)
	}
}

// TestBadURLsCounted builds a corpus whose PDB nets include websites
// that cannot canonicalize; they must be counted in Stats.BadURLs,
// excluded from the task list, and absent from CrawlResults.
func TestBadURLsCounted(t *testing.T) {
	w := whois.NewSnapshot("20240701")
	w.AddOrg(whois.Org{ID: "ORG-1", Name: "One"})
	w.AddAS(whois.ASRecord{ASN: 1, OrgID: "ORG-1"})
	w.AddOrg(whois.Org{ID: "ORG-2", Name: "Two"})
	w.AddAS(whois.ASRecord{ASN: 2, OrgID: "ORG-2"})
	w.AddOrg(whois.Org{ID: "ORG-3", Name: "Three"})
	w.AddAS(whois.ASRecord{ASN: 3, OrgID: "ORG-3"})

	p := peeringdb.NewSnapshot("20240724")
	p.AddOrg(peeringdb.Org{ID: 1, Name: "One"})
	p.AddNet(peeringdb.Net{ID: 1, OrgID: 1, ASN: 1, Website: "https://ok.example"})
	p.AddOrg(peeringdb.Org{ID: 2, Name: "Two"})
	p.AddNet(peeringdb.Net{ID: 2, OrgID: 2, ASN: 2, Website: "http://bad url with spaces"})
	p.AddOrg(peeringdb.Org{ID: 3, Name: "Three"})
	p.AddNet(peeringdb.Net{ID: 3, OrgID: 3, ASN: 3, Website: "://also-bad"})

	f := core.Features{RR: true}
	res, err := core.Run(context.Background(), core.Inputs{
		WHOIS:     w,
		PDB:       p,
		Transport: websim.New(),
	}, core.Options{Features: &f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NetsWithWebsite != 3 {
		t.Errorf("NetsWithWebsite = %d, want 3", res.Stats.NetsWithWebsite)
	}
	if res.Stats.BadURLs != 2 {
		t.Errorf("BadURLs = %d, want 2", res.Stats.BadURLs)
	}
	if res.Stats.UniqueURLs != 1 {
		t.Errorf("UniqueURLs = %d, want 1", res.Stats.UniqueURLs)
	}
	if len(res.Artifacts.CrawlResults) != 1 {
		t.Errorf("CrawlResults = %d tasks, want 1 (bad URLs never become tasks)",
			len(res.Artifacts.CrawlResults))
	}
}
