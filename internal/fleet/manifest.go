// Package fleet turns one borgesd process into a snapshot distributor
// and many others into verifying replicas — the horizontal scale-out
// story: a builder/distributor publishes versioned binary snapshot
// artifacts, and a fleet of stateless replicas fetches, verifies, and
// atomically swaps them.
//
// The distributor wraps a serve.Server with /fleet/* routes: a
// versioned manifest (sequence number, provenance-excluded content
// hash, size, artifact URL), ranged snapshot and delta downloads
// served straight from the in-memory snapbin artifact, and a fleet
// consistency endpoint fed by replica heartbeats. Every snapshot swap
// on the distributor republishes automatically via serve.Options.OnSwap.
//
// A replica joins a distributor, cold-starts from its local last-good
// artifact when one exists (milliseconds, no network), and runs a
// follower loop: ride the distributor's /v1/watch SSE feed for publish
// events with polling as the fallback, fetch changed artifacts with
// resumable ranged GETs under a retry policy and per-distributor
// circuit breaker, verify the snapbin content hash before anything
// touches the serving path, and reuse the server's validate-then-swap
// reload. When the replica's current hash matches the published
// delta's base, the mapdiff delta path patches the snapshot
// incrementally instead of refetching everything.
//
// Convergence is checkable end to end because builds are
// deterministic: two replicas serving the same logical mapping report
// byte-identical content hashes, so /fleet/status divergence is a real
// signal, never an artifact of encoding.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
)

// Typed decode errors: every malformed manifest or heartbeat yields
// one of these (wrapped with detail), never a panic — the fuzz suite
// holds the decoders to that.
var (
	// ErrBadManifest reports a manifest that failed validation.
	ErrBadManifest = errors.New("fleet: malformed manifest")
	// ErrBadHeartbeat reports a heartbeat that failed validation.
	ErrBadHeartbeat = errors.New("fleet: malformed heartbeat")
)

// Manifest describes the distributor's currently published snapshot:
// what version exists, how to verify it, and where to fetch it.
type Manifest struct {
	// Seq increments on every publish (1 = the distributor's initial
	// snapshot). It orders versions; identity is the content hash.
	Seq uint64 `json:"seq"`
	// ContentHash is the snapbin provenance-excluded SHA-256 of the
	// artifact — the value a replica must observe on its own decode
	// before the snapshot may serve.
	ContentHash string `json:"content_hash"`
	// Size is the artifact's byte length, which lets a replica size
	// buffers and validate ranged resumes.
	Size int64 `json:"size"`
	// SnapshotURL locates the artifact, relative to the distributor
	// base URL. It carries the hash as a query parameter so a resumed
	// ranged fetch can never splice bytes of two different versions.
	SnapshotURL string `json:"snapshot_url"`
	// Delta, when present, offers an incremental path from the
	// previously published version.
	Delta *DeltaInfo `json:"delta,omitempty"`
}

// DeltaInfo advertises the JSONL mapping delta from the previous
// publish to the current one.
type DeltaInfo struct {
	// BaseHash is the content hash the delta applies to. A replica
	// serving any other hash must take the full-artifact path.
	BaseHash string `json:"base_hash"`
	// URL locates the delta, relative to the distributor base URL.
	URL string `json:"url"`
	// Size is the delta's byte length.
	Size int64 `json:"size"`
}

// Heartbeat is one replica's periodic report: which version it is
// serving right now. The distributor aggregates these into
// /fleet/status and flags divergence.
type Heartbeat struct {
	// ID identifies the replica (stable across restarts).
	ID string `json:"id"`
	// Seq is the last manifest sequence the replica synced to (0 when
	// serving a cold-started last-good artifact it has not yet matched
	// to a manifest).
	Seq uint64 `json:"seq"`
	// ContentHash is the hash of the snapshot the replica is serving.
	ContentHash string `json:"content_hash"`
	// Addr, when set, is the replica's serving address for operators.
	Addr string `json:"addr,omitempty"`
}

// maxIDLen bounds heartbeat identity fields; anything longer is an
// encoding mistake or an abuse attempt, not a replica name.
const maxIDLen = 256

// validHash reports whether s is a well-formed snapbin content hash:
// exactly 64 lowercase hex digits.
func validHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validRelURL reports whether s parses as a URL usable relative to the
// distributor base — a non-empty path with no scheme/host hijack.
func validRelURL(s string) bool {
	if s == "" {
		return false
	}
	u, err := url.Parse(s)
	if err != nil {
		return false
	}
	// Absolute URLs would let a tampered manifest redirect a replica's
	// fetch to an arbitrary host; the artifact must come from the
	// distributor the operator joined.
	return u.Scheme == "" && u.Host == "" && u.Path != ""
}

// ParseManifest decodes and validates a /fleet/manifest response.
// Every failure wraps ErrBadManifest.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Seq == 0 {
		return nil, fmt.Errorf("%w: seq must be >= 1", ErrBadManifest)
	}
	if !validHash(m.ContentHash) {
		return nil, fmt.Errorf("%w: content_hash %q is not 64 lowercase hex digits", ErrBadManifest, m.ContentHash)
	}
	if m.Size <= 0 {
		return nil, fmt.Errorf("%w: size %d must be positive", ErrBadManifest, m.Size)
	}
	if !validRelURL(m.SnapshotURL) {
		return nil, fmt.Errorf("%w: snapshot_url %q is not a relative URL path", ErrBadManifest, m.SnapshotURL)
	}
	if d := m.Delta; d != nil {
		if !validHash(d.BaseHash) {
			return nil, fmt.Errorf("%w: delta base_hash %q is not 64 lowercase hex digits", ErrBadManifest, d.BaseHash)
		}
		if d.BaseHash == m.ContentHash {
			return nil, fmt.Errorf("%w: delta base_hash equals content_hash", ErrBadManifest)
		}
		if m.Delta.Size <= 0 {
			return nil, fmt.Errorf("%w: delta size %d must be positive", ErrBadManifest, d.Size)
		}
		if !validRelURL(d.URL) {
			return nil, fmt.Errorf("%w: delta url %q is not a relative URL path", ErrBadManifest, d.URL)
		}
	}
	return &m, nil
}

// ParseHeartbeat decodes and validates a replica heartbeat. Every
// failure wraps ErrBadHeartbeat.
func ParseHeartbeat(data []byte) (*Heartbeat, error) {
	var h Heartbeat
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeartbeat, err)
	}
	if h.ID == "" {
		return nil, fmt.Errorf("%w: missing replica id", ErrBadHeartbeat)
	}
	if len(h.ID) > maxIDLen {
		return nil, fmt.Errorf("%w: replica id longer than %d bytes", ErrBadHeartbeat, maxIDLen)
	}
	if !validHash(h.ContentHash) {
		return nil, fmt.Errorf("%w: content_hash %q is not 64 lowercase hex digits", ErrBadHeartbeat, h.ContentHash)
	}
	if len(h.Addr) > maxIDLen {
		return nil, fmt.Errorf("%w: addr longer than %d bytes", ErrBadHeartbeat, maxIDLen)
	}
	return &h, nil
}
