package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/serve"
)

// fleetMapping builds one of three known mapping versions so tests can
// publish a sequence of distinct snapshots with small deltas between
// them:
//
//	v1: Lumen {209, 3356, 3549}, Claro Chile {27995}, Claro PR {10396, 14638}
//	v2: Lumen unchanged, the Claro orgs merged {27995, 10396, 14638}
//	v3: Lumen grows 63999, Claro stays merged
func fleetMapping(t testing.TB, version int) *cluster.Mapping {
	t.Helper()
	b := cluster.NewBuilder()
	b.AddUniverse(209, 3356, 3549, 27995, 10396, 14638, 63999)
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{27995}, Source: cluster.FeatureOIDW})
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{10396, 14638}, Source: cluster.FeatureOIDW})
	switch version {
	case 1:
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{209, 3356, 3549}, Source: cluster.FeatureOIDW})
	case 2:
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{209, 3356, 3549}, Source: cluster.FeatureOIDW})
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{27995, 10396, 14638}, Source: cluster.FeatureOIDW})
	case 3:
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{209, 3356, 3549, 63999}, Source: cluster.FeatureOIDW})
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{27995, 10396, 14638}, Source: cluster.FeatureOIDW})
	default:
		t.Fatalf("unknown mapping version %d", version)
	}
	names := map[asnum.ASN]string{
		3356:  "Lumen Technologies",
		27995: "Claro Chile",
		10396: "Claro Puerto Rico",
	}
	return b.Build(func(members []asnum.ASN) string {
		for _, a := range members {
			if n, ok := names[a]; ok {
				return n
			}
		}
		return ""
	})
}

func mustSnapshot(t testing.TB, m *cluster.Mapping) *serve.Snapshot {
	t.Helper()
	s, err := serve.NewSnapshot(m, "test")
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return s
}

// testDist is a distributor under test: its serve.Source yields
// whichever mapping version td.ver names, so td.publish(v) drives a
// real reload→swap→publish cycle. td.flap simulates a distributor
// outage: while set, every request — manifest, artifact, watch,
// heartbeat — answers 503.
type testDist struct {
	dist *Distributor
	ts   *httptest.Server
	ver  atomic.Int64
	flap atomic.Bool

	mu        sync.Mutex
	published map[string]bool // every content hash ever published
}

func newTestDist(t *testing.T) *testDist {
	t.Helper()
	td := &testDist{published: make(map[string]bool)}
	td.ver.Store(1)
	src := func(ctx context.Context) (*cluster.Mapping, error) {
		return fleetMapping(t, int(td.ver.Load())), nil
	}
	dist, err := NewDistributor(mustSnapshot(t, fleetMapping(t, 1)), serve.Options{Source: src}, DistributorOptions{})
	if err != nil {
		t.Fatalf("NewDistributor: %v", err)
	}
	td.dist = dist
	td.published[dist.Manifest().ContentHash] = true
	inner := dist.Handler()
	td.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if td.flap.Load() {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "distributor flapping", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(td.ts.Close)
	return td
}

// publish switches the source mapping to version v and reloads the
// distributor's server, which republishes through OnSwap. Returns the
// new content hash.
func (td *testDist) publish(t *testing.T, v int) string {
	t.Helper()
	td.ver.Store(int64(v))
	if _, err := td.dist.Server().Reload(context.Background()); err != nil {
		t.Fatalf("reload to v%d: %v", v, err)
	}
	h := td.dist.Manifest().ContentHash
	td.mu.Lock()
	td.published[h] = true
	td.mu.Unlock()
	return h
}

func (td *testDist) wasPublished(hash string) bool {
	td.mu.Lock()
	defer td.mu.Unlock()
	return td.published[hash]
}

// replicaOpts is the shared test tuning: short intervals, deterministic
// retry jitter, fast breaker recovery.
func replicaOpts(id, baseURL, dir string) ReplicaOptions {
	return ReplicaOptions{
		ID:                id,
		Distributor:       baseURL,
		LastGood:          filepath.Join(dir, "lastgood.snapbin"),
		PollInterval:      30 * time.Millisecond,
		HeartbeatInterval: 30 * time.Millisecond,
		MaxAttempts:       6,
		RetryBaseDelay:    time.Millisecond,
		RetrySeed:         42,
		BreakerThreshold:  5,
		BreakerCooldown:   20 * time.Millisecond,
	}
}

// pathFaults routes requests for exactly one URL path through a
// fault-injecting transport and everything else through the clean
// inner transport, so chaos can corrupt artifact fetches without
// breaking the manifest/watch/heartbeat control plane.
type pathFaults struct {
	inner http.RoundTripper
	fault http.RoundTripper
	path  string
}

func (p *pathFaults) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == p.path {
		return p.fault.RoundTrip(req)
	}
	return p.inner.RoundTrip(req)
}

// faultyClient returns an *http.Client whose requests to path are
// faulted under cfg (first attempt per key unless PersistentRate says
// otherwise) and whose other requests pass through untouched.
func faultyClient(path string, cfg faultinject.Config) *http.Client {
	return &http.Client{Transport: &pathFaults{
		inner: http.DefaultTransport,
		fault: faultinject.NewTransport(http.DefaultTransport, cfg),
		path:  path,
	}}
}

// countingTransport counts round trips, so a test can prove a cold
// start needed zero network.
type countingTransport struct {
	inner http.RoundTripper
	n     atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.n.Add(1)
	return c.inner.RoundTrip(req)
}

func waitFor(t *testing.T, d time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func lastGoodHash(t *testing.T, path string) string {
	t.Helper()
	snap, err := serve.LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("loading last-good %s: %v", path, err)
	}
	return snap.ContentHash()
}

func TestDistributorManifestAndRangedFetch(t *testing.T) {
	td := newTestDist(t)

	resp, err := http.Get(td.ts.URL + PathManifest)
	if err != nil {
		t.Fatalf("GET manifest: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	man, err := ParseManifest(body)
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if man.Seq != 1 || man.Delta != nil {
		t.Fatalf("initial manifest = %+v, want seq 1 and no delta", man)
	}

	resp, err = http.Get(td.ts.URL + man.SnapshotURL)
	if err != nil {
		t.Fatalf("GET snapshot: %v", err)
	}
	artifact, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if int64(len(artifact)) != man.Size {
		t.Fatalf("artifact is %d bytes, manifest says %d", len(artifact), man.Size)
	}
	snap, err := serve.LoadSnapshot(bytes.NewReader(artifact))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if snap.ContentHash() != man.ContentHash {
		t.Fatalf("artifact hash %s != manifest %s", snap.ContentHash(), man.ContentHash)
	}

	// Ranged request resumes mid-artifact.
	req, _ := http.NewRequest(http.MethodGet, td.ts.URL+man.SnapshotURL, nil)
	req.Header.Set("Range", "bytes=10-")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("ranged GET: %v", err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged GET status = %d, want 206", resp.StatusCode)
	}
	if !bytes.Equal(tail, artifact[10:]) {
		t.Fatalf("ranged bytes diverge from artifact suffix")
	}

	// Asking for a superseded version answers 410, never other bytes.
	resp, err = http.Get(td.ts.URL + PathSnapshot + "?hash=" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatalf("stale-hash GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale-hash GET status = %d, want 410", resp.StatusCode)
	}
}

func TestDistributorPublishSequenceAndDelta(t *testing.T) {
	td := newTestDist(t)
	v1 := td.dist.Manifest().ContentHash

	v2 := td.publish(t, 2)
	man := td.dist.Manifest()
	if man.Seq != 2 || man.ContentHash == v1 {
		t.Fatalf("after publish: %+v, want seq 2 and a new hash", man)
	}
	if man.Delta == nil || man.Delta.BaseHash != v1 {
		t.Fatalf("delta = %+v, want base %s", man.Delta, v1)
	}

	resp, err := http.Get(td.ts.URL + man.Delta.URL)
	if err != nil {
		t.Fatalf("GET delta: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET delta status = %d, want 200", resp.StatusCode)
	}

	// Wrong base answers 410: a delta is only valid from its exact base.
	resp, err = http.Get(td.ts.URL + PathDelta + "?base=" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatalf("wrong-base GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("wrong-base GET status = %d, want 410", resp.StatusCode)
	}

	// Reloading identical content does not republish: same hash, same seq.
	if got := td.publish(t, 2); got != v2 {
		t.Fatalf("republish changed hash: %s != %s", got, v2)
	}
	if man := td.dist.Manifest(); man.Seq != 2 {
		t.Fatalf("republish bumped seq to %d, want 2", man.Seq)
	}
}

func TestDistributorHeartbeatAndStatus(t *testing.T) {
	td := newTestDist(t)
	cur := td.dist.Manifest().ContentHash

	post := func(hb Heartbeat) *http.Response {
		t.Helper()
		body, _ := json.Marshal(hb)
		resp, err := http.Post(td.ts.URL+PathHeartbeat, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST heartbeat: %v", err)
		}
		return resp
	}

	resp := post(Heartbeat{ID: "r1", Seq: 1, ContentHash: cur, Addr: ":9001"})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat status = %d, want 200", resp.StatusCode)
	}
	if man, err := ParseManifest(body); err != nil || man.ContentHash != cur {
		t.Fatalf("heartbeat response manifest = %+v (%v), want current hash", man, err)
	}

	resp = post(Heartbeat{ID: "r2", Seq: 0, ContentHash: strings.Repeat("f", 64)})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st := td.dist.Status()
	if len(st.Replicas) != 2 || st.Divergent != 1 {
		t.Fatalf("status = %+v, want 2 replicas with 1 divergent", st)
	}
	if st.Replicas[0].ID != "r1" || st.Replicas[0].Divergent {
		t.Fatalf("r1 row = %+v, want converged", st.Replicas[0])
	}
	if st.Replicas[1].ID != "r2" || !st.Replicas[1].Divergent {
		t.Fatalf("r2 row = %+v, want divergent", st.Replicas[1])
	}

	// Malformed heartbeats answer 400 with a typed-parse error, never 5xx.
	resp, err := http.Post(td.ts.URL+PathHeartbeat, "application/json", strings.NewReader(`{"id":`))
	if err != nil {
		t.Fatalf("POST malformed heartbeat: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed heartbeat status = %d, want 400", resp.StatusCode)
	}
}

func TestReplicaColdStartFetchThenDeltaSync(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	rep, err := NewReplica(ctx, replicaOpts("r1", td.ts.URL, dir))
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	v1 := td.dist.Manifest().ContentHash
	if got := rep.Server().Snapshot().ContentHash(); got != v1 {
		t.Fatalf("cold start serves %s, want %s", got, v1)
	}
	if rep.fullFetches.Load() != 1 {
		t.Fatalf("fullFetches = %d, want 1", rep.fullFetches.Load())
	}
	if got := lastGoodHash(t, rep.opts.LastGood); got != v1 {
		t.Fatalf("last-good hash = %s, want %s", got, v1)
	}

	// Publish v2: the replica's hash matches the delta base, so sync
	// takes the incremental path and never re-downloads the artifact.
	v2 := td.publish(t, 2)
	if err := rep.syncOnce(ctx); err != nil {
		t.Fatalf("syncOnce: %v", err)
	}
	if got := rep.Server().Snapshot().ContentHash(); got != v2 {
		t.Fatalf("after sync serving %s, want %s", got, v2)
	}
	if rep.deltaFetches.Load() != 1 || rep.fullFetches.Load() != 1 {
		t.Fatalf("deltaFetches = %d fullFetches = %d, want 1 and 1",
			rep.deltaFetches.Load(), rep.fullFetches.Load())
	}
	if rep.SyncedSeq() != 2 {
		t.Fatalf("SyncedSeq = %d, want 2", rep.SyncedSeq())
	}
	// The delta path persists last-good too: a crash right now must
	// cold-start at v2, not v1.
	if got := lastGoodHash(t, rep.opts.LastGood); got != v2 {
		t.Fatalf("last-good after delta sync = %s, want %s", got, v2)
	}
}

func TestReplicaDeltaBaseMismatchTakesFullFetch(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	rep, err := NewReplica(ctx, replicaOpts("r1", td.ts.URL, dir))
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	// Two publishes while the replica isn't looking: the current delta's
	// base is v2, the replica is at v1 — the delta cannot apply, so sync
	// must go straight to the full artifact.
	td.publish(t, 2)
	v3 := td.publish(t, 3)
	if err := rep.syncOnce(ctx); err != nil {
		t.Fatalf("syncOnce: %v", err)
	}
	if got := rep.Server().Snapshot().ContentHash(); got != v3 {
		t.Fatalf("serving %s, want %s", got, v3)
	}
	if rep.deltaFetches.Load() != 0 || rep.fullFetches.Load() != 2 {
		t.Fatalf("deltaFetches = %d fullFetches = %d, want 0 and 2",
			rep.deltaFetches.Load(), rep.fullFetches.Load())
	}
}

func TestReplicaCorruptDeltaFallsBackToFull(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	// Every delta fetch is corrupted persistently; everything else is
	// clean. The delta path must exhaust its retries without ever
	// swapping a bad snapshot in, then fall back to the full artifact.
	opts := replicaOpts("r1", td.ts.URL, dir)
	opts.MaxAttempts = 2
	opts.HTTPClient = faultyClient(PathDelta, faultinject.Config{
		Seed: 7, Rate: 1, PersistentRate: 1, Kinds: []faultinject.Kind{faultinject.KindFlipByte},
	})
	rep, err := NewReplica(ctx, opts)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	v2 := td.publish(t, 2)
	if err := rep.syncOnce(ctx); err != nil {
		t.Fatalf("syncOnce: %v", err)
	}
	if got := rep.Server().Snapshot().ContentHash(); got != v2 {
		t.Fatalf("serving %s, want %s", got, v2)
	}
	if rep.deltaFallbacks.Load() != 1 {
		t.Fatalf("deltaFallbacks = %d, want 1", rep.deltaFallbacks.Load())
	}
	if rep.deltaFetches.Load() != 0 || rep.fullFetches.Load() != 2 {
		t.Fatalf("deltaFetches = %d fullFetches = %d, want 0 and 2",
			rep.deltaFetches.Load(), rep.fullFetches.Load())
	}
}

func TestReplicaRejectsCorruptArtifactBeforeSwap(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	// First artifact fetch arrives with one byte flipped; the decode
	// hash check must reject it before anything reaches the serving
	// path, and the retry (clean) must converge.
	opts := replicaOpts("r1", td.ts.URL, dir)
	opts.HTTPClient = faultyClient(PathSnapshot, faultinject.Config{
		Seed: 11, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindFlipByte},
	})
	var swapped []string
	opts.Serve.OnSwap = func(s *serve.Snapshot) { swapped = append(swapped, s.ContentHash()) }
	rep, err := NewReplica(ctx, opts)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	v1 := td.dist.Manifest().ContentHash
	if got := rep.Server().Snapshot().ContentHash(); got != v1 {
		t.Fatalf("serving %s, want %s", got, v1)
	}
	if rep.corruptRejected.Load() != 1 {
		t.Fatalf("corruptRejected = %d, want 1", rep.corruptRejected.Load())
	}
	if rep.fullFetches.Load() != 1 {
		t.Fatalf("fullFetches = %d, want 1", rep.fullFetches.Load())
	}
	// Nothing was ever swapped beyond the verified cold-start snapshot.
	if len(swapped) != 0 {
		t.Fatalf("unexpected swaps: %v", swapped)
	}
	if got := lastGoodHash(t, rep.opts.LastGood); got != v1 {
		t.Fatalf("last-good = %s, want %s", got, v1)
	}
}

func TestReplicaResumesTruncatedFetchWithRange(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	// First artifact fetch tears mid-body. The .part keeps the bytes
	// that made it to disk; the retry resumes with a ranged request and
	// completes without re-downloading the prefix.
	opts := replicaOpts("r1", td.ts.URL, dir)
	opts.HTTPClient = faultyClient(PathSnapshot, faultinject.Config{
		Seed: 13, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindTruncateBody},
	})
	rep, err := NewReplica(ctx, opts)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	v1 := td.dist.Manifest().ContentHash
	if got := rep.Server().Snapshot().ContentHash(); got != v1 {
		t.Fatalf("serving %s, want %s", got, v1)
	}
	if rep.resumedFetches.Load() != 1 {
		t.Fatalf("resumedFetches = %d, want 1", rep.resumedFetches.Load())
	}
	if rep.corruptRejected.Load() != 0 {
		t.Fatalf("corruptRejected = %d, want 0", rep.corruptRejected.Load())
	}
	// The resume consumed the .part: nothing partial is left behind.
	if _, err := os.Stat(rep.partPath(v1)); !os.IsNotExist(err) {
		t.Fatalf("part file still present after successful fetch: %v", err)
	}
}

// TestReplicaCrashRejoin is the durability satellite: a replica that
// crashed mid-download restarts instantly from its last-good artifact
// with zero network, then resumes the interrupted fetch from the
// .part file and converges.
func TestReplicaCrashRejoin(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	repA, err := NewReplica(ctx, replicaOpts("r1", td.ts.URL, dir))
	if err != nil {
		t.Fatalf("NewReplica A: %v", err)
	}
	v1 := repA.Server().Snapshot().ContentHash()

	// Two publishes after A last synced, so the rejoin cannot take the
	// delta shortcut (its base is v2, A is at v1).
	td.publish(t, 2)
	v3 := td.publish(t, 3)

	// Simulate A crashing midway through downloading v3: the first half
	// of the real artifact is on disk under the hash-keyed .part name.
	man := td.dist.Manifest()
	resp, err := http.Get(td.ts.URL + man.SnapshotURL)
	if err != nil {
		t.Fatalf("GET artifact: %v", err)
	}
	artifact, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	part := repA.partPath(v3)
	if err := os.WriteFile(part, artifact[:len(artifact)/2], 0o644); err != nil {
		t.Fatalf("writing torn part: %v", err)
	}

	// "Restart": a fresh replica over the same state directory. Cold
	// start must come from last-good — count the round trips to prove
	// no network was needed.
	ct := &countingTransport{inner: http.DefaultTransport}
	opts := replicaOpts("r1", td.ts.URL, dir)
	opts.HTTPClient = &http.Client{Transport: ct}
	repB, err := NewReplica(ctx, opts)
	if err != nil {
		t.Fatalf("NewReplica B: %v", err)
	}
	if got := repB.Server().Snapshot().ContentHash(); got != v1 {
		t.Fatalf("rejoined replica serves %s, want last-good %s", got, v1)
	}
	if n := ct.n.Load(); n != 0 {
		t.Fatalf("cold start made %d requests, want 0", n)
	}

	// First sync after rejoin: resumes the torn v3 download with a
	// ranged request and converges.
	if err := repB.syncOnce(ctx); err != nil {
		t.Fatalf("syncOnce: %v", err)
	}
	if got := repB.Server().Snapshot().ContentHash(); got != v3 {
		t.Fatalf("after rejoin sync serving %s, want %s", got, v3)
	}
	if repB.resumedFetches.Load() != 1 {
		t.Fatalf("resumedFetches = %d, want 1 (ranged resume of the torn part)", repB.resumedFetches.Load())
	}
	if got := lastGoodHash(t, opts.LastGood); got != v3 {
		t.Fatalf("last-good after rejoin = %s, want %s", got, v3)
	}
	if _, err := os.Stat(part); !os.IsNotExist(err) {
		t.Fatalf("part file survived the resume: %v", err)
	}
}

// TestFleetChaosConvergence is the headline chaos suite: one
// distributor, three replicas, fixed fault seeds. Replica 1's artifact
// fetches corrupt in flight, replica 2's tear mid-body, replica 3
// draws both kinds; mid-run one replica is killed and rejoins from its
// last-good state, and the distributor flaps through a publish. The
// fleet must converge exactly — every replica serving the
// distributor's current content hash, zero divergent — and no snapshot
// may ever have been swapped in that the distributor did not publish.
func TestFleetChaosConvergence(t *testing.T) {
	td := newTestDist(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var swapMu sync.Mutex
	swapped := make(map[string]bool)
	recordSwap := func(s *serve.Snapshot) {
		swapMu.Lock()
		swapped[s.ContentHash()] = true
		swapMu.Unlock()
	}

	kinds := [][]faultinject.Kind{
		{faultinject.KindFlipByte},
		{faultinject.KindTruncateBody},
		{faultinject.KindFlipByte, faultinject.KindTruncateBody},
	}
	dirs := make([]string, 3)
	reps := make([]*Replica, 3)
	cancels := make([]context.CancelFunc, 3)
	done := make([]chan struct{}, 3)
	ids := []string{"chaos-r1", "chaos-r2", "chaos-r3"}
	var allReps []*Replica // every instance ever started, restarts included

	start := func(i int) {
		t.Helper()
		opts := replicaOpts(ids[i], td.ts.URL, dirs[i])
		opts.HTTPClient = faultyClient(PathSnapshot, faultinject.Config{
			Seed: int64(i + 1), Rate: 1, Kinds: kinds[i],
		})
		opts.Serve.OnSwap = recordSwap
		rep, err := NewReplica(ctx, opts)
		if err != nil {
			t.Fatalf("NewReplica %s: %v", ids[i], err)
		}
		recordSwap(rep.Server().Snapshot()) // cold-start snapshot counts too
		runCtx, runCancel := context.WithCancel(ctx)
		ch := make(chan struct{})
		go func() {
			defer close(ch)
			_ = rep.Run(runCtx)
		}()
		reps[i], cancels[i], done[i] = rep, runCancel, ch
		allReps = append(allReps, rep)
	}

	for i := range reps {
		dirs[i] = t.TempDir()
		start(i)
	}

	converged := func(hash string) func() bool {
		return func() bool {
			st := td.dist.Status()
			if len(st.Replicas) != 3 || st.Divergent != 0 || st.ContentHash != hash {
				return false
			}
			for _, r := range st.Replicas {
				if r.ContentHash != hash {
					return false
				}
			}
			return true
		}
	}

	v2 := td.publish(t, 2)
	waitFor(t, 15*time.Second, "fleet convergence on v2", converged(v2))

	// Kill replica 2, then publish v3 while the distributor flaps:
	// every live replica's fetches bounce off 503s before converging.
	cancels[1]()
	<-done[1]
	td.flap.Store(true)
	v3 := td.publish(t, 3)
	time.Sleep(100 * time.Millisecond)
	td.flap.Store(false)

	// The killed replica rejoins from its last-good state.
	start(1)

	waitFor(t, 15*time.Second, "fleet convergence on v3", converged(v3))

	st := td.dist.Status()
	for _, r := range st.Replicas {
		if r.ContentHash != v3 || r.Seq != st.Seq {
			t.Fatalf("replica %s at seq %d hash %s, want seq %d hash %s",
				r.ID, r.Seq, r.ContentHash, st.Seq, v3)
		}
	}

	// Safety: every hash that ever reached a serving path was published
	// by the distributor. Corrupted artifacts never made it through.
	swapMu.Lock()
	defer swapMu.Unlock()
	for h := range swapped {
		if !td.wasPublished(h) {
			t.Fatalf("snapshot %s was swapped in but never published", h)
		}
	}

	// The chaos actually bit: flip faults were rejected by verification
	// and torn transfers were resumed, across the fleet.
	var rejected, resumed int64
	for _, rep := range allReps {
		rejected += rep.corruptRejected.Load()
		resumed += rep.resumedFetches.Load()
	}
	if rejected == 0 {
		t.Fatal("chaos run saw no corrupt-artifact rejections")
	}
	if resumed == 0 {
		t.Fatal("chaos run saw no ranged resumes")
	}
}

// TestReplicaServesLookupsAndMetrics smoke-tests the replica's own
// HTTP surface: lookups answer from the synced snapshot and /metrics
// carries the borgesd_fleet_* series.
func TestReplicaServesLookupsAndMetrics(t *testing.T) {
	td := newTestDist(t)
	dir := t.TempDir()
	ctx := context.Background()

	rep, err := NewReplica(ctx, replicaOpts("r1", td.ts.URL, dir))
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	rts := httptest.NewServer(rep.Server().Handler())
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/v1/as/3356")
	if err != nil {
		t.Fatalf("GET /v1/as/3356: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("Lumen Technologies")) {
		t.Fatalf("lookup = %d %q, want 200 with Lumen", resp.StatusCode, body)
	}

	resp, err = http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"borgesd_fleet_synced_seq",
		"borgesd_fleet_fetch_full_total 1",
		"borgesd_fleet_corrupt_rejected_total 0",
		"borgesd_fleet_watch_reconnects_total",
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Fatalf("/metrics missing %q", series)
		}
	}

	// The distributor's own /metrics carries the publish-side series.
	resp, err = http.Get(td.ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET distributor /metrics: %v", err)
	}
	dm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"borgesd_fleet_publish_seq 1",
		"borgesd_fleet_replicas 0",
	} {
		if !bytes.Contains(dm, []byte(series)) {
			t.Fatalf("distributor /metrics missing %q", series)
		}
	}
}
