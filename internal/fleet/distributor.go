package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/nu-aqualab/borges/internal/mapdiff"
	"github.com/nu-aqualab/borges/internal/serve"
)

// Distributor route paths. The snapshot and delta URLs advertised in
// the manifest carry the version as a query parameter so a fetch can
// never observe bytes of a different version than it asked for.
const (
	PathManifest  = "/fleet/manifest"
	PathSnapshot  = "/fleet/snapshot"
	PathDelta     = "/fleet/delta"
	PathStatus    = "/fleet/status"
	PathHeartbeat = "/fleet/heartbeat"
)

// DistributorOptions tune a Distributor.
type DistributorOptions struct {
	// ReplicaTTL is how long a replica stays listed in /fleet/status
	// after its last heartbeat (default 30s). Expiry happens at read
	// time; a replica that heartbeats again simply reappears.
	ReplicaTTL time.Duration
	// Logf receives one structured line per publish. Nil disables.
	Logf func(format string, args ...any)
	// now overrides the clock in tests.
	now func() time.Time
}

// Distributor wraps a serve.Server with the fleet distribution
// surface. Every snapshot swap on the underlying server republishes
// the artifact automatically (wired through serve.Options.OnSwap), so
// the ordinary reload story — /admin/reload, delta reloads, pipeline
// reloads — is also the fleet publish story.
type Distributor struct {
	srv  *serve.Server
	opts DistributorOptions

	mu          sync.Mutex
	seq         uint64
	hash        string
	artifact    []byte // current snapbin artifact, served with Range support
	publishedAt time.Time
	delta       []byte // JSONL delta deltaBase→hash, nil when none
	deltaBase   string
	prev        *serve.Snapshot // previous publish, for delta computation
	replicas    map[string]replicaReport
}

// replicaReport is one replica's last heartbeat plus when it arrived.
type replicaReport struct {
	hb   Heartbeat
	seen time.Time
}

// NewDistributor builds the serve.Server itself (so it can hook
// OnSwap/ExtraMetrics into serveOpts) and publishes the initial
// snapshot as sequence 1. Callers that supplied their own OnSwap or
// ExtraMetrics keep them — the distributor chains, never replaces.
func NewDistributor(snap *serve.Snapshot, serveOpts serve.Options, opts DistributorOptions) (*Distributor, error) {
	if opts.ReplicaTTL <= 0 {
		opts.ReplicaTTL = 30 * time.Second
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	d := &Distributor{opts: opts, replicas: make(map[string]replicaReport)}
	innerSwap := serveOpts.OnSwap
	serveOpts.OnSwap = func(s *serve.Snapshot) {
		if innerSwap != nil {
			innerSwap(s)
		}
		if err := d.publish(s); err != nil {
			d.logf(`{"event":"fleet_publish","ok":false,"error":%q}`, err.Error())
		}
	}
	innerMetrics := serveOpts.ExtraMetrics
	serveOpts.ExtraMetrics = func(w io.Writer) {
		if innerMetrics != nil {
			innerMetrics(w)
		}
		d.writeMetrics(w)
	}
	srv, err := serve.NewServer(snap, serveOpts)
	if err != nil {
		return nil, err
	}
	d.srv = srv
	if err := d.publish(snap); err != nil {
		return nil, fmt.Errorf("fleet: publishing initial snapshot: %w", err)
	}
	return d, nil
}

// Server returns the underlying lookup server.
func (d *Distributor) Server() *serve.Server { return d.srv }

// publish encodes next as a snapbin artifact and makes it the current
// version. A snapshot whose content hash matches the current publish
// is skipped — republishing identical content would only churn replica
// fetches. Called with the server's reload latch held (via OnSwap), so
// publishes are serialized and sequence order matches swap order.
func (d *Distributor) publish(next *serve.Snapshot) error {
	var buf bytes.Buffer
	hash, err := serve.WriteSnapshot(&buf, next)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if hash == d.hash {
		return nil
	}
	d.delta, d.deltaBase = nil, ""
	if d.prev != nil {
		delta := mapdiff.ComputeDelta(d.prev.Mapping(), next.Mapping())
		if !delta.Empty() {
			var db bytes.Buffer
			if err := mapdiff.WriteDelta(&db, delta); err != nil {
				return err
			}
			d.delta, d.deltaBase = db.Bytes(), d.hash
		}
	}
	d.seq++
	d.hash = hash
	d.artifact = buf.Bytes()
	d.publishedAt = d.opts.now()
	d.prev = next
	d.logf(`{"event":"fleet_publish","ok":true,"seq":%d,"hash":%q,"bytes":%d,"delta_bytes":%d}`,
		d.seq, d.hash, len(d.artifact), len(d.delta))
	return nil
}

// Manifest returns the current manifest.
func (d *Distributor) Manifest() Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.manifestLocked()
}

func (d *Distributor) manifestLocked() Manifest {
	m := Manifest{
		Seq:         d.seq,
		ContentHash: d.hash,
		Size:        int64(len(d.artifact)),
		SnapshotURL: PathSnapshot + "?hash=" + d.hash,
	}
	if d.delta != nil {
		m.Delta = &DeltaInfo{
			BaseHash: d.deltaBase,
			URL:      PathDelta + "?base=" + d.deltaBase,
			Size:     int64(len(d.delta)),
		}
	}
	return m
}

// Handler returns the distributor's HTTP handler: the /fleet/* surface
// mounted in front of the lookup server's own routes.
func (d *Distributor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathManifest, d.handleManifest)
	mux.HandleFunc("GET "+PathSnapshot, d.handleSnapshot)
	mux.HandleFunc("GET "+PathDelta, d.handleDelta)
	mux.HandleFunc("GET "+PathStatus, d.handleStatus)
	mux.HandleFunc("POST "+PathHeartbeat, d.handleHeartbeat)
	mux.Handle("/", d.srv.Handler())
	return mux
}

// Serve listens on addr and serves the distributor surface plus the
// lookup API until ctx is cancelled, with the lookup server's graceful
// shutdown discipline.
func (d *Distributor) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return d.ServeListener(ctx, ln)
}

// ServeListener serves on an existing listener until ctx is cancelled.
func (d *Distributor) ServeListener(ctx context.Context, ln net.Listener) error {
	return d.srv.ServeHandler(ctx, ln, d.Handler())
}

func (d *Distributor) handleManifest(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	m := d.manifestLocked()
	d.mu.Unlock()
	fleetJSON(w, http.StatusOK, m)
}

func (d *Distributor) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	hash, artifact, at := d.hash, d.artifact, d.publishedAt
	d.mu.Unlock()
	if want := r.URL.Query().Get("hash"); want != "" && want != hash {
		// The version the replica is (possibly mid-resume) fetching has
		// been superseded. 410 tells it to refetch the manifest rather
		// than splice bytes of two different artifacts.
		fleetJSON(w, http.StatusGone, map[string]string{
			"error": "snapshot " + want + " superseded", "current": hash,
		})
		return
	}
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Header().Set("Content-Type", "application/octet-stream")
	// ServeContent supplies Range/If-Range handling for free over the
	// in-memory artifact — resumable downloads with zero extra state.
	http.ServeContent(w, r, "snapshot.snapbin", at, bytes.NewReader(artifact))
}

func (d *Distributor) handleDelta(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	delta, base, at := d.delta, d.deltaBase, d.publishedAt
	d.mu.Unlock()
	want := r.URL.Query().Get("base")
	if delta == nil || (want != "" && want != base) {
		fleetJSON(w, http.StatusGone, map[string]string{
			"error": "no delta from base " + want,
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	http.ServeContent(w, r, "delta.jsonl", at, bytes.NewReader(delta))
}

// handleHeartbeat records one replica report and answers with the
// current manifest, so every heartbeat doubles as a change
// notification: a replica learns about a new publish at latest one
// heartbeat interval after it happens, even if its watch stream and
// polls are down.
func (d *Distributor) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		fleetJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	hb, err := ParseHeartbeat(body)
	if err != nil {
		fleetJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	d.mu.Lock()
	d.replicas[hb.ID] = replicaReport{hb: *hb, seen: d.opts.now()}
	m := d.manifestLocked()
	d.mu.Unlock()
	fleetJSON(w, http.StatusOK, m)
}

// StatusReplica is one replica's row in /fleet/status.
type StatusReplica struct {
	ID          string  `json:"id"`
	Seq         uint64  `json:"seq"`
	ContentHash string  `json:"content_hash"`
	Addr        string  `json:"addr,omitempty"`
	AgeSeconds  float64 `json:"age_seconds"`
	// Divergent flags a replica serving a different content hash than
	// the distributor's current publish.
	Divergent bool `json:"divergent"`
}

// Status is the /fleet/status body: the current publish plus every
// live replica's last-known version.
type Status struct {
	Seq         uint64          `json:"seq"`
	ContentHash string          `json:"content_hash"`
	Replicas    []StatusReplica `json:"replicas"`
	Divergent   int             `json:"divergent"`
}

// Status computes the current fleet view, expiring replicas whose last
// heartbeat is older than ReplicaTTL.
func (d *Distributor) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.opts.now()
	st := Status{Seq: d.seq, ContentHash: d.hash, Replicas: []StatusReplica{}}
	for id, rep := range d.replicas {
		age := now.Sub(rep.seen)
		if age > d.opts.ReplicaTTL {
			delete(d.replicas, id)
			continue
		}
		row := StatusReplica{
			ID:          rep.hb.ID,
			Seq:         rep.hb.Seq,
			ContentHash: rep.hb.ContentHash,
			Addr:        rep.hb.Addr,
			AgeSeconds:  age.Seconds(),
			Divergent:   rep.hb.ContentHash != d.hash,
		}
		if row.Divergent {
			st.Divergent++
		}
		st.Replicas = append(st.Replicas, row)
	}
	sort.Slice(st.Replicas, func(i, j int) bool { return st.Replicas[i].ID < st.Replicas[j].ID })
	return st
}

func (d *Distributor) handleStatus(w http.ResponseWriter, r *http.Request) {
	fleetJSON(w, http.StatusOK, d.Status())
}

// writeMetrics appends the distributor's borgesd_fleet_* series to the
// /metrics response (wired via serve.Options.ExtraMetrics).
func (d *Distributor) writeMetrics(w io.Writer) {
	st := d.Status()
	d.mu.Lock()
	age := d.opts.now().Sub(d.publishedAt).Seconds()
	d.mu.Unlock()
	fmt.Fprintf(w, "# HELP borgesd_fleet_publish_seq Sequence number of the current snapshot publish.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_publish_seq gauge\n")
	fmt.Fprintf(w, "borgesd_fleet_publish_seq %d\n", st.Seq)
	fmt.Fprintf(w, "# HELP borgesd_fleet_last_publish_age_seconds Seconds since the current snapshot was published.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_last_publish_age_seconds gauge\n")
	fmt.Fprintf(w, "borgesd_fleet_last_publish_age_seconds %.3f\n", age)
	fmt.Fprintf(w, "# HELP borgesd_fleet_replicas Replicas with a live heartbeat.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_replicas gauge\n")
	fmt.Fprintf(w, "borgesd_fleet_replicas %d\n", len(st.Replicas))
	fmt.Fprintf(w, "# HELP borgesd_fleet_replicas_divergent Live replicas serving a different content hash than the current publish.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_replicas_divergent gauge\n")
	fmt.Fprintf(w, "borgesd_fleet_replicas_divergent %d\n", st.Divergent)
}

func (d *Distributor) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// fleetJSON writes one JSON response body.
func fleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
