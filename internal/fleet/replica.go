package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nu-aqualab/borges/client"
	"github.com/nu-aqualab/borges/internal/mapdiff"
	"github.com/nu-aqualab/borges/internal/resilience"
	"github.com/nu-aqualab/borges/internal/serve"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// errSuperseded reports that the artifact version a fetch asked for
// was replaced mid-flight (the distributor answered 410). Not
// transient: retrying the same URL cannot succeed — the follower loop
// refetches the manifest on its next trigger instead.
var errSuperseded = errors.New("fleet: artifact version superseded during fetch")

// ReplicaOptions tune a Replica.
type ReplicaOptions struct {
	// ID identifies this replica in heartbeats and /fleet/status.
	// Required; keep it stable across restarts.
	ID string
	// Distributor is the distributor's base URL ("http://host:port").
	// Required.
	Distributor string
	// LastGood is the path where every verified artifact is persisted
	// (atomic temp+fsync+rename), and the first place a cold start
	// looks: a crashed replica restarts in milliseconds serving its
	// last-good snapshot while re-syncing in the background. Required.
	LastGood string
	// Addr, when set, is advertised in heartbeats so /fleet/status can
	// name where this replica serves.
	Addr string
	// HTTPClient overrides the fetch transport (default
	// http.DefaultClient). Chaos tests inject faults here.
	HTTPClient *http.Client
	// FS overrides the filesystem used for last-good and .part I/O
	// (default the real one). Chaos tests inject disk faults here the
	// same way HTTPClient injects transport faults.
	FS vfs.FS
	// PollInterval is the manifest poll fallback period (default 5s).
	// The watch stream and heartbeat responses usually deliver change
	// notifications faster; the poll is the floor on staleness when
	// both are down.
	PollInterval time.Duration
	// HeartbeatInterval is the served-version report period (default 5s).
	HeartbeatInterval time.Duration
	// MaxAttempts bounds attempts per fetch, including retries of
	// transport faults and 429/503 (default 5).
	MaxAttempts int
	// RetryBaseDelay is the first retry backoff (default 250ms).
	RetryBaseDelay time.Duration
	// RetrySeed makes retry jitter deterministic in tests.
	RetrySeed int64
	// BreakerThreshold is the consecutive-failure count that opens the
	// per-distributor circuit (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit denies fetches
	// before probing (default 2s).
	BreakerCooldown time.Duration
	// Serve configures the replica's local lookup server. Prepared is
	// owned by the replica (reloads are driven by the sync loop);
	// OnSwap and ExtraMetrics are chained, not replaced.
	Serve serve.Options
	// Logf receives one structured line per sync action. Nil disables.
	Logf func(format string, args ...any)
	// sleepFn overrides retry sleeping in tests.
	sleepFn func(ctx context.Context, d time.Duration) error
}

// Replica is one follower: a local lookup server whose snapshots come
// from a distributor, each fetched resumably, verified against the
// manifest's content hash before it ever touches the serving path, and
// persisted locally so the next cold start needs no network.
type Replica struct {
	opts ReplicaOptions
	base string // distributor URL, trailing slash trimmed
	http *http.Client
	fsys vfs.FS
	exec *resilience.Executor
	srv  *serve.Server

	mu     sync.Mutex
	staged *serve.Snapshot // verified, awaiting the server's swap

	syncedSeq           atomic.Uint64
	fullFetches         atomic.Int64
	deltaFetches        atomic.Int64
	deltaFallbacks      atomic.Int64
	corruptRejected     atomic.Int64
	resumedFetches      atomic.Int64
	watchReconnects     atomic.Int64
	heartbeatErrs       atomic.Int64
	lastGoodQuarantined atomic.Int64
	lastGoodRepairs     atomic.Int64
}

// NewReplica joins a distributor. Cold start prefers the local
// last-good artifact — decoded and hash-verified in milliseconds, no
// network — and only blocks on a first full fetch when none exists.
// Either way the replica starts serving a verified snapshot; call Run
// to start the follower loop that keeps it converged.
func NewReplica(ctx context.Context, opts ReplicaOptions) (*Replica, error) {
	if opts.ID == "" {
		return nil, errors.New("fleet: ReplicaOptions.ID is required")
	}
	if opts.Distributor == "" {
		return nil, errors.New("fleet: ReplicaOptions.Distributor is required")
	}
	if opts.LastGood == "" {
		return nil, errors.New("fleet: ReplicaOptions.LastGood is required")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 5 * time.Second
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 5 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	r := &Replica{
		opts: opts,
		base: strings.TrimRight(opts.Distributor, "/"),
		http: hc,
		fsys: vfs.Or(opts.FS),
		exec: &resilience.Executor{
			Policy: &resilience.Policy{
				MaxAttempts: opts.MaxAttempts,
				BaseDelay:   opts.RetryBaseDelay,
				Seed:        opts.RetrySeed,
				SleepFn:     opts.sleepFn,
			},
			Breakers: &resilience.BreakerSet{
				Threshold: opts.BreakerThreshold,
				Cooldown:  opts.BreakerCooldown,
			},
		},
	}

	snap, err := r.coldStart(ctx)
	if err != nil {
		return nil, err
	}
	serveOpts := opts.Serve
	serveOpts.Prepared = r.prepared
	if serveOpts.FS == nil {
		serveOpts.FS = r.fsys
	}
	// The replica's last-good artifact joins the server's scrub sweep:
	// corruption at rest is quarantined and repaired from the
	// distributor instead of waiting to bite the next cold start.
	serveOpts.ScrubTargets = append(append([]serve.ScrubTarget(nil), serveOpts.ScrubTargets...),
		serve.ScrubTargetFunc("fleet-last-good", r.scrubLastGood))
	innerMetrics := serveOpts.ExtraMetrics
	serveOpts.ExtraMetrics = func(w io.Writer) {
		if innerMetrics != nil {
			innerMetrics(w)
		}
		r.writeMetrics(w)
	}
	srv, err := serve.NewServer(snap, serveOpts)
	if err != nil {
		return nil, err
	}
	r.srv = srv
	return r, nil
}

// coldStart resolves the replica's first snapshot: the last-good
// artifact when it decodes and verifies, otherwise a blocking first
// fetch from the distributor.
func (r *Replica) coldStart(ctx context.Context) (*serve.Snapshot, error) {
	// Mapped load: the cold-start artifact serves straight off the page
	// cache, and the mapping survives the atomic-rename overwrite a
	// later fetch performs (the old inode lives until munmap).
	if snap, err := serve.LoadSnapshotFileMappedFS(r.fsys, r.opts.LastGood); err == nil {
		r.logf(`{"event":"fleet_coldstart","source":"last-good","hash":%q}`, snap.ContentHash())
		return snap, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		// A corrupt last-good (torn by a crash outside the atomic
		// rename, bit rot) is not fatal — fall through to a full fetch
		// and overwrite it with a verified artifact.
		r.logf(`{"event":"fleet_coldstart","source":"last-good","ok":false,"error":%q}`, err.Error())
	}
	man, err := r.fetchManifest(ctx)
	if err != nil {
		return nil, fmt.Errorf("fleet: no last-good artifact and manifest fetch failed: %w", err)
	}
	snap, err := r.fetchFull(ctx, man)
	if err != nil {
		return nil, fmt.Errorf("fleet: first snapshot fetch failed: %w", err)
	}
	r.syncedSeq.Store(man.Seq)
	r.logf(`{"event":"fleet_coldstart","source":"fetch","seq":%d,"hash":%q}`, man.Seq, snap.ContentHash())
	return snap, nil
}

// Server returns the replica's local lookup server.
func (r *Replica) Server() *serve.Server { return r.srv }

// SyncedSeq returns the last manifest sequence this replica converged
// to (0 until the first successful sync after a last-good cold start).
func (r *Replica) SyncedSeq() uint64 { return r.syncedSeq.Load() }

// Serve listens on addr and serves the replica's lookup API until ctx
// is cancelled. Run must be started separately — serving and following
// are independent so either can be tested without the other.
func (r *Replica) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.srv.ServeListener(ctx, ln)
}

// Run drives the follower loop until ctx is cancelled: ride the
// distributor's /v1/watch stream for publish notifications, poll the
// manifest as a fallback, heartbeat the served version, and sync
// whenever any of them reports a change. Fetch failures are retried
// under the replica's policy and breaker; a sync that ultimately fails
// leaves the current snapshot serving and the next trigger tries
// again.
func (r *Replica) Run(ctx context.Context) error {
	notify := make(chan struct{}, 1)
	poke := func() {
		select {
		case notify <- struct{}{}:
		default:
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.rideWatch(ctx, poke)
	}()
	defer wg.Wait()

	poll := time.NewTicker(r.opts.PollInterval)
	defer poll.Stop()
	hb := time.NewTicker(r.opts.HeartbeatInterval)
	defer hb.Stop()

	r.syncOnce(ctx)
	r.heartbeat(ctx, poke)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-notify:
			r.syncOnce(ctx)
		case <-poll.C:
			r.syncOnce(ctx)
		case <-hb.C:
			r.heartbeat(ctx, poke)
		}
	}
}

// rideWatch follows the distributor's /v1/watch SSE stream and pokes
// the sync loop on every publish event. The client reconnects forever
// under its own policy-driven backoff; reconnect counts surface as the
// borgesd_fleet_watch_reconnects_total metric.
func (r *Replica) rideWatch(ctx context.Context, poke func()) {
	wc, err := client.New(client.Config{
		BaseURL:        r.base,
		HTTPClient:     r.http,
		RetryBaseDelay: r.opts.RetryBaseDelay,
		RetrySeed:      r.opts.RetrySeed,
		OnReconnect: func(n int64, err error) {
			r.watchReconnects.Store(n)
		},
	})
	if err != nil {
		r.logf(`{"event":"fleet_watch","ok":false,"error":%q}`, err.Error())
		return
	}
	defer wc.Close()
	err = wc.Watch(ctx, 0, func(ev *client.WatchEvent) error {
		poke()
		return nil
	})
	if err != nil && ctx.Err() == nil {
		r.logf(`{"event":"fleet_watch","ok":false,"error":%q}`, err.Error())
	}
}

// syncOnce converges the replica one step: fetch the manifest, and if
// the published hash differs from the serving one, fetch the new
// version — the mapdiff delta path when this replica's hash matches
// the delta's base, the full artifact otherwise or when the delta path
// fails — verify it, and swap it in.
func (r *Replica) syncOnce(ctx context.Context) error {
	man, err := r.fetchManifest(ctx)
	if err != nil {
		r.logf(`{"event":"fleet_sync","ok":false,"stage":"manifest","error":%q}`, err.Error())
		return err
	}
	cur := r.srv.Snapshot()
	if man.ContentHash == cur.ContentHash() {
		r.syncedSeq.Store(man.Seq)
		return nil
	}
	if man.Delta != nil && man.Delta.BaseHash == cur.ContentHash() {
		next, derr := r.applyDelta(ctx, man, cur)
		if derr == nil {
			return r.swap(ctx, next, man, "delta")
		}
		// ErrDeltaMismatch, a corrupt delta, or a mid-flight
		// supersession: fall back to the full artifact.
		r.deltaFallbacks.Add(1)
		r.logf(`{"event":"fleet_sync","stage":"delta","fallback":true,"error":%q}`, derr.Error())
	}
	next, err := r.fetchFull(ctx, man)
	if err != nil {
		r.logf(`{"event":"fleet_sync","ok":false,"stage":"full","error":%q}`, err.Error())
		return err
	}
	return r.swap(ctx, next, man, "full")
}

// swap stages the verified snapshot and drives it through the server's
// validate-then-swap reload.
func (r *Replica) swap(ctx context.Context, next *serve.Snapshot, man *Manifest, how string) error {
	r.mu.Lock()
	r.staged = next
	r.mu.Unlock()
	if _, err := r.srv.Reload(ctx); err != nil {
		r.logf(`{"event":"fleet_sync","ok":false,"stage":"swap","error":%q}`, err.Error())
		return err
	}
	r.syncedSeq.Store(man.Seq)
	r.logf(`{"event":"fleet_sync","ok":true,"how":%q,"seq":%d,"hash":%q}`, how, man.Seq, man.ContentHash)
	return nil
}

// prepared is the replica's serve.PreparedSource: it hands the staged,
// already-verified snapshot to the server's reload path. Reloads not
// driven by the sync loop (an operator's bare /admin/reload) have
// nothing staged and fail without disturbing the serving snapshot.
func (r *Replica) prepared(ctx context.Context) (*serve.Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.staged == nil {
		return nil, errors.New("fleet: no staged snapshot (replica reloads are driven by its sync loop)")
	}
	s := r.staged
	r.staged = nil
	return s, nil
}

// fetchManifest GETs and validates the distributor's manifest under
// the retry policy and breaker.
func (r *Replica) fetchManifest(ctx context.Context) (*Manifest, error) {
	var man *Manifest
	err := r.exec.Do(ctx, r.base, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+PathManifest, nil)
		if err != nil {
			return err
		}
		resp, err := r.http.Do(req)
		if err != nil {
			return resilience.MarkTransient(err)
		}
		defer resp.Body.Close()
		if err := fetchStatus(resp); err != nil {
			return err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return resilience.MarkTransient(err)
		}
		man, err = ParseManifest(data)
		return err
	})
	if err != nil {
		return nil, err
	}
	return man, nil
}

// applyDelta fetches the published delta and patches the serving
// snapshot incrementally. The patched snapshot must reproduce the
// manifest's content hash exactly — the delta path and the full path
// are interchangeable by construction, and this check is what makes a
// corrupted or misdirected delta unable to reach the serving path.
func (r *Replica) applyDelta(ctx context.Context, man *Manifest, cur *serve.Snapshot) (*serve.Snapshot, error) {
	var next *serve.Snapshot
	err := r.exec.Do(ctx, r.base, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+man.Delta.URL, nil)
		if err != nil {
			return err
		}
		resp, err := r.http.Do(req)
		if err != nil {
			return resilience.MarkTransient(err)
		}
		defer resp.Body.Close()
		if err := fetchStatus(resp); err != nil {
			return err
		}
		d, err := mapdiff.ReadDelta(io.LimitReader(resp.Body, man.Delta.Size+1))
		if err != nil {
			return resilience.MarkTransient(fmt.Errorf("fleet: reading delta: %w", err))
		}
		patched, err := cur.ApplyDelta(d)
		if err != nil {
			return err // ErrDeltaMismatch et al: non-transient, caller falls back
		}
		if patched.ContentHash() != man.ContentHash {
			r.corruptRejected.Add(1)
			return fmt.Errorf("fleet: delta-patched snapshot hash %s != manifest %s",
				patched.ContentHash(), man.ContentHash)
		}
		next = patched
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.deltaFetches.Add(1)
	// Persist the new version as last-good (atomic temp+fsync+rename)
	// so a crash right after the swap still cold-starts current. The
	// re-encode necessarily reproduces the verified hash — the encoding
	// is deterministic over logical content.
	if _, err := serve.WriteSnapshotFileFS(r.fsys, r.opts.LastGood, next); err != nil {
		r.logf(`{"event":"fleet_lastgood","ok":false,"error":%q}`, err.Error())
	}
	return next, nil
}

// partPath names the in-progress download for one artifact version.
// Keying the filename by content hash means a crashed fetch can only
// ever be resumed toward the same bytes it started with.
func (r *Replica) partPath(hash string) string {
	return r.opts.LastGood + "." + hash[:16] + ".part"
}

// fetchFull downloads the full artifact resumably: progress lands in a
// hash-keyed .part file, a retry (or a restart after a crash) resumes
// with a ranged GET past the bytes already on disk, and only an
// artifact whose decode reproduces the manifest's content hash is
// renamed into place as last-good and returned for serving.
func (r *Replica) fetchFull(ctx context.Context, man *Manifest) (*serve.Snapshot, error) {
	part := r.partPath(man.ContentHash)
	var next *serve.Snapshot
	err := r.exec.Do(ctx, r.base, func(ctx context.Context) error {
		var err error
		next, err = r.fetchFullOnce(ctx, man, part)
		return err
	})
	if err != nil {
		return nil, err
	}
	r.fullFetches.Add(1)
	return next, nil
}

// fetchFullOnce is one fetch attempt. Transient outcomes (transport
// faults, torn transfers, corrupt payloads, 429/503) are marked for
// retry; a torn transfer leaves the .part in place so the retry
// resumes, while a corrupt payload removes it so the retry starts
// clean.
func (r *Replica) fetchFullOnce(ctx context.Context, man *Manifest, part string) (*serve.Snapshot, error) {
	var offset int64
	if fi, err := r.fsys.Stat(part); err == nil {
		offset = fi.Size()
	}
	if offset > man.Size {
		// Stale or foreign partial; impossible to resume meaningfully.
		_ = r.fsys.Remove(part)
		offset = 0
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+man.SnapshotURL, nil)
	if err != nil {
		return nil, err
	}
	if offset > 0 {
		req.Header.Set("Range", "bytes="+strconv.FormatInt(offset, 10)+"-")
	}
	resp, err := r.http.Do(req)
	if err != nil {
		return nil, resilience.MarkTransient(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Full body regardless of the Range request: start over.
		offset = 0
	case http.StatusPartialContent:
		r.resumedFetches.Add(1)
	case http.StatusRequestedRangeNotSatisfiable:
		_ = r.fsys.Remove(part)
		return nil, resilience.MarkTransient(fmt.Errorf("fleet: range %d rejected for %s", offset, man.ContentHash))
	default:
		if err := fetchStatus(resp); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("fleet: unexpected snapshot fetch status %s", resp.Status)
	}

	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if offset == 0 {
		flags |= os.O_TRUNC
	}
	f, err := r.fsys.OpenFile(part, flags, 0o644)
	if err != nil {
		return nil, err
	}
	_, copyErr := io.Copy(f, resp.Body)
	syncErr := f.Sync()
	closeErr := f.Close()
	if copyErr != nil {
		// Torn mid-transfer: keep the .part — the retry resumes past
		// what made it to disk.
		return nil, resilience.MarkTransient(fmt.Errorf("fleet: snapshot transfer torn: %w", copyErr))
	}
	if syncErr != nil {
		return nil, syncErr
	}
	if closeErr != nil {
		return nil, closeErr
	}

	data, err := r.fsys.ReadFile(part)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < man.Size {
		// The server ended the body early without an error (connection
		// closed cleanly mid-artifact). Resume on retry.
		return nil, resilience.MarkTransient(fmt.Errorf("fleet: short artifact: %d of %d bytes", len(data), man.Size))
	}
	snap, err := serve.LoadSnapshot(bytes.NewReader(data))
	if err != nil {
		// Complete but corrupt (flipped bytes, wrong sections): the
		// .part cannot be healed by resuming. Discard and refetch.
		r.corruptRejected.Add(1)
		_ = r.fsys.Remove(part)
		return nil, resilience.MarkTransient(fmt.Errorf("fleet: artifact rejected: %w", err))
	}
	if snap.ContentHash() != man.ContentHash {
		r.corruptRejected.Add(1)
		_ = r.fsys.Remove(part)
		return nil, resilience.MarkTransient(fmt.Errorf("fleet: artifact hash %s != manifest %s",
			snap.ContentHash(), man.ContentHash))
	}
	// Verified: promote to last-good. The bytes are already fsynced;
	// the rename makes the swap atomic, and the directory fsync makes
	// it durable — same discipline as snapbin.WriteFile.
	if err := r.fsys.Rename(part, r.opts.LastGood); err != nil {
		return nil, err
	}
	_ = r.fsys.SyncDir(filepath.Dir(r.opts.LastGood))
	return snap, nil
}

// heartbeat POSTs the served version to the distributor. The response
// is the current manifest; a hash mismatch pokes the sync loop, so
// heartbeats double as a change-notification channel.
func (r *Replica) heartbeat(ctx context.Context, poke func()) {
	cur := r.srv.Snapshot()
	hb := Heartbeat{
		ID:          r.opts.ID,
		Seq:         r.syncedSeq.Load(),
		ContentHash: cur.ContentHash(),
		Addr:        r.opts.Addr,
	}
	body, err := json.Marshal(hb)
	if err != nil {
		r.heartbeatErrs.Add(1)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+PathHeartbeat, bytes.NewReader(body))
	if err != nil {
		r.heartbeatErrs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.http.Do(req)
	if err != nil {
		r.heartbeatErrs.Add(1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.heartbeatErrs.Add(1)
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return
	}
	if man, err := ParseManifest(data); err == nil && man.ContentHash != cur.ContentHash() {
		poke()
	}
}

// scrubLastGood is the replica's scrub target: re-verify the last-good
// artifact at rest and, when it is corrupt, quarantine it and repair by
// re-fetching the current version from the distributor — the replica is
// exactly the node that can restore its own durable state from the
// source of truth. A missing file is not corruption (a fresh replica
// simply hasn't persisted yet); a repair failure leaves the quarantine
// in place and reports the error, and the next cycle tries again.
func (r *Replica) scrubLastGood(ctx context.Context) serve.ScrubResult {
	path := r.opts.LastGood
	if _, err := r.fsys.Stat(path); err != nil {
		return serve.ScrubResult{}
	}
	res := serve.ScrubResult{Checked: 1}
	if _, err := serve.LoadSnapshotFileFS(r.fsys, path); err == nil {
		return res
	}
	if err := r.fsys.Rename(path, path+".corrupt"); err == nil {
		res.Quarantined = 1
		r.lastGoodQuarantined.Add(1)
		r.logf(`{"event":"fleet_lastgood_quarantine","path":%q}`, path)
	}
	man, err := r.fetchManifest(ctx)
	if err != nil {
		res.Err = fmt.Errorf("fleet: last-good repair: %w", err)
		return res
	}
	// fetchFull verifies against the manifest hash and promotes the
	// artifact into place as last-good — the repair is the normal
	// download path, not a special case.
	if _, err := r.fetchFull(ctx, man); err != nil {
		res.Err = fmt.Errorf("fleet: last-good repair: %w", err)
		return res
	}
	res.Repaired = 1
	r.lastGoodRepairs.Add(1)
	r.logf(`{"event":"fleet_lastgood_repair","ok":true,"hash":%q}`, man.ContentHash)
	return res
}

// fetchStatus classifies a non-200 fleet response: 429/503 become
// transient StatusErrors carrying the Retry-After hint, 410 a
// supersession, the rest plain errors.
func fetchStatus(resp *http.Response) error {
	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent:
		return nil
	case http.StatusGone:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errSuperseded
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return &resilience.StatusError{
			Code:       resp.StatusCode,
			RetryAfter: resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
		}
	default:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: distributor returned %s", resp.Status)
	}
}

// writeMetrics appends the replica's borgesd_fleet_* series to its
// /metrics response.
func (r *Replica) writeMetrics(w io.Writer) {
	st := r.exec.Stats()
	fmt.Fprintf(w, "# HELP borgesd_fleet_synced_seq Last distributor manifest sequence this replica converged to.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_synced_seq gauge\n")
	fmt.Fprintf(w, "borgesd_fleet_synced_seq %d\n", r.syncedSeq.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_fetch_retries_total Fetch attempts retried after transient faults.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_fetch_retries_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_fetch_retries_total %d\n", st.Retries)
	fmt.Fprintf(w, "# HELP borgesd_fleet_breaker_trips_total Distributor circuit-breaker openings.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_breaker_trips_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_breaker_trips_total %d\n", st.BreakerTrips)
	fmt.Fprintf(w, "# HELP borgesd_fleet_fetch_full_total Full artifact downloads completed and verified.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_fetch_full_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_fetch_full_total %d\n", r.fullFetches.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_fetch_delta_total Incremental delta syncs completed and verified.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_fetch_delta_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_fetch_delta_total %d\n", r.deltaFetches.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_delta_fallbacks_total Delta syncs abandoned for a full fetch.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_delta_fallbacks_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_delta_fallbacks_total %d\n", r.deltaFallbacks.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_corrupt_rejected_total Downloads rejected by content verification before any swap.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_corrupt_rejected_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_corrupt_rejected_total %d\n", r.corruptRejected.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_resumed_fetches_total Artifact downloads resumed with a ranged request.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_resumed_fetches_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_resumed_fetches_total %d\n", r.resumedFetches.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_watch_reconnects_total Reconnects of the distributor watch stream.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_watch_reconnects_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_watch_reconnects_total %d\n", r.watchReconnects.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_heartbeat_errors_total Heartbeats that failed to reach the distributor.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_heartbeat_errors_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_heartbeat_errors_total %d\n", r.heartbeatErrs.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_lastgood_quarantined_total Corrupt last-good artifacts moved aside by the scrubber.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_lastgood_quarantined_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_lastgood_quarantined_total %d\n", r.lastGoodQuarantined.Load())
	fmt.Fprintf(w, "# HELP borgesd_fleet_lastgood_repairs_total Last-good artifacts rebuilt from the distributor after quarantine.\n")
	fmt.Fprintf(w, "# TYPE borgesd_fleet_lastgood_repairs_total counter\n")
	fmt.Fprintf(w, "borgesd_fleet_lastgood_repairs_total %d\n", r.lastGoodRepairs.Load())
}

func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}
