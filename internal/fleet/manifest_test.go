package fleet

import (
	"errors"
	"strings"
	"testing"
)

const (
	hashA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	hashB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
)

func TestParseManifestValid(t *testing.T) {
	m, err := ParseManifest([]byte(`{
		"seq": 7,
		"content_hash": "` + hashA + `",
		"size": 1024,
		"snapshot_url": "/fleet/snapshot?hash=` + hashA + `",
		"delta": {"base_hash": "` + hashB + `", "url": "/fleet/delta?base=` + hashB + `", "size": 64}
	}`))
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if m.Seq != 7 || m.ContentHash != hashA || m.Size != 1024 {
		t.Fatalf("manifest fields wrong: %+v", m)
	}
	if m.Delta == nil || m.Delta.BaseHash != hashB || m.Delta.Size != 64 {
		t.Fatalf("delta fields wrong: %+v", m.Delta)
	}
}

func TestParseManifestRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"seq":`,
		"zero seq":        `{"seq":0,"content_hash":"` + hashA + `","size":1,"snapshot_url":"/s"}`,
		"short hash":      `{"seq":1,"content_hash":"abc","size":1,"snapshot_url":"/s"}`,
		"uppercase hash":  `{"seq":1,"content_hash":"` + strings.ToUpper(hashA) + `","size":1,"snapshot_url":"/s"}`,
		"zero size":       `{"seq":1,"content_hash":"` + hashA + `","size":0,"snapshot_url":"/s"}`,
		"negative size":   `{"seq":1,"content_hash":"` + hashA + `","size":-5,"snapshot_url":"/s"}`,
		"empty url":       `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":""}`,
		"absolute url":    `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":"http://evil.example/x"}`,
		"bad url":         `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":"::bad::"}`,
		"delta bad hash":  `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":"/s","delta":{"base_hash":"xyz","url":"/d","size":1}}`,
		"delta self base": `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":"/s","delta":{"base_hash":"` + hashA + `","url":"/d","size":1}}`,
		"delta zero size": `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":"/s","delta":{"base_hash":"` + hashB + `","url":"/d","size":0}}`,
		"delta abs url":   `{"seq":1,"content_hash":"` + hashA + `","size":1,"snapshot_url":"/s","delta":{"base_hash":"` + hashB + `","url":"https://evil/d","size":1}}`,
	}
	for name, in := range cases {
		if _, err := ParseManifest([]byte(in)); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: err = %v, want ErrBadManifest", name, err)
		}
	}
}

func TestParseHeartbeatValid(t *testing.T) {
	h, err := ParseHeartbeat([]byte(`{"id":"r1","seq":3,"content_hash":"` + hashA + `","addr":":8081"}`))
	if err != nil {
		t.Fatalf("ParseHeartbeat: %v", err)
	}
	if h.ID != "r1" || h.Seq != 3 || h.ContentHash != hashA || h.Addr != ":8081" {
		t.Fatalf("heartbeat fields wrong: %+v", h)
	}
}

func TestParseHeartbeatRejects(t *testing.T) {
	longID := strings.Repeat("x", maxIDLen+1)
	cases := map[string]string{
		"not json":   `{`,
		"no id":      `{"seq":1,"content_hash":"` + hashA + `"}`,
		"long id":    `{"id":"` + longID + `","seq":1,"content_hash":"` + hashA + `"}`,
		"bad hash":   `{"id":"r1","seq":1,"content_hash":"zz"}`,
		"long addr":  `{"id":"r1","seq":1,"content_hash":"` + hashA + `","addr":"` + longID + `"}`,
		"array body": `[1,2,3]`,
	}
	for name, in := range cases {
		if _, err := ParseHeartbeat([]byte(in)); !errors.Is(err, ErrBadHeartbeat) {
			t.Errorf("%s: err = %v, want ErrBadHeartbeat", name, err)
		}
	}
}

// FuzzParseManifest holds the manifest decoder to its contract: any
// input yields either a validated manifest or an error wrapping
// ErrBadManifest — never a panic, never a half-validated value.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(`{"seq":1,"content_hash":"` + hashA + `","size":10,"snapshot_url":"/fleet/snapshot?hash=` + hashA + `"}`))
	f.Add([]byte(`{"seq":0}`))
	f.Add([]byte(`{"seq":-1,"size":-99}`))
	f.Add([]byte(`{"seq":1,"content_hash":"` + hashA + `","size":10,"snapshot_url":"/s","delta":{"base_hash":"` + hashB + `","url":"/d","size":5}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if m.Seq == 0 || !validHash(m.ContentHash) || m.Size <= 0 || !validRelURL(m.SnapshotURL) {
			t.Fatalf("invalid manifest passed validation: %+v", m)
		}
		if m.Delta != nil && (!validHash(m.Delta.BaseHash) || m.Delta.Size <= 0 || !validRelURL(m.Delta.URL)) {
			t.Fatalf("invalid delta passed validation: %+v", m.Delta)
		}
	})
}

// FuzzParseHeartbeat is FuzzParseManifest for the heartbeat decoder.
func FuzzParseHeartbeat(f *testing.F) {
	f.Add([]byte(`{"id":"r1","seq":1,"content_hash":"` + hashA + `"}`))
	f.Add([]byte(`{"id":""}`))
	f.Add([]byte(`{"seq":18446744073709551615}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeartbeat(data)
		if err != nil {
			if !errors.Is(err, ErrBadHeartbeat) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if h.ID == "" || len(h.ID) > maxIDLen || !validHash(h.ContentHash) {
			t.Fatalf("invalid heartbeat passed validation: %+v", h)
		}
	})
}
