package whois

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

const sample = `
# CAIDA AS2Org sample
{"type":"Organization","organizationId":"LVLT-ARIN","name":"Level 3 Parent, LLC","country":"US","source":"ARIN"}
{"type":"Organization","organizationId":"CL-1234-ARIN","name":"CenturyLink Communications, LLC","country":"US","source":"ARIN"}
{"type":"ASN","asn":"3356","organizationId":"LVLT-ARIN","name":"LEVEL3","source":"ARIN"}
{"type":"ASN","asn":"3549","organizationId":"LVLT-ARIN","name":"LVLT-3549","source":"ARIN"}
{"type":"ASN","asn":"209","organizationId":"CL-1234-ARIN","name":"CENTURYLINK-US-LEGACY-QWEST","source":"ARIN"}
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample), "20240701")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumOrgs() != 2 || s.NumASNs() != 3 {
		t.Fatalf("got %d orgs / %d ASNs, want 2/3", s.NumOrgs(), s.NumASNs())
	}
	org := s.OrgOf(3356)
	if org == nil || org.Name != "Level 3 Parent, LLC" {
		t.Fatalf("OrgOf(3356) = %+v", org)
	}
	if got := s.Members("LVLT-ARIN"); len(got) != 2 || got[0] != 3356 || got[1] != 3549 {
		t.Fatalf("Members(LVLT-ARIN) = %v", got)
	}
	if s.OrgOf(999) != nil {
		t.Error("OrgOf(unknown) should be nil")
	}
	if s.AS(209).Name != "CENTURYLINK-US-LEGACY-QWEST" {
		t.Errorf("AS(209) = %+v", s.AS(209))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{"type":"Mystery"}`,
		`{"type":"ASN","asn":"notanumber","organizationId":"X"}`,
		`{"type":"Organization","name":"missing id"}`,
		`{not json}`,
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c), "x"); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	s1, err := Parse(strings.NewReader(sample), "20240701")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s1); err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytes.NewReader(buf.Bytes()), "20240701")
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumOrgs() != s1.NumOrgs() || s2.NumASNs() != s1.NumASNs() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			s2.NumOrgs(), s2.NumASNs(), s1.NumOrgs(), s1.NumASNs())
	}
	for _, a := range s1.ASNs() {
		if s2.AS(a) == nil || s2.AS(a).OrgID != s1.AS(a).OrgID {
			t.Errorf("ASN %v lost or remapped in round trip", a)
		}
	}
	// Writing twice must be byte-identical (deterministic order).
	var buf2 bytes.Buffer
	if err := Write(&buf2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("Write output is not deterministic")
	}
}

func TestAddASStubOrgAndReplace(t *testing.T) {
	s := NewSnapshot("x")
	s.AddAS(ASRecord{ASN: 64496 + 1, OrgID: "STUB-1", Source: "RIPE"})
	if s.Org("STUB-1") == nil {
		t.Fatal("stub org not created")
	}
	// Re-assign the ASN to another org; membership must move.
	s.AddAS(ASRecord{ASN: 64497, OrgID: "STUB-2", Source: "RIPE"})
	if len(s.Members("STUB-1")) != 0 {
		t.Errorf("old org still has members: %v", s.Members("STUB-1"))
	}
	if got := s.Members("STUB-2"); len(got) != 1 || got[0] != 64497 {
		t.Errorf("Members(STUB-2) = %v", got)
	}
}

func TestSiblingSets(t *testing.T) {
	s, err := Parse(strings.NewReader(sample), "20240701")
	if err != nil {
		t.Fatal(err)
	}
	sets := s.SiblingSets()
	if len(sets) != 2 {
		t.Fatalf("got %d sibling sets, want 2", len(sets))
	}
	for _, set := range sets {
		if set.Source != cluster.FeatureOIDW {
			t.Errorf("source = %v, want OID_W", set.Source)
		}
	}
	// Deterministic order (sorted org IDs): CL-1234-ARIN before LVLT-ARIN.
	if sets[0].Evidence != asnum.WhoisOrg("CL-1234-ARIN").String() {
		t.Errorf("first set evidence = %q", sets[0].Evidence)
	}
	if len(sets[1].ASNs) != 2 {
		t.Errorf("LVLT set = %v", sets[1].ASNs)
	}
}

func TestEmptyAndCommentOnly(t *testing.T) {
	s, err := Parse(strings.NewReader("\n# only comments\n\n"), "d")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumOrgs() != 0 || s.NumASNs() != 0 {
		t.Error("expected empty snapshot")
	}
	if got := s.SiblingSets(); len(got) != 0 {
		t.Errorf("SiblingSets on empty = %v", got)
	}
}
