package whois

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the CAIDA JSON-lines parser on arbitrary input:
// it must either reject cleanly or produce a snapshot that round-trips.
func FuzzParse(f *testing.F) {
	f.Add(`{"type":"Organization","organizationId":"A","name":"Acme","country":"US","source":"ARIN"}`)
	f.Add(`{"type":"ASN","asn":"3356","organizationId":"A","name":"LEVEL3","source":"ARIN"}`)
	f.Add("# comment\n\n")
	f.Add(`{"type":"ASN","asn":"not-a-number","organizationId":"A"}`)
	f.Add(`{"type":"Organization"}`)
	f.Add(`{]`)
	f.Add(strings.Repeat(`{"type":"Organization","organizationId":"X"}`+"\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("Write after successful Parse: %v", err)
		}
		s2, err := Parse(bytes.NewReader(buf.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput: %q", err, buf.String())
		}
		if s2.NumOrgs() != s.NumOrgs() || s2.NumASNs() != s.NumASNs() {
			t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
				s2.NumOrgs(), s2.NumASNs(), s.NumOrgs(), s.NumASNs())
		}
	})
}
