// Package whois models WHOIS-derived AS-to-Organization data in the
// format published by CAIDA's AS2Org dataset: a JSON-lines file mixing
// Organization records and ASN records, linked by organizationId. This is
// the OID_W source of Borges (§4.1).
//
// Each ASN must be assigned to an organization when allocated, so WHOIS
// provides an AS-to-Organization mapping for all allocated networks; the
// paper uses this universe as the vertex set for the Organization Factor
// (§5.4).
package whois

import (
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// Org is one WHOIS organization record (CAIDA "Organization" type).
type Org struct {
	// ID is the RIR organization identifier, e.g. "LVLT-ARIN".
	ID string `json:"organizationId"`
	// Name is the registered organization name.
	Name string `json:"name"`
	// Country is the ISO 3166-1 alpha-2 registration country.
	Country string `json:"country"`
	// Source is the RIR the record came from (ARIN, RIPE, APNIC, …).
	Source string `json:"source"`
	// Changed is the RIR's last-modified date (YYYYMMDD), if known.
	Changed string `json:"changed,omitempty"`
}

// ASRecord links one ASN to its WHOIS organization (CAIDA "ASN" type).
type ASRecord struct {
	ASN asnum.ASN
	// OrgID references Org.ID.
	OrgID string
	// Name is the AS's registered network name (e.g. "LEVEL3").
	Name string
	// OpaqueID is the RIR's opaque handle, if published.
	OpaqueID string
	// Source is the RIR the record came from.
	Source string
}

// Snapshot is a parsed AS2Org snapshot.
type Snapshot struct {
	// Date is the snapshot date in YYYYMMDD form (e.g. "20240701").
	Date string

	orgs    map[string]*Org
	asns    map[asnum.ASN]*ASRecord
	members map[string][]asnum.ASN
}

// NewSnapshot returns an empty snapshot for the given date.
func NewSnapshot(date string) *Snapshot {
	return &Snapshot{
		Date:    date,
		orgs:    make(map[string]*Org),
		asns:    make(map[asnum.ASN]*ASRecord),
		members: make(map[string][]asnum.ASN),
	}
}

// AddOrg inserts or replaces an organization record.
func (s *Snapshot) AddOrg(o Org) {
	cp := o
	s.orgs[o.ID] = &cp
}

// AddAS inserts or replaces an AS record. If the record's organization is
// unknown a stub Org is created, mirroring CAIDA's behaviour of keeping
// every allocated ASN mapped.
func (s *Snapshot) AddAS(r ASRecord) {
	if prev, ok := s.asns[r.ASN]; ok {
		// Replacement: remove from old membership list.
		old := s.members[prev.OrgID]
		for i, a := range old {
			if a == r.ASN {
				s.members[prev.OrgID] = append(old[:i], old[i+1:]...)
				break
			}
		}
	}
	cp := r
	s.asns[r.ASN] = &cp
	if _, ok := s.orgs[r.OrgID]; !ok {
		s.orgs[r.OrgID] = &Org{ID: r.OrgID, Source: r.Source}
	}
	s.members[r.OrgID] = append(s.members[r.OrgID], r.ASN)
}

// NumOrgs returns the number of organization records.
func (s *Snapshot) NumOrgs() int { return len(s.orgs) }

// NumASNs returns the number of AS records.
func (s *Snapshot) NumASNs() int { return len(s.asns) }

// Org returns the organization record for id, or nil.
func (s *Snapshot) Org(id string) *Org { return s.orgs[id] }

// AS returns the AS record for a, or nil.
func (s *Snapshot) AS(a asnum.ASN) *ASRecord { return s.asns[a] }

// OrgOf returns the organization record owning a, or nil if a is unknown.
func (s *Snapshot) OrgOf(a asnum.ASN) *Org {
	r := s.asns[a]
	if r == nil {
		return nil
	}
	return s.orgs[r.OrgID]
}

// Members returns the sorted ASNs registered under org id.
func (s *Snapshot) Members(id string) []asnum.ASN {
	m := append([]asnum.ASN(nil), s.members[id]...)
	asnum.Sort(m)
	return m
}

// ASNs returns all ASNs in the snapshot, sorted.
func (s *Snapshot) ASNs() []asnum.ASN {
	out := make([]asnum.ASN, 0, len(s.asns))
	for a := range s.asns {
		out = append(out, a)
	}
	asnum.Sort(out)
	return out
}

// OrgIDs returns all organization IDs, sorted.
func (s *Snapshot) OrgIDs() []string {
	out := make([]string, 0, len(s.orgs))
	for id := range s.orgs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SiblingSets converts the snapshot's organization memberships into
// sibling sets (the OID_W feature). Every organization — including
// single-AS organizations — yields one set, so consumers can register the
// full WHOIS universe.
func (s *Snapshot) SiblingSets() []cluster.SiblingSet {
	ids := s.OrgIDs()
	out := make([]cluster.SiblingSet, 0, len(ids))
	for _, id := range ids {
		members := s.Members(id)
		if len(members) == 0 {
			continue
		}
		out = append(out, cluster.SiblingSet{
			ASNs:     members,
			Source:   cluster.FeatureOIDW,
			Evidence: asnum.WhoisOrg(id).String(),
		})
	}
	return out
}
