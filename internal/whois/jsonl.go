package whois

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// record is the on-disk shape of one CAIDA AS2Org JSON-lines record. The
// dataset mixes two record types distinguished by the "type" field:
//
//	{"type":"Organization","organizationId":"LVLT-ARIN","name":"Level 3 Parent, LLC","country":"US","source":"ARIN"}
//	{"type":"ASN","asn":"3356","organizationId":"LVLT-ARIN","name":"LEVEL3","opaqueId":"…","source":"ARIN"}
type record struct {
	Type     string `json:"type"`
	OrgID    string `json:"organizationId"`
	Name     string `json:"name"`
	Country  string `json:"country,omitempty"`
	Source   string `json:"source,omitempty"`
	Changed  string `json:"changed,omitempty"`
	ASN      string `json:"asn,omitempty"`
	OpaqueID string `json:"opaqueId,omitempty"`
}

// Parse reads a CAIDA AS2Org JSON-lines stream into a Snapshot. Blank
// lines and '#' comment lines are skipped. Unknown record types are an
// error; malformed lines report their line number.
func Parse(r io.Reader, date string) (*Snapshot, error) {
	s := NewSnapshot(date)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("whois: line %d: %w", line, err)
		}
		switch rec.Type {
		case "Organization":
			if rec.OrgID == "" {
				return nil, fmt.Errorf("whois: line %d: Organization record missing organizationId", line)
			}
			s.AddOrg(Org{ID: rec.OrgID, Name: rec.Name, Country: rec.Country,
				Source: rec.Source, Changed: rec.Changed})
		case "ASN":
			if rec.OrgID == "" {
				return nil, fmt.Errorf("whois: line %d: ASN record missing organizationId", line)
			}
			a, err := asnum.Parse(rec.ASN)
			if err != nil {
				return nil, fmt.Errorf("whois: line %d: %w", line, err)
			}
			s.AddAS(ASRecord{ASN: a, OrgID: rec.OrgID, Name: rec.Name,
				OpaqueID: rec.OpaqueID, Source: rec.Source})
		default:
			return nil, fmt.Errorf("whois: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: scan: %w", err)
	}
	return s, nil
}

// Write serializes the snapshot back to CAIDA AS2Org JSON-lines form,
// organizations first, then AS records, both in sorted order for
// deterministic output.
func Write(w io.Writer, s *Snapshot) error {
	if err := WriteOrgs(w, s); err != nil {
		return err
	}
	return WriteASNs(w, s)
}

// WriteOrgs serializes only the organization records, in sorted order.
// Together with WriteASNs it lets a streaming producer append each
// record class separately (organizations inline, AS records spooled)
// and still end up with the canonical organizations-first layout.
func WriteOrgs(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, id := range s.OrgIDs() {
		o := s.Org(id)
		if err := enc.Encode(record{Type: "Organization", OrgID: o.ID,
			Name: o.Name, Country: o.Country, Source: o.Source, Changed: o.Changed}); err != nil {
			return fmt.Errorf("whois: write org %s: %w", id, err)
		}
	}
	return bw.Flush()
}

// WriteASNs serializes only the AS records, in sorted order.
func WriteASNs(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, a := range s.ASNs() {
		r := s.AS(a)
		if err := enc.Encode(record{Type: "ASN",
			ASN:   fmt.Sprintf("%d", uint32(r.ASN)),
			OrgID: r.OrgID, Name: r.Name, OpaqueID: r.OpaqueID, Source: r.Source}); err != nil {
			return fmt.Errorf("whois: write asn %v: %w", a, err)
		}
	}
	return bw.Flush()
}
