// Package classify implements the favicon/company classification stage
// of Borges's web-based inference (§4.3.3, Figure 6). Networks whose
// websites display the same favicon are candidates for common ownership,
// but default icons shipped by web technologies (Bootstrap, WordPress,
// GoDaddy, IXC Soft, …) would tie unrelated companies together. The
// decision tree therefore runs, per shared-favicon group:
//
//  1. Blocklist (Appendix D.1): URLs on mainstream communication
//     platforms are removed; groups that shrink below two URLs are
//     discarded.
//  2. Step 1 — same favicon AND same brand label ("www.orange.es" /
//     "www.orange.pl") ⇒ accepted as one company without an LLM call.
//  3. Step 2 — same favicon, differing labels ⇒ the LLM is shown the
//     icon and the final-URL list (Listing 3) and asked to name the
//     company or the hosting technology.
package classify

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/favicon"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// DefaultModel is the model the paper used for this stage.
const DefaultModel = "gpt-4o-mini"

// Decision is the outcome category for one favicon group.
type Decision uint8

// Decisions.
const (
	// DecisionCompany marks a group judged to belong to one company.
	DecisionCompany Decision = iota
	// DecisionFramework marks a group sharing only a web technology's
	// default icon.
	DecisionFramework
	// DecisionUnknown marks a group the classifier could not name.
	DecisionUnknown
	// DecisionDiscarded marks a group removed by the blocklist or too
	// small after filtering.
	DecisionDiscarded
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionCompany:
		return "company"
	case DecisionFramework:
		return "framework"
	case DecisionUnknown:
		return "unknown"
	case DecisionDiscarded:
		return "discarded"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// Outcome is the classification of one favicon group.
type Outcome struct {
	Group    favicon.Group
	Decision Decision
	// Step records which tree stage decided: 1 (favicon+label) or 2
	// (LLM); 0 for discarded groups.
	Step int
	// Name is the company or technology name.
	Name string
	// Err records an LLM failure for this group.
	Err error
}

// Classifier runs the decision tree.
type Classifier struct {
	// Provider generates completions for step 2; required unless
	// DisableStep2 is set.
	Provider llm.Provider
	// Model overrides DefaultModel when non-empty.
	Model string
	// Blocklist filters platform URLs; nil selects the Appendix D.1
	// default.
	Blocklist *urlmatch.Blocklist
	// IconSource returns the icon bytes for a favicon hash; nil sends
	// step-2 prompts without an image (the URL list alone).
	IconSource func(hash string) []byte
	// DisableStep2 stops after the favicon+label rule (ablation: the
	// paper reports 43 false negatives without step 2).
	DisableStep2 bool
	// Concurrency bounds parallel LLM calls (default 8).
	Concurrency int
}

// BuildPrompt renders the Listing 3 prompt text for a group's final
// URLs. The favicon travels separately as an image attachment.
func BuildPrompt(urls []string) string {
	quoted := make([]string, len(urls))
	for i, u := range urls {
		quoted[i] = "'" + u + "'"
	}
	return fmt.Sprintf("Accessing these URLs [%s] returned the attached favicon. "+
		"If it is a telecommunications company, what is the company's name? "+
		"If it is a subsidiary, provide the parent company's name. "+
		"If it is not a telecommunications company, is it a hosting technology? "+
		"Reply only with the name of the company or technology. "+
		"If it is none of the above, reply 'I don't know'.", strings.Join(quoted, ", "))
}

// Classify runs the tree over one group.
func (c *Classifier) Classify(ctx context.Context, g favicon.Group) Outcome {
	out := Outcome{Group: g}
	bl := c.Blocklist
	if bl == nil {
		bl = urlmatch.DefaultSubdomainBlocklist()
	}
	kept := favicon.Group{Hash: g.Hash, ASNsByURL: g.ASNsByURL}
	for _, u := range g.URLs {
		if !bl.BlockedURL(u) {
			kept.URLs = append(kept.URLs, u)
			kept.ASNs = append(kept.ASNs, g.ASNsByURL[u]...)
		}
	}
	if len(kept.URLs) < 2 {
		out.Decision = DecisionDiscarded
		return out
	}
	kept.ASNs = asnum.Dedup(kept.ASNs)
	out.Group = kept

	// Step 1: identical favicon + identical brand label.
	if kept.SameBrandLabel() {
		out.Decision = DecisionCompany
		out.Step = 1
		out.Name = urlmatch.BrandLabelOfURL(kept.URLs[0])
		return out
	}
	if c.DisableStep2 {
		out.Decision = DecisionUnknown
		out.Step = 1
		return out
	}

	// Step 2: LLM reclassification of same-favicon groups.
	out.Step = 2
	model := c.Model
	if model == "" {
		model = DefaultModel
	}
	msg := llm.Message{Role: llm.RoleUser, Content: BuildPrompt(kept.URLs)}
	if c.IconSource != nil {
		if icon := c.IconSource(kept.Hash); len(icon) > 0 {
			msg.Images = [][]byte{icon}
		}
	}
	resp, err := c.Provider.Complete(ctx, llm.Request{
		Model:       model,
		Temperature: 0,
		TopP:        1,
		Messages:    []llm.Message{msg},
	})
	if err != nil {
		out.Err = fmt.Errorf("classify: favicon %.12s: %w", kept.Hash, err)
		out.Decision = DecisionUnknown
		return out
	}
	reply := strings.TrimSpace(resp.Content)
	switch {
	case simllm.IsDontKnow(reply):
		out.Decision = DecisionUnknown
	case simllm.IsFramework(reply):
		out.Decision = DecisionFramework
		out.Name = reply
	default:
		out.Decision = DecisionCompany
		out.Name = reply
	}
	return out
}

// ClassifyAll runs every group with bounded concurrency, preserving
// input order. When ctx is cancelled mid-batch, groups still waiting
// for a worker slot are marked Unknown with ctx.Err() instead of
// issuing further model calls.
func (c *Classifier) ClassifyAll(ctx context.Context, groups []favicon.Group) []Outcome {
	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	out := make([]Outcome, len(groups))
	sem := make(chan struct{}, conc)
	done := make(chan struct{})
	for i, g := range groups {
		go func(i int, g favicon.Group) {
			select {
			case sem <- struct{}{}:
				out[i] = c.Classify(ctx, g)
				<-sem
			case <-ctx.Done():
				out[i] = Outcome{Group: g, Decision: DecisionUnknown, Err: ctx.Err()}
			}
			done <- struct{}{}
		}(i, g)
	}
	for range groups {
		<-done
	}
	return out
}

// SiblingSets converts company outcomes into favicon-feature sibling
// sets, in deterministic (hash-sorted) order.
func SiblingSets(outcomes []Outcome) []cluster.SiblingSet {
	sorted := append([]Outcome(nil), outcomes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Group.Hash < sorted[j].Group.Hash })
	var out []cluster.SiblingSet
	for _, o := range sorted {
		if o.Decision != DecisionCompany || len(o.Group.ASNs) == 0 {
			continue
		}
		evidence := o.Name
		if evidence == "" {
			evidence = "favicon " + o.Group.Hash
		}
		out = append(out, cluster.SiblingSet{
			ASNs:     o.Group.ASNs,
			Source:   cluster.FeatureFavicon,
			Evidence: evidence,
		})
	}
	return out
}
