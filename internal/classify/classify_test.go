package classify

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/favicon"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/simllm"
	"github.com/nu-aqualab/borges/internal/websim"
)

func group(hash string, urlASNs map[string][]asnum.ASN) favicon.Group {
	g := favicon.Group{Hash: hash, ASNsByURL: urlASNs}
	for u, asns := range urlASNs {
		g.URLs = append(g.URLs, u)
		g.ASNs = append(g.ASNs, asns...)
	}
	g.ASNs = asnum.Dedup(g.ASNs)
	for i := 1; i < len(g.URLs); i++ { // insertion-sort URLs for determinism
		for j := i; j > 0 && g.URLs[j] < g.URLs[j-1]; j-- {
			g.URLs[j], g.URLs[j-1] = g.URLs[j-1], g.URLs[j]
		}
	}
	return g
}

func iconHash(id string) string {
	sum := sha256.Sum256(websim.FaviconBytes(id))
	return hex.EncodeToString(sum[:])
}

func simClassifier() *Classifier {
	return &Classifier{
		Provider: simllm.NewModel(),
		IconSource: func(hash string) []byte {
			// Invert the known test icons.
			for _, id := range []string{"brand:claro", "framework:bootstrap", "site:mystery"} {
				if iconHash(id) == hash {
					return websim.FaviconBytes(id)
				}
			}
			return nil
		},
	}
}

func TestStep1SameBrandLabel(t *testing.T) {
	c := simClassifier()
	g := group("any-hash", map[string][]asnum.ASN{
		"https://www.orange.es/": {12479},
		"https://www.orange.pl/": {5617},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionCompany || out.Step != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out.Name != "orange" {
		t.Errorf("name = %q", out.Name)
	}
}

func TestStep2KnownBrand(t *testing.T) {
	c := simClassifier()
	g := group(iconHash("brand:claro"), map[string][]asnum.ASN{
		"https://www.clarochile.cl/": {27995},
		"https://www.claropr.com/":   {10396},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionCompany || out.Step != 2 || out.Name != "Claro" {
		t.Fatalf("out = %+v", out)
	}
}

func TestStep2Framework(t *testing.T) {
	c := simClassifier()
	g := group(iconHash("framework:bootstrap"), map[string][]asnum.ASN{
		"https://www.anosbd.com/":     {64501},
		"https://www.rptechzone.in/":  {64502},
		"https://bapenda.riau.go.id/": {64503},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionFramework || out.Name != "Bootstrap" {
		t.Fatalf("out = %+v", out)
	}
}

func TestStep2Unknown(t *testing.T) {
	c := simClassifier()
	g := group(iconHash("site:mystery"), map[string][]asnum.ASN{
		"https://www.de-cix.net/":   {1},
		"https://www.aqaba-ix.com/": {2},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionUnknown || out.Step != 2 {
		t.Fatalf("out = %+v", out)
	}
}

func TestBlocklistDiscards(t *testing.T) {
	c := simClassifier()
	// After removing the facebook URL only one remains → discarded.
	g := group("h", map[string][]asnum.ASN{
		"https://www.facebook.com/ispA": {1},
		"https://real-isp.test/":        {2},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionDiscarded {
		t.Fatalf("out = %+v", out)
	}
}

func TestBlocklistDropsASNsOfRemovedURLs(t *testing.T) {
	c := simClassifier()
	g := group("h", map[string][]asnum.ASN{
		"https://www.facebook.com/ispA": {111},
		"https://www.orange.es/":        {12479},
		"https://www.orange.pl/":        {5617},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionCompany {
		t.Fatalf("out = %+v", out)
	}
	for _, a := range out.Group.ASNs {
		if a == 111 {
			t.Error("ASN behind a blocklisted URL must not survive")
		}
	}
	if len(out.Group.ASNs) != 2 {
		t.Errorf("ASNs = %v", out.Group.ASNs)
	}
}

func TestDisableStep2Ablation(t *testing.T) {
	c := simClassifier()
	c.DisableStep2 = true
	g := group(iconHash("brand:claro"), map[string][]asnum.ASN{
		"https://www.clarochile.cl/": {27995},
		"https://www.claropr.com/":   {10396},
	})
	out := c.Classify(context.Background(), g)
	if out.Decision != DecisionUnknown || out.Step != 1 {
		t.Fatalf("ablation out = %+v", out)
	}
}

type failingProvider struct{}

func (failingProvider) Complete(context.Context, llm.Request) (llm.Response, error) {
	return llm.Response{}, errors.New("provider down")
}

func TestProviderErrorSurfaces(t *testing.T) {
	c := &Classifier{Provider: failingProvider{}}
	g := group("h", map[string][]asnum.ASN{
		"https://a-isp.test/": {1},
		"https://b-isp.test/": {2},
	})
	out := c.Classify(context.Background(), g)
	if out.Err == nil || out.Decision != DecisionUnknown {
		t.Fatalf("out = %+v", out)
	}
}

func TestClassifyAllOrder(t *testing.T) {
	c := simClassifier()
	var groups []favicon.Group
	for i := 0; i < 20; i++ {
		groups = append(groups, group("h", map[string][]asnum.ASN{
			"https://www.orange.es/": {asnum.ASN(100 + i)},
			"https://www.orange.pl/": {asnum.ASN(200 + i)},
		}))
	}
	outs := c.ClassifyAll(context.Background(), groups)
	if len(outs) != 20 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Decision != DecisionCompany {
			t.Errorf("outcome %d = %+v", i, o)
		}
		if o.Group.ASNs[0] != asnum.ASN(100+i) {
			t.Errorf("outcome %d out of order: %v", i, o.Group.ASNs)
		}
	}
}

func TestSiblingSets(t *testing.T) {
	outcomes := []Outcome{
		{Decision: DecisionCompany, Name: "Orange",
			Group: favicon.Group{Hash: "bb", ASNs: []asnum.ASN{1, 2}}},
		{Decision: DecisionFramework, Name: "Bootstrap",
			Group: favicon.Group{Hash: "aa", ASNs: []asnum.ASN{3, 4}}},
		{Decision: DecisionCompany,
			Group: favicon.Group{Hash: "a0", ASNs: []asnum.ASN{5, 6}}},
		{Decision: DecisionUnknown,
			Group: favicon.Group{Hash: "cc", ASNs: []asnum.ASN{7}}},
	}
	sets := SiblingSets(outcomes)
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	// Hash order: a0 before bb.
	if sets[0].Evidence != "favicon a0" || sets[1].Evidence != "Orange" {
		t.Errorf("evidence = %q, %q", sets[0].Evidence, sets[1].Evidence)
	}
	for _, s := range sets {
		if s.Source != cluster.FeatureFavicon {
			t.Errorf("source = %v", s.Source)
		}
	}
}

func TestBuildPrompt(t *testing.T) {
	p := BuildPrompt([]string{"https://a.test/", "https://b.test/"})
	for _, want := range []string{
		"Accessing these URLs ['https://a.test/', 'https://b.test/']",
		"returned the attached favicon",
		"If it is a subsidiary, provide the parent company's name",
		"reply 'I don't know'",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestDecisionString(t *testing.T) {
	if DecisionCompany.String() != "company" || DecisionDiscarded.String() != "discarded" {
		t.Error("Decision.String broken")
	}
	if Decision(42).String() != "Decision(42)" {
		t.Error("unknown decision")
	}
}
