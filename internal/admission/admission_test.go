package admission

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock shared with the controller.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// admit is a test helper that fails on refusal.
func admit(t *testing.T, c *Controller, class Class, client string) func(time.Duration) {
	t.Helper()
	release, dec := c.Admit(context.Background(), class, client)
	if !dec.Admitted {
		t.Fatalf("expected admission for %v, got %+v", class, dec)
	}
	return release
}

// waitStats polls until cond observes a satisfying Stats or the
// deadline passes.
func waitStats(t *testing.T, c *Controller, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(c.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached; stats = %+v", c.Stats())
}

func TestNewRequiresMaxInflight(t *testing.T) {
	if c := New(Config{}); c != nil {
		t.Fatal("New with MaxInflight 0 should return nil (admission disabled)")
	}
	if c := New(Config{MaxInflight: 4}); c == nil {
		t.Fatal("New with MaxInflight 4 returned nil")
	}
}

func TestAIMDShrinksOnSlowGrowsOnFast(t *testing.T) {
	target := 100 * time.Millisecond
	c := New(Config{MaxInflight: 8, TargetLatency: target})
	if got := c.Stats().Limit; got != 8 {
		t.Fatalf("initial limit = %v, want 8", got)
	}

	// Three over-target completions: 8 → 8β → 8β² → 8β³.
	for i := 0; i < 3; i++ {
		admit(t, c, Point, "a")(2 * target)
	}
	want := 8 * aimdBeta * aimdBeta * aimdBeta
	if got := c.Stats().Limit; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("limit after 3 slow completions = %v, want %v", got, want)
	}

	// Fast completions climb back and saturate at the ceiling.
	for i := 0; i < 200; i++ {
		admit(t, c, Point, "a")(0)
	}
	if got := c.Stats().Limit; got != 8 {
		t.Fatalf("limit after recovery = %v, want 8 (the ceiling)", got)
	}

	// The floor holds no matter how many slow completions land.
	c2 := New(Config{MaxInflight: 4, MinInflight: 2, TargetLatency: target})
	for i := 0; i < 100; i++ {
		admit(t, c2, Point, "a")(2 * target)
	}
	if got := c2.Stats().Limit; got != 2 {
		t.Fatalf("limit floor = %v, want MinInflight 2", got)
	}
}

// TestPriorityShedOrder saturates a 1-slot limiter and checks each
// class's fate: Critical admitted, Search shed immediately, Point
// queued until the slot frees, further Point shed on queue overflow.
func TestPriorityShedOrder(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 1, ShedSearchFirst: true})
	held := admit(t, c, Point, "a") // occupy the only slot

	// Critical bypasses the saturated limiter.
	admit(t, c, Critical, "a")(0)

	// Search sheds first: refused immediately, 503, Retry-After set.
	_, dec := c.Admit(context.Background(), Search, "a")
	if dec.Admitted || dec.Status != 503 || dec.RetryAfter <= 0 || dec.Reason != "saturated" {
		t.Fatalf("search under saturation: %+v", dec)
	}

	// Point queues (in a goroutine: it blocks until the slot frees).
	admitted := make(chan func(time.Duration), 1)
	go func() {
		release, dec := c.Admit(context.Background(), Point, "a")
		if dec.Admitted {
			admitted <- release
		}
	}()
	waitStats(t, c, func(s Stats) bool { return s.QueueDepth == 1 })

	// Queue is full now: the next Point sheds last, but does shed.
	_, dec = c.Admit(context.Background(), Point, "a")
	if dec.Admitted || dec.Status != 503 || dec.Reason != "queue-full" {
		t.Fatalf("point with full queue: %+v", dec)
	}

	st := c.Stats()
	if st.ShedSearch != 1 || st.ShedPoint != 1 {
		t.Fatalf("shed counters = point %d / search %d, want 1/1", st.ShedPoint, st.ShedSearch)
	}

	// Freeing the slot admits the queued waiter FIFO.
	held(0)
	select {
	case release := <-admitted:
		release(0)
	case <-time.After(5 * time.Second):
		t.Fatal("queued point request was never admitted after release")
	}
	if st := c.Stats(); st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("limiter did not drain: %+v", st)
	}
}

func TestQueuedRequestRespectsDeadline(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 4})
	held := admit(t, c, Point, "a")
	defer held(0)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, dec := c.Admit(ctx, Point, "a")
	if dec.Admitted || dec.Reason != "deadline" || dec.Status != 503 {
		t.Fatalf("queued request past deadline: %+v", dec)
	}
	st := c.Stats()
	if st.QueueTimeouts != 1 || st.QueueDepth != 0 {
		t.Fatalf("timeouts %d queue %d, want 1 and 0 (canceled waiter removed)", st.QueueTimeouts, st.QueueDepth)
	}
}

func TestShedSearchFirstOffLetsSearchQueue(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 1, ShedSearchFirst: false})
	held := admit(t, c, Point, "a")

	admitted := make(chan func(time.Duration), 1)
	go func() {
		release, dec := c.Admit(context.Background(), Search, "a")
		if dec.Admitted {
			admitted <- release
		}
	}()
	waitStats(t, c, func(s Stats) bool { return s.QueueDepth == 1 })
	held(0)
	select {
	case release := <-admitted:
		release(0)
	case <-time.After(5 * time.Second):
		t.Fatal("search never admitted from queue with ShedSearchFirst off")
	}
}

func TestRateLimitPerClient(t *testing.T) {
	clock := &fakeClock{}
	c := New(Config{MaxInflight: 100, Rate: 1, Burst: 2, Now: clock.Now})

	// The burst admits two, the third refuses with a whole-seconds hint.
	admit(t, c, Point, "alice")(0)
	admit(t, c, Point, "alice")(0)
	_, dec := c.Admit(context.Background(), Point, "alice")
	if dec.Admitted || dec.Status != 429 || dec.Reason != "ratelimit" {
		t.Fatalf("third request in burst: %+v", dec)
	}
	if dec.RetryAfter < time.Second {
		t.Fatalf("Retry-After hint = %v, want >= 1s", dec.RetryAfter)
	}

	// Other clients have their own buckets.
	admit(t, c, Point, "bob")(0)

	// Critical traffic is exempt even for a drained client.
	admit(t, c, Critical, "alice")(0)

	// Tokens accrue with time.
	clock.Advance(time.Second)
	admit(t, c, Point, "alice")(0)

	if got := c.Stats().RateLimited; got != 1 {
		t.Fatalf("RateLimited = %d, want 1", got)
	}
}

func TestBucketLRUBoundsMemory(t *testing.T) {
	clock := &fakeClock{}
	c := New(Config{MaxInflight: 100, Rate: 1, Burst: 1, MaxClients: 2, Now: clock.Now})

	admit(t, c, Point, "a")(0) // a's bucket now empty
	admit(t, c, Point, "b")(0)
	admit(t, c, Point, "c")(0) // evicts a (least recently seen)
	if got := c.Stats().BucketEvictions; got != 1 {
		t.Fatalf("BucketEvictions = %d, want 1", got)
	}
	// a was forgotten, so it returns with a full burst despite having
	// spent it — the documented fail-open trade of bounding memory.
	if _, dec := c.Admit(context.Background(), Point, "a"); !dec.Admitted {
		t.Fatalf("evicted client not readmitted with fresh bucket: %+v", dec)
	}
}

func TestBrownoutTracksPressure(t *testing.T) {
	c := New(Config{MaxInflight: 4, BrownoutLimit: 7})
	if _, active := c.BrownoutSearch(); active {
		t.Fatal("brownout active on an idle limiter")
	}
	r1 := admit(t, c, Point, "a")
	r2 := admit(t, c, Point, "a")
	if _, active := c.BrownoutSearch(); active {
		t.Fatal("brownout active at 2/4 occupancy")
	}
	r3 := admit(t, c, Point, "a") // 3/4 = brownoutFraction
	capLimit, active := c.BrownoutSearch()
	if !active || capLimit != 7 {
		t.Fatalf("brownout at 3/4 occupancy = (%d, %v), want (7, true)", capLimit, active)
	}
	r1(0)
	r2(0)
	r3(0)
	if got := c.Stats().Brownouts; got != 1 {
		t.Fatalf("Brownouts = %d, want 1", got)
	}
}

func TestWriteMetricsRendersFullFamily(t *testing.T) {
	c := New(Config{MaxInflight: 4, Rate: 10})
	var sb strings.Builder
	c.WriteMetrics(&sb)
	out := sb.String()
	for _, name := range []string{
		"borgesd_admission_inflight",
		"borgesd_admission_limit",
		"borgesd_admission_queue_depth",
		"borgesd_admission_sheds_total{class=\"point\"}",
		"borgesd_admission_sheds_total{class=\"search\"}",
		"borgesd_admission_queue_timeouts_total",
		"borgesd_admission_ratelimited_total",
		"borgesd_admission_bucket_evictions_total",
		"borgesd_admission_brownouts_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
}
