package admission

import (
	"container/list"
	"math"
	"sync"
	"time"
)

// bucket is one client's token bucket, embedded in the LRU.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// buckets is a per-client token-bucket rate limiter with a bounded
// LRU of buckets: the population of distinct clients a research tool
// or a scan can present is unbounded, the memory tracking them must
// not be. Evicting an idle bucket forgets at most `burst` tokens of
// history, which errs on the side of admitting — acceptable, because
// the adaptive limiter behind it still protects total capacity.
type buckets struct {
	mu        sync.Mutex
	rate      float64 // tokens per second
	burst     float64 // bucket capacity, also the initial fill
	max       int     // max tracked clients
	entries   map[string]*list.Element
	lru       *list.List // front = most recently seen
	evictions int64
	now       func() time.Time
}

func newBuckets(rate, burst float64, maxClients int, now func() time.Time) *buckets {
	return &buckets{
		rate:    rate,
		burst:   burst,
		max:     maxClients,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		now:     now,
	}
}

// allow spends one token from the client's bucket. When the bucket is
// empty it refuses and returns how long until the next token accrues
// — the Retry-After hint for the 429.
func (b *buckets) allow(key string) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	var bk *bucket
	if el, found := b.entries[key]; found {
		b.lru.MoveToFront(el)
		bk = el.Value.(*bucket)
		bk.tokens = math.Min(b.burst, bk.tokens+now.Sub(bk.last).Seconds()*b.rate)
		bk.last = now
	} else {
		for len(b.entries) >= b.max {
			oldest := b.lru.Back()
			delete(b.entries, oldest.Value.(*bucket).key)
			b.lru.Remove(oldest)
			b.evictions++
		}
		bk = &bucket{key: key, tokens: b.burst, last: now}
		b.entries[key] = b.lru.PushFront(bk)
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	// Ceil to whole seconds: Retry-After headers carry integral
	// seconds, and rounding down would invite a retry that still
	// finds the bucket empty.
	secs := math.Ceil((1 - bk.tokens) / b.rate)
	if secs < 1 {
		secs = 1
	}
	return false, time.Duration(secs) * time.Second
}

// evicted returns the LRU eviction count.
func (b *buckets) evicted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evictions
}
