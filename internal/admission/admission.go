// Package admission is borgesd's overload-protection layer: the
// decision, made before any handler runs, of whether a request may
// consume serving capacity right now — and if not, how to refuse it so
// the client backs off instead of retrying into the collapse.
//
// Three mechanisms compose:
//
//   - An adaptive concurrency limiter (AIMD on observed latency vs. a
//     target, in the spirit of gradient/Vegas-style limiters): the
//     in-flight ceiling grows additively while completions land under
//     the latency target and shrinks multiplicatively when they run
//     over, so the server discovers its own capacity instead of
//     trusting a static guess. A small bounded wait queue absorbs
//     jitter for high-priority requests; queued entries respect the
//     request's context deadline.
//   - Per-client token buckets keyed by X-Api-Key (or client IP),
//     held in an LRU so a scan of the IPv4 space cannot balloon
//     memory; one abusive client is throttled with 429 before it can
//     push the shared limiter into shedding everyone.
//   - Priority classes: Critical traffic (health, metrics, admin) is
//     never shed and consumes no limiter capacity; Point lookups shed
//     last (they may queue); Search — the expensive scan — sheds
//     first and additionally "browns out" under pressure, signalling
//     the handler to serve a cheaper, capped variant.
//
// Every refusal carries a Retry-After hint, and every decision is
// observable through the borgesd_admission_* metrics the controller
// renders in Prometheus text form.
package admission

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// Class is a request's admission priority.
type Class int

const (
	// Critical requests (/healthz, /metrics, /admin/*) are never shed
	// and bypass the limiter entirely: an overloaded server must stay
	// observable and operable, or operators cannot help it recover.
	Critical Class = iota
	// Point requests (/v1/as, /v1/org, /v1/stats) are cheap indexed
	// lookups; they shed last and may wait briefly in the bounded
	// queue for a slot.
	Point
	// Search requests (/v1/search) scan the name index; they shed
	// first and never queue while ShedSearchFirst is set, and brown
	// out (capped, cheaper serving) under pressure short of shedding.
	Search
	// Bulk requests (/v1/bulk) stream thousands of lookups in one
	// call: each holds exactly one limiter slot for its whole
	// duration, never queues, and sheds as soon as the limiter is
	// saturated — before Point (which may queue for a slot) but after
	// Search (which additionally browns out and sheds under
	// ShedSearchFirst pressure). A bulk completion does not feed the
	// AIMD controller: its latency is a function of request size, not
	// service health, and one long stream must not be read as a
	// latency regression that collapses the limit.
	Bulk
)

// String names the class for metrics labels.
func (c Class) String() string {
	switch c {
	case Critical:
		return "critical"
	case Point:
		return "point"
	case Search:
		return "search"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Config tunes a Controller. The zero value is not valid; use
// MaxInflight > 0 to enable admission control at all.
type Config struct {
	// MaxInflight is the concurrency ceiling and the limiter's
	// starting point; the adaptive limit moves in [MinInflight,
	// MaxInflight]. Required (> 0).
	MaxInflight int
	// MinInflight floors the adaptive limit (default 1): even a
	// melting server keeps admitting a trickle so recovery can be
	// observed.
	MinInflight int
	// TargetLatency is the per-request latency the limiter steers
	// toward (default 150ms): completions under it grow the limit
	// additively, completions over it shrink it multiplicatively.
	TargetLatency time.Duration
	// QueueDepth bounds the wait queue for Point-class requests
	// (default 2×MaxInflight). A queued request is admitted when a
	// slot frees, or shed when its context deadline fires first.
	QueueDepth int
	// Rate is the per-client sustained request rate in tokens/sec;
	// 0 disables per-client rate limiting.
	Rate float64
	// Burst is the per-client bucket capacity (default max(1, Rate)).
	Burst int
	// MaxClients bounds the number of tracked client buckets; the
	// least-recently-seen bucket is evicted beyond it (default 4096).
	MaxClients int
	// ShedSearchFirst makes Search-class requests shed as soon as the
	// limiter is saturated instead of competing with point lookups
	// for queue slots (default in borgesd: on).
	ShedSearchFirst bool
	// BrownoutLimit caps a browned-out search's result count
	// (default 10).
	BrownoutLimit int
	// RetryAfter is the base back-off hint attached to load sheds
	// (default 1s). Rate-limit refusals compute their own hint from
	// the bucket deficit.
	RetryAfter time.Duration
	// Now overrides the clock in tests.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MinInflight <= 0 {
		c.MinInflight = 1
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 150 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxInflight
	}
	if c.Burst <= 0 {
		c.Burst = int(math.Max(1, c.Rate))
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.BrownoutLimit <= 0 {
		c.BrownoutLimit = 10
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Admitted reports whether the request may proceed.
	Admitted bool
	// Status is the HTTP status to refuse with (429 for per-client
	// rate limits, 503 for load sheds) when !Admitted.
	Status int
	// RetryAfter is the back-off hint to advertise on refusals.
	RetryAfter time.Duration
	// Reason labels the refusal for logs and metrics: "ratelimit",
	// "saturated", "queue-full", or "deadline".
	Reason string
}

// Stats is an instantaneous, race-free view of a controller's state,
// for tests and the /metrics rendering.
type Stats struct {
	// Inflight and Limit are the limiter's current occupancy and
	// adaptive ceiling; QueueDepth is the number of waiting requests.
	Inflight   int
	Limit      float64
	QueueDepth int
	// ShedPoint, ShedSearch, and ShedBulk count load-shed refusals by
	// class; QueueTimeouts counts queued requests whose deadline fired.
	ShedPoint     int64
	ShedSearch    int64
	ShedBulk      int64
	QueueTimeouts int64
	// RateLimited counts per-client 429 refusals; BucketEvictions
	// counts LRU evictions of idle client buckets.
	RateLimited     int64
	BucketEvictions int64
	// Brownouts counts searches served in browned-out (capped,
	// cheap) mode.
	Brownouts int64
}

// Controller is the composed admission layer a server consults once
// per request. It is safe for concurrent use.
type Controller struct {
	cfg  Config
	lim  *limiter
	rate *buckets // nil when per-client limiting is disabled

	shedPoint     atomic.Int64
	shedSearch    atomic.Int64
	shedBulk      atomic.Int64
	queueTimeouts atomic.Int64
	rateLimited   atomic.Int64
	brownouts     atomic.Int64
}

// New builds a Controller. It returns nil when cfg.MaxInflight <= 0 —
// a nil *Controller is the "admission disabled" state and is not safe
// to call.
func New(cfg Config) *Controller {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, lim: newLimiter(cfg)}
	if cfg.Rate > 0 {
		c.rate = newBuckets(cfg.Rate, float64(cfg.Burst), cfg.MaxClients, cfg.Now)
	}
	return c
}

// Admit decides whether a request of the given class from the given
// client may proceed. When admitted, the returned release function
// MUST be called exactly once with the request's observed latency —
// it returns the capacity slot and feeds the AIMD controller. When
// refused, release is nil and the Decision carries the status and
// Retry-After hint to respond with.
func (c *Controller) Admit(ctx context.Context, class Class, client string) (release func(latency time.Duration), d Decision) {
	if class == Critical {
		// Never shed, never counted: observability and control must
		// survive the exact overloads this package exists for.
		return func(time.Duration) {}, Decision{Admitted: true}
	}
	if c.rate != nil {
		if ok, wait := c.rate.allow(client); !ok {
			c.rateLimited.Add(1)
			return nil, Decision{
				Status:     http.StatusTooManyRequests,
				RetryAfter: wait,
				Reason:     "ratelimit",
			}
		}
	}
	ok, reason := c.lim.acquire(ctx, class)
	if !ok {
		switch class {
		case Search:
			c.shedSearch.Add(1)
		case Bulk:
			c.shedBulk.Add(1)
		default:
			c.shedPoint.Add(1)
		}
		if reason == "deadline" {
			c.queueTimeouts.Add(1)
		}
		return nil, Decision{
			Status:     http.StatusServiceUnavailable,
			RetryAfter: c.cfg.RetryAfter,
			Reason:     reason,
		}
	}
	// Bulk completions return their slot without steering AIMD (see
	// the Bulk class comment).
	observe := class != Bulk
	return func(latency time.Duration) { c.lim.release(latency, observe) }, Decision{Admitted: true}
}

// BrownoutSearch reports whether searches should brown out right now
// — the limiter is under pressure but not yet shedding — and the
// result cap to apply. A true return is counted as one brownout.
func (c *Controller) BrownoutSearch() (capLimit int, active bool) {
	if !c.lim.underPressure() {
		return 0, false
	}
	c.brownouts.Add(1)
	return c.cfg.BrownoutLimit, true
}

// Stats snapshots the controller's observable state.
func (c *Controller) Stats() Stats {
	inflight, limit, queued := c.lim.snapshot()
	st := Stats{
		Inflight:      inflight,
		Limit:         limit,
		QueueDepth:    queued,
		ShedPoint:     c.shedPoint.Load(),
		ShedSearch:    c.shedSearch.Load(),
		ShedBulk:      c.shedBulk.Load(),
		QueueTimeouts: c.queueTimeouts.Load(),
		RateLimited:   c.rateLimited.Load(),
		Brownouts:     c.brownouts.Load(),
	}
	if c.rate != nil {
		st.BucketEvictions = c.rate.evicted()
	}
	return st
}

// WriteMetrics renders the borgesd_admission_* family in the
// Prometheus text exposition format.
func (c *Controller) WriteMetrics(w io.Writer) {
	st := c.Stats()
	fmt.Fprintf(w, "# HELP borgesd_admission_inflight Requests currently holding a limiter slot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_inflight gauge\n")
	fmt.Fprintf(w, "borgesd_admission_inflight %d\n", st.Inflight)
	fmt.Fprintf(w, "# HELP borgesd_admission_limit Current adaptive concurrency limit (AIMD).\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_limit gauge\n")
	fmt.Fprintf(w, "borgesd_admission_limit %.3f\n", st.Limit)
	fmt.Fprintf(w, "# HELP borgesd_admission_queue_depth Requests waiting for a limiter slot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_queue_depth gauge\n")
	fmt.Fprintf(w, "borgesd_admission_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# HELP borgesd_admission_sheds_total Load-shed refusals (503), by class.\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_sheds_total counter\n")
	fmt.Fprintf(w, "borgesd_admission_sheds_total{class=\"point\"} %d\n", st.ShedPoint)
	fmt.Fprintf(w, "borgesd_admission_sheds_total{class=\"search\"} %d\n", st.ShedSearch)
	fmt.Fprintf(w, "borgesd_admission_sheds_total{class=\"bulk\"} %d\n", st.ShedBulk)
	fmt.Fprintf(w, "# HELP borgesd_admission_queue_timeouts_total Queued requests shed because their deadline fired first.\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_queue_timeouts_total counter\n")
	fmt.Fprintf(w, "borgesd_admission_queue_timeouts_total %d\n", st.QueueTimeouts)
	fmt.Fprintf(w, "# HELP borgesd_admission_ratelimited_total Per-client rate-limit refusals (429).\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_ratelimited_total counter\n")
	fmt.Fprintf(w, "borgesd_admission_ratelimited_total %d\n", st.RateLimited)
	fmt.Fprintf(w, "# HELP borgesd_admission_bucket_evictions_total Client token buckets evicted from the LRU.\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_bucket_evictions_total counter\n")
	fmt.Fprintf(w, "borgesd_admission_bucket_evictions_total %d\n", st.BucketEvictions)
	fmt.Fprintf(w, "# HELP borgesd_admission_brownouts_total Searches served in browned-out (capped, cheap) mode.\n")
	fmt.Fprintf(w, "# TYPE borgesd_admission_brownouts_total counter\n")
	fmt.Fprintf(w, "borgesd_admission_brownouts_total %d\n", st.Brownouts)
}
