package admission

import (
	"context"
	"sync"
	"time"
)

// AIMD constants. A completion under the latency target earns
// +aimdStep/limit (≈ one full slot per window of `limit` completions,
// the classic additive increase); a completion over it multiplies the
// limit by aimdBeta. The asymmetry is the point: capacity is probed
// gently and surrendered fast.
const (
	aimdStep = 1.0
	aimdBeta = 0.9
	// brownoutFraction of the limit occupied (or any queueing) is the
	// pressure threshold at which Search switches to brownout serving.
	brownoutFraction = 0.75
)

// waiter is one queued Point-class request.
type waiter struct {
	// admitted is closed by a releaser handing the waiter a slot; the
	// flag distinguishes "handed a slot" from "gave up" when both
	// race. Both are guarded by the limiter's mutex.
	ch       chan struct{}
	admitted bool
	canceled bool
}

// limiter is the adaptive concurrency limiter: a latency-steered
// in-flight ceiling with a bounded FIFO wait queue for requests whose
// class permits waiting.
type limiter struct {
	mu              sync.Mutex
	limit           float64 // adaptive, in [min, max]
	min, max        float64
	target          time.Duration
	inflight        int
	queue           []*waiter
	queueCap        int
	shedSearchFirst bool
}

func newLimiter(cfg Config) *limiter {
	return &limiter{
		limit:           float64(cfg.MaxInflight),
		min:             float64(cfg.MinInflight),
		max:             float64(cfg.MaxInflight),
		target:          cfg.TargetLatency,
		queueCap:        cfg.QueueDepth,
		shedSearchFirst: cfg.ShedSearchFirst,
	}
}

// acquire takes a slot, queues for one, or refuses. The reason labels
// refusals: "saturated" (Search or Bulk shed at capacity),
// "queue-full", or "deadline" (queued but the context expired first).
func (l *limiter) acquire(ctx context.Context, class Class) (ok bool, reason string) {
	l.mu.Lock()
	if l.inflight < int(l.limit) {
		l.inflight++
		l.mu.Unlock()
		return true, ""
	}
	// Bulk never queues: a stream that would hold a slot for seconds
	// has no business waiting in a queue sized for point lookups.
	if class == Bulk || (class == Search && l.shedSearchFirst) {
		l.mu.Unlock()
		return false, "saturated"
	}
	if len(l.queue) >= l.queueCap {
		l.mu.Unlock()
		return false, "queue-full"
	}
	w := &waiter{ch: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	select {
	case <-w.ch:
		return true, ""
	case <-ctx.Done():
		l.mu.Lock()
		if w.admitted {
			// A releaser handed us a slot in the same instant the
			// deadline fired. The handler will not run, so return the
			// slot (without a latency observation — nothing was
			// served) and still report the shed.
			l.mu.Unlock()
			l.release(0, false)
			return false, "deadline"
		}
		w.canceled = true
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		l.mu.Unlock()
		return false, "deadline"
	}
}

// release returns a slot and, when observe is set, feeds the AIMD
// controller with the request's latency. Any freed capacity is handed
// to queued waiters in FIFO order.
func (l *limiter) release(latency time.Duration, observe bool) {
	l.mu.Lock()
	l.inflight--
	if observe {
		if latency > l.target {
			l.limit = l.limit * aimdBeta
			if l.limit < l.min {
				l.limit = l.min
			}
		} else {
			l.limit += aimdStep / l.limit
			if l.limit > l.max {
				l.limit = l.max
			}
		}
	}
	l.admitWaitersLocked()
	l.mu.Unlock()
}

// admitWaitersLocked hands free slots to the queue head while
// capacity allows. Callers hold l.mu.
func (l *limiter) admitWaitersLocked() {
	for len(l.queue) > 0 && l.inflight < int(l.limit) {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.canceled {
			continue
		}
		w.admitted = true
		l.inflight++
		close(w.ch)
	}
}

// underPressure reports whether occupancy crossed the brownout
// threshold or requests are already queueing.
func (l *limiter) underPressure() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue) > 0 || float64(l.inflight) >= brownoutFraction*l.limit
}

// snapshot returns (inflight, limit, queued) consistently.
func (l *limiter) snapshot() (int, float64, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight, l.limit, len(l.queue)
}
