package websim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Serialization: a Universe round-trips through a JSON-lines manifest,
// one site per line, so a generated corpus can be persisted alongside
// the WHOIS/PeeringDB snapshots and reloaded without regenerating.

// PageManifest is the on-disk form of one page.
type PageManifest struct {
	Path   string `json:"path"`
	Kind   uint8  `json:"kind"`
	Target string `json:"target,omitempty"`
	Status int    `json:"status,omitempty"`
	Title  string `json:"title,omitempty"`
	Body   string `json:"body,omitempty"`
}

// SiteManifest is the on-disk form of one host.
type SiteManifest struct {
	Host    string         `json:"host"`
	Favicon string         `json:"favicon,omitempty"`
	Down    bool           `json:"down,omitempty"`
	Pages   []PageManifest `json:"pages,omitempty"`
}

// Export dumps every site in deterministic (host-sorted) order.
func (u *Universe) Export() []SiteManifest {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]SiteManifest, 0, len(u.sites))
	for host, s := range u.sites {
		m := SiteManifest{Host: host, Favicon: s.faviconID, Down: s.down}
		paths := make([]string, 0, len(s.pages))
		for p := range s.pages {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			pg := s.pages[p]
			// The default root content page is implied by AddSite and
			// omitted to keep manifests small.
			if p == "/" && pg.Kind == KindContent && pg.Target == "" &&
				pg.Title == "" && pg.Body == "" && pg.Status == 0 {
				continue
			}
			m.Pages = append(m.Pages, PageManifest{
				Path: p, Kind: uint8(pg.Kind), Target: pg.Target,
				Status: pg.Status, Title: pg.Title, Body: pg.Body,
			})
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// AddManifest replays one exported site into the universe — the
// inverse of one Export element, used both by ReadManifest and when
// merging streamed corpus chunks.
func (u *Universe) AddManifest(m SiteManifest) error {
	if m.Host == "" {
		return fmt.Errorf("websim: site without host")
	}
	u.AddSite(m.Host, m.Favicon)
	for _, pg := range m.Pages {
		if PageKind(pg.Kind) > KindServerError {
			return fmt.Errorf("websim: unknown page kind %d", pg.Kind)
		}
		u.SetPage(m.Host, pg.Path, Page{
			Kind: PageKind(pg.Kind), Target: pg.Target,
			Status: pg.Status, Title: pg.Title, Body: pg.Body,
		})
	}
	if m.Down {
		u.SetDown(m.Host, true)
	}
	return nil
}

// WriteManifest serializes the universe as JSON lines.
func WriteManifest(w io.Writer, u *Universe) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, site := range u.Export() {
		if err := enc.Encode(site); err != nil {
			return fmt.Errorf("websim: write %s: %w", site.Host, err)
		}
	}
	return bw.Flush()
}

// ReadManifest reconstructs a universe from a manifest stream.
func ReadManifest(r io.Reader) (*Universe, error) {
	u := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var m SiteManifest
		if err := json.Unmarshal([]byte(text), &m); err != nil {
			return nil, fmt.Errorf("websim: line %d: %w", line, err)
		}
		if err := u.AddManifest(m); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("websim: scan: %w", err)
	}
	return u, nil
}
