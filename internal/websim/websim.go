// Package websim implements a deterministic, in-memory web universe used
// in place of the live web the paper scrapes with Selenium. It models the
// behaviours Borges's web module depends on: HTTP 3xx redirect chains,
// HTML meta-refresh redirects (the "refreshes and redirects" — R&R — of
// §4.3.1 that normally require a rendering browser), unavailable sites,
// favicons, and plain content pages.
//
// A Universe implements http.RoundTripper, so the real net/http-based
// crawler exercises genuine HTTP semantics against it without sockets;
// Handler additionally exposes the same universe as an http.Handler for
// serving over real connections in tests (httptest).
package websim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
)

// PageKind distinguishes how a page responds.
type PageKind uint8

const (
	// KindContent serves a 200 HTML page.
	KindContent PageKind = iota
	// KindHTTPRedirect serves a 301/302 redirect to Target.
	KindHTTPRedirect
	// KindMetaRefresh serves a 200 HTML page whose only effect is a
	// <meta http-equiv="refresh"> redirect to Target — invisible to
	// clients that do not interpret HTML, which is why the paper needs
	// a browser and this repo needs a meta-refresh-aware crawler.
	KindMetaRefresh
	// KindNotFound serves a 404.
	KindNotFound
	// KindServerError serves a 500.
	KindServerError
)

// Page describes one path on a site.
type Page struct {
	Kind PageKind
	// Target is the redirect destination for KindHTTPRedirect and
	// KindMetaRefresh. It may be absolute or host-relative.
	Target string
	// Status overrides the default status code (301 for HTTP
	// redirects) when non-zero.
	Status int
	// Title is rendered into content pages.
	Title string
	// Body is extra HTML injected into content pages.
	Body string
}

// Site is one simulated host.
type Site struct {
	host string
	// faviconID names the icon identity; sites sharing a faviconID
	// serve byte-identical icons. Empty means no favicon (404).
	faviconID string
	// down marks the whole host unreachable (connection errors).
	down  bool
	pages map[string]Page
}

// Universe is a collection of simulated hosts. It is safe for concurrent
// use once built; building (Add*/Set*) must complete before serving.
type Universe struct {
	mu       sync.RWMutex
	sites    map[string]*Site
	requests atomic.Int64
}

// New returns an empty universe.
func New() *Universe {
	return &Universe{sites: make(map[string]*Site)}
}

// Requests returns the number of HTTP requests served (for crawler
// budget tests and the input-filter ablation).
func (u *Universe) Requests() int64 { return u.requests.Load() }

// ResetRequests zeroes the request counter.
func (u *Universe) ResetRequests() { u.requests.Store(0) }

// NumSites returns the number of hosts.
func (u *Universe) NumSites() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.sites)
}

// Hosts returns every registered host, in no particular order.
func (u *Universe) Hosts() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.sites))
	for h := range u.sites {
		out = append(out, h)
	}
	return out
}

// HasHost returns whether host exists in the universe.
func (u *Universe) HasHost(host string) bool {
	u.mu.RLock()
	defer u.mu.RUnlock()
	_, ok := u.sites[strings.ToLower(host)]
	return ok
}

// AddSite creates (or returns the existing) site for host. The favicon ID
// controls icon identity; "" serves no favicon.
func (u *Universe) AddSite(host, faviconID string) *Site {
	u.mu.Lock()
	defer u.mu.Unlock()
	h := strings.ToLower(host)
	if s, ok := u.sites[h]; ok {
		if faviconID != "" {
			s.faviconID = faviconID
		}
		return s
	}
	s := &Site{host: h, faviconID: faviconID, pages: make(map[string]Page)}
	s.pages["/"] = Page{Kind: KindContent, Title: h}
	u.sites[h] = s
	return s
}

// SetDown marks a host unreachable; requests to it fail at the transport
// level, modelling the ~3.5k PeeringDB websites that were not available
// during the paper's crawl (§5.2).
func (u *Universe) SetDown(host string, down bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if s, ok := u.sites[strings.ToLower(host)]; ok {
		s.down = down
	}
}

// SetPage installs a page at path on host, creating the site if needed.
func (u *Universe) SetPage(host, path string, p Page) {
	s := u.AddSite(host, "")
	u.mu.Lock()
	defer u.mu.Unlock()
	if path == "" {
		path = "/"
	}
	s.pages[path] = p
}

// RedirectHost makes every path on host HTTP-redirect to target,
// modelling a domain-level acquisition redirect (e.g. clearwire.com →
// sprint.com).
func (u *Universe) RedirectHost(host, target string) {
	u.SetPage(host, "/", Page{Kind: KindHTTPRedirect, Target: target})
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sites[strings.ToLower(host)].pages["*"] = Page{Kind: KindHTTPRedirect, Target: target}
}

// MetaRefreshHost makes the root of host meta-refresh to target.
func (u *Universe) MetaRefreshHost(host, target string) {
	u.SetPage(host, "/", Page{Kind: KindMetaRefresh, Target: target})
}

// FaviconBytes derives the deterministic icon payload for a favicon
// identity. Identical IDs yield identical bytes; distinct IDs collide
// with probability 2^-128. The payload carries a plausible ICO header so
// content sniffers treat it as an image.
func FaviconBytes(id string) []byte {
	sum := sha256.Sum256([]byte("websim-favicon:" + id))
	var buf bytes.Buffer
	// Minimal ICO header: reserved(2) type(2)=1 count(2)=1, then one
	// 16x16 directory entry.
	header := []byte{0, 0, 1, 0, 1, 0, 16, 16, 0, 0, 1, 0, 32, 0}
	buf.Write(header)
	var size [4]byte
	binary.LittleEndian.PutUint32(size[:], uint32(len(sum)))
	buf.Write(size[:])
	var off [4]byte
	binary.LittleEndian.PutUint32(off[:], 22)
	buf.Write(off[:])
	buf.Write(sum[:])
	return buf.Bytes()
}

// RoundTrip implements http.RoundTripper over the universe.
func (u *Universe) RoundTrip(req *http.Request) (*http.Response, error) {
	u.requests.Add(1)
	host := strings.ToLower(req.URL.Hostname())
	u.mu.RLock()
	site, ok := u.sites[host]
	u.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("websim: no such host %q", host)
	}
	if site.down {
		return nil, fmt.Errorf("websim: connect %s: connection refused", host)
	}
	path := req.URL.Path
	if path == "" {
		path = "/"
	}
	if path == "/favicon.ico" {
		return site.faviconResponse(req), nil
	}
	page, ok := site.pages[path]
	if !ok {
		// Host-level wildcard (acquisition redirects), else 404.
		if wild, wok := site.pages["*"]; wok {
			page = wild
		} else {
			page = Page{Kind: KindNotFound}
		}
	}
	return site.render(req, page), nil
}

func (s *Site) faviconResponse(req *http.Request) *http.Response {
	if s.faviconID == "" {
		return respond(req, http.StatusNotFound, "text/plain", []byte("no favicon"), nil)
	}
	return respond(req, http.StatusOK, "image/x-icon", FaviconBytes(s.faviconID), nil)
}

func (s *Site) render(req *http.Request, p Page) *http.Response {
	switch p.Kind {
	case KindHTTPRedirect:
		status := p.Status
		if status == 0 {
			status = http.StatusMovedPermanently
		}
		hdr := http.Header{"Location": []string{absoluteTarget(req, p.Target)}}
		return respond(req, status, "text/html; charset=utf-8",
			[]byte("<html><body>Moved</body></html>"), hdr)
	case KindMetaRefresh:
		body := fmt.Sprintf(`<!DOCTYPE html>
<html><head>
<meta http-equiv="refresh" content="0; url=%s">
<title>%s</title>
</head><body>Redirecting…</body></html>`,
			html.EscapeString(absoluteTarget(req, p.Target)), html.EscapeString(s.host))
		return respond(req, http.StatusOK, "text/html; charset=utf-8", []byte(body), nil)
	case KindNotFound:
		return respond(req, http.StatusNotFound, "text/html; charset=utf-8",
			[]byte("<html><body>404</body></html>"), nil)
	case KindServerError:
		return respond(req, http.StatusInternalServerError, "text/html; charset=utf-8",
			[]byte("<html><body>500</body></html>"), nil)
	default: // KindContent
		title := p.Title
		if title == "" {
			title = s.host
		}
		var b strings.Builder
		b.WriteString("<!DOCTYPE html>\n<html><head><title>")
		b.WriteString(html.EscapeString(title))
		b.WriteString("</title>\n")
		if s.faviconID != "" {
			b.WriteString(`<link rel="icon" href="/favicon.ico">` + "\n")
		}
		b.WriteString("</head><body><h1>")
		b.WriteString(html.EscapeString(title))
		b.WriteString("</h1>\n")
		b.WriteString(p.Body)
		b.WriteString("\n</body></html>")
		return respond(req, http.StatusOK, "text/html; charset=utf-8", []byte(b.String()), nil)
	}
}

func absoluteTarget(req *http.Request, target string) string {
	if strings.Contains(target, "://") {
		return target
	}
	ref, err := url.Parse(target)
	if err != nil {
		return target
	}
	return req.URL.ResolveReference(ref).String()
}

func respond(req *http.Request, status int, contentType string, body []byte, hdr http.Header) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	hdr.Set("Content-Type", contentType)
	return &http.Response{
		Status:        http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Handler exposes the universe as an http.Handler that dispatches on the
// Host header, allowing it to be served over real sockets with httptest.
func (u *Universe) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clone := r.Clone(r.Context())
		clone.URL.Scheme = "http"
		clone.URL.Host = r.Host
		resp, err := u.RoundTrip(clone)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			return
		}
	})
}
