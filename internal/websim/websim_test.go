package websim

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, u *Universe, rawurl string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := u.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip(%s): %v", rawurl, err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestContentPage(t *testing.T) {
	u := New()
	u.AddSite("www.lumen.com", "lumen")
	resp := get(t, u, "https://www.lumen.com/")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	b := body(t, resp)
	if !strings.Contains(b, "www.lumen.com") || !strings.Contains(b, "favicon.ico") {
		t.Errorf("body = %q", b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
}

func TestHTTPRedirect(t *testing.T) {
	u := New()
	u.AddSite("www.sprint.com", "tmobile")
	u.RedirectHost("www.clearwire.com", "https://www.sprint.com/")
	resp := get(t, u, "http://www.clearwire.com/")
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "https://www.sprint.com/" {
		t.Errorf("Location = %q", loc)
	}
	resp.Body.Close()
	// Wildcard: any path redirects too.
	resp = get(t, u, "http://www.clearwire.com/deep/page")
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Errorf("wildcard path status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMetaRefresh(t *testing.T) {
	u := New()
	u.AddSite("www.t-mobile.com", "tmobile")
	u.MetaRefreshHost("www.sprint.com", "https://www.t-mobile.com/")
	resp := get(t, u, "https://www.sprint.com/")
	if resp.StatusCode != 200 {
		t.Fatalf("meta refresh should be HTTP 200, got %d", resp.StatusCode)
	}
	b := body(t, resp)
	if !strings.Contains(b, `http-equiv="refresh"`) ||
		!strings.Contains(b, "url=https://www.t-mobile.com/") {
		t.Errorf("body = %q", b)
	}
}

func TestRelativeRedirectTarget(t *testing.T) {
	u := New()
	u.SetPage("x.test", "/old", Page{Kind: KindHTTPRedirect, Target: "/new"})
	req, _ := http.NewRequest("GET", "https://x.test/old", nil)
	resp, err := u.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != "https://x.test/new" {
		t.Errorf("Location = %q", loc)
	}
}

func TestUnknownHostAndDown(t *testing.T) {
	u := New()
	req, _ := http.NewRequest("GET", "https://nowhere.test/", nil)
	if _, err := u.RoundTrip(req); err == nil {
		t.Error("unknown host should error")
	}
	u.AddSite("down.test", "")
	u.SetDown("down.test", true)
	req, _ = http.NewRequest("GET", "https://down.test/", nil)
	if _, err := u.RoundTrip(req); err == nil {
		t.Error("down host should error")
	}
	u.SetDown("down.test", false)
	resp := get(t, u, "https://down.test/")
	resp.Body.Close()
	if !u.HasHost("down.test") || u.HasHost("other.test") {
		t.Error("HasHost misbehaves")
	}
}

func TestNotFoundAndServerError(t *testing.T) {
	u := New()
	u.AddSite("a.test", "")
	resp := get(t, u, "https://a.test/missing")
	if resp.StatusCode != 404 {
		t.Errorf("missing page status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	u.SetPage("a.test", "/boom", Page{Kind: KindServerError})
	resp = get(t, u, "https://a.test/boom")
	if resp.StatusCode != 500 {
		t.Errorf("boom status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFavicons(t *testing.T) {
	u := New()
	u.AddSite("www.clarochile.cl", "claro")
	u.AddSite("www.claropr.com", "claro")
	u.AddSite("other.test", "other")
	u.AddSite("none.test", "")

	r1 := get(t, u, "https://www.clarochile.cl/favicon.ico")
	r2 := get(t, u, "https://www.claropr.com/favicon.ico")
	r3 := get(t, u, "https://other.test/favicon.ico")
	b1, b2, b3 := body(t, r1), body(t, r2), body(t, r3)
	if b1 != b2 {
		t.Error("same favicon ID should yield identical bytes")
	}
	if b1 == b3 {
		t.Error("different favicon IDs should differ")
	}
	if r1.Header.Get("Content-Type") != "image/x-icon" {
		t.Errorf("favicon content type = %q", r1.Header.Get("Content-Type"))
	}
	r4 := get(t, u, "https://none.test/favicon.ico")
	if r4.StatusCode != 404 {
		t.Errorf("no-favicon site should 404, got %d", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestFaviconBytesDeterministic(t *testing.T) {
	a, b := FaviconBytes("x"), FaviconBytes("x")
	if !bytes.Equal(a, b) {
		t.Error("FaviconBytes not deterministic")
	}
	if bytes.Equal(FaviconBytes("x"), FaviconBytes("y")) {
		t.Error("distinct IDs should differ")
	}
	// ICO magic: reserved=0, type=1.
	if a[0] != 0 || a[2] != 1 {
		t.Errorf("missing ICO header: % x", a[:4])
	}
}

func TestRequestCounter(t *testing.T) {
	u := New()
	u.AddSite("a.test", "")
	get(t, u, "https://a.test/").Body.Close()
	get(t, u, "https://a.test/").Body.Close()
	if u.Requests() != 2 {
		t.Errorf("Requests = %d", u.Requests())
	}
	u.ResetRequests()
	if u.Requests() != 0 {
		t.Error("ResetRequests failed")
	}
}

func TestAddSiteIdempotentFaviconUpgrade(t *testing.T) {
	u := New()
	u.AddSite("a.test", "")
	u.SetPage("a.test", "/p", Page{Kind: KindContent, Title: "p"})
	u.AddSite("a.test", "brand") // late favicon assignment must not wipe pages
	resp := get(t, u, "https://a.test/p")
	if resp.StatusCode != 200 {
		t.Errorf("page lost after AddSite: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = get(t, u, "https://a.test/favicon.ico")
	if resp.StatusCode != 200 {
		t.Errorf("favicon not upgraded: %d", resp.StatusCode)
	}
	resp.Body.Close()
	if u.NumSites() != 1 {
		t.Errorf("NumSites = %d", u.NumSites())
	}
}

// TestHandlerOverRealSockets serves the universe through httptest and an
// http.Client, proving the same universe works over genuine HTTP.
func TestHandlerOverRealSockets(t *testing.T) {
	u := New()
	u.AddSite("site.test", "icon")
	u.SetPage("site.test", "/hello", Page{Kind: KindContent, Title: "Hello"})
	srv := httptest.NewServer(u.Handler())
	defer srv.Close()

	// Dispatch on Host header: rewrite requests to the test server but
	// carry the simulated host.
	client := srv.Client()
	req, err := http.NewRequest("GET", srv.URL+"/hello", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = "site.test"
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(b), "Hello") {
		t.Errorf("status=%d body=%q", resp.StatusCode, b)
	}

	// Unknown host via the handler returns 502.
	req2, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req2.Host = "unknown.test"
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Errorf("unknown host status = %d", resp2.StatusCode)
	}
}

func TestEscapingInTitles(t *testing.T) {
	u := New()
	u.SetPage("x.test", "/", Page{Kind: KindContent, Title: `<script>alert(1)</script>`})
	b := body(t, get(t, u, "https://x.test/"))
	if strings.Contains(b, "<script>") {
		t.Error("title not escaped")
	}

}
