package websim

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

func manifestFixture() *Universe {
	u := New()
	u.AddSite("www.lumen.com", "lumen")
	u.SetPage("www.lumen.com", "/about", Page{Kind: KindContent, Title: "About", Body: "<p>hi</p>"})
	u.RedirectHost("www.level3.com", "https://www.lumen.com/")
	u.MetaRefreshHost("www.sprint.com", "https://www.t-mobile.com/")
	u.AddSite("www.t-mobile.com", "tmobile")
	u.AddSite("down.test", "")
	u.SetDown("down.test", true)
	u.SetPage("err.test", "/boom", Page{Kind: KindServerError})
	return u
}

func TestManifestRoundTrip(t *testing.T) {
	u1 := manifestFixture()
	var buf bytes.Buffer
	if err := WriteManifest(&buf, u1); err != nil {
		t.Fatal(err)
	}
	u2, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if u2.NumSites() != u1.NumSites() {
		t.Fatalf("sites: %d vs %d", u2.NumSites(), u1.NumSites())
	}

	get := func(u *Universe, url string) (*http.Response, error) {
		req, _ := http.NewRequest("GET", url, nil)
		return u.RoundTrip(req)
	}
	// Behavioural equivalence across representative requests.
	for _, url := range []string{
		"https://www.lumen.com/",
		"https://www.lumen.com/about",
		"https://www.lumen.com/favicon.ico",
		"https://www.level3.com/",
		"https://www.level3.com/any/path",
		"https://www.sprint.com/",
		"https://err.test/boom",
		"https://err.test/",
	} {
		r1, e1 := get(u1, url)
		r2, e2 := get(u2, url)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", url, e1, e2)
		}
		if e1 != nil {
			continue
		}
		if r1.StatusCode != r2.StatusCode {
			t.Errorf("%s: status %d vs %d", url, r1.StatusCode, r2.StatusCode)
		}
		if r1.Header.Get("Location") != r2.Header.Get("Location") {
			t.Errorf("%s: location mismatch", url)
		}
		b1, _ := io.ReadAll(r1.Body)
		b2, _ := io.ReadAll(r2.Body)
		r1.Body.Close()
		r2.Body.Close()
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: body mismatch:\n%q\nvs\n%q", url, b1, b2)
		}
	}
	// Down state survives.
	if _, err := get(u2, "https://down.test/"); err == nil {
		t.Error("down state lost in round trip")
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := WriteManifest(&buf2, u2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("manifest not deterministic")
	}
}

func TestReadManifestErrors(t *testing.T) {
	cases := []string{
		`{bad json}`,
		`{"pages":[]}`, // no host
		`{"host":"x.test","pages":[{"path":"/","kind":99}]}`,
	}
	for _, c := range cases {
		if _, err := ReadManifest(strings.NewReader(c)); err == nil {
			t.Errorf("ReadManifest(%q) should fail", c)
		}
	}
	u, err := ReadManifest(strings.NewReader("\n\n"))
	if err != nil || u.NumSites() != 0 {
		t.Errorf("empty manifest: %v %v", u, err)
	}
}
