// Package llm defines the provider-agnostic chat-completion interface
// Borges's learning-based stages are built on. The paper runs OpenAI's
// GPT-4o-mini with temperature 0 and top-p 1 so that "the model
// consistently produces the most probable next token, resulting in
// reproducible outputs" (§4.2); any Provider implementation is expected
// to honour the same determinism contract: identical requests yield
// identical responses.
//
// Two implementations ship with this repository: llm/openai, a complete
// OpenAI-compatible HTTP client, and simllm, a deterministic simulated
// model used when no API endpoint is available.
package llm

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Role identifies the author of a chat message.
type Role string

// Chat roles.
const (
	RoleSystem    Role = "system"
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one chat turn. Images carry raw image bytes for multimodal
// prompts (the favicon classifier of §4.3.3 attaches the icon being
// classified); providers encode them as the transport requires.
type Message struct {
	Role    Role
	Content string
	Images  [][]byte
}

// Request is a chat-completion request.
type Request struct {
	// Model names the model, e.g. "gpt-4o-mini".
	Model    string
	Messages []Message
	// Temperature is the sampling temperature; Borges always uses 0.
	Temperature float64
	// TopP is the nucleus-sampling mass; Borges always uses 1.
	TopP float64
	// MaxTokens bounds the completion length (0 = provider default).
	MaxTokens int
}

// Usage reports token accounting when the provider supplies it.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Response is a chat completion.
type Response struct {
	Content string
	Model   string
	Usage   Usage
}

// Provider generates chat completions.
type Provider interface {
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrRateLimited marks a retryable rate-limit rejection. Providers wrap
// it so Retrying can recognise it with errors.Is.
var ErrRateLimited = errors.New("llm: rate limited")

// ErrServer marks a retryable transient server failure.
var ErrServer = errors.New("llm: server error")

// Retrying decorates a Provider with bounded exponential backoff on
// retryable errors (rate limits and transient server failures). A batch
// over tens of thousands of PeeringDB records will hit provider limits;
// retrying with backoff is the standard remedy.
type Retrying struct {
	// Inner is the wrapped provider.
	Inner Provider
	// MaxAttempts bounds total attempts (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff (default 250ms); each retry
	// doubles it.
	BaseDelay time.Duration
	// Sleep is indirected for tests; defaults to a context-aware wait.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Complete implements Provider.
func (r *Retrying) Complete(ctx context.Context, req Request) (Response, error) {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	delay := r.BaseDelay
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, delay); err != nil {
				return Response{}, err
			}
			delay *= 2
		}
		resp, err := r.Inner.Complete(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, ErrRateLimited) && !errors.Is(err, ErrServer) {
			return Response{}, err
		}
	}
	return Response{}, fmt.Errorf("llm: giving up after %d attempts: %w", attempts, lastErr)
}
