// Package llm defines the provider-agnostic chat-completion interface
// Borges's learning-based stages are built on. The paper runs OpenAI's
// GPT-4o-mini with temperature 0 and top-p 1 so that "the model
// consistently produces the most probable next token, resulting in
// reproducible outputs" (§4.2); any Provider implementation is expected
// to honour the same determinism contract: identical requests yield
// identical responses.
//
// Two implementations ship with this repository: llm/openai, a complete
// OpenAI-compatible HTTP client, and simllm, a deterministic simulated
// model used when no API endpoint is available.
package llm

import (
	"context"
	"errors"
	"time"

	"github.com/nu-aqualab/borges/internal/resilience"
)

// Role identifies the author of a chat message.
type Role string

// Chat roles.
const (
	RoleSystem    Role = "system"
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one chat turn. Images carry raw image bytes for multimodal
// prompts (the favicon classifier of §4.3.3 attaches the icon being
// classified); providers encode them as the transport requires.
type Message struct {
	Role    Role
	Content string
	Images  [][]byte
}

// Request is a chat-completion request.
type Request struct {
	// Model names the model, e.g. "gpt-4o-mini".
	Model    string
	Messages []Message
	// Temperature is the sampling temperature; Borges always uses 0.
	Temperature float64
	// TopP is the nucleus-sampling mass; Borges always uses 1.
	TopP float64
	// MaxTokens bounds the completion length (0 = provider default).
	MaxTokens int
}

// Usage reports token accounting when the provider supplies it.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Response is a chat completion.
type Response struct {
	Content string
	Model   string
	Usage   Usage
}

// Provider generates chat completions.
type Provider interface {
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrRateLimited marks a retryable rate-limit rejection. Providers wrap
// it so Retrying can recognise it with errors.Is.
var ErrRateLimited = errors.New("llm: rate limited")

// ErrServer marks a retryable transient server failure.
var ErrServer = errors.New("llm: server error")

// Retryable classifies provider errors worth retrying: rate limits,
// transient server failures, and anything the resilience taxonomy
// calls transient (timeouts, resets, torn responses). Durable failures
// — bad API keys, malformed requests — surface immediately.
func Retryable(err error) bool {
	return errors.Is(err, ErrRateLimited) ||
		errors.Is(err, ErrServer) ||
		resilience.IsTransient(err)
}

// Retrying decorates a Provider with bounded exponential backoff on
// retryable errors (rate limits and transient server failures). A batch
// over tens of thousands of PeeringDB records will hit provider limits;
// retrying with backoff is the standard remedy. The backoff math is
// the shared resilience.Policy, so a provider error carrying a typed
// Retry-After hint (see llm/openai) is honoured over the exponential
// guess.
type Retrying struct {
	// Inner is the wrapped provider.
	Inner Provider
	// MaxAttempts bounds total attempts (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff (default 250ms); each retry
	// doubles it.
	BaseDelay time.Duration
	// Sleep is indirected for tests; defaults to a context-aware wait.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Complete implements Provider.
func (r *Retrying) Complete(ctx context.Context, req Request) (Response, error) {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	p := &resilience.Policy{
		MaxAttempts: attempts,
		BaseDelay:   r.BaseDelay,
		// Jitter stays off so the doubling sequence is exact and
		// reproducible; Retry-After hints still take precedence.
		Jitter:    -1,
		Retryable: Retryable,
		SleepFn:   r.Sleep,
	}
	var resp Response
	err := p.Do(ctx, func(ctx context.Context) error {
		var cerr error
		resp, cerr = r.Inner.Complete(ctx, req)
		return cerr
	})
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}
