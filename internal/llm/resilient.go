package llm

import (
	"context"

	"github.com/nu-aqualab/borges/internal/resilience"
)

// Resilient routes completions through a resilience.Executor: retries
// under the executor's policy, per-model circuit breaking, and counted
// attempts/denials that feed the run report. It is the full
// fault-tolerance decorator; Retrying remains for callers that want
// backoff without breakers.
type Resilient struct {
	// Inner is the wrapped provider.
	Inner Provider
	// Exec supplies the retry policy, breakers, and counters. A nil
	// Exec passes calls straight through.
	Exec *resilience.Executor
	// Key derives the breaker key for a request; nil keys per model
	// ("llm:<model>"), matching how providers rate-limit.
	Key func(Request) string
}

// Complete implements Provider.
func (r *Resilient) Complete(ctx context.Context, req Request) (Response, error) {
	if r.Exec == nil {
		return r.Inner.Complete(ctx, req)
	}
	key := "llm:" + req.Model
	if r.Key != nil {
		key = r.Key(req)
	}
	var resp Response
	err := r.Exec.Do(ctx, key, func(ctx context.Context) error {
		var cerr error
		resp, cerr = r.Inner.Complete(ctx, req)
		return cerr
	})
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}
