package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// countingProvider tracks calls and echoes the last user message.
type countingProvider struct {
	mu    sync.Mutex
	calls int
	fail  bool
}

func (p *countingProvider) Complete(ctx context.Context, req Request) (Response, error) {
	p.mu.Lock()
	p.calls++
	n := p.calls
	p.mu.Unlock()
	if p.fail {
		return Response{}, errors.New("backend down")
	}
	content := ""
	if len(req.Messages) > 0 {
		content = req.Messages[len(req.Messages)-1].Content
	}
	return Response{Content: fmt.Sprintf("reply %d to %s", n, content)}, nil
}

func reqWith(content string) Request {
	return Request{Model: "m", Messages: []Message{{Role: RoleUser, Content: content}}}
}

func TestCachingMemoizes(t *testing.T) {
	p := &countingProvider{}
	c := NewCaching(p)
	ctx := context.Background()

	r1, err := c.Complete(ctx, reqWith("hello"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(ctx, reqWith("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Content != r2.Content {
		t.Errorf("cached reply differs: %q vs %q", r1.Content, r2.Content)
	}
	if p.calls != 1 {
		t.Errorf("backend calls = %d, want 1", p.calls)
	}
	if _, err := c.Complete(ctx, reqWith("different")); err != nil {
		t.Fatal(err)
	}
	if p.calls != 2 {
		t.Errorf("backend calls = %d, want 2", p.calls)
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 2 || size != 2 {
		t.Errorf("stats = %d/%d/%d", hits, misses, size)
	}
}

func TestCachingKeySensitivity(t *testing.T) {
	p := &countingProvider{}
	c := NewCaching(p)
	ctx := context.Background()

	base := reqWith("x")
	variants := []Request{
		{Model: "other", Messages: base.Messages},
		{Model: "m", Temperature: 0.5, Messages: base.Messages},
		{Model: "m", MaxTokens: 9, Messages: base.Messages},
		{Model: "m", Messages: []Message{{Role: RoleSystem, Content: "x"}}},
		{Model: "m", Messages: []Message{{Role: RoleUser, Content: "x",
			Images: [][]byte{{1, 2, 3}}}}},
	}
	if _, err := c.Complete(ctx, base); err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		if _, err := c.Complete(ctx, v); err != nil {
			t.Fatal(err)
		}
		if p.calls != i+2 {
			t.Errorf("variant %d did not miss the cache (calls=%d)", i, p.calls)
		}
	}
	// Image bytes are part of the key.
	img1 := Request{Model: "m", Messages: []Message{{Role: RoleUser, Content: "x",
		Images: [][]byte{{1, 2, 3}}}}}
	img2 := Request{Model: "m", Messages: []Message{{Role: RoleUser, Content: "x",
		Images: [][]byte{{9, 9, 9}}}}}
	before := p.calls
	c.Complete(ctx, img1) // cached from variants
	if p.calls != before {
		t.Error("identical image request should hit")
	}
	c.Complete(ctx, img2)
	if p.calls != before+1 {
		t.Error("different image request should miss")
	}
}

func TestCachingDoesNotStoreErrors(t *testing.T) {
	p := &countingProvider{fail: true}
	c := NewCaching(p)
	ctx := context.Background()
	if _, err := c.Complete(ctx, reqWith("x")); err == nil {
		t.Fatal("want error")
	}
	p.fail = false
	resp, err := c.Complete(ctx, reqWith("x"))
	if err != nil || resp.Content == "" {
		t.Fatalf("recovered call failed: %v", err)
	}
	if p.calls != 2 {
		t.Errorf("calls = %d, want 2 (errors must not be cached)", p.calls)
	}
}

func TestCachingConcurrent(t *testing.T) {
	p := &countingProvider{}
	c := NewCaching(p)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Complete(context.Background(), reqWith(fmt.Sprintf("q%d", i%4))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	_, _, size := c.Stats()
	if size != 4 {
		t.Errorf("size = %d, want 4", size)
	}
}

func TestRateLimitedPacing(t *testing.T) {
	p := &countingProvider{}
	var clock time.Time
	var slept time.Duration
	rl := &RateLimited{
		Inner: p, RPS: 2, Burst: 1,
		Now: func() time.Time { return clock },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept += d
			clock = clock.Add(d)
			return nil
		},
	}
	clock = time.Unix(1000, 0)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := rl.Complete(ctx, reqWith("x")); err != nil {
			t.Fatal(err)
		}
	}
	// First call free (full bucket), the other four wait 0.5s each.
	if want := 2 * time.Second; slept < want-time.Millisecond || slept > want+time.Millisecond {
		t.Errorf("slept %v, want ≈%v", slept, want)
	}
	if p.calls != 5 {
		t.Errorf("calls = %d", p.calls)
	}
}

func TestRateLimitedBurst(t *testing.T) {
	p := &countingProvider{}
	var clock = time.Unix(0, 0)
	var slept time.Duration
	rl := &RateLimited{
		Inner: p, RPS: 1, Burst: 3,
		Now: func() time.Time { return clock },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept += d
			clock = clock.Add(d)
			return nil
		},
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := rl.Complete(ctx, reqWith("x")); err != nil {
			t.Fatal(err)
		}
	}
	if slept != 0 {
		t.Errorf("burst calls slept %v", slept)
	}
	if _, err := rl.Complete(ctx, reqWith("x")); err != nil {
		t.Fatal(err)
	}
	if slept == 0 {
		t.Error("post-burst call should wait")
	}
}

func TestRateLimitedContextCancel(t *testing.T) {
	p := &countingProvider{}
	clock := time.Unix(0, 0)
	rl := &RateLimited{
		Inner: p, RPS: 0.001, Burst: 1,
		Now: func() time.Time { return clock },
		Sleep: func(ctx context.Context, d time.Duration) error {
			return context.Canceled
		},
	}
	ctx := context.Background()
	if _, err := rl.Complete(ctx, reqWith("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.Complete(ctx, reqWith("x")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want canceled", err)
	}
}
