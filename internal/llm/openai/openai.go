// Package openai implements the llm.Provider interface over the OpenAI
// chat-completions HTTP API (and any compatible endpoint). Borges's
// published results use gpt-4o-mini with temperature 0 and top-p 1
// (§4.2); this client reproduces that request shape, including the
// multimodal image_url content parts used by the favicon classifier
// (Listing 3 in the paper's appendix).
//
// The client is stdlib-only. In the offline reproduction it is exercised
// against httptest mock servers; pointed at a live endpoint it is a
// complete production client with error taxonomy for the retry layer.
package openai

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/resilience"
)

// DefaultBaseURL is the public OpenAI API root.
const DefaultBaseURL = "https://api.openai.com/v1"

// Client is an OpenAI-compatible chat-completions client.
type Client struct {
	// BaseURL is the API root (default DefaultBaseURL).
	BaseURL string
	// APIKey is sent as a Bearer token when non-empty.
	APIKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Organization, if set, is sent as the OpenAI-Organization header.
	Organization string
}

// wire types for the chat-completions endpoint.

type wireRequest struct {
	Model       string        `json:"model"`
	Messages    []wireMessage `json:"messages"`
	Temperature *float64      `json:"temperature,omitempty"`
	TopP        *float64      `json:"top_p,omitempty"`
	MaxTokens   int           `json:"max_tokens,omitempty"`
}

type wireMessage struct {
	Role string `json:"role"`
	// Content is a plain string for text-only messages, or an array of
	// typed parts for multimodal messages.
	Content any `json:"content"`
}

type wirePart struct {
	Type     string        `json:"type"`
	Text     string        `json:"text,omitempty"`
	ImageURL *wireImageURL `json:"image_url,omitempty"`
}

type wireImageURL struct {
	URL string `json:"url"`
}

type wireResponse struct {
	Model   string `json:"model"`
	Choices []struct {
		Message struct {
			Role    string `json:"role"`
			Content string `json:"content"`
		} `json:"message"`
		FinishReason string `json:"finish_reason"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error *struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Complete implements llm.Provider.
func (c *Client) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	base := c.BaseURL
	if base == "" {
		base = DefaultBaseURL
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}

	wreq := wireRequest{
		Model:       req.Model,
		Temperature: &req.Temperature,
		TopP:        topPOrDefault(req.TopP),
		MaxTokens:   req.MaxTokens,
	}
	for _, m := range req.Messages {
		wreq.Messages = append(wreq.Messages, encodeMessage(m))
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return llm.Response{}, fmt.Errorf("openai: marshal request: %w", err)
	}

	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(base, "/")+"/chat/completions", bytes.NewReader(body))
	if err != nil {
		return llm.Response{}, fmt.Errorf("openai: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	if c.Organization != "" {
		hreq.Header.Set("OpenAI-Organization", c.Organization)
	}

	resp, err := httpc.Do(hreq)
	if err != nil {
		return llm.Response{}, fmt.Errorf("openai: do request: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return llm.Response{}, fmt.Errorf("openai: read response: %w", err)
	}

	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return llm.Response{}, withRetryAfter(resp,
			fmt.Errorf("openai: status 429: %w", llm.ErrRateLimited))
	case resp.StatusCode >= 500:
		return llm.Response{}, withRetryAfter(resp,
			fmt.Errorf("openai: status %d: %w", resp.StatusCode, llm.ErrServer))
	case resp.StatusCode != http.StatusOK:
		var wr wireResponse
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &wr) == nil && wr.Error != nil {
			msg = wr.Error.Message
		}
		return llm.Response{}, fmt.Errorf("openai: status %d: %s", resp.StatusCode, msg)
	}

	var wr wireResponse
	if err := json.Unmarshal(raw, &wr); err != nil {
		return llm.Response{}, fmt.Errorf("openai: decode response: %w", err)
	}
	if wr.Error != nil {
		return llm.Response{}, fmt.Errorf("openai: api error: %s", wr.Error.Message)
	}
	if len(wr.Choices) == 0 {
		return llm.Response{}, fmt.Errorf("openai: response has no choices")
	}
	return llm.Response{
		Content: wr.Choices[0].Message.Content,
		Model:   wr.Model,
		Usage: llm.Usage{
			PromptTokens:     wr.Usage.PromptTokens,
			CompletionTokens: wr.Usage.CompletionTokens,
		},
	}, nil
}

// withRetryAfter attaches the response's Retry-After header (if any)
// to err as a typed hint, so the retry layer waits exactly as long as
// the server asked instead of guessing exponentially.
func withRetryAfter(resp *http.Response, err error) error {
	d := resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	if d <= 0 {
		return err
	}
	return &resilience.RetryAfterError{Err: err, After: d}
}

func topPOrDefault(v float64) *float64 {
	if v == 0 {
		one := 1.0
		return &one
	}
	return &v
}

func encodeMessage(m llm.Message) wireMessage {
	if len(m.Images) == 0 {
		return wireMessage{Role: string(m.Role), Content: m.Content}
	}
	parts := []wirePart{{Type: "text", Text: m.Content}}
	for _, img := range m.Images {
		parts = append(parts, wirePart{
			Type: "image_url",
			ImageURL: &wireImageURL{
				URL: "data:image/jpeg;base64," + base64.StdEncoding.EncodeToString(img),
			},
		})
	}
	return wireMessage{Role: string(m.Role), Content: parts}
}
