package openai

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/resilience"
)

// TestRetryAfterBecomesTypedHint verifies that a 429 or 503 carrying a
// Retry-After header surfaces as a typed delay hint the retry layer can
// honour, in both delay-seconds and HTTP-date forms, and that the
// sentinel taxonomy is preserved underneath.
func TestRetryAfterBecomesTypedHint(t *testing.T) {
	status, header := 429, "7"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if header != "" {
			w.Header().Set("Retry-After", header)
		}
		w.WriteHeader(status)
		fmt.Fprint(w, "slow down")
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	req := llm.Request{Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}}}

	_, err := c.Complete(context.Background(), req)
	if !errors.Is(err, llm.ErrRateLimited) {
		t.Fatalf("429 err = %v, want ErrRateLimited", err)
	}
	if d, ok := resilience.RetryAfterOf(err); !ok || d != 7*time.Second {
		t.Errorf("hint = %v/%v, want 7s", d, ok)
	}

	status, header = 503, time.Now().Add(90*time.Second).UTC().Format(http.TimeFormat)
	_, err = c.Complete(context.Background(), req)
	if !errors.Is(err, llm.ErrServer) {
		t.Fatalf("503 err = %v, want ErrServer", err)
	}
	if d, ok := resilience.RetryAfterOf(err); !ok || d <= 0 || d > 90*time.Second {
		t.Errorf("hint = %v/%v, want ~90s from HTTP-date", d, ok)
	}

	// No header: plain sentinel error, no hint.
	status, header = 429, ""
	_, err = c.Complete(context.Background(), req)
	if !errors.Is(err, llm.ErrRateLimited) {
		t.Fatalf("bare 429 err = %v", err)
	}
	if _, ok := resilience.RetryAfterOf(err); ok {
		t.Error("bare 429 must not carry a hint")
	}
}

// TestRetryingWaitsExactlyTheHint drives Client+Retrying end to end:
// the sleep requested between attempts equals the server's Retry-After.
func TestRetryingWaitsExactlyTheHint(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "11")
			w.WriteHeader(429)
			return
		}
		fmt.Fprint(w, `{"model":"m","choices":[{"message":{"role":"assistant","content":"ok"}}]}`)
	}))
	defer srv.Close()
	var delays []time.Duration
	p := &llm.Retrying{
		Inner: &Client{BaseURL: srv.URL},
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	resp, err := p.Complete(context.Background(), llm.Request{
		Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}}})
	if err != nil || resp.Content != "ok" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if len(delays) != 1 || delays[0] != 11*time.Second {
		t.Errorf("delays = %v, want [11s]", delays)
	}
}
