package openai

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/llm"
)

func completionJSON(content string) string {
	return fmt.Sprintf(`{
		"model": "gpt-4o-mini",
		"choices": [{"message": {"role": "assistant", "content": %q}, "finish_reason": "stop"}],
		"usage": {"prompt_tokens": 42, "completion_tokens": 7}
	}`, content)
}

func TestCompleteRequestShape(t *testing.T) {
	var captured map[string]any
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/chat/completions" {
			t.Errorf("path = %q", r.URL.Path)
		}
		if got := r.Header.Get("Authorization"); got != "Bearer sk-test" {
			t.Errorf("auth = %q", got)
		}
		if got := r.Header.Get("Content-Type"); got != "application/json" {
			t.Errorf("content-type = %q", got)
		}
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &captured); err != nil {
			t.Errorf("bad body: %v", err)
		}
		fmt.Fprint(w, completionJSON("hello"))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, APIKey: "sk-test"}
	resp, err := c.Complete(context.Background(), llm.Request{
		Model:       "gpt-4o-mini",
		Temperature: 0,
		TopP:        1,
		Messages: []llm.Message{
			{Role: llm.RoleSystem, Content: "you are a network topology expert"},
			{Role: llm.RoleUser, Content: "extract siblings"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content != "hello" || resp.Usage.PromptTokens != 42 || resp.Usage.CompletionTokens != 7 {
		t.Errorf("resp = %+v", resp)
	}
	if captured["model"] != "gpt-4o-mini" {
		t.Errorf("model = %v", captured["model"])
	}
	// Temperature 0 must be sent explicitly, not omitted: determinism
	// is part of the paper's methodology.
	if temp, ok := captured["temperature"].(float64); !ok || temp != 0 {
		t.Errorf("temperature = %v", captured["temperature"])
	}
	if topp, ok := captured["top_p"].(float64); !ok || topp != 1 {
		t.Errorf("top_p = %v", captured["top_p"])
	}
	msgs := captured["messages"].([]any)
	if len(msgs) != 2 {
		t.Fatalf("messages = %v", msgs)
	}
	first := msgs[0].(map[string]any)
	if first["role"] != "system" || !strings.Contains(first["content"].(string), "expert") {
		t.Errorf("first message = %v", first)
	}
}

func TestCompleteMultimodal(t *testing.T) {
	var captured map[string]any
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &captured)
		fmt.Fprint(w, completionJSON("Claro"))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	_, err := c.Complete(context.Background(), llm.Request{
		Model: "gpt-4o-mini",
		Messages: []llm.Message{{
			Role:    llm.RoleUser,
			Content: "Accessing these URLs returned the attached favicon.",
			Images:  [][]byte{{0xde, 0xad, 0xbe, 0xef}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := captured["messages"].([]any)
	content := msgs[0].(map[string]any)["content"].([]any)
	if len(content) != 2 {
		t.Fatalf("content parts = %v", content)
	}
	img := content[1].(map[string]any)
	if img["type"] != "image_url" {
		t.Errorf("part type = %v", img["type"])
	}
	url := img["image_url"].(map[string]any)["url"].(string)
	if !strings.HasPrefix(url, "data:image/jpeg;base64,") {
		t.Errorf("image url = %q", url)
	}
	if !strings.Contains(url, "3q2+7w==") { // base64 of deadbeef
		t.Errorf("image payload missing: %q", url)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	status := 200
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		if status == 400 {
			fmt.Fprint(w, `{"error": {"message": "bad request body", "type": "invalid_request_error"}}`)
			return
		}
		fmt.Fprint(w, "oops")
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	req := llm.Request{Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}}}

	status = 429
	_, err := c.Complete(context.Background(), req)
	if !errors.Is(err, llm.ErrRateLimited) {
		t.Errorf("429 err = %v", err)
	}
	status = 503
	_, err = c.Complete(context.Background(), req)
	if !errors.Is(err, llm.ErrServer) {
		t.Errorf("503 err = %v", err)
	}
	status = 400
	_, err = c.Complete(context.Background(), req)
	if err == nil || errors.Is(err, llm.ErrRateLimited) || errors.Is(err, llm.ErrServer) {
		t.Errorf("400 err = %v", err)
	}
	if !strings.Contains(err.Error(), "bad request body") {
		t.Errorf("400 err should carry the API message: %v", err)
	}
}

func TestMalformedResponses(t *testing.T) {
	payload := ""
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	req := llm.Request{Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}}}

	payload = "not json"
	if _, err := c.Complete(context.Background(), req); err == nil {
		t.Error("non-JSON body should error")
	}
	payload = `{"choices": []}`
	if _, err := c.Complete(context.Background(), req); err == nil {
		t.Error("empty choices should error")
	}
	payload = `{"error": {"message": "quota exceeded"}}`
	if _, err := c.Complete(context.Background(), req); err == nil ||
		!strings.Contains(err.Error(), "quota exceeded") {
		t.Error("embedded error object should surface")
	}
}

func TestRetryingIntegration(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.WriteHeader(429)
			return
		}
		fmt.Fprint(w, completionJSON("finally"))
	}))
	defer srv.Close()
	p := &llm.Retrying{
		Inner: &Client{BaseURL: srv.URL},
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	}
	resp, err := p.Complete(context.Background(), llm.Request{
		Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}}})
	if err != nil || resp.Content != "finally" {
		t.Fatalf("resp=%+v err=%v calls=%d", resp, err, calls)
	}
}
