package llm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Caching decorates a Provider with deterministic memoization: identical
// requests return the stored response without touching the backend.
//
// Borges runs its models at temperature 0 precisely so that outputs are
// reproducible (§4.2); that same property makes responses safely
// cacheable. Re-running the pipeline over an updated PeeringDB snapshot
// only pays for records whose text actually changed — on real API
// pricing, the difference between re-prompting 2,916 records and
// re-prompting a few dozen.
type Caching struct {
	// Inner is the wrapped provider.
	Inner Provider

	mu      sync.RWMutex
	entries map[string]Response
	hits    int64
	misses  int64
}

// NewCaching wraps a provider with an empty cache.
func NewCaching(inner Provider) *Caching {
	return &Caching{Inner: inner, entries: make(map[string]Response)}
}

// RequestKey derives a stable content-addressed fingerprint for a
// request — the hex SHA-256 over model, sampling parameters, and every
// message (including image bytes). Identical requests always yield
// identical keys, so under the temperature-0 determinism contract a
// key fully identifies the response. Both Caching and the pipeline's
// persistent result cache (internal/cache.Provider) key on it.
func RequestKey(req Request) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	meta := struct {
		Model       string
		Temperature float64
		TopP        float64
		MaxTokens   int
	}{req.Model, req.Temperature, req.TopP, req.MaxTokens}
	if err := enc.Encode(meta); err != nil {
		return "", fmt.Errorf("llm: cache key: %w", err)
	}
	for _, m := range req.Messages {
		if err := enc.Encode(struct {
			Role    Role
			Content string
		}{m.Role, m.Content}); err != nil {
			return "", fmt.Errorf("llm: cache key: %w", err)
		}
		for _, img := range m.Images {
			h.Write(img)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Complete implements Provider.
func (c *Caching) Complete(ctx context.Context, req Request) (Response, error) {
	k, err := RequestKey(req)
	if err != nil {
		return Response{}, err
	}
	c.mu.RLock()
	resp, ok := c.entries[k]
	c.mu.RUnlock()
	if ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return resp, nil
	}
	resp, err = c.Inner.Complete(ctx, req)
	if err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	c.entries[k] = resp
	c.misses++
	c.mu.Unlock()
	return resp, nil
}

// Stats returns cache hits, misses, and the number of stored entries.
func (c *Caching) Stats() (hits, misses int64, size int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses, len(c.entries)
}
