package llm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/resilience"
)

func TestRetryingHonoursRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	hinted := &resilience.RetryAfterError{
		Err:   fmt.Errorf("x: %w", ErrRateLimited),
		After: 5 * time.Second,
	}
	p := &scriptedProvider{failures: 1, err: hinted}
	r := &Retrying{Inner: p, BaseDelay: 10 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		}}
	if _, err := r.Complete(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] != 5*time.Second {
		t.Errorf("delays = %v, want [5s] (server hint beats exponential backoff)", delays)
	}
}

func TestResilientRetriesAndBreaksPerModel(t *testing.T) {
	now := time.Unix(0, 0)
	flaky := &scriptedProvider{failures: 1, err: fmt.Errorf("x: %w", ErrServer)}
	r := &Resilient{
		Inner: flaky,
		Exec: &resilience.Executor{
			Policy:   &resilience.Policy{MaxAttempts: 3, Jitter: -1, Retryable: Retryable, SleepFn: func(context.Context, time.Duration) error { return nil }},
			Breakers: &resilience.BreakerSet{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }},
		},
	}
	resp, err := r.Complete(context.Background(), Request{Model: "m1"})
	if err != nil || resp.Content != "ok" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if flaky.calls != 2 {
		t.Errorf("calls = %d, want 2 (one retry)", flaky.calls)
	}

	// A persistently failing model trips its breaker; other models are
	// unaffected.
	dead := &scriptedProvider{failures: 99, err: fmt.Errorf("x: %w", ErrServer)}
	r.Inner = dead
	if _, err := r.Complete(context.Background(), Request{Model: "m2"}); err == nil {
		t.Fatal("want exhaustion")
	}
	if _, err := r.Complete(context.Background(), Request{Model: "m2"}); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want breaker denial for m2", err)
	}
	healthy := &scriptedProvider{}
	r.Inner = healthy
	if _, err := r.Complete(context.Background(), Request{Model: "m3"}); err != nil {
		t.Fatalf("m3 = %v, want success despite m2's open circuit", err)
	}
}

func TestResilientNilExecPassesThrough(t *testing.T) {
	p := &scriptedProvider{}
	r := &Resilient{Inner: p}
	if _, err := r.Complete(context.Background(), Request{Model: "m"}); err != nil {
		t.Fatal(err)
	}
	if p.calls != 1 {
		t.Errorf("calls = %d, want 1", p.calls)
	}
}
