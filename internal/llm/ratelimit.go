package llm

import (
	"context"
	"sync"
	"time"
)

// RateLimited decorates a Provider with a token-bucket request limiter.
// Live APIs enforce per-minute quotas; a 30k-record extraction batch
// must pace itself below them instead of burning its error budget on
// 429 responses (which the Retrying wrapper would otherwise back off
// from one at a time).
type RateLimited struct {
	// Inner is the wrapped provider.
	Inner Provider
	// RPS is the sustained requests-per-second budget (required > 0).
	RPS float64
	// Burst is the bucket capacity (default 1).
	Burst int
	// now/sleep are indirected for tests.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// Complete implements Provider, waiting for a token before delegating.
func (r *RateLimited) Complete(ctx context.Context, req Request) (Response, error) {
	if err := r.wait(ctx); err != nil {
		return Response{}, err
	}
	return r.Inner.Complete(ctx, req)
}

func (r *RateLimited) wait(ctx context.Context) error {
	now := r.Now
	if now == nil {
		now = time.Now
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	for {
		r.mu.Lock()
		burst := float64(r.Burst)
		if burst < 1 {
			burst = 1
		}
		t := now()
		if r.last.IsZero() {
			r.tokens = burst
		} else {
			r.tokens += t.Sub(r.last).Seconds() * r.RPS
			if r.tokens > burst {
				r.tokens = burst
			}
		}
		r.last = t
		if r.tokens >= 1 {
			r.tokens--
			r.mu.Unlock()
			return nil
		}
		need := (1 - r.tokens) / r.RPS
		r.mu.Unlock()
		if err := sleep(ctx, time.Duration(need*float64(time.Second))); err != nil {
			return err
		}
	}
}
