package llm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// scriptedProvider fails a set number of times before succeeding.
type scriptedProvider struct {
	failures int
	err      error
	calls    int
}

func (p *scriptedProvider) Complete(ctx context.Context, req Request) (Response, error) {
	p.calls++
	if p.calls <= p.failures {
		return Response{}, p.err
	}
	return Response{Content: "ok"}, nil
}

func noSleep(ctx context.Context, d time.Duration) error { return nil }

func TestRetryingSucceedsAfterRateLimit(t *testing.T) {
	p := &scriptedProvider{failures: 2, err: fmt.Errorf("x: %w", ErrRateLimited)}
	r := &Retrying{Inner: p, Sleep: noSleep}
	resp, err := r.Complete(context.Background(), Request{})
	if err != nil || resp.Content != "ok" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if p.calls != 3 {
		t.Errorf("calls = %d, want 3", p.calls)
	}
}

func TestRetryingGivesUp(t *testing.T) {
	p := &scriptedProvider{failures: 99, err: fmt.Errorf("x: %w", ErrServer)}
	r := &Retrying{Inner: p, MaxAttempts: 3, Sleep: noSleep}
	_, err := r.Complete(context.Background(), Request{})
	if err == nil || !errors.Is(err, ErrServer) {
		t.Fatalf("err = %v", err)
	}
	if p.calls != 3 {
		t.Errorf("calls = %d, want 3", p.calls)
	}
}

func TestRetryingNonRetryableFailsFast(t *testing.T) {
	p := &scriptedProvider{failures: 99, err: errors.New("bad api key")}
	r := &Retrying{Inner: p, Sleep: noSleep}
	_, err := r.Complete(context.Background(), Request{})
	if err == nil {
		t.Fatal("want error")
	}
	if p.calls != 1 {
		t.Errorf("calls = %d, want 1 (no retry on permanent errors)", p.calls)
	}
}

func TestRetryingHonoursContext(t *testing.T) {
	p := &scriptedProvider{failures: 99, err: fmt.Errorf("x: %w", ErrRateLimited)}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retrying{Inner: p, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	_, err := r.Complete(ctx, Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryingBackoffDoubles(t *testing.T) {
	var delays []time.Duration
	p := &scriptedProvider{failures: 3, err: fmt.Errorf("x: %w", ErrServer)}
	r := &Retrying{Inner: p, MaxAttempts: 4, BaseDelay: 10 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		}}
	if _, err := r.Complete(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v", delays)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Errorf("delay %d = %v, want %v", i, delays[i], want[i])
		}
	}
}

// TestRetryingDefaultSleep exercises the real context-aware timer path
// with microsecond delays.
func TestRetryingDefaultSleep(t *testing.T) {
	p := &scriptedProvider{failures: 1, err: fmt.Errorf("x: %w", ErrRateLimited)}
	r := &Retrying{Inner: p, BaseDelay: time.Microsecond}
	resp, err := r.Complete(context.Background(), Request{})
	if err != nil || resp.Content != "ok" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	// And cancellation during the real sleep.
	p2 := &scriptedProvider{failures: 99, err: fmt.Errorf("x: %w", ErrRateLimited)}
	ctx, cancel := context.WithCancel(context.Background())
	r2 := &Retrying{Inner: p2, BaseDelay: time.Hour}
	done := make(chan error, 1)
	go func() {
		_, err := r2.Complete(ctx, Request{})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestRateLimitedDefaultClock drives the real clock/sleep path with a
// high-RPS limiter so the test stays fast.
func TestRateLimitedDefaultClock(t *testing.T) {
	p := &scriptedProvider{}
	rl := &RateLimited{Inner: p, RPS: 10000, Burst: 2}
	for i := 0; i < 5; i++ {
		if _, err := rl.Complete(context.Background(), Request{}); err != nil {
			t.Fatal(err)
		}
	}
	if p.calls != 5 {
		t.Errorf("calls = %d", p.calls)
	}
}
