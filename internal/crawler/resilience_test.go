package crawler

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/cache"
	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/resilience"
)

func noWait(ctx context.Context, d time.Duration) error { return ctx.Err() }

// TestCrawlRetriesTransientFaults: a transport that fails each key's
// first attempt is fully healed by a 2-attempt retry policy.
func TestCrawlRetriesTransientFaults(t *testing.T) {
	u := buildUniverse()
	faulty := faultinject.NewTransport(u, faultinject.Config{
		Seed: 1, Rate: 1, PersistentRate: 0, Kinds: []faultinject.Kind{faultinject.KindReset},
	})
	c := New(Options{
		Transport: faulty, Concurrency: 4,
		Retry: &resilience.Policy{MaxAttempts: 2, Jitter: -1, SleepFn: noWait},
	})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if !res.OK || res.Err != nil || res.FaviconHash == "" {
		t.Fatalf("res = %+v err=%v, want healed crawl with favicon", res, res.Err)
	}
	st := c.ExecStats()
	if st.Retries == 0 {
		t.Errorf("ExecStats = %+v, want retries > 0", st)
	}

	// Without a retry policy the same fault surfaces, classified
	// transient.
	c2 := New(Options{Transport: faultinject.NewTransport(buildUniverse(), faultinject.Config{
		Seed: 1, Rate: 1, PersistentRate: 0, Kinds: []faultinject.Kind{faultinject.KindReset},
	}), Concurrency: 4})
	res2 := c2.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if res2.OK || !resilience.IsTransient(res2.Err) {
		t.Fatalf("retry-less crawl = %+v err=%v, want transient failure", res2, res2.Err)
	}
}

// TestRateLimitRetryHonorsServerHint: a 429 with Retry-After must make
// the retry wait exactly the advertised delay.
func TestRateLimitRetryHonorsServerHint(t *testing.T) {
	var delays []time.Duration
	var mu sync.Mutex
	u := buildUniverse()
	faulty := faultinject.NewTransport(u, faultinject.Config{
		Seed: 1, Rate: 1, PersistentRate: 0,
		Kinds:      []faultinject.Kind{faultinject.KindRateLimit},
		RetryAfter: 9 * time.Second,
	})
	c := New(Options{
		Transport: faulty, Concurrency: 4, SkipFavicons: true,
		Retry: &resilience.Policy{MaxAttempts: 2, Jitter: -1,
			SleepFn: func(ctx context.Context, d time.Duration) error {
				mu.Lock()
				delays = append(delays, d)
				mu.Unlock()
				return ctx.Err()
			}},
	})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if !res.OK {
		t.Fatalf("res = %+v err=%v", res, res.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) != 1 || delays[0] != 9*time.Second {
		t.Errorf("delays = %v, want [9s] from the Retry-After header", delays)
	}
}

// TestBreakerShedsMeltingHost: persistent faults trip the host's
// breaker; later fetches are denied without touching the transport,
// and other hosts are unaffected.
func TestBreakerShedsMeltingHost(t *testing.T) {
	u := buildUniverse()
	faulty := faultinject.NewTransport(u, faultinject.Config{
		Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []faultinject.Kind{faultinject.KindServerError},
	})
	breakers := &resilience.BreakerSet{Threshold: 2, Cooldown: time.Hour}
	cFaulty := New(Options{
		Transport: faulty, Concurrency: 4, SkipFavicons: true,
		Retry:    &resilience.Policy{MaxAttempts: 2, Jitter: -1, SleepFn: noWait},
		Breakers: breakers,
	})
	res := cFaulty.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if res.OK {
		t.Fatalf("res = %+v, want persistent failure", res)
	}
	before := u.Requests()
	res = cFaulty.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io/other"})
	if !errors.Is(res.Err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want breaker denial", res.Err)
	}
	if got := u.Requests(); got != before {
		t.Errorf("denied fetch still reached the transport (%d -> %d requests)", before, got)
	}
	if open := cFaulty.OpenBreakers(); len(open) != 1 || open[0] != "crawl:www.edg.io" {
		t.Errorf("OpenBreakers = %v, want [crawl:www.edg.io]", open)
	}
	// An unrelated host sails through the same crawler.
	if res := cFaulty.Crawl(context.Background(), Task{ASN: 2, URL: "https://www.clarochile.cl"}); res.OK {
		t.Fatalf("clarochile should also be faulted at rate 1, got %+v", res)
	}
	st := cFaulty.ExecStats()
	if st.Denials == 0 || st.BreakerTrips == 0 {
		t.Errorf("ExecStats = %+v, want denials and trips recorded", st)
	}
}

// TestTransientOutcomesAreNotCached: a degraded run must not poison
// the shared cache; a later healthy run through the same cache heals.
func TestTransientOutcomesAreNotCached(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := buildUniverse()
	faulty := faultinject.NewTransport(u, faultinject.Config{
		Seed: 1, Rate: 1, PersistentRate: 1, Kinds: []faultinject.Kind{faultinject.KindTimeout},
	})
	degraded := New(Options{Transport: faulty, Concurrency: 4, Cache: store})
	res := degraded.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if res.OK || !resilience.IsTransient(res.Err) {
		t.Fatalf("degraded crawl = %+v err=%v, want transient failure", res, res.Err)
	}

	healthy := New(Options{Transport: u, Concurrency: 4, Cache: store})
	res = healthy.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if !res.OK || res.Err != nil || res.FaviconHash == "" {
		t.Fatalf("healthy crawl = %+v err=%v, want full recovery (cache was poisoned?)", res, res.Err)
	}

	// Durable outcomes (a down host) are cached and served without a
	// re-fetch — the taxonomy only exempts transient faults.
	res = healthy.Crawl(context.Background(), Task{ASN: 2, URL: "https://down.test"})
	if res.OK || res.Err == nil || resilience.IsTransient(res.Err) {
		t.Fatalf("down host = %+v err=%v, want durable failure", res, res.Err)
	}
	before := u.Requests()
	res = healthy.Crawl(context.Background(), Task{ASN: 2, URL: "https://down.test"})
	if res.Err == nil {
		t.Fatal("down host should stay failed")
	}
	if got := u.Requests(); got != before {
		t.Errorf("durable outcome was re-fetched (%d -> %d)", before, got)
	}
}

// TestTornFaviconDoesNotPoisonResult: a torn icon body must not cache
// a result claiming the site serves no favicon.
func TestTornFaviconDoesNotPoisonResult(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := buildUniverse()
	faulty := faultinject.NewTransport(u, faultinject.Config{
		Seed: 1, Rate: 1, PersistentRate: 1,
		Kinds: []faultinject.Kind{faultinject.KindTornBody},
	})
	// Route page fetches to the clean universe and icon fetches to the
	// torn transport, so the page resolves but its favicon tears.
	degraded := New(Options{Transport: pageCleanIconFaulty{clean: u, faulty: faulty}, Concurrency: 4, Cache: store})
	res := degraded.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if !res.OK {
		t.Fatalf("page should resolve: %+v err=%v", res, res.Err)
	}
	if res.FaviconHash != "" {
		t.Fatalf("torn icon produced hash %q", res.FaviconHash)
	}
	if !resilience.IsTransient(res.Err) {
		t.Fatalf("err = %v, want transient favicon fault carried on the result", res.Err)
	}

	healthy := New(Options{Transport: u, Concurrency: 4, Cache: store})
	res = healthy.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"})
	if !res.OK || res.Err != nil || res.FaviconHash == "" {
		t.Fatalf("healthy rerun = %+v err=%v, want favicon recovered", res, res.Err)
	}
}

// pageCleanIconFaulty routes favicon requests to the faulty transport
// and everything else to the clean one.
type pageCleanIconFaulty struct {
	clean  http.RoundTripper
	faulty http.RoundTripper
}

func (t pageCleanIconFaulty) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.Contains(req.URL.Path, "favicon") {
		return t.faulty.RoundTrip(req)
	}
	return t.clean.RoundTrip(req)
}

// blockingBody blocks reads until closed — a transport that is not
// context-aware, the worst case the ctx-aware body wrapper exists for.
type blockingBody struct {
	prefix []byte
	sent   bool
	mu     sync.Mutex
	done   chan struct{}
	once   sync.Once
}

func (b *blockingBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	sent := b.sent
	b.sent = true
	b.mu.Unlock()
	if !sent {
		return copy(p, b.prefix), nil
	}
	<-b.done
	return 0, io.ErrUnexpectedEOF
}

func (b *blockingBody) Close() error {
	b.once.Do(func() { close(b.done) })
	return nil
}

type blockingTransport struct{}

func (blockingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		Status: "200 OK", StatusCode: 200, Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{"Content-Type": []string{"text/html"}},
		Body:    &blockingBody{prefix: []byte("<html>"), done: make(chan struct{})},
		Request: req,
	}, nil
}

// TestBodyReadAbortsOnCancel: cancelling the context mid-body unblocks
// the read promptly and leaks no goroutines.
func TestBodyReadAbortsOnCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	c := New(Options{Transport: blockingTransport{}, SkipFavicons: true, Timeout: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- c.Crawl(ctx, Task{ASN: 1, URL: "https://stuck.test/"}) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Err == nil {
			t.Errorf("res = %+v, want cancellation error", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crawl did not abort after context cancellation")
	}
	// The body watcher and any transport goroutines must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d — leak after cancelled body read", before, runtime.NumGoroutine())
}

// TestThrottleIsContextAware: a cancelled context interrupts the
// per-host politeness wait instead of sleeping through it.
func TestThrottleIsContextAware(t *testing.T) {
	u := buildUniverse()
	c := New(Options{Transport: u, SkipFavicons: true, PerHostDelay: time.Hour})
	// Prime the per-host clock.
	if res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://www.edg.io"}); !res.OK {
		t.Fatalf("prime crawl failed: %v", res.Err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- c.Crawl(ctx, Task{ASN: 1, URL: "https://www.edg.io/about"}) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Err == nil {
			t.Errorf("res = %+v, want cancellation error", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("throttled crawl ignored context cancellation")
	}
}
