package crawler

import (
	"context"
	"fmt"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/websim"
)

// chainUniverse builds a redirect chain of the given depth ending in a
// content page, alternating HTTP redirects and meta refreshes — the
// worst-case R&R resolution cost.
func chainUniverse(depth int) (*websim.Universe, string) {
	u := websim.New()
	final := fmt.Sprintf("d%d.test", depth)
	u.AddSite(final, "icon")
	for i := depth - 1; i >= 0; i-- {
		host := fmt.Sprintf("d%d.test", i)
		target := fmt.Sprintf("https://d%d.test/", i+1)
		if i%2 == 0 {
			u.RedirectHost(host, target)
		} else {
			u.MetaRefreshHost(host, target)
		}
	}
	return u, "https://d0.test/"
}

// BenchmarkCrawlRedirectDepth measures resolution cost as chains deepen
// (the ablation DESIGN.md calls out: each meta refresh costs a full
// page fetch + parse on top of the HTTP round trip).
func BenchmarkCrawlRedirectDepth(b *testing.B) {
	for _, depth := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			u, start := chainUniverse(depth)
			c := New(Options{Transport: u, MaxHops: depth + 2, SkipFavicons: true})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := c.Crawl(context.Background(), Task{ASN: 1, URL: start})
				if !res.OK || res.Hops != depth {
					b.Fatalf("res = %+v err=%v", res, res.Err)
				}
			}
		})
	}
}

// BenchmarkCrawlAllParallel measures batch throughput over a mixed
// universe at the crawler's default concurrency.
func BenchmarkCrawlAllParallel(b *testing.B) {
	u := websim.New()
	var tasks []Task
	for i := 0; i < 200; i++ {
		host := fmt.Sprintf("site%d.test", i)
		switch i % 3 {
		case 0:
			u.AddSite(host, fmt.Sprintf("icon%d", i))
		case 1:
			dst := fmt.Sprintf("site%d.test", i-1)
			u.RedirectHost(host, "https://"+dst+"/")
		default:
			u.AddSite(host, "")
		}
		tasks = append(tasks, Task{ASN: asnum.ASN(1000 + i), URL: "https://" + host + "/"})
	}
	c := New(Options{Transport: u, SkipFavicons: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := c.CrawlAll(context.Background(), tasks)
		if len(results) != len(tasks) {
			b.Fatal("missing results")
		}
	}
}

// BenchmarkMetaRefreshParse isolates the HTML scan.
func BenchmarkMetaRefreshParse(b *testing.B) {
	page := `<html><head><title>x</title>
<meta name="viewport" content="width=device-width">
<meta http-equiv="refresh" content="0; url=https://target.test/">
</head><body>redirecting</body></html>`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if MetaRefreshTarget(page) == "" {
			b.Fatal("no target")
		}
	}
}
