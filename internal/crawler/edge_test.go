package crawler

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
)

// cannedTransport serves scripted responses keyed by host, for edge
// cases the websim universe intentionally does not produce.
type cannedTransport struct {
	byHost map[string]func(req *http.Request) (*http.Response, error)
}

func (c *cannedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	fn, ok := c.byHost[req.URL.Hostname()]
	if !ok {
		return nil, io.ErrUnexpectedEOF
	}
	return fn(req)
}

func respWith(status int, contentType, body string, hdr map[string]string) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		h := http.Header{}
		h.Set("Content-Type", contentType)
		for k, v := range hdr {
			h.Set(k, v)
		}
		return &http.Response{
			StatusCode: status,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  h,
			Body:    io.NopCloser(strings.NewReader(body)),
			Request: req,
		}, nil
	}
}

func TestMetaRefreshIgnoredInNonHTML(t *testing.T) {
	// A meta-refresh-looking string inside a plain-text body must not
	// be followed: only HTML pages carry refreshes.
	body := `<meta http-equiv="refresh" content="0; url=https://evil.test/">`
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"plain.test": respWith(200, "text/plain", body, nil),
	}}
	c := New(Options{Transport: tr, SkipFavicons: true})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://plain.test/"})
	if !res.OK || res.FinalURL != "https://plain.test/" {
		t.Errorf("res = %+v err=%v", res, res.Err)
	}
	if res.Hops != 0 {
		t.Errorf("non-HTML refresh followed: %v", res.Chain)
	}
}

func TestMaxBodyTruncatesScan(t *testing.T) {
	// The meta refresh sits beyond the body cap, so it is not seen.
	page := strings.Repeat("x", 2048) +
		`<meta http-equiv="refresh" content="0; url=https://next.test/">`
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"big.test": respWith(200, "text/html", page, nil),
	}}
	c := New(Options{Transport: tr, MaxBody: 1024, SkipFavicons: true})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://big.test/"})
	if !res.OK || res.Hops != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestRedirectToUnparsableLocation(t *testing.T) {
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"bad.test": respWith(301, "text/html", "", map[string]string{
			"Location": "ftp://not-http.test/",
		}),
	}}
	c := New(Options{Transport: tr, SkipFavicons: true})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://bad.test/"})
	if res.OK || res.Err == nil {
		t.Errorf("unsupported redirect scheme should fail: %+v", res)
	}
}

func TestRedirectMissingLocation(t *testing.T) {
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"noloc.test": respWith(302, "text/html", "", nil),
	}}
	c := New(Options{Transport: tr, SkipFavicons: true})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://noloc.test/"})
	if res.OK || res.Err == nil || !strings.Contains(res.Err.Error(), "Location") {
		t.Errorf("res = %+v err=%v", res, res.Err)
	}
}

func TestRelativeLocationResolved(t *testing.T) {
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"rel.test": func(req *http.Request) (*http.Response, error) {
			if req.URL.Path == "/start" {
				return respWith(302, "text/html", "", map[string]string{
					"Location": "../final",
				})(req)
			}
			return respWith(200, "text/html", "<html>done</html>", nil)(req)
		},
	}}
	c := New(Options{Transport: tr, SkipFavicons: true})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://rel.test/start"})
	if !res.OK || res.FinalURL != "https://rel.test/final" {
		t.Errorf("res = %+v err=%v", res, res.Err)
	}
}

func TestStatusTaxonomy(t *testing.T) {
	// Every 2xx counts as reached but only 200 is OK per the paper's
	// "available" criterion; 4xx/5xx fail.
	for _, tc := range []struct {
		status int
		wantOK bool
	}{
		{200, true}, {204, false}, {403, false}, {404, false}, {500, false}, {503, false},
	} {
		tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
			"s.test": respWith(tc.status, "text/html", "<html></html>", nil),
		}}
		c := New(Options{Transport: tr, SkipFavicons: true})
		res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://s.test/"})
		if res.OK != tc.wantOK {
			t.Errorf("status %d: OK = %v, want %v", tc.status, res.OK, tc.wantOK)
		}
	}
}

func TestFaviconFallbackWhenLinkBroken(t *testing.T) {
	// The declared <link rel="icon"> 404s; /favicon.ico works.
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"fb.test": func(req *http.Request) (*http.Response, error) {
			switch req.URL.Path {
			case "/":
				return respWith(200, "text/html",
					`<html><link rel="icon" href="/broken.png"><body>x</body></html>`, nil)(req)
			case "/favicon.ico":
				return respWith(200, "image/x-icon", "ICONBYTES", nil)(req)
			default:
				return respWith(404, "text/plain", "nope", nil)(req)
			}
		},
	}}
	c := New(Options{Transport: tr})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://fb.test/"})
	if !res.OK || res.FaviconHash == "" {
		t.Errorf("fallback favicon not used: %+v", res)
	}
}

func TestNoFaviconAnywhere(t *testing.T) {
	tr := &cannedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		"none.test": func(req *http.Request) (*http.Response, error) {
			if req.URL.Path == "/" {
				return respWith(200, "text/html", "<html>x</html>", nil)(req)
			}
			return respWith(404, "text/plain", "nope", nil)(req)
		},
	}}
	c := New(Options{Transport: tr})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://none.test/"})
	if !res.OK || res.FaviconHash != "" {
		t.Errorf("res = %+v", res)
	}
}
