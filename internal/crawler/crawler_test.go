package crawler

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"

	"github.com/nu-aqualab/borges/internal/websim"
)

// buildUniverse wires the paper's flagship examples:
//
//   - edg.io merger: llnw.com and edgecast.com both redirect to www.edg.io
//   - Sprint chain: clearwire.com → sprint.com →(meta refresh) t-mobile.com
//   - Claro: clarochile.cl and claropr.com share a favicon
//   - down.test is unreachable; err500.test serves 500s
func buildUniverse() *websim.Universe {
	u := websim.New()
	u.AddSite("www.edg.io", "edgio")
	u.RedirectHost("www.llnw.com", "https://www.edg.io/")
	u.RedirectHost("www.edgecast.com", "https://www.edg.io/")

	u.AddSite("www.t-mobile.com", "tmobile")
	u.RedirectHost("www.clearwire.com", "https://www.sprint.com/")
	u.AddSite("www.sprint.com", "")
	u.MetaRefreshHost("www.sprint.com", "https://www.t-mobile.com/")

	u.AddSite("www.clarochile.cl", "claro")
	u.AddSite("www.claropr.com", "claro")

	u.AddSite("down.test", "")
	u.SetDown("down.test", true)
	u.AddSite("err500.test", "")
	u.SetPage("err500.test", "/", websim.Page{Kind: websim.KindServerError})
	return u
}

func newTestCrawler(u *websim.Universe) *Crawler {
	return New(Options{Transport: u, Concurrency: 4})
}

func TestCrawlDirect(t *testing.T) {
	c := newTestCrawler(buildUniverse())
	res := c.Crawl(context.Background(), Task{ASN: 15133, URL: "https://www.edg.io"})
	if !res.OK || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if res.FinalURL != "https://www.edg.io/" || res.Hops != 0 {
		t.Errorf("FinalURL=%q Hops=%d", res.FinalURL, res.Hops)
	}
	if res.FaviconHash == "" {
		t.Error("expected favicon hash")
	}
}

func TestCrawlHTTPRedirect(t *testing.T) {
	c := newTestCrawler(buildUniverse())
	res := c.Crawl(context.Background(), Task{ASN: 22822, URL: "www.llnw.com"})
	if !res.OK {
		t.Fatalf("res = %+v", res)
	}
	if res.FinalURL != "https://www.edg.io/" {
		t.Errorf("FinalURL = %q", res.FinalURL)
	}
	if res.Hops != 1 || len(res.Chain) != 2 {
		t.Errorf("Hops=%d Chain=%v", res.Hops, res.Chain)
	}
}

// TestCrawlMetaRefreshChain reproduces the Clearwire example (Fig. 5b):
// clearwire → sprint (HTTP) → t-mobile (meta refresh). A plain HTTP
// client would stop at sprint.com; the R&R crawler must reach t-mobile.
func TestCrawlMetaRefreshChain(t *testing.T) {
	c := newTestCrawler(buildUniverse())
	res := c.Crawl(context.Background(), Task{ASN: 16586, URL: "http://www.clearwire.com"})
	if !res.OK {
		t.Fatalf("res = %+v, err=%v", res, res.Err)
	}
	if res.FinalURL != "https://www.t-mobile.com/" {
		t.Errorf("FinalURL = %q, want t-mobile", res.FinalURL)
	}
	if res.Hops != 2 {
		t.Errorf("Hops = %d, want 2", res.Hops)
	}
	wantChain := []string{"http://www.clearwire.com/", "https://www.sprint.com/", "https://www.t-mobile.com/"}
	if len(res.Chain) != len(wantChain) {
		t.Fatalf("Chain = %v", res.Chain)
	}
	for i := range wantChain {
		if res.Chain[i] != wantChain[i] {
			t.Errorf("Chain[%d] = %q, want %q", i, res.Chain[i], wantChain[i])
		}
	}
}

func TestSharedFavicons(t *testing.T) {
	c := newTestCrawler(buildUniverse())
	r1 := c.Crawl(context.Background(), Task{ASN: 1, URL: "www.clarochile.cl"})
	r2 := c.Crawl(context.Background(), Task{ASN: 2, URL: "www.claropr.com"})
	r3 := c.Crawl(context.Background(), Task{ASN: 3, URL: "www.edg.io"})
	if r1.FaviconHash == "" || r1.FaviconHash != r2.FaviconHash {
		t.Errorf("claro favicons differ: %q vs %q", r1.FaviconHash, r2.FaviconHash)
	}
	if r1.FaviconHash == r3.FaviconHash {
		t.Error("claro and edgio favicons should differ")
	}
}

func TestCrawlFailures(t *testing.T) {
	c := newTestCrawler(buildUniverse())
	ctx := context.Background()

	res := c.Crawl(ctx, Task{ASN: 1, URL: "https://down.test/"})
	if res.OK || res.Err == nil {
		t.Errorf("down host: %+v", res)
	}
	res = c.Crawl(ctx, Task{ASN: 1, URL: "https://nohost.test/"})
	if res.OK || res.Err == nil {
		t.Errorf("unknown host: %+v", res)
	}
	res = c.Crawl(ctx, Task{ASN: 1, URL: "https://err500.test/"})
	if res.OK || res.Err == nil || !strings.Contains(res.Err.Error(), "500") {
		t.Errorf("500 host: %+v err=%v", res, res.Err)
	}
	res = c.Crawl(ctx, Task{ASN: 1, URL: "::::"})
	if res.OK || res.Err == nil {
		t.Errorf("bad URL: %+v", res)
	}
}

func TestRedirectLoop(t *testing.T) {
	u := websim.New()
	u.RedirectHost("a.loop", "https://b.loop/")
	u.RedirectHost("b.loop", "https://a.loop/")
	c := newTestCrawler(u)
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://a.loop/"})
	if res.OK || res.Err == nil || !strings.Contains(res.Err.Error(), "loop") {
		t.Errorf("res = %+v err=%v", res, res.Err)
	}
}

func TestMaxHops(t *testing.T) {
	u := websim.New()
	// Chain of 6 hops with MaxHops 3.
	hosts := []string{"h0.test", "h1.test", "h2.test", "h3.test", "h4.test", "h5.test"}
	for i := 0; i < len(hosts)-1; i++ {
		u.RedirectHost(hosts[i], "https://"+hosts[i+1]+"/")
	}
	u.AddSite(hosts[len(hosts)-1], "")
	c := New(Options{Transport: u, MaxHops: 3})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "https://h0.test/"})
	if res.OK || res.Err == nil || !strings.Contains(res.Err.Error(), "exceeds") {
		t.Errorf("res = %+v err=%v", res, res.Err)
	}
	// With a generous budget the same chain resolves.
	c2 := New(Options{Transport: u, MaxHops: 10})
	res2 := c2.Crawl(context.Background(), Task{ASN: 1, URL: "https://h0.test/"})
	if !res2.OK || res2.FinalURL != "https://h5.test/" {
		t.Errorf("res2 = %+v", res2)
	}
}

func TestCrawlAllOrderAndConcurrency(t *testing.T) {
	u := buildUniverse()
	c := newTestCrawler(u)
	tasks := []Task{
		{ASN: 22822, URL: "www.llnw.com"},
		{ASN: 15133, URL: "www.edgecast.com"},
		{ASN: 16586, URL: "www.clearwire.com"},
		{ASN: 9999, URL: "https://down.test/"},
	}
	results := c.CrawlAll(context.Background(), tasks)
	if len(results) != len(tasks) {
		t.Fatalf("got %d results", len(results))
	}
	for i := range tasks {
		if results[i].Task.ASN != tasks[i].ASN {
			t.Errorf("result %d out of order: %v", i, results[i].Task)
		}
	}
	if !results[0].OK || !results[1].OK || !results[2].OK || results[3].OK {
		t.Errorf("OK flags: %v %v %v %v", results[0].OK, results[1].OK, results[2].OK, results[3].OK)
	}
	finals := FinalURLs(results)
	if len(finals) != 3 {
		t.Fatalf("FinalURLs = %v", finals)
	}
	if finals[0].URL != "https://www.edg.io/" || finals[1].URL != "https://www.edg.io/" {
		t.Errorf("finals = %v", finals)
	}
}

func TestCrawlAllCancellation(t *testing.T) {
	u := buildUniverse()
	c := newTestCrawler(u)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := c.CrawlAll(ctx, []Task{{ASN: 1, URL: "www.edg.io"}})
	if results[0].Err == nil {
		t.Error("cancelled crawl should error")
	}
}

func TestPerHostDelay(t *testing.T) {
	u := websim.New()
	u.AddSite("slow.test", "")
	c := New(Options{Transport: u, PerHostDelay: 30 * time.Millisecond, SkipFavicons: true})
	start := time.Now()
	c.Crawl(context.Background(), Task{ASN: 1, URL: "https://slow.test/"})
	c.Crawl(context.Background(), Task{ASN: 2, URL: "https://slow.test/"})
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("per-host delay not enforced: %v", elapsed)
	}
}

func TestSkipFavicons(t *testing.T) {
	u := buildUniverse()
	c := New(Options{Transport: u, SkipFavicons: true})
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "www.clarochile.cl"})
	if !res.OK || res.FaviconHash != "" {
		t.Errorf("res = %+v", res)
	}
}

func TestFaviconCache(t *testing.T) {
	u := buildUniverse()
	c := newTestCrawler(u)
	ctx := context.Background()
	c.Crawl(ctx, Task{ASN: 1, URL: "www.edg.io"})
	before := u.Requests()
	c.Crawl(ctx, Task{ASN: 2, URL: "www.edg.io"})
	after := u.Requests()
	// Second crawl should refetch the page (1 request) but hit the
	// favicon cache (no icon request).
	if after-before != 1 {
		t.Errorf("requests for cached-favicon crawl = %d, want 1", after-before)
	}
}

func TestMetaRefreshTarget(t *testing.T) {
	cases := []struct{ html, want string }{
		{`<meta http-equiv="refresh" content="0; url=https://x.test/">`, "https://x.test/"},
		{`<META HTTP-EQUIV='REFRESH' CONTENT='5;URL=/relative'>`, "/relative"},
		{`<meta content="0; url=https://y.test" http-equiv="refresh">`, "https://y.test"},
		{`<meta http-equiv="refresh" content="30">`, ""}, // reload, no url
		{`<meta name="viewport" content="width=device-width">`, ""},
		{`no tags at all`, ""},
		{`<meta http-equiv="refresh" content="0; url='quoted.test'">`, "quoted.test"},
	}
	for _, c := range cases {
		if got := MetaRefreshTarget(c.html); got != c.want {
			t.Errorf("MetaRefreshTarget(%q) = %q, want %q", c.html, got, c.want)
		}
	}
}

func TestFaviconLink(t *testing.T) {
	cases := []struct{ html, want string }{
		{`<link rel="icon" href="/fav.png">`, "/fav.png"},
		{`<link rel="shortcut icon" href="https://cdn.test/i.ico">`, "https://cdn.test/i.ico"},
		{`<link rel="stylesheet" href="/style.css">`, ""},
		{`<LINK REL='ICON' HREF='/up.ico'>`, "/up.ico"},
		{``, ""},
	}
	for _, c := range cases {
		if got := FaviconLink(c.html); got != c.want {
			t.Errorf("FaviconLink(%q) = %q, want %q", c.html, got, c.want)
		}
	}
}

func TestDeclaredFaviconLinkPreferred(t *testing.T) {
	u := websim.New()
	u.AddSite("declared.test", "brandicon")
	// Page declares an icon at a custom path; install it.
	u.SetPage("declared.test", "/", websim.Page{
		Kind:  websim.KindContent,
		Title: "declared",
		Body:  `<link rel="icon" href="/favicon.ico">`,
	})
	c := newTestCrawler(u)
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "declared.test"})
	if !res.OK || res.FaviconHash == "" {
		t.Errorf("res = %+v", res)
	}
}

func TestConcurrentCrawlsRace(t *testing.T) {
	u := buildUniverse()
	c := New(Options{Transport: u, Concurrency: 8})
	var tasks []Task
	urls := []string{"www.llnw.com", "www.edgecast.com", "www.clearwire.com",
		"www.clarochile.cl", "www.claropr.com", "www.edg.io"}
	for i := 0; i < 60; i++ {
		tasks = append(tasks, Task{ASN: asnum.ASN(1000 + i), URL: urls[i%len(urls)]})
	}
	var okCount atomic.Int64
	results := c.CrawlAll(context.Background(), tasks)
	for _, r := range results {
		if r.OK {
			okCount.Add(1)
		}
	}
	if okCount.Load() != 60 {
		t.Errorf("ok = %d, want 60", okCount.Load())
	}
}
