package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"github.com/nu-aqualab/borges/internal/websim"
)

// dnsShim routes every request to a single server address while
// preserving the logical Host — the test-bench equivalent of pointing
// DNS at a lab machine. It lets the crawler exercise genuine TCP + HTTP
// against the simulated universe served by httptest.
type dnsShim struct {
	target *url.URL
	inner  http.RoundTripper
}

func (d *dnsShim) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	clone.Host = req.URL.Host // logical host travels in the Host header
	clone.URL.Scheme = d.target.Scheme
	clone.URL.Host = d.target.Host
	return d.inner.RoundTrip(clone)
}

// TestCrawlOverRealSockets runs the full crawl path — redirect chain,
// meta refresh, favicon fetch — through a real HTTP server.
func TestCrawlOverRealSockets(t *testing.T) {
	u := websim.New()
	u.AddSite("final.test", "brandicon")
	u.RedirectHost("hop1.test", "http://hop2.test/")
	u.MetaRefreshHost("hop2.test", "http://final.test/")

	srv := httptest.NewServer(u.Handler())
	defer srv.Close()
	target, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	c := New(Options{Transport: &dnsShim{target: target, inner: http.DefaultTransport}})
	res := c.Crawl(context.Background(), Task{ASN: 64500, URL: "http://hop1.test/"})
	if !res.OK {
		t.Fatalf("res = %+v err=%v", res, res.Err)
	}
	if res.FinalURL != "http://final.test/" {
		t.Errorf("FinalURL = %q", res.FinalURL)
	}
	if res.Hops != 2 {
		t.Errorf("Hops = %d, want 2 (HTTP redirect + meta refresh)", res.Hops)
	}
	if res.FaviconHash == "" {
		t.Error("favicon not fetched over real sockets")
	}

	// A batch over the same server exercises connection reuse.
	tasks := []Task{
		{ASN: 1, URL: "http://final.test/"},
		{ASN: 2, URL: "http://hop1.test/"},
		{ASN: 3, URL: "http://hop2.test/"},
	}
	results := c.CrawlAll(context.Background(), tasks)
	for i, r := range results {
		if !r.OK || r.FinalURL != "http://final.test/" {
			t.Errorf("task %d: %+v err=%v", i, r, r.Err)
		}
	}
	if results[0].FaviconHash != res.FaviconHash {
		t.Error("favicon hash differs across real-socket crawls")
	}
}

// TestCrawlRealSocketFailures exercises the error paths over TCP.
func TestCrawlRealSocketFailures(t *testing.T) {
	u := websim.New()
	u.AddSite("up.test", "")
	u.AddSite("down.test", "")
	u.SetDown("down.test", true)
	srv := httptest.NewServer(u.Handler())
	defer srv.Close()
	target, _ := url.Parse(srv.URL)
	c := New(Options{Transport: &dnsShim{target: target, inner: http.DefaultTransport}})

	// The handler maps transport-level universe failures to 502.
	res := c.Crawl(context.Background(), Task{ASN: 1, URL: "http://down.test/"})
	if res.OK || res.Err == nil {
		t.Errorf("down host over sockets: %+v", res)
	}
	res = c.Crawl(context.Background(), Task{ASN: 1, URL: "http://up.test/missing"})
	if res.OK || res.Err == nil {
		t.Errorf("404 over sockets: %+v", res)
	}
}
