package crawler

import (
	"context"
	"io"
	"sync"
)

// ctxBody makes a response body's reads abort promptly when the
// request context is cancelled. net/http only checks the context
// between reads it controls; a body served by a slow-loris peer (or
// any transport that isn't context-aware) can otherwise pin a reader
// until the transport's own timeout. A watcher goroutine closes the
// underlying body on cancellation, which unblocks any in-flight Read;
// the watcher itself exits on Close, so a fully read body leaks
// nothing.
type ctxBody struct {
	ctx context.Context
	rc  io.ReadCloser

	stop chan struct{}
	once sync.Once
}

// newCtxBody wraps rc so reads abort when ctx is cancelled.
func newCtxBody(ctx context.Context, rc io.ReadCloser) io.ReadCloser {
	b := &ctxBody{ctx: ctx, rc: rc, stop: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			rc.Close()
		case <-b.stop:
		}
	}()
	return b
}

// Read implements io.Reader. After cancellation the context's error is
// reported rather than whatever the forced close produced, so callers
// see the cause, not the mechanism.
func (b *ctxBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if err != nil && b.ctx.Err() != nil {
		return n, b.ctx.Err()
	}
	return n, err
}

// Close implements io.Closer and releases the watcher.
func (b *ctxBody) Close() error {
	b.once.Do(func() { close(b.stop) })
	return b.rc.Close()
}
