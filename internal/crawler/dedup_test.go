package crawler

import (
	"context"
	"testing"

	"github.com/nu-aqualab/borges/internal/cache"
)

// TestCrawlAllDeduplicatesCanonicalURLs is the acceptance check for
// crawl-level dedup: many tasks whose URLs canonicalize identically
// must issue exactly one fetch per unique canonical URL, and every
// task must still receive a result carrying its own identity.
func TestCrawlAllDeduplicatesCanonicalURLs(t *testing.T) {
	u := buildUniverse()
	c := newTestCrawler(u)
	tasks := []Task{
		{ASN: 1, URL: "https://www.edg.io"},
		{ASN: 2, URL: "https://www.edg.io/"},       // same canonical URL
		{ASN: 3, URL: "www.edg.io"},                // scheme-less variant
		{ASN: 4, URL: "https://www.clarochile.cl"}, // distinct site
		{ASN: 5, URL: "https://www.clarochile.cl"},
		{ASN: 6, URL: "http://bad url with spaces"}, // uncanonicalizable
	}
	results := c.CrawlAll(context.Background(), tasks)

	// edg.io: 1 page fetch + 1 favicon fetch; clarochile: the same.
	// Without dedup this would be 5 page fetches.
	if got := u.Requests(); got != 4 {
		t.Errorf("transport requests = %d, want 4 (one page + one favicon per unique URL)", got)
	}
	for i := 0; i < 5; i++ {
		if results[i].Task != tasks[i] {
			t.Errorf("result %d carries task %+v, want %+v", i, results[i].Task, tasks[i])
		}
		if !results[i].OK {
			t.Errorf("result %d not OK: %v", i, results[i].Err)
		}
	}
	for i := 0; i < 3; i++ {
		if results[i].FinalURL != "https://www.edg.io/" {
			t.Errorf("result %d FinalURL = %q", i, results[i].FinalURL)
		}
	}
	if results[5].Err == nil {
		t.Error("uncanonicalizable task should carry an error")
	}
}

// TestCrawlCacheWarmRun crawls through a shared cache twice with two
// crawler instances; the second run must not touch the transport and
// must still serve favicon bytes for the classifier.
func TestCrawlCacheWarmRun(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := buildUniverse()
	tasks := []Task{
		{ASN: 1, URL: "https://www.edg.io"},
		{ASN: 2, URL: "www.llnw.com"}, // redirects to edg.io
		{ASN: 3, URL: "https://www.clarochile.cl"},
		{ASN: 4, URL: "https://down.test"}, // unreachable: outcome still cached
	}
	cold := New(Options{Transport: u, Concurrency: 4, Cache: store})
	coldRes := cold.CrawlAll(context.Background(), tasks)
	u.ResetRequests()

	warm := New(Options{Transport: u, Concurrency: 4, Cache: store})
	warmRes := warm.CrawlAll(context.Background(), tasks)
	if got := u.Requests(); got != 0 {
		t.Errorf("warm run issued %d transport requests, want 0", got)
	}
	for i := range tasks {
		w, c := warmRes[i], coldRes[i]
		if w.OK != c.OK || w.FinalURL != c.FinalURL || w.FaviconHash != c.FaviconHash || w.Hops != c.Hops {
			t.Errorf("task %d: warm %+v != cold %+v", i, w, c)
		}
		if (w.Err == nil) != (c.Err == nil) {
			t.Errorf("task %d: warm err %v vs cold err %v", i, w.Err, c.Err)
		}
	}
	// The warm crawler can serve icon bytes it never downloaded.
	if h := warmRes[0].FaviconHash; h == "" || len(warm.IconBytes(h)) == 0 {
		t.Error("warm crawler lacks rehydrated favicon bytes")
	}
}
