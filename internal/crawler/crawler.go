// Package crawler implements the web-scraping stage of Borges's
// web-based inference (§4.3.1). Where the paper drives a Selenium
// headless browser to load each website referenced in PeeringDB —
// executing refreshes and redirects ("R&R") to discover the final URL —
// this crawler follows both HTTP 3xx redirect chains and HTML
// <meta http-equiv="refresh"> redirects over net/http, records the full
// chain, and retrieves the final site's favicon (the paper uses Google's
// Favicon API; here the icon is fetched from the site itself and hashed
// for identity).
//
// The crawler is concurrency-bounded, context-aware, per-host
// rate-limited, and bounds both redirect-chain length and response body
// size, as an unattended crawl over operator-supplied URLs must be.
package crawler

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// Task is one crawl unit: a network and its self-reported website.
type Task struct {
	ASN asnum.ASN
	URL string
}

// Result is the outcome of crawling one task.
type Result struct {
	Task Task
	// OK reports whether a final page was reached with HTTP 200.
	OK bool
	// FinalURL is the canonical URL of the last page reached.
	FinalURL string
	// Chain holds every URL visited, reported URL first.
	Chain []string
	// Hops counts redirects followed (HTTP + meta refresh).
	Hops int
	// FaviconHash is the hex SHA-256 of the final site's favicon bytes,
	// or "" if the site serves none.
	FaviconHash string
	// Err describes a failure (unreachable host, redirect loop, …).
	Err error
}

// Options configures a Crawler. The zero value is usable: defaults are
// filled in by New.
type Options struct {
	// Transport is the HTTP transport to use. Defaults to
	// http.DefaultTransport; tests and simulations inject a
	// websim.Universe here.
	Transport http.RoundTripper
	// MaxHops bounds the redirect chain (default 10).
	MaxHops int
	// MaxBody bounds how many bytes of a page body are read when
	// scanning for meta refreshes and favicon links (default 256 KiB).
	MaxBody int64
	// Concurrency bounds parallel fetches in CrawlAll (default 16).
	Concurrency int
	// PerHostDelay is the minimum interval between two requests to the
	// same host (default 0; set >0 when crawling real sites).
	PerHostDelay time.Duration
	// Timeout bounds each individual HTTP request (default 15s).
	Timeout time.Duration
	// SkipFavicons disables retrieval of the final site's favicon
	// (favicons are fetched by default; skip for R&R-only crawls).
	SkipFavicons bool
	// UserAgent is sent with every request.
	UserAgent string
}

// Crawler resolves reported URLs to final URLs and favicons.
type Crawler struct {
	opts   Options
	client *http.Client

	mu        sync.Mutex
	lastHit   map[string]time.Time
	favCache  map[string]string // final host -> favicon hash
	iconBytes map[string][]byte // favicon hash -> icon payload
}

// New returns a Crawler with defaults applied.
func New(opts Options) *Crawler {
	if opts.Transport == nil {
		opts.Transport = http.DefaultTransport
	}
	if opts.MaxHops <= 0 {
		opts.MaxHops = 10
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 256 << 10
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.UserAgent == "" {
		opts.UserAgent = "borges-crawler/1.0 (AS-to-Org research)"
	}
	return &Crawler{
		opts: opts,
		client: &http.Client{
			Transport: opts.Transport,
			// Redirects are followed manually so the chain is recorded
			// and meta refreshes are handled uniformly.
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
			Timeout: opts.Timeout,
		},
		lastHit:   make(map[string]time.Time),
		favCache:  make(map[string]string),
		iconBytes: make(map[string][]byte),
	}
}

func (o Options) faviconsEnabled() bool { return !o.SkipFavicons }

// Crawl resolves one task.
func (c *Crawler) Crawl(ctx context.Context, t Task) Result {
	res := Result{Task: t}
	cur, err := urlmatch.Canonicalize(t.URL)
	if err != nil {
		res.Err = fmt.Errorf("crawler: %w", err)
		return res
	}
	seen := make(map[string]bool)
	for {
		if ctx.Err() != nil {
			res.Err = ctx.Err()
			return res
		}
		res.Chain = append(res.Chain, cur)
		if seen[cur] {
			res.Err = fmt.Errorf("crawler: redirect loop at %s", cur)
			res.FinalURL = cur
			return res
		}
		seen[cur] = true

		next, status, body, err := c.fetch(ctx, cur)
		if err != nil {
			res.Err = err
			res.FinalURL = cur
			return res
		}
		if next == "" {
			res.FinalURL = cur
			res.OK = status == http.StatusOK
			if !res.OK {
				res.Err = fmt.Errorf("crawler: %s returned status %d", cur, status)
			} else if c.opts.faviconsEnabled() {
				res.FaviconHash = c.favicon(ctx, cur, body)
			}
			return res
		}
		if res.Hops++; res.Hops > c.opts.MaxHops {
			res.Err = fmt.Errorf("crawler: redirect chain exceeds %d hops from %s", c.opts.MaxHops, t.URL)
			res.FinalURL = cur
			return res
		}
		cur = next
	}
}

// fetch GETs a URL. It returns the next URL to follow ("" when cur is
// final), the HTTP status, and the page body when the page is final.
func (c *Crawler) fetch(ctx context.Context, cur string) (next string, status int, body string, err error) {
	c.throttle(urlmatch.Host(cur))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cur, nil)
	if err != nil {
		return "", 0, "", fmt.Errorf("crawler: build request: %w", err)
	}
	req.Header.Set("User-Agent", c.opts.UserAgent)
	resp, err := c.client.Do(req)
	if err != nil {
		return "", 0, "", fmt.Errorf("crawler: get %s: %w", cur, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode >= 300 && resp.StatusCode < 400 {
		loc := resp.Header.Get("Location")
		if loc == "" {
			return "", resp.StatusCode, "", fmt.Errorf("crawler: %s: redirect without Location", cur)
		}
		abs, err := resolveRef(cur, loc)
		if err != nil {
			return "", resp.StatusCode, "", err
		}
		return abs, resp.StatusCode, "", nil
	}

	raw, err := io.ReadAll(io.LimitReader(resp.Body, c.opts.MaxBody))
	if err != nil {
		return "", resp.StatusCode, "", fmt.Errorf("crawler: read %s: %w", cur, err)
	}
	page := string(raw)
	if resp.StatusCode == http.StatusOK && isHTML(resp.Header.Get("Content-Type")) {
		if target := MetaRefreshTarget(page); target != "" {
			abs, err := resolveRef(cur, target)
			if err == nil {
				return abs, resp.StatusCode, "", nil
			}
		}
	}
	return "", resp.StatusCode, page, nil
}

func isHTML(contentType string) bool {
	return strings.Contains(strings.ToLower(contentType), "text/html")
}

func resolveRef(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("crawler: parse base %q: %w", base, err)
	}
	r, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", fmt.Errorf("crawler: parse redirect target %q: %w", ref, err)
	}
	return urlmatch.Canonicalize(b.ResolveReference(r).String())
}

func (c *Crawler) throttle(host string) {
	if c.opts.PerHostDelay <= 0 || host == "" {
		return
	}
	for {
		c.mu.Lock()
		last, ok := c.lastHit[host]
		now := time.Now()
		if !ok || now.Sub(last) >= c.opts.PerHostDelay {
			c.lastHit[host] = now
			c.mu.Unlock()
			return
		}
		wait := c.opts.PerHostDelay - now.Sub(last)
		c.mu.Unlock()
		time.Sleep(wait)
	}
}

// metaRefreshRe matches <meta http-equiv="refresh" content="N; url=…">
// in either attribute order, with flexible quoting — the minimum a
// browser would honour.
var (
	metaTagRe    = regexp.MustCompile(`(?is)<meta\s[^>]*>`)
	httpEquivRe  = regexp.MustCompile(`(?i)http-equiv\s*=\s*["']?\s*refresh\s*["']?`)
	contentRe    = regexp.MustCompile(`(?i)content\s*=\s*("([^"]*)"|'([^']*)'|([^\s>]+))`)
	refreshURLRe = regexp.MustCompile(`(?i)^\s*\d+\s*(?:;\s*url\s*=\s*(.+))?\s*$`)
)

// MetaRefreshTarget extracts the redirect target of the first
// meta-refresh tag in an HTML page, or "" if none. A refresh without a
// url= clause (a pure self-reload) yields "".
func MetaRefreshTarget(page string) string {
	for _, tag := range metaTagRe.FindAllString(page, -1) {
		if !httpEquivRe.MatchString(tag) {
			continue
		}
		m := contentRe.FindStringSubmatch(tag)
		if m == nil {
			continue
		}
		content := m[2] + m[3] + m[4] // whichever quoting variant matched
		um := refreshURLRe.FindStringSubmatch(content)
		if um == nil || um[1] == "" {
			continue
		}
		target := strings.TrimSpace(um[1])
		target = strings.Trim(target, `"'`)
		if target != "" {
			return target
		}
	}
	return ""
}

// faviconLinkRe extracts <link rel="icon" href="…"> (and shortcut icon).
var faviconLinkRe = regexp.MustCompile(`(?is)<link\s[^>]*rel\s*=\s*["']?(?:shortcut\s+)?icon["']?[^>]*>`)
var hrefRe = regexp.MustCompile(`(?i)href\s*=\s*("([^"]*)"|'([^']*)'|([^\s>]+))`)

// FaviconLink extracts the favicon href declared in an HTML page, or ""
// if none is declared.
func FaviconLink(page string) string {
	tag := faviconLinkRe.FindString(page)
	if tag == "" {
		return ""
	}
	m := hrefRe.FindStringSubmatch(tag)
	if m == nil {
		return ""
	}
	return strings.TrimSpace(m[2] + m[3] + m[4])
}

// favicon fetches and hashes the favicon for a final page. It prefers
// the page's declared <link rel="icon"> and falls back to /favicon.ico.
// Results are cached per host.
func (c *Crawler) favicon(ctx context.Context, finalURL, page string) string {
	host := urlmatch.Host(finalURL)
	c.mu.Lock()
	if h, ok := c.favCache[host]; ok {
		c.mu.Unlock()
		return h
	}
	c.mu.Unlock()

	var candidates []string
	if link := FaviconLink(page); link != "" {
		if abs, err := resolveRef(finalURL, link); err == nil {
			candidates = append(candidates, abs)
		}
	}
	if u, err := url.Parse(finalURL); err == nil {
		u.Path = "/favicon.ico"
		u.RawQuery = ""
		candidates = append(candidates, u.String())
	}

	hash := ""
	for _, cand := range candidates {
		c.throttle(urlmatch.Host(cand))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cand, nil)
		if err != nil {
			continue
		}
		req.Header.Set("User-Agent", c.opts.UserAgent)
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, c.opts.MaxBody))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || len(raw) == 0 {
			continue
		}
		sum := sha256.Sum256(raw)
		hash = hex.EncodeToString(sum[:])
		c.mu.Lock()
		if _, ok := c.iconBytes[hash]; !ok && len(raw) <= maxRetainedIcon {
			c.iconBytes[hash] = raw
		}
		c.mu.Unlock()
		break
	}
	c.mu.Lock()
	c.favCache[host] = hash
	c.mu.Unlock()
	return hash
}

// maxRetainedIcon bounds per-icon memory in the hash→bytes cache.
const maxRetainedIcon = 64 << 10

// IconBytes returns the favicon payload for a hash observed during
// crawling, or nil. The classifier's step 2 attaches these bytes to its
// LLM prompts.
func (c *Crawler) IconBytes(hash string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.iconBytes[hash]
}

// CrawlAll resolves all tasks with bounded concurrency. Results are
// returned in task order regardless of completion order. The context
// cancels outstanding work; cancelled tasks carry ctx.Err().
func (c *Crawler) CrawlAll(ctx context.Context, tasks []Task) []Result {
	results := make([]Result, len(tasks))
	sem := make(chan struct{}, c.opts.Concurrency)
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t Task) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				results[i] = c.Crawl(ctx, t)
			case <-ctx.Done():
				results[i] = Result{Task: t, Err: ctx.Err()}
			}
		}(i, t)
	}
	wg.Wait()
	return results
}

// FinalURLs converts successful results into the final-URL records the
// matching module consumes.
func FinalURLs(results []Result) []urlmatch.FinalURL {
	var out []urlmatch.FinalURL
	for _, r := range results {
		if r.OK {
			out = append(out, urlmatch.FinalURL{ASN: r.Task.ASN, URL: r.FinalURL})
		}
	}
	return out
}
