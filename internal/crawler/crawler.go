// Package crawler implements the web-scraping stage of Borges's
// web-based inference (§4.3.1). Where the paper drives a Selenium
// headless browser to load each website referenced in PeeringDB —
// executing refreshes and redirects ("R&R") to discover the final URL —
// this crawler follows both HTTP 3xx redirect chains and HTML
// <meta http-equiv="refresh"> redirects over net/http, records the full
// chain, and retrieves the final site's favicon (the paper uses Google's
// Favicon API; here the icon is fetched from the site itself and hashed
// for identity).
//
// The crawler is concurrency-bounded, context-aware, per-host
// rate-limited, and bounds both redirect-chain length and response body
// size, as an unattended crawl over operator-supplied URLs must be.
package crawler

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cache"
	"github.com/nu-aqualab/borges/internal/resilience"
	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// Task is one crawl unit: a network and its self-reported website.
type Task struct {
	ASN asnum.ASN
	URL string
}

// Result is the outcome of crawling one task.
type Result struct {
	Task Task
	// OK reports whether a final page was reached with HTTP 200.
	OK bool
	// FinalURL is the canonical URL of the last page reached.
	FinalURL string
	// Chain holds every URL visited, reported URL first.
	Chain []string
	// Hops counts redirects followed (HTTP + meta refresh).
	Hops int
	// FaviconHash is the hex SHA-256 of the final site's favicon bytes,
	// or "" if the site serves none.
	FaviconHash string
	// Err describes a failure (unreachable host, redirect loop, …).
	Err error
}

// Options configures a Crawler. The zero value is usable: defaults are
// filled in by New.
type Options struct {
	// Transport is the HTTP transport to use. Defaults to
	// http.DefaultTransport; tests and simulations inject a
	// websim.Universe here.
	Transport http.RoundTripper
	// MaxHops bounds the redirect chain (default 10).
	MaxHops int
	// MaxBody bounds how many bytes of a page body are read when
	// scanning for meta refreshes and favicon links (default 256 KiB).
	MaxBody int64
	// Concurrency bounds parallel fetches in CrawlAll (default 16).
	Concurrency int
	// PerHostDelay is the minimum interval between two requests to the
	// same host (default 0; set >0 when crawling real sites).
	PerHostDelay time.Duration
	// Timeout bounds each individual HTTP request (default 15s).
	Timeout time.Duration
	// SkipFavicons disables retrieval of the final site's favicon
	// (favicons are fetched by default; skip for R&R-only crawls).
	SkipFavicons bool
	// UserAgent is sent with every request.
	UserAgent string
	// Retry, when non-nil, retries transient transport faults
	// (timeouts, resets, 429/5xx, torn bodies) per request under the
	// unified policy. Nil disables retries: every fault surfaces after
	// one attempt.
	Retry *resilience.Policy
	// Breakers, when non-nil, supplies per-host circuit breakers keyed
	// "crawl:<host>": after repeated transient failures a host's
	// fetches are denied fast until a cooldown probe succeeds, so one
	// melting host cannot absorb the whole run's retry budget.
	Breakers *resilience.BreakerSet
	// Cache, when non-nil, memoizes crawl outcomes content-addressed
	// by canonical URL and the options that shape a result (MaxHops,
	// MaxBody, SkipFavicons, UserAgent). Concurrent crawls of one
	// canonical URL collapse to a single fetch, and with a disk-tier
	// cache a warm re-run resolves every previously seen URL without a
	// network round-trip. Cached entries carry the favicon hash and
	// payload, so the classifier's image prompts are byte-identical
	// across runs.
	Cache *cache.Cache
}

// Crawler resolves reported URLs to final URLs and favicons.
type Crawler struct {
	opts   Options
	client *http.Client
	exec   *resilience.Executor

	mu        sync.Mutex
	lastHit   map[string]time.Time
	favCache  map[string]string // final host -> favicon hash
	iconBytes map[string][]byte // favicon hash -> icon payload
}

// New returns a Crawler with defaults applied.
func New(opts Options) *Crawler {
	if opts.Transport == nil {
		opts.Transport = http.DefaultTransport
	}
	if opts.MaxHops <= 0 {
		opts.MaxHops = 10
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 256 << 10
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.UserAgent == "" {
		opts.UserAgent = "borges-crawler/1.0 (AS-to-Org research)"
	}
	return &Crawler{
		opts: opts,
		exec: &resilience.Executor{Policy: opts.Retry, Breakers: opts.Breakers},
		client: &http.Client{
			Transport: opts.Transport,
			// Redirects are followed manually so the chain is recorded
			// and meta refreshes are handled uniformly.
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
			Timeout: opts.Timeout,
		},
		lastHit:   make(map[string]time.Time),
		favCache:  make(map[string]string),
		iconBytes: make(map[string][]byte),
	}
}

func (o Options) faviconsEnabled() bool { return !o.SkipFavicons }

// Crawl resolves one task, consulting the result cache when one is
// configured.
func (c *Crawler) Crawl(ctx context.Context, t Task) Result {
	canon, err := urlmatch.Canonicalize(t.URL)
	if err != nil {
		return Result{Task: t, Err: fmt.Errorf("crawler: %w", err)}
	}
	if c.opts.Cache == nil {
		return c.resolve(ctx, t, canon)
	}
	raw, err := c.opts.Cache.GetOrFill(ctx, c.cacheKey(canon), func(ctx context.Context) ([]byte, error) {
		r := c.resolve(ctx, t, canon)
		if r.Err != nil {
			if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
				// A cancelled crawl says nothing about the site; caching
				// it would poison warm runs.
				return nil, r.Err
			}
			if resilience.IsTransient(r.Err) {
				// Transient faults — timeouts, resets, 429/5xx, open
				// breakers — are conditions of the moment, not
				// observations about the site. The outcome still
				// reaches every waiter in this run (via the typed
				// error), but nothing is cached, so a later healthy
				// run re-resolves the URL instead of inheriting the
				// outage.
				return nil, &transientResult{res: r}
			}
		}
		return json.Marshal(c.toCached(r))
	})
	if err != nil {
		var tr *transientResult
		if errors.As(err, &tr) {
			r := tr.res
			r.Task = t
			return r
		}
		return Result{Task: t, Err: err}
	}
	var ce cachedCrawl
	if err := json.Unmarshal(raw, &ce); err != nil {
		return Result{Task: t, Err: fmt.Errorf("crawler: decode cached crawl: %w", err)}
	}
	return c.fromCached(t, ce)
}

// cacheKey fingerprints a canonical URL together with every option
// that shapes the outcome. Transport identity is deliberately
// excluded: a cache directory belongs to one web (live or one
// simulated universe), which the caller controls.
func (c *Crawler) cacheKey(canon string) string {
	return cache.Key("crawl", canon,
		strconv.Itoa(c.opts.MaxHops),
		strconv.FormatInt(c.opts.MaxBody, 10),
		strconv.FormatBool(c.opts.SkipFavicons),
		c.opts.UserAgent,
	)
}

// transientResult carries an uncacheable outcome out of a GetOrFill
// fill: singleflight hands the error to every goroutine waiting on the
// key, so concurrent crawls of one URL share the degraded result while
// the cache stays clean.
type transientResult struct{ res Result }

func (e *transientResult) Error() string {
	return fmt.Sprintf("crawler: transient outcome for %s (not cached): %v", e.res.FinalURL, e.res.Err)
}

// cachedCrawl is the task-independent wire form of a crawl outcome.
type cachedCrawl struct {
	OK          bool     `json:"ok"`
	FinalURL    string   `json:"final_url,omitempty"`
	Chain       []string `json:"chain,omitempty"`
	Hops        int      `json:"hops,omitempty"`
	FaviconHash string   `json:"favicon,omitempty"`
	Err         string   `json:"err,omitempty"`
	// Icon carries the favicon payload (bounded by maxRetainedIcon) so
	// warm runs can rebuild the classifier's image prompts without
	// refetching.
	Icon []byte `json:"icon,omitempty"`
}

func (c *Crawler) toCached(r Result) cachedCrawl {
	ce := cachedCrawl{
		OK: r.OK, FinalURL: r.FinalURL, Chain: r.Chain,
		Hops: r.Hops, FaviconHash: r.FaviconHash,
	}
	if r.Err != nil {
		ce.Err = r.Err.Error()
	}
	if r.FaviconHash != "" {
		ce.Icon = c.IconBytes(r.FaviconHash)
	}
	return ce
}

// fromCached rebuilds a Result for t and rehydrates the icon caches so
// IconBytes serves warm runs.
func (c *Crawler) fromCached(t Task, ce cachedCrawl) Result {
	r := Result{
		Task: t, OK: ce.OK, FinalURL: ce.FinalURL, Chain: ce.Chain,
		Hops: ce.Hops, FaviconHash: ce.FaviconHash,
	}
	if ce.Err != "" {
		r.Err = errors.New(ce.Err)
	}
	if ce.FaviconHash != "" {
		c.mu.Lock()
		c.favCache[urlmatch.Host(ce.FinalURL)] = ce.FaviconHash
		if _, ok := c.iconBytes[ce.FaviconHash]; !ok && len(ce.Icon) > 0 {
			c.iconBytes[ce.FaviconHash] = ce.Icon
		}
		c.mu.Unlock()
	}
	return r
}

// resolve follows the redirect chain from a canonicalized URL — the
// actual network work behind Crawl.
func (c *Crawler) resolve(ctx context.Context, t Task, cur string) Result {
	res := Result{Task: t}
	seen := make(map[string]bool)
	for {
		if ctx.Err() != nil {
			res.Err = ctx.Err()
			return res
		}
		res.Chain = append(res.Chain, cur)
		if seen[cur] {
			res.Err = fmt.Errorf("crawler: redirect loop at %s", cur)
			res.FinalURL = cur
			return res
		}
		seen[cur] = true

		next, status, body, err := c.fetch(ctx, cur)
		if err != nil {
			res.Err = err
			res.FinalURL = cur
			return res
		}
		if next == "" {
			res.FinalURL = cur
			res.OK = status == http.StatusOK
			if !res.OK {
				res.Err = fmt.Errorf("crawler: %s returned status %d", cur, status)
			} else if c.opts.faviconsEnabled() {
				hash, ferr := c.favicon(ctx, cur, body)
				res.FaviconHash = hash
				if ferr != nil {
					// The page resolved but a transport fault hid its
					// favicon. Keep the successful resolution and carry
					// the transient error so the outcome is quarantined
					// and stays out of the cache — a cached "" hash
					// would wrongly assert the site serves no icon.
					res.Err = fmt.Errorf("crawler: favicon for %s: %w", cur, ferr)
				}
			}
			return res
		}
		if res.Hops++; res.Hops > c.opts.MaxHops {
			res.Err = fmt.Errorf("crawler: redirect chain exceeds %d hops from %s", c.opts.MaxHops, t.URL)
			res.FinalURL = cur
			return res
		}
		cur = next
	}
}

// fetch GETs a URL under the crawler's fault-tolerance executor,
// keyed per host. It returns the next URL to follow ("" when cur is
// final), the HTTP status, and the page body when the page is final.
// Transient faults (timeouts, resets, 429/5xx, torn bodies) are
// retried per the configured policy and feed the host's breaker;
// durable answers (404, redirect to nowhere) pass through untouched.
func (c *Crawler) fetch(ctx context.Context, cur string) (next string, status int, body string, err error) {
	host := urlmatch.Host(cur)
	err = c.exec.Do(ctx, "crawl:"+host, func(ctx context.Context) error {
		next, status, body = "", 0, ""
		if terr := c.throttle(ctx, host); terr != nil {
			return terr
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, cur, nil)
		if rerr != nil {
			return fmt.Errorf("crawler: build request: %w", rerr)
		}
		req.Header.Set("User-Agent", c.opts.UserAgent)
		resp, derr := c.client.Do(req)
		if derr != nil {
			return fmt.Errorf("crawler: get %s: %w", cur, derr)
		}
		resp.Body = newCtxBody(ctx, resp.Body)
		defer resp.Body.Close()

		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return fmt.Errorf("crawler: get %s: %w", cur, &resilience.StatusError{
				Code:       resp.StatusCode,
				RetryAfter: resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
			})
		}
		status = resp.StatusCode
		if resp.StatusCode >= 300 && resp.StatusCode < 400 {
			loc := resp.Header.Get("Location")
			if loc == "" {
				return fmt.Errorf("crawler: %s: redirect without Location", cur)
			}
			abs, aerr := resolveRef(cur, loc)
			if aerr != nil {
				return aerr
			}
			next = abs
			return nil
		}

		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, c.opts.MaxBody))
		if rerr != nil {
			return fmt.Errorf("crawler: read %s: %w", cur, rerr)
		}
		page := string(raw)
		if resp.StatusCode == http.StatusOK && isHTML(resp.Header.Get("Content-Type")) {
			if target := MetaRefreshTarget(page); target != "" {
				if abs, aerr := resolveRef(cur, target); aerr == nil {
					next = abs
					return nil
				}
			}
		}
		body = page
		return nil
	})
	if err != nil {
		return "", 0, "", err
	}
	return next, status, body, nil
}

func isHTML(contentType string) bool {
	return strings.Contains(strings.ToLower(contentType), "text/html")
}

func resolveRef(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("crawler: parse base %q: %w", base, err)
	}
	r, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", fmt.Errorf("crawler: parse redirect target %q: %w", ref, err)
	}
	return urlmatch.Canonicalize(b.ResolveReference(r).String())
}

func (c *Crawler) throttle(ctx context.Context, host string) error {
	if c.opts.PerHostDelay <= 0 || host == "" {
		return nil
	}
	for {
		c.mu.Lock()
		last, ok := c.lastHit[host]
		now := time.Now()
		if !ok || now.Sub(last) >= c.opts.PerHostDelay {
			c.lastHit[host] = now
			c.mu.Unlock()
			return nil
		}
		wait := c.opts.PerHostDelay - now.Sub(last)
		c.mu.Unlock()
		if err := resilience.Sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// metaRefreshRe matches <meta http-equiv="refresh" content="N; url=…">
// in either attribute order, with flexible quoting — the minimum a
// browser would honour.
var (
	metaTagRe    = regexp.MustCompile(`(?is)<meta\s[^>]*>`)
	httpEquivRe  = regexp.MustCompile(`(?i)http-equiv\s*=\s*["']?\s*refresh\s*["']?`)
	contentRe    = regexp.MustCompile(`(?i)content\s*=\s*("([^"]*)"|'([^']*)'|([^\s>]+))`)
	refreshURLRe = regexp.MustCompile(`(?i)^\s*\d+\s*(?:;\s*url\s*=\s*(.+))?\s*$`)
)

// MetaRefreshTarget extracts the redirect target of the first
// meta-refresh tag in an HTML page, or "" if none. A refresh without a
// url= clause (a pure self-reload) yields "".
func MetaRefreshTarget(page string) string {
	for _, tag := range metaTagRe.FindAllString(page, -1) {
		if !httpEquivRe.MatchString(tag) {
			continue
		}
		m := contentRe.FindStringSubmatch(tag)
		if m == nil {
			continue
		}
		content := m[2] + m[3] + m[4] // whichever quoting variant matched
		um := refreshURLRe.FindStringSubmatch(content)
		if um == nil || um[1] == "" {
			continue
		}
		target := strings.TrimSpace(um[1])
		target = strings.Trim(target, `"'`)
		if target != "" {
			return target
		}
	}
	return ""
}

// faviconLinkRe extracts <link rel="icon" href="…"> (and shortcut icon).
var faviconLinkRe = regexp.MustCompile(`(?is)<link\s[^>]*rel\s*=\s*["']?(?:shortcut\s+)?icon["']?[^>]*>`)
var hrefRe = regexp.MustCompile(`(?i)href\s*=\s*("([^"]*)"|'([^']*)'|([^\s>]+))`)

// FaviconLink extracts the favicon href declared in an HTML page, or ""
// if none is declared.
func FaviconLink(page string) string {
	tag := faviconLinkRe.FindString(page)
	if tag == "" {
		return ""
	}
	m := hrefRe.FindStringSubmatch(tag)
	if m == nil {
		return ""
	}
	return strings.TrimSpace(m[2] + m[3] + m[4])
}

// favicon fetches and hashes the favicon for a final page. It prefers
// the page's declared <link rel="icon"> and falls back to /favicon.ico.
// Durable outcomes ("" = the site serves no icon) are memoized per
// host; a transient transport fault returns an error instead, leaving
// the memo unset so a later attempt — or a healthy warm run — can
// still recover the icon.
func (c *Crawler) favicon(ctx context.Context, finalURL, page string) (string, error) {
	host := urlmatch.Host(finalURL)
	c.mu.Lock()
	if h, ok := c.favCache[host]; ok {
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()

	var candidates []string
	if link := FaviconLink(page); link != "" {
		if abs, err := resolveRef(finalURL, link); err == nil {
			candidates = append(candidates, abs)
		}
	}
	if u, err := url.Parse(finalURL); err == nil {
		u.Path = "/favicon.ico"
		u.RawQuery = ""
		candidates = append(candidates, u.String())
	}

	hash := ""
	var transient error
	for _, cand := range candidates {
		h, err := c.fetchIcon(ctx, cand)
		if err != nil {
			if resilience.IsTransient(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				transient = err
			}
			continue
		}
		if h != "" {
			hash = h
			break
		}
	}
	if hash == "" && transient != nil {
		return "", transient
	}
	c.mu.Lock()
	c.favCache[host] = hash
	c.mu.Unlock()
	return hash, nil
}

// fetchIcon retrieves and hashes one favicon candidate under the
// executor. It returns "" with a nil error when the site answers but
// serves no usable icon (a durable observation), and an error for
// transport-level faults including torn payloads.
func (c *Crawler) fetchIcon(ctx context.Context, cand string) (string, error) {
	host := urlmatch.Host(cand)
	var hash string
	err := c.exec.Do(ctx, "crawl:"+host, func(ctx context.Context) error {
		hash = ""
		if terr := c.throttle(ctx, host); terr != nil {
			return terr
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, cand, nil)
		if rerr != nil {
			return fmt.Errorf("crawler: build icon request: %w", rerr)
		}
		req.Header.Set("User-Agent", c.opts.UserAgent)
		resp, derr := c.client.Do(req)
		if derr != nil {
			return fmt.Errorf("crawler: get icon %s: %w", cand, derr)
		}
		resp.Body = newCtxBody(ctx, resp.Body)
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return fmt.Errorf("crawler: get icon %s: %w", cand, &resilience.StatusError{
				Code:       resp.StatusCode,
				RetryAfter: resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
			})
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, c.opts.MaxBody))
		if rerr != nil {
			// A torn icon body: the hash of a partial payload would be
			// wrong, and "" would wrongly claim the site serves none.
			return fmt.Errorf("crawler: read icon %s: %w", cand, rerr)
		}
		if resp.StatusCode != http.StatusOK || len(raw) == 0 {
			return nil
		}
		sum := sha256.Sum256(raw)
		hash = hex.EncodeToString(sum[:])
		c.mu.Lock()
		if _, ok := c.iconBytes[hash]; !ok && len(raw) <= maxRetainedIcon {
			c.iconBytes[hash] = raw
		}
		c.mu.Unlock()
		return nil
	})
	if err != nil {
		return "", err
	}
	return hash, nil
}

// ExecStats reports the crawler's fault-tolerance counters (attempts,
// retries, breaker denials and trips) for the run report.
func (c *Crawler) ExecStats() resilience.ExecStats { return c.exec.Stats() }

// OpenBreakers lists hosts whose circuits are currently not closed.
func (c *Crawler) OpenBreakers() []string {
	if c.opts.Breakers == nil {
		return nil
	}
	return c.opts.Breakers.Open()
}

// maxRetainedIcon bounds per-icon memory in the hash→bytes cache.
const maxRetainedIcon = 64 << 10

// IconBytes returns the favicon payload for a hash observed during
// crawling, or nil. The classifier's step 2 attaches these bytes to its
// LLM prompts.
func (c *Crawler) IconBytes(hash string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.iconBytes[hash]
}

// CrawlAll resolves all tasks with bounded concurrency. Tasks whose
// reported URLs canonicalize identically are deduplicated: each unique
// canonical URL is fetched exactly once and the outcome is fanned back
// out to every task that shares it (different networks routinely
// report the same website — "https://corp.example" vs
// "corp.example/"). Results are returned in task order regardless of
// completion order. The context cancels outstanding work; cancelled
// tasks carry ctx.Err().
func (c *Crawler) CrawlAll(ctx context.Context, tasks []Task) []Result {
	results := make([]Result, len(tasks))
	groups := make(map[string][]int, len(tasks))
	order := make([]string, 0, len(tasks))
	for i, t := range tasks {
		canon, err := urlmatch.Canonicalize(t.URL)
		if err != nil {
			results[i] = Result{Task: t, Err: fmt.Errorf("crawler: %w", err)}
			continue
		}
		if _, ok := groups[canon]; !ok {
			order = append(order, canon)
		}
		groups[canon] = append(groups[canon], i)
	}
	sem := make(chan struct{}, c.opts.Concurrency)
	var wg sync.WaitGroup
	for _, canon := range order {
		idxs := groups[canon]
		wg.Add(1)
		go func(canon string, idxs []int) {
			defer wg.Done()
			var r Result
			select {
			case sem <- struct{}{}:
				r = c.Crawl(ctx, tasks[idxs[0]])
				<-sem
			case <-ctx.Done():
				r = Result{Err: ctx.Err()}
			}
			// Fan the shared outcome back out; the Chain slice is
			// shared read-only across the group's results.
			for _, i := range idxs {
				r.Task = tasks[i]
				results[i] = r
			}
		}(canon, idxs)
	}
	wg.Wait()
	return results
}

// FinalURLs converts successful results into the final-URL records the
// matching module consumes.
func FinalURLs(results []Result) []urlmatch.FinalURL {
	var out []urlmatch.FinalURL
	for _, r := range results {
		if r.OK {
			out = append(out, urlmatch.FinalURL{ASN: r.Task.ASN, URL: r.FinalURL})
		}
	}
	return out
}
