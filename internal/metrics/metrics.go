// Package metrics provides the confusion-matrix accounting used to
// validate Borges's LLM stages (§5.3, Tables 4 and 5): true/false
// positives and negatives with derived precision, recall, and accuracy.
package metrics

import "fmt"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add accumulates another matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.TN += o.TN
	c.FP += o.FP
	c.FN += o.FN
}

// Observe records one labelled outcome: whether the condition was truly
// positive and whether the system predicted positive.
func (c *Confusion) Observe(truth, predicted bool) {
	switch {
	case truth && predicted:
		c.TP++
	case truth && !predicted:
		c.FN++
	case !truth && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of observations.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Precision returns TP / (TP + FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy returns (TP + TN) / total, or 0 when undefined.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// F1 returns the harmonic mean of precision and recall, or 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix in the layout of the paper's tables.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d precision=%.3f recall=%.3f accuracy=%.3f",
		c.TP, c.TN, c.FP, c.FN, c.Precision(), c.Recall(), c.Accuracy())
}
