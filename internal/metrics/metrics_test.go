package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPaperTable4Values(t *testing.T) {
	// Table 4: TP=187 TN=116 FN=12 FP=5 →
	// recall 0.94, precision 0.974, accuracy 0.947.
	c := Confusion{TP: 187, TN: 116, FN: 12, FP: 5}
	if got := c.Recall(); math.Abs(got-0.94) > 0.001 {
		t.Errorf("recall = %.4f", got)
	}
	if got := c.Precision(); math.Abs(got-0.974) > 0.001 {
		t.Errorf("precision = %.4f", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.947) > 0.001 {
		t.Errorf("accuracy = %.4f", got)
	}
	if c.Total() != 320 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestPaperTable5Values(t *testing.T) {
	// Table 5 "All": TP=317 TN=116 FP=1 FN=5 →
	// precision 0.997, recall 0.984, accuracy 0.986.
	c := Confusion{TP: 317, TN: 116, FP: 1, FN: 5}
	if got := c.Precision(); math.Abs(got-0.997) > 0.001 {
		t.Errorf("precision = %.4f", got)
	}
	if got := c.Recall(); math.Abs(got-0.984) > 0.001 {
		t.Errorf("recall = %.4f", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.986) > 0.001 {
		t.Errorf("accuracy = %.4f", got)
	}
}

func TestObserve(t *testing.T) {
	var c Confusion
	c.Observe(true, true)
	c.Observe(true, false)
	c.Observe(false, true)
	c.Observe(false, false)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("c = %+v", c)
	}
}

func TestAdd(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	b := Confusion{TP: 10, TN: 20, FP: 30, FN: 40}
	a.Add(b)
	if a.TP != 11 || a.TN != 22 || a.FP != 33 || a.FN != 44 {
		t.Errorf("a = %+v", a)
	}
}

func TestZeroDivision(t *testing.T) {
	var c Confusion
	if !almost(c.Precision(), 0) || !almost(c.Recall(), 0) ||
		!almost(c.Accuracy(), 0) || !almost(c.F1(), 0) {
		t.Error("zero matrix should yield zero metrics")
	}
}

func TestF1(t *testing.T) {
	c := Confusion{TP: 1, FP: 1, FN: 1}
	// p = r = 0.5 → F1 = 0.5
	if !almost(c.F1(), 0.5) {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestMetricsBoundsProperty(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		for _, v := range []float64{c.Precision(), c.Recall(), c.Accuracy(), c.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return c.Total() == int(tp)+int(tn)+int(fp)+int(fn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	c := Confusion{TP: 187, TN: 116, FN: 12, FP: 5}
	s := c.String()
	for _, want := range []string{"TP=187", "TN=116", "FP=5", "FN=12", "accuracy=0.947"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
