// Package peeringdb models the subset of the PeeringDB data schema that
// Borges consumes: network (net) objects and organization (org) objects
// linked by a one-to-many relationship (the OID_P source of §4.1), plus
// the free-text "notes" and "aka" fields mined by the NER module (§4.2)
// and the self-reported "website" field used by web-based inference
// (§4.3).
//
// The on-disk format matches PeeringDB's public API dump: a single JSON
// document with top-level "org" and "net" tables, each wrapping a "data"
// array.
package peeringdb

import (
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// Org is a PeeringDB organization object (abridged).
type Org struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Website string `json:"website,omitempty"`
	Country string `json:"country,omitempty"`
}

// Net is a PeeringDB network object (abridged to the fields Borges uses).
type Net struct {
	ID    int       `json:"id"`
	OrgID int       `json:"org_id"`
	ASN   asnum.ASN `json:"asn"`
	Name  string    `json:"name"`
	// Aka is the "also known as" free-text field.
	Aka string `json:"aka,omitempty"`
	// Notes is the operator-maintained free-text notes field.
	Notes string `json:"notes,omitempty"`
	// Website is the self-reported operator website.
	Website string `json:"website,omitempty"`
	// InfoType is the self-declared network type (NSP, Content, …).
	InfoType string `json:"info_type,omitempty"`
}

// HasText reports whether the net carries any free text in notes or aka.
func (n *Net) HasText() bool { return n.Notes != "" || n.Aka != "" }

// Snapshot is a parsed PeeringDB snapshot.
type Snapshot struct {
	// Date is the snapshot date in YYYYMMDD form (e.g. "20240724").
	Date string

	orgs    map[int]*Org
	nets    map[int]*Net
	byASN   map[asnum.ASN]*Net
	members map[int][]asnum.ASN // org ID -> ASNs
}

// NewSnapshot returns an empty snapshot for the given date.
func NewSnapshot(date string) *Snapshot {
	return &Snapshot{
		Date:    date,
		orgs:    make(map[int]*Org),
		nets:    make(map[int]*Net),
		byASN:   make(map[asnum.ASN]*Net),
		members: make(map[int][]asnum.ASN),
	}
}

// AddOrg inserts or replaces an organization object.
func (s *Snapshot) AddOrg(o Org) {
	cp := o
	s.orgs[o.ID] = &cp
}

// AddNet inserts or replaces a network object, indexing it by ASN and
// registering org membership. A stub org is created if unknown.
func (s *Snapshot) AddNet(n Net) {
	if prev, ok := s.nets[n.ID]; ok {
		delete(s.byASN, prev.ASN)
		old := s.members[prev.OrgID]
		for i, a := range old {
			if a == prev.ASN {
				s.members[prev.OrgID] = append(old[:i], old[i+1:]...)
				break
			}
		}
	}
	cp := n
	s.nets[n.ID] = &cp
	s.byASN[n.ASN] = &cp
	if _, ok := s.orgs[n.OrgID]; !ok {
		s.orgs[n.OrgID] = &Org{ID: n.OrgID}
	}
	s.members[n.OrgID] = append(s.members[n.OrgID], n.ASN)
}

// NumOrgs returns the number of organization objects.
func (s *Snapshot) NumOrgs() int { return len(s.orgs) }

// NumNets returns the number of network objects.
func (s *Snapshot) NumNets() int { return len(s.nets) }

// Org returns the organization with the given primary key, or nil.
func (s *Snapshot) Org(id int) *Org { return s.orgs[id] }

// Net returns the network with the given primary key, or nil.
func (s *Snapshot) Net(id int) *Net { return s.nets[id] }

// NetByASN returns the network registered for a, or nil.
func (s *Snapshot) NetByASN(a asnum.ASN) *Net { return s.byASN[a] }

// OrgOf returns the organization owning ASN a, or nil.
func (s *Snapshot) OrgOf(a asnum.ASN) *Org {
	n := s.byASN[a]
	if n == nil {
		return nil
	}
	return s.orgs[n.OrgID]
}

// Members returns the sorted ASNs registered under org id.
func (s *Snapshot) Members(id int) []asnum.ASN {
	m := append([]asnum.ASN(nil), s.members[id]...)
	asnum.Sort(m)
	return m
}

// Nets returns all network objects ordered by ASN.
func (s *Snapshot) Nets() []*Net {
	out := make([]*Net, 0, len(s.nets))
	for _, n := range s.nets {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// Orgs returns all organization objects ordered by ID.
func (s *Snapshot) Orgs() []*Org {
	out := make([]*Org, 0, len(s.orgs))
	for _, o := range s.orgs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OrgIDs returns all org primary keys, sorted.
func (s *Snapshot) OrgIDs() []int {
	out := make([]int, 0, len(s.orgs))
	for id := range s.orgs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// SiblingSets converts org memberships into sibling sets (the OID_P
// feature). Every org with at least one network yields a set.
func (s *Snapshot) SiblingSets() []cluster.SiblingSet {
	ids := s.OrgIDs()
	out := make([]cluster.SiblingSet, 0, len(ids))
	for _, id := range ids {
		members := s.Members(id)
		if len(members) == 0 {
			continue
		}
		out = append(out, cluster.SiblingSet{
			ASNs:     members,
			Source:   cluster.FeatureOIDP,
			Evidence: asnum.PDBOrg(id).String(),
		})
	}
	return out
}

// NetsWithText returns all nets with a non-empty notes or aka field,
// ordered by ASN. This is the corpus fed to the NER input filter.
func (s *Snapshot) NetsWithText() []*Net {
	var out []*Net
	for _, n := range s.Nets() {
		if n.HasText() {
			out = append(out, n)
		}
	}
	return out
}

// NetsWithWebsite returns all nets with a non-empty website field,
// ordered by ASN. This is the corpus fed to the web crawler.
func (s *Snapshot) NetsWithWebsite() []*Net {
	var out []*Net
	for _, n := range s.Nets() {
		if n.Website != "" {
			out = append(out, n)
		}
	}
	return out
}
