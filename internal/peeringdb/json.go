package peeringdb

import (
	"encoding/json"
	"fmt"
	"io"
)

// dump mirrors the PeeringDB public API dump layout:
//
//	{"org": {"data": [...]}, "net": {"data": [...]}}
type dump struct {
	Org  table[Org] `json:"org"`
	Net  table[Net] `json:"net"`
	Meta *meta      `json:"meta,omitempty"`
}

type table[T any] struct {
	Data []T `json:"data"`
}

type meta struct {
	Generated string `json:"generated,omitempty"`
}

// Parse reads a PeeringDB API dump into a Snapshot.
func Parse(r io.Reader, date string) (*Snapshot, error) {
	var d dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("peeringdb: decode: %w", err)
	}
	s := NewSnapshot(date)
	for _, o := range d.Org.Data {
		if o.ID <= 0 {
			return nil, fmt.Errorf("peeringdb: org with non-positive id %d", o.ID)
		}
		s.AddOrg(o)
	}
	for _, n := range d.Net.Data {
		if n.ID <= 0 {
			return nil, fmt.Errorf("peeringdb: net with non-positive id %d", n.ID)
		}
		if n.ASN == 0 {
			return nil, fmt.Errorf("peeringdb: net %d has no ASN", n.ID)
		}
		s.AddNet(n)
	}
	return s, nil
}

// Write serializes the snapshot in PeeringDB API dump form with
// deterministic ordering (orgs by ID, nets by ASN).
func Write(w io.Writer, s *Snapshot) error {
	d := dump{Meta: &meta{Generated: s.Date}}
	for _, o := range s.Orgs() {
		d.Org.Data = append(d.Org.Data, *o)
	}
	for _, n := range s.Nets() {
		d.Net.Data = append(d.Net.Data, *n)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&d); err != nil {
		return fmt.Errorf("peeringdb: encode: %w", err)
	}
	return nil
}
