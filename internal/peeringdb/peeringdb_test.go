package peeringdb

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
)

const sample = `{
  "org": {"data": [
    {"id": 907, "name": "Lumen", "website": "https://www.lumen.com", "country": "US"},
    {"id": 17, "name": "Edgio", "website": "https://edg.io"}
  ]},
  "net": {"data": [
    {"id": 1, "org_id": 907, "asn": 3356, "name": "Lumen AS3356", "aka": "Level 3, CenturyLink", "website": "https://www.lumen.com"},
    {"id": 2, "org_id": 907, "asn": 209, "name": "CenturyLink", "website": "https://www.lumen.com"},
    {"id": 3, "org_id": 17, "asn": 15133, "name": "Edgecast", "notes": "Now part of Edgio with AS22822", "website": "https://edg.io"},
    {"id": 4, "org_id": 17, "asn": 22822, "name": "Limelight", "website": "https://www.llnw.com"}
  ]}
}`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	s, err := Parse(strings.NewReader(sample), "20240724")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParse(t *testing.T) {
	s := parseSample(t)
	if s.NumOrgs() != 2 || s.NumNets() != 4 {
		t.Fatalf("got %d orgs / %d nets, want 2/4", s.NumOrgs(), s.NumNets())
	}
	n := s.NetByASN(3356)
	if n == nil || n.Aka != "Level 3, CenturyLink" {
		t.Fatalf("NetByASN(3356) = %+v", n)
	}
	if got := s.OrgOf(22822); got == nil || got.Name != "Edgio" {
		t.Fatalf("OrgOf(22822) = %+v", got)
	}
	if got := s.Members(907); len(got) != 2 || got[0] != 209 || got[1] != 3356 {
		t.Fatalf("Members(907) = %v", got)
	}
	if s.Net(3) == nil || s.Net(3).ASN != 15133 {
		t.Errorf("Net(3) = %+v", s.Net(3))
	}
	if s.OrgOf(99999) != nil {
		t.Error("OrgOf(unknown) should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"net":{"data":[{"id":0,"asn":1,"org_id":1}]}}`,
		`{"net":{"data":[{"id":1,"asn":0,"org_id":1}]}}`,
		`{"org":{"data":[{"id":-5}]}}`,
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c), "x"); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	s1 := parseSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, s1); err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytes.NewReader(buf.Bytes()), "20240724")
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumOrgs() != s1.NumOrgs() || s2.NumNets() != s1.NumNets() {
		t.Fatal("round trip changed counts")
	}
	for _, n := range s1.Nets() {
		m := s2.NetByASN(n.ASN)
		if m == nil || m.Notes != n.Notes || m.Website != n.Website || m.OrgID != n.OrgID {
			t.Errorf("net %v changed in round trip", n.ASN)
		}
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("Write output is not deterministic")
	}
}

func TestSiblingSets(t *testing.T) {
	s := parseSample(t)
	sets := s.SiblingSets()
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2", len(sets))
	}
	// Org 17 first (sorted by ID).
	if sets[0].Evidence != "OID_P:17" || len(sets[0].ASNs) != 2 {
		t.Errorf("first set = %+v", sets[0])
	}
	for _, set := range sets {
		if set.Source != cluster.FeatureOIDP {
			t.Errorf("source = %v", set.Source)
		}
	}
}

func TestTextAndWebsiteFilters(t *testing.T) {
	s := parseSample(t)
	text := s.NetsWithText()
	if len(text) != 2 { // 3356 (aka) and 15133 (notes)
		t.Fatalf("NetsWithText = %d nets, want 2", len(text))
	}
	if text[0].ASN != 3356 || text[1].ASN != 15133 {
		t.Errorf("NetsWithText order = %v, %v", text[0].ASN, text[1].ASN)
	}
	web := s.NetsWithWebsite()
	if len(web) != 4 {
		t.Fatalf("NetsWithWebsite = %d nets, want 4", len(web))
	}
}

func TestAddNetReplace(t *testing.T) {
	s := NewSnapshot("x")
	s.AddNet(Net{ID: 1, OrgID: 5, ASN: 100})
	s.AddNet(Net{ID: 1, OrgID: 6, ASN: 101}) // same PK, new org+ASN
	if s.NetByASN(100) != nil {
		t.Error("stale ASN index after replacement")
	}
	if len(s.Members(5)) != 0 {
		t.Errorf("stale membership: %v", s.Members(5))
	}
	if got := s.Members(6); len(got) != 1 || got[0] != 101 {
		t.Errorf("Members(6) = %v", got)
	}
	if s.Org(5) == nil || s.Org(6) == nil {
		t.Error("stub orgs should exist")
	}
}

func TestHasText(t *testing.T) {
	cases := []struct {
		n    Net
		want bool
	}{
		{Net{}, false},
		{Net{Notes: "x"}, true},
		{Net{Aka: "y"}, true},
		{Net{Notes: "x", Aka: "y"}, true},
	}
	for _, c := range cases {
		if c.n.HasText() != c.want {
			t.Errorf("HasText(%+v) = %v", c.n, !c.want)
		}
	}
}
