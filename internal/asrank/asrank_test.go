package asrank

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func sampleRanking(t *testing.T) *Ranking {
	t.Helper()
	r := NewRanking("20240701")
	entries := []Entry{
		{Rank: 1, ASN: 3356, ConeSize: 40000},
		{Rank: 2, ASN: 174, ConeSize: 35000},
		{Rank: 3, ASN: 1299, ConeSize: 33000},
		{Rank: 10, ASN: 209, ConeSize: 9000},
	}
	for _, e := range entries {
		if err := r.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRankQueries(t *testing.T) {
	r := sampleRanking(t)
	if got := r.RankOf(174); got != 2 {
		t.Errorf("RankOf(174) = %d", got)
	}
	if got := r.RankOf(99999); got != 0 {
		t.Errorf("RankOf(unranked) = %d", got)
	}
	if got := r.BestRank([]asnum.ASN{209, 1299}); got != 3 {
		t.Errorf("BestRank = %d, want 3", got)
	}
	if got := r.BestRank([]asnum.ASN{424242}); got != 0 {
		t.Errorf("BestRank(unranked set) = %d", got)
	}
	if got := r.BestRank(nil); got != 0 {
		t.Errorf("BestRank(nil) = %d", got)
	}
	top := r.Top(2)
	if len(top) != 2 || top[0].ASN != 3356 || top[1].ASN != 174 {
		t.Errorf("Top(2) = %v", top)
	}
	if got := r.Top(100); len(got) != 4 {
		t.Errorf("Top(100) = %d entries", len(got))
	}
}

func TestAddErrors(t *testing.T) {
	r := sampleRanking(t)
	if err := r.Add(Entry{Rank: 99, ASN: 3356}); err == nil {
		t.Error("duplicate ASN should fail")
	}
	if err := r.Add(Entry{Rank: 0, ASN: 5511}); err == nil {
		t.Error("zero rank should fail")
	}
	if err := r.Add(Entry{Rank: -1, ASN: 5511}); err == nil {
		t.Error("negative rank should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	r := sampleRanking(t)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "20240701")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip changed length: %d vs %d", back.Len(), r.Len())
	}
	for _, e := range r.Entries() {
		if back.RankOf(e.ASN) != e.Rank {
			t.Errorf("rank of %v changed", e.ASN)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bad,header,x\n",
		"rank,asn,cone_size\nx,1,1\n",
		"rank,asn,cone_size\n1,bad,1\n",
		"rank,asn,cone_size\n1,1,bad\n",
		"rank,asn,cone_size\n1,1,1\n1,2,1\n", // duplicate rank is fine, duplicate ASN is not; use dup ASN:
	}
	for _, c := range cases[:4] {
		if _, err := Parse(strings.NewReader(c), "x"); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
	if _, err := Parse(strings.NewReader("rank,asn,cone_size\n1,7,1\n2,7,1\n"), "x"); err == nil {
		t.Error("duplicate ASN should fail")
	}
	if r, err := Parse(strings.NewReader(""), "x"); err != nil || r.Len() != 0 {
		t.Errorf("empty input: %v %v", r, err)
	}
}
