// Package asrank models CAIDA's AS-Rank dataset: a ranking of ASes by
// customer-cone size. The paper uses AS-Rank (snapshot of 2024-07-01) to
// study how Borges reshapes transit organizations across the top 100,
// 1,000, and 10,000 ranked networks (§6.1, Figure 8).
package asrank

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Entry is one ranked AS.
type Entry struct {
	Rank int
	ASN  asnum.ASN
	// ConeSize is the number of ASNs in the customer cone (including
	// the AS itself).
	ConeSize int
}

// Ranking is a parsed AS-Rank snapshot. Ranks are 1-based and unique.
type Ranking struct {
	// Date is the snapshot date in YYYYMMDD form.
	Date string

	entries []Entry
	byASN   map[asnum.ASN]int // index into entries
}

// NewRanking returns an empty ranking.
func NewRanking(date string) *Ranking {
	return &Ranking{Date: date, byASN: make(map[asnum.ASN]int)}
}

// Add appends one entry. Duplicate ASNs or ranks are an error.
func (r *Ranking) Add(e Entry) error {
	if e.Rank <= 0 {
		return fmt.Errorf("asrank: non-positive rank %d for %v", e.Rank, e.ASN)
	}
	if _, dup := r.byASN[e.ASN]; dup {
		return fmt.Errorf("asrank: duplicate ASN %v", e.ASN)
	}
	r.byASN[e.ASN] = len(r.entries)
	r.entries = append(r.entries, e)
	return nil
}

// Len returns the number of ranked ASes.
func (r *Ranking) Len() int { return len(r.entries) }

// RankOf returns the rank of a, or 0 if unranked.
func (r *Ranking) RankOf(a asnum.ASN) int {
	i, ok := r.byASN[a]
	if !ok {
		return 0
	}
	return r.entries[i].Rank
}

// BestRank returns the best (lowest) rank across a set of ASNs, or 0 if
// none are ranked. Organizations are ranked by their highest-ranked ASN
// (§6.1: "relative to its highest-ranked ASN").
func (r *Ranking) BestRank(asns []asnum.ASN) int {
	best := 0
	for _, a := range asns {
		if rk := r.RankOf(a); rk != 0 && (best == 0 || rk < best) {
			best = rk
		}
	}
	return best
}

// Top returns the n best-ranked entries in rank order (fewer if the
// ranking is smaller).
func (r *Ranking) Top(n int) []Entry {
	out := r.Entries()
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Entries returns all entries in rank order.
func (r *Ranking) Entries() []Entry {
	out := append([]Entry(nil), r.entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

var header = []string{"rank", "asn", "cone_size"}

// Parse reads the CSV form (header "rank,asn,cone_size").
func Parse(rd io.Reader, date string) (*Ranking, error) {
	cr := csv.NewReader(bufio.NewReader(rd))
	cr.FieldsPerRecord = len(header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("asrank: read: %w", err)
	}
	if len(rows) == 0 {
		return NewRanking(date), nil
	}
	if rows[0][0] != header[0] {
		return nil, fmt.Errorf("asrank: missing header, got %q", rows[0])
	}
	r := NewRanking(date)
	for i, row := range rows[1:] {
		rank, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("asrank: row %d: rank: %w", i+2, err)
		}
		a, err := asnum.Parse(row[1])
		if err != nil {
			return nil, fmt.Errorf("asrank: row %d: %w", i+2, err)
		}
		cone, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("asrank: row %d: cone: %w", i+2, err)
		}
		if err := r.Add(Entry{Rank: rank, ASN: a, ConeSize: cone}); err != nil {
			return nil, fmt.Errorf("asrank: row %d: %w", i+2, err)
		}
	}
	return r, nil
}

// Write serializes the ranking as CSV in rank order.
func Write(w io.Writer, r *Ranking) error {
	if err := WriteHeader(w); err != nil {
		return err
	}
	return WriteRows(w, r)
}

// WriteHeader emits only the CSV header row, so a streaming producer
// can write it once and then append WriteRows output chunk by chunk.
func WriteHeader(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("asrank: write header: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// WriteRows emits only the data rows, in rank order.
func WriteRows(w io.Writer, r *Ranking) error {
	cw := csv.NewWriter(w)
	for _, e := range r.Entries() {
		row := []string{
			strconv.Itoa(e.Rank),
			strconv.FormatUint(uint64(e.ASN), 10),
			strconv.Itoa(e.ConeSize),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("asrank: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
