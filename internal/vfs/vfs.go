// Package vfs is the narrow filesystem seam the storage-integrity
// layer threads through snapbin, the cache disk tier, the snapshot
// generation ring, and fleet last-good I/O. Production code uses OS
// (thin delegation to the os package); chaos tests substitute
// faultinject.NewFS to inject short writes, fsync errors, bit flips,
// and truncated reads deterministically.
//
// The interface is deliberately small: exactly the operations the
// durable-artifact paths perform (atomic write-temp-sync-rename,
// whole-file reads, appends with offsets, directory scans), nothing
// speculative. os.File satisfies File directly.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the artifact paths use. Both random
// access (ReaderAt/WriterAt for the cache log) and streaming
// (Read/Write/Seek for snapbin encode/decode) are required, plus the
// durability calls (Sync, Truncate).
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// FS is a mutable filesystem rooted wherever its paths say. All paths
// are passed through verbatim (absolute or process-relative), exactly
// like the os package.
type FS interface {
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp: pattern's last "*" is replaced
	// by a random string; the file is created exclusively in dir.
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory entry at path, making a preceding
	// rename durable. Filesystems that cannot sync directories report
	// the error; callers treat it as best-effort.
	SyncDir(path string) error
}

// OS is the production FS: direct delegation to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Or returns fsys if non-nil and OS otherwise — the one-liner every
// Options struct with an optional FS field uses.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
