package vfs

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip exercises the full interface surface against the
// real filesystem: the atomic write idiom (CreateTemp → Write → Sync →
// Rename → SyncDir) followed by every read path the artifact layers
// use.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")

	f, err := OS.CreateTemp(dir, "artifact.bin.tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := OS.Rename(tmp, path); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}

	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}

	rf, err := OS.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var at [5]byte
	if _, err := rf.ReadAt(at[:], 6); err != nil || string(at[:]) != "world" {
		t.Fatalf("ReadAt = %q, %v", at[:], err)
	}
	if _, err := rf.Seek(0, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	all, err := io.ReadAll(rf)
	if err != nil || string(all) != "hello world" {
		t.Fatalf("ReadAll = %q, %v", all, err)
	}
	rf.Close()

	st, err := OS.Stat(path)
	if err != nil || st.Size() != int64(len("hello world")) {
		t.Fatalf("Stat = %v, %v", st, err)
	}

	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := OS.WriteFile(filepath.Join(sub, "x"), []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "x" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}

	af, err := OS.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile append: %v", err)
	}
	if _, err := af.Write([]byte("!")); err != nil {
		t.Fatalf("append Write: %v", err)
	}
	af.Close()
	data, _ = OS.ReadFile(path)
	if string(data) != "hello world!" {
		t.Fatalf("after append = %q", data)
	}

	if err := OS.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("Stat after Remove: %v", err)
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != OS {
		t.Fatal("Or(nil) should be OS")
	}
	if Or(OS) != OS {
		t.Fatal("Or(OS) should be OS")
	}
}
