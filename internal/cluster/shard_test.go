package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// exportBytes renders a mapping the way borges -format jsonl would.
func exportBytes(t testing.TB, m *Mapping) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, m); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// testNamer derives a deterministic name from the smallest member so
// name assignment exercises the interning path identically across
// build strategies.
func testNamer(members []asnum.ASN) string {
	if members[0]%3 == 0 {
		return "" // some clusters stay unnamed
	}
	return fmt.Sprintf("Org-%d", members[0]%512)
}

// TestShardedEquivalenceQuick is the property the tentpole rests on:
// for arbitrary sibling-set inputs, the sharded consolidation and the
// sequential one export byte-identical JSONL.
func TestShardedEquivalenceQuick(t *testing.T) {
	f := func(rawSets [][]uint16, universe []uint16, workerSeed uint8) bool {
		b := NewBuilder()
		for _, u := range universe {
			b.AddUniverse(asnum.ASN(u))
		}
		for i, raw := range rawSets {
			asns := make([]asnum.ASN, len(raw))
			for j, a := range raw {
				asns[j] = asnum.ASN(a)
			}
			b.Add(SiblingSet{ASNs: asns, Source: Feature(i % NumFeatures)})
		}
		workers := int(workerSeed)%7 + 2 // 2..8
		seq := exportBytes(t, b.Build(testNamer))
		shr := exportBytes(t, b.BuildSharded(testNamer, workers))
		return bytes.Equal(seq, shr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestShardedEquivalenceLarge repeats the byte-identity check on a
// heavily overlapping seeded instance big enough to exercise every
// shard boundary, the frontier merge, and the page-index path of the
// mapping.
func TestShardedEquivalenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := NewBuilder()
	const n = 8192
	for a := 1; a <= n; a++ {
		b.AddUniverse(asnum.ASN(a))
	}
	for i := 0; i < 4*n; i++ {
		size := rng.Intn(6) + 2
		set := SiblingSet{Source: Feature(i % NumFeatures)}
		base := rng.Intn(n) + 1
		for j := 0; j < size; j++ {
			// Mostly near-neighbours with occasional long-range edges,
			// so components of very different sizes emerge.
			a := base + rng.Intn(16) - 8
			if rng.Intn(64) == 0 {
				a = rng.Intn(n) + 1
			}
			if a < 1 {
				a = 1
			}
			if a > n {
				a = n
			}
			set.ASNs = append(set.ASNs, asnum.ASN(a))
		}
		b.Add(set)
	}
	seq := b.Build(testNamer)
	want := exportBytes(t, seq)
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got := exportBytes(t, b.BuildSharded(testNamer, workers))
		if !bytes.Equal(want, got) {
			t.Fatalf("BuildSharded(workers=%d) diverges from sequential build", workers)
		}
	}
	if seq.NumASNs() != n {
		t.Fatalf("NumASNs = %d, want %d", seq.NumASNs(), n)
	}
}

// TestBuildShardedDefaultWorkers covers the workers<=0 GOMAXPROCS
// default and repeated builds from one Builder.
func TestBuildShardedDefaultWorkers(t *testing.T) {
	b := NewBuilder()
	b.AddUniverse(7, 8, 9)
	b.Add(SiblingSet{ASNs: []asnum.ASN{1, 2}, Source: FeatureRR})
	b.Add(SiblingSet{ASNs: []asnum.ASN{2, 3}, Source: FeatureFavicon})
	first := exportBytes(t, b.BuildSharded(nil, 0))
	second := exportBytes(t, b.BuildSharded(nil, 0))
	if !bytes.Equal(first, second) {
		t.Fatal("repeated BuildSharded calls diverge")
	}
	if !bytes.Equal(first, exportBytes(t, b.Build(nil))) {
		t.Fatal("BuildSharded(0) diverges from sequential build")
	}
}

// TestClusterOfPageIndex forces the two-level index (≥ pageIndexMin
// networks) with ASNs scattered across distant pages, including empty
// pages between occupied ones, and checks hits and misses.
func TestClusterOfPageIndex(t *testing.T) {
	b := NewBuilder()
	var asns []asnum.ASN
	for i := 0; i < pageIndexMin; i++ {
		// Spread across pages: low block, a mid block 3 pages up, and a
		// sparse high block.
		var a asnum.ASN
		switch i % 3 {
		case 0:
			a = asnum.ASN(i + 1)
		case 1:
			a = asnum.ASN(3<<asnPageShift + i)
		default:
			a = asnum.ASN(9<<asnPageShift + i*7)
		}
		asns = append(asns, a)
		b.AddUniverse(a)
	}
	m := b.Build(nil)
	if m.pages == nil {
		t.Fatal("page index not built for a large mapping")
	}
	for _, a := range asns {
		if m.ClusterOf(a) == nil {
			t.Fatalf("ClusterOf(%v) = nil, want a cluster", a)
		}
	}
	for _, miss := range []asnum.ASN{0, 2 << asnPageShift, 5 << asnPageShift, 200 << asnPageShift, asnum.MaxASN} {
		if m.ClusterOf(miss) != nil {
			t.Fatalf("ClusterOf(%v) found a cluster for an unmapped ASN", miss)
		}
	}
}

// TestSizesMemoized: Sizes is computed once at build time — repeated
// calls hand back the same cached slice instead of allocating and
// re-sorting.
func TestSizesMemoized(t *testing.T) {
	b := NewBuilder()
	b.Add(SiblingSet{ASNs: []asnum.ASN{1, 2, 3}})
	b.Add(SiblingSet{ASNs: []asnum.ASN{10, 11}})
	b.AddUniverse(99)
	m := b.Build(nil)
	s1, s2 := m.Sizes(), m.Sizes()
	if &s1[0] != &s2[0] {
		t.Error("Sizes() allocated a fresh slice on the second call")
	}
	for i := 1; i < len(s1); i++ {
		if s1[i] > s1[i-1] {
			t.Fatalf("Sizes() not descending: %v", s1)
		}
	}
	if got := testing.AllocsPerRun(100, func() { m.Sizes() }); got != 0 {
		t.Errorf("Sizes() allocates %v times per call, want 0", got)
	}
}
