// Sharded consolidation: the parallel strategy behind
// Builder.BuildSharded. Sibling sets are partitioned across workers,
// each worker collapses its shard with a local dense union-find
// (int32 parents over a shard-local ASN dictionary — no per-operation
// map hashing once an ASN is registered), and the per-shard frontiers
// (one edge from each element to its local root) are merged into a
// global dense structure. Components come out in the same deterministic
// order UnionFind.Components uses — descending size, ties broken by the
// smallest member — so the sharded build is byte-identical to the
// sequential one under WriteJSONL.
package cluster

import (
	"slices"
	"sync"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// denseDSU is a union-find over dense int32 indexes with path halving
// and union by size. It avoids the map lookups that dominate the
// ASN-keyed UnionFind: elements are registered once in a dictionary and
// every subsequent find/union is pure array arithmetic.
type denseDSU struct {
	parent []int32
	size   []int32
}

func (d *denseDSU) grow() int32 {
	id := int32(len(d.parent))
	d.parent = append(d.parent, id)
	d.size = append(d.size, 1)
	return id
}

func (d *denseDSU) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

func (d *denseDSU) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
}

// shard is one worker's private consolidation state: a local ASN
// dictionary plus a dense union-find over it.
type shard struct {
	index map[asnum.ASN]int32
	elems []asnum.ASN
	dsu   denseDSU
}

func (s *shard) id(a asnum.ASN) int32 {
	if i, ok := s.index[a]; ok {
		return i
	}
	i := s.dsu.grow()
	s.index[a] = i
	s.elems = append(s.elems, a)
	return i
}

func (s *shard) consolidate(sets []SiblingSet) {
	for _, set := range sets {
		first := s.id(set.ASNs[0])
		for _, a := range set.ASNs[1:] {
			s.dsu.union(first, s.id(a))
		}
	}
}

// shardedComponents partitions sets across workers, consolidates each
// shard locally in parallel, merges the shard frontiers into a global
// dense union-find, and extracts deterministically ordered components.
func shardedComponents(sets []SiblingSet, universe []asnum.ASN, workers int) [][]asnum.ASN {
	// Tiny inputs are not worth goroutine + merge overhead.
	if workers > 1 && len(sets) < 2*workers {
		workers = 1
	}
	if workers == 1 {
		// One worker needs no frontier: consolidate straight into the
		// global dictionary. The union order differs from the sharded
		// path but the final partition — and therefore the canonical
		// component order — does not.
		g := &shard{index: make(map[asnum.ASN]int32, len(universe))}
		for _, a := range universe {
			g.id(a)
		}
		g.consolidate(sets)
		return denseComponents(g, 1)
	}

	shards := make([]*shard, workers)
	chunk := (len(sets) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(sets))
		sh := &shard{index: make(map[asnum.ASN]int32, (hi-lo)*2)}
		shards[w] = sh
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(sh *shard, part []SiblingSet) {
			defer wg.Done()
			sh.consolidate(part)
		}(sh, sets[lo:hi])
	}
	wg.Wait()

	// Global merge: register every universe ASN and every shard element,
	// then union each element with its shard-local root. Frontier edges
	// (element, root) reproduce the shard's partition exactly, and
	// cross-shard overlaps connect through shared global IDs.
	g := &shard{index: make(map[asnum.ASN]int32, len(universe))}
	for _, a := range universe {
		g.id(a)
	}
	for _, sh := range shards {
		for lid, a := range sh.elems {
			root := sh.dsu.find(int32(lid))
			ga := g.id(a)
			if int32(lid) != root {
				g.dsu.union(ga, g.id(sh.elems[root]))
			}
		}
	}
	return denseComponents(g, workers)
}

// denseComponents groups a global shard's elements by root and orders
// the result exactly like UnionFind.Components: members ascending,
// components by descending size with ties broken by the smallest
// member.
func denseComponents(g *shard, workers int) [][]asnum.ASN {
	n := len(g.elems)
	if n == 0 {
		return nil
	}
	// Counting sort by root: count members per root, carve one backing
	// array into per-component windows, place members.
	counts := make([]int32, n)
	roots := make([]int32, n)
	for i := 0; i < n; i++ {
		r := g.dsu.find(int32(i))
		roots[i] = r
		counts[r]++
	}
	starts := make([]int32, n+1)
	numComps := 0
	var off int32
	for r := 0; r < n; r++ {
		starts[r] = off
		if counts[r] > 0 {
			numComps++
			off += counts[r]
		}
	}
	starts[n] = off
	backing := make([]asnum.ASN, n)
	fill := make([]int32, n)
	for i := 0; i < n; i++ {
		r := roots[i]
		backing[starts[r]+fill[r]] = g.elems[i]
		fill[r]++
	}
	out := make([][]asnum.ASN, 0, numComps)
	for r := 0; r < n; r++ {
		if counts[r] > 0 {
			out = append(out, backing[starts[r]:starts[r]+counts[r]:starts[r]+counts[r]])
		}
	}
	sortComponents(out, workers)
	return out
}

// sortComponents establishes the canonical component order shared by
// the sequential and sharded builds: members ascending within each
// component, components by descending size with ties broken by the
// smallest member. Member sorts fan out across workers; the outer sort
// is a single pass over (size, first-member) keys.
func sortComponents(comps [][]asnum.ASN, workers int) {
	if workers > 1 && len(comps) >= 2*workers {
		var wg sync.WaitGroup
		chunk := (len(comps) + workers - 1) / workers
		for lo := 0; lo < len(comps); lo += chunk {
			hi := min(lo+chunk, len(comps))
			wg.Add(1)
			go func(part [][]asnum.ASN) {
				defer wg.Done()
				for _, members := range part {
					asnum.Sort(members)
				}
			}(comps[lo:hi])
		}
		wg.Wait()
	} else {
		for _, members := range comps {
			asnum.Sort(members)
		}
	}
	slices.SortFunc(comps, func(a, b []asnum.ASN) int {
		if len(a) != len(b) {
			return len(b) - len(a)
		}
		switch {
		case a[0] < b[0]:
			return -1
		case a[0] > b[0]:
			return 1
		}
		return 0
	})
}
