package cluster

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func exportFixture() *Mapping {
	b := NewBuilder()
	b.Add(SiblingSet{ASNs: []asnum.ASN{209, 3356, 3549}, Source: FeatureOIDP})
	b.Add(SiblingSet{ASNs: []asnum.ASN{3356, 3549}, Source: FeatureRR})
	b.Add(SiblingSet{ASNs: []asnum.ASN{15133, 22822}, Source: FeatureFavicon})
	b.AddUniverse(64512 - 20) // a singleton
	return b.Build(func(members []asnum.ASN) string {
		if members[0] == 209 {
			return "Lumen"
		}
		return ""
	})
}

func TestJSONLRoundTrip(t *testing.T) {
	m1 := exportFixture()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, m1); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumOrgs() != m1.NumOrgs() || m2.NumASNs() != m1.NumASNs() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			m2.NumOrgs(), m2.NumASNs(), m1.NumOrgs(), m1.NumASNs())
	}
	// Membership preserved.
	for _, a := range []asnum.ASN{209, 3356, 3549} {
		if m2.ClusterOf(a) != m2.ClusterOf(209) {
			t.Errorf("%v not in Lumen's cluster after round trip", a)
		}
	}
	if m2.ClusterOf(15133) == m2.ClusterOf(209) {
		t.Error("distinct orgs fused in round trip")
	}
	// Name and provenance preserved.
	c := m2.ClusterOf(209)
	if c.Name != "Lumen" {
		t.Errorf("name = %q", c.Name)
	}
	if !c.Features[FeatureOIDP] || !c.Features[FeatureRR] {
		t.Errorf("features lost: %v", c.Features)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, m2); err != nil {
		t.Fatal(err)
	}
	m3, err := ReadJSONL(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m3.NumOrgs() != m2.NumOrgs() {
		t.Error("second round trip changed shape")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := []string{
		`{not json}`,
		`{"org":0,"asns":[]}`,
		`{"org":0,"asns":[1],"features":["BOGUS"]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSONL(%q) should fail", c)
		}
	}
	// Blank lines are tolerated.
	m, err := ReadJSONL(strings.NewReader("\n\n" + `{"org":0,"asns":[5]}` + "\n"))
	if err != nil || m.NumASNs() != 1 {
		t.Errorf("blank-line handling: %v %v", m, err)
	}
}

func TestWriteJSONLEmptyMapping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, NewBuilder().Build(nil)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty mapping should write nothing, got %q", buf.String())
	}
	m, err := ReadJSONL(&buf)
	if err != nil || m.NumOrgs() != 0 {
		t.Errorf("empty read: %v %v", m, err)
	}
}
