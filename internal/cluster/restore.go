package cluster

import (
	"fmt"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// RawIndex exposes the mapping's packed lookup index — every member ASN
// ascending and the owning cluster ID at the same position — for
// snapshot codecs that persist the index instead of rebuilding it.
// Callers must treat both slices as read-only.
func (m *Mapping) RawIndex() (keys []asnum.ASN, vals []int32) {
	return m.asnKeys, m.asnVals
}

// Restore assembles a Mapping from pre-built clusters and a packed
// sorted index, the inverse of RawIndex. It is the load path of the
// binary snapshot format: no union-find replay, no re-sorting — one
// verification pass and the mapping serves.
//
// Restore fully verifies the input rather than trusting it, because
// binary artifacts arrive from disk or the network: keys must be
// strictly ascending, every val must name a valid cluster, clusters
// must be in the canonical order Build produces (descending size,
// ties by smallest member), and the index must correspond exactly to
// cluster membership. The membership check is a single merged cursor
// walk — O(total ASNs), no hashing — so a restored mapping can never
// answer a lookup its clusters disagree with.
func Restore(clusters []Cluster, keys []asnum.ASN, vals []int32) (*Mapping, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("cluster: restore: %d keys but %d vals", len(keys), len(vals))
	}
	total := 0
	for i := range clusters {
		c := &clusters[i]
		if c.ID != i {
			return nil, fmt.Errorf("cluster: restore: cluster at position %d carries ID %d", i, c.ID)
		}
		if len(c.ASNs) == 0 {
			return nil, fmt.Errorf("cluster: restore: cluster %d has no members", i)
		}
		if i > 0 {
			prev := &clusters[i-1]
			if len(prev.ASNs) < len(c.ASNs) ||
				(len(prev.ASNs) == len(c.ASNs) && prev.ASNs[0] >= c.ASNs[0]) {
				return nil, fmt.Errorf("cluster: restore: clusters %d,%d violate canonical order", i-1, i)
			}
		}
		total += len(c.ASNs)
	}
	if total != len(keys) {
		return nil, fmt.Errorf("cluster: restore: clusters hold %d members but index has %d keys", total, len(keys))
	}
	// Cursor walk: keys ascend strictly, and because each cluster's
	// member list is itself ascending, visiting keys in order must
	// consume every cluster's ASNs in order. Any mismatch — wrong
	// owner, missing member, unsorted list — surfaces here.
	cursors := make([]int32, len(clusters))
	for i, a := range keys {
		if i > 0 && keys[i-1] >= a {
			return nil, fmt.Errorf("cluster: restore: index keys not strictly ascending at %d", i)
		}
		v := vals[i]
		if v < 0 || int(v) >= len(clusters) {
			return nil, fmt.Errorf("cluster: restore: index val %d out of range at %d", v, i)
		}
		cur := cursors[v]
		if int(cur) >= len(clusters[v].ASNs) || clusters[v].ASNs[cur] != a {
			return nil, fmt.Errorf("cluster: restore: index disagrees with cluster %d membership at key %s", v, a)
		}
		cursors[v] = cur + 1
	}
	m := &Mapping{
		Clusters: clusters,
		asnKeys:  keys,
		asnVals:  vals,
		sizes:    make([]int, len(clusters)),
	}
	for i := range clusters {
		m.sizes[i] = len(clusters[i].ASNs)
	}
	if len(m.asnKeys) >= pageIndexMin {
		numPages := int(m.asnKeys[len(m.asnKeys)-1]>>asnPageShift) + 1
		m.pages = make([]int32, numPages+1)
		rebuildPages(m)
	}
	return m, nil
}

// CompareCanonical orders two member lists the way Build orders
// clusters: descending size, ties broken by the smallest member ASN.
// Both lists must be sorted ascending and non-empty. The order is a
// pure function of membership, which is what lets an incremental
// delta patch reproduce the exact cluster IDs a from-scratch build
// would assign.
func CompareCanonical(a, b []asnum.ASN) int {
	if len(a) != len(b) {
		return len(b) - len(a)
	}
	switch {
	case a[0] < b[0]:
		return -1
	case a[0] > b[0]:
		return 1
	}
	return 0
}
