package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// randomMapping builds a mapping from a random universe partitioned
// into random sibling sets with random feature provenance — the
// property-test generator for serialization round trips.
func randomMapping(rng *rand.Rand) *Mapping {
	b := NewBuilder()
	n := 1 + rng.Intn(300)
	universe := make([]asnum.ASN, 0, n)
	seen := make(map[asnum.ASN]bool, n)
	for len(universe) < n {
		a := asnum.ASN(1 + rng.Intn(400_000))
		if !seen[a] {
			seen[a] = true
			universe = append(universe, a)
		}
	}
	b.AddUniverse(universe...)
	// Partition a random prefix into groups of 1..8 ASNs; each group
	// gets 1..3 random features.
	rng.Shuffle(len(universe), func(i, j int) {
		universe[i], universe[j] = universe[j], universe[i]
	})
	for i := 0; i < len(universe); {
		size := 1 + rng.Intn(8)
		if i+size > len(universe) {
			size = len(universe) - i
		}
		group := universe[i : i+size]
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.Add(SiblingSet{
				ASNs:     group,
				Source:   Feature(rng.Intn(NumFeatures)),
				Evidence: fmt.Sprintf("ev-%d", i),
			})
		}
		i += size
		if rng.Intn(4) == 0 {
			break // leave a tail of universe-only singletons
		}
	}
	return b.Build(func(members []asnum.ASN) string {
		if rng.Intn(3) == 0 {
			return "" // some clusters stay unnamed
		}
		// Names exercise CSV/JSON-hostile characters too.
		return fmt.Sprintf("Org %s, \"%d\"", members[0], len(members))
	})
}

// TestJSONLRoundTripProperty checks, over many random mappings, that
// WriteJSONL→ReadJSONL preserves everything borgesd's serving index
// depends on: per-ASN cluster membership (the byASN index), sorted
// sibling lists, display names, and feature provenance.
func TestJSONLRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 50; trial++ {
		orig := randomMapping(rng)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, orig); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if got.NumOrgs() != orig.NumOrgs() || got.NumASNs() != orig.NumASNs() {
			t.Fatalf("trial %d: %d/%d orgs/asns, want %d/%d",
				trial, got.NumOrgs(), got.NumASNs(), orig.NumOrgs(), orig.NumASNs())
		}
		for i := range orig.Clusters {
			oc := &orig.Clusters[i]
			for _, a := range oc.ASNs {
				gc := got.ClusterOf(a)
				if gc == nil {
					t.Fatalf("trial %d: %s unmapped after round trip", trial, a)
				}
				if !reflect.DeepEqual(gc.ASNs, oc.ASNs) {
					t.Fatalf("trial %d: Siblings(%s) = %v, want %v", trial, a, gc.ASNs, oc.ASNs)
				}
				if !reflect.DeepEqual(got.Siblings(a), orig.Siblings(a)) {
					t.Fatalf("trial %d: Siblings(%s) mismatch", trial, a)
				}
				if gc.Name != oc.Name {
					t.Fatalf("trial %d: name of %s = %q, want %q", trial, a, gc.Name, oc.Name)
				}
				// Feature provenance survives; a cluster with no
				// recorded features (universe-only singleton) reads
				// back with ReadJSONL's documented OID_W default.
				want := oc.Features
				if want == [NumFeatures]bool{} {
					want[FeatureOIDW] = true
				}
				if gc.Features != want {
					t.Fatalf("trial %d: features of %s = %v, want %v", trial, a, gc.Features, want)
				}
			}
		}
	}
}

// TestJSONLRoundTripSingletons pins the edge case the property test
// only sometimes hits: a mapping that is mostly universe-only
// singletons with no features beyond the OID_W default.
func TestJSONLRoundTripSingletons(t *testing.T) {
	b := NewBuilder()
	b.AddUniverse(1, 2, 3)
	m := b.Build(nil)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumOrgs() != 3 || got.NumASNs() != 3 {
		t.Fatalf("round trip = %d/%d, want 3/3", got.NumOrgs(), got.NumASNs())
	}
	for _, a := range []asnum.ASN{1, 2, 3} {
		if sib := got.Siblings(a); len(sib) != 1 || sib[0] != a {
			t.Fatalf("Siblings(%s) = %v", a, sib)
		}
	}
}
