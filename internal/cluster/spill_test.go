package cluster

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/faultinject"
)

// spillBuilder clones the in-memory builder's inputs into a fresh
// builder running in spill-to-disk mode with a deliberately tiny shard
// budget, so even small inputs rotate through several shard files.
func spillBuilder(t testing.TB, universe []asnum.ASN, sets []SiblingSet, shardBytes int64) *Builder {
	t.Helper()
	b := NewBuilder()
	if err := b.SpillToDisk(nil, t.TempDir(), shardBytes); err != nil {
		t.Fatalf("SpillToDisk: %v", err)
	}
	b.AddUniverse(universe...)
	b.AddAll(sets)
	return b
}

// TestSpillEquivalenceQuick is the property the spill mode rests on:
// for arbitrary sibling-set inputs, the spilled consolidation and the
// in-memory sharded one export byte-identical JSONL at any worker
// count and shard size.
func TestSpillEquivalenceQuick(t *testing.T) {
	f := func(rawSets [][]uint16, rawUniverse []uint16, workerSeed, shardSeed uint8) bool {
		var universe []asnum.ASN
		for _, u := range rawUniverse {
			universe = append(universe, asnum.ASN(u))
		}
		var sets []SiblingSet
		for i, raw := range rawSets {
			if len(raw) == 0 {
				continue
			}
			asns := make([]asnum.ASN, len(raw))
			for j, a := range raw {
				asns[j] = asnum.ASN(a)
			}
			sets = append(sets, SiblingSet{ASNs: asns, Source: Feature(i % NumFeatures)})
		}
		mem := NewBuilder()
		mem.AddUniverse(universe...)
		mem.AddAll(sets)
		workers := int(workerSeed)%7 + 2 // 2..8
		want := exportBytes(t, mem.BuildSharded(testNamer, workers))

		shardBytes := int64(shardSeed)%512 + 16 // tiny: force rotation
		sp := spillBuilder(t, universe, sets, shardBytes)
		m, err := sp.BuildShardedChecked(testNamer, workers)
		if err != nil {
			t.Fatalf("BuildShardedChecked: %v", err)
		}
		return bytes.Equal(want, exportBytes(t, m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSpillEquivalenceLarge repeats the byte-identity check on a fixed
// large seeded instance: enough sets to rotate through many shard
// files at a realistic record size, checked across worker counts, plus
// repeated builds from one spilled builder (shard files are replayable).
func TestSpillEquivalenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n = 16384
	var universe []asnum.ASN
	for a := 1; a <= n; a++ {
		universe = append(universe, asnum.ASN(a))
	}
	var sets []SiblingSet
	for i := 0; i < 4*n; i++ {
		size := rng.Intn(6) + 2
		set := SiblingSet{Source: Feature(i % NumFeatures)}
		base := rng.Intn(n) + 1
		for j := 0; j < size; j++ {
			a := base + rng.Intn(16) - 8
			if rng.Intn(64) == 0 {
				a = rng.Intn(n) + 1
			}
			a = min(max(a, 1), n)
			set.ASNs = append(set.ASNs, asnum.ASN(a))
		}
		sets = append(sets, set)
	}
	mem := NewBuilder()
	mem.AddUniverse(universe...)
	mem.AddAll(sets)
	want := exportBytes(t, mem.Build(testNamer))

	sp := spillBuilder(t, universe, sets, 64<<10)
	shards, spilled, _ := sp.SpillStats()
	if shards < 4 {
		t.Fatalf("expected >= 4 shard files at a 64 KiB budget, got %d", shards)
	}
	if spilled != len(sets) {
		t.Fatalf("SpillStats sets = %d, want %d", spilled, len(sets))
	}
	for _, workers := range []int{1, 2, 8} {
		m, err := sp.BuildShardedChecked(testNamer, workers)
		if err != nil {
			t.Fatalf("BuildShardedChecked(workers=%d): %v", workers, err)
		}
		if !bytes.Equal(want, exportBytes(t, m)) {
			t.Fatalf("spilled build (workers=%d) diverges from in-memory build", workers)
		}
	}
	if !bytes.Equal(want, exportBytes(t, sp.Build(testNamer))) {
		t.Fatal("spilled Build diverges from in-memory build")
	}
}

// TestSpillFaultInjection drives the spill dir through the fault
// filesystem: a short write on a shard file must surface as a sticky
// error from BuildShardedChecked (never a silently truncated mapping),
// and a truncated read of an intact shard must fail the same way.
func TestSpillFaultInjection(t *testing.T) {
	// 65 fixed-size records so the fault FS's half-size truncation tears
	// mid-record rather than landing on a record boundary.
	addSets := func(b *Builder) {
		for i := 0; i < 65; i++ {
			b.Add(SiblingSet{
				ASNs:   []asnum.ASN{asnum.ASN(i + 1), asnum.ASN(i + 2), asnum.ASN(i + 3)},
				Source: Feature(i % NumFeatures),
			})
		}
	}

	t.Run("short-write", func(t *testing.T) {
		root := t.TempDir()
		ffs := faultinject.NewFS(nil, root, faultinject.FSConfig{
			Force: map[string]faultinject.FSKind{"sets-000000.spill": faultinject.FSKindShortWrite},
		})
		b := NewBuilder()
		if err := b.SpillToDisk(ffs, root, 1<<20); err != nil {
			t.Fatalf("SpillToDisk: %v", err)
		}
		addSets(b)
		if _, err := b.BuildShardedChecked(nil, 2); !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("BuildShardedChecked error = %v, want short write", err)
		}
	})

	t.Run("truncate-read", func(t *testing.T) {
		root := t.TempDir()
		ffs := faultinject.NewFS(nil, root, faultinject.FSConfig{
			Force: map[string]faultinject.FSKind{"sets-000000.spill": faultinject.FSKindTruncateRead},
		})
		b := NewBuilder()
		if err := b.SpillToDisk(ffs, root, 1<<20); err != nil {
			t.Fatalf("SpillToDisk: %v", err)
		}
		addSets(b)
		if _, err := b.BuildShardedChecked(nil, 2); err == nil {
			t.Fatal("BuildShardedChecked succeeded reading a truncated shard")
		}
	})

	t.Run("spill-dir-create-failure", func(t *testing.T) {
		b := NewBuilder()
		// A file where the spill dir should go: MkdirAll must fail and
		// SpillToDisk must refuse up front.
		root := t.TempDir()
		blocked := filepath.Join(root, "occupied")
		if err := os.WriteFile(blocked, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := b.SpillToDisk(nil, filepath.Join(blocked, "spill"), 0); err == nil {
			t.Fatal("SpillToDisk succeeded under an unwritable parent")
		}
	})
}
