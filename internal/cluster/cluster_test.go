package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func TestUnionFindBasic(t *testing.T) {
	u := NewUnionFind()
	u.Add(1)
	u.Add(2)
	u.Add(3)
	if u.Sets() != 3 {
		t.Fatalf("Sets() = %d, want 3", u.Sets())
	}
	u.Union(1, 2)
	if u.Sets() != 2 {
		t.Fatalf("after union Sets() = %d, want 2", u.Sets())
	}
	if !u.Same(1, 2) {
		t.Error("1 and 2 should be in the same set")
	}
	if u.Same(1, 3) {
		t.Error("1 and 3 should not be in the same set")
	}
	if got := u.SizeOf(1); got != 2 {
		t.Errorf("SizeOf(1) = %d, want 2", got)
	}
	if got := u.SizeOf(99); got != 0 {
		t.Errorf("SizeOf(absent) = %d, want 0", got)
	}
}

func TestUnionFindIdempotent(t *testing.T) {
	u := NewUnionFind()
	u.Union(1, 2)
	before := u.Sets()
	u.Union(2, 1)
	u.Union(1, 2)
	if u.Sets() != before {
		t.Errorf("repeated unions changed set count: %d -> %d", before, u.Sets())
	}
	u.Add(1) // re-adding must not reset
	if u.SizeOf(1) != 2 {
		t.Errorf("re-Add reset the set: size = %d", u.SizeOf(1))
	}
}

func TestUnionFindTransitive(t *testing.T) {
	u := NewUnionFind()
	u.Union(1, 2)
	u.Union(3, 4)
	u.Union(2, 3)
	for _, pair := range [][2]asnum.ASN{{1, 3}, {1, 4}, {2, 4}} {
		if !u.Same(pair[0], pair[1]) {
			t.Errorf("%v and %v should be connected", pair[0], pair[1])
		}
	}
	if u.Sets() != 1 {
		t.Errorf("Sets() = %d, want 1", u.Sets())
	}
}

func TestUnionAll(t *testing.T) {
	u := NewUnionFind()
	u.UnionAll([]asnum.ASN{10, 20, 30, 40})
	if u.Sets() != 1 || u.SizeOf(30) != 4 {
		t.Errorf("UnionAll: sets=%d size=%d", u.Sets(), u.SizeOf(30))
	}
	u.UnionAll(nil) // must not panic
	u.UnionAll([]asnum.ASN{50})
	if u.Sets() != 2 {
		t.Errorf("singleton UnionAll: sets=%d, want 2", u.Sets())
	}
}

func TestComponentsDeterministic(t *testing.T) {
	build := func() [][]asnum.ASN {
		u := NewUnionFind()
		rng := rand.New(rand.NewSource(7))
		edges := [][2]asnum.ASN{{1, 2}, {2, 3}, {10, 11}, {20, 21}, {21, 22}, {22, 23}}
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			u.Union(e[0], e[1])
		}
		u.Add(99)
		return u.Components()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic component count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("component %d size differs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("component %d member %d differs: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	// Ordering: descending size, then smallest member.
	if len(a[0]) != 4 || a[0][0] != 20 {
		t.Errorf("first component = %v, want the size-4 {20..23}", a[0])
	}
	if len(a[len(a)-1]) != 1 {
		t.Errorf("last component should be a singleton, got %v", a[len(a)-1])
	}
}

// Property: after any sequence of unions, the components partition the
// element set, and Same agrees with component co-membership.
func TestUnionFindPartitionProperty(t *testing.T) {
	f := func(edges [][2]uint16) bool {
		u := NewUnionFind()
		for _, e := range edges {
			u.Union(asnum.ASN(e[0]), asnum.ASN(e[1]))
		}
		comps := u.Components()
		seen := map[asnum.ASN]int{}
		total := 0
		for i, c := range comps {
			for _, a := range c {
				if _, dup := seen[a]; dup {
					return false // element in two components
				}
				seen[a] = i
				total++
			}
		}
		if total != u.Len() || len(comps) != u.Sets() {
			return false
		}
		for _, e := range edges {
			if seen[asnum.ASN(e[0])] != seen[asnum.ASN(e[1])] {
				return false // edge endpoints split across components
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuilderConsolidation(t *testing.T) {
	b := NewBuilder()
	b.AddUniverse(100, 200, 300, 400, 500)
	// Two partially overlapping sets from different features must merge.
	b.Add(SiblingSet{ASNs: []asnum.ASN{100, 200}, Source: FeatureOIDW, Evidence: "ORG-A"})
	b.Add(SiblingSet{ASNs: []asnum.ASN{200, 300}, Source: FeatureOIDP, Evidence: "pdb:1"})
	m := b.Build(nil)
	if m.NumASNs() != 5 {
		t.Fatalf("NumASNs = %d, want 5", m.NumASNs())
	}
	if m.NumOrgs() != 3 { // {100,200,300}, {400}, {500}
		t.Fatalf("NumOrgs = %d, want 3", m.NumOrgs())
	}
	c := m.ClusterOf(200)
	if c == nil || c.Size() != 3 {
		t.Fatalf("ClusterOf(200) = %+v", c)
	}
	if !c.Features[FeatureOIDW] || !c.Features[FeatureOIDP] {
		t.Errorf("cluster features = %v, want both OID_W and OID_P", c.Features)
	}
	if c.Features[FeatureRR] {
		t.Error("R&R feature should not be set")
	}
	if m.ClusterOf(999) != nil {
		t.Error("unmapped ASN should return nil cluster")
	}
	sib := m.Siblings(100)
	if len(sib) != 3 || sib[0] != 100 || sib[2] != 300 {
		t.Errorf("Siblings(100) = %v", sib)
	}
	if m.Siblings(12345) != nil {
		t.Error("Siblings of unmapped ASN should be nil")
	}
}

func TestBuilderNamer(t *testing.T) {
	b := NewBuilder()
	b.Add(SiblingSet{ASNs: []asnum.ASN{1, 2}, Source: FeatureRR, Evidence: "https://x"})
	m := b.Build(func(members []asnum.ASN) string {
		if members[0] == 1 {
			return "Org One"
		}
		return ""
	})
	if m.Clusters[0].Name != "Org One" {
		t.Errorf("Name = %q, want Org One", m.Clusters[0].Name)
	}
}

func TestBuilderEmptySets(t *testing.T) {
	b := NewBuilder()
	b.Add(SiblingSet{})                                 // ignored
	b.Add(SiblingSet{ASNs: []asnum.ASN{42}})            // singleton registers
	b.AddAll([]SiblingSet{{ASNs: []asnum.ASN{42, 43}}}) // AddAll path
	m := b.Build(nil)
	if m.NumASNs() != 2 || m.NumOrgs() != 1 {
		t.Errorf("got %d ASNs / %d orgs, want 2/1", m.NumASNs(), m.NumOrgs())
	}
}

func TestMappingSizes(t *testing.T) {
	b := NewBuilder()
	b.Add(SiblingSet{ASNs: []asnum.ASN{1, 2, 3}})
	b.Add(SiblingSet{ASNs: []asnum.ASN{10, 11}})
	b.AddUniverse(99)
	sizes := b.Build(nil).Sizes()
	want := []int{3, 2, 1}
	if len(sizes) != 3 {
		t.Fatalf("Sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", sizes, want)
		}
	}
}

func TestFeatureString(t *testing.T) {
	want := map[Feature]string{
		FeatureOIDW: "OID_W", FeatureOIDP: "OID_P",
		FeatureNotesAka: "N&A", FeatureRR: "R&R", FeatureFavicon: "F",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), s)
		}
	}
	if Feature(99).String() != "Feature(99)" {
		t.Errorf("unknown feature String() = %q", Feature(99).String())
	}
}

func BenchmarkUnionFindUnion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := NewUnionFind()
		for j := 0; j < 1000; j++ {
			u.Union(asnum.ASN(j), asnum.ASN(j/2))
		}
	}
}

func BenchmarkComponents10k(b *testing.B) {
	u := NewUnionFind()
	rng := rand.New(rand.NewSource(1))
	for j := 0; j < 10000; j++ {
		u.Union(asnum.ASN(rng.Intn(10000)), asnum.ASN(rng.Intn(10000)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Components()
	}
}
