package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// exportRecord is the on-disk JSON-lines form of one organization:
//
//	{"org":0,"name":"Lumen","asns":[209,3356,3549],"features":["OID_W","OID_P","R&R"]}
type exportRecord struct {
	Org      int      `json:"org"`
	Name     string   `json:"name,omitempty"`
	ASNs     []uint32 `json:"asns"`
	Features []string `json:"features,omitempty"`
}

// WriteJSONL serializes a mapping as JSON lines, one organization per
// line, in the mapping's deterministic cluster order.
func WriteJSONL(w io.Writer, m *Mapping) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range m.Clusters {
		c := &m.Clusters[i]
		rec := exportRecord{Org: c.ID, Name: c.Name, ASNs: make([]uint32, len(c.ASNs))}
		for j, a := range c.ASNs {
			rec.ASNs[j] = uint32(a)
		}
		for f := 0; f < NumFeatures; f++ {
			if c.Features[f] {
				rec.Features = append(rec.Features, Feature(f).String())
			}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("cluster: write org %d: %w", c.ID, err)
		}
	}
	return bw.Flush()
}

// featureByName inverts Feature.String for parsing.
func featureByName(s string) (Feature, error) {
	for f := 0; f < NumFeatures; f++ {
		if Feature(f).String() == s {
			return Feature(f), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown feature %q", s)
}

// ReadJSONL parses a mapping previously written with WriteJSONL. The
// loaded mapping reproduces membership, names, and feature provenance;
// cluster IDs are reassigned in deterministic order.
func ReadJSONL(r io.Reader) (*Mapping, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := NewBuilder()
	type pending struct {
		name     string
		features []Feature
		first    asnum.ASN
	}
	var pendings []pending
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec exportRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("cluster: line %d: %w", line, err)
		}
		if len(rec.ASNs) == 0 {
			return nil, fmt.Errorf("cluster: line %d: organization without members", line)
		}
		asns := make([]asnum.ASN, len(rec.ASNs))
		for i, a := range rec.ASNs {
			asns[i] = asnum.ASN(a)
		}
		p := pending{name: rec.Name, first: asns[0]}
		for _, fs := range rec.Features {
			f, err := featureByName(fs)
			if err != nil {
				return nil, fmt.Errorf("cluster: line %d: %w", line, err)
			}
			p.features = append(p.features, f)
		}
		// Register membership; one set per recorded feature keeps the
		// provenance bits, with a default OID_W set when none were
		// recorded.
		if len(p.features) == 0 {
			b.Add(SiblingSet{ASNs: asns, Source: FeatureOIDW})
		}
		for _, f := range p.features {
			b.Add(SiblingSet{ASNs: asns, Source: f})
		}
		pendings = append(pendings, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: scan: %w", err)
	}
	names := make(map[asnum.ASN]string, len(pendings))
	for _, p := range pendings {
		if p.name != "" {
			names[p.first] = p.name
		}
	}
	m := b.Build(func(members []asnum.ASN) string {
		for _, a := range members {
			if n, ok := names[a]; ok {
				return n
			}
		}
		return ""
	})
	return m, nil
}
