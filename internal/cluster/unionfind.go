// Package cluster implements the sibling-set consolidation engine of
// Borges. Each inference feature (organization keys, NER extraction,
// final-URL matching, favicon analysis) produces sets of ASNs believed to
// be under common administration; this package merges partially
// overlapping sets transitively — "we consolidate partially overlapping
// clusters into a single organization" (§4.1) — using a weighted
// quick-union structure with path compression.
package cluster

import (
	"github.com/nu-aqualab/borges/internal/asnum"
)

// UnionFind is a disjoint-set forest over ASNs with union by size and
// path halving. The zero value is not usable; call NewUnionFind.
type UnionFind struct {
	parent map[asnum.ASN]asnum.ASN
	size   map[asnum.ASN]int
	sets   int
}

// NewUnionFind returns an empty disjoint-set forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[asnum.ASN]asnum.ASN),
		size:   make(map[asnum.ASN]int),
	}
}

// Add inserts a as a singleton set if not already present.
func (u *UnionFind) Add(a asnum.ASN) {
	if _, ok := u.parent[a]; ok {
		return
	}
	u.parent[a] = a
	u.size[a] = 1
	u.sets++
}

// Contains reports whether a has been added.
func (u *UnionFind) Contains(a asnum.ASN) bool {
	_, ok := u.parent[a]
	return ok
}

// Find returns the canonical representative of a's set, adding a as a
// singleton if it was not present.
func (u *UnionFind) Find(a asnum.ASN) asnum.ASN {
	u.Add(a)
	for u.parent[a] != a {
		u.parent[a] = u.parent[u.parent[a]] // path halving
		a = u.parent[a]
	}
	return a
}

// Union merges the sets containing a and b and returns the representative
// of the merged set.
func (u *UnionFind) Union(a, b asnum.ASN) asnum.ASN {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	// Union by size; tie-break on the smaller ASN for determinism.
	if u.size[ra] < u.size[rb] || (u.size[ra] == u.size[rb] && rb < ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.sets--
	return ra
}

// UnionAll merges every ASN in the slice into one set.
func (u *UnionFind) UnionAll(asns []asnum.ASN) {
	if len(asns) == 0 {
		return
	}
	first := asns[0]
	u.Add(first)
	for _, a := range asns[1:] {
		u.Union(first, a)
	}
}

// Same reports whether a and b are in the same set. Both are added if
// absent.
func (u *UnionFind) Same(a, b asnum.ASN) bool { return u.Find(a) == u.Find(b) }

// Len returns the number of elements added.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// SizeOf returns the size of the set containing a (0 if absent).
func (u *UnionFind) SizeOf(a asnum.ASN) int {
	if !u.Contains(a) {
		return 0
	}
	return u.size[u.Find(a)]
}

// Components returns every disjoint set as a sorted slice of ASNs. The
// outer slice is ordered by descending size, ties broken by the smallest
// member ASN, so output is deterministic.
func (u *UnionFind) Components() [][]asnum.ASN {
	groups := make(map[asnum.ASN][]asnum.ASN, u.sets)
	for a := range u.parent {
		r := u.Find(a)
		groups[r] = append(groups[r], a)
	}
	out := make([][]asnum.ASN, 0, len(groups))
	for _, members := range groups {
		out = append(out, members)
	}
	sortComponents(out, 1)
	return out
}
