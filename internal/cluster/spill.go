// Spill-to-disk ingestion: the constant-memory mode behind
// Builder.SpillToDisk. Membership sets are appended to shard files under
// a caller-owned directory instead of accumulating in b.sets, leaving
// only the universe dictionary and an 8-byte provenance residue per set
// in memory. Consolidation replays the shard files one at a time — each
// file collapses into a private dense union-find whose frontier edges
// merge into the global structure — so peak RSS is bounded by the
// largest shard plus the output, not by the total set volume. The final
// partition is a pure function of the union of all sets, and the
// canonical component order is a pure function of the partition, so the
// spilled build is byte-identical to the in-memory one at any shard
// size and worker count (spill_test asserts this over random inputs).
//
// Shard file format (little-endian, one record per set):
//
//	[source u8][n u32][n x u32 member ASNs]
//
// All file I/O goes through internal/vfs, so the disk-chaos suite can
// inject short writes, fsync errors, and bit flips into the spill dir;
// I/O errors are sticky and surface from BuildShardedChecked.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// DefaultSpillShardBytes is the shard rotation threshold when
// SpillToDisk is given shardBytes <= 0. 32 MiB keeps the per-shard
// dictionary a few million entries at worst while amortizing file
// open/close over hundreds of thousands of sets.
const DefaultSpillShardBytes = 32 << 20

// spillRecordHeader is the fixed prefix of one spill record: a feature
// byte plus a u32 member count.
const spillRecordHeader = 5

// maxSpillSetLen bounds the member count a shard reader will allocate
// for; a larger count means the shard bytes were corrupted (the writer
// never produces sets this large).
const maxSpillSetLen = 1 << 27

// setProv is the in-memory residue of one spilled set: enough to replay
// feature provenance after consolidation (every member of a set lands
// in one cluster, so the first ASN locates it).
type setProv struct {
	first asnum.ASN
	src   Feature
}

// spillState carries the Builder's spill mode: the open shard file, the
// rotation budget, the provenance residue, and a sticky I/O error.
type spillState struct {
	fsys     vfs.FS
	dir      string
	maxBytes int64
	cur      vfs.File
	bw       *bufio.Writer
	curBytes int64
	files    []string
	prov     []setProv
	bytes    int64
	scratch  []byte
	err      error
}

// SpillToDisk switches the builder to spill-to-disk ingestion: every
// subsequent Add appends the set to a shard file under dir (created if
// absent) instead of retaining its members in memory. Shard files
// rotate at shardBytes (DefaultSpillShardBytes when <= 0). The caller
// owns dir and removes it after the build; fsys nil means the real
// filesystem. SpillToDisk must be called before the first Add.
//
// Spill write errors are sticky: Add stays infallible, and the first
// error surfaces from BuildShardedChecked.
func (b *Builder) SpillToDisk(fsys vfs.FS, dir string, shardBytes int64) error {
	if b.spill != nil {
		return fmt.Errorf("cluster: spill already enabled (dir %s)", b.spill.dir)
	}
	if len(b.sets) > 0 {
		return fmt.Errorf("cluster: SpillToDisk must precede the first Add (%d sets already buffered)", len(b.sets))
	}
	if shardBytes <= 0 {
		shardBytes = DefaultSpillShardBytes
	}
	fsys = vfs.Or(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: spill dir: %w", err)
	}
	b.spill = &spillState{fsys: fsys, dir: dir, maxBytes: shardBytes}
	return nil
}

// Spilled reports whether the builder is in spill-to-disk mode.
func (b *Builder) Spilled() bool { return b.spill != nil }

// SpillStats returns the shard file count, spilled set count, and total
// bytes written so far. Zero values when spill mode is off.
func (b *Builder) SpillStats() (shards, sets int, bytes int64) {
	if b.spill == nil {
		return 0, 0, 0
	}
	return len(b.spill.files), len(b.spill.prov), b.spill.bytes
}

// add appends one set to the current shard file, rotating first when
// the byte budget is spent. Errors are sticky.
func (sp *spillState) add(s SiblingSet) {
	if sp.err != nil {
		return
	}
	if sp.cur == nil || sp.curBytes >= sp.maxBytes {
		if err := sp.rotate(); err != nil {
			sp.err = err
			return
		}
	}
	need := spillRecordHeader + 4*len(s.ASNs)
	if cap(sp.scratch) < need {
		sp.scratch = make([]byte, need)
	}
	buf := sp.scratch[:need]
	buf[0] = byte(s.Source)
	binary.LittleEndian.PutUint32(buf[1:spillRecordHeader], uint32(len(s.ASNs)))
	for i, a := range s.ASNs {
		binary.LittleEndian.PutUint32(buf[spillRecordHeader+4*i:], uint32(a))
	}
	if _, err := sp.bw.Write(buf); err != nil {
		sp.err = fmt.Errorf("cluster: spill write: %w", err)
		return
	}
	sp.curBytes += int64(need)
	sp.bytes += int64(need)
	sp.prov = append(sp.prov, setProv{first: s.ASNs[0], src: s.Source})
}

// rotate closes the current shard file and opens the next one.
func (sp *spillState) rotate() error {
	if err := sp.closeCurrent(); err != nil {
		return err
	}
	name := filepath.Join(sp.dir, fmt.Sprintf("sets-%06d.spill", len(sp.files)))
	f, err := sp.fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: spill shard: %w", err)
	}
	sp.cur = f
	sp.bw = bufio.NewWriterSize(f, 1<<16)
	sp.curBytes = 0
	sp.files = append(sp.files, name)
	return nil
}

// closeCurrent flushes and closes the open shard file, if any. Spill
// data needs no fsync: a crash mid-build loses the build either way.
func (sp *spillState) closeCurrent() error {
	if sp.cur == nil {
		return nil
	}
	f, bw := sp.cur, sp.bw
	sp.cur, sp.bw = nil, nil
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: spill flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: spill close: %w", err)
	}
	return nil
}

// spilledComponents consolidates the shard files one at a time into a
// global dense union-find and extracts canonically ordered components.
// Peak memory is the global dictionary (output-sized) plus one shard's
// local dictionary.
func (b *Builder) spilledComponents(workers int) ([][]asnum.ASN, error) {
	sp := b.spill
	if sp.err != nil {
		return nil, sp.err
	}
	if err := sp.closeCurrent(); err != nil {
		sp.err = err
		return nil, err
	}
	g := &shard{index: make(map[asnum.ASN]int32, len(b.universe))}
	for _, a := range b.universe {
		g.id(a)
	}
	for _, name := range sp.files {
		if err := consolidateSpillFile(sp.fsys, name, g); err != nil {
			sp.err = err
			return nil, err
		}
	}
	return denseComponents(g, workers), nil
}

// consolidateSpillFile replays one shard file into a private dense
// union-find, then merges its frontier (one edge per non-root element)
// into the global structure — the same merge BuildSharded's in-memory
// workers use, so the resulting partition is identical.
func consolidateSpillFile(fsys vfs.FS, name string, g *shard) error {
	f, err := fsys.Open(name)
	if err != nil {
		return fmt.Errorf("cluster: spill shard %s: %w", filepath.Base(name), err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	local := &shard{index: make(map[asnum.ASN]int32)}
	var head [spillRecordHeader]byte
	var raw []byte
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("cluster: spill shard %s: %w", filepath.Base(name), err)
		}
		n := int(binary.LittleEndian.Uint32(head[1:spillRecordHeader]))
		if n == 0 || n > maxSpillSetLen {
			return fmt.Errorf("cluster: spill shard %s: corrupt set length %d", filepath.Base(name), n)
		}
		if cap(raw) < 4*n {
			raw = make([]byte, 4*n)
		}
		raw = raw[:4*n]
		if _, err := io.ReadFull(br, raw); err != nil {
			return fmt.Errorf("cluster: spill shard %s: truncated set: %w", filepath.Base(name), err)
		}
		first := local.id(asnum.ASN(binary.LittleEndian.Uint32(raw)))
		for i := 1; i < n; i++ {
			local.dsu.union(first, local.id(asnum.ASN(binary.LittleEndian.Uint32(raw[4*i:]))))
		}
	}
	for lid, a := range local.elems {
		root := local.dsu.find(int32(lid))
		ga := g.id(a)
		if int32(lid) != root {
			g.dsu.union(ga, g.id(local.elems[root]))
		}
	}
	return nil
}
