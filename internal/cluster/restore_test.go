package cluster

import (
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func restoreFixture(t *testing.T) *Mapping {
	t.Helper()
	b := NewBuilder()
	b.AddUniverse(1, 2, 3, 10, 11, 20, 30, 31, 32, 33)
	b.Add(SiblingSet{ASNs: []asnum.ASN{1, 2, 3}, Source: FeatureOIDW})
	b.Add(SiblingSet{ASNs: []asnum.ASN{10, 11}, Source: FeatureRR})
	b.Add(SiblingSet{ASNs: []asnum.ASN{30, 31}, Source: FeatureOIDP})
	b.Add(SiblingSet{ASNs: []asnum.ASN{31, 32, 33}, Source: FeatureFavicon})
	return b.Build(func(members []asnum.ASN) string {
		return "Org " + members[0].String()
	})
}

func TestRestoreInvertsRawIndex(t *testing.T) {
	m := restoreFixture(t)
	keys, vals := m.RawIndex()
	got, err := Restore(m.Clusters, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumOrgs() != m.NumOrgs() || got.NumASNs() != m.NumASNs() {
		t.Fatalf("restored %d/%d, want %d/%d",
			got.NumOrgs(), got.NumASNs(), m.NumOrgs(), m.NumASNs())
	}
	for _, a := range keys {
		want := m.ClusterOf(a)
		have := got.ClusterOf(a)
		if have == nil || have.ID != want.ID || have.Name != want.Name {
			t.Fatalf("ClusterOf(%s) diverged after restore", a)
		}
	}
	for i, s := range m.Sizes() {
		if got.Sizes()[i] != s {
			t.Fatalf("sizes diverged at %d", i)
		}
	}
}

func TestRestoreRejects(t *testing.T) {
	m := restoreFixture(t)
	keys, vals := m.RawIndex()
	clone := func() ([]Cluster, []asnum.ASN, []int32) {
		cs := make([]Cluster, len(m.Clusters))
		copy(cs, m.Clusters)
		ks := append([]asnum.ASN(nil), keys...)
		vs := append([]int32(nil), vals...)
		return cs, ks, vs
	}
	cases := []struct {
		name string
		mut  func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32)
		want string
	}{
		{"length mismatch", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			return cs, ks, vs[:len(vs)-1]
		}, "keys but"},
		{"wrong ID", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			cs[0].ID = 7
			return cs, ks, vs
		}, "carries ID"},
		{"canonical order violated", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			cs[0], cs[len(cs)-1] = cs[len(cs)-1], cs[0]
			cs[0].ID = 0
			cs[len(cs)-1].ID = len(cs) - 1
			return cs, ks, vs
		}, "canonical order"},
		{"empty cluster", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			cs[len(cs)-1].ASNs = nil
			return cs, ks, vs
		}, "no members"},
		{"val out of range", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			vs[0] = int32(len(cs))
			return cs, ks, vs
		}, "out of range"},
		{"keys not ascending", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			ks[1] = ks[0] // duplicate key, caught before the cursor walk
			return cs, ks, vs
		}, "ascending"},
		{"membership mismatch", func(cs []Cluster, ks []asnum.ASN, vs []int32) ([]Cluster, []asnum.ASN, []int32) {
			// Swap ownership of two ASNs without touching membership.
			vs[0], vs[len(vs)-1] = vs[len(vs)-1], vs[0]
			return cs, ks, vs
		}, "disagrees"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Restore(tc.mut(clone()))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Restore = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCompareCanonicalMatchesBuild checks that the exported comparator
// reproduces the order Build actually emits, which is what the delta
// patcher relies on to reassign IDs without a rebuild.
func TestCompareCanonicalMatchesBuild(t *testing.T) {
	m := restoreFixture(t)
	for i := 1; i < len(m.Clusters); i++ {
		if CompareCanonical(m.Clusters[i-1].ASNs, m.Clusters[i].ASNs) >= 0 {
			t.Fatalf("CompareCanonical disagrees with Build order at %d", i)
		}
	}
	if CompareCanonical([]asnum.ASN{5}, []asnum.ASN{5}) != 0 {
		t.Fatal("identical lists must compare equal")
	}
}
