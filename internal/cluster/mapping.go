package cluster

import (
	"fmt"
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Feature identifies which Borges inference feature produced a sibling
// set. The names follow Table 3 / Table 6 of the paper.
type Feature uint8

const (
	// FeatureOIDW groups ASNs sharing a WHOIS organization ID (AS2Org).
	FeatureOIDW Feature = iota
	// FeatureOIDP groups ASNs sharing a PeeringDB organization ID.
	FeatureOIDP
	// FeatureNotesAka groups ASNs extracted from notes/aka text by the
	// LLM-based NER module (§4.2).
	FeatureNotesAka
	// FeatureRR groups ASNs whose websites lead (directly or through
	// refreshes and redirects) to the same final URL (§4.3.2).
	FeatureRR
	// FeatureFavicon groups ASNs whose websites share favicons and
	// brand-consistent domains (§4.3.3).
	FeatureFavicon

	numFeatures = iota
)

// NumFeatures is the number of distinct inference features.
const NumFeatures = int(numFeatures)

// String implements fmt.Stringer using the paper's shorthand.
func (f Feature) String() string {
	switch f {
	case FeatureOIDW:
		return "OID_W"
	case FeatureOIDP:
		return "OID_P"
	case FeatureNotesAka:
		return "N&A"
	case FeatureRR:
		return "R&R"
	case FeatureFavicon:
		return "F"
	default:
		return fmt.Sprintf("Feature(%d)", uint8(f))
	}
}

// SiblingSet is one inferred group of ASNs under common administration,
// with the feature that produced it and a short human-readable evidence
// string (an org ID, a final URL, a favicon hash, …).
type SiblingSet struct {
	ASNs     []asnum.ASN
	Source   Feature
	Evidence string
}

// Cluster is one organization in a consolidated mapping.
type Cluster struct {
	// ID is the cluster's index in Mapping.Clusters (stable for a given
	// mapping, not across mappings).
	ID int
	// Name is a display name chosen by the builder's namer (may be "").
	Name string
	// ASNs are the member networks, sorted ascending.
	ASNs []asnum.ASN
	// Features records which features contributed at least one edge
	// inside this cluster.
	Features [NumFeatures]bool
}

// Size returns the number of member networks.
func (c *Cluster) Size() int { return len(c.ASNs) }

// Mapping is a consolidated AS-to-Organization mapping: a partition of a
// network universe into organizations.
type Mapping struct {
	Clusters []Cluster
	byASN    map[asnum.ASN]int
}

// NumOrgs returns the number of organizations.
func (m *Mapping) NumOrgs() int { return len(m.Clusters) }

// NumASNs returns the number of networks covered.
func (m *Mapping) NumASNs() int { return len(m.byASN) }

// ClusterOf returns the cluster containing a, or nil if a is unmapped.
func (m *Mapping) ClusterOf(a asnum.ASN) *Cluster {
	i, ok := m.byASN[a]
	if !ok {
		return nil
	}
	return &m.Clusters[i]
}

// Siblings returns the sorted sibling ASNs of a (including a itself), or
// nil if a is unmapped.
func (m *Mapping) Siblings(a asnum.ASN) []asnum.ASN {
	c := m.ClusterOf(a)
	if c == nil {
		return nil
	}
	return c.ASNs
}

// Sizes returns the cluster sizes in descending order.
func (m *Mapping) Sizes() []int {
	out := make([]int, len(m.Clusters))
	for i := range m.Clusters {
		out[i] = len(m.Clusters[i].ASNs)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Namer chooses a display name for a cluster given its members. It may
// return "" when no name is known.
type Namer func(members []asnum.ASN) string

// Builder accumulates sibling sets and consolidates them into a Mapping.
type Builder struct {
	uf       *UnionFind
	universe map[asnum.ASN]bool
	// featureEdges remembers, per representative-pair merge, which
	// features touched which ASNs; resolved at Build time by replaying.
	sets []SiblingSet
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{uf: NewUnionFind(), universe: make(map[asnum.ASN]bool)}
}

// AddUniverse declares ASNs that must appear in the final mapping even if
// no sibling set mentions them (they become singletons). The paper's θ
// computation uses "all networks appearing in the WHOIS records" as the
// universe (§5.4).
func (b *Builder) AddUniverse(asns ...asnum.ASN) {
	for _, a := range asns {
		b.universe[a] = true
		b.uf.Add(a)
	}
}

// Add records one sibling set. Sets with fewer than one ASN are ignored;
// singleton sets still register the ASN in the mapping.
func (b *Builder) Add(s SiblingSet) {
	if len(s.ASNs) == 0 {
		return
	}
	b.uf.UnionAll(s.ASNs)
	b.sets = append(b.sets, s)
}

// AddAll records many sibling sets.
func (b *Builder) AddAll(sets []SiblingSet) {
	for _, s := range sets {
		b.Add(s)
	}
}

// Build consolidates everything added so far into a Mapping. The namer,
// if non-nil, assigns display names. Build may be called repeatedly; each
// call reflects the current state.
func (b *Builder) Build(namer Namer) *Mapping {
	comps := b.uf.Components()
	m := &Mapping{
		Clusters: make([]Cluster, len(comps)),
		byASN:    make(map[asnum.ASN]int, b.uf.Len()),
	}
	repTo := make(map[asnum.ASN]int, len(comps))
	for i, members := range comps {
		m.Clusters[i] = Cluster{ID: i, ASNs: members}
		for _, a := range members {
			m.byASN[a] = i
		}
		repTo[b.uf.Find(members[0])] = i
	}
	for _, s := range b.sets {
		ci := repTo[b.uf.Find(s.ASNs[0])]
		m.Clusters[ci].Features[s.Source] = true
	}
	if namer != nil {
		for i := range m.Clusters {
			m.Clusters[i].Name = namer(m.Clusters[i].ASNs)
		}
	}
	return m
}

// Universe returns the declared universe size.
func (b *Builder) Universe() int { return len(b.universe) }
