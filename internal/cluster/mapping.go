package cluster

import (
	"fmt"
	"runtime"
	"slices"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Feature identifies which Borges inference feature produced a sibling
// set. The names follow Table 3 / Table 6 of the paper.
type Feature uint8

const (
	// FeatureOIDW groups ASNs sharing a WHOIS organization ID (AS2Org).
	FeatureOIDW Feature = iota
	// FeatureOIDP groups ASNs sharing a PeeringDB organization ID.
	FeatureOIDP
	// FeatureNotesAka groups ASNs extracted from notes/aka text by the
	// LLM-based NER module (§4.2).
	FeatureNotesAka
	// FeatureRR groups ASNs whose websites lead (directly or through
	// refreshes and redirects) to the same final URL (§4.3.2).
	FeatureRR
	// FeatureFavicon groups ASNs whose websites share favicons and
	// brand-consistent domains (§4.3.3).
	FeatureFavicon

	numFeatures = iota
)

// NumFeatures is the number of distinct inference features.
const NumFeatures = int(numFeatures)

// String implements fmt.Stringer using the paper's shorthand.
func (f Feature) String() string {
	switch f {
	case FeatureOIDW:
		return "OID_W"
	case FeatureOIDP:
		return "OID_P"
	case FeatureNotesAka:
		return "N&A"
	case FeatureRR:
		return "R&R"
	case FeatureFavicon:
		return "F"
	default:
		return fmt.Sprintf("Feature(%d)", uint8(f))
	}
}

// SiblingSet is one inferred group of ASNs under common administration,
// with the feature that produced it and a short human-readable evidence
// string (an org ID, a final URL, a favicon hash, …).
type SiblingSet struct {
	ASNs     []asnum.ASN
	Source   Feature
	Evidence string
}

// Cluster is one organization in a consolidated mapping.
type Cluster struct {
	// ID is the cluster's index in Mapping.Clusters (stable for a given
	// mapping, not across mappings).
	ID int
	// Name is a display name chosen by the builder's namer (may be "").
	Name string
	// ASNs are the member networks, sorted ascending.
	ASNs []asnum.ASN
	// Features records which features contributed at least one edge
	// inside this cluster.
	Features [NumFeatures]bool
}

// Size returns the number of member networks.
func (c *Cluster) Size() int { return len(c.ASNs) }

// asnPageShift selects the two-level index page: all ASNs sharing the
// same high 16 bits land on one page of the sorted key slice.
const asnPageShift = 16

// pageIndexMin is the network count below which the two-level page
// index is skipped: a plain binary search over a few thousand keys
// already fits in cache and the page table would dominate the mapping's
// footprint.
const pageIndexMin = 1 << 12

// Mapping is a consolidated AS-to-Organization mapping: a partition of a
// network universe into organizations.
//
// Point lookups run against a sorted-slice index instead of a hash map:
// asnKeys holds every member ASN ascending and asnVals the cluster ID at
// the same position. For large mappings a second level (pages) maps the
// high 16 bits of an ASN to the key range holding that page, so
// ClusterOf is a bounded binary search over a cache-resident span.
type Mapping struct {
	Clusters []Cluster

	asnKeys []asnum.ASN
	asnVals []int32
	// pages[p] is the first position in asnKeys whose key has high bits
	// p; pages[len(pages)-1] == len(asnKeys). Nil for small mappings.
	pages []int32
	// sizes caches the cluster sizes in descending order. Clusters are
	// materialized largest-first, so this is simply the member count per
	// cluster in cluster order, computed once at build time.
	sizes []int
}

// NumOrgs returns the number of organizations.
func (m *Mapping) NumOrgs() int { return len(m.Clusters) }

// NumASNs returns the number of networks covered.
func (m *Mapping) NumASNs() int { return len(m.asnKeys) }

// indexOf returns the position of a in the sorted key slice, or -1.
func (m *Mapping) indexOf(a asnum.ASN) int {
	lo, hi := 0, len(m.asnKeys)
	if m.pages != nil {
		p := int(a >> asnPageShift)
		if p >= len(m.pages)-1 {
			return -1
		}
		lo, hi = int(m.pages[p]), int(m.pages[p+1])
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.asnKeys[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.asnKeys) && m.asnKeys[lo] == a {
		return lo
	}
	return -1
}

// ClusterOf returns the cluster containing a, or nil if a is unmapped.
func (m *Mapping) ClusterOf(a asnum.ASN) *Cluster {
	i := m.indexOf(a)
	if i < 0 {
		return nil
	}
	return &m.Clusters[m.asnVals[i]]
}

// Siblings returns the sorted sibling ASNs of a (including a itself), or
// nil if a is unmapped.
func (m *Mapping) Siblings(a asnum.ASN) []asnum.ASN {
	c := m.ClusterOf(a)
	if c == nil {
		return nil
	}
	return c.ASNs
}

// Sizes returns the cluster sizes in descending order. The slice is
// computed once at build time and shared across calls; callers must
// treat it as read-only.
func (m *Mapping) Sizes() []int {
	if m.sizes == nil && len(m.Clusters) > 0 {
		// Mappings assembled by hand (tests) rather than through Build:
		// fall back to a one-off computation.
		sizes := make([]int, len(m.Clusters))
		for i := range m.Clusters {
			sizes[i] = len(m.Clusters[i].ASNs)
		}
		slices.SortFunc(sizes, func(a, b int) int { return b - a })
		m.sizes = sizes
	}
	return m.sizes
}

// Namer chooses a display name for a cluster given its members. It may
// return "" when no name is known.
type Namer func(members []asnum.ASN) string

// Builder accumulates sibling sets and consolidates them into a Mapping.
// Consolidation is deferred: Add only records sets, and Build (or
// BuildSharded) replays them through a union-find, so repeated builds
// and the sharded strategy see the same inputs.
type Builder struct {
	universe   []asnum.ASN
	inUniverse map[asnum.ASN]bool
	sets       []SiblingSet
	// spill, when non-nil, redirects Add to shard files on disk; see
	// SpillToDisk in spill.go.
	spill *spillState
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{inUniverse: make(map[asnum.ASN]bool)}
}

// AddUniverse declares ASNs that must appear in the final mapping even if
// no sibling set mentions them (they become singletons). The paper's θ
// computation uses "all networks appearing in the WHOIS records" as the
// universe (§5.4).
func (b *Builder) AddUniverse(asns ...asnum.ASN) {
	for _, a := range asns {
		if !b.inUniverse[a] {
			b.inUniverse[a] = true
			b.universe = append(b.universe, a)
		}
	}
}

// Add records one sibling set. Sets with fewer than one ASN are ignored;
// singleton sets still register the ASN in the mapping.
func (b *Builder) Add(s SiblingSet) {
	if len(s.ASNs) == 0 {
		return
	}
	if b.spill != nil {
		b.spill.add(s)
		return
	}
	b.sets = append(b.sets, s)
}

// AddAll records many sibling sets.
func (b *Builder) AddAll(sets []SiblingSet) {
	for _, s := range sets {
		b.Add(s)
	}
}

// Build consolidates everything added so far into a Mapping with the
// sequential union-find. The namer, if non-nil, assigns display names.
// Build may be called repeatedly; each call reflects the current state.
func (b *Builder) Build(namer Namer) *Mapping {
	if b.spill != nil {
		// The sets live on disk; consolidate through the spill reader.
		// Build stays error-free for API compatibility — spill I/O
		// errors are observable via BuildShardedChecked.
		m, _ := b.BuildShardedChecked(namer, 1)
		return m
	}
	uf := NewUnionFind()
	for _, a := range b.universe {
		uf.Add(a)
	}
	for _, s := range b.sets {
		uf.UnionAll(s.ASNs)
	}
	return b.materialize(uf.Components(), namer)
}

// BuildSharded consolidates with the sharded strategy: sibling sets are
// partitioned across workers (GOMAXPROCS when workers <= 0), each shard
// runs a local dense union-find, and the per-shard frontiers merge into
// a global structure. The result is identical to Build's — same cluster
// IDs, same WriteJSONL bytes — a property the shard_test suite asserts
// over random inputs.
func (b *Builder) BuildSharded(namer Namer, workers int) *Mapping {
	m, _ := b.BuildShardedChecked(namer, workers)
	return m
}

// BuildShardedChecked is BuildSharded with an error return: in
// spill-to-disk mode (SpillToDisk) a sticky spill write error or a
// shard-file read error surfaces here instead of being swallowed. The
// in-memory path never errors. The result is byte-identical across
// modes, shard sizes, and worker counts.
func (b *Builder) BuildShardedChecked(namer Namer, workers int) (*Mapping, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if b.spill != nil {
		comps, err := b.spilledComponents(workers)
		if err != nil {
			return nil, err
		}
		return b.materialize(comps, namer), nil
	}
	return b.materialize(shardedComponents(b.sets, b.universe, workers), namer), nil
}

// materialize turns deterministic components into a Mapping: clusters,
// the sorted two-level ASN index, the cached size slice, feature
// provenance replay, and interned display names.
func (b *Builder) materialize(comps [][]asnum.ASN, namer Namer) *Mapping {
	m := &Mapping{Clusters: make([]Cluster, len(comps))}
	total := 0
	for _, members := range comps {
		total += len(members)
	}
	m.sizes = make([]int, len(comps))
	// Pack (ASN, cluster) pairs into uint64s so one flat slices.Sort
	// produces the ASN-ordered index without a comparison callback.
	packed := make([]uint64, 0, total)
	for i, members := range comps {
		m.Clusters[i] = Cluster{ID: i, ASNs: members}
		m.sizes[i] = len(members)
		for _, a := range members {
			packed = append(packed, uint64(a)<<32|uint64(uint32(i)))
		}
	}
	slices.Sort(packed)
	m.asnKeys = make([]asnum.ASN, len(packed))
	m.asnVals = make([]int32, len(packed))
	for i, p := range packed {
		m.asnKeys[i] = asnum.ASN(p >> 32)
		m.asnVals[i] = int32(uint32(p))
	}
	if len(m.asnKeys) >= pageIndexMin {
		numPages := int(m.asnKeys[len(m.asnKeys)-1]>>asnPageShift) + 1
		m.pages = make([]int32, numPages+1)
		rebuildPages(m)
	}
	// Replay feature provenance through the finished index: every set
	// member landed in exactly one cluster, so the set's first ASN
	// locates it. In spill mode the members are on disk, but the
	// retained (first, source) residue is all this pass needs.
	b.forEachProv(func(first asnum.ASN, src Feature) {
		if i := m.indexOf(first); i >= 0 {
			m.Clusters[m.asnVals[i]].Features[src] = true
		}
	})
	if namer != nil {
		// Intern display names: namers commonly re-derive the same
		// string for many clusters (shared WHOIS org names), and the
		// serving layer holds every name for the lifetime of a snapshot.
		interned := make(map[string]string)
		for i := range m.Clusters {
			name := namer(m.Clusters[i].ASNs)
			if name == "" {
				continue
			}
			if prev, ok := interned[name]; ok {
				name = prev
			} else {
				interned[name] = name
			}
			m.Clusters[i].Name = name
		}
	}
	return m
}

// rebuildPages recomputes the page table from the sorted key slice in
// one forward pass. Split out so materialize stays readable.
func rebuildPages(m *Mapping) {
	for p := range m.pages {
		m.pages[p] = 0
	}
	for _, a := range m.asnKeys {
		m.pages[int(a>>asnPageShift)+1]++
	}
	for p := 1; p < len(m.pages); p++ {
		m.pages[p] += m.pages[p-1]
	}
}

// forEachProv yields the (first member, source feature) residue of every
// recorded set, whether the members live in memory or in spill shards.
func (b *Builder) forEachProv(f func(first asnum.ASN, src Feature)) {
	if b.spill != nil {
		for _, p := range b.spill.prov {
			f(p.first, p.src)
		}
		return
	}
	for _, s := range b.sets {
		f(s.ASNs[0], s.Source)
	}
}

// Universe returns the declared universe size.
func (b *Builder) Universe() int { return len(b.universe) }
