package cluster

import (
	"math/rand"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// naiveMerger is the quadratic set-merging strategy union-find replaces:
// maintain explicit member sets and, on every union, copy the smaller
// set into the larger and rewrite its members' index entries.
type naiveMerger struct {
	setOf map[asnum.ASN]int
	sets  map[int]map[asnum.ASN]bool
	next  int
}

func newNaiveMerger() *naiveMerger {
	return &naiveMerger{setOf: map[asnum.ASN]int{}, sets: map[int]map[asnum.ASN]bool{}}
}

func (n *naiveMerger) add(a asnum.ASN) int {
	if id, ok := n.setOf[a]; ok {
		return id
	}
	id := n.next
	n.next++
	n.setOf[a] = id
	n.sets[id] = map[asnum.ASN]bool{a: true}
	return id
}

func (n *naiveMerger) union(a, b asnum.ASN) {
	ia, ib := n.add(a), n.add(b)
	if ia == ib {
		return
	}
	if len(n.sets[ia]) < len(n.sets[ib]) {
		ia, ib = ib, ia
	}
	for m := range n.sets[ib] {
		n.sets[ia][m] = true
		n.setOf[m] = ia
	}
	delete(n.sets, ib)
}

func (n *naiveMerger) same(a, b asnum.ASN) bool { return n.setOf[a] == n.setOf[b] }

// TestNaiveAgreesWithUnionFind cross-validates the two implementations
// on random edge sets.
func TestNaiveAgreesWithUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		uf := NewUnionFind()
		nv := newNaiveMerger()
		for i := 0; i < 300; i++ {
			a := asnum.ASN(rng.Intn(200))
			b := asnum.ASN(rng.Intn(200))
			uf.Union(a, b)
			nv.union(a, b)
		}
		for i := 0; i < 200; i++ {
			a := asnum.ASN(rng.Intn(200))
			b := asnum.ASN(rng.Intn(200))
			if uf.Contains(a) && uf.Contains(b) {
				if uf.Same(a, b) != nv.same(a, b) {
					t.Fatalf("trial %d: Same(%v,%v) disagrees", trial, a, b)
				}
			}
		}
		if uf.Sets() != len(nv.sets) {
			t.Fatalf("trial %d: set counts disagree: %d vs %d", trial, uf.Sets(), len(nv.sets))
		}
	}
}

// The ablation bench promised in DESIGN.md: union-find vs the naive
// copy-based merger on a corpus-shaped workload (many overlapping
// sibling sets over ~30k elements).
func benchEdges(n int) [][2]asnum.ASN {
	rng := rand.New(rand.NewSource(7))
	edges := make([][2]asnum.ASN, n)
	for i := range edges {
		// Heavy-tailed: most edges inside small neighbourhoods, a few
		// long-range merges — like org keys plus web inference.
		a := asnum.ASN(rng.Intn(30000))
		b := a + asnum.ASN(1+rng.Intn(4))
		if rng.Intn(20) == 0 {
			b = asnum.ASN(rng.Intn(30000))
		}
		edges[i] = [2]asnum.ASN{a, b}
	}
	return edges
}

func BenchmarkUnionFindVsNaive_UnionFind(b *testing.B) {
	edges := benchEdges(30000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uf := NewUnionFind()
		for _, e := range edges {
			uf.Union(e[0], e[1])
		}
	}
}

func BenchmarkUnionFindVsNaive_Naive(b *testing.B) {
	edges := benchEdges(30000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nv := newNaiveMerger()
		for _, e := range edges {
			nv.union(e[0], e[1])
		}
	}
}
