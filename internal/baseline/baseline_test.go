package baseline

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/whois"
)

func fixtureWHOIS() *whois.Snapshot {
	w := whois.NewSnapshot("20240701")
	w.AddOrg(whois.Org{ID: "LVLT-ARIN", Name: "Level 3 Parent, LLC", Country: "US", Source: "ARIN"})
	w.AddOrg(whois.Org{ID: "CL-ARIN", Name: "CenturyLink Communications", Country: "US", Source: "ARIN"})
	w.AddOrg(whois.Org{ID: "SOLO-RIPE", Name: "Solo Networks", Country: "DE", Source: "RIPE"})
	w.AddAS(whois.ASRecord{ASN: 3356, OrgID: "LVLT-ARIN", Name: "LEVEL3"})
	w.AddAS(whois.ASRecord{ASN: 3549, OrgID: "LVLT-ARIN", Name: "LVLT-3549"})
	w.AddAS(whois.ASRecord{ASN: 209, OrgID: "CL-ARIN", Name: "CENTURYLINK"})
	w.AddAS(whois.ASRecord{ASN: 64900, OrgID: "SOLO-RIPE", Name: "SOLO"})
	return w
}

func fixturePDB() *peeringdb.Snapshot {
	p := peeringdb.NewSnapshot("20240724")
	p.AddOrg(peeringdb.Org{ID: 907, Name: "Lumen"})
	// PeeringDB groups Level3 and CenturyLink under one org (Fig. 3).
	p.AddNet(peeringdb.Net{ID: 1, OrgID: 907, ASN: 3356, Name: "Lumen"})
	p.AddNet(peeringdb.Net{ID: 2, OrgID: 907, ASN: 209, Name: "CenturyLink",
		Notes: "Call us at 555-2024. Established 1968."})
	return p
}

func TestAS2Org(t *testing.T) {
	m := AS2Org(fixtureWHOIS())
	if m.NumASNs() != 4 || m.NumOrgs() != 3 {
		t.Fatalf("got %d ASNs / %d orgs", m.NumASNs(), m.NumOrgs())
	}
	// WHOIS alone keeps Level3 and CenturyLink separate (Fig. 3 left).
	if m.ClusterOf(3356) == m.ClusterOf(209) {
		t.Error("AS2Org must keep 3356 and 209 apart")
	}
	if m.ClusterOf(3356) != m.ClusterOf(3549) {
		t.Error("AS2Org must group 3356 and 3549 (same OID_W)")
	}
	if name := m.ClusterOf(3356).Name; name != "Level 3 Parent, LLC" {
		t.Errorf("cluster name = %q", name)
	}
}

func TestAS2OrgPlusMergesViaOIDP(t *testing.T) {
	m := AS2OrgPlus(fixtureWHOIS(), fixturePDB(), Config{})
	// PeeringDB org 907 merges the two WHOIS orgs (Fig. 3 right).
	if m.ClusterOf(3356) != m.ClusterOf(209) {
		t.Error("as2org+ must merge 3356 and 209 via OID_P")
	}
	if m.ClusterOf(3356).Size() != 3 {
		t.Errorf("merged cluster = %v", m.ClusterOf(3356).ASNs)
	}
	// The independent network is untouched.
	if m.ClusterOf(64900).Size() != 1 {
		t.Error("solo network should stay solo")
	}
	if m.NumASNs() != 4 {
		t.Errorf("universe = %d", m.NumASNs())
	}
}

func TestRegexSiblings(t *testing.T) {
	// The naive regex grabs ASNs but also phone fragments and years —
	// the documented as2org+ failure mode.
	got := RegexSiblings("Siblings AS3549 and ASN 701. Call 555-2024, est. 1968.")
	want := map[asnum.ASN]bool{3549: true, 701: true, 555: true, 2024: true, 1968: true}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected %v", a)
		}
	}
	// Reserved ASNs are dropped even by the naive path.
	got = RegexSiblings("AS64512 AS0 AS23456")
	if len(got) != 0 {
		t.Errorf("reserved survived: %v", got)
	}
	if got := RegexSiblings(""); len(got) != 0 {
		t.Errorf("empty text: %v", got)
	}
}

func TestAS2OrgPlusRegexConfig(t *testing.T) {
	w := fixtureWHOIS()
	p := fixturePDB()
	plain := AS2OrgPlus(w, p, Config{})
	noisy := AS2OrgPlus(w, p, Config{UseRegexExtraction: true})
	// The regex path links CenturyLink's record to the fake numbers in
	// its notes (555, 2024, 1968), inflating the cluster.
	if noisy.ClusterOf(209).Size() <= plain.ClusterOf(209).Size() {
		t.Errorf("regex config should inflate: %d vs %d",
			noisy.ClusterOf(209).Size(), plain.ClusterOf(209).Size())
	}
	if noisy.ClusterOf(555) == nil {
		t.Error("false-positive ASN 555 should be present in the noisy mapping")
	}
}
