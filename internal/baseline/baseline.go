// Package baseline reimplements the two comparison systems the paper
// benchmarks Borges against (§5.1, §5.4):
//
//   - AS2Org (Cai et al., IMC'10 / CAIDA): networks grouped purely by
//     their WHOIS organization ID (OID_W).
//   - as2org+ (Arturi et al., PAM'23): AS2Org extended with PeeringDB.
//     The paper evaluates it in a fully automated configuration "that
//     uses only pdb.org_id (OID_P)" with every manual step removed;
//     that configuration is AS2OrgPlus. The original system's
//     regex-based notes/aka extraction — the brittle stage Borges's
//     LLM replaces — is additionally available via Config, including
//     its documented failure mode of matching phone numbers, years,
//     and addresses as ASNs.
package baseline

import (
	"regexp"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/whois"
)

// NamerFromWHOIS builds a cluster namer that uses the WHOIS organization
// name of the cluster's first member.
func NamerFromWHOIS(w *whois.Snapshot) cluster.Namer {
	return func(members []asnum.ASN) string {
		for _, a := range members {
			if org := w.OrgOf(a); org != nil && org.Name != "" {
				return org.Name
			}
		}
		return ""
	}
}

// AS2Org builds the classic WHOIS-only mapping: one organization per
// OID_W. Every allocated network appears (WHOIS is the compulsory
// database for delegations).
func AS2Org(w *whois.Snapshot) *cluster.Mapping {
	b := cluster.NewBuilder()
	b.AddUniverse(w.ASNs()...)
	b.AddAll(w.SiblingSets())
	return b.Build(NamerFromWHOIS(w))
}

// Config selects optional as2org+ stages.
type Config struct {
	// UseRegexExtraction enables the original system's regular-
	// expression sibling extraction over notes and aka. The paper's
	// benchmark configuration leaves this off (§5.1).
	UseRegexExtraction bool
}

// asnRegex is the naive extraction pattern of the original as2org+:
// an optional AS/ASN prefix followed by digits. Run without the manual
// curation the original relied on, it also captures phone numbers,
// years, and street numbers — the false-positive source §2.1 describes.
var asnRegex = regexp.MustCompile(`(?i)\bASN?[ -]?([0-9]{1,10})\b|\b([0-9]{2,10})\b`)

// RegexSiblings extracts ASN candidates from a text field the way
// as2org+ does, with no semantic filtering. Reserved ASNs and
// unparsable values are dropped; everything else is a candidate.
func RegexSiblings(text string) []asnum.ASN {
	var out []asnum.ASN
	for _, m := range asnRegex.FindAllStringSubmatch(text, -1) {
		digits := m[1]
		if digits == "" {
			digits = m[2]
		}
		a, err := asnum.Parse(digits)
		if err != nil || a.IsReserved() || a == 0 {
			continue
		}
		out = append(out, a)
	}
	return asnum.Dedup(out)
}

// AS2OrgPlus builds the as2org+ mapping in the configuration the paper
// benchmarks: WHOIS organization IDs plus PeeringDB organization IDs,
// with optional regex extraction per cfg.
func AS2OrgPlus(w *whois.Snapshot, p *peeringdb.Snapshot, cfg Config) *cluster.Mapping {
	b := cluster.NewBuilder()
	b.AddUniverse(w.ASNs()...)
	b.AddAll(w.SiblingSets())
	b.AddAll(p.SiblingSets())
	if cfg.UseRegexExtraction {
		for _, n := range p.NetsWithText() {
			candidates := append(RegexSiblings(n.Notes), RegexSiblings(n.Aka)...)
			candidates = asnum.Dedup(candidates)
			if len(candidates) == 0 {
				continue
			}
			asns := append([]asnum.ASN{n.ASN}, candidates...)
			b.Add(cluster.SiblingSet{
				ASNs:     asnum.Dedup(asns),
				Source:   cluster.FeatureNotesAka,
				Evidence: n.ASN.String() + " regex notes/aka",
			})
		}
	}
	return b.Build(NamerFromWHOIS(w))
}
