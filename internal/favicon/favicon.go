// Package favicon groups crawled websites by favicon identity. The paper
// hypothesises that networks under the same administration display the
// same brand icon as their website favicon (§4.3.3); this package builds
// the favicon → final-URL → ASN index those inferences run on, and
// reports the corpus statistics of Table 3 (unique favicons, favicons
// shared by more than one final URL, and shared groups whose URLs also
// share a brand label).
package favicon

import (
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// Group is one favicon shared by a set of final URLs.
type Group struct {
	// Hash identifies the icon (hex SHA-256 of its bytes).
	Hash string
	// URLs are the distinct final URLs displaying the icon, sorted.
	URLs []string
	// ASNs are the networks behind those URLs, sorted and deduplicated.
	ASNs []asnum.ASN
	// ASNsByURL maps each member URL to the sorted networks behind it,
	// so downstream filters that drop URLs can drop their ASNs too.
	ASNsByURL map[string][]asnum.ASN
}

// SameBrandLabel reports whether every URL in the group shares one brand
// label (e.g. www.orange.es and www.orange.pl both carry "orange") —
// the paper's "same subdomain" fast path in the Figure 6 decision tree.
func (g *Group) SameBrandLabel() bool {
	if len(g.URLs) == 0 {
		return false
	}
	first := urlmatch.BrandLabelOfURL(g.URLs[0])
	if first == "" {
		return false
	}
	for _, u := range g.URLs[1:] {
		if urlmatch.BrandLabelOfURL(u) != first {
			return false
		}
	}
	return true
}

// Index accumulates (final URL, favicon hash, ASN) observations.
type Index struct {
	byHash map[string]map[string]bool    // hash -> set of URLs
	byURL  map[string]map[asnum.ASN]bool // URL -> set of ASNs
	hashOf map[string]string             // URL -> hash
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byHash: make(map[string]map[string]bool),
		byURL:  make(map[string]map[asnum.ASN]bool),
		hashOf: make(map[string]string),
	}
}

// Add records that finalURL (serving the favicon with the given hash) is
// the destination of asn's website. An empty hash records the URL as
// favicon-less (it still counts toward FinalURLs).
func (x *Index) Add(finalURL, hash string, asn asnum.ASN) {
	if finalURL == "" {
		return
	}
	if x.byURL[finalURL] == nil {
		x.byURL[finalURL] = make(map[asnum.ASN]bool)
	}
	x.byURL[finalURL][asn] = true
	if hash == "" {
		return
	}
	x.hashOf[finalURL] = hash
	if x.byHash[hash] == nil {
		x.byHash[hash] = make(map[string]bool)
	}
	x.byHash[hash][finalURL] = true
}

// UniqueFavicons returns the number of distinct favicon hashes observed.
func (x *Index) UniqueFavicons() int { return len(x.byHash) }

// FinalURLs returns the number of distinct final URLs observed.
func (x *Index) FinalURLs() int { return len(x.byURL) }

// URLsWithoutFavicon returns how many final URLs lack a favicon.
func (x *Index) URLsWithoutFavicon() int { return len(x.byURL) - len(x.hashOf) }

// HashOf returns the favicon hash recorded for a final URL ("" if none).
func (x *Index) HashOf(finalURL string) string { return x.hashOf[finalURL] }

// Groups returns every favicon group, sorted by descending URL count and
// then hash, with fully sorted members.
func (x *Index) Groups() []Group {
	out := make([]Group, 0, len(x.byHash))
	for hash, urls := range x.byHash {
		g := Group{Hash: hash, ASNsByURL: make(map[string][]asnum.ASN, len(urls))}
		for u := range urls {
			g.URLs = append(g.URLs, u)
			var members []asnum.ASN
			for a := range x.byURL[u] {
				members = append(members, a)
			}
			members = asnum.Dedup(members)
			g.ASNsByURL[u] = members
			g.ASNs = append(g.ASNs, members...)
		}
		sort.Strings(g.URLs)
		g.ASNs = asnum.Dedup(g.ASNs)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].URLs) != len(out[j].URLs) {
			return len(out[i].URLs) > len(out[j].URLs)
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// SharedGroups returns only groups whose favicon is displayed by more
// than one final URL — the candidates for sibling inference.
func (x *Index) SharedGroups() []Group {
	var out []Group
	for _, g := range x.Groups() {
		if len(g.URLs) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// Stats summarises the index in the terms of Table 3 / §5.2.
type Stats struct {
	// FinalURLs is the number of distinct final URLs observed.
	FinalURLs int
	// UniqueFavicons is the number of distinct icons downloaded.
	UniqueFavicons int
	// SharedFavicons is the number of icons shared by >1 final URL.
	SharedFavicons int
	// URLsInSharedGroups is the number of distinct URLs participating
	// in shared-favicon groups.
	URLsInSharedGroups int
	// SharedSameBrand is the number of shared favicons whose URLs also
	// share a brand label (the paper's "same subdomain" count, 281).
	SharedSameBrand int
}

// Stats computes summary statistics.
func (x *Index) Stats() Stats {
	s := Stats{FinalURLs: x.FinalURLs(), UniqueFavicons: x.UniqueFavicons()}
	for _, g := range x.SharedGroups() {
		s.SharedFavicons++
		s.URLsInSharedGroups += len(g.URLs)
		if g.SameBrandLabel() {
			s.SharedSameBrand++
		}
	}
	return s
}
