package favicon

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func buildIndex() *Index {
	x := NewIndex()
	// Claro: four country sites, one favicon, differing brand labels.
	x.Add("https://www.clarochile.cl/personas/", "claro-hash", 27995)
	x.Add("https://www.claro.com.do/personas/", "claro-hash", 6400)
	x.Add("https://www.claro.com.pe/personas/", "claro-hash", 12252)
	x.Add("https://www.claropr.com/personas/", "claro-hash", 10396)
	// Orange: two sites, one favicon, same brand label.
	x.Add("https://www.orange.es/", "orange-hash", 12479)
	x.Add("https://www.orange.pl/", "orange-hash", 5617)
	// A unique favicon.
	x.Add("https://www.lumen.com/", "lumen-hash", 3356)
	// Two ASNs landing on the same URL.
	x.Add("https://www.edg.io/", "edgio-hash", 22822)
	x.Add("https://www.edg.io/", "edgio-hash", 15133)
	// A favicon-less URL.
	x.Add("https://plain.test/", "", 65000)
	return x
}

func TestCounts(t *testing.T) {
	x := buildIndex()
	if got := x.UniqueFavicons(); got != 4 {
		t.Errorf("UniqueFavicons = %d, want 4", got)
	}
	if got := x.FinalURLs(); got != 9 {
		t.Errorf("FinalURLs = %d, want 9", got)
	}
	if got := x.URLsWithoutFavicon(); got != 1 {
		t.Errorf("URLsWithoutFavicon = %d, want 1", got)
	}
	if got := x.HashOf("https://www.lumen.com/"); got != "lumen-hash" {
		t.Errorf("HashOf = %q", got)
	}
	if got := x.HashOf("https://plain.test/"); got != "" {
		t.Errorf("HashOf(faviconless) = %q", got)
	}
}

func TestGroupsOrderingAndMembers(t *testing.T) {
	x := buildIndex()
	groups := x.Groups()
	if len(groups) != 4 {
		t.Fatalf("got %d groups", len(groups))
	}
	// Largest group first: claro with 4 URLs.
	if groups[0].Hash != "claro-hash" || len(groups[0].URLs) != 4 {
		t.Errorf("first group = %+v", groups[0])
	}
	if len(groups[0].ASNs) != 4 || groups[0].ASNs[0] != 6400 {
		t.Errorf("claro ASNs = %v", groups[0].ASNs)
	}
	// The edg.io group has one URL but two ASNs.
	var edgio *Group
	for i := range groups {
		if groups[i].Hash == "edgio-hash" {
			edgio = &groups[i]
		}
	}
	if edgio == nil || len(edgio.URLs) != 1 || len(edgio.ASNs) != 2 {
		t.Fatalf("edgio group = %+v", edgio)
	}
}

func TestSharedGroups(t *testing.T) {
	x := buildIndex()
	shared := x.SharedGroups()
	if len(shared) != 2 { // claro and orange; lumen and edgio have 1 URL each
		t.Fatalf("SharedGroups = %d, want 2", len(shared))
	}
	for _, g := range shared {
		if len(g.URLs) < 2 {
			t.Errorf("shared group with %d URLs", len(g.URLs))
		}
	}
}

func TestSameBrandLabel(t *testing.T) {
	x := buildIndex()
	for _, g := range x.SharedGroups() {
		switch g.Hash {
		case "orange-hash":
			if !g.SameBrandLabel() {
				t.Error("orange group should share a brand label")
			}
		case "claro-hash":
			if g.SameBrandLabel() {
				t.Error("claro group labels differ (clarochile vs claropr vs claro)")
			}
		}
	}
	empty := Group{}
	if empty.SameBrandLabel() {
		t.Error("empty group cannot share a label")
	}
	bad := Group{URLs: []string{"http://[::bad", "http://[::bad"}}
	if bad.SameBrandLabel() {
		t.Error("unparsable URLs must not count as shared brand")
	}
}

func TestStats(t *testing.T) {
	x := buildIndex()
	s := x.Stats()
	if s.FinalURLs != 9 || s.UniqueFavicons != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.SharedFavicons != 2 || s.URLsInSharedGroups != 6 {
		t.Errorf("shared stats = %+v", s)
	}
	if s.SharedSameBrand != 1 { // orange only
		t.Errorf("SharedSameBrand = %d, want 1", s.SharedSameBrand)
	}
}

func TestAddEdgeCases(t *testing.T) {
	x := NewIndex()
	x.Add("", "h", 1) // ignored
	if x.FinalURLs() != 0 {
		t.Error("empty URL should be ignored")
	}
	x.Add("https://a.test/", "h", asnum.ASN(1))
	x.Add("https://a.test/", "h", 1) // duplicate
	g := x.Groups()
	if len(g) != 1 || len(g[0].ASNs) != 1 {
		t.Errorf("groups = %+v", g)
	}
}
