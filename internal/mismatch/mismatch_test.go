package mismatch

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/baseline"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/whois"
)

func fixtures() (*whois.Snapshot, *peeringdb.Snapshot) {
	w := whois.NewSnapshot("d")
	w.AddOrg(whois.Org{ID: "LVLT", Name: "Level 3 Parent, LLC"})
	w.AddOrg(whois.Org{ID: "CL", Name: "CenturyLink Communications"})
	w.AddOrg(whois.Org{ID: "ACME", Name: "Acme Fiber Inc"})
	w.AddOrg(whois.Org{ID: "STALE", Name: "Old Brand Telecom"})
	w.AddAS(whois.ASRecord{ASN: 3356, OrgID: "LVLT", Name: "LEVEL3"})
	w.AddAS(whois.ASRecord{ASN: 209, OrgID: "CL", Name: "CENTURYLINK"})
	w.AddAS(whois.ASRecord{ASN: 100, OrgID: "ACME", Name: "ACME"})
	w.AddAS(whois.ASRecord{ASN: 200, OrgID: "STALE", Name: "OLDBRAND"})

	p := peeringdb.NewSnapshot("d")
	// One PDB org spans the two Lumen WHOIS orgs (the Fig. 3 case).
	p.AddOrg(peeringdb.Org{ID: 1, Name: "Lumen"})
	p.AddNet(peeringdb.Net{ID: 1, OrgID: 1, ASN: 3356})
	p.AddNet(peeringdb.Net{ID: 2, OrgID: 1, ASN: 209})
	// Matching names: no flag.
	p.AddOrg(peeringdb.Org{ID: 2, Name: "Acme Fiber"})
	p.AddNet(peeringdb.Net{ID: 3, OrgID: 2, ASN: 100})
	// Diverged names: flagged.
	p.AddOrg(peeringdb.Org{ID: 3, Name: "Shiny New Networks"})
	p.AddNet(peeringdb.Net{ID: 4, OrgID: 3, ASN: 200})
	return w, p
}

func TestKeywords(t *testing.T) {
	got := Keywords("Level 3 Parent, LLC")
	if len(got) != 1 || got[0] != "level" {
		t.Errorf("Keywords = %v", got)
	}
	if got := Keywords("The Communications Company Inc"); len(got) != 0 {
		t.Errorf("stopword-only name: %v", got)
	}
	got = Keywords("Acme Fiber Inc")
	if len(got) != 2 || got[0] != "acme" || got[1] != "fiber" {
		t.Errorf("Keywords = %v", got)
	}
}

func TestNamesAgree(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Acme Fiber Inc", "Acme Fiber", true},
		{"Claro", "ClaroChile SA", true}, // prefix match
		{"Old Brand Telecom", "Shiny New Networks", false},
		{"Lumen", "Level 3 Parent", false},
		{"", "Acme", false},
		{"Communications LLC", "Acme", false}, // stopword-only left side
	}
	for _, c := range cases {
		if got := NamesAgree(c.a, c.b); got != c.want {
			t.Errorf("NamesAgree(%q, %q) = %v", c.a, c.b, got)
		}
	}
}

func TestFlags(t *testing.T) {
	w, p := fixtures()
	flags := Flags(w, p)
	var splits, diverged []Candidate
	for _, c := range flags {
		switch c.Kind {
		case KindSplit:
			splits = append(splits, c)
		case KindDiverged:
			diverged = append(diverged, c)
		}
	}
	if len(splits) != 1 {
		t.Fatalf("splits = %+v", splits)
	}
	if len(splits[0].WHOISOrgs) != 2 || splits[0].PDBOrg != 1 {
		t.Errorf("split = %+v", splits[0])
	}
	// Diverged: AS200 (Old Brand vs Shiny New) and the Lumen pair
	// (Level 3 / CenturyLink vs Lumen) — registry names lag rebrands.
	found200 := false
	for _, c := range diverged {
		if len(c.ASNs) == 1 && c.ASNs[0] == 200 {
			found200 = true
		}
	}
	if !found200 {
		t.Errorf("AS200 not flagged: %+v", diverged)
	}
	if splits[0].Kind.String() != "split" || KindDiverged.String() != "diverged" {
		t.Error("Kind.String broken")
	}
}

func TestResolvedBy(t *testing.T) {
	w, p := fixtures()
	flags := Flags(w, p)

	// AS2Org alone resolves nothing: the split stays split.
	resolved, total := ResolvedBy(flags, baseline.AS2Org(w))
	if total != 1 || resolved != 0 {
		t.Errorf("AS2Org: %d/%d", resolved, total)
	}
	// as2org+ (OID_P joined) resolves the split.
	resolved, total = ResolvedBy(flags, baseline.AS2OrgPlus(w, p, baseline.Config{}))
	if total != 1 || resolved != 1 {
		t.Errorf("as2org+: %d/%d", resolved, total)
	}
	// Unmapped networks don't count as resolved.
	empty := cluster.NewBuilder().Build(nil)
	resolved, _ = ResolvedBy(flags, empty)
	if resolved != 0 {
		t.Errorf("empty mapping resolved %d", resolved)
	}

}
