// Package mismatch flags discrepancies between the WHOIS (CAIDA AS2Org)
// and PeeringDB views of a network's organization — the approach of
// Chen et al. (PAM'23) the paper's related work describes: mismatches
// are candidates for reclassification, refined with keyword matching
// before (in the original) semi-manual inspection.
//
// Two candidate kinds are produced:
//
//   - KindSplit: networks sharing one PeeringDB organization while
//     WHOIS assigns them to different organizations — registry
//     fragmentation of one operator (the Fig. 3 Lumen case).
//   - KindDiverged: a network whose WHOIS and PeeringDB organization
//     names share no significant keywords — a stale or transferred
//     record worth re-inspecting.
package mismatch

import (
	"sort"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/whois"
)

// Kind classifies a candidate.
type Kind uint8

// Candidate kinds.
const (
	// KindSplit marks networks one PeeringDB org spans across several
	// WHOIS orgs.
	KindSplit Kind = iota
	// KindDiverged marks a network whose two organization names do not
	// agree on any significant keyword.
	KindDiverged
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindSplit {
		return "split"
	}
	return "diverged"
}

// Candidate is one flagged discrepancy.
type Candidate struct {
	Kind Kind
	// ASNs are the networks involved (one for KindDiverged, the whole
	// PeeringDB organization for KindSplit).
	ASNs []asnum.ASN
	// WHOISOrgs are the distinct OID_W identifiers involved.
	WHOISOrgs []string
	// PDBOrg is the PeeringDB organization ID.
	PDBOrg int
	// Note is a short human-readable explanation.
	Note string
}

// stopwords are corporate boilerplate tokens ignored by the keyword
// matcher.
var stopwords = map[string]bool{
	"llc": true, "inc": true, "ltd": true, "sa": true, "srl": true,
	"gmbh": true, "ag": true, "bv": true, "plc": true, "co": true,
	"corp": true, "corporation": true, "company": true, "companies": true,
	"communications": true, "communication": true, "telecom": true,
	"telecommunications": true, "network": true, "networks": true,
	"internet": true, "services": true, "service": true, "group": true,
	"holding": true, "holdings": true, "de": true, "do": true, "da": true,
	"the": true, "of": true, "and": true, "as": true, "parent": true,
}

// Keywords tokenizes an organization name into its significant lowercase
// keywords (boilerplate and single-character tokens removed), sorted.
func Keywords(name string) []string {
	lower := strings.ToLower(name)
	fields := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	seen := map[string]bool{}
	var out []string
	for _, f := range fields {
		if len(f) < 2 || stopwords[f] || seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// NamesAgree reports whether two organization names share at least one
// significant keyword (or a keyword of one prefixes a keyword of the
// other, catching "Claro" vs "ClaroChile").
func NamesAgree(a, b string) bool {
	ka, kb := Keywords(a), Keywords(b)
	if len(ka) == 0 || len(kb) == 0 {
		return false
	}
	for _, x := range ka {
		for _, y := range kb {
			if x == y || strings.HasPrefix(y, x) || strings.HasPrefix(x, y) {
				return true
			}
		}
	}
	return false
}

// Flags computes every candidate for the two snapshots, splits first
// (ordered by PeeringDB org ID), then diverged names (ordered by ASN).
func Flags(w *whois.Snapshot, p *peeringdb.Snapshot) []Candidate {
	var out []Candidate

	for _, oid := range p.OrgIDs() {
		members := p.Members(oid)
		if len(members) < 2 {
			continue
		}
		seen := map[string]bool{}
		var whoisOrgs []string
		var covered []asnum.ASN
		for _, a := range members {
			rec := w.AS(a)
			if rec == nil {
				continue
			}
			covered = append(covered, a)
			if !seen[rec.OrgID] {
				seen[rec.OrgID] = true
				whoisOrgs = append(whoisOrgs, rec.OrgID)
			}
		}
		if len(whoisOrgs) >= 2 {
			sort.Strings(whoisOrgs)
			out = append(out, Candidate{
				Kind: KindSplit, ASNs: covered, WHOISOrgs: whoisOrgs, PDBOrg: oid,
				Note: "one PeeringDB organization spans " + itoa(len(whoisOrgs)) + " WHOIS organizations",
			})
		}
	}

	for _, n := range p.Nets() {
		rec := w.AS(n.ASN)
		if rec == nil {
			continue
		}
		worg := w.Org(rec.OrgID)
		porg := p.Org(n.OrgID)
		if worg == nil || porg == nil || worg.Name == "" || porg.Name == "" {
			continue
		}
		if !NamesAgree(worg.Name, porg.Name) {
			out = append(out, Candidate{
				Kind: KindDiverged, ASNs: []asnum.ASN{n.ASN},
				WHOISOrgs: []string{rec.OrgID}, PDBOrg: n.OrgID,
				Note: "WHOIS name " + quoted(worg.Name) + " shares no keyword with PeeringDB name " + quoted(porg.Name),
			})
		}
	}
	return out
}

// ResolvedBy counts how many split candidates a consolidated mapping
// resolves (all of the candidate's networks end up in one organization)
// — measuring how far a method closes the registry gap the flags expose.
func ResolvedBy(candidates []Candidate, m *cluster.Mapping) (resolved, total int) {
	for _, c := range candidates {
		if c.Kind != KindSplit || len(c.ASNs) == 0 {
			continue
		}
		total++
		first := m.ClusterOf(c.ASNs[0])
		if first == nil {
			continue
		}
		all := true
		for _, a := range c.ASNs[1:] {
			if m.ClusterOf(a) != first {
				all = false
				break
			}
		}
		if all {
			resolved++
		}
	}
	return resolved, total
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func quoted(s string) string { return "\"" + s + "\"" }
