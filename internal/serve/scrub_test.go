package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// corruptFile flips one byte in the middle of the file at path — well
// past the unhashed provenance section, so integrity checks must trip.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubQuarantinesExactlyOnce: a corrupt generation is quarantined
// on the first scrub cycle and never re-counted — the .corrupt rename
// removes it from the ring, so later cycles see only intact artifacts.
func TestScrubQuarantinesExactlyOnce(t *testing.T) {
	ring := newTestRing(t, 3)
	now := time.Unix(1700000000, 0).UTC()
	for v := 0; v < 2; v++ {
		if _, err := ring.Record(mustSnapshot(t, variantMapping(v, 128)), now); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(mustSnapshot(t, variantMapping(1, 128)), Options{Generations: ring})
	if err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(ring.Dir(), ring.Generations()[0].File))

	sum := srv.ScrubOnce(context.Background())
	if sum.Quarantined != 1 {
		t.Fatalf("first cycle Quarantined = %d, want 1", sum.Quarantined)
	}
	if sum.ProbeErr != nil {
		t.Fatalf("probe failed on a healthy serving snapshot: %v", sum.ProbeErr)
	}
	sum = srv.ScrubOnce(context.Background())
	if sum.Quarantined != 0 {
		t.Fatalf("second cycle Quarantined = %d, want 0 (exactly-once)", sum.Quarantined)
	}
	_, checked, corrupt, _ := srv.Metrics().ScrubTotals()
	if corrupt != 1 {
		t.Fatalf("scrub corrupt total = %d, want 1", corrupt)
	}
	if checked == 0 {
		t.Fatal("scrub checked total is zero")
	}
}

// TestScrubRepairsSnapshotOut: a corrupt -snapshot-out artifact is
// quarantined and rewritten from the serving snapshot, leaving a
// loadable file for the next cold start.
func TestScrubRepairsSnapshotOut(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.snapbin")
	snap := mustSnapshot(t, variantMapping(1, 128))
	srv, err := NewServer(snap, Options{SnapshotOut: out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshotFile(out, snap); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, out)

	sum := srv.ScrubOnce(context.Background())
	if sum.Quarantined != 1 || sum.Repaired != 1 {
		t.Fatalf("ScrubOnce = %+v, want 1 quarantined and 1 repaired", sum)
	}
	if _, err := os.Stat(out + ".corrupt"); err != nil {
		t.Fatalf("corrupt artifact not moved aside: %v", err)
	}
	reloaded, err := LoadSnapshotFile(out)
	if err != nil {
		t.Fatalf("repaired artifact does not load: %v", err)
	}
	if reloaded.ContentHash() != snap.ContentHash() {
		t.Fatal("repaired artifact does not match the serving snapshot")
	}
	// A missing snapshot-out is not corruption — nothing to count.
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	if sum := srv.ScrubOnce(context.Background()); sum.Quarantined != 0 || sum.Repaired != 0 {
		t.Fatalf("missing file counted as corruption: %+v", sum)
	}
}

// TestScrubProbeFailureAutoRollback: a failed post-scrub health probe
// rolls the server back to the newest verified generation
// automatically, counting the auto trigger and the probe failure.
func TestScrubProbeFailureAutoRollback(t *testing.T) {
	ring := newTestRing(t, 3)
	v1 := mustSnapshot(t, variantMapping(1, 128))
	v2 := mustSnapshot(t, variantMapping(2, 128))
	bad := v2.ContentHash()
	srv, err := NewServer(v1, Options{
		Generations: ring,
		Prepared: func(ctx context.Context) (*Snapshot, error) {
			return v2, nil
		},
		// The probe models an external consistency check discovering
		// that v2, although it passed its promotion canary, is wrong.
		HealthProbe: func(s *Snapshot) error {
			if s.ContentHash() == bad {
				return errors.New("probe: serving snapshot flagged by consistency check")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Record(v1, time.Unix(1700000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if srv.Snapshot().ContentHash() != bad {
		t.Fatal("reload did not promote v2")
	}

	sum := srv.ScrubOnce(context.Background())
	if sum.ProbeErr == nil {
		t.Fatal("probe should have failed on v2")
	}
	if !sum.RolledBack || sum.RollbackErr != nil {
		t.Fatalf("auto rollback did not happen: %+v", sum)
	}
	if got := srv.Snapshot().ContentHash(); got != v1.ContentHash() {
		t.Fatalf("serving %s after auto rollback, want v1 %s", got, v1.ContentHash())
	}
	if n := srv.Metrics().Rollbacks("auto"); n != 1 {
		t.Fatalf(`Rollbacks("auto") = %d, want 1`, n)
	}
	if n := srv.Metrics().ProbeFailures(); n != 1 {
		t.Fatalf("ProbeFailures = %d, want 1", n)
	}
	// The next cycle probes v1, which is healthy: no further rollback.
	sum = srv.ScrubOnce(context.Background())
	if sum.ProbeErr != nil || sum.RolledBack {
		t.Fatalf("post-rollback cycle not clean: %+v", sum)
	}
}

// TestScrubProbeFailureWithoutRing: a failed probe with no ring has
// nowhere to roll back to; the summary says so instead of panicking or
// silently passing.
func TestScrubProbeFailureWithoutRing(t *testing.T) {
	srv, err := NewServer(mustSnapshot(t, testMapping(t)), Options{
		HealthProbe: func(*Snapshot) error { return errors.New("probe: always failing") },
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := srv.ScrubOnce(context.Background())
	if sum.ProbeErr == nil || !errors.Is(sum.RollbackErr, ErrNoVerifiedGeneration) {
		t.Fatalf("summary = %+v, want probe failure and ErrNoVerifiedGeneration", sum)
	}
	if sum.RolledBack {
		t.Fatal("claimed a rollback with no ring configured")
	}
}

// TestSnapshotPersistErrorKeepsServing: a -snapshot-out persist that
// fails after a successful swap is logged and counted but never fails
// the reload — serving the fresh snapshot matters more than mirroring
// it to disk. Uses the deterministic fault filesystem to force fsync
// failure on exactly the snapshot-out artifact.
func TestSnapshotPersistErrorKeepsServing(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFS(vfs.OS, dir, faultinject.FSConfig{
		Seed:  42,
		Force: map[string]faultinject.FSKind{"out.snapbin": faultinject.FSKindSyncError},
	})
	v1 := mustSnapshot(t, variantMapping(1, 128))
	v2 := mustSnapshot(t, variantMapping(2, 128))
	srv, err := NewServer(v1, Options{
		FS:          ffs,
		SnapshotOut: filepath.Join(dir, "out.snapbin"),
		Prepared: func(ctx context.Context) (*Snapshot, error) {
			return v2, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload failed because persistence failed: %d %s", rec.Code, rec.Body.String())
	}
	if srv.Snapshot().ContentHash() != v2.ContentHash() {
		t.Fatal("swap did not promote v2")
	}
	if n := srv.Metrics().PersistErrors(); n != 1 {
		t.Fatalf("PersistErrors = %d, want 1", n)
	}
	if n := ffs.Stats().Injected; n == 0 {
		t.Fatal("fault filesystem injected nothing — the test exercised the wrong path")
	}
	// Serving still works on the promoted snapshot.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats after failed persist: %d", rec.Code)
	}
}
