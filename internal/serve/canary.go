package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// ErrCanaryRejected marks a candidate snapshot that failed its
// pre-promotion canary: the swap was refused and the previous snapshot
// kept serving. Reload handlers map it to 422 — the artifact decoded,
// but its content failed live invariants, so retrying the same bytes
// is pointless.
var ErrCanaryRejected = errors.New("serve: canary rejected candidate snapshot")

// CanaryConfig tunes the pre-promotion canary that gates every
// snapshot swap (full reload, delta patch, fleet replica sync). The
// zero value is the default-on configuration: structural invariants
// over a deterministic 64-ASN sample, no θ gate.
type CanaryConfig struct {
	// Disable turns the canary off entirely (swaps promote unchecked).
	Disable bool
	// Samples is how many ASNs the canary replays against the candidate
	// (default 64, clamped to the index size). The sample positions are
	// a pure function of Seed and the index size, so a rejection
	// reproduces bit-for-bit.
	Samples int
	// Searches is how many sampled clusters also get an end-to-end
	// Search replay (default 8). Kept smaller than Samples because a
	// search costs a posting-list merge, not a binary search.
	Searches int
	// ThetaTolerance, when > 0, rejects a candidate whose θ differs
	// from the serving snapshot's by more than this absolute amount — a
	// guard against swapping in a structurally valid but statistically
	// absurd mapping. 0 disables the θ gate (reloads that legitimately
	// change the corpus swing θ freely).
	ThetaTolerance float64
	// Seed varies the sample positions (default 1).
	Seed int64
}

func (c CanaryConfig) samples() int {
	if c.Samples <= 0 {
		return 64
	}
	return c.Samples
}

func (c CanaryConfig) searches() int {
	if c.Searches <= 0 {
		return 8
	}
	return c.Searches
}

func (c CanaryConfig) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return uint64(c.Seed)
}

// canaryCheck replays a deterministic sample of lookups and searches
// against the candidate snapshot before it is promoted. It proves,
// for every sampled ASN: the pre-rendered /v1/as body assembles into
// valid JSON, the index resolves the ASN to a cluster that actually
// contains it, the cluster's pre-rendered /v1/org body is valid JSON,
// and every token of the cluster's name resolves back to the cluster
// through the search index. prev may be nil (no θ comparison). All
// failures wrap ErrCanaryRejected.
//
// The checks deliberately cross section boundaries — index ↔
// membership ↔ bodies ↔ token postings — because single-section
// damage that survives the content hash (a poisoned artifact re-signed
// by an attacker, or a bug in a delta patch) is exactly what a hash
// check cannot see.
func canaryCheck(next, prev *Snapshot, cfg CanaryConfig) error {
	if cfg.Disable {
		return nil
	}
	if next == nil {
		return fmt.Errorf("%w: nil snapshot", ErrCanaryRejected)
	}
	st := next.Stats()
	if st.Orgs == 0 || st.ASNs == 0 {
		return fmt.Errorf("%w: empty index (%d orgs, %d networks)", ErrCanaryRejected, st.Orgs, st.ASNs)
	}
	if prev != nil && cfg.ThetaTolerance > 0 {
		if d := st.Theta - prev.Stats().Theta; d > cfg.ThetaTolerance || -d > cfg.ThetaTolerance {
			return fmt.Errorf("%w: theta %.6f drifted %+.6f from serving %.6f (tolerance %.6f)",
				ErrCanaryRejected, st.Theta, d, prev.Stats().Theta, cfg.ThetaTolerance)
		}
	}

	keys, _ := next.mapping.RawIndex()
	n := len(keys)
	samples := cfg.samples()
	if samples > n {
		samples = n
	}
	searches := cfg.searches()
	seed := cfg.seed()
	var scratch []byte
	for i := 0; i < samples; i++ {
		pos := int(whiten64(seed+uint64(i)) % uint64(n))
		a := keys[pos]
		var ok bool
		scratch, ok = next.AppendASBody(scratch[:0], a)
		if !ok {
			return fmt.Errorf("%w: indexed AS%d has no rendered body", ErrCanaryRejected, a)
		}
		if !json.Valid(scratch) {
			return fmt.Errorf("%w: /v1/as body for AS%d is not valid JSON", ErrCanaryRejected, a)
		}
		c := next.Lookup(a)
		if c == nil {
			return fmt.Errorf("%w: indexed AS%d resolves to no cluster", ErrCanaryRejected, a)
		}
		if !containsASN(c.ASNs, a) {
			return fmt.Errorf("%w: AS%d maps to org %d which does not contain it", ErrCanaryRejected, a, c.ID)
		}
		body := next.OrgBody(c.ID)
		if body == nil {
			return fmt.Errorf("%w: org %d has no rendered body", ErrCanaryRejected, c.ID)
		}
		if !json.Valid(body) {
			return fmt.Errorf("%w: /v1/org body for org %d is not valid JSON", ErrCanaryRejected, c.ID)
		}
		if err := canaryCheckTokens(next, c.ID); err != nil {
			return err
		}
		if i < searches {
			if err := canaryCheckSearch(next, c.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// canaryCheckTokens proves every token of cluster id's name resolves
// back to id through the token index — the postings a /v1/search for
// that organization's name would merge.
func canaryCheckTokens(s *Snapshot, id int) error {
	if id < 0 || id >= len(s.lowerNames) {
		return fmt.Errorf("%w: cluster %d outside name table", ErrCanaryRejected, id)
	}
	for _, tok := range tokenize(s.lowerNames[id]) {
		ids, ok := s.tokens[tok]
		if !ok {
			return fmt.Errorf("%w: org %d name token %q missing from search index", ErrCanaryRejected, id, tok)
		}
		at := sort.SearchInts(ids, id)
		if at >= len(ids) || ids[at] != id {
			return fmt.Errorf("%w: org %d missing from postings of its own name token %q", ErrCanaryRejected, id, tok)
		}
	}
	return nil
}

// canaryCheckSearch runs one end-to-end Search for the cluster's first
// name token and requires a non-empty result — the full query path
// (scratch pool, posting merge, materialization), bounded so the
// canary stays cheap on large snapshots.
func canaryCheckSearch(s *Snapshot, id int) error {
	toks := tokenize(s.lowerNames[id])
	if len(toks) == 0 {
		return nil // unnamed cluster; nothing searchable
	}
	if hits := s.Search(toks[0], 8); len(hits) == 0 {
		return fmt.Errorf("%w: search for %q (org %d name token) returned nothing", ErrCanaryRejected, toks[0], id)
	}
	return nil
}

// containsASN binary-searches a sorted membership slice.
func containsASN(asns []asnum.ASN, a asnum.ASN) bool {
	lo, hi := 0, len(asns)
	for lo < hi {
		mid := (lo + hi) / 2
		if asns[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(asns) && asns[lo] == a
}

// whiten64 is one splitmix64 step — the same mixing the faultinject
// harness uses, giving the canary deterministic, well-spread sample
// positions from sequential seeds.
func whiten64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
