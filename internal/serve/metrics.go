package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies each endpoint
// retains for quantile estimation. A bounded ring keeps the cost of a
// busy endpoint constant regardless of traffic volume.
const latencyWindow = 1024

// endpointStats accumulates one endpoint's counters and a sliding
// window of latencies.
type endpointStats struct {
	requests  int64
	errors    int64 // responses with status >= 500, excluding sheds
	sheds     int64 // admission refusals (429/503 with Retry-After)
	latencies [latencyWindow]time.Duration
	n         int // valid entries in latencies
	next      int // ring cursor
}

// Metrics tracks the serving layer's operational counters: per-endpoint
// request totals and latency quantiles, plus reload outcomes. Snapshot
// identity metrics (age, θ, sizes) are read from the live snapshot at
// render time so they are always current.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	reloadOK  int64
	reloadErr int64
	// lastLoad records the duration and mode of the most recent
	// successful snapshot load (full rebuild, binary decode, or delta
	// patch) for the borgesd_snapshot_load_seconds gauge.
	lastLoad     time.Duration
	lastLoadMode string
	// Bulk streaming counters: requests completed, input lines
	// processed, lines answered with a per-line error object, and the
	// summed streaming time — lines/sum(duration) is the lifetime
	// sustained throughput gauge.
	bulkRequests int64
	bulkLines    int64
	bulkErrLines int64
	bulkDuration time.Duration
	// Storage-integrity counters: canary-refused swaps, rollbacks by
	// trigger, failed best-effort snapshot persists, and the background
	// scrubber's accounting.
	canaryRejects int64
	rollbacks     map[string]int64
	persistErrors int64
	scrubCycles   int64
	scrubChecked  int64
	scrubCorrupt  int64
	scrubRepaired int64
	probeFailures int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints: make(map[string]*endpointStats),
		rollbacks: make(map[string]int64),
	}
}

// ObserveCanaryReject records one swap refused by the pre-promotion
// canary.
func (m *Metrics) ObserveCanaryReject() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.canaryRejects++
}

// CanaryRejects returns the canary refusal count.
func (m *Metrics) CanaryRejects() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.canaryRejects
}

// ObserveRollback records one completed rollback, labeled by trigger
// ("admin" or "auto").
func (m *Metrics) ObserveRollback(trigger string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rollbacks[trigger]++
}

// Rollbacks returns the rollback count for a trigger.
func (m *Metrics) Rollbacks(trigger string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rollbacks[trigger]
}

// ObservePersistError records one failed best-effort snapshot persist
// (generation ring or -snapshot-out) after a successful swap.
func (m *Metrics) ObservePersistError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistErrors++
}

// PersistErrors returns the failed-persist count.
func (m *Metrics) PersistErrors() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.persistErrors
}

// ObserveScrub records one completed scrub cycle.
func (m *Metrics) ObserveScrub(checked, quarantined, repaired int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scrubCycles++
	m.scrubChecked += int64(checked)
	m.scrubCorrupt += int64(quarantined)
	m.scrubRepaired += int64(repaired)
}

// ScrubTotals returns the cumulative scrub counters.
func (m *Metrics) ScrubTotals() (cycles, checked, quarantined, repaired int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scrubCycles, m.scrubChecked, m.scrubCorrupt, m.scrubRepaired
}

// ObserveProbeFailure records one failed post-scrub health probe.
func (m *Metrics) ObserveProbeFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.probeFailures++
}

// ProbeFailures returns the failed-probe count.
func (m *Metrics) ProbeFailures() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.probeFailures
}

// Observe records one served request.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.stats(endpoint)
	es.requests++
	if status >= 500 {
		es.errors++
	}
	es.latencies[es.next] = d
	es.next = (es.next + 1) % latencyWindow
	if es.n < latencyWindow {
		es.n++
	}
}

// ObserveShed records one admission refusal. Sheds count as requests
// but not as errors — a deliberate 429/503 refusal is the protection
// working, not the service failing — and their (near-zero) latencies
// are kept out of the quantile window so shedding cannot flatter the
// latency a served request actually sees.
func (m *Metrics) ObserveShed(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.stats(endpoint)
	es.requests++
	es.sheds++
}

// Sheds returns an endpoint's admission-refusal count.
func (m *Metrics) Sheds(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.endpoints[endpoint]
	if es == nil {
		return 0
	}
	return es.sheds
}

// stats returns (allocating if needed) an endpoint's entry. Callers
// hold m.mu.
func (m *Metrics) stats(endpoint string) *endpointStats {
	es := m.endpoints[endpoint]
	if es == nil {
		es = &endpointStats{}
		m.endpoints[endpoint] = es
	}
	return es
}

// ObserveBulk records one completed /v1/bulk stream: how many input
// lines it carried, how many produced per-line error objects, and how
// long the stream ran.
func (m *Metrics) ObserveBulk(lines, errLines int64, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bulkRequests++
	m.bulkLines += lines
	m.bulkErrLines += errLines
	m.bulkDuration += d
}

// BulkTotals returns the cumulative bulk counters (for tests).
func (m *Metrics) BulkTotals() (requests, lines, errLines int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bulkRequests, m.bulkLines, m.bulkErrLines
}

// ObserveReload records a reload outcome.
func (m *Metrics) ObserveReload(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.reloadOK++
	} else {
		m.reloadErr++
	}
}

// ObserveLoad records how long a successful snapshot load took and
// which mode produced it (LoadModeFull, LoadModeBinary, LoadModeDelta).
func (m *Metrics) ObserveLoad(mode string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastLoad = d
	m.lastLoadMode = mode
}

// LastLoad returns the most recent snapshot load's mode and duration
// ("" before any load is observed).
func (m *Metrics) LastLoad() (mode string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLoadMode, m.lastLoad
}

// Reloads returns the success and failure counts.
func (m *Metrics) Reloads() (ok, failed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reloadOK, m.reloadErr
}

// Requests returns an endpoint's request count.
func (m *Metrics) Requests(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.endpoints[endpoint]
	if es == nil {
		return 0
	}
	return es.requests
}

// quantiles reported on /metrics.
var quantileLevels = []float64{0.5, 0.9, 0.99}

// quantile returns the q-th latency quantile of a sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// WriteTo renders the registry in the Prometheus text exposition
// format. The snapshot gauges come from snap (may be nil before the
// first load) evaluated at now.
func (m *Metrics) WriteTo(w io.Writer, snap *Snapshot, now time.Time) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP borgesd_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE borgesd_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "borgesd_requests_total{endpoint=%q} %d\n", name, m.endpoints[name].requests)
	}
	fmt.Fprintf(w, "# HELP borgesd_errors_total Responses with status >= 500, by endpoint (admission sheds excluded).\n")
	fmt.Fprintf(w, "# TYPE borgesd_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "borgesd_errors_total{endpoint=%q} %d\n", name, m.endpoints[name].errors)
	}
	fmt.Fprintf(w, "# HELP borgesd_sheds_total Requests refused by admission control (429/503 with Retry-After), by endpoint.\n")
	fmt.Fprintf(w, "# TYPE borgesd_sheds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "borgesd_sheds_total{endpoint=%q} %d\n", name, m.endpoints[name].sheds)
	}
	fmt.Fprintf(w, "# HELP borgesd_request_latency_seconds Request latency quantiles over a sliding window.\n")
	fmt.Fprintf(w, "# TYPE borgesd_request_latency_seconds summary\n")
	for _, name := range names {
		es := m.endpoints[name]
		sample := make([]time.Duration, es.n)
		copy(sample, es.latencies[:es.n])
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		for _, q := range quantileLevels {
			fmt.Fprintf(w, "borgesd_request_latency_seconds{endpoint=%q,quantile=\"%g\"} %.9f\n",
				name, q, quantile(sample, q).Seconds())
		}
	}
	fmt.Fprintf(w, "# HELP borgesd_bulk_requests_total Completed /v1/bulk streams.\n")
	fmt.Fprintf(w, "# TYPE borgesd_bulk_requests_total counter\n")
	fmt.Fprintf(w, "borgesd_bulk_requests_total %d\n", m.bulkRequests)
	fmt.Fprintf(w, "# HELP borgesd_bulk_lines_total Input lines processed by /v1/bulk.\n")
	fmt.Fprintf(w, "# TYPE borgesd_bulk_lines_total counter\n")
	fmt.Fprintf(w, "borgesd_bulk_lines_total %d\n", m.bulkLines)
	fmt.Fprintf(w, "# HELP borgesd_bulk_error_lines_total Bulk lines answered with a per-line error object (malformed or unmapped).\n")
	fmt.Fprintf(w, "# TYPE borgesd_bulk_error_lines_total counter\n")
	fmt.Fprintf(w, "borgesd_bulk_error_lines_total %d\n", m.bulkErrLines)
	bulkRate := 0.0
	if m.bulkDuration > 0 {
		bulkRate = float64(m.bulkLines) / m.bulkDuration.Seconds()
	}
	fmt.Fprintf(w, "# HELP borgesd_bulk_lines_per_second Lifetime sustained bulk throughput (lines / total streaming time).\n")
	fmt.Fprintf(w, "# TYPE borgesd_bulk_lines_per_second gauge\n")
	fmt.Fprintf(w, "borgesd_bulk_lines_per_second %.3f\n", bulkRate)
	var bulkSheds int64
	if es := m.endpoints["bulk"]; es != nil {
		bulkSheds = es.sheds
	}
	fmt.Fprintf(w, "# HELP borgesd_bulk_sheds_total Bulk requests refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE borgesd_bulk_sheds_total counter\n")
	fmt.Fprintf(w, "borgesd_bulk_sheds_total %d\n", bulkSheds)
	fmt.Fprintf(w, "# HELP borgesd_reloads_total Snapshot reload attempts, by result.\n")
	fmt.Fprintf(w, "# TYPE borgesd_reloads_total counter\n")
	fmt.Fprintf(w, "borgesd_reloads_total{result=\"success\"} %d\n", m.reloadOK)
	fmt.Fprintf(w, "borgesd_reloads_total{result=\"failure\"} %d\n", m.reloadErr)
	if m.lastLoadMode != "" {
		fmt.Fprintf(w, "# HELP borgesd_snapshot_load_seconds Duration of the most recent snapshot load, by mode.\n")
		fmt.Fprintf(w, "# TYPE borgesd_snapshot_load_seconds gauge\n")
		fmt.Fprintf(w, "borgesd_snapshot_load_seconds{mode=%q} %.9f\n", m.lastLoadMode, m.lastLoad.Seconds())
	}
	fmt.Fprintf(w, "# HELP borgesd_canary_rejects_total Snapshot swaps refused by the pre-promotion canary.\n")
	fmt.Fprintf(w, "# TYPE borgesd_canary_rejects_total counter\n")
	fmt.Fprintf(w, "borgesd_canary_rejects_total %d\n", m.canaryRejects)
	fmt.Fprintf(w, "# HELP borgesd_rollbacks_total Completed rollbacks to a previous verified generation, by trigger.\n")
	fmt.Fprintf(w, "# TYPE borgesd_rollbacks_total counter\n")
	for _, trigger := range []string{"admin", "auto"} {
		fmt.Fprintf(w, "borgesd_rollbacks_total{trigger=%q} %d\n", trigger, m.rollbacks[trigger])
	}
	fmt.Fprintf(w, "# HELP borgesd_snapshot_persist_errors_total Failed best-effort snapshot persists (generation ring or -snapshot-out) after a successful swap.\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_persist_errors_total counter\n")
	fmt.Fprintf(w, "borgesd_snapshot_persist_errors_total %d\n", m.persistErrors)
	fmt.Fprintf(w, "# HELP borgesd_scrub_cycles_total Completed background integrity scrub cycles.\n")
	fmt.Fprintf(w, "# TYPE borgesd_scrub_cycles_total counter\n")
	fmt.Fprintf(w, "borgesd_scrub_cycles_total %d\n", m.scrubCycles)
	fmt.Fprintf(w, "# HELP borgesd_scrub_checked_total Artifacts integrity-checked by the scrubber.\n")
	fmt.Fprintf(w, "# TYPE borgesd_scrub_checked_total counter\n")
	fmt.Fprintf(w, "borgesd_scrub_checked_total %d\n", m.scrubChecked)
	fmt.Fprintf(w, "# HELP borgesd_scrub_corrupt_total Corrupt artifacts found and quarantined by the scrubber.\n")
	fmt.Fprintf(w, "# TYPE borgesd_scrub_corrupt_total counter\n")
	fmt.Fprintf(w, "borgesd_scrub_corrupt_total %d\n", m.scrubCorrupt)
	fmt.Fprintf(w, "# HELP borgesd_scrub_repaired_total Corrupt artifacts rewritten from an authoritative copy by the scrubber.\n")
	fmt.Fprintf(w, "# TYPE borgesd_scrub_repaired_total counter\n")
	fmt.Fprintf(w, "borgesd_scrub_repaired_total %d\n", m.scrubRepaired)
	fmt.Fprintf(w, "# HELP borgesd_probe_failures_total Failed post-scrub health probes of the serving snapshot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_probe_failures_total counter\n")
	fmt.Fprintf(w, "borgesd_probe_failures_total %d\n", m.probeFailures)
	m.mu.Unlock()

	if snap == nil {
		return
	}
	st := snap.Stats()
	fmt.Fprintf(w, "# HELP borgesd_snapshot_age_seconds Seconds since the serving snapshot was built.\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_age_seconds gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_age_seconds %.3f\n", now.Sub(snap.LoadedAt()).Seconds())
	fmt.Fprintf(w, "# HELP borgesd_snapshot_orgs Organizations in the serving snapshot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_orgs gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_orgs %d\n", st.Orgs)
	fmt.Fprintf(w, "# HELP borgesd_snapshot_asns Networks covered by the serving snapshot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_asns gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_asns %d\n", st.ASNs)
	fmt.Fprintf(w, "# HELP borgesd_snapshot_theta Normalised Organization Factor of the serving snapshot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_theta gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_theta %.6f\n", st.Theta)
	h := snap.Health()
	degraded := 0
	if h.Status != HealthOK {
		degraded = 1
	}
	fmt.Fprintf(w, "# HELP borgesd_snapshot_degraded Whether the run that produced the serving snapshot quarantined work (1) or completed cleanly (0).\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_degraded gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_degraded %d\n", degraded)
	fmt.Fprintf(w, "# HELP borgesd_snapshot_quarantined Items quarantined by the run that produced the serving snapshot.\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_quarantined gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_quarantined %d\n", h.Quarantined)
	fmt.Fprintf(w, "# HELP borgesd_snapshot_info Serving snapshot identity: content hash and load mode (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE borgesd_snapshot_info gauge\n")
	fmt.Fprintf(w, "borgesd_snapshot_info{hash=%q,mode=%q} 1\n", snap.ContentHash(), snap.LoadMode())
}
