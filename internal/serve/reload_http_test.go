package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/mapdiff"
)

// TestReloadModesHTTP drives the operator surface end to end: a full
// reload from a binary artifact, a delta reload from an edit-script
// file (including its 409 on re-application), the mode/hash fields on
// the reload response and /v1/stats, and the load gauges on /metrics.
func TestReloadModesHTTP(t *testing.T) {
	dir := t.TempDir()
	oldM := variantMapping(1, 40)
	newM := variantMapping(2, 40)

	binPath := filepath.Join(dir, "snapshot.bin")
	oldSnap := mustSnapshot(t, oldM)
	binHash, err := WriteSnapshotFile(binPath, oldSnap)
	if err != nil {
		t.Fatal(err)
	}
	deltaPath := filepath.Join(dir, "delta.jsonl")
	f, err := os.Create(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapdiff.WriteDelta(f, mapdiff.ComputeDelta(oldM, newM)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(oldSnap, Options{
		Prepared:    SnapshotFileSource(binPath),
		DeltaSource: DeltaFileSource(deltaPath),
	})
	if err != nil {
		t.Fatal(err)
	}

	var reloadResp struct {
		Status      string `json:"status"`
		Orgs        int    `json:"orgs"`
		LoadMode    string `json:"load_mode"`
		ContentHash string `json:"content_hash"`
	}
	rec := do(t, srv, "POST", "/admin/reload", &reloadResp)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload = %d body %s", rec.Code, rec.Body)
	}
	if reloadResp.LoadMode != LoadModeBinary || reloadResp.ContentHash != binHash {
		t.Fatalf("reload reported mode %q hash %q, want %q %q",
			reloadResp.LoadMode, reloadResp.ContentHash, LoadModeBinary, binHash)
	}

	var statsResp struct {
		Orgs        int    `json:"orgs"`
		LoadMode    string `json:"load_mode"`
		ContentHash string `json:"content_hash"`
	}
	if rec := do(t, srv, "GET", "/v1/stats", &statsResp); rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	if statsResp.LoadMode != LoadModeBinary || statsResp.ContentHash != binHash {
		t.Fatalf("stats reported mode %q hash %q", statsResp.LoadMode, statsResp.ContentHash)
	}

	rec = do(t, srv, "POST", "/admin/reload?mode=delta", &reloadResp)
	if rec.Code != http.StatusOK {
		t.Fatalf("delta reload = %d body %s", rec.Code, rec.Body)
	}
	if reloadResp.LoadMode != LoadModeDelta {
		t.Fatalf("delta reload reported mode %q", reloadResp.LoadMode)
	}
	wantHash := mustSnapshot(t, newM).ContentHash()
	if reloadResp.ContentHash != wantHash {
		t.Fatalf("delta reload hash %q, want from-scratch %q", reloadResp.ContentHash, wantHash)
	}

	// The same delta no longer applies: its removals name organizations
	// that are gone. The operator gets a conflict, not drift.
	if rec := do(t, srv, "POST", "/admin/reload?mode=delta", nil); rec.Code != http.StatusConflict {
		t.Fatalf("re-applied delta = %d, want %d (body %s)", rec.Code, http.StatusConflict, rec.Body)
	}
	// The serving snapshot is untouched by the failed reload.
	if srv.Snapshot().ContentHash() != wantHash {
		t.Fatal("failed delta reload disturbed the serving snapshot")
	}

	if rec := do(t, srv, "POST", "/admin/reload?mode=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus mode = %d, want 400", rec.Code)
	}

	rec = do(t, srv, "GET", "/metrics", nil)
	body := rec.Body.String()
	for _, want := range []string{
		`borgesd_snapshot_load_seconds{mode="delta"}`,
		`borgesd_snapshot_info{hash="` + wantHash + `",mode="` + LoadModeDelta + `"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestReloadModesUnconfigured: each mode answers 501 when its source
// is absent rather than 500 or a panic.
func TestReloadModesUnconfigured(t *testing.T) {
	srv := newTestServer(t, Options{})
	if rec := do(t, srv, "POST", "/admin/reload", nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("full reload without source = %d, want 501", rec.Code)
	}
	if rec := do(t, srv, "POST", "/admin/reload?mode=delta", nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("delta reload without source = %d, want 501", rec.Code)
	}
}

// TestPreparedSourceValidateThenSwap: a Prepared source that fails
// leaves the old snapshot serving.
func TestPreparedSourceValidateThenSwap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	snap := mustSnapshot(t, testMapping(t))
	if _, err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(snap, Options{Prepared: SnapshotFileSource(path)})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the artifact in place; the reload must fail closed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	before := srv.Snapshot()
	if rec := do(t, srv, "POST", "/admin/reload", nil); rec.Code == http.StatusOK {
		t.Fatal("corrupted artifact reloaded successfully")
	}
	if srv.Snapshot() != before {
		t.Fatal("failed reload swapped the snapshot")
	}
	if c := srv.Snapshot().Lookup(3356); c == nil || c.Name != "Lumen Technologies" {
		t.Fatal("old snapshot no longer serving after failed reload")
	}
}
