package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/admission"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// serveClock is a manually advanced clock injected through
// Options.now, making observed request latencies — and therefore
// every AIMD decision — a pure function of the test script.
type serveClock struct{ ns atomic.Int64 }

func (c *serveClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *serveClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// waitAdmission polls the admission stats until cond holds.
func waitAdmission(t *testing.T, srv *Server, cond func(admission.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(srv.Admission().Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission state never settled; stats = %+v", srv.Admission().Stats())
}

// TestOverloadBurstChaos is the serving-side load-chaos cell: a burst
// 10× over the concurrency limit slams the daemon while admitted
// requests are pinned in-flight, and the test asserts the exact
// overload contract:
//
//   - /healthz and /metrics answer 100% throughout the burst,
//   - point lookups succeed at >= the configured floor
//     (MaxInflight admitted + QueueDepth queued),
//   - every shed response is 503 and carries Retry-After,
//   - after the burst the adaptive limit recovers to within 10% of
//     its pre-burst steady state — shedding is a state, not a scar.
//
// Interleaving is pinned: the gate holds admitted requests so
// saturation is total and observable, the fake clock decides which
// completions count as slow, and the fixed seed makes the request mix
// reproducible. Run under -race in the CI load-smoke job.
func TestOverloadBurstChaos(t *testing.T) {
	const (
		seed        = 42
		universe    = 64
		maxInflight = 4
		queueDepth  = 2
		floor       = maxInflight + queueDepth // point-lookup success floor
		pointBurst  = 10 * maxInflight
		searchBurst = 20
		target      = 50 * time.Millisecond
	)
	rng := rand.New(rand.NewSource(seed))
	clock := &serveClock{}
	snap, err := NewSnapshot(variantMapping(1, universe), "chaos")
	if err != nil {
		t.Fatal(err)
	}

	var holding atomic.Bool
	gate := make(chan struct{})
	srv, err := NewServer(snap, Options{
		now: clock.Now,
		Admission: &admission.Config{
			MaxInflight:     maxInflight,
			QueueDepth:      queueDepth,
			TargetLatency:   target,
			ShedSearchFirst: true,
		},
		testHold: func(endpoint string) {
			if holding.Load() && endpoint == "as" {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 — steady state: sequential point lookups at zero
	// observed latency keep the limit pinned at its ceiling.
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec,
			httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", rng.Intn(universe)+1), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("steady-state lookup %d: status %d", i, rec.Code)
		}
	}
	steady := srv.Admission().Stats().Limit
	if steady != maxInflight {
		t.Fatalf("steady-state limit = %v, want %v", steady, maxInflight)
	}

	// Phase 2 — burst: pointBurst concurrent lookups arrive while the
	// gate pins every admitted one in-flight. Exactly maxInflight are
	// admitted, queueDepth queue, and the rest shed.
	holding.Store(true)
	type outcome struct {
		code       int
		retryAfter string
	}
	results := make(chan outcome, pointBurst)
	var wg sync.WaitGroup
	for i := 0; i < pointBurst; i++ {
		asn := rng.Intn(universe) + 1
		wg.Add(1)
		go func(asn int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec,
				httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", asn), nil))
			results <- outcome{rec.Code, rec.Header().Get("Retry-After")}
		}(asn)
	}
	waitAdmission(t, srv, func(s admission.Stats) bool {
		return s.Inflight == maxInflight &&
			s.QueueDepth == queueDepth &&
			s.ShedPoint == pointBurst-floor
	})

	// Invariant: health and metrics answer 100% while the limiter is
	// slammed shut.
	for i := 0; i < 20; i++ {
		for _, path := range []string{"/healthz", "/metrics"} {
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("%s during burst: status %d", path, rec.Code)
			}
		}
	}
	// Invariant: the expensive scan sheds first — every search during
	// saturation refuses with 503 + Retry-After.
	for i := 0; i < searchBurst; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?name=org", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("search %d during burst: status %d, want 503", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("search shed %d missing Retry-After", i)
		}
	}

	// Let the pinned requests complete as slow (10× target): the AIMD
	// limit takes one multiplicative hit per held/queued completion.
	clock.Advance(10 * target)
	close(gate)
	holding.Store(false)
	wg.Wait()

	okCount, shedCount := 0, 0
	for i := 0; i < pointBurst; i++ {
		r := <-results
		switch r.code {
		case http.StatusOK:
			okCount++
		case http.StatusServiceUnavailable:
			shedCount++
			if r.retryAfter == "" {
				t.Error("point shed missing Retry-After")
			}
		default:
			t.Errorf("point lookup: unexpected status %d", r.code)
		}
	}
	if okCount < floor {
		t.Fatalf("point successes during burst = %d, want >= floor %d", okCount, floor)
	}
	if shedCount != pointBurst-floor {
		t.Fatalf("point sheds = %d, want exactly %d", shedCount, pointBurst-floor)
	}

	depressed := srv.Admission().Stats().Limit
	if depressed >= steady {
		t.Fatalf("limit after burst = %v, want < steady %v (the burst must have bitten)", depressed, steady)
	}

	// Phase 3 — recovery: fast completions grow the limit back. No
	// permanent depression: within 10% of the pre-burst steady state.
	for i := 0; i < 100; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec,
			httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", rng.Intn(universe)+1), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("recovery lookup %d: status %d", i, rec.Code)
		}
	}
	recovered := srv.Admission().Stats().Limit
	if recovered < 0.9*steady {
		t.Fatalf("recovered limit = %v, want >= 90%% of steady %v", recovered, steady)
	}
	// And the limiter re-opened for the class it shed first.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?name=org", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("search after recovery: status %d, want 200", rec.Code)
	}
}

// TestSearchBrownoutUnderPressure pins enough point lookups in-flight
// to cross the brownout threshold and checks that search still
// answers 200 — but capped, cheap, and flagged.
func TestSearchBrownoutUnderPressure(t *testing.T) {
	const universe = 64
	snap, err := NewSnapshot(variantMapping(1, universe), "brownout")
	if err != nil {
		t.Fatal(err)
	}
	var holding atomic.Bool
	gate := make(chan struct{})
	srv, err := NewServer(snap, Options{
		Admission: &admission.Config{
			MaxInflight:     4,
			QueueDepth:      2,
			ShedSearchFirst: true,
			BrownoutLimit:   3,
		},
		testHold: func(endpoint string) {
			if holding.Load() && endpoint == "as" {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Unpressured search: full-fidelity, no brownout flag.
	var full struct {
		Brownout bool `json:"brownout"`
		Matches  []struct {
			Org int `json:"org"`
		} `json:"matches"`
	}
	rec := do(t, srv, "GET", "/v1/search?name=org", &full)
	if rec.Code != http.StatusOK || full.Brownout {
		t.Fatalf("idle search: status %d brownout %v", rec.Code, full.Brownout)
	}
	if len(full.Matches) <= 3 {
		t.Fatalf("idle search returned %d matches; need > 3 for the brownout cap to be observable", len(full.Matches))
	}

	// Pin 3 of 4 slots (the brownout fraction) without saturating.
	holding.Store(true)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(asn int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec,
				httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", asn), nil))
		}(i + 1)
	}
	waitAdmission(t, srv, func(s admission.Stats) bool { return s.Inflight == 3 })

	var browned struct {
		Brownout bool `json:"brownout"`
		Matches  []struct {
			Org int `json:"org"`
		} `json:"matches"`
	}
	rec = do(t, srv, "GET", "/v1/search?name=org", &browned)
	if rec.Code != http.StatusOK {
		t.Fatalf("browned search: status %d", rec.Code)
	}
	if !browned.Brownout {
		t.Fatal("search under pressure did not brown out")
	}
	if len(browned.Matches) == 0 || len(browned.Matches) > 3 {
		t.Fatalf("browned search returned %d matches, want 1..3 (the BrownoutLimit cap)", len(browned.Matches))
	}
	if got := srv.Admission().Stats().Brownouts; got == 0 {
		t.Fatal("brownout not counted")
	}

	close(gate)
	holding.Store(false)
	wg.Wait()
}

// TestRetryAfterOnEvery429And503 sweeps the three refusal paths the
// server can produce — per-client rate limit (429), overload shed
// (503), and a reload that lost its deadline (503) — and asserts each
// carries a positive integral Retry-After header.
func TestRetryAfterOnEvery429And503(t *testing.T) {
	assertRetryAfter := func(t *testing.T, rec *httptest.ResponseRecorder) {
		t.Helper()
		ra := rec.Header().Get("Retry-After")
		if ra == "" {
			t.Fatalf("status %d without Retry-After", rec.Code)
		}
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 || ra != fmt.Sprintf("%d", secs) {
			t.Fatalf("Retry-After = %q, want positive integral seconds", ra)
		}
	}

	t.Run("ratelimit 429", func(t *testing.T) {
		srv := newTestServer(t, Options{
			Admission: &admission.Config{MaxInflight: 8, Rate: 1, Burst: 1},
		})
		if rec := do(t, srv, "GET", "/v1/as/3356", nil); rec.Code != http.StatusOK {
			t.Fatalf("first request: %d", rec.Code)
		}
		rec := do(t, srv, "GET", "/v1/as/3356", nil)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("drained bucket: status %d, want 429", rec.Code)
		}
		assertRetryAfter(t, rec)
	})

	t.Run("overload 503", func(t *testing.T) {
		var holding atomic.Bool
		gate := make(chan struct{})
		srv := newTestServer(t, Options{
			Admission: &admission.Config{MaxInflight: 1, QueueDepth: 1, ShedSearchFirst: true},
			testHold: func(endpoint string) {
				if holding.Load() && endpoint == "as" {
					<-gate
				}
			},
		})
		holding.Store(true)
		done := make(chan struct{})
		go func() {
			defer close(done)
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/as/3356", nil))
		}()
		waitAdmission(t, srv, func(s admission.Stats) bool { return s.Inflight == 1 })
		rec := do(t, srv, "GET", "/v1/search?name=lumen", nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("search under saturation: status %d, want 503", rec.Code)
		}
		assertRetryAfter(t, rec)
		close(gate)
		holding.Store(false)
		<-done
	})

	t.Run("reload deadline 503", func(t *testing.T) {
		src := func(ctx context.Context) (*cluster.Mapping, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		srv := newTestServer(t, Options{Source: src, RequestTimeout: 20 * time.Millisecond})
		rec := do(t, srv, "POST", "/admin/reload", nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("deadline reload: status %d, want 503", rec.Code)
		}
		assertRetryAfter(t, rec)
	})
}

// TestSearchLimitParsing covers the strconv.Atoi fix: trailing
// garbage is a 400, not a silently truncated parse, and requests
// beyond the server-side ceiling are clamped rather than honoured.
func TestSearchLimitParsing(t *testing.T) {
	srv := newTestServer(t, Options{})
	for _, bad := range []string{"50abc", "0x10", "1e3", "++2", "0", "-3", "%205"} {
		rec := do(t, srv, "GET", "/v1/search?name=a&limit="+bad, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("limit=%q: status %d, want 400", bad, rec.Code)
		}
	}
	var got struct {
		Matches []struct {
			Org int `json:"org"`
		} `json:"matches"`
	}
	rec := do(t, srv, "GET", "/v1/search?name=a&limit=999999", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("huge limit: status %d, want 200 (clamped), body %s", rec.Code, rec.Body)
	}
	if len(got.Matches) > maxSearchLimit {
		t.Fatalf("clamp failed: %d matches > server max %d", len(got.Matches), maxSearchLimit)
	}
	if rec := do(t, srv, "GET", "/v1/search?name=a&limit=2", &got); rec.Code != http.StatusOK || len(got.Matches) > 2 {
		t.Fatalf("valid limit: status %d, %d matches", rec.Code, len(got.Matches))
	}
}

// TestOrgIDParsing covers the same Sscanf→Atoi fix on /v1/org/{id}.
func TestOrgIDParsing(t *testing.T) {
	srv := newTestServer(t, Options{})
	for _, bad := range []string{"7abc", "0x1", "1 2"} {
		rec := do(t, srv, "GET", "/v1/org/"+strings.ReplaceAll(bad, " ", "%20"), nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("org id %q: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestShedsExcludedFromErrorMetrics checks the metrics contract:
// sheds count as requests and sheds, never as 5xx handler errors.
func TestShedsExcludedFromErrorMetrics(t *testing.T) {
	var holding atomic.Bool
	gate := make(chan struct{})
	srv := newTestServer(t, Options{
		Admission: &admission.Config{MaxInflight: 1, QueueDepth: 1, ShedSearchFirst: true},
		testHold: func(endpoint string) {
			if holding.Load() && endpoint == "as" {
				<-gate
			}
		},
	})
	holding.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/as/3356", nil))
	}()
	waitAdmission(t, srv, func(s admission.Stats) bool { return s.Inflight == 1 })
	if rec := do(t, srv, "GET", "/v1/search?name=a", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected shed, got %d", rec.Code)
	}
	close(gate)
	holding.Store(false)
	<-done

	if got := srv.Metrics().Sheds("search"); got != 1 {
		t.Fatalf("Sheds(search) = %d, want 1", got)
	}
	rec := do(t, srv, "GET", "/metrics", nil)
	body := rec.Body.String()
	if !strings.Contains(body, `borgesd_sheds_total{endpoint="search"} 1`) {
		t.Errorf("metrics missing shed counter:\n%s", body)
	}
	if !strings.Contains(body, `borgesd_errors_total{endpoint="search"} 0`) {
		t.Errorf("shed leaked into errors_total:\n%s", body)
	}
	for _, name := range []string{"borgesd_admission_inflight", "borgesd_admission_limit", "borgesd_admission_sheds_total"} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}
