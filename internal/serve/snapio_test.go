package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
)

// snapEqual asserts two snapshots are deep-equal in every field that
// affects serving: mapping, packed index, stats, search index, and
// every pre-rendered byte. Provenance (source, load time, load mode)
// is deliberately excluded — it is what MAY differ between a full
// build, a binary load, and a delta patch of the same logical
// snapshot. The content hash covers exactly the compared state, so it
// is asserted too as the byte-level summary.
func snapEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(want.mapping.Clusters, got.mapping.Clusters) {
		t.Fatal("clusters diverged")
	}
	wk, wv := want.mapping.RawIndex()
	gk, gv := got.mapping.RawIndex()
	if !reflect.DeepEqual(wk, gk) || !reflect.DeepEqual(wv, gv) {
		t.Fatal("packed index diverged")
	}
	if !reflect.DeepEqual(want.stats, got.stats) {
		t.Fatalf("stats diverged:\n want %+v\n  got %+v", want.stats, got.stats)
	}
	if !reflect.DeepEqual(want.lowerNames, got.lowerNames) {
		t.Fatal("lowercase names diverged")
	}
	if !reflect.DeepEqual(want.tokenList, got.tokenList) {
		t.Fatal("token list diverged")
	}
	if !reflect.DeepEqual(want.tokens, got.tokens) {
		t.Fatal("posting lists diverged")
	}
	if len(want.orgBodies) != len(got.orgBodies) {
		t.Fatalf("%d org bodies vs %d", len(want.orgBodies), len(got.orgBodies))
	}
	for i := range want.orgBodies {
		if !bytes.Equal(want.orgBodies[i], got.orgBodies[i]) {
			t.Fatalf("org body %d diverged:\n want %s\n  got %s", i, want.orgBodies[i], got.orgBodies[i])
		}
		if !bytes.Equal(want.asTails[i], got.asTails[i]) {
			t.Fatalf("AS tail %d diverged:\n want %s\n  got %s", i, want.asTails[i], got.asTails[i])
		}
	}
	if wh, gh := want.ContentHash(), got.ContentHash(); wh != gh {
		t.Fatalf("content hash diverged: %s vs %s", wh, gh)
	}
}

// TestSnapshotBinaryRoundTrip is the format's correctness guard: a
// snapshot written as a binary artifact and loaded back must be
// deep-equal to the original, at a small hand-checked scale and at a
// consolidation-bench scale.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		m    *cluster.Mapping
	}{
		{"small", testMapping(t)},
		{"large", benchBuilder(2048).BuildSharded(benchNamer, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := mustSnapshot(t, tc.m)
			var buf bytes.Buffer
			hash, err := WriteSnapshot(&buf, orig)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.LoadMode() != LoadModeBinary {
				t.Fatalf("load mode %q, want %q", loaded.LoadMode(), LoadModeBinary)
			}
			if orig.ContentHash() != hash || loaded.ContentHash() != hash {
				t.Fatalf("hash drift: orig %s, artifact %s, loaded %s",
					orig.ContentHash(), hash, loaded.ContentHash())
			}
			snapEqual(t, orig, loaded)
			// Spot-check the serving surface end to end.
			for _, c := range tc.m.Clusters[:min(len(tc.m.Clusters), 10)] {
				hit := loaded.Lookup(c.ASNs[0])
				if hit == nil || hit.ID != c.ID || hit.Name != c.Name {
					t.Fatalf("Lookup(%s) diverged after binary load", c.ASNs[0])
				}
			}
		})
	}
}

// TestSnapshotFileSource checks the sniffing source: the same path
// serves a JSONL rebuild or a binary load depending on the file's
// magic, producing content-identical snapshots either way. The
// fixture covers every ASN with a featured sibling set because the
// JSONL format defaults feature-less records to OID_W — a bare
// universe singleton would not survive a JSONL round trip bit-for-bit.
func TestSnapshotFileSource(t *testing.T) {
	m := variantMapping(3, 60)
	orig := mustSnapshot(t, m)
	dir := t.TempDir()

	jsonlPath := filepath.Join(dir, "mapping.jsonl")
	f, err := os.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteJSONL(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := SnapshotFileSource(jsonlPath)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fromJSONL.LoadMode() != LoadModeFull {
		t.Fatalf("JSONL load mode %q, want %q", fromJSONL.LoadMode(), LoadModeFull)
	}

	binPath := filepath.Join(dir, "snapshot.bin")
	if _, err := WriteSnapshotFile(binPath, orig); err != nil {
		t.Fatal(err)
	}
	fromBin, err := SnapshotFileSource(binPath)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.LoadMode() != LoadModeBinary {
		t.Fatalf("binary load mode %q, want %q", fromBin.LoadMode(), LoadModeBinary)
	}

	snapEqual(t, orig, fromJSONL)
	snapEqual(t, orig, fromBin)

	// A crashed half-written artifact under the published name must be
	// rejected by the size/hash check, not served.
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	tornPath := filepath.Join(dir, "torn.bin")
	if err := os.WriteFile(tornPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SnapshotFileSource(tornPath)(context.Background()); err == nil {
		t.Fatal("half-written artifact served")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SnapshotFileSource(binPath)(ctx); err == nil {
		t.Fatal("cancelled context ignored")
	}
}

// TestWriteSnapshotFileAtomic exercises the serve-level wrapper the
// daemon's -snapshot-out uses.
func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	orig := mustSnapshot(t, testMapping(t))
	hash, err := WriteSnapshotFile(path, orig)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ContentHash() != hash {
		t.Fatalf("hash %s after load, wrote %s", loaded.ContentHash(), hash)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("stray files after atomic write: %v", names)
	}
}
