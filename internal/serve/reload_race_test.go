package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/admission"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// variantMapping builds mapping variant v over a fixed universe. Every
// variant keeps ASNs 1..n mapped but regroups them, so a lookup must
// succeed against every variant — and any torn state would surface as a
// miss or an inconsistent sibling list.
func variantMapping(v, n int) *cluster.Mapping {
	b := cluster.NewBuilder()
	asns := make([]asnum.ASN, n)
	for i := range asns {
		asns[i] = asnum.ASN(i + 1)
		b.AddUniverse(asns[i])
	}
	// Group consecutive runs of (v%5)+2 ASNs.
	run := v%5 + 2
	for i := 0; i < n; i += run {
		end := i + run
		if end > n {
			end = n
		}
		b.Add(cluster.SiblingSet{ASNs: asns[i:end], Source: cluster.FeatureOIDW})
	}
	return b.Build(func(members []asnum.ASN) string {
		return fmt.Sprintf("Org v%d #%d", v, members[0])
	})
}

// TestReloadUnderFire hammers /v1/as/{asn} and /v1/stats from many
// goroutines while reloads continuously swap the snapshot. Run under
// -race this is the subsystem's core guarantee: no request ever
// observes a torn, empty, or inconsistent mapping mid-swap.
func TestReloadUnderFire(t *testing.T) {
	const (
		universe = 64
		readers  = 8
		reloads  = 50
	)
	var version atomic.Int64
	src := func(ctx context.Context) (*cluster.Mapping, error) {
		return variantMapping(int(version.Add(1)), universe), nil
	}
	snap, err := NewSnapshot(variantMapping(0, universe), "hammer")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(snap, Options{Source: src})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Int64
	// lookups gets a non-blocking tick per successful lookup so the
	// reload loop can interleave every swap with live reads.
	lookups := make(chan struct{}, 1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				asn := i%universe + 1
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec,
					httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", asn), nil))
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: AS%d -> %d (%s)", r, asn, rec.Code, rec.Body)
					return
				}
				var body struct {
					ASN      uint32   `json:"asn"`
					Siblings []uint32 `json:"siblings"`
					Org      struct {
						Size int      `json:"size"`
						ASNs []uint32 `json:"asns"`
					} `json:"org"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					t.Errorf("reader %d: bad JSON: %v", r, err)
					return
				}
				// The response must be internally consistent: the
				// requested ASN appears among its own siblings and the
				// org view matches the sibling view exactly.
				found := false
				for _, s := range body.Siblings {
					if s == uint32(asn) {
						found = true
					}
				}
				if !found || len(body.Siblings) == 0 || len(body.Siblings) != body.Org.Size ||
					len(body.Siblings) != len(body.Org.ASNs) {
					t.Errorf("reader %d: torn response for AS%d: %+v", r, asn, body)
					return
				}

				// Interleave stats reads: θ must always be computable
				// and positive, org/ASN counts never zero.
				if i%7 == 0 {
					rec := httptest.NewRecorder()
					srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
					var st struct {
						Orgs  int     `json:"orgs"`
						ASNs  int     `json:"asns"`
						Theta float64 `json:"theta"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || rec.Code != http.StatusOK {
						t.Errorf("reader %d: stats %d %v", r, rec.Code, err)
						return
					}
					if st.Orgs == 0 || st.ASNs != universe || st.Theta <= 0 {
						t.Errorf("reader %d: empty/torn stats %+v", r, st)
						return
					}
				}
				served.Add(1)
				select {
				case lookups <- struct{}{}:
				default:
				}
			}
		}(r)
	}

	timeout := time.After(30 * time.Second)
hammer:
	for i := 0; i < reloads; i++ {
		// Wait for at least one lookup to complete since the previous
		// swap, so every reload races against in-flight reads.
		select {
		case <-lookups:
		case <-timeout:
			t.Error("readers stalled before all reloads ran")
			break hammer
		}
		if _, err := srv.Reload(context.Background()); err != nil {
			t.Errorf("reload %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no lookups served during the hammer")
	}
	ok, failed := srv.Metrics().Reloads()
	if ok != reloads || failed != 0 {
		t.Fatalf("reload counters = %d/%d, want %d/0", ok, failed, reloads)
	}
	// The final snapshot is the last published variant.
	if got := srv.Snapshot().Stats().ASNs; got != universe {
		t.Fatalf("final snapshot covers %d ASNs, want %d", got, universe)
	}
}

// TestReloadWhileShedding pins the limiter shut so /v1/search is
// actively refused, then reloads: /admin/reload is Critical-class and
// must succeed mid-shed, the new snapshot must serve, and the
// admission layer must carry its state (shed counters, adaptive
// limit, in-flight accounting) across the swap rather than resetting
// — a reload is a data refresh, not an amnesty for an overload.
func TestReloadWhileShedding(t *testing.T) {
	const universe = 32
	var version atomic.Int64
	src := func(ctx context.Context) (*cluster.Mapping, error) {
		return variantMapping(int(version.Add(1)), universe), nil
	}
	snap, err := NewSnapshot(variantMapping(0, universe), "shed-reload")
	if err != nil {
		t.Fatal(err)
	}
	var holding atomic.Bool
	gate := make(chan struct{})
	srv, err := NewServer(snap, Options{
		Source: src,
		Admission: &admission.Config{
			MaxInflight:     1,
			QueueDepth:      1,
			ShedSearchFirst: true,
		},
		testHold: func(endpoint string) {
			if holding.Load() && endpoint == "as" {
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Saturate: one pinned point lookup owns the only slot.
	holding.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/as/1", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("pinned lookup: status %d", rec.Code)
		}
	}()
	waitAdmission(t, srv, func(s admission.Stats) bool { return s.Inflight == 1 })

	// The limiter is actively shedding searches...
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?name=org", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("search while saturated: status %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	before := srv.Admission().Stats()
	oldSnap := srv.Snapshot()

	// ...and the reload must still go through, swapping the snapshot.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload while shedding: status %d body %s", rec.Code, rec.Body)
	}
	if srv.Snapshot() == oldSnap {
		t.Fatal("reload did not swap the snapshot")
	}

	// Admission state survived the swap: the shed is still on the
	// books, the pinned request still owns its slot, the limit did
	// not reset.
	after := srv.Admission().Stats()
	if after.ShedSearch != before.ShedSearch || after.Inflight != 1 || after.Limit != before.Limit {
		t.Fatalf("admission state reset across reload: before %+v after %+v", before, after)
	}

	// The new snapshot serves once the overload clears.
	close(gate)
	holding.Store(false)
	<-done
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?name=org", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("search after drain: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/as/1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("lookup on reloaded snapshot: status %d", rec.Code)
	}
}

// TestConcurrentReloadsSerialize checks that racing /admin/reload posts
// serialize on the reload latch rather than interleaving swap sequences.
func TestConcurrentReloadsSerialize(t *testing.T) {
	const universe = 16
	var version atomic.Int64
	src := func(ctx context.Context) (*cluster.Mapping, error) {
		return variantMapping(int(version.Add(1)), universe), nil
	}
	snap, err := NewSnapshot(variantMapping(0, universe), "latch")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(snap, Options{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Reload(context.Background()); err != nil {
				t.Errorf("reload: %v", err)
			}
		}()
	}
	wg.Wait()
	ok, failed := srv.Metrics().Reloads()
	if ok != 16 || failed != 0 {
		t.Fatalf("reload counters = %d/%d, want 16/0", ok, failed)
	}
}
