package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/mapdiff"
)

// groupedMapping builds a mapping from explicit (name, members) groups
// plus extra universe singletons, for controlled delta scenarios.
func groupedMapping(groups map[string][]asnum.ASN, singletons ...asnum.ASN) *cluster.Mapping {
	b := cluster.NewBuilder()
	names := map[asnum.ASN]string{}
	for name, members := range groups {
		b.Add(cluster.SiblingSet{ASNs: members, Source: cluster.FeatureOIDW})
		names[members[0]] = name
	}
	b.AddUniverse(singletons...)
	return b.Build(func(members []asnum.ASN) string {
		return names[members[0]]
	})
}

// TestDeltaEquivalence is the guard the incremental reload rests on:
// applying a computed delta to the base snapshot yields a snapshot
// deep-equal (same content hash) to one built from scratch off the new
// mapping. The transition exercises every edit kind at once — a
// rename, a merge, a group dissolving into singletons, and a brand-new
// cluster — so canonical IDs shift for survivors in both directions.
func TestDeltaEquivalence(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	oldM := groupedMapping(map[string][]asnum.ASN{
		"Quad":    {1, 2, 3, 4},
		"Pair":    {5, 6},
		"Triple":  {7, 8, 9},
		"Hermit":  {10},
		"Archive": {20, 21, 22},
	})
	newM := groupedMapping(map[string][]asnum.ASN{
		"Quintet": {1, 2, 3, 4, 10}, // merge Quad+Hermit, renamed
		"Pair v2": {5, 6},           // pure rename
		"Fresh":   {11, 12},         // brand-new cluster
		"Archive": {20, 21, 22},     // untouched survivor
	}, 7, 8, 9) // Triple dissolves into singletons

	base, err := newSnapshotAt(oldM, "test", Health{Status: HealthOK}, now)
	if err != nil {
		t.Fatal(err)
	}
	d := mapdiff.ComputeDelta(oldM, newM)
	if d.Empty() {
		t.Fatal("transition produced an empty delta")
	}
	patched, err := base.applyDeltaAt(d, now)
	if err != nil {
		t.Fatal(err)
	}
	if patched.LoadMode() != LoadModeDelta {
		t.Fatalf("load mode %q, want %q", patched.LoadMode(), LoadModeDelta)
	}
	scratch, err := newSnapshotAt(newM, "test", Health{Status: HealthOK}, now)
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, scratch, patched)

	// The base must be untouched: still serving the old answers.
	if c := base.Lookup(10); c == nil || c.Name != "Hermit" {
		t.Fatal("ApplyDelta mutated its base snapshot")
	}
}

// TestDeltaEquivalenceLarge repeats the deep-equal guard across
// successive variant transitions at a scale where canonical order,
// posting-list remapping, and ID resplicing all do real work.
func TestDeltaEquivalenceLarge(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cur := variantMapping(0, 512)
	snap, err := newSnapshotAt(cur, "test", Health{Status: HealthOK}, now)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 4; v++ {
		next := variantMapping(v, 512)
		patched, err := snap.applyDeltaAt(mapdiff.ComputeDelta(cur, next), now)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		scratch, err := newSnapshotAt(next, "test", Health{Status: HealthOK}, now)
		if err != nil {
			t.Fatal(err)
		}
		snapEqual(t, scratch, patched)
		cur, snap = next, patched
	}
}

func TestDeltaRejects(t *testing.T) {
	base := mustSnapshot(t, groupedMapping(map[string][]asnum.ASN{
		"A": {1, 2, 3},
		"B": {10, 11},
	}))
	cases := []struct {
		name string
		d    *mapdiff.Delta
	}{
		{"wrong base membership", &mapdiff.Delta{
			Removed: [][]asnum.ASN{{1, 2}}, // A is {1,2,3}
		}},
		{"unknown organization", &mapdiff.Delta{
			Removed: [][]asnum.ASN{{99}},
		}},
		{"double removal", &mapdiff.Delta{
			Removed: [][]asnum.ASN{{1, 2, 3}, {1, 2, 3}},
		}},
		{"add claims held ASN", &mapdiff.Delta{
			Added: []cluster.Cluster{{Name: "X", ASNs: []asnum.ASN{10, 50}}},
		}},
		{"add not ascending", &mapdiff.Delta{
			Removed: [][]asnum.ASN{{10, 11}},
			Added:   []cluster.Cluster{{Name: "X", ASNs: []asnum.ASN{11, 10}}},
		}},
		{"overlapping adds", &mapdiff.Delta{
			Added: []cluster.Cluster{
				{Name: "X", ASNs: []asnum.ASN{50}},
				{Name: "Y", ASNs: []asnum.ASN{50, 51}},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := base.ApplyDelta(tc.d); !errors.Is(err, ErrDeltaMismatch) {
				t.Fatalf("ApplyDelta = %v, want %v", err, ErrDeltaMismatch)
			}
		})
	}
	// Removing everything is a validation failure too, though not a
	// base mismatch.
	if _, err := base.ApplyDelta(&mapdiff.Delta{
		Removed: [][]asnum.ASN{{1, 2, 3}, {10, 11}},
	}); err == nil {
		t.Fatal("delta emptying the mapping accepted")
	}
}

// TestDeltaReloadUnderFire drives concurrent lookups against a server
// whose snapshot advances exclusively through incremental delta
// reloads, then proves the final state is content-identical to a
// from-scratch build of the final mapping. Run with -race this is the
// safety argument for patching live state behind validate-then-swap.
func TestDeltaReloadUnderFire(t *testing.T) {
	const (
		n       = 256
		reloads = 25
	)
	cur := variantMapping(0, n)
	var mu sync.Mutex
	v := 0
	opts := Options{
		DeltaSource: func(ctx context.Context) (*mapdiff.Delta, error) {
			// Reloads are serialized by the server's latch; the mutex
			// only guards the final read below.
			mu.Lock()
			defer mu.Unlock()
			next := variantMapping(v+1, n)
			d := mapdiff.ComputeDelta(cur, next)
			v++
			cur = next
			return d, nil
		},
	}
	srv, err := NewServer(mustSnapshot(t, cur), opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				asn := i%n + 1
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", asn), nil))
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: /v1/as/%d = %d", r, asn, rec.Code)
					return
				}
				rec = httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: /v1/stats = %d", r, rec.Code)
					return
				}
			}
		}(r)
	}

	for i := 0; i < reloads; i++ {
		if _, err := srv.ReloadDelta(context.Background()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("delta reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	final := srv.Snapshot()
	if final.LoadMode() != LoadModeDelta {
		t.Fatalf("final load mode %q", final.LoadMode())
	}
	mu.Lock()
	finalMapping := cur
	mu.Unlock()
	scratch, err := newSnapshotAt(finalMapping, "test", Health{Status: HealthOK}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if scratch.ContentHash() != final.ContentHash() {
		t.Fatalf("after %d delta reloads the snapshot diverged from a from-scratch build:\n want %s\n  got %s",
			reloads, scratch.ContentHash(), final.ContentHash())
	}
}
