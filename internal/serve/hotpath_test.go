package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// TestParallelSnapshotBuildEquivalence: a snapshot built with many
// workers is indistinguishable from a single-worker build — same token
// index, same posting lists, same stats, same pre-rendered bytes.
func TestParallelSnapshotBuildEquivalence(t *testing.T) {
	m := variantMapping(3, 4096)
	now := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	seq, err := newSnapshotWorkers(m, "seq", Health{}, now, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par, err := newSnapshotWorkers(m, "seq", Health{}, now, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.stats, par.stats) {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, seq.stats, par.stats)
		}
		if !reflect.DeepEqual(seq.tokenList, par.tokenList) {
			t.Fatalf("workers=%d: token lists diverge", workers)
		}
		if !reflect.DeepEqual(seq.tokens, par.tokens) {
			t.Fatalf("workers=%d: posting lists diverge", workers)
		}
		if !reflect.DeepEqual(seq.lowerNames, par.lowerNames) {
			t.Fatalf("workers=%d: lowercase names diverge", workers)
		}
		for i := range seq.orgBodies {
			if !bytes.Equal(seq.orgBodies[i], par.orgBodies[i]) {
				t.Fatalf("workers=%d: org body %d diverges", workers, i)
			}
			if !bytes.Equal(seq.asTails[i], par.asTails[i]) {
				t.Fatalf("workers=%d: AS tail %d diverges", workers, i)
			}
		}
	}
}

// TestPreRenderedBodies: the pre-rendered bytes parse back into exactly
// the structures the handlers used to encode per request.
func TestPreRenderedBodies(t *testing.T) {
	s := mustSnapshot(t, testMapping(t))
	c := s.Lookup(3356)
	if c == nil {
		t.Fatal("Lookup(3356) = nil")
	}
	var org orgJSON
	if err := json.Unmarshal(s.OrgBody(c.ID), &org); err != nil {
		t.Fatalf("OrgBody does not parse: %v", err)
	}
	if org.Name != "Lumen Technologies" || org.Size != 3 || len(org.ASNs) != 3 {
		t.Fatalf("OrgBody = %+v", org)
	}
	body, ok := s.AppendASBody(nil, 3356)
	if !ok {
		t.Fatal("AppendASBody(3356) reported unmapped")
	}
	var as struct {
		ASN      uint32   `json:"asn"`
		Org      orgJSON  `json:"org"`
		Siblings []uint32 `json:"siblings"`
	}
	if err := json.Unmarshal(body, &as); err != nil {
		t.Fatalf("AS body does not parse: %v\n%s", err, body)
	}
	if as.ASN != 3356 || as.Org.Name != "Lumen Technologies" {
		t.Fatalf("AS body = %+v", as)
	}
	if want := []uint32{209, 3356, 3549}; !reflect.DeepEqual(as.Siblings, want) {
		t.Fatalf("siblings = %v, want %v", as.Siblings, want)
	}
	if _, ok := s.AppendASBody(nil, 4242424); ok {
		t.Fatal("AppendASBody reported a body for an unmapped ASN")
	}
	if s.OrgBody(-1) != nil || s.OrgBody(1<<20) != nil {
		t.Fatal("OrgBody out of range returned bytes")
	}
}

// TestLookupZeroAllocs is the CI guard for the serving hot path: an ASN
// point lookup plus pre-rendered body assembly must not allocate.
func TestLookupZeroAllocs(t *testing.T) {
	s := mustSnapshot(t, variantMapping(2, 4096))
	buf := make([]byte, 0, 4096)
	asn := asnum.ASN(1)
	if got := testing.AllocsPerRun(1000, func() {
		asn++
		if asn > 4096 {
			asn = 1
		}
		c := s.Lookup(asn)
		if c == nil {
			t.Fatalf("AS%d unmapped", asn)
		}
		body, ok := s.AppendASBody(buf[:0], asn)
		if !ok || len(body) == 0 {
			t.Fatal("empty AS body")
		}
		if s.OrgBody(c.ID) == nil {
			t.Fatal("missing org body")
		}
	}); got != 0 {
		t.Fatalf("point lookup path allocates %v times per op, want 0", got)
	}
}

// TestSearchZeroSteadyStateAllocs: after warm-up, a limited
// single-word search allocates only its result slice.
func TestSearchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool items, inflating alloc counts")
	}
	s := mustSnapshot(t, variantMapping(2, 4096))
	for i := 0; i < 8; i++ { // prime the scratch pool
		s.Search("org", 10)
	}
	got := testing.AllocsPerRun(500, func() {
		if hits := s.Search("org", 10); len(hits) == 0 {
			t.Fatal("no hits")
		}
	})
	// One allocation for the returned []*Cluster is inherent to the API.
	if got > 1 {
		t.Fatalf("limited search allocates %v times per op, want <= 1", got)
	}
}

// TestSearchLimitSemantics: collecting with an early exit must return
// exactly the prefix of the unlimited result, for single-word (token
// merge) and multi-word (substring scan) queries alike.
func TestSearchLimitSemantics(t *testing.T) {
	s := mustSnapshot(t, variantMapping(1, 512))
	// "1" matches many tokens ("v1", "1", "10", …) so it exercises the
	// multi-list merge; "org v1" takes the multi-word substring scan.
	for _, q := range []string{"org", "v1", "org v1", "1"} {
		full := s.Search(q, 0)
		for i := 1; i < len(full) && i < 8; i++ {
			limited := s.Search(q, i)
			if len(limited) != i {
				t.Fatalf("Search(%q, %d) returned %d hits", q, i, len(limited))
			}
			for j := range limited {
				if limited[j] != full[j] {
					t.Fatalf("Search(%q, %d)[%d] = org %d, want org %d (prefix of unlimited result)",
						q, i, j, limited[j].ID, full[j].ID)
				}
			}
		}
		// Ascending-ID order must hold throughout.
		for j := 1; j < len(full); j++ {
			if full[j-1].ID >= full[j].ID {
				t.Fatalf("Search(%q) ids not ascending: %d then %d", q, full[j-1].ID, full[j].ID)
			}
		}
	}
}

// TestSearchConcurrentScratchReuse hammers the pooled scratch state
// from many goroutines; run under -race it proves query state never
// leaks across concurrent searches.
func TestSearchConcurrentScratchReuse(t *testing.T) {
	s := mustSnapshot(t, variantMapping(4, 1024))
	want := s.Search("org", 25)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := s.Search("org", 25)
				if len(got) != len(want) {
					t.Errorf("concurrent search returned %d hits, want %d", len(got), len(want))
					return
				}
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("concurrent search hit %d = org %d, want org %d", j, got[j].ID, want[j].ID)
						return
					}
				}
				if len(s.SearchBrownout("org", 10)) == 0 {
					t.Error("brownout search returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestParallelBuildDuringConcurrentReloads is the -race sweep the
// tentpole asks for: multi-worker snapshot builds racing hot reloads
// and live point lookups served from pre-rendered bodies.
func TestParallelBuildDuringConcurrentReloads(t *testing.T) {
	const universe = 512
	snap, err := newSnapshotWorkers(variantMapping(0, universe), "par-reload", Health{}, time.Now(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var version int
	srv, err := NewServer(snap, Options{
		BuildWorkers: 4,
		Source: func(ctx context.Context) (*cluster.Mapping, error) {
			version++
			return variantMapping(version, universe), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-done:
					return
				default:
				}
				i++
				a := asnum.ASN(i%universe + 1)
				body, ok := srv.Snapshot().AppendASBody(nil, a)
				if !ok {
					t.Errorf("AS%d unmapped mid-reload", a)
					return
				}
				var parsed struct {
					ASN uint32 `json:"asn"`
				}
				if err := json.Unmarshal(body, &parsed); err != nil || parsed.ASN != uint32(a) {
					t.Errorf("torn AS body for AS%d: %v %s", a, err, body)
					return
				}
			}
		}(g)
	}
	for r := 0; r < 30; r++ {
		if _, err := srv.Reload(context.Background()); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
	}
	close(done)
	wg.Wait()
	if got := srv.Snapshot().Stats().ASNs; got != universe {
		t.Fatalf("final snapshot covers %d networks, want %d", got, universe)
	}
}
