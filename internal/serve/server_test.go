package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	srv, err := NewServer(mustSnapshot(t, testMapping(t)), opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

// get performs a request against the server's handler and decodes the
// JSON body into out (when non-nil).
func do(t *testing.T, srv *Server, method, target string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec
}

func TestHandleAS(t *testing.T) {
	srv := newTestServer(t, Options{})
	var got struct {
		ASN uint32 `json:"asn"`
		Org struct {
			Name     string   `json:"name"`
			Size     int      `json:"size"`
			Features []string `json:"features"`
		} `json:"org"`
		Siblings []uint32 `json:"siblings"`
	}
	rec := do(t, srv, "GET", "/v1/as/3356", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	if got.ASN != 3356 || got.Org.Name != "Lumen Technologies" || got.Org.Size != 3 {
		t.Fatalf("body = %+v", got)
	}
	if want := []uint32{209, 3356, 3549}; fmt.Sprint(got.Siblings) != fmt.Sprint(want) {
		t.Fatalf("siblings = %v, want %v", got.Siblings, want)
	}
	if len(got.Org.Features) != 2 {
		t.Fatalf("features = %v, want OID_W+R&R", got.Org.Features)
	}

	// "AS3356" spelling parses too.
	if rec := do(t, srv, "GET", "/v1/as/AS3356", nil); rec.Code != http.StatusOK {
		t.Fatalf("AS3356 status = %d", rec.Code)
	}
	if rec := do(t, srv, "GET", "/v1/as/99999999999", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("overflow ASN status = %d, want 400", rec.Code)
	}
	if rec := do(t, srv, "GET", "/v1/as/bogus", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus ASN status = %d, want 400", rec.Code)
	}
	if rec := do(t, srv, "GET", "/v1/as/4242424", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unmapped ASN status = %d, want 404", rec.Code)
	}
}

func TestHandleOrg(t *testing.T) {
	srv := newTestServer(t, Options{})
	lumen := srv.Snapshot().Lookup(3356)
	var got orgJSON
	rec := do(t, srv, "GET", fmt.Sprintf("/v1/org/%d", lumen.ID), &got)
	if rec.Code != http.StatusOK || got.Name != "Lumen Technologies" {
		t.Fatalf("status %d body %+v", rec.Code, got)
	}
	if rec := do(t, srv, "GET", "/v1/org/999999", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("missing org status = %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "GET", "/v1/org/xyz", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad org id status = %d, want 400", rec.Code)
	}
}

func TestHandleSearch(t *testing.T) {
	srv := newTestServer(t, Options{})
	var got struct {
		Query   string    `json:"query"`
		Matches []orgJSON `json:"matches"`
	}
	rec := do(t, srv, "GET", "/v1/search?name=claro", &got)
	if rec.Code != http.StatusOK || len(got.Matches) != 2 {
		t.Fatalf("status %d matches %+v", rec.Code, got.Matches)
	}
	rec = do(t, srv, "GET", "/v1/search?name=claro&limit=1", &got)
	if rec.Code != http.StatusOK || len(got.Matches) != 1 {
		t.Fatalf("limited search: status %d matches %+v", rec.Code, got.Matches)
	}
	if rec := do(t, srv, "GET", "/v1/search", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing name status = %d, want 400", rec.Code)
	}
	if rec := do(t, srv, "GET", "/v1/search?name=x&limit=-3", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative limit status = %d, want 400", rec.Code)
	}
}

func TestHandleStats(t *testing.T) {
	srv := newTestServer(t, Options{})
	var got struct {
		Orgs          int     `json:"orgs"`
		ASNs          int     `json:"asns"`
		Theta         float64 `json:"theta"`
		LargestOrg    int     `json:"largest_org"`
		Source        string  `json:"source"`
		SizeHistogram []struct {
			Size string `json:"size"`
			Orgs int    `json:"orgs"`
		} `json:"size_histogram"`
	}
	rec := do(t, srv, "GET", "/v1/stats", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	st := srv.Snapshot().Stats()
	if got.Orgs != st.Orgs || got.ASNs != st.ASNs || got.Theta != st.Theta {
		t.Fatalf("stats body %+v, want %+v", got, st)
	}
	if got.Source != "test" || got.LargestOrg != 3 || len(got.SizeHistogram) != 3 {
		t.Fatalf("stats body %+v", got)
	}
}

func TestHandleHealthz(t *testing.T) {
	srv := newTestServer(t, Options{})
	var got struct {
		Status string `json:"status"`
	}
	rec := do(t, srv, "GET", "/healthz", &got)
	if rec.Code != http.StatusOK || got.Status != "ok" {
		t.Fatalf("healthz = %d %+v", rec.Code, got)
	}
}

func TestHandleMetrics(t *testing.T) {
	srv := newTestServer(t, Options{})
	do(t, srv, "GET", "/v1/as/3356", nil)
	do(t, srv, "GET", "/v1/as/3356", nil)
	do(t, srv, "GET", "/v1/stats", nil)
	rec := do(t, srv, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`borgesd_requests_total{endpoint="as"} 2`,
		`borgesd_requests_total{endpoint="stats"} 1`,
		`borgesd_request_latency_seconds{endpoint="as",quantile="0.99"}`,
		`borgesd_reloads_total{result="success"} 0`,
		`borgesd_snapshot_orgs 4`,
		`borgesd_snapshot_asns 7`,
		`borgesd_snapshot_theta`,
		`borgesd_snapshot_age_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// reloadableSource returns mappings from a swappable function.
type reloadableSource struct {
	fn func(context.Context) (*cluster.Mapping, error)
}

func TestHandleReload(t *testing.T) {
	// Second mapping: Lumen gains AS7 (a merger the reload must surface).
	grown := func(ctx context.Context) (*cluster.Mapping, error) {
		b := cluster.NewBuilder()
		b.AddUniverse(7, 209, 3356, 3549, 27995)
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{7, 209, 3356, 3549}, Source: cluster.FeatureOIDW})
		b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{27995}, Source: cluster.FeatureOIDW})
		return b.Build(nil), nil
	}
	src := &reloadableSource{fn: grown}
	srv := newTestServer(t, Options{Source: func(ctx context.Context) (*cluster.Mapping, error) {
		return src.fn(ctx)
	}})

	// AS7 is absent before the reload.
	if rec := do(t, srv, "GET", "/v1/as/7", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("pre-reload AS7 = %d, want 404", rec.Code)
	}
	var got struct {
		Status string  `json:"status"`
		Orgs   int     `json:"orgs"`
		Theta  float64 `json:"theta"`
	}
	rec := do(t, srv, "POST", "/admin/reload", &got)
	if rec.Code != http.StatusOK || got.Status != "ok" || got.Orgs != 2 {
		t.Fatalf("reload = %d %+v", rec.Code, got)
	}
	if rec := do(t, srv, "GET", "/v1/as/7", nil); rec.Code != http.StatusOK {
		t.Fatalf("post-reload AS7 = %d, want 200", rec.Code)
	}

	// A failing source must leave the current snapshot serving and
	// count a reload failure.
	src.fn = func(ctx context.Context) (*cluster.Mapping, error) {
		return nil, fmt.Errorf("source exploded")
	}
	before := srv.Snapshot()
	if rec := do(t, srv, "POST", "/admin/reload", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing reload = %d, want 500", rec.Code)
	}
	if srv.Snapshot() != before {
		t.Fatal("failed reload swapped the snapshot")
	}

	// An empty replacement mapping is rejected by validation.
	src.fn = func(ctx context.Context) (*cluster.Mapping, error) {
		return &cluster.Mapping{}, nil
	}
	if rec := do(t, srv, "POST", "/admin/reload", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("empty-mapping reload = %d, want 500", rec.Code)
	}
	if srv.Snapshot() != before {
		t.Fatal("empty-mapping reload swapped the snapshot")
	}
	ok, failed := srv.Metrics().Reloads()
	if ok != 1 || failed != 2 {
		t.Fatalf("reload counters = %d ok / %d failed, want 1/2", ok, failed)
	}

	// GET is not allowed on the admin endpoint.
	if rec := do(t, srv, "GET", "/admin/reload", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload = %d, want 405", rec.Code)
	}
}

func TestReloadWithoutSource(t *testing.T) {
	srv := newTestServer(t, Options{})
	if rec := do(t, srv, "POST", "/admin/reload", nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("sourceless reload = %d, want 501", rec.Code)
	}
	if _, err := srv.Reload(context.Background()); err == nil {
		t.Fatal("Reload without source succeeded")
	}
}

func TestFileSource(t *testing.T) {
	m := testMapping(t)
	path := t.TempDir() + "/mapping.jsonl"
	var sb strings.Builder
	if err := cluster.WriteJSONL(&sb, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := FileSource(path)(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumOrgs() != m.NumOrgs() || got.NumASNs() != m.NumASNs() {
		t.Fatalf("file round trip: %d/%d orgs/asns, want %d/%d",
			got.NumOrgs(), got.NumASNs(), m.NumOrgs(), m.NumASNs())
	}
	if _, err := FileSource(path + ".missing")(context.Background()); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	snap := mustSnapshot(t, testMapping(t))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	srv, err := NewServer(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { errc <- srv.ServeListener(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("live request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", resp.StatusCode)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}
