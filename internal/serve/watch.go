package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nu-aqualab/borges/internal/mapdiff"
)

// WatchEvent is one /v1/watch stream event: a snapshot swap described
// by the mapdiff edit script between the old and new mappings. Seq
// numbers are monotonically increasing per server process; a client
// that reconnects with ?since=<last seen seq> replays anything it
// missed (up to the hub's replay ring depth).
type WatchEvent struct {
	Seq         uint64         `json:"seq"`
	Mode        string         `json:"mode"`
	ContentHash string         `json:"content_hash"`
	Orgs        int            `json:"orgs"`
	ASNs        int            `json:"asns"`
	Delta       *mapdiff.Delta `json:"delta,omitempty"`
}

const (
	// watchRingSize bounds the replay ring: a reconnecting client can
	// resume across this many missed reloads before it must treat the
	// stream as reset (re-fetch a full snapshot).
	watchRingSize = 64
	// maxWatchSubscribers caps concurrent /v1/watch streams; beyond it
	// new subscriptions are refused with 503 + Retry-After.
	maxWatchSubscribers = 1024
	// watchHeartbeat is the keep-alive comment interval, frequent
	// enough to beat the server's idle/write timeouts and any
	// middlebox between.
	watchHeartbeat = 15 * time.Second
)

// errWatchFull and errWatchClosed are subscription refusals.
var (
	errWatchFull   = errors.New("serve: watch subscriber cap reached")
	errWatchClosed = errors.New("serve: watch hub shut down")
)

// watchSub is one subscriber: a bounded event queue drained by its
// handler goroutine. The hub closes ch to end the stream — on
// shutdown, or when the queue overflows (slow consumer).
type watchSub struct {
	ch      chan *WatchEvent
	evicted bool
}

// watchHub fans reload events out to /v1/watch subscribers. Publishing
// never blocks: each subscriber has a bounded queue, and one that is
// full when an event arrives is evicted (its channel closed) rather
// than allowed to stall the snapshot swap or accumulate unbounded
// backlog. The hub keeps a small replay ring so reconnecting clients
// can resume by sequence number.
type watchHub struct {
	buffer int // per-subscriber queue depth

	mu     sync.Mutex
	seq    uint64
	subs   map[*watchSub]struct{}
	ring   []*WatchEvent // last watchRingSize events, oldest first
	closed bool

	// everSub lets swapWith skip the ComputeDelta diff pass entirely
	// until the first watcher ever connects: flipped once, never
	// cleared, read without the lock.
	everSub   atomic.Bool
	evictions atomic.Int64
}

func newWatchHub(buffer int) *watchHub {
	return &watchHub{buffer: buffer, subs: make(map[*watchSub]struct{})}
}

// active reports whether publish would do any work — some watcher has
// connected at some point and the hub is not shut down.
func (h *watchHub) active() bool {
	return h.everSub.Load()
}

// subscribe registers a new stream. The returned replay slice holds
// the ring events with Seq > since, in order; live events published
// after the call arrive on sub.ch, with no gap or overlap relative to
// the replay (both are decided under the hub lock). seq is the hub's
// current sequence at subscription time, for the stream's hello event.
func (h *watchHub) subscribe(since uint64) (sub *watchSub, replay []*WatchEvent, seq uint64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, 0, errWatchClosed
	}
	if len(h.subs) >= maxWatchSubscribers {
		return nil, nil, 0, errWatchFull
	}
	sub = &watchSub{ch: make(chan *WatchEvent, h.buffer)}
	h.subs[sub] = struct{}{}
	h.everSub.Store(true)
	for _, ev := range h.ring {
		if ev.Seq > since {
			replay = append(replay, ev)
		}
	}
	return sub, replay, h.seq, nil
}

// unsubscribe removes a departing subscriber. Safe to call after an
// eviction or hub shutdown (both already removed it).
func (h *watchHub) unsubscribe(sub *watchSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, sub)
}

// publish assigns the next sequence number to the swap described by
// (next, delta) and delivers it to every subscriber whose queue has
// room; the rest are evicted. Called from swapWith with the reload
// latch held, so sequence numbers and ring order match publication
// order exactly.
func (h *watchHub) publish(next *Snapshot, delta *mapdiff.Delta) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	st := next.Stats()
	ev := &WatchEvent{
		Seq:         h.seq,
		Mode:        next.LoadMode(),
		ContentHash: next.ContentHash(),
		Orgs:        st.Orgs,
		ASNs:        st.ASNs,
		Delta:       delta,
	}
	if len(h.ring) == watchRingSize {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = ev
	} else {
		h.ring = append(h.ring, ev)
	}
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			// Slow consumer: its queue is full after `buffer` unread
			// reloads. Cut it loose — the closed channel ends its
			// stream, and the client reconnects with ?since= to
			// resume from the ring.
			sub.evicted = true
			close(sub.ch)
			delete(h.subs, sub)
			h.evictions.Add(1)
		}
	}
}

// close ends every stream (subscribers see their channel close after
// draining anything already queued) and refuses new subscriptions.
// Called at shutdown before the HTTP server drains.
func (h *watchHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
}

// subscribers returns the current stream count (for tests/metrics).
func (h *watchHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// handleWatch serves GET /v1/watch: a Server-Sent Events stream of
// snapshot changes. The stream opens with a `hello` event carrying the
// current sequence number and content hash, then emits one `reload`
// event per snapshot swap whose data is the WatchEvent JSON (including
// the full mapdiff edit script). `?since=N` replays missed events from
// the hub's ring, so a client that reconnects after a drop resumes
// without a gap as long as fewer than watchRingSize reloads passed.
//
// Watch streams are admitted as Critical — they hold no limiter slot
// (a subscription is idle between reloads) — and are instead bounded
// by maxWatchSubscribers.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if ss := r.URL.Query().Get("since"); ss != "" {
		n, err := strconv.ParseUint(ss, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid ?since=%q", ss)
			return
		}
		since = n
	}
	sub, replay, seq, err := s.watch.subscribe(since)
	if err != nil {
		writeRetryableError(w, http.StatusServiceUnavailable, time.Second, "%v", err)
		return
	}
	defer s.watch.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	flush := func() bool {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Keep extending the connection's write deadline while the
		// stream makes progress; errors mean the server-wide bound
		// applies (or the writer has no deadline support at all).
		_ = rc.SetWriteDeadline(s.opts.now().Add(2 * s.opts.RequestTimeout))
		return true
	}

	snap := s.snap.Load()
	hello := &WatchEvent{
		Seq:         seq,
		Mode:        snap.LoadMode(),
		ContentHash: snap.ContentHash(),
		Orgs:        snap.Stats().Orgs,
		ASNs:        snap.Stats().ASNs,
	}
	if err := writeSSE(w, "hello", hello); err != nil {
		return
	}
	for _, ev := range replay {
		if err := writeSSE(w, "reload", ev); err != nil {
			return
		}
	}
	flush()

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				// Evicted or hub shutdown: end the stream cleanly so
				// the client reconnects with ?since=.
				return
			}
			if err := writeSSE(w, "reload", ev); err != nil {
				return
			}
			flush()
		case <-heartbeat.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one Server-Sent Event with the event name, the
// sequence number as the SSE id, and the event JSON as data.
func writeSSE(w http.ResponseWriter, event string, ev *WatchEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, "event: "...)
	buf = append(buf, event...)
	buf = append(buf, "\nid: "...)
	buf = strconv.AppendUint(buf, ev.Seq, 10)
	buf = append(buf, "\ndata: "...)
	buf = append(buf, data...)
	buf = append(buf, '\n', '\n')
	_, err = w.Write(buf)
	return err
}

// writeMetrics appends the hub's Prometheus block to the /metrics
// response.
func (h *watchHub) writeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP borgesd_watch_subscribers Connected /v1/watch streams.\n")
	fmt.Fprintf(w, "# TYPE borgesd_watch_subscribers gauge\n")
	fmt.Fprintf(w, "borgesd_watch_subscribers %d\n", h.subscribers())
	fmt.Fprintf(w, "# HELP borgesd_watch_evictions_total Slow /v1/watch subscribers evicted for a full event queue.\n")
	fmt.Fprintf(w, "# TYPE borgesd_watch_evictions_total counter\n")
	fmt.Fprintf(w, "borgesd_watch_evictions_total %d\n", h.evictions.Load())
}

// WatchEvictions returns how many slow /v1/watch subscribers the
// server has evicted (for tests and metrics).
func (s *Server) WatchEvictions() int64 { return s.watch.evictions.Load() }

// WatchSubscribers returns the number of connected /v1/watch streams.
func (s *Server) WatchSubscribers() int { return s.watch.subscribers() }
