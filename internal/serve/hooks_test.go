package serve

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
)

// TestOnSwapAndExtraMetrics covers the two server extension hooks the
// fleet distributor builds on: OnSwap observes every successfully
// published snapshot (but not the initial one), and ExtraMetrics
// appends to the /metrics response.
func TestOnSwapAndExtraMetrics(t *testing.T) {
	var swaps []*Snapshot
	srv := newTestServer(t, Options{
		Source: func(ctx context.Context) (*cluster.Mapping, error) { return testMapping(t), nil },
		OnSwap: func(s *Snapshot) { swaps = append(swaps, s) },
		ExtraMetrics: func(w io.Writer) {
			fmt.Fprint(w, "borgesd_test_extra 42\n")
		},
	})
	if len(swaps) != 0 {
		t.Fatalf("OnSwap fired %d times before any reload", len(swaps))
	}

	next, err := srv.Reload(context.Background())
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if len(swaps) != 1 || swaps[0] != next {
		t.Fatalf("OnSwap saw %d snapshots, want exactly the reloaded one", len(swaps))
	}

	rec := do(t, srv, "GET", "/metrics", nil)
	if !strings.Contains(rec.Body.String(), "borgesd_test_extra 42") {
		t.Fatalf("/metrics missing ExtraMetrics output:\n%s", rec.Body.String())
	}
}
