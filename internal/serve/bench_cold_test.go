// Cold-start and incremental-reload benchmarks for the binary
// snapshot format: the JSONL rebuild path (parse, union-find replay,
// tokenize, render) against the snapbin load path (a few large reads
// plus slicing), and a small delta patch against either full path.
//
//	go test -run=NONE -bench='SnapshotColdStart|DeltaReload' -benchtime=1x ./internal/serve/
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/mapdiff"
)

// BenchmarkSnapshotColdStartJSONL measures the legacy cold start:
// SnapshotFileSource on a mapping JSONL file, which re-parses,
// re-consolidates, re-tokenizes, and re-renders on every load.
func BenchmarkSnapshotColdStartJSONL(b *testing.B) {
	for _, n := range consolidationScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchBuilder(n).BuildSharded(benchNamer, 0)
			path := filepath.Join(b.TempDir(), "mapping.jsonl")
			f, err := os.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			if err := cluster.WriteJSONL(f, m); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			source := SnapshotFileSource(path)
			b.ReportAllocs()
			b.ResetTimer()
			var snap *Snapshot
			for i := 0; i < b.N; i++ {
				if snap, err = source(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			recordBench(b, map[string]float64{
				"networks": float64(n),
				"orgs":     float64(snap.Stats().Orgs),
			})
		})
	}
}

// BenchmarkSnapshotColdStartBinary measures the same source on a
// binary artifact of the same snapshot: decode, verify hash, restore.
func BenchmarkSnapshotColdStartBinary(b *testing.B) {
	for _, n := range consolidationScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchBuilder(n).BuildSharded(benchNamer, 0)
			snap, err := NewSnapshot(m, "bench")
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "snapshot.bin")
			if _, err := WriteSnapshotFile(path, snap); err != nil {
				b.Fatal(err)
			}
			source := SnapshotFileSource(path)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if snap, err = source(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			recordBench(b, map[string]float64{
				"networks": float64(n),
				"orgs":     float64(snap.Stats().Orgs),
			})
		})
	}
}

// BenchmarkDeltaReload measures patching a serving snapshot with a
// delta touching one organization (well under 1% of clusters at every
// scale) — the incremental alternative to the full rebuild that
// BenchmarkSnapshotColdStartJSONL prices.
func BenchmarkDeltaReload(b *testing.B) {
	for _, n := range consolidationScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchBuilder(n).BuildSharded(benchNamer, 0)
			base, err := NewSnapshot(m, "bench")
			if err != nil {
				b.Fatal(err)
			}
			// Rename one mid-sized organization: one removal plus one
			// addition with identical membership and a new name.
			victim := m.Clusters[len(m.Clusters)/2]
			renamed := victim
			renamed.Name = victim.Name + " (renamed)"
			renamed.ASNs = append([]asnum.ASN(nil), victim.ASNs...)
			d := &mapdiff.Delta{
				Removed: [][]asnum.ASN{victim.ASNs},
				Added:   []cluster.Cluster{renamed},
			}
			b.ReportAllocs()
			b.ResetTimer()
			var snap *Snapshot
			for i := 0; i < b.N; i++ {
				if snap, err = base.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			recordBench(b, map[string]float64{
				"networks":         float64(n),
				"orgs":             float64(snap.Stats().Orgs),
				"touched_orgs":     1,
				"touched_fraction": 1 / float64(len(m.Clusters)),
			})
		})
	}
}
