package serve

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
)

// FuzzLoadMapping fuzzes the snapshot load path a -mapping file (and
// every /admin/reload of one) flows through: cluster.ReadJSONL
// followed by snapshot construction. The contract under arbitrary
// bytes: the loader parses or fails cleanly (no panic), and anything
// it accepts must index into a self-consistent, servable snapshot —
// the same validate-then-swap guarantee hot reload relies on. The
// seed corpus includes a torn-tail file (a crash mid-append), the
// failure mode the cache layer's disk tier also has to survive.
// FuzzLoadSnapshot fuzzes the binary artifact decoder behind
// -snapshot-in and binary /admin/reload. The contract under arbitrary
// bytes: LoadSnapshot returns a typed error or a fully self-consistent
// snapshot — never a panic, and never an allocation sized by an
// unvalidated length field (the size cap below would not save us from
// a forged multi-gigabyte count; the decoder's bounds checks must).
// The seed corpus is a valid artifact plus the mutations the format is
// designed to reject: truncations, flipped header/hash/payload bytes,
// and bare magic.
func FuzzLoadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	snap, err := NewSnapshot(variantMapping(3, 24), "fuzz")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := WriteSnapshot(&buf, snap); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:63])
	f.Add([]byte("BORGSNAP"))
	f.Add([]byte(""))
	for _, off := range []int{0, 8, 12, 16, 24, 64, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound the cost of one fuzz iteration
		}
		snap, err := LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the acceptable outcome
		}
		st := snap.Stats()
		if st.Orgs == 0 || st.ASNs == 0 {
			t.Fatal("LoadSnapshot accepted an empty mapping")
		}
		m := snap.Mapping()
		if st.Orgs != m.NumOrgs() || st.ASNs != m.NumASNs() {
			t.Fatalf("stats (%d orgs, %d asns) disagree with mapping (%d, %d)",
				st.Orgs, st.ASNs, m.NumOrgs(), m.NumASNs())
		}
		for i := range m.Clusters {
			c := &m.Clusters[i]
			for _, a := range c.ASNs {
				hit := snap.Lookup(a)
				if hit == nil || hit != c {
					t.Fatalf("ASN %v misresolved in an accepted snapshot", a)
				}
			}
			if body := snap.OrgBody(c.ID); len(body) == 0 {
				t.Fatalf("cluster %d accepted without a rendered body", c.ID)
			}
		}
		if snap.LoadMode() != LoadModeBinary || snap.ContentHash() == "" {
			t.Fatalf("accepted snapshot reports mode %q hash %q", snap.LoadMode(), snap.ContentHash())
		}
	})
}

func FuzzLoadMapping(f *testing.F) {
	var buf bytes.Buffer
	if err := cluster.WriteJSONL(&buf, variantMapping(3, 12)); err != nil {
		f.Fatal(err)
	}
	full := buf.String()
	f.Add([]byte(full))
	// Torn tail: complete first line, second line cut mid-record.
	if lines := strings.SplitAfter(full, "\n"); len(lines) >= 2 && len(lines[1]) > 2 {
		f.Add([]byte(lines[0] + lines[1][:len(lines[1])/2]))
	}
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"org":0,"asns":[]}`))
	f.Add([]byte(`{"org":0,"name":"x","asns":[1,2],"features":["BOGUS"]}`))
	f.Add([]byte(`{"org":0,"asns":[4294967295,0]}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"org":0,"asns":[1,1,1]}` + "\n" + `{"org":1,"asns":[1,2]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound the cost of one fuzz iteration
		}
		m, err := cluster.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the acceptable outcome
		}
		snap, err := NewSnapshot(m, "fuzz")
		if err != nil {
			// Parsed but unservable (e.g. empty) — also a clean
			// refusal: reload keeps the old snapshot in that case.
			return
		}
		st := snap.Stats()
		if st.Orgs != m.NumOrgs() || st.ASNs != m.NumASNs() {
			t.Fatalf("snapshot stats (%d orgs, %d asns) disagree with mapping (%d, %d)",
				st.Orgs, st.ASNs, m.NumOrgs(), m.NumASNs())
		}
		if st.Orgs == 0 || st.ASNs == 0 {
			t.Fatal("NewSnapshot accepted an empty mapping")
		}
		for i := range m.Clusters {
			c := &m.Clusters[i]
			for _, a := range c.ASNs {
				hit := snap.Lookup(a)
				if hit == nil {
					t.Fatalf("ASN %v unmapped in its own snapshot", a)
				}
				if hit != c {
					t.Fatalf("ASN %v resolves to cluster %d, not its owner %d", a, hit.ID, c.ID)
				}
			}
		}
	})
}
