package serve

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
)

// FuzzLoadMapping fuzzes the snapshot load path a -mapping file (and
// every /admin/reload of one) flows through: cluster.ReadJSONL
// followed by snapshot construction. The contract under arbitrary
// bytes: the loader parses or fails cleanly (no panic), and anything
// it accepts must index into a self-consistent, servable snapshot —
// the same validate-then-swap guarantee hot reload relies on. The
// seed corpus includes a torn-tail file (a crash mid-append), the
// failure mode the cache layer's disk tier also has to survive.
func FuzzLoadMapping(f *testing.F) {
	var buf bytes.Buffer
	if err := cluster.WriteJSONL(&buf, variantMapping(3, 12)); err != nil {
		f.Fatal(err)
	}
	full := buf.String()
	f.Add([]byte(full))
	// Torn tail: complete first line, second line cut mid-record.
	if lines := strings.SplitAfter(full, "\n"); len(lines) >= 2 && len(lines[1]) > 2 {
		f.Add([]byte(lines[0] + lines[1][:len(lines[1])/2]))
	}
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"org":0,"asns":[]}`))
	f.Add([]byte(`{"org":0,"name":"x","asns":[1,2],"features":["BOGUS"]}`))
	f.Add([]byte(`{"org":0,"asns":[4294967295,0]}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"org":0,"asns":[1,1,1]}` + "\n" + `{"org":1,"asns":[1,2]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound the cost of one fuzz iteration
		}
		m, err := cluster.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the acceptable outcome
		}
		snap, err := NewSnapshot(m, "fuzz")
		if err != nil {
			// Parsed but unservable (e.g. empty) — also a clean
			// refusal: reload keeps the old snapshot in that case.
			return
		}
		st := snap.Stats()
		if st.Orgs != m.NumOrgs() || st.ASNs != m.NumASNs() {
			t.Fatalf("snapshot stats (%d orgs, %d asns) disagree with mapping (%d, %d)",
				st.Orgs, st.ASNs, m.NumOrgs(), m.NumASNs())
		}
		if st.Orgs == 0 || st.ASNs == 0 {
			t.Fatal("NewSnapshot accepted an empty mapping")
		}
		for i := range m.Clusters {
			c := &m.Clusters[i]
			for _, a := range c.ASNs {
				hit := snap.Lookup(a)
				if hit == nil {
					t.Fatalf("ASN %v unmapped in its own snapshot", a)
				}
				if hit != c {
					t.Fatalf("ASN %v resolves to cluster %d, not its owner %d", a, hit.ID, c.ID)
				}
			}
		}
	})
}
