package serve

import (
	"compress/gzip"
	"net/http"
	"strings"
	"sync"
)

// gzipPool recycles gzip writers: gzip.NewWriterLevel allocates ~1.4
// MiB of deflate state, far too much to pay per response. BestSpeed is
// the right trade for JSON that is mostly repeated structure — ~5× size
// reduction at a fraction of DefaultCompression's CPU.
var gzipPool = sync.Pool{
	New: func() any {
		gz, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return gz
	},
}

// acceptsGzip reports whether the request's Accept-Encoding admits a
// gzip response: a "gzip" (or "*") token not disabled with q=0.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		token, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		token = strings.TrimSpace(token)
		if token != "gzip" && token != "*" {
			continue
		}
		if hasQ {
			q = strings.TrimSpace(q)
			if strings.HasPrefix(q, "q=0") && !strings.HasPrefix(q, "q=0.") {
				continue
			}
		}
		return true
	}
	return false
}

// negotiateGzip starts a gzip response when the client asked for one:
// it sets Content-Encoding (before any WriteHeader) and returns a
// pooled writer targeting w. A nil return means identity encoding.
// Callers must pass a non-nil return to finishGzip exactly once.
func negotiateGzip(w http.ResponseWriter, r *http.Request) *gzip.Writer {
	if !acceptsGzip(r) {
		return nil
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	gz := gzipPool.Get().(*gzip.Writer)
	gz.Reset(w)
	return gz
}

// finishGzip flushes the stream's final block and returns the writer
// to the pool.
func finishGzip(w http.ResponseWriter, gz *gzip.Writer) {
	_ = gz.Close()
	gz.Reset(nil)
	gzipPool.Put(gz)
}

// gzipResponseWriter routes body writes through a gzip stream while
// leaving header and status handling on the wrapped writer. It lets
// handlers that build a whole JSON response (like /v1/search) opt into
// compression without restructuring.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (w *gzipResponseWriter) Write(b []byte) (int, error) { return w.gz.Write(b) }

// Unwrap keeps http.ResponseController working through the wrapper.
func (w *gzipResponseWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
