// Benchmarks for the sharded consolidation, the parallel snapshot
// build, and the zero-allocation serving hot path. Besides the
// standard -bench output, each records a machine-readable observation
// that TestMain serializes to BENCH_serve.json, so CI smoke runs leave
// a comparable artifact.
//
//	go test -run=NONE -bench='Consolidate|SnapshotBuild|LookupAllocs' -benchtime=1x ./internal/serve/
package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// benchRecord is one serialized benchmark observation.
type benchRecord struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var (
	benchRecMu sync.Mutex
	benchRecs  []benchRecord
)

// recordBench snapshots a finished benchmark's timing plus extra
// metrics for the BENCH_serve.json artifact. The testing package runs
// each benchmark once with b.N=1 to probe before the measured run, so
// a repeated name keeps only the invocation with the most iterations.
func recordBench(b *testing.B, metrics map[string]float64) {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	r := benchRecord{Name: b.Name(), N: b.N, Metrics: metrics}
	if b.N > 0 {
		r.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	for i := range benchRecs {
		if benchRecs[i].Name == r.Name {
			if r.N >= benchRecs[i].N {
				benchRecs[i] = r
			}
			return
		}
	}
	benchRecs = append(benchRecs, r)
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchRecMu.Lock()
	recs := benchRecs
	benchRecMu.Unlock()
	if len(recs) > 0 {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
		blob, err := json.MarshalIndent(struct {
			Benchmarks []benchRecord `json:"benchmarks"`
		}{recs}, "", "  ")
		if err == nil {
			blob = append(blob, '\n')
			err = os.WriteFile("BENCH_serve.json", blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing BENCH_serve.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// consolidationScales are the synthetic universe sizes the
// consolidation and snapshot-build benchmarks sweep. The largest is
// the acceptance scale.
var consolidationScales = []int{2048, 8192, 32768}

// benchBuilder generates a seeded consolidation workload over n
// networks: 4n sibling sets of 2–7 members drawn from 64-network
// blocks, so heavily overlapping sets collapse each block into one
// organization (≈ n/64 orgs) — union-find cost dominates, and the
// dense-DSU advantage is visible even on one core.
func benchBuilder(n int) *cluster.Builder {
	const blockSize = 64
	rng := rand.New(rand.NewSource(42))
	b := cluster.NewBuilder()
	for a := 1; a <= n; a++ {
		b.AddUniverse(asnum.ASN(a))
	}
	for i := 0; i < 4*n; i++ {
		size := rng.Intn(6) + 2
		set := cluster.SiblingSet{Source: cluster.Feature(i % cluster.NumFeatures)}
		base := rng.Intn(n) + 1
		blockLo := base - (base-1)%blockSize
		blockHi := min(blockLo+blockSize-1, n)
		for j := 0; j < size; j++ {
			a := base + rng.Intn(17) - 8
			if a < blockLo {
				a = blockLo
			}
			if a > blockHi {
				a = blockHi
			}
			set.ASNs = append(set.ASNs, asnum.ASN(a))
		}
		b.Add(set)
	}
	return b
}

func benchNamer(members []asnum.ASN) string {
	return fmt.Sprintf("Org #%d", members[0])
}

// BenchmarkConsolidateSeq is the baseline: the map-based union-find
// replay behind Builder.Build.
func BenchmarkConsolidateSeq(b *testing.B) {
	for _, n := range consolidationScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			builder := benchBuilder(n)
			b.ReportAllocs()
			b.ResetTimer()
			var m *cluster.Mapping
			for i := 0; i < b.N; i++ {
				m = builder.Build(benchNamer)
			}
			b.StopTimer()
			recordBench(b, map[string]float64{
				"networks": float64(n),
				"sets":     float64(4 * n),
				"orgs":     float64(m.NumOrgs()),
			})
		})
	}
}

// BenchmarkConsolidateSharded is the tentpole path: per-shard dense
// DSUs over contiguous set chunks, frontier-merged into a global
// dense DSU. Byte-identical output to the sequential build (see
// TestShardedEquivalence*), at a fraction of the cost.
func BenchmarkConsolidateSharded(b *testing.B) {
	for _, n := range consolidationScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			builder := benchBuilder(n)
			b.ReportAllocs()
			b.ResetTimer()
			var m *cluster.Mapping
			for i := 0; i < b.N; i++ {
				m = builder.BuildSharded(benchNamer, 0)
			}
			b.StopTimer()
			recordBench(b, map[string]float64{
				"networks": float64(n),
				"sets":     float64(4 * n),
				"orgs":     float64(m.NumOrgs()),
				"workers":  float64(runtime.GOMAXPROCS(0)),
			})
		})
	}
}

// BenchmarkSnapshotBuild contrasts the single-worker snapshot build
// (tokenization, θ, histogram, pre-rendering in one goroutine) with
// the fanned-out build. On a single-core runner the two are expected
// to tie; the parallel speedup shows on multi-core CI.
func BenchmarkSnapshotBuild(b *testing.B) {
	now := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	for _, n := range consolidationScales {
		m := benchBuilder(n).BuildSharded(benchNamer, 0)
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"seq", 1},
			{"par", runtime.GOMAXPROCS(0)},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				var snap *Snapshot
				for i := 0; i < b.N; i++ {
					var err error
					snap, err = newSnapshotWorkers(m, "bench", Health{}, now, mode.workers)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				recordBench(b, map[string]float64{
					"networks": float64(n),
					"orgs":     float64(snap.Stats().Orgs),
					"workers":  float64(mode.workers),
				})
			})
		}
	}
}

// BenchmarkLookupAllocs is the zero-allocation guarantee in benchmark
// form: an ASN point lookup assembling the full /v1/as response from
// pre-rendered bytes must report 0 allocs/op.
func BenchmarkLookupAllocs(b *testing.B) {
	snap, err := newSnapshotWorkers(benchBuilder(8192).BuildSharded(benchNamer, 0),
		"bench", Health{}, time.Now(), runtime.GOMAXPROCS(0))
	if err != nil {
		b.Fatal(err)
	}
	// Size the reused buffer for the largest response, the state a
	// pooled server buffer converges to after a few requests.
	maxBody := 0
	for _, tail := range snap.asTails {
		if n := len(asBodyPrefix) + 10 + len(tail); n > maxBody {
			maxBody = n
		}
	}
	buf := make([]byte, 0, maxBody)
	allocs := testing.AllocsPerRun(1000, func() {
		body, ok := snap.AppendASBody(buf[:0], 4242)
		if !ok || len(body) == 0 {
			b.Fatal("empty AS body")
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := asnum.ASN(i%8192 + 1)
		body, ok := snap.AppendASBody(buf[:0], a)
		if !ok || len(body) == 0 {
			b.Fatalf("empty AS body for AS%d", a)
		}
	}
	b.StopTimer()
	if allocs != 0 {
		b.Fatalf("lookup hot path allocates %v times per op, want 0", allocs)
	}
	recordBench(b, map[string]float64{"allocs_per_op": allocs})
}
