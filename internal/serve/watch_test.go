package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/mapdiff"
)

// readSSEEvent reads one complete Server-Sent Event off the stream,
// skipping keep-alive comments.
func readSSEEvent(t *testing.T, sc *bufio.Scanner) (event string, data []byte) {
	t.Helper()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" {
				return event, data
			}
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = []byte(line[len("data: "):])
		}
	}
	t.Fatalf("SSE stream ended early (err %v)", sc.Err())
	return "", nil
}

// normalizeDelta round-trips a delta through its JSON wire form, which
// is what a watch subscriber receives (cluster IDs do not travel).
func normalizeDelta(t *testing.T, d *mapdiff.Delta) *mapdiff.Delta {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var out mapdiff.Delta
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestWatchAcrossDeltaReload is the end-to-end contract: a /v1/watch
// subscriber receives the exact mapdiff edit script of a delta reload
// — the parsed delta itself, not a recomputed approximation — as one
// SSE event, across a real HTTP stream.
func TestWatchAcrossDeltaReload(t *testing.T) {
	const n = 32
	base := variantMapping(0, n)
	next := variantMapping(1, n)
	delta := mapdiff.ComputeDelta(base, next)
	if delta.Empty() {
		t.Fatal("test deltas must not be empty")
	}
	srv, err := NewServer(mustSnapshot(t, base), Options{
		DeltaSource: func(ctx context.Context) (*mapdiff.Delta, error) {
			return delta, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	// The hello event proves the subscription is live before the
	// reload fires — no publish/subscribe race.
	event, data := readSSEEvent(t, sc)
	if event != "hello" {
		t.Fatalf("first event = %q, want hello", event)
	}
	var hello WatchEvent
	if err := json.Unmarshal(data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Seq != 0 || hello.ContentHash != srv.Snapshot().ContentHash() {
		t.Fatalf("hello = %+v, want seq 0 hash %s", hello, srv.Snapshot().ContentHash())
	}

	rr, err := http.Post(ts.URL+"/admin/reload?mode=delta", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("delta reload status = %d", rr.StatusCode)
	}

	event, data = readSSEEvent(t, sc)
	if event != "reload" {
		t.Fatalf("second event = %q, want reload", event)
	}
	var ev WatchEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 {
		t.Errorf("reload seq = %d, want 1", ev.Seq)
	}
	if ev.Mode != LoadModeDelta {
		t.Errorf("reload mode = %q, want %q", ev.Mode, LoadModeDelta)
	}
	if ev.ContentHash != srv.Snapshot().ContentHash() {
		t.Errorf("reload hash = %q, want the new snapshot's %q", ev.ContentHash, srv.Snapshot().ContentHash())
	}
	if ev.Delta == nil {
		t.Fatal("reload event carries no delta")
	}
	if want := normalizeDelta(t, delta); !reflect.DeepEqual(ev.Delta, want) {
		t.Errorf("delta over the wire differs from the applied edit script:\n  got:  %+v\n  want: %+v", ev.Delta, want)
	}
}

// TestWatchFullReloadComputesDelta covers the other publish path: a
// full reload has no parsed delta, so the server diffs old vs new
// itself — but only because a watcher is connected.
func TestWatchFullReloadComputesDelta(t *testing.T) {
	const n = 24
	v := 0
	srv, err := NewServer(mustSnapshot(t, variantMapping(0, n)), Options{
		Source: func(ctx context.Context) (m *cluster.Mapping, e error) {
			return variantMapping(v, n), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if event, _ := readSSEEvent(t, sc); event != "hello" {
		t.Fatalf("first event = %q, want hello", event)
	}

	old := srv.Snapshot().Mapping()
	v = 2
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, data := readSSEEvent(t, sc)
	var ev WatchEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Delta == nil {
		t.Fatal("full-reload watch event carries no delta")
	}
	want := normalizeDelta(t, mapdiff.ComputeDelta(old, srv.Snapshot().Mapping()))
	if !reflect.DeepEqual(ev.Delta, want) {
		t.Errorf("computed delta differs:\n  got:  %+v\n  want: %+v", ev.Delta, want)
	}
}

// TestWatchSlowConsumerEviction exercises the hub directly: a
// subscriber whose queue is full when an event lands is evicted —
// publish never blocks the snapshot swap on a stalled stream.
func TestWatchSlowConsumerEviction(t *testing.T) {
	h := newWatchHub(1)
	snap := mustSnapshot(t, testMapping(t))
	stalled, _, _, err := h.subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	healthy, _, _, err := h.subscribe(0)
	if err != nil {
		t.Fatal(err)
	}

	h.publish(snap, nil) // fills both queues (depth 1)
	ev1 := <-healthy.ch  // healthy drains; stalled does not
	// publish is synchronous and non-blocking by construction: if a
	// stalled subscriber could wedge it, this call would hang the test.
	h.publish(snap, nil)
	ev2, ok := <-healthy.ch
	if !ok || ev1.Seq != 1 || ev2.Seq != 2 {
		t.Fatalf("healthy subscriber got seqs %d, %d (ok %v), want 1, 2", ev1.Seq, ev2.Seq, ok)
	}

	// The stalled subscriber still drains its buffered event, then
	// sees its channel closed.
	if ev := <-stalled.ch; ev.Seq != 1 {
		t.Fatalf("stalled subscriber's buffered event seq = %d, want 1", ev.Seq)
	}
	if _, ok := <-stalled.ch; ok {
		t.Fatal("stalled subscriber's channel not closed after eviction")
	}
	if !stalled.evicted {
		t.Error("stalled subscriber not marked evicted")
	}
	if got := h.evictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := h.subscribers(); got != 1 {
		t.Errorf("subscribers after eviction = %d, want 1", got)
	}
}

// TestWatchResume reconnects with ?since= and receives the missed
// events from the replay ring before any live ones.
func TestWatchResume(t *testing.T) {
	const n = 24
	v := 0
	srv, err := NewServer(mustSnapshot(t, variantMapping(0, n)), Options{
		Source: func(ctx context.Context) (m *cluster.Mapping, e error) {
			return variantMapping(v, n), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First subscriber activates the hub, observes two reloads, drops.
	resp, err := http.Get(ts.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	readSSEEvent(t, sc) // hello
	for _, variant := range []int{1, 2} {
		v = variant
		if _, err := srv.Reload(context.Background()); err != nil {
			t.Fatal(err)
		}
		readSSEEvent(t, sc)
	}
	resp.Body.Close()

	// Second subscriber resumes after seq 1: the ring replays seq 2.
	resp2, err := http.Get(ts.URL + "/v1/watch?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	event, data := readSSEEvent(t, sc2)
	if event != "hello" {
		t.Fatalf("first event = %q, want hello", event)
	}
	var hello WatchEvent
	if err := json.Unmarshal(data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Seq != 2 {
		t.Errorf("hello seq = %d, want 2", hello.Seq)
	}
	event, data = readSSEEvent(t, sc2)
	if event != "reload" {
		t.Fatalf("replayed event = %q, want reload", event)
	}
	var ev WatchEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 || ev.Delta == nil {
		t.Errorf("replayed event = seq %d delta nil? %v, want seq 2 with delta", ev.Seq, ev.Delta == nil)
	}
}

// TestWatchInvalidSince rejects garbage resume points up front.
func TestWatchInvalidSince(t *testing.T) {
	srv := newTestServer(t, Options{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/watch?since=banana", nil)
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if srv.WatchSubscribers() != 0 {
		t.Error("rejected request left a subscription behind")
	}
}

// TestWatchShutdownDrains: cancelling the serve context must end open
// watch streams so the graceful drain terminates — a held-open SSE
// stream must not wedge shutdown for the full drain timeout.
func TestWatchShutdownDrains(t *testing.T) {
	srv := newTestServer(t, Options{RequestTimeout: 30 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ServeListener(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if event, _ := readSSEEvent(t, sc); event != "hello" {
		t.Fatalf("first event = %q, want hello", event)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeListener returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not drain with an open watch stream")
	}
	// The stream ended cleanly from the client's point of view.
	for sc.Scan() {
	}
	if srv.WatchSubscribers() != 0 {
		t.Error("watch subscription survived shutdown")
	}
}
