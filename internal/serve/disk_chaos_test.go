package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// TestDiskChaosStorm is the storage-integrity acceptance test. One
// server lives through the full catalogue of disk failure, with
// concurrent clients hammering lookups the entire time, and every fault
// is injected deterministically (fixed seed, forced fates) so a failure
// reproduces bit-for-bit:
//
//   - a hash-valid but poisoned candidate arrives via reload → the
//     canary refuses it (phase A);
//   - every snapshot-out persist tears mid-write (forced short write) →
//     swaps keep succeeding, torn persists are only counted (phase B);
//   - a generation is corrupted on disk mid-serve → the scrubber
//     quarantines it exactly once (phase C);
//   - the serving snapshot fails its health probe → automatic rollback
//     to the newest verified generation (phase D).
//
// Throughout: zero failed client lookups, and every content hash a
// client ever observed — and everything reachable from the ring — is in
// the verified set. A never-verified artifact must be unreachable from
// any serving path.
func TestDiskChaosStorm(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFS(vfs.OS, dir, faultinject.FSConfig{
		Seed: 1337,
		// Every serving.snapbin write (including its atomic-write temp
		// files) tears: persistence of the swap mirror fails mid-write.
		Force: map[string]faultinject.FSKind{"serving.snapbin": faultinject.FSKindShortWrite},
	})
	ring, err := NewGenerationRing(filepath.Join(dir, "gens"), 3, ffs, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	// All variants share the ASN universe 1..64, so any client lookup
	// is answerable by whichever snapshot is serving; 64 clusters keeps
	// the default 64-sample canary exhaustive.
	v1 := mustSnapshot(t, variantMapping(1, 64))
	v2 := mustSnapshot(t, variantMapping(2, 64))
	v3 := mustSnapshot(t, variantMapping(3, 64))
	poisoned, err := LoadSnapshot(bytes.NewReader(poisonOrgBodies(t, mustSnapshot(t, variantMapping(4, 64)))))
	if err != nil {
		t.Fatal(err)
	}
	verified := map[string]bool{
		v1.ContentHash(): true,
		v2.ContentHash(): true,
		v3.ContentHash(): true,
	}

	var staged atomic.Pointer[Snapshot]
	var badHash atomic.Value // string: hash the health probe flags
	badHash.Store("")
	srv, err := NewServer(v1, Options{
		FS:          ffs,
		Generations: ring,
		SnapshotOut: filepath.Join(dir, "serving.snapbin"),
		Prepared: func(ctx context.Context) (*Snapshot, error) {
			if s := staged.Swap(nil); s != nil {
				return s, nil
			}
			return nil, errors.New("nothing staged")
		},
		HealthProbe: func(s *Snapshot) error {
			if s.ContentHash() == badHash.Load().(string) {
				return errors.New("probe: consistency check flagged the serving snapshot")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Record(v1, time.Unix(1700000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	reload := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/reload", nil))
		return rec.Code
	}

	// Concurrent clients: lookups must never fail and must never
	// observe a snapshot outside the verified set, no matter which
	// phase the storm is in.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		failed   atomic.Int64
		observed sync.Map // content hash → true
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				observed.Store(srv.Snapshot().ContentHash(), true)
				rec := httptest.NewRecorder()
				asn := 1 + (g*8+i)%64
				h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/as/%d", asn), nil))
				if rec.Code != http.StatusOK || !json.Valid(rec.Body.Bytes()) {
					failed.Add(1)
				}
			}
		}(g)
	}

	// Phase A: the poisoned candidate is structurally perfect (its hash
	// was re-signed after corruption) — only the canary can stop it.
	staged.Store(poisoned)
	if code := reload(); code != http.StatusUnprocessableEntity {
		t.Fatalf("phase A: poisoned reload = %d, want 422", code)
	}
	if got := srv.Snapshot().ContentHash(); got != v1.ContentHash() {
		t.Fatalf("phase A: serving %s after rejected reload, want v1", got)
	}
	if n := srv.Metrics().CanaryRejects(); n != 1 {
		t.Fatalf("phase A: CanaryRejects = %d, want 1", n)
	}

	// Phase B: two good promotions. Every snapshot-out persist tears
	// mid-write; the swaps must succeed anyway and only the counter
	// moves.
	staged.Store(v2)
	if code := reload(); code != http.StatusOK {
		t.Fatalf("phase B: v2 reload = %d", code)
	}
	staged.Store(v3)
	if code := reload(); code != http.StatusOK {
		t.Fatalf("phase B: v3 reload = %d", code)
	}
	if got := srv.Snapshot().ContentHash(); got != v3.ContentHash() {
		t.Fatalf("phase B: serving %s, want v3", got)
	}
	if n := srv.Metrics().PersistErrors(); n != 2 {
		t.Fatalf("phase B: PersistErrors = %d, want 2 (one torn persist per swap)", n)
	}

	// Phase C: corrupt the middle generation (v2) on disk mid-serve.
	// The scrubber quarantines it exactly once; re-scrubbing a clean
	// ring finds nothing.
	gens := ring.Generations()
	if len(gens) != 3 {
		t.Fatalf("phase C: ring holds %d generations, want 3", len(gens))
	}
	victim := filepath.Join(ring.Dir(), gens[1].File)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sum := srv.ScrubOnce(context.Background())
	if sum.Quarantined != 1 {
		t.Fatalf("phase C: first scrub Quarantined = %d, want 1", sum.Quarantined)
	}
	if sum.ProbeErr != nil || sum.RolledBack {
		t.Fatalf("phase C: healthy serving snapshot triggered rollback: %+v", sum)
	}
	if sum := srv.ScrubOnce(context.Background()); sum.Quarantined != 0 {
		t.Fatalf("phase C: second scrub Quarantined = %d, want 0 (exactly-once)", sum.Quarantined)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Fatalf("phase C: corrupt generation not moved aside: %v", err)
	}

	// Phase D: the probe turns against v3. The scrub cycle detects it
	// and auto-rolls back — v2's generation is quarantined, so the
	// newest verified generation is v1.
	badHash.Store(v3.ContentHash())
	sum = srv.ScrubOnce(context.Background())
	if sum.ProbeErr == nil || !sum.RolledBack || sum.RollbackErr != nil {
		t.Fatalf("phase D: scrub summary = %+v, want probe failure and rollback", sum)
	}
	if got := srv.Snapshot().ContentHash(); got != v1.ContentHash() {
		t.Fatalf("phase D: serving %s after auto rollback, want v1", got)
	}
	if n := srv.Metrics().Rollbacks("auto"); n != 1 {
		t.Fatalf(`phase D: Rollbacks("auto") = %d, want 1`, n)
	}
	badHash.Store("")
	if sum := srv.ScrubOnce(context.Background()); sum.ProbeErr != nil || sum.RolledBack {
		t.Fatalf("phase D: post-rollback cycle not clean: %+v", sum)
	}

	close(stop)
	wg.Wait()

	// The global invariants the storm must not have bent.
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d client lookups failed during the storm, want 0", n)
	}
	observed.Range(func(k, _ any) bool {
		if !verified[k.(string)] {
			t.Errorf("clients observed unverified snapshot %s", k.(string))
		}
		return true
	})
	for _, g := range ring.Generations() {
		if !verified[g.Hash] {
			t.Errorf("ring lists unverified generation %s", g.Hash)
		}
	}
	if n := ring.QuarantinedTotal(); n != 1 {
		t.Errorf("QuarantinedTotal = %d, want 1", n)
	}
	// The rollback itself tore one more snapshot-out persist.
	if n := srv.Metrics().PersistErrors(); n != 3 {
		t.Errorf("final PersistErrors = %d, want 3", n)
	}
	if n := ffs.Stats().Injected; n < 3 {
		t.Errorf("fault filesystem injected %d faults, want >= 3", n)
	}
}
