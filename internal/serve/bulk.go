package serve

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Bulk endpoint defaults: a request may carry up to defaultBulkMaxLines
// input lines inside defaultMaxBodyBytes of body. Both are tunable via
// Options (borgesd -bulk-max-lines / -max-body-bytes).
const (
	defaultBulkMaxLines = 1 << 20
	defaultMaxBodyBytes = 64 << 20
	defaultWatchBuffer  = 64
)

// bulkFlushThreshold is how many response bytes accumulate before the
// bulk handler pushes a chunk to the client. Large enough to amortize
// syscalls over hundreds of lines, small enough that the client sees
// steady progress and the buffer stays cache-resident.
const bulkFlushThreshold = 32 << 10

// bulkReadBufSize is the pooled bufio.Reader size for bulk request
// bodies; it also caps a single input line (a valid line is an ASN or
// a tiny JSON object — anything longer is malformed by construction).
const bulkReadBufSize = 64 << 10

// bulkReaderPool recycles the request-body readers and bulkWriterPool
// the response chunk buffers, so a steady stream of bulk requests
// allocates nothing per request, let alone per line.
var bulkReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, bulkReadBufSize) },
}

var bulkWriterPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, bulkFlushThreshold+4<<10)
		return &b
	},
}

// handleBulk serves POST /v1/bulk: NDJSON in, NDJSON out. Each
// non-empty input line is one lookup — either a bare ASN ("3356",
// "AS3356") or a JSON object {"asn":3356} — and produces exactly one
// output line, in input order:
//
//	{"asn":3356,"org":{...},"siblings":[...]}   mapped
//	{"asn":64512,"error":"unmapped"}            valid but unknown
//	{"line":7,"error":"invalid input"}          malformed
//
// Malformed lines never abort the stream; the caller keeps its
// line-for-line correspondence and decides what to do. The handler
// pins the serving snapshot once and answers every line from it, so a
// reload landing mid-request cannot produce a response that mixes two
// mappings. Hit lines are assembled from the snapshot's pre-rendered
// tails into a pooled buffer: zero allocations per line in steady
// state. The body is streamed — never buffered whole — and bounded by
// Options.MaxBodyBytes and Options.BulkMaxLines; hitting either cap
// emits a terminal error line and ends the response.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	// Pin the snapshot for the whole request: consistency across a
	// mid-request reload, and — for mapped snapshots — a guarantee the
	// backing stays mapped until the last line is written.
	snap := s.pinnedSnapshot()
	defer snap.Unpin()

	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	br := bulkReaderPool.Get().(*bufio.Reader)
	br.Reset(body)
	bp := bulkWriterPool.Get().(*[]byte)
	buf := (*bp)[:0]
	defer func() {
		br.Reset(nil) // drop the body reference before pooling
		bulkReaderPool.Put(br)
		*bp = buf[:0]
		bulkWriterPool.Put(bp)
	}()

	gz := negotiateGzip(w, r)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)

	// The http.Server's Read/WriteTimeout cover the whole connection;
	// a legitimately long stream must extend them as it progresses.
	// Probed once: not every ResponseWriter supports deadlines
	// (httptest.ResponseRecorder), and the unsupported path allocates
	// an error per call — failing to extend just means the server-wide
	// bound applies.
	rc := http.NewResponseController(w)
	// Without full duplex, the HTTP/1.1 server drains the rest of the
	// request body before letting the first response bytes out — which
	// would block a streaming round-trip and buffer the body we promise
	// not to buffer. Ignored errors here and below: a ResponseWriter
	// that supports neither (httptest.ResponseRecorder) just keeps the
	// default half-duplex, bounded behaviour.
	_ = rc.EnableFullDuplex()
	canDeadline := rc.SetReadDeadline(s.opts.now().Add(s.opts.RequestTimeout)) == nil
	if canDeadline {
		_ = rc.SetWriteDeadline(s.opts.now().Add(2 * s.opts.RequestTimeout))
	}

	var out io.Writer = w
	if gz != nil {
		out = gz
		defer finishGzip(w, gz)
	}
	flusher, _ := w.(http.Flusher)

	// flushChunk pushes the accumulated response lines to the client.
	// It reports false when the client has gone away.
	flushChunk := func() bool {
		if len(buf) == 0 {
			return true
		}
		if _, werr := out.Write(buf); werr != nil {
			return false
		}
		buf = buf[:0]
		if gz != nil {
			_ = gz.Flush()
		}
		if flusher != nil {
			flusher.Flush()
		}
		if canDeadline {
			_ = rc.SetReadDeadline(s.opts.now().Add(s.opts.RequestTimeout))
			_ = rc.SetWriteDeadline(s.opts.now().Add(2 * s.opts.RequestTimeout))
		}
		return true
	}

	var lines, errLines int64
	start := s.opts.now()
	terminal := "" // non-empty: emit `{"error":...}` and stop reading
	lineCap := s.opts.BulkMaxLines

scan:
	for {
		// About to block on the client's next chunk: push what we have
		// so a slowly streaming caller sees results as it writes.
		if br.Buffered() == 0 && len(buf) > 0 && !flushChunk() {
			break scan
		}
		line, err := br.ReadSlice('\n')
		if len(line) > 0 {
			trimmed := trimSpaceBytes(line)
			if errors.Is(err, bufio.ErrBufferFull) {
				// Line longer than the read buffer: no valid input is.
				// Report it, then discard to the newline.
				lines++
				errLines++
				buf = appendLineError(buf, lines, "invalid input")
				for errors.Is(err, bufio.ErrBufferFull) {
					_, err = br.ReadSlice('\n')
				}
			} else if len(trimmed) > 0 {
				lines++
				if lines > int64(lineCap) {
					terminal = "line cap exceeded"
					break scan
				}
				a, ok := parseBulkLine(trimmed)
				if !ok {
					errLines++
					buf = appendLineError(buf, lines, "invalid input")
				} else if buf, ok = snap.AppendASBody(buf, a); !ok {
					errLines++
					buf = appendUnmapped(buf, a)
				}
			}
			if len(buf) >= bulkFlushThreshold && !flushChunk() {
				break scan // client went away
			}
		}
		if err != nil {
			if err != io.EOF && terminal == "" {
				// MaxBytesReader or a broken connection; only the
				// former can still reach the client.
				var mbe *http.MaxBytesError
				if errors.As(err, &mbe) {
					terminal = "body too large"
				}
			}
			break
		}
	}
	if terminal != "" {
		buf = append(buf, `{"error":`...)
		buf = strconv.AppendQuote(buf, terminal)
		buf = append(buf, '}', '\n')
	}
	if len(buf) > 0 {
		_, _ = out.Write(buf)
		buf = buf[:0]
	}
	s.metrics.ObserveBulk(lines, errLines, s.opts.now().Sub(start))
}

// appendUnmapped renders the per-line miss object for a valid but
// unknown ASN.
func appendUnmapped(dst []byte, a asnum.ASN) []byte {
	dst = append(dst, `{"asn":`...)
	dst = strconv.AppendUint(dst, uint64(a), 10)
	return append(dst, `,"error":"unmapped"}`+"\n"...)
}

// appendLineError renders the per-line error object for input that
// could not be parsed at all (keyed by line number — there is no ASN
// to echo back).
func appendLineError(dst []byte, line int64, msg string) []byte {
	dst = append(dst, `{"line":`...)
	dst = strconv.AppendInt(dst, line, 10)
	dst = append(dst, `,"error":`...)
	dst = strconv.AppendQuote(dst, msg)
	return append(dst, '}', '\n')
}

// trimSpaceBytes trims ASCII whitespace without allocating (the input
// is a slice into the read buffer).
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

// parseBulkLine parses one trimmed, non-empty bulk input line: a bare
// decimal ASN, an "AS"/"ASN"-prefixed one, or the JSON object form
// {"asn":N}. Byte-level parsing keeps the per-line hot path free of
// string conversions and encoding/json.
func parseBulkLine(b []byte) (asnum.ASN, bool) {
	if b[0] == '{' {
		return parseBulkJSON(b)
	}
	// Optional AS / ASN prefix, any case.
	if len(b) >= 2 && (b[0] == 'A' || b[0] == 'a') && (b[1] == 'S' || b[1] == 's') {
		b = b[2:]
		if len(b) > 0 && (b[0] == 'N' || b[0] == 'n') {
			b = b[1:]
		}
	}
	return parseASNDigits(b)
}

// parseBulkJSON accepts exactly the documented object form
// {"asn":N}, with arbitrary whitespace between tokens. Anything else
// — extra keys, string values, nesting — is malformed input, reported
// per line rather than parsed leniently.
func parseBulkJSON(b []byte) (asnum.ASN, bool) {
	i := 1 // past '{'
	i = skipSpace(b, i)
	const key = `"asn"`
	if i+len(key) > len(b) || string(b[i:i+len(key)]) != key {
		return 0, false
	}
	i = skipSpace(b, i+len(key))
	if i >= len(b) || b[i] != ':' {
		return 0, false
	}
	i = skipSpace(b, i+1)
	j := i
	for j < len(b) && b[j] >= '0' && b[j] <= '9' {
		j++
	}
	if j == i {
		return 0, false
	}
	a, ok := parseASNDigits(b[i:j])
	if !ok {
		return 0, false
	}
	j = skipSpace(b, j)
	if j != len(b)-1 || b[j] != '}' {
		return 0, false
	}
	return a, true
}

func skipSpace(b []byte, i int) int {
	for i < len(b) && asciiSpace(b[i]) {
		i++
	}
	return i
}

// parseASNDigits parses a non-empty all-digit slice as a 32-bit ASN.
func parseASNDigits(b []byte) (asnum.ASN, bool) {
	if len(b) == 0 || len(b) > 10 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	if n > 1<<32-1 {
		return 0, false
	}
	return asnum.ASN(n), true
}
