package serve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/admission"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/resilience"
)

// doBulk posts an NDJSON body to /v1/bulk and returns the recorder.
func doBulk(t *testing.T, srv *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/bulk", strings.NewReader(body))
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

// bulkLines splits an NDJSON response into its non-empty lines.
func bulkLines(t *testing.T, body string) []string {
	t.Helper()
	var lines []string
	for _, l := range strings.Split(body, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

func TestBulkBasic(t *testing.T) {
	srv := newTestServer(t, Options{})
	rec := doBulk(t, srv, "3356\nAS209\n\n{\"asn\": 27995}\n64512\nnot-an-asn\nasn3549\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := bulkLines(t, rec.Body.String())
	if len(lines) != 6 {
		t.Fatalf("got %d output lines, want 6 (one per non-empty input):\n%s", len(lines), rec.Body.String())
	}
	// Hit lines must be byte-identical to the /v1/as responses.
	for i, asn := range map[int]string{0: "3356", 1: "209", 2: "27995", 5: "3549"} {
		single := do(t, srv, http.MethodGet, "/v1/as/"+asn, nil)
		if got, want := lines[i]+"\n", single.Body.String(); got != want {
			t.Errorf("line %d differs from GET /v1/as/%s:\n  bulk: %s\n  point: %s", i, asn, got, want)
		}
	}
	var miss struct {
		ASN   uint32 `json:"asn"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &miss); err != nil || miss.ASN != 64512 || miss.Error != "unmapped" {
		t.Errorf("unmapped line = %q (err %v), want asn 64512 error unmapped", lines[3], err)
	}
	var bad struct {
		Line  int64  `json:"line"`
		Error string `json:"error"`
	}
	// "not-an-asn" is the 5th non-empty input line.
	if err := json.Unmarshal([]byte(lines[4]), &bad); err != nil || bad.Line != 5 || bad.Error != "invalid input" {
		t.Errorf("malformed line = %q (err %v), want line 5 invalid input", lines[4], err)
	}
	if _, lines, errLines := srv.Metrics().BulkTotals(); lines != 6 || errLines != 2 {
		t.Errorf("bulk metrics = %d lines / %d errors, want 6 / 2", lines, errLines)
	}
}

func TestBulkJSONFormStrict(t *testing.T) {
	srv := newTestServer(t, Options{})
	for _, bad := range []string{
		`{"asn":"3356"}`,          // string value
		`{"asn":3356,"x":1}`,      // extra key
		`{"ASN":3356}`,            // wrong case
		`{asn:3356}`,              // not JSON
		`{"asn":}`,                // no value
		`{"asn":3356`,             // unterminated
		`[3356]`,                  // array
		`AS`, `ASN`, `--1`, `1e3`, // non-object junk
		`4294967296`, // > 32 bits
	} {
		rec := doBulk(t, srv, bad+"\n")
		lines := bulkLines(t, rec.Body.String())
		if len(lines) != 1 || !strings.Contains(lines[0], `"invalid input"`) {
			t.Errorf("input %q: got %q, want one invalid-input line", bad, rec.Body.String())
		}
	}
	// Whitespace-tolerant object form still parses.
	rec := doBulk(t, srv, "{ \"asn\" : 3356 }\n")
	lines := bulkLines(t, rec.Body.String())
	if len(lines) != 1 || !strings.Contains(lines[0], `"org":`) {
		t.Errorf("spaced JSON form: got %q, want a hit", rec.Body.String())
	}
}

func TestBulkLineCap(t *testing.T) {
	srv, err := NewServer(mustSnapshot(t, testMapping(t)), Options{BulkMaxLines: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := doBulk(t, srv, "3356\n3356\n3356\n3356\n3356\n")
	lines := bulkLines(t, rec.Body.String())
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 results + 1 terminal error:\n%s", len(lines), rec.Body.String())
	}
	if last := lines[len(lines)-1]; last != `{"error":"line cap exceeded"}` {
		t.Errorf("terminal line = %q", last)
	}
}

func TestBulkBodyTooLarge(t *testing.T) {
	srv, err := NewServer(mustSnapshot(t, testMapping(t)), Options{MaxBodyBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	rec := doBulk(t, srv, strings.Repeat("3356\n", 100))
	lines := bulkLines(t, rec.Body.String())
	if last := lines[len(lines)-1]; last != `{"error":"body too large"}` {
		t.Errorf("terminal line = %q, full body:\n%s", last, rec.Body.String())
	}
}

func TestBulkOverlongLine(t *testing.T) {
	srv := newTestServer(t, Options{})
	long := strings.Repeat("9", bulkReadBufSize+10)
	rec := doBulk(t, srv, long+"\n3356\n")
	lines := bulkLines(t, rec.Body.String())
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%.200s", len(lines), rec.Body.String())
	}
	if !strings.Contains(lines[0], `"invalid input"`) {
		t.Errorf("overlong line result = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"org":`) {
		t.Errorf("line after overlong input should still resolve, got %q", lines[1])
	}
}

func TestBulkGzip(t *testing.T) {
	srv := newTestServer(t, Options{})
	body := strings.Repeat("3356\n", 200)
	plain := doBulk(t, srv, body)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/bulk", strings.NewReader(body))
	req.Header.Set("Accept-Encoding", "gzip")
	srv.Handler().ServeHTTP(rec, req)
	if enc := rec.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if rec.Body.Len() >= plain.Body.Len() {
		t.Errorf("gzip body (%d bytes) not smaller than identity (%d bytes)", rec.Body.Len(), plain.Body.Len())
	}
	gr, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, plain.Body.Bytes()) {
		t.Error("gunzipped bulk body differs from identity body")
	}

	// q=0 must refuse gzip.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/bulk", strings.NewReader(body))
	req.Header.Set("Accept-Encoding", "gzip;q=0")
	srv.Handler().ServeHTTP(rec, req)
	if enc := rec.Header().Get("Content-Encoding"); enc == "gzip" {
		t.Error("gzip applied despite q=0")
	}
}

func TestSearchGzip(t *testing.T) {
	srv := newTestServer(t, Options{})
	plain := do(t, srv, http.MethodGet, "/v1/search?name=claro", nil)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/search?name=claro", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	srv.Handler().ServeHTTP(rec, req)
	if enc := rec.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	gr, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, plain.Body.Bytes()) {
		t.Error("gunzipped search body differs from identity body")
	}
}

// TestBulkDuringReload pins the request's snapshot: lines streamed
// before and after a mid-request hot reload must all be answered from
// the snapshot that was serving when the request began.
func TestBulkDuringReload(t *testing.T) {
	const n = 64
	v := 0
	srv, err := NewServer(mustSnapshot(t, variantMapping(0, n)), Options{
		Source: func(ctx context.Context) (m *cluster.Mapping, e error) {
			return variantMapping(v, n), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oldSnap := srv.Snapshot()

	// Speak raw HTTP/1.1 chunked so the request body streams exactly
	// when we say (the stock transport buffers small chunked writes),
	// and the handler's flush-on-idle-input pushes each phase's results
	// back before the body ends.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "POST /v1/bulk HTTP/1.1\r\nHost: bulk-test\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	writeChunk := func(lo, hi int) {
		t.Helper()
		var sb strings.Builder
		for a := lo; a <= hi; a++ {
			fmt.Fprintf(&sb, "%d\n", a)
		}
		if _, err := fmt.Fprintf(conn, "%x\r\n%s\r\n", sb.Len(), sb.String()); err != nil {
			t.Fatalf("writing bulk chunk: %v", err)
		}
	}

	writeChunk(1, n/2)
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading bulk response: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var lines []string
	readLines := func(want int) {
		t.Helper()
		for len(lines) < want && sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if len(lines) < want {
			t.Fatalf("stream ended after %d lines, want %d (err %v)", len(lines), want, sc.Err())
		}
	}

	// Phase 1 results must arrive while the request is still open —
	// proof the handler has pinned its snapshot.
	readLines(n / 2)
	// Regroup every cluster and hot-reload while the request is open.
	v = 3
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatalf("mid-request reload: %v", err)
	}
	if srv.Snapshot() == oldSnap {
		t.Fatal("reload did not swap the snapshot")
	}
	writeChunk(n/2+1, n)
	if _, err := io.WriteString(conn, "0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	readLines(n)

	// Every line must match the ORIGINAL snapshot's rendering — no mix
	// of old and new groupings.
	buf := make([]byte, 0, 4096)
	for i, line := range lines {
		want, ok := oldSnap.AppendASBody(buf[:0], asnum.ASN(i+1))
		if !ok {
			t.Fatalf("AS%d missing from pinned snapshot", i+1)
		}
		if line+"\n" != string(want) {
			t.Fatalf("line %d served from the wrong snapshot:\n  got:  %s\n  want: %s", i, line, want)
		}
	}
	// A fresh request sees the new snapshot.
	rec := doBulk(t, srv, "1\n")
	newBody, _ := srv.Snapshot().AppendASBody(buf[:0], 1)
	if got := rec.Body.String(); got != string(newBody) {
		t.Errorf("post-reload bulk not served from new snapshot:\n  got:  %s  want: %s", got, newBody)
	}
}

// TestBulkSteadyStateAllocs is the 0 allocs/line guard: the per-line
// marginal allocation count of a bulk stream of hits must be zero.
// Fixed per-request overhead (MaxBytesReader, ResponseController) is
// allowed; anything scaling with line count is a regression.
func TestBulkSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated under -race (sync.Pool drops)")
	}
	srv := newTestServer(t, Options{})
	measure := func(lines int) float64 {
		body := bytes.Repeat([]byte("3356\n"), lines)
		rd := bytes.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/v1/bulk", rd)
		w := &discardResponseWriter{h: make(http.Header)}
		return testing.AllocsPerRun(50, func() {
			rd.Reset(body)
			req.Body = io.NopCloser(rd)
			srv.handleBulk(w, req)
		})
	}
	small, big := measure(512), measure(512+8192)
	perLine := (big - small) / 8192
	if perLine > 0.01 {
		t.Fatalf("bulk hot path allocates %.4f per line (%.1f @512 lines, %.1f @8704 lines), want 0",
			perLine, small, big)
	}
}

// discardResponseWriter is a header-only ResponseWriter whose body
// writes cost nothing, so allocation measurements see only the
// handler's own work.
type discardResponseWriter struct{ h http.Header }

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) WriteHeader(int)             {}
func (w *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// TestBulkShedsWithRetryAfter drives the limiter to saturation and
// asserts a refused bulk request carries the Retry-After hint that
// resilience.ParseRetryAfter (and therefore the Go client's backoff)
// consumes — the full emit→parse round trip.
func TestBulkShedsWithRetryAfter(t *testing.T) {
	hold := make(chan struct{})
	held := make(chan struct{}, 8)
	srv := newTestServer(t, Options{
		Admission: &admission.Config{MaxInflight: 1, RetryAfter: 2 * time.Second},
		testHold: func(endpoint string) {
			if endpoint == "as" {
				held <- struct{}{}
				<-hold
			}
		},
	})
	// Pin one Point request in flight so the limiter is saturated.
	donec := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/as/3356", nil))
		donec <- rec
	}()
	<-held

	rec := doBulk(t, srv, "3356\n")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated bulk status = %d, want 503", rec.Code)
	}
	hint := resilience.ParseRetryAfter(rec.Header().Get("Retry-After"), time.Now())
	if hint != 2*time.Second {
		t.Errorf("parsed Retry-After = %v, want 2s (header %q)", hint, rec.Header().Get("Retry-After"))
	}
	if st := srv.Admission().Stats(); st.ShedBulk != 1 {
		t.Errorf("ShedBulk = %d, want 1", st.ShedBulk)
	}
	if got := srv.Metrics().Sheds("bulk"); got != 1 {
		t.Errorf("bulk endpoint sheds = %d, want 1", got)
	}
	metrics := do(t, srv, http.MethodGet, "/metrics", nil).Body.String()
	for _, want := range []string{
		`borgesd_admission_sheds_total{class="bulk"} 1`,
		"borgesd_bulk_sheds_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	close(hold)
	<-donec
	// With the slot free again, bulk proceeds.
	rec = doBulk(t, srv, "3356\n")
	if rec.Code != http.StatusOK {
		t.Errorf("post-release bulk status = %d, want 200", rec.Code)
	}
}
