package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// benchSnapshot serves a 4096-network universe grouped into
// organizations of mixed sizes — large enough that lookups miss caches,
// small enough to build instantly.
func benchSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	snap, err := NewSnapshot(variantMapping(3, 4096), "bench")
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

// BenchmarkSnapshotLookup measures the in-process lookup path: one
// atomic snapshot load plus the ASN index hit.
func BenchmarkSnapshotLookup(b *testing.B) {
	snap := benchSnapshot(b)
	srv, err := NewServer(snap, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			c := srv.Snapshot().Lookup(asnum.ASN(i%4096 + 1))
			if c == nil {
				b.Errorf("AS%d unmapped", i%4096+1)
				return
			}
		}
	})
}

// BenchmarkSnapshotLookupHTTP measures concurrent GET /v1/as/{asn}
// against a real httptest.Server over TCP — the end-to-end serving
// path (routing, handler, JSON encoding, metrics observation). This is
// the anchor number for future serving-layer optimisation PRs.
func BenchmarkSnapshotLookupHTTP(b *testing.B) {
	snap := benchSnapshot(b)
	srv, err := NewServer(snap, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 256}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			resp, err := client.Get(fmt.Sprintf("%s/v1/as/%d", ts.URL, i%4096+1))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}
