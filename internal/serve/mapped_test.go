package serve

import (
	"context"
	"net/http"
	"path/filepath"
	"testing"

	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// writeTestArtifact persists the canonical test snapshot as a binary
// artifact and returns its path plus the in-memory original for
// equivalence checks.
func writeTestArtifact(t *testing.T) (string, *Snapshot) {
	t.Helper()
	orig := mustSnapshot(t, testMapping(t))
	path := filepath.Join(t.TempDir(), "snapshot.snapbin")
	if _, err := WriteSnapshotFile(path, orig); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	return path, orig
}

// TestLoadSnapshotFileMappedEquivalence: a mapped load must be
// indistinguishable from a buffered one in every served byte, and its
// backing must follow the documented lifecycle — pins hold the mapping
// open, retire drains it.
func TestLoadSnapshotFileMappedEquivalence(t *testing.T) {
	path, orig := writeTestArtifact(t)
	snap, err := LoadSnapshotFileMapped(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFileMapped: %v", err)
	}
	snapEqual(t, orig, snap)
	if !snap.MemoryMapped() {
		t.Skip("platform cannot mmap; buffered fallback already verified equivalent")
	}

	// A pin taken before retirement keeps the body bytes readable
	// after it; the mapping unmaps only when the pin drops.
	if !snap.Pin() {
		t.Fatal("Pin failed on a live mapped snapshot")
	}
	snap.retire()
	if body, ok := snap.AppendASBody(nil, 3356); !ok || len(body) == 0 {
		t.Fatal("pinned snapshot lost its body bytes after retire")
	}
	snap.Unpin()
	if snap.Pin() {
		t.Fatal("Pin succeeded after the backing drained to zero")
	}
}

// TestLoadSnapshotFileMappedFSFallback: any filesystem other than the
// real one (here, a fault-injection wrapper) must take the buffered
// path — mmap would bypass the vfs seam the chaos suites rely on.
func TestLoadSnapshotFileMappedFSFallback(t *testing.T) {
	path, orig := writeTestArtifact(t)
	ffs := faultinject.NewFS(vfs.OS, filepath.Dir(path), faultinject.FSConfig{})
	snap, err := LoadSnapshotFileMappedFS(ffs, path)
	if err != nil {
		t.Fatalf("LoadSnapshotFileMappedFS: %v", err)
	}
	if snap.MemoryMapped() {
		t.Fatal("non-OS filesystem produced a memory-mapped snapshot")
	}
	snapEqual(t, orig, snap)
}

// TestMappedSwapRetiresBacking: swapping a mapped snapshot out must
// retire its backing once in-flight pins drain, while the replacement
// keeps serving the same answers.
func TestMappedSwapRetiresBacking(t *testing.T) {
	path, _ := writeTestArtifact(t)
	old, err := LoadSnapshotFileMapped(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFileMapped: %v", err)
	}
	if !old.MemoryMapped() {
		t.Skip("platform cannot mmap")
	}
	srv, err := NewServer(old, Options{Prepared: SnapshotFileSourceMapped(path)})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	rec := do(t, srv, http.MethodGet, "/v1/as/3356", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/as/3356 before swap: %d %s", rec.Code, rec.Body.String())
	}
	next, err := srv.Reload(context.Background())
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if next == old {
		t.Fatal("reload did not produce a new snapshot")
	}
	if old.Pin() {
		t.Fatal("swapped-out snapshot's backing did not drain")
	}
	if !next.MemoryMapped() {
		t.Fatal("reloaded snapshot is not memory-mapped")
	}
	rec = do(t, srv, http.MethodGet, "/v1/as/3356", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/as/3356 after swap: %d %s", rec.Code, rec.Body.String())
	}
}
