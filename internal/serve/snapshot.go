// Package serve turns a consolidated AS-to-Organization mapping into a
// queryable network service: an immutable, pre-indexed Snapshot served
// lock-free behind an atomic pointer, JSON lookup/search/stats
// endpoints, hot snapshot reload without dropping in-flight requests,
// and per-endpoint operational metrics.
//
// The serving layer is read-mostly by construction. A Snapshot is built
// once (indexes, θ, histogram) and never mutated afterwards; the Server
// publishes it through an atomic.Pointer so concurrent request handlers
// take a consistent view with a single atomic load. Reloads build and
// validate a complete replacement Snapshot off to the side and swap it
// in atomically — a failed reload leaves the previous snapshot serving.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/orgfactor"
)

// SizeBucket is one bar of a snapshot's organization-size histogram.
// Buckets are powers of two: [1,1], [2,2], [3,4], [5,8], [9,16], …
type SizeBucket struct {
	// Lo and Hi bound the member counts falling in this bucket
	// (inclusive).
	Lo, Hi int
	// Orgs is the number of organizations of that size.
	Orgs int
}

// Label renders the bucket bounds ("1", "2", "3-4", …).
func (b SizeBucket) Label() string {
	if b.Lo == b.Hi {
		return fmt.Sprintf("%d", b.Lo)
	}
	return fmt.Sprintf("%d-%d", b.Lo, b.Hi)
}

// Health status values.
const (
	// HealthOK marks a snapshot built from a fault-free run (or loaded
	// from a file, whose provenance is unknown but complete).
	HealthOK = "ok"
	// HealthDegraded marks a snapshot whose producing run quarantined
	// work: the mapping is complete over the universe but may be
	// missing merges the dropped items would have contributed.
	HealthDegraded = "degraded"
)

// Health describes the provenance quality of a snapshot's mapping. A
// degraded snapshot still serves — a mapping missing a few merges
// beats no mapping — but /healthz, /v1/stats, and /metrics surface the
// state so operators and load balancers can distinguish "clean" from
// "best effort under faults".
type Health struct {
	// Status is HealthOK or HealthDegraded.
	Status string `json:"status"`
	// Quarantined counts the items the producing run dropped after
	// exhausting their retry budget (0 for file-loaded mappings).
	Quarantined int `json:"quarantined,omitempty"`
	// Detail is a short operator-facing annotation, e.g. which
	// inference chains degraded.
	Detail string `json:"detail,omitempty"`
}

// Stats are a snapshot's precomputed corpus-level statistics.
type Stats struct {
	// Orgs and ASNs count organizations and covered networks.
	Orgs, ASNs int
	// Theta is the normalised Organization Factor (§5.4).
	Theta float64
	// MultiASOrgs counts organizations managing more than one network.
	MultiASOrgs int
	// LargestOrg is the member count of the biggest organization.
	LargestOrg int
	// SizeHistogram is the power-of-two organization-size distribution.
	SizeHistogram []SizeBucket
}

// Snapshot is an immutable, pre-indexed view of a Mapping ready to
// serve point lookups, name search, and statistics. All fields are
// computed at construction; a Snapshot is safe for unbounded concurrent
// use without locks.
type Snapshot struct {
	mapping *cluster.Mapping
	stats   Stats

	// tokens maps each lowercase name token to the sorted cluster IDs
	// whose display name contains it; tokenList keeps the tokens sorted
	// for deterministic substring scans.
	tokens    map[string][]int
	tokenList []string
	// lowerNames[i] is the lowercase display name of cluster i, for
	// multi-word substring queries that cross token boundaries.
	lowerNames []string

	source   string
	loadedAt time.Time
	health   Health
}

// NewSnapshot indexes a mapping for serving. The source string labels
// where the mapping came from (a file path, "pipeline", "synthetic:…")
// and is reported by /v1/stats and /metrics. It rejects nil or empty
// mappings — a serving snapshot must always answer lookups.
func NewSnapshot(m *cluster.Mapping, source string) (*Snapshot, error) {
	return newSnapshotAt(m, source, Health{Status: HealthOK}, time.Now())
}

// NewSnapshotWithHealth is NewSnapshot carrying the producing run's
// health, for pipeline-backed daemons that want degradation to travel
// with the mapping it describes.
func NewSnapshotWithHealth(m *cluster.Mapping, source string, h Health) (*Snapshot, error) {
	return newSnapshotAt(m, source, h, time.Now())
}

// newSnapshotAt is NewSnapshot with an injectable clock for tests.
func newSnapshotAt(m *cluster.Mapping, source string, health Health, now time.Time) (*Snapshot, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil mapping")
	}
	if m.NumASNs() == 0 || m.NumOrgs() == 0 {
		return nil, fmt.Errorf("serve: refusing to serve an empty mapping (%d orgs, %d networks)",
			m.NumOrgs(), m.NumASNs())
	}
	theta, err := orgfactor.Theta(m)
	if err != nil {
		return nil, fmt.Errorf("serve: mapping fails θ validation: %w", err)
	}
	if health.Status == "" {
		health.Status = HealthOK
	}
	s := &Snapshot{
		mapping:    m,
		tokens:     make(map[string][]int),
		lowerNames: make([]string, len(m.Clusters)),
		source:     source,
		loadedAt:   now,
		health:     health,
	}
	s.stats = Stats{
		Orgs:  m.NumOrgs(),
		ASNs:  m.NumASNs(),
		Theta: theta,
	}
	for i := range m.Clusters {
		c := &m.Clusters[i]
		if n := c.Size(); n > 1 {
			s.stats.MultiASOrgs++
			if n > s.stats.LargestOrg {
				s.stats.LargestOrg = n
			}
		} else if s.stats.LargestOrg == 0 {
			s.stats.LargestOrg = 1
		}
		lower := strings.ToLower(c.Name)
		s.lowerNames[i] = lower
		for _, tok := range tokenize(lower) {
			ids := s.tokens[tok]
			if len(ids) == 0 || ids[len(ids)-1] != i {
				s.tokens[tok] = append(ids, i)
			}
		}
	}
	s.tokenList = make([]string, 0, len(s.tokens))
	for tok := range s.tokens {
		s.tokenList = append(s.tokenList, tok)
	}
	sort.Strings(s.tokenList)
	s.stats.SizeHistogram = sizeHistogram(m.Sizes())
	return s, nil
}

// tokenize splits an already-lowercased name into indexable tokens
// (maximal runs of letters and digits).
func tokenize(lower string) []string {
	var out []string
	start := -1
	for i, r := range lower {
		alnum := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 0x80
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			out = append(out, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, lower[start:])
	}
	return out
}

// sizeHistogram buckets descending cluster sizes into power-of-two
// bins.
func sizeHistogram(sizes []int) []SizeBucket {
	counts := make(map[int]int) // bucket index -> org count
	maxBucket := 0
	for _, n := range sizes {
		b := 0
		for lo, hi := 1, 1; ; b, lo, hi = b+1, hi+1, hi*2 {
			if n >= lo && n <= hi {
				break
			}
		}
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	out := make([]SizeBucket, 0, maxBucket+1)
	lo, hi := 1, 1
	for b := 0; b <= maxBucket; b++ {
		out = append(out, SizeBucket{Lo: lo, Hi: hi, Orgs: counts[b]})
		lo, hi = hi+1, hi*2
	}
	return out
}

// Mapping returns the underlying consolidated mapping. Callers must
// treat it as read-only.
func (s *Snapshot) Mapping() *cluster.Mapping { return s.mapping }

// Stats returns the snapshot's precomputed statistics.
func (s *Snapshot) Stats() Stats { return s.stats }

// Source returns the label describing where the mapping came from.
func (s *Snapshot) Source() string { return s.source }

// LoadedAt returns when the snapshot was constructed.
func (s *Snapshot) LoadedAt() time.Time { return s.loadedAt }

// Health returns the provenance health the snapshot was built with.
func (s *Snapshot) Health() Health { return s.health }

// Lookup returns the organization containing a, or nil when a is
// unmapped.
func (s *Snapshot) Lookup(a asnum.ASN) *cluster.Cluster { return s.mapping.ClusterOf(a) }

// Org returns the organization with the given cluster ID, or nil.
func (s *Snapshot) Org(id int) *cluster.Cluster {
	if id < 0 || id >= len(s.mapping.Clusters) {
		return nil
	}
	return &s.mapping.Clusters[id]
}

// Search returns up to limit organizations whose display name contains
// the query (case-insensitive), in ascending cluster-ID order. A
// single-word query scans the token index; a multi-word query falls
// back to whole-name substring matching. limit <= 0 means no limit.
func (s *Snapshot) Search(query string, limit int) []*cluster.Cluster {
	q := strings.ToLower(strings.TrimSpace(query))
	if q == "" {
		return nil
	}
	if limit <= 0 {
		limit = len(s.mapping.Clusters)
	}
	var ids []int
	if strings.ContainsAny(q, " \t") {
		for i, name := range s.lowerNames {
			if strings.Contains(name, q) {
				ids = append(ids, i)
			}
		}
	} else {
		seen := make(map[int]bool)
		for _, tok := range s.tokenList {
			if !strings.Contains(tok, q) {
				continue
			}
			for _, id := range s.tokens[tok] {
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
		}
		sort.Ints(ids)
	}
	if len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]*cluster.Cluster, len(ids))
	for i, id := range ids {
		out[i] = &s.mapping.Clusters[id]
	}
	return out
}

// SearchBrownout is the degraded-mode variant of Search used under
// admission pressure: instead of ranking the whole token index by
// substring containment (a full scan of tokenList), it binary-searches
// the sorted token list and walks only tokens that have the query as a
// prefix, stopping as soon as limit organizations are collected.
// Recall is reduced by design — mid-token matches and cross-token
// multi-word queries are missed — mirroring how PR 3's degraded
// snapshots trade completeness for availability. limit must be > 0.
func (s *Snapshot) SearchBrownout(query string, limit int) []*cluster.Cluster {
	q := strings.ToLower(strings.TrimSpace(query))
	if q == "" || limit <= 0 {
		return nil
	}
	// Multi-word queries degrade to their first token's prefix scan.
	if i := strings.IndexAny(q, " \t"); i > 0 {
		q = q[:i]
	}
	seen := make(map[int]bool)
	var ids []int
	for i := sort.SearchStrings(s.tokenList, q); i < len(s.tokenList); i++ {
		tok := s.tokenList[i]
		if !strings.HasPrefix(tok, q) {
			break
		}
		for _, id := range s.tokens[tok] {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		if len(ids) >= limit {
			break
		}
	}
	if len(ids) > limit {
		ids = ids[:limit]
	}
	sort.Ints(ids)
	out := make([]*cluster.Cluster, len(ids))
	for i, id := range ids {
		out[i] = &s.mapping.Clusters[id]
	}
	return out
}

// FeatureNames renders a cluster's contributing features in the
// paper's shorthand (OID_W, OID_P, N&A, R&R, F).
func FeatureNames(c *cluster.Cluster) []string {
	var out []string
	for f := 0; f < cluster.NumFeatures; f++ {
		if c.Features[f] {
			out = append(out, cluster.Feature(f).String())
		}
	}
	return out
}
