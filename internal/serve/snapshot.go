// Package serve turns a consolidated AS-to-Organization mapping into a
// queryable network service: an immutable, pre-indexed Snapshot served
// lock-free behind an atomic pointer, JSON lookup/search/stats
// endpoints, hot snapshot reload without dropping in-flight requests,
// and per-endpoint operational metrics.
//
// The serving layer is read-mostly by construction. A Snapshot is built
// once (indexes, θ, histogram, pre-rendered response bodies) and never
// mutated afterwards; the Server publishes it through an atomic.Pointer
// so concurrent request handlers take a consistent view with a single
// atomic load. Reloads build and validate a complete replacement
// Snapshot off to the side and swap it in atomically — a failed reload
// leaves the previous snapshot serving.
//
// Snapshot construction fans out across GOMAXPROCS workers: each takes
// a contiguous cluster range and produces its lowercase names, token
// postings, and pre-rendered JSON bodies, while θ and the size
// histogram compute concurrently from the mapping's cached size slice.
// Contiguous ranges keep per-token posting lists ascending when merged
// in worker order, so the parallel build is deterministic and
// bit-identical to a single-worker build.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/orgfactor"
	"github.com/nu-aqualab/borges/internal/snapbin"
)

// SizeBucket is one bar of a snapshot's organization-size histogram.
// Buckets are powers of two: [1,1], [2,2], [3,4], [5,8], [9,16], …
type SizeBucket struct {
	// Lo and Hi bound the member counts falling in this bucket
	// (inclusive).
	Lo, Hi int
	// Orgs is the number of organizations of that size.
	Orgs int
}

// Label renders the bucket bounds ("1", "2", "3-4", …).
func (b SizeBucket) Label() string {
	if b.Lo == b.Hi {
		return fmt.Sprintf("%d", b.Lo)
	}
	return fmt.Sprintf("%d-%d", b.Lo, b.Hi)
}

// Health status values.
const (
	// HealthOK marks a snapshot built from a fault-free run (or loaded
	// from a file, whose provenance is unknown but complete).
	HealthOK = "ok"
	// HealthDegraded marks a snapshot whose producing run quarantined
	// work: the mapping is complete over the universe but may be
	// missing merges the dropped items would have contributed.
	HealthDegraded = "degraded"
)

// Health describes the provenance quality of a snapshot's mapping. A
// degraded snapshot still serves — a mapping missing a few merges
// beats no mapping — but /healthz, /v1/stats, and /metrics surface the
// state so operators and load balancers can distinguish "clean" from
// "best effort under faults".
type Health struct {
	// Status is HealthOK or HealthDegraded.
	Status string `json:"status"`
	// Quarantined counts the items the producing run dropped after
	// exhausting their retry budget (0 for file-loaded mappings).
	Quarantined int `json:"quarantined,omitempty"`
	// Detail is a short operator-facing annotation, e.g. which
	// inference chains degraded.
	Detail string `json:"detail,omitempty"`
}

// Stats are a snapshot's precomputed corpus-level statistics.
type Stats struct {
	// Orgs and ASNs count organizations and covered networks.
	Orgs, ASNs int
	// Theta is the normalised Organization Factor (§5.4).
	Theta float64
	// MultiASOrgs counts organizations managing more than one network.
	MultiASOrgs int
	// LargestOrg is the member count of the biggest organization.
	LargestOrg int
	// SizeHistogram is the power-of-two organization-size distribution.
	SizeHistogram []SizeBucket
}

// Snapshot is an immutable, pre-indexed view of a Mapping ready to
// serve point lookups, name search, and statistics. All fields are
// computed at construction; a Snapshot is safe for unbounded concurrent
// use without locks.
type Snapshot struct {
	mapping *cluster.Mapping
	stats   Stats

	// tokens maps each lowercase name token to the sorted cluster IDs
	// whose display name contains it; tokenList keeps the tokens sorted
	// for deterministic substring scans.
	tokens    map[string][]int
	tokenList []string
	// lowerNames[i] is the lowercase display name of cluster i, for
	// multi-word substring queries that cross token boundaries.
	lowerNames []string

	// orgBodies[i] is the complete pre-rendered /v1/org/{i} response
	// (trailing newline included); asTails[i] is everything after the
	// requested ASN's digits in a /v1/as response. Point lookups
	// therefore serve bytes assembled at build time — the hot path
	// allocates nothing and encodes nothing.
	orgBodies [][]byte
	asTails   [][]byte

	// scratchPool recycles per-query search state (dedup bitset, posting
	// heads, result ids) so Search and SearchBrownout stay off the heap.
	scratchPool sync.Pool

	source   string
	loadedAt time.Time
	health   Health

	// loadMode records how the snapshot came to be (LoadModeFull,
	// LoadModeBinary, LoadModeDelta); contentHash is the snapbin
	// content hash of the snapshot's logical content, preset by the
	// binary loader and computed on first use otherwise.
	loadMode    string
	contentHash string
	hashOnce    sync.Once

	// backing, when non-nil, refcounts the memory mapping that
	// orgBodies/asTails alias (see backing.go). Nil for heap-backed
	// snapshots.
	backing *mmapBacking
}

// Load modes reported by /v1/stats and /admin/reload: how the serving
// snapshot was produced.
const (
	// LoadModeFull: built from scratch (JSONL parse or pipeline run,
	// then tokenize + pre-render).
	LoadModeFull = "full"
	// LoadModeBinary: decoded from a snapbin artifact, no rebuild.
	LoadModeBinary = "binary"
	// LoadModeDelta: patched incrementally from the previous snapshot
	// by a mapping delta.
	LoadModeDelta = "delta"
)

// NewSnapshot indexes a mapping for serving. The source string labels
// where the mapping came from (a file path, "pipeline", "synthetic:…")
// and is reported by /v1/stats and /metrics. It rejects nil or empty
// mappings — a serving snapshot must always answer lookups.
func NewSnapshot(m *cluster.Mapping, source string) (*Snapshot, error) {
	return newSnapshotAt(m, source, Health{Status: HealthOK}, time.Now())
}

// NewSnapshotWithHealth is NewSnapshot carrying the producing run's
// health, for pipeline-backed daemons that want degradation to travel
// with the mapping it describes.
func NewSnapshotWithHealth(m *cluster.Mapping, source string, h Health) (*Snapshot, error) {
	return newSnapshotAt(m, source, h, time.Now())
}

// newSnapshotAt is NewSnapshot with an injectable clock for tests.
func newSnapshotAt(m *cluster.Mapping, source string, health Health, now time.Time) (*Snapshot, error) {
	return newSnapshotWorkers(m, source, health, now, runtime.GOMAXPROCS(0))
}

// indexShard is one worker's slice of the snapshot index build.
type indexShard struct {
	tokens map[string][]int
	err    error
}

// newSnapshotWorkers builds a snapshot with an explicit worker count
// (tests pin it; callers go through NewSnapshot or Options.BuildWorkers).
func newSnapshotWorkers(m *cluster.Mapping, source string, health Health, now time.Time, workers int) (*Snapshot, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil mapping")
	}
	if m.NumASNs() == 0 || m.NumOrgs() == 0 {
		return nil, fmt.Errorf("serve: refusing to serve an empty mapping (%d orgs, %d networks)",
			m.NumOrgs(), m.NumASNs())
	}
	if health.Status == "" {
		health.Status = HealthOK
	}
	n := len(m.Clusters)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	s := &Snapshot{
		mapping:    m,
		lowerNames: make([]string, n),
		orgBodies:  make([][]byte, n),
		asTails:    make([][]byte, n),
		source:     source,
		loadedAt:   now,
		health:     health,
		loadMode:   LoadModeFull,
	}
	s.scratchPool.New = func() any {
		return &searchScratch{bits: make([]uint64, (n+63)/64)}
	}

	// θ and the histogram run concurrently with the index workers; both
	// consume the mapping's cached descending size slice.
	var (
		theta    float64
		thetaErr error
		statsWG  sync.WaitGroup
	)
	statsWG.Add(1)
	stats := func() {
		defer statsWG.Done()
		theta, thetaErr = orgfactor.Theta(m)
		if thetaErr != nil {
			return
		}
		sizes := m.Sizes()
		s.stats = Stats{
			Orgs:          m.NumOrgs(),
			ASNs:          m.NumASNs(),
			MultiASOrgs:   multiCount(sizes),
			LargestOrg:    sizes[0],
			SizeHistogram: sizeHistogram(sizes),
		}
	}

	shards := make([]indexShard, workers)
	chunk := (n + workers - 1) / workers
	if workers == 1 {
		stats()
		s.buildRange(&shards[0], 0, n)
	} else {
		go stats()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo >= hi {
				shards[w].tokens = map[string][]int{}
				continue
			}
			wg.Add(1)
			go func(sh *indexShard, lo, hi int) {
				defer wg.Done()
				s.buildRange(sh, lo, hi)
			}(&shards[w], lo, hi)
		}
		wg.Wait()
	}
	statsWG.Wait()
	if thetaErr != nil {
		return nil, fmt.Errorf("serve: mapping fails θ validation: %w", thetaErr)
	}
	for w := range shards {
		if shards[w].err != nil {
			return nil, fmt.Errorf("serve: pre-rendering responses: %w", shards[w].err)
		}
	}
	s.stats.Theta = theta

	// Merge per-worker token maps in worker order: ranges are contiguous
	// and ascending, so concatenation keeps every posting list sorted —
	// the same lists a sequential scan would build.
	merged := shards[0].tokens
	for w := 1; w < len(shards); w++ {
		for tok, ids := range shards[w].tokens {
			merged[tok] = append(merged[tok], ids...)
		}
	}
	s.tokens = merged
	s.tokenList = make([]string, 0, len(merged))
	for tok := range merged {
		s.tokenList = append(s.tokenList, tok)
	}
	sort.Strings(s.tokenList)
	return s, nil
}

// buildRange indexes and pre-renders clusters [lo, hi): lowercase
// names, token postings, and the /v1/org and /v1/as response bytes.
// Workers write disjoint index ranges of the shared slices.
func (s *Snapshot) buildRange(sh *indexShard, lo, hi int) {
	sh.tokens = make(map[string][]int, (hi-lo)/2+1)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	for i := lo; i < hi; i++ {
		c := &s.mapping.Clusters[i]
		lower := strings.ToLower(c.Name)
		s.lowerNames[i] = lower
		for _, tok := range tokenize(lower) {
			ids := sh.tokens[tok]
			if len(ids) == 0 || ids[len(ids)-1] != i {
				sh.tokens[tok] = append(ids, i)
			}
		}
		body, tail, err := renderBodies(c, &buf, enc)
		if err != nil {
			sh.err = err
			return
		}
		s.orgBodies[i] = body
		s.asTails[i] = tail
	}
}

// renderBodies pre-renders one cluster's /v1/org body (trailing
// newline included) and /v1/as tail. buf and enc are reusable
// scratch (enc must encode into buf with HTML escaping off). The
// delta-patch path shares this with buildRange so an incrementally
// rebuilt cluster is byte-identical to a from-scratch one.
func renderBodies(c *cluster.Cluster, buf *bytes.Buffer, enc *json.Encoder) (body, tail []byte, err error) {
	buf.Reset()
	if err := enc.Encode(orgToJSON(c)); err != nil {
		return nil, nil, fmt.Errorf("org %d: %w", c.ID, err)
	}
	org := buf.Bytes()
	body = make([]byte, len(org), len(org)*2+len(asTailOrg)+len(asTailSiblings)+12*len(c.ASNs))
	copy(body, org)
	tail = body[len(org):]
	tail = append(tail, asTailOrg...)
	tail = append(tail, org[:len(org)-1]...) // org JSON sans newline
	tail = append(tail, asTailSiblings...)
	tail = appendASNList(tail, c.ASNs)
	tail = append(tail, '}', '\n')
	return body, tail, nil
}

// The /v1/as response is `{"asn":<n>` + asTails[cluster]:
const (
	asBodyPrefix   = `{"asn":`
	asTailOrg      = `,"org":`
	asTailSiblings = `,"siblings":`
)

// appendASNList renders a JSON array of ASN numbers.
func appendASNList(dst []byte, asns []asnum.ASN) []byte {
	dst = append(dst, '[')
	for i, a := range asns {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, uint64(a), 10)
	}
	return append(dst, ']')
}

// multiCount counts entries > 1 in a descending size slice.
func multiCount(sizes []int) int {
	for i, n := range sizes {
		if n <= 1 {
			return i
		}
	}
	return len(sizes)
}

// tokenize splits an already-lowercased name into indexable tokens
// (maximal runs of letters and digits).
func tokenize(lower string) []string {
	var out []string
	start := -1
	for i, r := range lower {
		alnum := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 0x80
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			out = append(out, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, lower[start:])
	}
	return out
}

// sizeHistogram buckets descending cluster sizes into power-of-two
// bins.
func sizeHistogram(sizes []int) []SizeBucket {
	counts := make(map[int]int) // bucket index -> org count
	maxBucket := 0
	for _, n := range sizes {
		b := 0
		for lo, hi := 1, 1; ; b, lo, hi = b+1, hi+1, hi*2 {
			if n >= lo && n <= hi {
				break
			}
		}
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	out := make([]SizeBucket, 0, maxBucket+1)
	lo, hi := 1, 1
	for b := 0; b <= maxBucket; b++ {
		out = append(out, SizeBucket{Lo: lo, Hi: hi, Orgs: counts[b]})
		lo, hi = hi+1, hi*2
	}
	return out
}

// Mapping returns the underlying consolidated mapping. Callers must
// treat it as read-only.
func (s *Snapshot) Mapping() *cluster.Mapping { return s.mapping }

// Stats returns the snapshot's precomputed statistics.
func (s *Snapshot) Stats() Stats { return s.stats }

// Source returns the label describing where the mapping came from.
func (s *Snapshot) Source() string { return s.source }

// LoadedAt returns when the snapshot was constructed.
func (s *Snapshot) LoadedAt() time.Time { return s.loadedAt }

// Health returns the provenance health the snapshot was built with.
func (s *Snapshot) Health() Health { return s.health }

// LoadMode reports how the snapshot was produced: LoadModeFull,
// LoadModeBinary, or LoadModeDelta.
func (s *Snapshot) LoadMode() string { return s.loadMode }

// ContentHash returns the snapbin content hash of the snapshot's
// logical content (hex SHA-256). Snapshots loaded from a binary
// artifact carry the verified file hash; full builds and delta
// patches compute it on first call — one streaming encode pass,
// memoized for the snapshot's lifetime. Two snapshots hash equal iff
// their serving content (mapping, indexes, pre-rendered bodies,
// stats) is byte-identical, which is what a replica fleet compares.
func (s *Snapshot) ContentHash() string {
	s.hashOnce.Do(func() {
		if s.contentHash == "" {
			s.contentHash = snapbin.HashImage(s.image())
		}
	})
	return s.contentHash
}

// Lookup returns the organization containing a, or nil when a is
// unmapped. The lookup is a bounded binary search over the mapping's
// sorted index — no hashing, no allocation.
func (s *Snapshot) Lookup(a asnum.ASN) *cluster.Cluster { return s.mapping.ClusterOf(a) }

// Org returns the organization with the given cluster ID, or nil.
func (s *Snapshot) Org(id int) *cluster.Cluster {
	if id < 0 || id >= len(s.mapping.Clusters) {
		return nil
	}
	return &s.mapping.Clusters[id]
}

// OrgBody returns the pre-rendered /v1/org JSON response for the given
// cluster ID (trailing newline included), or nil when out of range. The
// returned slice is shared — callers must not modify it.
func (s *Snapshot) OrgBody(id int) []byte {
	if id < 0 || id >= len(s.orgBodies) {
		return nil
	}
	return s.orgBodies[id]
}

// AppendASBody appends the /v1/as JSON response for a to dst and
// reports whether a is mapped. Everything but the ASN's own digits was
// rendered at snapshot-build time, so a call with spare capacity in dst
// performs zero allocations.
func (s *Snapshot) AppendASBody(dst []byte, a asnum.ASN) ([]byte, bool) {
	c := s.mapping.ClusterOf(a)
	if c == nil {
		return dst, false
	}
	dst = append(dst, asBodyPrefix...)
	dst = strconv.AppendUint(dst, uint64(a), 10)
	return append(dst, s.asTails[c.ID]...), true
}

// searchScratch is the reusable per-query state behind Search and
// SearchBrownout: a cluster-ID dedup bitset plus posting-list cursors
// and a result buffer, recycled through the snapshot's pool so the
// query path performs no steady-state allocation.
type searchScratch struct {
	bits  []uint64
	lists [][]int
	heads []int
	ids   []int
}

func (sc *searchScratch) mark(id int) bool {
	w, b := id>>6, uint64(1)<<(id&63)
	if sc.bits[w]&b != 0 {
		return false
	}
	sc.bits[w] |= b
	return true
}

// release clears every bit set during the query (exactly the emitted
// ids) and returns the scratch to the pool.
func (s *Snapshot) release(sc *searchScratch) {
	for _, id := range sc.ids {
		sc.bits[id>>6] = 0
	}
	sc.ids = sc.ids[:0]
	sc.lists = sc.lists[:0]
	sc.heads = sc.heads[:0]
	s.scratchPool.Put(sc)
}

// Search returns up to limit organizations whose display name contains
// the query (case-insensitive), in ascending cluster-ID order. A
// single-word query scans the token index and merges the matching
// sorted posting lists (bitset-deduplicated, stopping as soon as limit
// ids are gathered); a multi-word query falls back to whole-name
// substring matching with the same early exit. limit <= 0 means no
// limit.
func (s *Snapshot) Search(query string, limit int) []*cluster.Cluster {
	q := strings.ToLower(strings.TrimSpace(query))
	if q == "" {
		return nil
	}
	if limit <= 0 || limit > len(s.mapping.Clusters) {
		limit = len(s.mapping.Clusters)
	}
	if strings.ContainsAny(q, " \t") {
		var ids []int
		for i, name := range s.lowerNames {
			if strings.Contains(name, q) {
				ids = append(ids, i)
				if len(ids) == limit {
					break
				}
			}
		}
		return s.materialize(ids)
	}
	sc := s.scratchPool.Get().(*searchScratch)
	for _, tok := range s.tokenList {
		if strings.Contains(tok, q) {
			sc.lists = append(sc.lists, s.tokens[tok])
		}
	}
	s.mergePostings(sc, limit)
	out := s.materialize(sc.ids)
	s.release(sc)
	return out
}

// mergePostings k-way-merges the sorted posting lists in sc.lists into
// sc.ids (ascending, deduplicated via the bitset), stopping once limit
// ids are collected. Collecting in merge order makes the limit an
// early exit instead of a post-sort truncation: only the smallest
// limit ids are ever visited.
func (s *Snapshot) mergePostings(sc *searchScratch, limit int) {
	if len(sc.lists) == 1 {
		// Single token: its posting list is already sorted and unique,
		// so no bitset or cursors are needed (release tolerates clear
		// bits).
		ids := sc.lists[0]
		if len(ids) > limit {
			ids = ids[:limit]
		}
		sc.ids = append(sc.ids, ids...)
		return
	}
	for range sc.lists {
		sc.heads = append(sc.heads, 0)
	}
	for len(sc.ids) < limit {
		best := -1
		for li, l := range sc.lists {
			if h := sc.heads[li]; h < len(l) && (best < 0 || l[h] < best) {
				best = l[h]
			}
		}
		if best < 0 {
			return
		}
		for li, l := range sc.lists {
			if h := sc.heads[li]; h < len(l) && l[h] == best {
				sc.heads[li] = h + 1
			}
		}
		if sc.mark(best) {
			sc.ids = append(sc.ids, best)
		}
	}
}

// materialize converts cluster ids into cluster pointers.
func (s *Snapshot) materialize(ids []int) []*cluster.Cluster {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*cluster.Cluster, len(ids))
	for i, id := range ids {
		out[i] = &s.mapping.Clusters[id]
	}
	return out
}

// SearchBrownout is the degraded-mode variant of Search used under
// admission pressure: instead of ranking the whole token index by
// substring containment (a full scan of tokenList), it binary-searches
// the sorted token list and walks only tokens that have the query as a
// prefix, stopping as soon as limit organizations are collected.
// Recall is reduced by design — mid-token matches and cross-token
// multi-word queries are missed — mirroring how PR 3's degraded
// snapshots trade completeness for availability. limit must be > 0.
func (s *Snapshot) SearchBrownout(query string, limit int) []*cluster.Cluster {
	q := strings.ToLower(strings.TrimSpace(query))
	if q == "" || limit <= 0 {
		return nil
	}
	// Multi-word queries degrade to their first token's prefix scan.
	if i := strings.IndexAny(q, " \t"); i > 0 {
		q = q[:i]
	}
	sc := s.scratchPool.Get().(*searchScratch)
	for i := sort.SearchStrings(s.tokenList, q); i < len(s.tokenList); i++ {
		tok := s.tokenList[i]
		if !strings.HasPrefix(tok, q) {
			break
		}
		for _, id := range s.tokens[tok] {
			if sc.mark(id) {
				sc.ids = append(sc.ids, id)
			}
		}
		if len(sc.ids) >= limit {
			break
		}
	}
	ids := sc.ids
	if len(ids) > limit {
		ids = ids[:limit]
	}
	sort.Ints(ids)
	out := s.materialize(ids)
	s.release(sc)
	return out
}

// FeatureNames renders a cluster's contributing features in the
// paper's shorthand (OID_W, OID_P, N&A, R&R, F).
func FeatureNames(c *cluster.Cluster) []string {
	var out []string
	for f := 0; f < cluster.NumFeatures; f++ {
		if c.Features[f] {
			out = append(out, cluster.Feature(f).String())
		}
	}
	return out
}
