package serve

import (
	"reflect"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/orgfactor"
)

// testMapping builds a small mapping with known structure:
//
//	Lumen Technologies  {209, 3356, 3549}  OID_W + R&R
//	Claro Chile         {27995}            OID_W
//	Claro Puerto Rico   {10396, 14638}     OID_W + F
//	(unnamed)           {63999 singleton universe entry}
func testMapping(t testing.TB) *cluster.Mapping {
	t.Helper()
	b := cluster.NewBuilder()
	b.AddUniverse(209, 3356, 3549, 27995, 10396, 14638, 63999)
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{209, 3356, 3549}, Source: cluster.FeatureOIDW})
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{209, 3356}, Source: cluster.FeatureRR})
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{27995}, Source: cluster.FeatureOIDW})
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{10396, 14638}, Source: cluster.FeatureOIDW})
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{10396, 14638}, Source: cluster.FeatureFavicon})
	names := map[asnum.ASN]string{
		3356:  "Lumen Technologies",
		27995: "Claro Chile",
		10396: "Claro Puerto Rico",
	}
	return b.Build(func(members []asnum.ASN) string {
		for _, a := range members {
			if n, ok := names[a]; ok {
				return n
			}
		}
		return ""
	})
}

func mustSnapshot(t testing.TB, m *cluster.Mapping) *Snapshot {
	t.Helper()
	s, err := NewSnapshot(m, "test")
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	return s
}

func TestNewSnapshotRejectsNilAndEmpty(t *testing.T) {
	if _, err := NewSnapshot(nil, "x"); err == nil {
		t.Fatal("nil mapping accepted")
	}
	if _, err := NewSnapshot(&cluster.Mapping{}, "x"); err == nil {
		t.Fatal("empty mapping accepted")
	}
}

func TestSnapshotLookup(t *testing.T) {
	s := mustSnapshot(t, testMapping(t))
	c := s.Lookup(3356)
	if c == nil || c.Name != "Lumen Technologies" {
		t.Fatalf("Lookup(3356) = %+v, want Lumen", c)
	}
	want := []asnum.ASN{209, 3356, 3549}
	if !reflect.DeepEqual(c.ASNs, want) {
		t.Fatalf("siblings = %v, want %v", c.ASNs, want)
	}
	if got := FeatureNames(c); !reflect.DeepEqual(got, []string{"OID_W", "R&R"}) {
		t.Fatalf("features = %v, want [OID_W R&R]", got)
	}
	if s.Lookup(4242424) != nil {
		t.Fatal("unmapped ASN returned a cluster")
	}
}

func TestSnapshotOrg(t *testing.T) {
	s := mustSnapshot(t, testMapping(t))
	c := s.Lookup(27995)
	if c == nil {
		t.Fatal("Lookup(27995) = nil")
	}
	if got := s.Org(c.ID); got != c {
		t.Fatalf("Org(%d) = %p, want %p", c.ID, got, c)
	}
	if s.Org(-1) != nil || s.Org(1_000_000) != nil {
		t.Fatal("out-of-range org ID returned a cluster")
	}
}

func TestSnapshotSearch(t *testing.T) {
	s := mustSnapshot(t, testMapping(t))
	cases := []struct {
		query string
		limit int
		want  []string
	}{
		{"claro", 0, []string{"Claro Chile", "Claro Puerto Rico"}},
		{"CLARO", 0, []string{"Claro Chile", "Claro Puerto Rico"}},
		{"lum", 0, []string{"Lumen Technologies"}},
		{"claro chile", 0, []string{"Claro Chile"}},
		{"claro", 1, nil}, // limit truncates; exact survivor order-dependent
		{"nosuchorg", 0, nil},
		{"", 0, nil},
	}
	for _, tc := range cases {
		hits := s.Search(tc.query, tc.limit)
		var names []string
		for _, c := range hits {
			names = append(names, c.Name)
		}
		if tc.query == "claro" && tc.limit == 1 {
			if len(hits) != 1 {
				t.Errorf("Search(%q, 1) returned %d hits, want 1", tc.query, len(hits))
			}
			continue
		}
		// Cluster-ID order is deterministic but not name order; compare
		// as sets.
		if len(names) != len(tc.want) {
			t.Errorf("Search(%q) = %v, want %v", tc.query, names, tc.want)
			continue
		}
		got := make(map[string]bool)
		for _, n := range names {
			got[n] = true
		}
		for _, w := range tc.want {
			if !got[w] {
				t.Errorf("Search(%q) = %v, missing %q", tc.query, names, w)
			}
		}
	}
}

func TestSnapshotStats(t *testing.T) {
	m := testMapping(t)
	s := mustSnapshot(t, m)
	st := s.Stats()
	if st.Orgs != m.NumOrgs() || st.ASNs != m.NumASNs() {
		t.Fatalf("stats counts = %d/%d, want %d/%d", st.Orgs, st.ASNs, m.NumOrgs(), m.NumASNs())
	}
	wantTheta, err := orgfactor.Theta(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Theta != wantTheta {
		t.Fatalf("theta = %v, want %v", st.Theta, wantTheta)
	}
	if st.MultiASOrgs != 2 {
		t.Fatalf("MultiASOrgs = %d, want 2", st.MultiASOrgs)
	}
	if st.LargestOrg != 3 {
		t.Fatalf("LargestOrg = %d, want 3", st.LargestOrg)
	}
	total := 0
	for _, b := range st.SizeHistogram {
		total += b.Orgs
	}
	if total != st.Orgs {
		t.Fatalf("histogram sums to %d orgs, want %d", total, st.Orgs)
	}
	// 4 orgs: sizes 3, 2, 1, 1 → buckets "1":2, "2":1, "3-4":1.
	want := []SizeBucket{{1, 1, 2}, {2, 2, 1}, {3, 4, 1}}
	if !reflect.DeepEqual(st.SizeHistogram, want) {
		t.Fatalf("histogram = %+v, want %+v", st.SizeHistogram, want)
	}
}

func TestSizeBucketLabel(t *testing.T) {
	for _, tc := range []struct {
		b    SizeBucket
		want string
	}{
		{SizeBucket{1, 1, 0}, "1"},
		{SizeBucket{3, 4, 0}, "3-4"},
		{SizeBucket{17, 32, 0}, "17-32"},
	} {
		if got := tc.b.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.b, got, tc.want)
		}
	}
}

func TestSnapshotMetadata(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	s, err := newSnapshotAt(testMapping(t), "corpus.jsonl", Health{}, now)
	if err != nil {
		t.Fatal(err)
	}
	if s.Source() != "corpus.jsonl" {
		t.Fatalf("Source = %q", s.Source())
	}
	if !s.LoadedAt().Equal(now) {
		t.Fatalf("LoadedAt = %v, want %v", s.LoadedAt(), now)
	}
}

func TestTokenize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"lumen technologies", []string{"lumen", "technologies"}},
		{"claro (chile)", []string{"claro", "chile"}},
		{"edg.io", []string{"edg", "io"}},
		{"", nil},
		{"--", nil},
	} {
		if got := tokenize(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
