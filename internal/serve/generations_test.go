package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/vfs"
)

// newTestRing builds a generation ring in a fresh temp dir.
func newTestRing(t *testing.T, keep int) *GenerationRing {
	t.Helper()
	ring, err := NewGenerationRing(t.TempDir(), keep, vfs.OS, t.Logf)
	if err != nil {
		t.Fatalf("NewGenerationRing: %v", err)
	}
	return ring
}

// TestGenerationRingRecordAndPrune: Record persists verified artifacts
// with monotonically increasing sequence numbers, no-ops on an
// unchanged head, and prunes beyond keep — oldest first, files removed
// from disk.
func TestGenerationRingRecordAndPrune(t *testing.T) {
	ring := newTestRing(t, 2)
	now := time.Unix(1700000000, 0).UTC()

	snaps := []*Snapshot{
		mustSnapshot(t, variantMapping(0, 128)),
		mustSnapshot(t, variantMapping(1, 128)),
		mustSnapshot(t, variantMapping(2, 128)),
	}
	for _, s := range snaps {
		if _, err := ring.Record(s, now); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	// Re-recording the current head is a no-op, not a new generation.
	if _, err := ring.Record(snaps[2], now); err != nil {
		t.Fatalf("Record(head again): %v", err)
	}

	gens := ring.Generations()
	if len(gens) != 2 {
		t.Fatalf("ring holds %d generations, want 2 (keep)", len(gens))
	}
	if gens[0].Seq >= gens[1].Seq {
		t.Fatalf("generations out of order: %d then %d", gens[0].Seq, gens[1].Seq)
	}
	if gens[0].Hash != snaps[1].ContentHash() || gens[1].Hash != snaps[2].ContentHash() {
		t.Fatal("ring kept the wrong generations after pruning")
	}
	entries, err := os.ReadDir(ring.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d files on disk, want 2 after prune", len(entries))
	}
	// A recorded hash previous to the head is reachable and verified.
	prev, gen, err := ring.PreviousVerified(snaps[2].ContentHash())
	if err != nil {
		t.Fatalf("PreviousVerified: %v", err)
	}
	if prev.ContentHash() != snaps[1].ContentHash() || gen.Hash != snaps[1].ContentHash() {
		t.Fatalf("PreviousVerified = %s, want %s", gen.Hash, snaps[1].ContentHash())
	}
}

// TestGenerationRingStartupRescan: a new ring over an existing
// directory re-verifies every artifact, adopts the intact ones with
// their original sequence numbers, and quarantines the corrupt one.
func TestGenerationRingStartupRescan(t *testing.T) {
	dir := t.TempDir()
	ring, err := NewGenerationRing(dir, 4, vfs.OS, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0).UTC()
	for v := 0; v < 3; v++ {
		if _, err := ring.Record(mustSnapshot(t, variantMapping(v, 128)), now); err != nil {
			t.Fatal(err)
		}
	}
	gens := ring.Generations()
	// Corrupt the middle generation on disk (a byte well past the
	// provenance section, so the content hash no longer matches).
	victim := filepath.Join(dir, gens[1].File)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reborn, err := NewGenerationRing(dir, 4, vfs.OS, t.Logf)
	if err != nil {
		t.Fatalf("rescan: %v", err)
	}
	got := reborn.Generations()
	if len(got) != 2 {
		t.Fatalf("rescan adopted %d generations, want 2", len(got))
	}
	if got[0].Seq != gens[0].Seq || got[1].Seq != gens[2].Seq {
		t.Fatalf("rescan seqs = %d,%d want %d,%d", got[0].Seq, got[1].Seq, gens[0].Seq, gens[2].Seq)
	}
	if n := reborn.QuarantinedTotal(); n != 1 {
		t.Fatalf("QuarantinedTotal = %d, want 1", n)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Fatalf("corrupt artifact not moved aside: %v", err)
	}
	// The next Record continues the sequence past everything seen.
	if _, err := reborn.Record(mustSnapshot(t, variantMapping(7, 128)), now); err != nil {
		t.Fatal(err)
	}
	latest := reborn.Generations()
	if last := latest[len(latest)-1].Seq; last <= gens[2].Seq {
		t.Fatalf("new seq %d does not continue past %d", last, gens[2].Seq)
	}
}

// TestGenerationRingPreviousVerifiedSkipsCorrupt: rollback target
// selection re-verifies candidates and quarantines the ones that fail,
// falling further back instead of serving damage.
func TestGenerationRingPreviousVerifiedSkipsCorrupt(t *testing.T) {
	ring := newTestRing(t, 4)
	now := time.Unix(1700000000, 0).UTC()
	var hashes []string
	for v := 0; v < 3; v++ {
		s := mustSnapshot(t, variantMapping(v, 128))
		hashes = append(hashes, s.ContentHash())
		if _, err := ring.Record(s, now); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the middle generation; rollback from head should then
	// land on the oldest.
	gens := ring.Generations()
	victim := filepath.Join(ring.Dir(), gens[1].File)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, gen, err := ring.PreviousVerified(hashes[2])
	if err != nil {
		t.Fatalf("PreviousVerified: %v", err)
	}
	if snap.ContentHash() != hashes[0] || gen.Hash != hashes[0] {
		t.Fatalf("fell back to %s, want oldest %s", gen.Hash, hashes[0])
	}
	if n := ring.QuarantinedTotal(); n != 1 {
		t.Fatalf("QuarantinedTotal = %d, want 1", n)
	}
	// Corrupt the newest generation as well: rolling back from the
	// oldest now has nowhere verified to land.
	gens = ring.Generations()
	newest := filepath.Join(ring.Dir(), gens[len(gens)-1].File)
	data, err = os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ring.PreviousVerified(hashes[0]); !errors.Is(err, ErrNoVerifiedGeneration) {
		t.Fatalf("err = %v, want ErrNoVerifiedGeneration", err)
	}
	if n := ring.QuarantinedTotal(); n != 2 {
		t.Fatalf("QuarantinedTotal = %d, want 2", n)
	}
}

// TestRollbackEndpoint: POST /admin/rollback swaps back to the newest
// verified generation, reports it, counts the admin trigger, and shows
// lineage in /v1/stats; a second rollback from a one-deep ring is 409.
func TestRollbackEndpoint(t *testing.T) {
	ring := newTestRing(t, 3)
	v1 := mustSnapshot(t, variantMapping(1, 128))
	v2 := mustSnapshot(t, variantMapping(2, 128))
	srv, err := NewServer(v1, Options{
		Generations: ring,
		Prepared: func(ctx context.Context) (*Snapshot, error) {
			return v2, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Boot did not record anything; the first reload records v2... but
	// rollback needs v1 in the ring too, so record the boot snapshot
	// the way borgesd does.
	if _, err := ring.Record(v1, time.Unix(1700000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	if srv.Snapshot().ContentHash() != v2.ContentHash() {
		t.Fatal("reload did not promote v2")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/rollback", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("rollback: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Status      string `json:"status"`
		ContentHash string `json:"content_hash"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "rolled-back" || resp.ContentHash != v1.ContentHash() {
		t.Fatalf("rollback response = %+v, want v1 %s", resp, v1.ContentHash())
	}
	if srv.Snapshot().ContentHash() != v1.ContentHash() {
		t.Fatal("serving snapshot is not v1 after rollback")
	}
	if n := srv.Metrics().Rollbacks("admin"); n != 1 {
		t.Fatalf(`Rollbacks("admin") = %d, want 1`, n)
	}

	// Lineage surfaces in stats: the rollback is a new generation, so
	// the ring now reads v1, v2, v1.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var stats struct {
		Lineage *lineageJSON `json:"lineage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Lineage == nil {
		t.Fatal("stats missing lineage")
	}
	if len(stats.Lineage.Generations) != 3 {
		t.Fatalf("lineage has %d generations, want 3 (v1, v2, rollback-to-v1)", len(stats.Lineage.Generations))
	}
	if got := stats.Lineage.Generations[2].Hash; got != v1.ContentHash() {
		t.Fatalf("newest lineage hash = %s, want v1", got)
	}

	// Rolling back again: the only verified non-serving generation is
	// v2... which exists, so consume it, then the next attempt is 409.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/rollback", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("second rollback: %d %s", rec.Code, rec.Body.String())
	}
	// Ring is now v2, v1, v2 (keep 3) — serving v2, previous is v1.
	// Drain by corrupting nothing; instead verify the no-target case on
	// a fresh one-generation server.
	lone := newTestRing(t, 3)
	srv2, err := NewServer(v1, Options{Generations: lone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lone.Record(v1, time.Unix(1700000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/admin/rollback", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("rollback with no previous generation: %d, want 409", rec.Code)
	}
}

// TestRollbackWithoutRing: the endpoint is 501 when no generation ring
// is configured — rollback is an opt-in capability, not a default.
func TestRollbackWithoutRing(t *testing.T) {
	srv, err := NewServer(mustSnapshot(t, testMapping(t)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/admin/rollback", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("rollback without ring: %d, want 501", rec.Code)
	}
}

// TestSwapRecordsGeneration: every successful swap lands in the ring
// and the metrics gauge follows, including the generations metric
// families in /metrics output.
func TestSwapRecordsGeneration(t *testing.T) {
	ring := newTestRing(t, 3)
	v1 := mustSnapshot(t, variantMapping(1, 128))
	v2 := mustSnapshot(t, variantMapping(2, 128))
	srv, err := NewServer(v1, Options{
		Generations: ring,
		Prepared: func(ctx context.Context) (*Snapshot, error) {
			return v2, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 1 || ring.Generations()[0].Hash != v2.ContentHash() {
		t.Fatalf("ring after swap: %+v, want just v2", ring.Generations())
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"borgesd_snapshot_generations 1",
		"borgesd_generations_quarantined_total 0",
		"borgesd_canary_rejects_total 0",
		`borgesd_rollbacks_total{trigger="admin"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
