package serve

import (
	"context"
	"time"
)

// ScrubResult is one scrub target's outcome for a single pass.
type ScrubResult struct {
	// Checked counts artifacts whose integrity was re-verified.
	Checked int
	// Quarantined counts artifacts found corrupt and moved aside
	// (renamed to *.corrupt) this pass.
	Quarantined int
	// Repaired counts artifacts rewritten from an authoritative copy
	// (a replica's last-good re-fetched from its distributor, a
	// -snapshot-out file rewritten from the serving snapshot).
	Repaired int
	// Err reports a scrub pass that could not complete (distinct from
	// finding corruption, which is the scrubber working).
	Err error
}

// ScrubTarget is one store the background scrubber sweeps: the
// generation ring, a -snapshot-out file, a replica's last-good
// artifact, a cache's disk tier. Implementations must be safe to call
// concurrently with serving traffic.
type ScrubTarget interface {
	// ScrubName labels the target in logs and metrics.
	ScrubName() string
	// Scrub performs one integrity pass.
	Scrub(ctx context.Context) ScrubResult
}

// ScrubTargetFunc adapts a function to ScrubTarget.
func ScrubTargetFunc(name string, fn func(ctx context.Context) ScrubResult) ScrubTarget {
	return scrubFunc{name: name, fn: fn}
}

type scrubFunc struct {
	name string
	fn   func(ctx context.Context) ScrubResult
}

func (s scrubFunc) ScrubName() string                     { return s.name }
func (s scrubFunc) Scrub(ctx context.Context) ScrubResult { return s.fn(ctx) }

// ScrubSummary aggregates one full scrub cycle across every target,
// plus the post-scrub health probe and any rollback it triggered.
type ScrubSummary struct {
	Checked     int
	Quarantined int
	Repaired    int
	// ProbeErr is the serving-snapshot health probe's failure (nil when
	// the probe passed or no probe ran).
	ProbeErr error
	// RolledBack reports that the failed probe triggered an automatic
	// rollback to the newest verified generation.
	RolledBack bool
	// RollbackErr is why the automatic rollback itself failed (no ring,
	// no verified generation, canary rejection of the target).
	RollbackErr error
}

// scrubTargets assembles the full target list: the configured extras,
// the generation ring, and the -snapshot-out file.
func (s *Server) scrubTargets() []ScrubTarget {
	targets := append([]ScrubTarget(nil), s.opts.ScrubTargets...)
	if ring := s.opts.Generations; ring != nil {
		targets = append(targets, ScrubTargetFunc("generations", func(context.Context) ScrubResult {
			checked, quarantined := ring.Scrub()
			return ScrubResult{Checked: checked, Quarantined: quarantined}
		}))
	}
	if s.opts.SnapshotOut != "" {
		targets = append(targets, ScrubTargetFunc("snapshot-out", s.scrubSnapshotOut))
	}
	return targets
}

// scrubSnapshotOut re-verifies the -snapshot-out artifact and, when it
// is corrupt, quarantines it and rewrites it from the serving snapshot
// — the file exists to make the next cold start cheap, and the serving
// snapshot is the authoritative copy it mirrors. A missing file is not
// corruption (persistence may have failed and been counted already).
func (s *Server) scrubSnapshotOut(ctx context.Context) ScrubResult {
	fsys := s.fs()
	path := s.opts.SnapshotOut
	if _, err := fsys.Stat(path); err != nil {
		return ScrubResult{}
	}
	res := ScrubResult{Checked: 1}
	if _, err := LoadSnapshotFileFS(fsys, path); err == nil {
		return res
	}
	if err := fsys.Rename(path, path+".corrupt"); err == nil {
		res.Quarantined = 1
		s.logf(`{"event":"snapshot_out_quarantine","path":%q}`, path)
	}
	if _, err := WriteSnapshotFileFS(fsys, path, s.snap.Load()); err != nil {
		s.metrics.ObservePersistError()
		s.logf(`{"event":"snapshot_out_repair","ok":false,"error":%q}`, err.Error())
		res.Err = err
		return res
	}
	res.Repaired = 1
	s.logf(`{"event":"snapshot_out_repair","ok":true,"path":%q}`, path)
	return res
}

// ScrubOnce runs one full scrub cycle: every target is swept, the
// serving snapshot is probed, and a failed probe triggers an automatic
// rollback to the newest verified generation. Exposed so operators
// (and deterministic tests) can force a cycle; the background loop
// calls it on ScrubInterval.
func (s *Server) ScrubOnce(ctx context.Context) ScrubSummary {
	var sum ScrubSummary
	for _, t := range s.scrubTargets() {
		res := t.Scrub(ctx)
		sum.Checked += res.Checked
		sum.Quarantined += res.Quarantined
		sum.Repaired += res.Repaired
		if res.Err != nil {
			s.logf(`{"event":"scrub","target":%q,"ok":false,"error":%q}`, t.ScrubName(), res.Err.Error())
		} else if res.Quarantined > 0 || res.Repaired > 0 {
			s.logf(`{"event":"scrub","target":%q,"checked":%d,"quarantined":%d,"repaired":%d}`,
				t.ScrubName(), res.Checked, res.Quarantined, res.Repaired)
		}
	}
	s.metrics.ObserveScrub(sum.Checked, sum.Quarantined, sum.Repaired)

	sum.ProbeErr = s.probe()
	if sum.ProbeErr == nil {
		return sum
	}
	s.metrics.ObserveProbeFailure()
	s.logf(`{"event":"health_probe","ok":false,"error":%q}`, sum.ProbeErr.Error())
	if s.opts.Generations == nil {
		sum.RollbackErr = ErrNoVerifiedGeneration
		return sum
	}
	if _, _, err := s.Rollback(ctx, "auto"); err != nil {
		sum.RollbackErr = err
		s.logf(`{"event":"auto_rollback","ok":false,"error":%q}`, err.Error())
	} else {
		sum.RolledBack = true
	}
	return sum
}

// probe re-checks the serving snapshot's live invariants — the same
// canary every candidate passed at promotion, or the caller's
// HealthProbe override. A snapshot that passed its canary can still
// fail here if the process's memory of it was corrupted or the
// override knows something the canary does not (an operator-injected
// failure in tests, an external consistency check in production).
func (s *Server) probe() error {
	if s.opts.HealthProbe != nil {
		return s.opts.HealthProbe(s.snap.Load())
	}
	return canaryCheck(s.snap.Load(), nil, s.opts.Canary)
}

// scrubLoop drives periodic scrub cycles until ctx ends.
func (s *Server) scrubLoop(ctx context.Context) {
	t := time.NewTicker(s.opts.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.ScrubOnce(ctx)
		}
	}
}
