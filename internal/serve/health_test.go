package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
)

// TestHealthzDegradedVersusOK: a snapshot built from a degraded run
// reports "degraded" on /healthz — with HTTP 200, because a partial
// mapping serving is availability, not an outage — while a clean
// snapshot reports "ok".
func TestHealthzDegradedVersusOK(t *testing.T) {
	srv := newTestServer(t, Options{})
	var got struct {
		Status      string `json:"status"`
		Quarantined int    `json:"quarantined"`
		Detail      string `json:"detail"`
	}
	if rec := do(t, srv, "GET", "/healthz", &got); rec.Code != http.StatusOK || got.Status != HealthOK {
		t.Fatalf("clean healthz = %d %+v, want 200 ok", rec.Code, got)
	}

	snap, err := NewSnapshotWithHealth(testMapping(t), "pipeline",
		Health{Status: HealthDegraded, Quarantined: 3, Detail: "crawl degraded"})
	if err != nil {
		t.Fatal(err)
	}
	srv.snap.Store(snap)
	rec := do(t, srv, "GET", "/healthz", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200 (degraded is not down)", rec.Code)
	}
	if got.Status != HealthDegraded || got.Quarantined != 3 || got.Detail != "crawl degraded" {
		t.Fatalf("degraded healthz body = %+v", got)
	}
}

// TestStatsAndMetricsCarryHealth: /v1/stats embeds the health block
// and /metrics exports the degraded gauge and quarantine count.
func TestStatsAndMetricsCarryHealth(t *testing.T) {
	srv := newTestServer(t, Options{})
	snap, err := NewSnapshotWithHealth(testMapping(t), "pipeline",
		Health{Status: HealthDegraded, Quarantined: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv.snap.Store(snap)

	var got struct {
		Health Health `json:"health"`
	}
	do(t, srv, "GET", "/v1/stats", &got)
	if got.Health.Status != HealthDegraded || got.Health.Quarantined != 7 {
		t.Fatalf("/v1/stats health = %+v", got.Health)
	}

	rec := do(t, srv, "GET", "/metrics", nil)
	body := rec.Body.String()
	if !strings.Contains(body, "borgesd_snapshot_degraded 1") {
		t.Errorf("metrics missing degraded gauge:\n%s", body)
	}
	if !strings.Contains(body, "borgesd_snapshot_quarantined 7") {
		t.Errorf("metrics missing quarantined gauge:\n%s", body)
	}
}

// TestReloadPropagatesHealth: a HealthSource-backed reload attaches
// the run's health to the published snapshot, and a later clean reload
// clears it — health travels with the mapping it describes.
func TestReloadPropagatesHealth(t *testing.T) {
	health := Health{Status: HealthDegraded, Quarantined: 2, Detail: "llm degraded"}
	var srv *Server
	srv = newTestServer(t, Options{
		HealthSource: func(ctx context.Context) (*cluster.Mapping, Health, error) {
			return testMapping(t), health, nil
		},
	})
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h := srv.Snapshot().Health(); h != health {
		t.Fatalf("reloaded health = %+v, want %+v", h, health)
	}
	var got struct {
		Status string `json:"status"`
	}
	do(t, srv, "GET", "/healthz", &got)
	if got.Status != HealthDegraded {
		t.Fatalf("healthz after degraded reload = %q", got.Status)
	}

	health = Health{Status: HealthOK}
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	do(t, srv, "GET", "/healthz", &got)
	if got.Status != HealthOK {
		t.Fatalf("healthz after clean reload = %q, want ok", got.Status)
	}
}

// TestPlainSourceReloadStaysHealthy: the pre-existing Source path is
// untouched by the health plumbing — reloads through it publish ok
// snapshots.
func TestPlainSourceReloadStaysHealthy(t *testing.T) {
	srv := newTestServer(t, Options{
		Source: func(ctx context.Context) (*cluster.Mapping, error) {
			return testMapping(t), nil
		},
	})
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h := srv.Snapshot().Health(); h.Status != HealthOK {
		t.Fatalf("plain-source reload health = %+v, want ok", h)
	}
}
