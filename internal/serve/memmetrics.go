package serve

import (
	"fmt"
	"io"
	"runtime/metrics"
)

// memSeries maps runtime/metrics samples onto the borgesd_mem_*
// Prometheus series surfaced by /metrics. These are the gauges that
// make the mega-scale memory model observable in production: how much
// heap the process actually holds (for a mapped artifact this stays
// O(index), not O(file)), how much address space the runtime has
// mapped, and how hard the collector is working.
var memSeries = []struct {
	sample string
	name   string
	kind   string // "gauge" or "counter"
	help   string
}{
	{"/memory/classes/heap/objects:bytes", "borgesd_mem_heap_objects_bytes", "gauge",
		"Bytes occupied by live heap objects plus unswept garbage."},
	{"/memory/classes/total:bytes", "borgesd_mem_runtime_total_bytes", "gauge",
		"Total bytes of memory mapped by the Go runtime (excludes non-runtime mappings such as mmapped snapshot artifacts)."},
	{"/memory/classes/heap/released:bytes", "borgesd_mem_heap_released_bytes", "gauge",
		"Heap bytes returned to the operating system."},
	{"/gc/heap/goal:bytes", "borgesd_mem_gc_goal_bytes", "gauge",
		"Heap size target of the next garbage collection cycle."},
	{"/gc/cycles/total:gc-cycles", "borgesd_mem_gc_cycles_total", "counter",
		"Completed garbage collection cycles."},
}

// writeMemMetrics emits the borgesd_mem_* series. Reading a handful of
// runtime/metrics samples is cheap and lock-free; /metrics is not a
// hot path, so the per-call sample slice is fine.
func writeMemMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(memSeries))
	for i := range memSeries {
		samples[i].Name = memSeries[i].sample
	}
	metrics.Read(samples)
	for i, s := range memSeries {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind)
		fmt.Fprintf(w, "%s %d\n", s.name, samples[i].Value.Uint64())
	}
}
